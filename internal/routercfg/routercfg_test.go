package routercfg

import (
	"testing"

	"polarfly/internal/er"
	"polarfly/internal/graph"
	"polarfly/internal/singer"
	"polarfly/internal/trees"
)

func buildForest(t *testing.T, q int, kind string) (*graph.Graph, []*trees.Tree) {
	t.Helper()
	pg, err := er.New(q)
	if err != nil {
		t.Fatal(err)
	}
	switch kind {
	case "lowdepth":
		l, err := er.NewLayout(pg, -1)
		if err != nil {
			t.Fatal(err)
		}
		f, err := trees.LowDepthForest(l)
		if err != nil {
			t.Fatal(err)
		}
		return pg.G, f
	case "hamiltonian":
		s, err := singer.New(q)
		if err != nil {
			t.Fatal(err)
		}
		f, err := trees.HamiltonianForest(s, 30, 42)
		if err != nil {
			t.Fatal(err)
		}
		return s.Topology(), f
	case "single":
		tr, err := trees.SingleTreeBaseline(pg.G, 0)
		if err != nil {
			t.Fatal(err)
		}
		return pg.G, []*trees.Tree{tr}
	}
	t.Fatalf("unknown kind %s", kind)
	return nil, nil
}

func TestBuildAndValidate(t *testing.T) {
	for _, kind := range []string{"single", "lowdepth", "hamiltonian"} {
		for _, q := range []int{3, 5, 7} {
			g, forest := buildForest(t, q, kind)
			cfgs, err := Build(g, forest)
			if err != nil {
				t.Fatalf("%s q=%d: %v", kind, q, err)
			}
			if err := Validate(g, forest, cfgs); err != nil {
				t.Fatalf("%s q=%d: %v", kind, q, err)
			}
		}
	}
}

func TestVCProvisioningMatchesLemma78(t *testing.T) {
	// Hamiltonian (edge-disjoint): exactly 1 VC per (direction, class).
	g, ham := buildForest(t, 7, "hamiltonian")
	cfgs, err := Build(g, ham)
	if err != nil {
		t.Fatal(err)
	}
	if MaxVCs(cfgs) != 1 {
		t.Errorf("hamiltonian needs %d VCs per direction, want 1", MaxVCs(cfgs))
	}
	// Low-depth: Lemma 7.8 keeps opposing reduce flows on distinct
	// directed links, so each (direction, class) carries at most 1 stream
	// as well — congestion 2 comes from reduce+broadcast sharing a link,
	// which separate classes absorb.
	g2, low := buildForest(t, 7, "lowdepth")
	cfgs2, err := Build(g2, low)
	if err != nil {
		t.Fatal(err)
	}
	if MaxVCs(cfgs2) != 1 {
		t.Errorf("low-depth needs %d VCs per (direction,class), want 1 (Lemma 7.8)", MaxVCs(cfgs2))
	}
}

func TestRolesAndPortWiring(t *testing.T) {
	g, forest := buildForest(t, 5, "lowdepth")
	cfgs, err := Build(g, forest)
	if err != nil {
		t.Fatal(err)
	}
	for ti, tr := range forest {
		roots, leaves, internals := 0, 0, 0
		for v := range cfgs {
			tc := cfgs[v].Trees[ti]
			switch tc.Role {
			case Root:
				roots++
				if tc.ReduceOut != nil || tc.BcastIn != nil {
					t.Fatalf("root has upstream streams")
				}
			case Leaf:
				leaves++
				if len(tc.ReduceIn) != 0 || len(tc.BcastOut) != 0 {
					t.Fatalf("leaf has child streams")
				}
			case Internal:
				internals++
			}
			// Upstream port resolves to the tree parent.
			if p := tr.Parent[v]; p >= 0 {
				if cfgs[v].Ports[tc.ReduceOut.Port] != p {
					t.Fatalf("tree %d router %d: upstream port mismatch", ti, v)
				}
			}
		}
		if roots != 1 {
			t.Errorf("tree %d has %d roots", ti, roots)
		}
		if leaves == 0 || internals == 0 {
			t.Errorf("tree %d: degenerate role split (%d leaves, %d internal)", ti, leaves, internals)
		}
	}
}

func TestRoleString(t *testing.T) {
	if Leaf.String() != "leaf" || Internal.String() != "internal" || Root.String() != "root" ||
		Role(9).String() == "" {
		t.Error("Role.String broken")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	g, forest := buildForest(t, 3, "lowdepth")
	cfgs, err := Build(g, forest)
	if err != nil {
		t.Fatal(err)
	}
	// Wrong length.
	if err := Validate(g, forest, cfgs[:len(cfgs)-1]); err == nil {
		t.Error("short config set accepted")
	}
	// Corrupt a role.
	bad := make([]RouterConfig, len(cfgs))
	copy(bad, cfgs)
	badTrees := append([]TreeConfig(nil), bad[0].Trees...)
	badTrees[0].Role = Root
	if forest[0].Parent[0] >= 0 { // router 0 is not the root of tree 0
		bad[0].Trees = badTrees
		if err := Validate(g, forest, bad); err == nil {
			t.Error("corrupted role accepted")
		}
	}
}

func TestBuildRejectsNonSpanningForest(t *testing.T) {
	g := graph.New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	tr, _ := trees.FromParent(0, []int{-1, 0, 0}) // uses non-edge (0,2)
	if _, err := Build(g, []*trees.Tree{tr}); err == nil {
		t.Error("non-spanning forest accepted")
	}
}
