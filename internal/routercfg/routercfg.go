// Package routercfg lowers an Allreduce forest onto concrete router
// configurations — the §4.4 "mechanism to configure connectivity between
// I/O-ports and reduction engine". For every router it produces, per tree:
// which input ports feed the reduction engine, which output port carries
// the partial sum upstream, which ports replicate the broadcast downstream,
// and which virtual channel each stream uses. The VC assignment exploits
// Lemma 7.8: reduction flows of distinct trees sharing a physical link
// always travel in opposite directions in the Algorithm 3 forest, so one
// reduction VC and one broadcast VC per link direction suffice for
// congestion-2 forests (and trivially for edge-disjoint ones).
package routercfg

import (
	"fmt"
	"sort"

	"polarfly/internal/graph"
	"polarfly/internal/trees"
)

// Role of a router within one tree.
type Role int

const (
	// Leaf routers only inject their own contribution and receive the
	// broadcast.
	Leaf Role = iota
	// Internal routers reduce children plus their own contribution and
	// forward both phases.
	Internal
	// Root routers complete the reduction and originate the broadcast.
	Root
)

func (r Role) String() string {
	switch r {
	case Leaf:
		return "leaf"
	case Internal:
		return "internal"
	case Root:
		return "root"
	}
	return fmt.Sprintf("Role(%d)", int(r))
}

// VC identifiers. Reduction and broadcast get disjoint virtual channels,
// as in Intel PIUMA (§7.1); within each class, streams of different trees
// on the same directed link get consecutive indices.
const (
	VCReduce = 0
	VCBcast  = 1
)

// Stream is one logical flow crossing a router port.
type Stream struct {
	// Tree is the forest index of the tree this stream belongs to.
	Tree int
	// Port is the local port number (index into the router's neighbor
	// list, sorted ascending by neighbor id).
	Port int
	// VCClass is VCReduce or VCBcast.
	VCClass int
	// VCIndex disambiguates multiple same-class streams of different
	// trees on the same directed link (0 when unique).
	VCIndex int
}

// TreeConfig is a router's configuration for one tree.
type TreeConfig struct {
	Tree int
	Role Role
	// ReduceIn lists the streams whose flits feed this router's reduction
	// engine (one per child).
	ReduceIn []Stream
	// ReduceOut is the upstream partial-sum stream (absent for the root).
	ReduceOut *Stream
	// BcastIn is the downstream broadcast source (absent for the root).
	BcastIn *Stream
	// BcastOut lists the broadcast replication streams (one per child).
	BcastOut []Stream
}

// RouterConfig is the complete configuration of one router.
type RouterConfig struct {
	// Router is the vertex id.
	Router int
	// Ports maps port number to neighbor vertex id.
	Ports []int
	// Trees holds one TreeConfig per forest tree, indexed by tree.
	Trees []TreeConfig
	// MaxVCPerDirection is the largest VC index + 1 used on any single
	// directed link at this router, per class.
	MaxVCPerDirection int
}

// Build lowers a forest embedded in topology g to per-router
// configurations. Every tree must span g.
func Build(g *graph.Graph, forest []*trees.Tree) ([]RouterConfig, error) {
	n := g.N()
	for i, t := range forest {
		if err := t.ValidateSpanning(g); err != nil {
			return nil, fmt.Errorf("routercfg: tree %d: %w", i, err)
		}
	}

	// Port maps: neighbor list sorted ascending.
	ports := make([][]int, n)
	portOf := make([]map[int]int, n)
	for v := 0; v < n; v++ {
		ports[v] = g.Neighbors(v)
		sort.Ints(ports[v])
		portOf[v] = make(map[int]int, len(ports[v]))
		for p, u := range ports[v] {
			portOf[v][u] = p
		}
	}

	// VC indices: for each directed link and class, streams of different
	// trees take consecutive indices in tree order.
	type dirKey struct {
		from, to, class int
	}
	vcNext := make(map[dirKey]int)
	allocVC := func(from, to, class int) int {
		k := dirKey{from, to, class}
		idx := vcNext[k]
		vcNext[k] = idx + 1
		return idx
	}

	cfgs := make([]RouterConfig, n)
	for v := 0; v < n; v++ {
		cfgs[v] = RouterConfig{Router: v, Ports: ports[v], Trees: make([]TreeConfig, len(forest))}
	}

	for ti, t := range forest {
		// Allocate VCs deterministically: walk vertices ascending; each
		// non-root vertex owns its upstream reduce stream and its
		// downstream broadcast stream.
		for v := 0; v < n; v++ {
			p := t.Parent[v]
			tc := &cfgs[v].Trees[ti]
			tc.Tree = ti
			switch {
			case p < 0 && len(t.Children(v)) > 0:
				tc.Role = Root
			case len(t.Children(v)) > 0:
				tc.Role = Internal
			default:
				tc.Role = Leaf
			}
			if p >= 0 {
				up := Stream{Tree: ti, Port: portOf[v][p], VCClass: VCReduce,
					VCIndex: allocVC(v, p, VCReduce)}
				tc.ReduceOut = &up
				down := Stream{Tree: ti, Port: portOf[v][p], VCClass: VCBcast,
					VCIndex: allocVC(p, v, VCBcast)}
				tc.BcastIn = &down
				// Mirror onto the parent's config.
				ptc := &cfgs[p].Trees[ti]
				ptc.ReduceIn = append(ptc.ReduceIn, Stream{Tree: ti, Port: portOf[p][v],
					VCClass: VCReduce, VCIndex: up.VCIndex})
				ptc.BcastOut = append(ptc.BcastOut, Stream{Tree: ti, Port: portOf[p][v],
					VCClass: VCBcast, VCIndex: down.VCIndex})
			}
		}
	}

	for v := 0; v < n; v++ {
		max := 0
		for k, next := range vcNext {
			if (k.from == v || k.to == v) && next > max {
				max = next
			}
		}
		cfgs[v].MaxVCPerDirection = max
	}
	return cfgs, nil
}

// Validate cross-checks a configuration set against its forest: every
// child/parent relationship must appear exactly once on matching ports and
// VCs, and every router's reduction inputs must sit on distinct ports.
func Validate(g *graph.Graph, forest []*trees.Tree, cfgs []RouterConfig) error {
	if len(cfgs) != g.N() {
		return fmt.Errorf("routercfg: %d configs for %d routers", len(cfgs), g.N())
	}
	for v, cfg := range cfgs {
		if cfg.Router != v {
			return fmt.Errorf("routercfg: config %d labelled %d", v, cfg.Router)
		}
		if len(cfg.Trees) != len(forest) {
			return fmt.Errorf("routercfg: router %d has %d tree configs", v, len(cfg.Trees))
		}
		for ti, tc := range cfg.Trees {
			t := forest[ti]
			// Role consistency.
			wantRole := Leaf
			if t.Parent[v] < 0 {
				wantRole = Root
			} else if len(t.Children(v)) > 0 {
				wantRole = Internal
			}
			if t.Parent[v] < 0 && len(t.Children(v)) == 0 {
				wantRole = Leaf // degenerate single-vertex tree
			}
			if tc.Role != wantRole {
				return fmt.Errorf("routercfg: router %d tree %d role %v, want %v", v, ti, tc.Role, wantRole)
			}
			// Upstream port must point at the parent.
			if p := t.Parent[v]; p >= 0 {
				if tc.ReduceOut == nil || cfg.Ports[tc.ReduceOut.Port] != p {
					return fmt.Errorf("routercfg: router %d tree %d bad upstream port", v, ti)
				}
				if tc.BcastIn == nil || cfg.Ports[tc.BcastIn.Port] != p {
					return fmt.Errorf("routercfg: router %d tree %d bad broadcast-in port", v, ti)
				}
			} else if tc.ReduceOut != nil || tc.BcastIn != nil {
				return fmt.Errorf("routercfg: root %d tree %d has upstream streams", v, ti)
			}
			// Children coverage on distinct ports.
			children := t.Children(v)
			if len(tc.ReduceIn) != len(children) || len(tc.BcastOut) != len(children) {
				return fmt.Errorf("routercfg: router %d tree %d child stream counts", v, ti)
			}
			seenPorts := make(map[int]bool)
			childSet := make(map[int]bool)
			for _, c := range children {
				childSet[c] = true
			}
			for _, st := range tc.ReduceIn {
				if seenPorts[st.Port] {
					return fmt.Errorf("routercfg: router %d tree %d duplicate reduce-in port %d", v, ti, st.Port)
				}
				seenPorts[st.Port] = true
				if !childSet[cfg.Ports[st.Port]] {
					return fmt.Errorf("routercfg: router %d tree %d reduce-in from non-child", v, ti)
				}
			}
		}
	}
	return nil
}

// MaxVCs returns the fleet-wide worst-case VC index + 1 per (direction,
// class) — the hardware provisioning number. For the Algorithm 3 forest
// this is 1 for the reduce class (Lemma 7.8) and at most 2 for broadcast;
// for the Hamiltonian forest it is 1 for both.
func MaxVCs(cfgs []RouterConfig) int {
	max := 0
	for _, c := range cfgs {
		if c.MaxVCPerDirection > max {
			max = c.MaxVCPerDirection
		}
	}
	return max
}
