package serialize

import (
	"bytes"
	"strings"
	"testing"

	"polarfly/internal/er"
	"polarfly/internal/routercfg"
	"polarfly/internal/trees"
)

func TestRouterConfigsRoundTrip(t *testing.T) {
	pg, err := er.New(5)
	if err != nil {
		t.Fatal(err)
	}
	l, err := er.NewLayout(pg, -1)
	if err != nil {
		t.Fatal(err)
	}
	forest, err := trees.LowDepthForest(l)
	if err != nil {
		t.Fatal(err)
	}
	cfgs, err := routercfg.Build(pg.G, forest)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := EncodeRouterConfigs(&buf, cfgs, "low-depth", 5); err != nil {
		t.Fatal(err)
	}
	doc, err := DecodeRouterConfigs(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Kind != "low-depth" || doc.Q != 5 || len(doc.Routers) != pg.N() {
		t.Fatalf("doc header: kind=%q q=%d routers=%d", doc.Kind, doc.Q, len(doc.Routers))
	}
	for i, rc := range doc.Routers {
		orig := cfgs[i]
		if rc.Router != orig.Router || len(rc.Ports) != len(orig.Ports) {
			t.Fatalf("router %d header mismatch", i)
		}
		for ti, tc := range rc.Trees {
			if tc.Role != orig.Trees[ti].Role.String() {
				t.Fatalf("router %d tree %d role %q vs %v", i, ti, tc.Role, orig.Trees[ti].Role)
			}
			if len(tc.ReduceIn) != len(orig.Trees[ti].ReduceIn) {
				t.Fatalf("router %d tree %d reduce-in count", i, ti)
			}
			if (tc.ReduceOut == nil) != (orig.Trees[ti].ReduceOut == nil) {
				t.Fatalf("router %d tree %d reduce-out presence", i, ti)
			}
			if tc.ReduceOut != nil && tc.ReduceOut.Port != orig.Trees[ti].ReduceOut.Port {
				t.Fatalf("router %d tree %d reduce-out port", i, ti)
			}
		}
	}
}

func TestDecodeRouterConfigsRejects(t *testing.T) {
	if _, err := DecodeRouterConfigs(strings.NewReader(`{`)); err == nil {
		t.Error("malformed JSON accepted")
	}
	if _, err := DecodeRouterConfigs(strings.NewReader(`{"version":9}`)); err == nil {
		t.Error("wrong version accepted")
	}
}
