package serialize

import (
	"bytes"
	"strings"
	"testing"

	"polarfly/internal/er"
)

// FuzzDecodeTopology hardens the topology parser: arbitrary input must
// either fail cleanly or produce a well-formed graph that round-trips.
func FuzzDecodeTopology(f *testing.F) {
	pg, err := er.New(3)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := EncodeTopology(&buf, pg.G, 3); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add(`{"version":1,"n":0,"edges":[]}`)
	f.Add(`{"version":1,"n":3,"edges":[[0,1],[1,2]]}`)
	f.Add(`{"version":1,"n":2,"edges":[[0,9]]}`)
	f.Add(`not json at all`)
	f.Fuzz(func(t *testing.T, doc string) {
		g, q, err := DecodeTopology(strings.NewReader(doc))
		if err != nil {
			return
		}
		if g.N() < 0 || q < 0 && q != 0 {
			t.Fatalf("decoded invalid graph: n=%d q=%d", g.N(), q)
		}
		var out bytes.Buffer
		if err := EncodeTopology(&out, g, q); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		g2, q2, err := DecodeTopology(&out)
		if err != nil {
			t.Fatalf("round-trip decode failed: %v", err)
		}
		if g2.N() != g.N() || g2.M() != g.M() || q2 != q {
			t.Fatal("round trip not stable")
		}
	})
}

// FuzzDecodeForest hardens the forest parser similarly.
func FuzzDecodeForest(f *testing.F) {
	f.Add(`{"version":1,"kind":"x","trees":[{"root":0,"parent":[-1,0]}]}`)
	f.Add(`{"version":1,"kind":"x","trees":[{"root":0,"parent":[-1,2,1]}]}`)
	f.Add(`{"version":1,"kind":"x","trees":[]}`)
	f.Add(`{"version":1}`)
	f.Fuzz(func(t *testing.T, doc string) {
		forest, _, err := DecodeForest(strings.NewReader(doc), nil)
		if err != nil {
			return
		}
		// Anything accepted must be structurally valid trees.
		for i, tr := range forest {
			if tr.Parent[tr.Root] != -1 {
				t.Fatalf("tree %d root has a parent", i)
			}
			if tr.MaxDepth() < 0 {
				t.Fatalf("tree %d negative depth", i)
			}
		}
	})
}
