// Package serialize provides a stable JSON interchange format for PolarFly
// topologies, Allreduce forests and router configurations, so that tree
// sets computed by this library can be consumed by external tooling (e.g.
// actual router configuration pipelines, visualisers, or other
// simulators), and re-imported losslessly.
package serialize

import (
	"encoding/json"
	"fmt"
	"io"

	"polarfly/internal/graph"
	"polarfly/internal/routercfg"
	"polarfly/internal/trees"
)

// FormatVersion is embedded in every document; bump on breaking changes.
const FormatVersion = 1

// Topology is the serialised form of a network graph.
type Topology struct {
	Version int      `json:"version"`
	N       int      `json:"n"`
	Edges   [][2]int `json:"edges"`
	// Q is the PolarFly order when applicable (0 otherwise).
	Q int `json:"q,omitempty"`
}

// Forest is the serialised form of a set of rooted spanning trees.
type Forest struct {
	Version int    `json:"version"`
	Kind    string `json:"kind"`
	Q       int    `json:"q,omitempty"`
	Trees   []Tree `json:"trees"`
}

// Tree is one rooted spanning tree in parent-array form.
type Tree struct {
	Root   int   `json:"root"`
	Parent []int `json:"parent"`
}

// EncodeTopology writes g as JSON.
func EncodeTopology(w io.Writer, g *graph.Graph, q int) error {
	doc := Topology{Version: FormatVersion, N: g.N(), Q: q}
	for _, e := range g.Edges() {
		doc.Edges = append(doc.Edges, [2]int{e.U, e.V})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}

// DecodeTopology reads a topology document and rebuilds the graph.
func DecodeTopology(r io.Reader) (*graph.Graph, int, error) {
	var doc Topology
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, 0, fmt.Errorf("serialize: %w", err)
	}
	if doc.Version != FormatVersion {
		return nil, 0, fmt.Errorf("serialize: unsupported version %d", doc.Version)
	}
	if doc.N < 0 {
		return nil, 0, fmt.Errorf("serialize: negative vertex count")
	}
	g := graph.New(doc.N)
	for _, e := range doc.Edges {
		if e[0] < 0 || e[0] >= doc.N || e[1] < 0 || e[1] >= doc.N || e[0] == e[1] {
			return nil, 0, fmt.Errorf("serialize: invalid edge %v", e)
		}
		g.AddEdge(e[0], e[1])
	}
	return g, doc.Q, nil
}

// RouterConfigs is the serialised form of a full per-router configuration
// set (the deployable artifact of routercfg.Build).
type RouterConfigs struct {
	Version int            `json:"version"`
	Kind    string         `json:"kind"`
	Q       int            `json:"q,omitempty"`
	Routers []RouterConfig `json:"routers"`
}

// RouterConfig mirrors routercfg.RouterConfig with stable JSON names.
type RouterConfig struct {
	Router int          `json:"router"`
	Ports  []int        `json:"ports"`
	Trees  []TreeConfig `json:"trees"`
}

// TreeConfig is one tree's programming at one router.
type TreeConfig struct {
	Tree      int      `json:"tree"`
	Role      string   `json:"role"`
	ReduceIn  []Stream `json:"reduce_in,omitempty"`
	ReduceOut *Stream  `json:"reduce_out,omitempty"`
	BcastIn   *Stream  `json:"bcast_in,omitempty"`
	BcastOut  []Stream `json:"bcast_out,omitempty"`
}

// Stream is one logical flow on a port.
type Stream struct {
	Port int `json:"port"`
	VC   int `json:"vc"`
}

// EncodeRouterConfigs writes the configuration set produced by
// routercfg.Build as JSON.
func EncodeRouterConfigs(w io.Writer, cfgs []routercfg.RouterConfig, kind string, q int) error {
	doc := RouterConfigs{Version: FormatVersion, Kind: kind, Q: q}
	for _, c := range cfgs {
		rc := RouterConfig{Router: c.Router, Ports: append([]int(nil), c.Ports...)}
		for _, tc := range c.Trees {
			out := TreeConfig{Tree: tc.Tree, Role: tc.Role.String()}
			for _, st := range tc.ReduceIn {
				out.ReduceIn = append(out.ReduceIn, Stream{Port: st.Port, VC: st.VCIndex})
			}
			if tc.ReduceOut != nil {
				out.ReduceOut = &Stream{Port: tc.ReduceOut.Port, VC: tc.ReduceOut.VCIndex}
			}
			if tc.BcastIn != nil {
				out.BcastIn = &Stream{Port: tc.BcastIn.Port, VC: tc.BcastIn.VCIndex}
			}
			for _, st := range tc.BcastOut {
				out.BcastOut = append(out.BcastOut, Stream{Port: st.Port, VC: st.VCIndex})
			}
			rc.Trees = append(rc.Trees, out)
		}
		doc.Routers = append(doc.Routers, rc)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}

// DecodeRouterConfigs reads a router-configuration document.
func DecodeRouterConfigs(r io.Reader) (*RouterConfigs, error) {
	var doc RouterConfigs
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("serialize: %w", err)
	}
	if doc.Version != FormatVersion {
		return nil, fmt.Errorf("serialize: unsupported version %d", doc.Version)
	}
	return &doc, nil
}

// EncodeForest writes a forest as JSON. kind is a free-form label
// ("low-depth", "hamiltonian", ...).
func EncodeForest(w io.Writer, forest []*trees.Tree, kind string, q int) error {
	doc := Forest{Version: FormatVersion, Kind: kind, Q: q}
	for _, t := range forest {
		doc.Trees = append(doc.Trees, Tree{Root: t.Root, Parent: append([]int(nil), t.Parent...)})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}

// DecodeForest reads a forest document, rebuilding validated trees. If g
// is non-nil every tree is additionally checked to span it.
func DecodeForest(r io.Reader, g *graph.Graph) ([]*trees.Tree, string, error) {
	var doc Forest
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, "", fmt.Errorf("serialize: %w", err)
	}
	if doc.Version != FormatVersion {
		return nil, "", fmt.Errorf("serialize: unsupported version %d", doc.Version)
	}
	var forest []*trees.Tree
	for i, td := range doc.Trees {
		t, err := trees.FromParent(td.Root, td.Parent)
		if err != nil {
			return nil, "", fmt.Errorf("serialize: tree %d: %w", i, err)
		}
		if g != nil {
			if err := t.ValidateSpanning(g); err != nil {
				return nil, "", fmt.Errorf("serialize: tree %d: %w", i, err)
			}
		}
		forest = append(forest, t)
	}
	return forest, doc.Kind, nil
}
