package serialize

import (
	"bytes"
	"strings"
	"testing"

	"polarfly/internal/er"
	"polarfly/internal/graph"
	"polarfly/internal/trees"
)

func TestTopologyRoundTrip(t *testing.T) {
	pg, err := er.New(5)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := EncodeTopology(&buf, pg.G, 5); err != nil {
		t.Fatal(err)
	}
	g2, q, err := DecodeTopology(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if q != 5 || g2.N() != pg.G.N() || g2.M() != pg.G.M() {
		t.Fatalf("round trip: q=%d N=%d M=%d", q, g2.N(), g2.M())
	}
	for _, e := range pg.G.Edges() {
		if !g2.HasEdge(e.U, e.V) {
			t.Fatalf("edge %v lost", e)
		}
	}
}

func TestForestRoundTrip(t *testing.T) {
	pg, err := er.New(5)
	if err != nil {
		t.Fatal(err)
	}
	l, err := er.NewLayout(pg, -1)
	if err != nil {
		t.Fatal(err)
	}
	forest, err := trees.LowDepthForest(l)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := EncodeForest(&buf, forest, "low-depth", 5); err != nil {
		t.Fatal(err)
	}
	back, kind, err := DecodeForest(&buf, pg.G)
	if err != nil {
		t.Fatal(err)
	}
	if kind != "low-depth" || len(back) != len(forest) {
		t.Fatalf("kind=%q trees=%d", kind, len(back))
	}
	for i := range forest {
		if back[i].Root != forest[i].Root {
			t.Fatalf("tree %d root changed", i)
		}
		for v := range forest[i].Parent {
			if back[i].Parent[v] != forest[i].Parent[v] {
				t.Fatalf("tree %d parent[%d] changed", i, v)
			}
		}
	}
}

func TestDecodeRejectsBadDocuments(t *testing.T) {
	cases := []string{
		`{`,                                    // malformed JSON
		`{"version":99,"n":2,"edges":[[0,1]]}`, // wrong version
		`{"version":1,"n":-1,"edges":[]}`,      // negative n
		`{"version":1,"n":2,"edges":[[0,5]]}`,  // out-of-range edge
		`{"version":1,"n":2,"edges":[[1,1]]}`,  // self-loop
	}
	for i, doc := range cases {
		if _, _, err := DecodeTopology(strings.NewReader(doc)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	forestCases := []string{
		`{`,
		`{"version":2,"kind":"x","trees":[]}`,
		`{"version":1,"kind":"x","trees":[{"root":0,"parent":[0,0]}]}`,    // root with parent
		`{"version":1,"kind":"x","trees":[{"root":0,"parent":[-1,2,1]}]}`, // cycle
	}
	for i, doc := range forestCases {
		if _, _, err := DecodeForest(strings.NewReader(doc), nil); err == nil {
			t.Errorf("forest case %d accepted", i)
		}
	}
}

func TestDecodeForestValidatesAgainstGraph(t *testing.T) {
	// A tree valid in isolation but using a non-topology edge must fail
	// when a graph is supplied: parent[2] = 0 needs edge (0,2), absent
	// from the path 0-1-2.
	doc := `{"version":1,"kind":"x","trees":[{"root":0,"parent":[-1,0,0]}]}`
	g := graph.New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	if _, _, err := DecodeForest(strings.NewReader(doc), g); err == nil {
		t.Error("non-spanning forest accepted")
	}
	// Without a graph the same document decodes fine.
	if _, _, err := DecodeForest(strings.NewReader(doc), nil); err != nil {
		t.Errorf("standalone decode failed: %v", err)
	}
}
