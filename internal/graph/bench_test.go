package graph

import (
	"math/rand"
	"testing"
)

func benchGraph(n int, p float64, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				g.AddEdge(i, j)
			}
		}
	}
	return g
}

func BenchmarkBFSDistances(b *testing.B) {
	g := benchGraph(500, 0.05, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.BFSDistances(i % 500)
	}
}

func BenchmarkDiameter(b *testing.B) {
	g := benchGraph(200, 0.1, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.Diameter()
	}
}

func BenchmarkHasUniqueTwoPaths(b *testing.B) {
	g := benchGraph(100, 0.05, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.HasUniqueTwoPaths()
	}
}

func BenchmarkRandomMaximalIndependentSet(b *testing.B) {
	g := benchGraph(1000, 0.01, 4)
	rng := rand.New(rand.NewSource(5))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.RandomMaximalIndependentSet(rng)
	}
}

func BenchmarkMaximumIndependentSet(b *testing.B) {
	g := benchGraph(40, 0.3, 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.MaximumIndependentSet()
	}
}

func BenchmarkIsomorphicPetersenSized(b *testing.B) {
	g := benchGraph(30, 0.25, 7)
	perm := rand.New(rand.NewSource(8)).Perm(30)
	h := New(30)
	for _, e := range g.Edges() {
		h.AddEdge(perm[e.U], perm[e.V])
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := Isomorphic(g, h); !ok {
			b.Fatal("should be isomorphic")
		}
	}
}
