package graph

// This file implements maximum flow (Dinic's algorithm) and global edge
// connectivity. They provide an independent upper/lower sanity bracket on
// the paper's tree-packing results: by Nash-Williams–Tutte, a λ-edge-
// connected graph packs at least ⌊λ/2⌋ edge-disjoint spanning trees; ER_q
// has λ = q (its minimum degree, attained at quadrics), so ⌊q/2⌋ disjoint
// trees are guaranteed to exist — the paper's Singer construction achieves
// ⌊(q+1)/2⌋, matching the edge-count upper bound (Lemma 7.18).

// dinic is a unit-capacity-per-undirected-edge max-flow solver.
type dinic struct {
	n     int
	head  []int
	to    []int
	next  []int
	cap   []int
	level []int
	iter  []int
}

func newDinic(n int) *dinic {
	d := &dinic{n: n, head: make([]int, n), level: make([]int, n), iter: make([]int, n)}
	for i := range d.head {
		d.head[i] = -1
	}
	return d
}

// addEdge inserts a directed edge with the given capacity plus its reverse
// with capacity revCap (use equal capacities to model an undirected edge).
func (d *dinic) addEdge(u, v, capacity, revCap int) {
	d.to = append(d.to, v)
	d.cap = append(d.cap, capacity)
	d.next = append(d.next, d.head[u])
	d.head[u] = len(d.to) - 1

	d.to = append(d.to, u)
	d.cap = append(d.cap, revCap)
	d.next = append(d.next, d.head[v])
	d.head[v] = len(d.to) - 1
}

func (d *dinic) bfs(s, t int) bool {
	for i := range d.level {
		d.level[i] = -1
	}
	d.level[s] = 0
	queue := []int{s}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for e := d.head[v]; e != -1; e = d.next[e] {
			if d.cap[e] > 0 && d.level[d.to[e]] == -1 {
				d.level[d.to[e]] = d.level[v] + 1
				queue = append(queue, d.to[e])
			}
		}
	}
	return d.level[t] >= 0
}

func (d *dinic) dfs(v, t, f int) int {
	if v == t {
		return f
	}
	for ; d.iter[v] != -1; d.iter[v] = d.next[d.iter[v]] {
		e := d.iter[v]
		u := d.to[e]
		if d.cap[e] > 0 && d.level[u] == d.level[v]+1 {
			got := d.dfs(u, t, min(f, d.cap[e]))
			if got > 0 {
				d.cap[e] -= got
				d.cap[e^1] += got
				return got
			}
		}
	}
	return 0
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// maxflow computes the maximum s-t flow.
func (d *dinic) maxflow(s, t int) int {
	flow := 0
	for d.bfs(s, t) {
		copy(d.iter, d.head)
		for {
			f := d.dfs(s, t, 1<<30)
			if f == 0 {
				break
			}
			flow += f
		}
	}
	return flow
}

// MaxFlow returns the maximum number of edge-disjoint paths between s and
// t in g (each undirected edge has unit capacity in both directions).
func (g *Graph) MaxFlow(s, t int) int {
	g.checkVertex(s)
	g.checkVertex(t)
	if s == t {
		panic("graph: MaxFlow with s == t")
	}
	d := newDinic(g.n)
	for e := range g.edges {
		d.addEdge(e.U, e.V, 1, 1)
	}
	return d.maxflow(s, t)
}

// EdgeConnectivity returns the global edge connectivity λ(g): the minimum
// number of edges whose removal disconnects g. Zero for disconnected or
// trivial graphs. Computed as the minimum of n−1 max-flow runs from vertex
// 0 (a classic identity: some global min cut separates vertex 0 from some
// other vertex).
func (g *Graph) EdgeConnectivity() int {
	if g.n < 2 || !g.IsConnected() {
		return 0
	}
	lambda := 1 << 30
	for t := 1; t < g.n; t++ {
		if f := g.MaxFlow(0, t); f < lambda {
			lambda = f
			if lambda == 0 {
				break
			}
		}
	}
	return lambda
}

// TreePackingBounds returns the Nash-Williams–Tutte lower bound ⌊λ/2⌋ and
// the edge-count upper bound ⌊m/(n−1)⌋ on the number of edge-disjoint
// spanning trees of g.
func (g *Graph) TreePackingBounds() (lower, upper int) {
	if g.n < 2 {
		return 0, 0
	}
	return g.EdgeConnectivity() / 2, g.M() / (g.n - 1)
}
