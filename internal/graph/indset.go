package graph

import (
	"math/rand"
	"sort"
)

// This file implements the independent-set machinery of §7.3: the paper
// selects a maximum set of pairwise edge-disjoint Hamiltonian paths by
// computing independent sets in the "pair graph" G_S, whose vertices are
// Hamiltonian difference-element pairs and whose edges join pairs sharing
// an element. The paper reports that random maximal independent sets find a
// maximum one within 30 instances for all q < 128; we reproduce that
// procedure and additionally provide an exact branch-and-bound solver used
// to validate the randomized result on small instances.

// RandomMaximalIndependentSet returns a maximal (not necessarily maximum)
// independent set of g, grown greedily over a random vertex permutation
// drawn from rng. The result is sorted ascending.
func (g *Graph) RandomMaximalIndependentSet(rng *rand.Rand) []int {
	perm := rng.Perm(g.n)
	blocked := make([]bool, g.n)
	var set []int
	for _, v := range perm {
		if blocked[v] {
			continue
		}
		set = append(set, v)
		blocked[v] = true
		for u := range g.adj[v] {
			blocked[u] = true
		}
	}
	sort.Ints(set)
	return set
}

// IsIndependentSet reports whether no two vertices of set are adjacent in g.
func (g *Graph) IsIndependentSet(set []int) bool {
	for i := 0; i < len(set); i++ {
		for j := i + 1; j < len(set); j++ {
			if g.HasEdge(set[i], set[j]) {
				return false
			}
		}
	}
	return true
}

// IsMaximalIndependentSet reports whether set is independent and cannot be
// extended by any vertex of g.
func (g *Graph) IsMaximalIndependentSet(set []int) bool {
	if !g.IsIndependentSet(set) {
		return false
	}
	in := make([]bool, g.n)
	for _, v := range set {
		in[v] = true
	}
	for v := 0; v < g.n; v++ {
		if in[v] {
			continue
		}
		extendable := true
		for u := range g.adj[v] {
			if in[u] {
				extendable = false
				break
			}
		}
		if extendable {
			return false
		}
	}
	return true
}

// SearchIndependentSet repeats RandomMaximalIndependentSet up to maxTries
// times with the given rng and returns the first set reaching target size
// (true), or the largest set found (false). This mirrors the paper's "30
// random instances" procedure.
func (g *Graph) SearchIndependentSet(target, maxTries int, rng *rand.Rand) ([]int, bool) {
	var best []int
	for i := 0; i < maxTries; i++ {
		set := g.RandomMaximalIndependentSet(rng)
		if len(set) > len(best) {
			best = set
		}
		if len(best) >= target {
			return best, true
		}
	}
	return best, false
}

// MaximumIndependentSet returns a maximum independent set of g, computed by
// branch and bound with greedy bounding. Exponential in the worst case;
// intended for the small pair graphs G_S (at most a few thousand vertices
// for q < 128, and those are sparse interval-like graphs where the solver
// is fast). For larger inputs prefer SearchIndependentSet.
func (g *Graph) MaximumIndependentSet() []int {
	// Order vertices by descending degree so branching removes many edges
	// early.
	order := make([]int, g.n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		return g.Degree(order[i]) > g.Degree(order[j])
	})

	var best []int
	var cur []int

	var rec func(candidates []int)
	rec = func(candidates []int) {
		if len(cur)+len(candidates) <= len(best) {
			return // bound: even taking every candidate cannot beat best
		}
		if len(candidates) == 0 {
			if len(cur) > len(best) {
				best = append([]int(nil), cur...)
			}
			return
		}
		v := candidates[0]
		rest := candidates[1:]

		// Branch 1: include v; drop its neighbors from the candidates.
		var pruned []int
		for _, u := range rest {
			if !g.adj[v][u] {
				pruned = append(pruned, u)
			}
		}
		cur = append(cur, v)
		rec(pruned)
		cur = cur[:len(cur)-1]

		// Branch 2: exclude v.
		rec(rest)
	}
	rec(order)
	sort.Ints(best)
	return best
}
