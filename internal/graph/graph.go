// Package graph provides the undirected-graph substrate shared by the
// PolarFly constructions: adjacency queries, BFS and diameter (Theorem 6.1
// says ER_q has diameter 2 with at most one 2-path between any vertex pair),
// spanning-subgraph validation, maximal/maximum independent sets (used in
// §7.3 to select edge-disjoint Hamiltonian paths), and an isomorphism
// checker (used to verify Theorem 6.6, S_q ≅ ER_q).
//
// Vertices are dense integers 0..N-1. Graphs are simple: no self-loops, no
// parallel edges. Self-orthogonal quadrics / reflection points, which the
// paper draws with self-loops, are tracked by the er and singer packages as
// vertex attributes instead.
package graph

import (
	"fmt"
	"sort"
)

// Edge is an undirected edge in canonical form (U < V).
type Edge struct {
	U, V int
}

// NewEdge returns the canonical form of the edge {u, v}. It panics if
// u == v, because the graphs in this package are simple.
func NewEdge(u, v int) Edge {
	if u == v {
		panic(fmt.Sprintf("graph: self-loop at %d", u))
	}
	if u > v {
		u, v = v, u
	}
	return Edge{u, v}
}

// Other returns the endpoint of e that is not w. It panics if w is not an
// endpoint of e.
func (e Edge) Other(w int) int {
	switch w {
	case e.U:
		return e.V
	case e.V:
		return e.U
	}
	panic(fmt.Sprintf("graph: %d is not an endpoint of %v", w, e))
}

// Graph is a simple undirected graph on vertices 0..N-1.
type Graph struct {
	n     int
	adj   []map[int]bool
	edges map[Edge]bool
}

// New returns an empty graph on n vertices.
func New(n int) *Graph {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	g := &Graph{n: n, adj: make([]map[int]bool, n), edges: make(map[Edge]bool)}
	for i := range g.adj {
		g.adj[i] = make(map[int]bool)
	}
	return g
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int { return len(g.edges) }

func (g *Graph) checkVertex(v int) {
	if v < 0 || v >= g.n {
		panic(fmt.Sprintf("graph: vertex %d out of range [0,%d)", v, g.n))
	}
}

// AddEdge inserts the undirected edge {u, v}. Adding an existing edge is a
// no-op; adding a self-loop panics.
func (g *Graph) AddEdge(u, v int) {
	g.checkVertex(u)
	g.checkVertex(v)
	e := NewEdge(u, v)
	if g.edges[e] {
		return
	}
	g.edges[e] = true
	g.adj[u][v] = true
	g.adj[v][u] = true
}

// HasEdge reports whether {u, v} is an edge.
func (g *Graph) HasEdge(u, v int) bool {
	g.checkVertex(u)
	g.checkVertex(v)
	if u == v {
		return false
	}
	return g.adj[u][v]
}

// Degree returns the degree of v.
func (g *Graph) Degree(v int) int {
	g.checkVertex(v)
	return len(g.adj[v])
}

// Neighbors returns the neighbors of v in ascending order.
func (g *Graph) Neighbors(v int) []int {
	g.checkVertex(v)
	out := make([]int, 0, len(g.adj[v]))
	for u := range g.adj[v] {
		out = append(out, u)
	}
	sort.Ints(out)
	return out
}

// Edges returns all edges sorted by (U, V).
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, len(g.edges))
	for e := range g.edges {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].V < out[j].V
	})
	return out
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := New(g.n)
	for e := range g.edges {
		c.AddEdge(e.U, e.V)
	}
	return c
}

// MaxDegree returns the maximum vertex degree (0 for an empty graph).
func (g *Graph) MaxDegree() int {
	max := 0
	for v := 0; v < g.n; v++ {
		if d := len(g.adj[v]); d > max {
			max = d
		}
	}
	return max
}

// BFSDistances returns the array of hop distances from src, with -1 for
// unreachable vertices.
func (g *Graph) BFSDistances(src int) []int {
	g.checkVertex(src)
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		// Sorted neighbor order keeps the queue (and any traversal built
		// on it) deterministic; distances alone would not need it.
		for _, u := range g.Neighbors(v) {
			if dist[u] == -1 {
				dist[u] = dist[v] + 1
				queue = append(queue, u)
			}
		}
	}
	return dist
}

// IsConnected reports whether g is connected (true for n ≤ 1).
func (g *Graph) IsConnected() bool {
	if g.n <= 1 {
		return true
	}
	for _, d := range g.BFSDistances(0) {
		if d == -1 {
			return false
		}
	}
	return true
}

// Diameter returns the graph diameter, or -1 if g is disconnected or has
// fewer than 2 vertices.
func (g *Graph) Diameter() int {
	if g.n < 2 {
		return -1
	}
	diam := 0
	for v := 0; v < g.n; v++ {
		for _, d := range g.BFSDistances(v) {
			if d == -1 {
				return -1
			}
			if d > diam {
				diam = d
			}
		}
	}
	return diam
}

// CountCommonNeighbors returns |N(u) ∩ N(v)|, i.e. the number of 2-paths
// between u and v. Theorem 6.1 asserts this is at most 1 for distinct
// vertices of ER_q.
func (g *Graph) CountCommonNeighbors(u, v int) int {
	g.checkVertex(u)
	g.checkVertex(v)
	a, b := g.adj[u], g.adj[v]
	if len(b) < len(a) {
		a, b = b, a
	}
	count := 0
	for w := range a {
		if b[w] {
			count++
		}
	}
	return count
}

// HasUniqueTwoPaths reports whether every pair of distinct vertices has at
// most one common neighbor (the defining "friendship-like" property of
// polarity graphs, Theorem 6.1).
func (g *Graph) HasUniqueTwoPaths() bool {
	for u := 0; u < g.n; u++ {
		for v := u + 1; v < g.n; v++ {
			if g.CountCommonNeighbors(u, v) > 1 {
				return false
			}
		}
	}
	return true
}

// Girth returns the length of the shortest cycle of g, or -1 if g is
// acyclic. Computed by BFS from every vertex; for polarity graphs the
// answer is 3 for q ≥ 3 (self-conjugate triangles exist) while unique
// 2-paths forbid any C4 — both facts are tested in the er package.
func (g *Graph) Girth() int {
	best := -1
	for src := 0; src < g.n; src++ {
		dist := make([]int, g.n)
		parent := make([]int, g.n)
		for i := range dist {
			dist[i] = -1
			parent[i] = -1
		}
		dist[src] = 0
		queue := []int{src}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			// Sorted neighbors pin down which BFS tree (and so which
			// parent pointers) this scan builds, making the per-source
			// cycle bound reproducible run to run.
			for _, u := range g.Neighbors(v) {
				if dist[u] == -1 {
					dist[u] = dist[v] + 1
					parent[u] = v
					queue = append(queue, u)
				} else if u != parent[v] {
					// Non-tree edge closes a cycle through src of length
					// ≥ dist[v]+dist[u]+1 (exact when both paths are
					// src-shortest and internally disjoint; taking the
					// minimum over all sources makes the bound tight).
					if c := dist[v] + dist[u] + 1; best == -1 || c < best {
						best = c
					}
				}
			}
		}
	}
	return best
}

// DegreeSequence returns the sorted (ascending) degree sequence.
func (g *Graph) DegreeSequence() []int {
	out := make([]int, g.n)
	for v := 0; v < g.n; v++ {
		out[v] = len(g.adj[v])
	}
	sort.Ints(out)
	return out
}

// IsSpanningConnectedAcyclic reports whether the given edge set forms a
// spanning tree of g: exactly n−1 edges, all present in g, connecting every
// vertex, with no cycle.
func (g *Graph) IsSpanningConnectedAcyclic(edges []Edge) bool {
	if len(edges) != g.n-1 {
		return false
	}
	uf := newUnionFind(g.n)
	for _, e := range edges {
		if e.U < 0 || e.V >= g.n || !g.edges[NewEdge(e.U, e.V)] {
			return false
		}
		if !uf.union(e.U, e.V) {
			return false // cycle
		}
	}
	return uf.components == 1
}

type unionFind struct {
	parent     []int
	components int
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int, n), components: n}
	for i := range uf.parent {
		uf.parent[i] = i
	}
	return uf
}

func (uf *unionFind) find(x int) int {
	for uf.parent[x] != x {
		uf.parent[x] = uf.parent[uf.parent[x]]
		x = uf.parent[x]
	}
	return x
}

// union merges the sets of a and b, returning false if they were already in
// the same set.
func (uf *unionFind) union(a, b int) bool {
	ra, rb := uf.find(a), uf.find(b)
	if ra == rb {
		return false
	}
	uf.parent[ra] = rb
	uf.components--
	return true
}
