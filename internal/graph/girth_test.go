package graph

import "testing"

func TestGirthKnown(t *testing.T) {
	cases := []struct {
		g    *Graph
		want int
	}{
		{cycleGraph(3), 3},
		{cycleGraph(5), 5},
		{cycleGraph(8), 8},
		{completeGraph(4), 3},
		{petersen(), 5},
		{pathGraph(6), -1}, // acyclic
		{New(3), -1},       // empty
	}
	for i, c := range cases {
		if got := c.g.Girth(); got != c.want {
			t.Errorf("case %d: girth %d, want %d", i, got, c.want)
		}
	}
	// K3,3 is bipartite with girth 4.
	k33 := New(6)
	for i := 0; i < 3; i++ {
		for j := 3; j < 6; j++ {
			k33.AddEdge(i, j)
		}
	}
	if got := k33.Girth(); got != 4 {
		t.Errorf("K3,3 girth %d, want 4", got)
	}
}
