package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// pathGraph returns the path 0-1-...-(n-1).
func pathGraph(n int) *Graph {
	g := New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

// cycleGraph returns the cycle on n vertices.
func cycleGraph(n int) *Graph {
	g := pathGraph(n)
	g.AddEdge(n-1, 0)
	return g
}

// completeGraph returns K_n.
func completeGraph(n int) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddEdge(i, j)
		}
	}
	return g
}

// petersen returns the Petersen graph (3-regular, diameter 2, girth 5).
func petersen() *Graph {
	g := New(10)
	for i := 0; i < 5; i++ {
		g.AddEdge(i, (i+1)%5)     // outer cycle
		g.AddEdge(5+i, 5+(i+2)%5) // inner pentagram
		g.AddEdge(i, 5+i)         // spokes
	}
	return g
}

func TestEdgeCanonical(t *testing.T) {
	if NewEdge(3, 1) != (Edge{1, 3}) {
		t.Error("NewEdge should canonicalize")
	}
	e := NewEdge(2, 7)
	if e.Other(2) != 7 || e.Other(7) != 2 {
		t.Error("Other broken")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("self-loop should panic")
			}
		}()
		NewEdge(4, 4)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Other with non-endpoint should panic")
			}
		}()
		e.Other(5)
	}()
}

func TestBasicAccessors(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(1, 2) // duplicate is a no-op
	if g.N() != 5 || g.M() != 2 {
		t.Fatalf("N=%d M=%d", g.N(), g.M())
	}
	if !g.HasEdge(2, 1) || g.HasEdge(0, 2) || g.HasEdge(3, 3) {
		t.Error("HasEdge wrong")
	}
	if g.Degree(1) != 2 || g.Degree(4) != 0 {
		t.Error("Degree wrong")
	}
	nb := g.Neighbors(1)
	if len(nb) != 2 || nb[0] != 0 || nb[1] != 2 {
		t.Errorf("Neighbors(1) = %v", nb)
	}
	es := g.Edges()
	if len(es) != 2 || es[0] != (Edge{0, 1}) || es[1] != (Edge{1, 2}) {
		t.Errorf("Edges = %v", es)
	}
	if g.MaxDegree() != 2 {
		t.Error("MaxDegree wrong")
	}
	c := g.Clone()
	c.AddEdge(3, 4)
	if g.M() != 2 || c.M() != 3 {
		t.Error("Clone not independent")
	}
}

func TestVertexRangePanics(t *testing.T) {
	g := New(3)
	for _, fn := range []func(){
		func() { g.AddEdge(0, 3) },
		func() { g.HasEdge(-1, 0) },
		func() { g.Degree(7) },
		func() { g.BFSDistances(3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for out-of-range vertex")
				}
			}()
			fn()
		}()
	}
}

func TestBFSAndDiameter(t *testing.T) {
	p := pathGraph(5)
	d := p.BFSDistances(0)
	for i, want := range []int{0, 1, 2, 3, 4} {
		if d[i] != want {
			t.Errorf("path dist[%d] = %d, want %d", i, d[i], want)
		}
	}
	if p.Diameter() != 4 {
		t.Errorf("path diameter = %d", p.Diameter())
	}
	if cycleGraph(6).Diameter() != 3 {
		t.Error("C6 diameter should be 3")
	}
	if completeGraph(7).Diameter() != 1 {
		t.Error("K7 diameter should be 1")
	}
	if petersen().Diameter() != 2 {
		t.Error("Petersen diameter should be 2")
	}

	disc := New(4)
	disc.AddEdge(0, 1)
	if disc.IsConnected() {
		t.Error("disconnected graph reported connected")
	}
	if disc.Diameter() != -1 {
		t.Error("diameter of disconnected graph should be -1")
	}
	if got := disc.BFSDistances(0)[3]; got != -1 {
		t.Errorf("unreachable distance = %d", got)
	}
	if !New(1).IsConnected() || !New(0).IsConnected() {
		t.Error("trivial graphs should be connected")
	}
}

func TestCommonNeighborsAndUniqueTwoPaths(t *testing.T) {
	// C4 has two common neighbors for opposite vertices.
	c4 := cycleGraph(4)
	if c4.CountCommonNeighbors(0, 2) != 2 {
		t.Error("C4 opposite vertices should share 2 neighbors")
	}
	if c4.HasUniqueTwoPaths() {
		t.Error("C4 should fail unique-2-paths")
	}
	// C5 and Petersen are C4-free.
	if !cycleGraph(5).HasUniqueTwoPaths() {
		t.Error("C5 should have unique 2-paths")
	}
	if !petersen().HasUniqueTwoPaths() {
		t.Error("Petersen should have unique 2-paths")
	}
}

func TestDegreeSequence(t *testing.T) {
	g := pathGraph(4)
	got := g.DegreeSequence()
	want := []int{1, 1, 2, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("DegreeSequence = %v, want %v", got, want)
		}
	}
}

func TestIsSpanningConnectedAcyclic(t *testing.T) {
	g := completeGraph(5)
	tree := []Edge{{0, 1}, {1, 2}, {2, 3}, {3, 4}}
	if !g.IsSpanningConnectedAcyclic(tree) {
		t.Error("path tree rejected")
	}
	star := []Edge{{0, 1}, {0, 2}, {0, 3}, {0, 4}}
	if !g.IsSpanningConnectedAcyclic(star) {
		t.Error("star tree rejected")
	}
	cycle := []Edge{{0, 1}, {1, 2}, {2, 0}, {3, 4}}
	if g.IsSpanningConnectedAcyclic(cycle) {
		t.Error("cycle accepted")
	}
	short := []Edge{{0, 1}, {1, 2}}
	if g.IsSpanningConnectedAcyclic(short) {
		t.Error("too-few edges accepted")
	}
	// Edge not present in the host graph.
	h := pathGraph(5)
	if h.IsSpanningConnectedAcyclic(star) {
		t.Error("tree with non-graph edges accepted")
	}
}

func TestRandomMaximalIndependentSet(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(30) + 2
		g := New(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.3 {
					g.AddEdge(i, j)
				}
			}
		}
		set := g.RandomMaximalIndependentSet(rng)
		if !g.IsMaximalIndependentSet(set) {
			t.Fatalf("trial %d: set %v not maximal independent", trial, set)
		}
	}
}

func TestIsIndependentSetHelpers(t *testing.T) {
	g := pathGraph(4)
	if !g.IsIndependentSet([]int{0, 2}) {
		t.Error("{0,2} should be independent in P4")
	}
	if g.IsIndependentSet([]int{0, 1}) {
		t.Error("{0,1} should not be independent in P4")
	}
	if g.IsMaximalIndependentSet([]int{0}) {
		t.Error("{0} is not maximal in P4")
	}
	if !g.IsMaximalIndependentSet([]int{0, 2}) {
		t.Error("{0,2} is maximal in P4")
	}
	if !g.IsMaximalIndependentSet([]int{1, 3}) {
		t.Error("{1,3} is maximal in P4")
	}
}

func TestMaximumIndependentSetKnown(t *testing.T) {
	cases := []struct {
		g    *Graph
		want int
	}{
		{completeGraph(6), 1},
		{pathGraph(7), 4},
		{cycleGraph(7), 3},
		{cycleGraph(8), 4},
		{petersen(), 4},
		{New(5), 5}, // empty graph
	}
	for i, c := range cases {
		set := c.g.MaximumIndependentSet()
		if !c.g.IsIndependentSet(set) {
			t.Errorf("case %d: result not independent: %v", i, set)
		}
		if len(set) != c.want {
			t.Errorf("case %d: |MIS| = %d, want %d", i, len(set), c.want)
		}
	}
}

func TestSearchIndependentSet(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := petersen()
	set, ok := g.SearchIndependentSet(4, 30, rng)
	if !ok || len(set) != 4 {
		t.Errorf("SearchIndependentSet on Petersen: got %v ok=%v", set, ok)
	}
	// Unreachable target returns best effort.
	set, ok = g.SearchIndependentSet(5, 10, rng)
	if ok {
		t.Errorf("Petersen cannot have an independent set of size 5, got %v", set)
	}
	if !g.IsIndependentSet(set) {
		t.Error("best-effort set is not independent")
	}
}

func TestMaximumVsRandomConsistency(t *testing.T) {
	// On random graphs, the exact solver must never be beaten by the
	// randomized one.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		n := rng.Intn(18) + 4
		g := New(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.4 {
					g.AddEdge(i, j)
				}
			}
		}
		exact := g.MaximumIndependentSet()
		if !g.IsIndependentSet(exact) {
			t.Fatal("exact result not independent")
		}
		for i := 0; i < 10; i++ {
			r := g.RandomMaximalIndependentSet(rng)
			if len(r) > len(exact) {
				t.Fatalf("random set %v beats exact %v", r, exact)
			}
		}
	}
}

func TestIsomorphicPositive(t *testing.T) {
	// C5 relabeled.
	g := cycleGraph(5)
	h := New(5)
	perm := []int{2, 0, 4, 1, 3}
	for _, e := range g.Edges() {
		h.AddEdge(perm[e.U], perm[e.V])
	}
	m, ok := Isomorphic(g, h)
	if !ok {
		t.Fatal("relabeled C5 not detected isomorphic")
	}
	if !VerifyMapping(g, h, m) {
		t.Fatalf("returned mapping %v is not an isomorphism", m)
	}
	// Petersen relabeled.
	p := petersen()
	p2 := New(10)
	perm10 := rand.New(rand.NewSource(99)).Perm(10)
	for _, e := range p.Edges() {
		p2.AddEdge(perm10[e.U], perm10[e.V])
	}
	m, ok = Isomorphic(p, p2)
	if !ok || !VerifyMapping(p, p2, m) {
		t.Fatal("relabeled Petersen not matched")
	}
}

func TestIsomorphicNegative(t *testing.T) {
	// C6 vs two triangles: same degree sequence, not isomorphic.
	twoTriangles := New(6)
	twoTriangles.AddEdge(0, 1)
	twoTriangles.AddEdge(1, 2)
	twoTriangles.AddEdge(2, 0)
	twoTriangles.AddEdge(3, 4)
	twoTriangles.AddEdge(4, 5)
	twoTriangles.AddEdge(5, 3)
	if _, ok := Isomorphic(cycleGraph(6), twoTriangles); ok {
		t.Error("C6 should not be isomorphic to 2×K3")
	}
	// Different sizes.
	if _, ok := Isomorphic(cycleGraph(5), cycleGraph(6)); ok {
		t.Error("C5 vs C6 should fail")
	}
	// Same size, different edge count.
	if _, ok := Isomorphic(pathGraph(5), cycleGraph(5)); ok {
		t.Error("P5 vs C5 should fail")
	}
	// K3,3 vs K4 plus isolated: degree sequences differ.
	k33 := New(6)
	for i := 0; i < 3; i++ {
		for j := 3; j < 6; j++ {
			k33.AddEdge(i, j)
		}
	}
	prism := New(6) // triangular prism: also 3-regular on 6 vertices
	prism.AddEdge(0, 1)
	prism.AddEdge(1, 2)
	prism.AddEdge(2, 0)
	prism.AddEdge(3, 4)
	prism.AddEdge(4, 5)
	prism.AddEdge(5, 3)
	prism.AddEdge(0, 3)
	prism.AddEdge(1, 4)
	prism.AddEdge(2, 5)
	if _, ok := Isomorphic(k33, prism); ok {
		t.Error("K3,3 should not be isomorphic to the triangular prism")
	}
}

func TestIsomorphicQuickRandomRelabel(t *testing.T) {
	prop := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw)%12 + 3
		g := New(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.4 {
					g.AddEdge(i, j)
				}
			}
		}
		perm := rng.Perm(n)
		h := New(n)
		for _, e := range g.Edges() {
			h.AddEdge(perm[e.U], perm[e.V])
		}
		m, ok := Isomorphic(g, h)
		return ok && VerifyMapping(g, h, m)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestVerifyMappingRejectsBad(t *testing.T) {
	g := cycleGraph(4)
	h := cycleGraph(4)
	if VerifyMapping(g, h, []int{0, 1, 2}) {
		t.Error("short mapping accepted")
	}
	if VerifyMapping(g, h, []int{0, 0, 1, 2}) {
		t.Error("non-bijective mapping accepted")
	}
	if VerifyMapping(g, h, []int{0, 2, 1, 3}) {
		t.Error("non-edge-preserving mapping accepted")
	}
	if !VerifyMapping(g, h, []int{0, 1, 2, 3}) {
		t.Error("identity mapping rejected")
	}
}
