package graph

import "sort"

// This file implements a backtracking graph-isomorphism checker in the
// spirit of VF2, with degree and neighborhood-degree-multiset invariants
// for pruning. It is used to verify Theorem 6.6 (the Singer graph S_q is
// isomorphic to the Erdős–Rényi polarity graph ER_q) on constructed
// instances, and for general-purpose structural testing.

// Isomorphic reports whether g and h are isomorphic, and if so returns a
// vertex mapping m with m[v in g] = vertex in h. The search is exponential
// in the worst case but fast on the highly structured graphs of this
// repository; intended for N up to a few hundred.
func Isomorphic(g, h *Graph) ([]int, bool) {
	if g.n != h.n || g.M() != h.M() {
		return nil, false
	}
	n := g.n
	if n == 0 {
		return []int{}, true
	}

	// Invariant signature: (degree, sorted multiset of neighbor degrees).
	sig := func(gr *Graph, v int) string {
		ds := make([]int, 0, gr.Degree(v))
		for u := range gr.adj[v] {
			ds = append(ds, gr.Degree(u))
		}
		sort.Ints(ds)
		buf := make([]byte, 0, 4+4*len(ds))
		put := func(x int) {
			buf = append(buf, byte(x>>24), byte(x>>16), byte(x>>8), byte(x))
		}
		put(gr.Degree(v))
		for _, d := range ds {
			put(d)
		}
		return string(buf)
	}
	gsig := make([]string, n)
	hsig := make([]string, n)
	hBySig := make(map[string][]int)
	gCount := make(map[string]int)
	for v := 0; v < n; v++ {
		gsig[v] = sig(g, v)
		hsig[v] = sig(h, v)
		hBySig[hsig[v]] = append(hBySig[hsig[v]], v)
		gCount[gsig[v]]++
	}
	for s, c := range gCount {
		if len(hBySig[s]) != c {
			return nil, false
		}
	}

	// Order g's vertices so each one after the first is adjacent to an
	// already-mapped vertex where possible (connected expansion), breaking
	// ties by rarest signature for stronger pruning.
	order := connectedOrder(g, gsig, gCount)

	mapping := make([]int, n)
	for i := range mapping {
		mapping[i] = -1
	}
	used := make([]bool, n)

	var rec func(i int) bool
	rec = func(i int) bool {
		if i == n {
			return true
		}
		v := order[i]
		for _, w := range hBySig[gsig[v]] {
			if used[w] {
				continue
			}
			ok := true
			for u := range g.adj[v] {
				if m := mapping[u]; m != -1 && !h.adj[w][m] {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			// Reverse check via counting: the number of mapped neighbors of
			// v in g must equal the number of mapped preimages adjacent to w
			// in h. Since we verified every mapped g-neighbor maps to an
			// h-neighbor, equality of counts implies exact correspondence.
			mappedNbrsG := 0
			for u := range g.adj[v] {
				if mapping[u] != -1 {
					mappedNbrsG++
				}
			}
			mappedNbrsH := 0
			for u := range h.adj[w] {
				if usedBy(mapping, order[:i], u) {
					mappedNbrsH++
				}
			}
			if mappedNbrsG != mappedNbrsH {
				continue
			}
			mapping[v] = w
			used[w] = true
			if rec(i + 1) {
				return true
			}
			mapping[v] = -1
			used[w] = false
		}
		return false
	}
	if rec(0) {
		return mapping, true
	}
	return nil, false
}

// usedBy reports whether h-vertex u is the image of some already-mapped
// g-vertex in prefix.
func usedBy(mapping []int, prefix []int, u int) bool {
	for _, v := range prefix {
		if mapping[v] == u {
			return true
		}
	}
	return false
}

// connectedOrder returns a vertex order that starts from the vertex with
// the rarest signature and grows a connected frontier.
func connectedOrder(g *Graph, sig []string, count map[string]int) []int {
	n := g.n
	visited := make([]bool, n)
	var order []int
	for len(order) < n {
		// Seed: unvisited vertex with rarest signature.
		seed, bestCount := -1, n+1
		for v := 0; v < n; v++ {
			if !visited[v] && count[sig[v]] < bestCount {
				seed, bestCount = v, count[sig[v]]
			}
		}
		// BFS from seed.
		queue := []int{seed}
		visited[seed] = true
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			order = append(order, v)
			for _, u := range g.Neighbors(v) {
				if !visited[u] {
					visited[u] = true
					queue = append(queue, u)
				}
			}
		}
	}
	return order
}

// VerifyMapping reports whether m is a graph isomorphism g → h: a bijection
// preserving adjacency and non-adjacency.
func VerifyMapping(g, h *Graph, m []int) bool {
	if g.n != h.n || len(m) != g.n || g.M() != h.M() {
		return false
	}
	seen := make([]bool, h.n)
	for _, w := range m {
		if w < 0 || w >= h.n || seen[w] {
			return false
		}
		seen[w] = true
	}
	for e := range g.edges {
		if !h.HasEdge(m[e.U], m[e.V]) {
			return false
		}
	}
	return true
}
