package graph

import "testing"

func TestMaxFlowBasics(t *testing.T) {
	// Two disjoint paths 0→3.
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 3)
	g.AddEdge(0, 2)
	g.AddEdge(2, 3)
	if f := g.MaxFlow(0, 3); f != 2 {
		t.Errorf("square MaxFlow = %d, want 2", f)
	}
	// Path: single disjoint path.
	p := pathGraph(5)
	if f := p.MaxFlow(0, 4); f != 1 {
		t.Errorf("path MaxFlow = %d, want 1", f)
	}
	// Complete graph K5: 4 edge-disjoint paths between any pair.
	k := completeGraph(5)
	if f := k.MaxFlow(0, 4); f != 4 {
		t.Errorf("K5 MaxFlow = %d, want 4", f)
	}
	// Disconnected: zero.
	d := New(3)
	d.AddEdge(0, 1)
	if f := d.MaxFlow(0, 2); f != 0 {
		t.Errorf("disconnected MaxFlow = %d, want 0", f)
	}
}

func TestMaxFlowPanics(t *testing.T) {
	g := completeGraph(3)
	defer func() {
		if recover() == nil {
			t.Error("s==t should panic")
		}
	}()
	g.MaxFlow(1, 1)
}

func TestEdgeConnectivityKnown(t *testing.T) {
	cases := []struct {
		g    *Graph
		want int
	}{
		{completeGraph(5), 4},
		{cycleGraph(6), 2},
		{pathGraph(4), 1},
		{petersen(), 3},
		{New(3), 0}, // disconnected
		{New(1), 0}, // trivial
		{completeGraph(2), 1},
	}
	for i, c := range cases {
		if got := c.g.EdgeConnectivity(); got != c.want {
			t.Errorf("case %d: λ = %d, want %d", i, got, c.want)
		}
	}
}

func TestMaxFlowMinDegreeBound(t *testing.T) {
	// λ ≤ min degree always; flow between two vertices ≤ min of their
	// degrees.
	g := benchGraph(40, 0.2, 9)
	if !g.IsConnected() {
		t.Skip("random graph disconnected")
	}
	lambda := g.EdgeConnectivity()
	minDeg := 1 << 30
	for v := 0; v < g.N(); v++ {
		if d := g.Degree(v); d < minDeg {
			minDeg = d
		}
	}
	if lambda > minDeg {
		t.Errorf("λ = %d > min degree %d", lambda, minDeg)
	}
	for s := 0; s < 5; s++ {
		for tt := s + 1; tt < 6; tt++ {
			f := g.MaxFlow(s, tt)
			if f > g.Degree(s) || f > g.Degree(tt) {
				t.Errorf("flow %d exceeds endpoint degree", f)
			}
			if f < lambda {
				t.Errorf("flow(%d,%d)=%d below global λ=%d", s, tt, f, lambda)
			}
		}
	}
}

func TestTreePackingBounds(t *testing.T) {
	// K4: λ=3 → lower 1; m/(n−1) = 6/3 = 2 upper.
	lower, upper := completeGraph(4).TreePackingBounds()
	if lower != 1 || upper != 2 {
		t.Errorf("K4 bounds (%d,%d), want (1,2)", lower, upper)
	}
	if l, u := New(1).TreePackingBounds(); l != 0 || u != 0 {
		t.Error("trivial graph bounds should be 0")
	}
}
