// Package torus builds k-ary n-cube (torus) topologies and their classical
// multi-ported Allreduce structure — the prior-work baseline the paper
// positions PolarFly against (§1.2: "direct networks such as
// multi-dimensional grids", and the multiported torus collectives of Jain
// & Sabharwal and Sack & Gropp). A k-ary n-cube offers 2n directional
// rings per node; bucket (ring) algorithms run one Allreduce shard per
// ring, so the aggregate bandwidth is proportional to the radix 2n — the
// same radix-proportional scaling PolarFly achieves, but at diameter
// n·⌊k/2⌋ instead of 2, and with radix fixed by the dimension count rather
// than freely chosen.
package torus

import (
	"fmt"
	"sort"

	"polarfly/internal/graph"
)

// Torus is a k-ary n-cube: kⁿ nodes, each with 2n links (k > 2; for k = 2
// the two directional neighbors coincide and the radix degenerates to n).
type Torus struct {
	// K is the per-dimension extent, N the dimension count.
	K, Dims int
	// G is the topology graph.
	G *graph.Graph
}

// New builds the k-ary n-cube. k must be ≥ 2 and dims ≥ 1; the node count
// k^dims must stay within practical bounds.
func New(k, dims int) (*Torus, error) {
	if k < 2 || dims < 1 {
		return nil, fmt.Errorf("torus: invalid shape %d-ary %d-cube", k, dims)
	}
	n := 1
	for i := 0; i < dims; i++ {
		n *= k
		if n > 1<<22 {
			return nil, fmt.Errorf("torus: %d-ary %d-cube too large", k, dims)
		}
	}
	t := &Torus{K: k, Dims: dims, G: graph.New(n)}
	for v := 0; v < n; v++ {
		coords := t.Coords(v)
		for d := 0; d < dims; d++ {
			next := append([]int(nil), coords...)
			next[d] = (next[d] + 1) % k
			t.G.AddEdge(v, t.Index(next))
		}
	}
	return t, nil
}

// N returns the node count k^dims.
func (t *Torus) N() int { return t.G.N() }

// Radix returns the links per node: 2·dims for k > 2, dims for k = 2.
func (t *Torus) Radix() int {
	if t.K == 2 {
		return t.Dims
	}
	return 2 * t.Dims
}

// Coords expands a node index into per-dimension coordinates.
func (t *Torus) Coords(v int) []int {
	out := make([]int, t.Dims)
	for d := 0; d < t.Dims; d++ {
		out[d] = v % t.K
		v /= t.K
	}
	return out
}

// Index packs coordinates into a node index.
func (t *Torus) Index(coords []int) int {
	idx := 0
	for d := t.Dims - 1; d >= 0; d-- {
		idx = idx*t.K + coords[d]
	}
	return idx
}

// Diameter returns dims·⌊k/2⌋ — the hop count that bounds torus Allreduce
// latency, versus PolarFly's constant 2.
func (t *Torus) Diameter() int { return t.Dims * (t.K / 2) }

// Ring returns the directed node sequence of the dimension-d ring through
// base (varying coordinate d, others fixed): the communication structure
// of bucket Allreduce algorithms.
func (t *Torus) Ring(base, d int) []int {
	if d < 0 || d >= t.Dims {
		panic(fmt.Sprintf("torus: dimension %d out of range", d))
	}
	coords := t.Coords(base)
	out := make([]int, t.K)
	for i := 0; i < t.K; i++ {
		c := append([]int(nil), coords...)
		c[d] = (coords[d] + i) % t.K
		out[i] = t.Index(c)
	}
	return out
}

// MultiPortAllreduceBandwidth returns the aggregate Allreduce bandwidth of
// the classical multi-ported bucket algorithm at unit link bandwidth: the
// input is split across the 2n directional rings (n for k = 2), each
// sustaining one link bandwidth, so the aggregate equals the radix — but
// note this is the *host-based* 2(k−1)-round structure; the in-network
// analogue embeds ring-paths as deep trees. Either way the bandwidth
// scales with radix 2n while PolarFly's scales with its radix q+1 ≈ √N.
func (t *Torus) MultiPortAllreduceBandwidth(linkB float64) float64 {
	return float64(t.Radix()) * linkB
}

// EdgeDisjointRingCover verifies the structural basis of the multi-ported
// algorithm: the dimension-d rings over all bases partition the edge set —
// every link belongs to exactly one (undirected) ring.
func (t *Torus) EdgeDisjointRingCover() error {
	seen := make(map[graph.Edge]int)
	for d := 0; d < t.Dims; d++ {
		visited := make(map[int]bool)
		for base := 0; base < t.N(); base++ {
			if visited[base] {
				continue
			}
			ring := t.Ring(base, d)
			for _, v := range ring {
				visited[v] = true
			}
			for i := 0; i < len(ring); i++ {
				u, v := ring[i], ring[(i+1)%len(ring)]
				if u == v {
					continue // k=2 wrap degeneracy
				}
				seen[graph.NewEdge(u, v)]++
			}
		}
	}
	// Check edges in a fixed order so the first reported violation does
	// not depend on map iteration order.
	edges := make([]graph.Edge, 0, len(seen))
	for e := range seen {
		edges = append(edges, e)
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].U != edges[j].U {
			return edges[i].U < edges[j].U
		}
		return edges[i].V < edges[j].V
	})
	if t.K == 2 {
		// Each ring of length 2 visits its single edge twice (once per
		// direction step); normalise.
		for _, e := range edges {
			if c := seen[e]; c != 2 {
				return fmt.Errorf("torus: edge %v covered %d times (want 2 for k=2)", e, c)
			}
		}
		return nil
	}
	for _, e := range edges {
		if c := seen[e]; c != 1 {
			return fmt.Errorf("torus: edge %v covered %d times", e, c)
		}
	}
	if len(seen) != t.G.M() {
		return fmt.Errorf("torus: rings cover %d of %d edges", len(seen), t.G.M())
	}
	return nil
}
