package torus

import "testing"

func TestShapes(t *testing.T) {
	cases := []struct {
		k, dims, n, radix, diam, edges int
	}{
		{4, 2, 16, 4, 4, 32},  // 4-ary 2-cube
		{3, 2, 9, 4, 2, 18},   // 3-ary 2-cube
		{4, 3, 64, 6, 6, 192}, // 4-ary 3-cube
		{2, 3, 8, 3, 3, 12},   // binary 3-cube = hypercube
		{8, 1, 8, 2, 4, 8},    // plain ring
	}
	for _, c := range cases {
		tr, err := New(c.k, c.dims)
		if err != nil {
			t.Fatalf("%d-ary %d-cube: %v", c.k, c.dims, err)
		}
		if tr.N() != c.n {
			t.Errorf("%d-ary %d-cube: N=%d, want %d", c.k, c.dims, tr.N(), c.n)
		}
		if tr.Radix() != c.radix {
			t.Errorf("%d-ary %d-cube: radix=%d, want %d", c.k, c.dims, tr.Radix(), c.radix)
		}
		if tr.Diameter() != c.diam {
			t.Errorf("%d-ary %d-cube: diameter=%d, want %d", c.k, c.dims, tr.Diameter(), c.diam)
		}
		if got := tr.G.Diameter(); got != c.diam {
			t.Errorf("%d-ary %d-cube: BFS diameter=%d, formula %d", c.k, c.dims, got, c.diam)
		}
		if tr.G.M() != c.edges {
			t.Errorf("%d-ary %d-cube: M=%d, want %d", c.k, c.dims, tr.G.M(), c.edges)
		}
		for v := 0; v < tr.N(); v++ {
			if d := tr.G.Degree(v); d != tr.Radix() {
				t.Fatalf("%d-ary %d-cube: degree(%d)=%d", c.k, c.dims, v, d)
			}
		}
	}
	if _, err := New(1, 2); err == nil {
		t.Error("1-ary accepted")
	}
	if _, err := New(3, 0); err == nil {
		t.Error("0 dims accepted")
	}
}

func TestCoordsRoundTrip(t *testing.T) {
	tr, err := New(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < tr.N(); v++ {
		if got := tr.Index(tr.Coords(v)); got != v {
			t.Fatalf("round trip %d → %v → %d", v, tr.Coords(v), got)
		}
	}
}

func TestRings(t *testing.T) {
	tr, err := New(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	for d := 0; d < 2; d++ {
		ring := tr.Ring(5, d)
		if len(ring) != 4 {
			t.Fatalf("ring length %d", len(ring))
		}
		if ring[0] != 5 {
			t.Fatalf("ring should start at base")
		}
		for i := 0; i < 4; i++ {
			u, v := ring[i], ring[(i+1)%4]
			if !tr.G.HasEdge(u, v) {
				t.Fatalf("dim-%d ring hop (%d,%d) not an edge", d, u, v)
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("bad dimension should panic")
		}
	}()
	tr.Ring(0, 5)
}

func TestEdgeDisjointRingCover(t *testing.T) {
	for _, c := range []struct{ k, dims int }{{3, 2}, {4, 2}, {5, 2}, {3, 3}, {4, 3}, {2, 3}, {8, 1}} {
		tr, err := New(c.k, c.dims)
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.EdgeDisjointRingCover(); err != nil {
			t.Errorf("%d-ary %d-cube: %v", c.k, c.dims, err)
		}
	}
}

func TestMultiPortBandwidth(t *testing.T) {
	tr, _ := New(4, 3)
	if got := tr.MultiPortAllreduceBandwidth(1.0); got != 6.0 {
		t.Errorf("bandwidth %f, want 6", got)
	}
}
