package report

import (
	"strings"
	"testing"
)

func TestChartRender(t *testing.T) {
	c := &Chart{
		Title:  "demo",
		XLabel: "radix",
		XTicks: []string{"4", "6", "8", "10"},
		Series: []Series{
			{Name: "flat", Values: []float64{1, 1, 1, 1}, Marker: '#'},
			{Name: "rising", Values: []float64{0.25, 0.5, 0.75, 1}, Marker: '*'},
		},
		Height: 5,
		YMax:   1,
	}
	out := c.Render()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "radix") {
		t.Errorf("missing labels:\n%s", out)
	}
	lines := strings.Split(out, "\n")
	// Top plot row holds the y=1 values of both series: columns of '#'
	// everywhere and '*' in the last column (later series wins ties).
	top := lines[1]
	if !strings.Contains(top, "#") {
		t.Errorf("flat series missing from top row: %q", top)
	}
	if !strings.Contains(out, "* = rising") || !strings.Contains(out, "# = flat") {
		t.Errorf("legend missing:\n%s", out)
	}
	// Rising series appears on multiple distinct rows.
	starRows := 0
	for _, l := range lines {
		if strings.Contains(l, "*") && strings.Contains(l, "|") {
			starRows++
		}
	}
	if starRows < 3 {
		t.Errorf("rising series occupies %d rows, want ≥ 3:\n%s", starRows, out)
	}
}

func TestChartMismatchedSeries(t *testing.T) {
	c := &Chart{XTicks: []string{"a", "b"}, Series: []Series{{Name: "x", Values: []float64{1}, Marker: 'x'}}}
	if !strings.Contains(c.Render(), "report:") {
		t.Error("mismatch not reported")
	}
}

func TestChartEmptyValuesSafe(t *testing.T) {
	c := &Chart{XTicks: []string{"a"}, Series: []Series{{Name: "z", Values: []float64{0}, Marker: 'z'}}}
	out := c.Render()
	if out == "" {
		t.Error("empty render")
	}
}

func TestTable(t *testing.T) {
	out := Table([]string{"q", "bw"}, [][]string{{"3", "1.5"}, {"11", "5.5"}})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("table:\n%s", out)
	}
	if !strings.HasPrefix(lines[0], "q") {
		t.Errorf("header: %q", lines[0])
	}
	if !strings.Contains(lines[2], "11") || !strings.Contains(lines[2], "5.5") {
		t.Errorf("row: %q", lines[2])
	}
}
