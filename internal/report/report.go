// Package report renders experiment series as fixed-width text artifacts:
// aligned tables and ASCII bar/line charts, so `cmd/figures -plot` can
// reproduce the *shapes* of the paper's figures directly in a terminal
// without any plotting dependency.
package report

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named sequence of (x, y) points sharing the x values of
// its Chart.
type Series struct {
	Name   string
	Values []float64
	// Marker is the single-character glyph for this series.
	Marker byte
}

// Chart is a simple scatter/line chart over shared x labels.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	XTicks []string
	Series []Series
	// Height is the plot's row count (default 16).
	Height int
	// YMax overrides the automatic y-axis maximum when positive.
	YMax float64
}

// Render draws the chart as fixed-width text. Each column is one x tick;
// each series marks the row closest to its value. Collisions render the
// later series' marker.
func (c *Chart) Render() string {
	height := c.Height
	if height <= 0 {
		height = 16
	}
	cols := len(c.XTicks)
	for _, s := range c.Series {
		if len(s.Values) != cols {
			return fmt.Sprintf("report: series %q has %d values for %d ticks\n", s.Name, len(s.Values), cols)
		}
	}
	ymax := c.YMax
	if ymax <= 0 {
		for _, s := range c.Series {
			for _, v := range s.Values {
				if v > ymax {
					ymax = v
				}
			}
		}
	}
	if ymax <= 0 {
		ymax = 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", cols))
	}
	for _, s := range c.Series {
		for x, v := range s.Values {
			if math.IsNaN(v) {
				continue
			}
			frac := v / ymax
			if frac > 1 {
				frac = 1
			}
			if frac < 0 {
				frac = 0
			}
			row := height - 1 - int(math.Round(frac*float64(height-1)))
			grid[row][x] = s.Marker
		}
	}

	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	for r, row := range grid {
		yVal := ymax * float64(height-1-r) / float64(height-1)
		fmt.Fprintf(&b, "%8.2f |%s|\n", yVal, string(row))
	}
	fmt.Fprintf(&b, "%8s +%s+\n", "", strings.Repeat("-", cols))
	// X tick labels: print every k-th tick so labels don't collide.
	step := 1
	for colsPerLabel := 6; cols/step > 0 && step*colsPerLabel < cols; {
		step++
	}
	lbl := make([]byte, cols)
	for i := range lbl {
		lbl[i] = ' '
	}
	for i := 0; i < cols; i += step {
		t := c.XTicks[i]
		for j := 0; j < len(t) && i+j < cols; j++ {
			lbl[i+j] = t[j]
		}
	}
	fmt.Fprintf(&b, "%8s  %s  (%s)\n", "", string(lbl), c.XLabel)
	for _, s := range c.Series {
		fmt.Fprintf(&b, "%10c = %s\n", s.Marker, s.Name)
	}
	return b.String()
}

// Table renders rows of cells with aligned columns (left-aligned headers,
// right-aligned numeric-looking cells).
func Table(headers []string, rows [][]string) string {
	width := make([]int, len(headers))
	for i, h := range headers {
		width[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(width) && len(cell) > width[i] {
				width[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	for i, h := range headers {
		fmt.Fprintf(&b, "%-*s  ", width[i], h)
	}
	b.WriteByte('\n')
	for _, row := range rows {
		for i, cell := range row {
			if i < len(width) {
				fmt.Fprintf(&b, "%*s  ", width[i], cell)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
