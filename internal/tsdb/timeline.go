package tsdb

import (
	"fmt"
	"io"
	"strings"
)

// SnapshotSchema versions the timeline JSON emitted by benchreport; bump
// it on any breaking change to Snapshot.
const SnapshotSchema = "polarfly-timeline/v1"

// SnapshotMeta identifies the run a snapshot describes and carries the
// model figures its points are normalised against.
type SnapshotMeta struct {
	Q    int    `json:"q"`
	Kind string `json:"kind"`
	M    int    `json:"m"`
	// Nodes is N = q²+q+1; per-node rates divide by it.
	Nodes int `json:"nodes"`
	// Aggregate, Optimal, and Floor are the model bounds (see Bounds).
	Aggregate float64 `json:"aggregate"`
	Optimal   float64 `json:"optimal"`
	Floor     float64 `json:"floor"`
}

// Point is one timeline window, taken from the finest sampler level that
// still retains its full history (so the timeline always covers the whole
// run at the best available resolution).
type Point struct {
	Start   int  `json:"start"`
	End     int  `json:"end"`
	Partial bool `json:"partial,omitempty"`
	// Phase labels the window by its dominant traffic: "reduce",
	// "bcast", "mixed" (within 10%), or "drain" (no injections).
	Phase string `json:"phase"`
	// Rate is the window's per-node delivered rate and CumRate the
	// cumulative rate up to End — CumRate converges to the measured
	// Allreduce bandwidth.
	Rate    float64 `json:"rate"`
	CumRate float64 `json:"cum_rate"`
	// MaxLinkUtil is the window's hottest link.
	MaxLinkUtil float64 `json:"max_link_util"`
	MaxLinkFrom int     `json:"max_link_from"`
	MaxLinkTo   int     `json:"max_link_to"`
	// BufferedFlits is the in-flight backlog at window close.
	BufferedFlits int `json:"buffered_flits"`
	// Dropped, Reissued, and Recoveries surface fault activity.
	Dropped    int `json:"dropped,omitempty"`
	Reissued   int `json:"reissued,omitempty"`
	Recoveries int `json:"recoveries,omitempty"`
}

// GroundTruth is the obsv-trace cross-check of the telemetry-derived
// fault events: the exact cycles from TraceFault/TraceRecover marks and
// whether the analyzer reproduced them.
type GroundTruth struct {
	FaultCycles   []int `json:"fault_cycles"`
	RecoverCycles []int `json:"recover_cycles"`
	// Latencies are the obsv per-recovery latency attributions.
	Latencies []int `json:"latencies"`
	// Match is true when the analyzer's events equal the trace exactly.
	Match bool `json:"match"`
}

// Snapshot is the versioned timeline document benchreport emits.
// Snapshots are diffed across runs, so every field must be
// deterministic. lint:detsink
type Snapshot struct {
	Schema string       `json:"schema"`
	Meta   SnapshotMeta `json:"meta"`
	// Sampling configuration and scale facts.
	SampleEvery int `json:"sample_every"`
	Windows     int `json:"windows"`
	Levels      int `json:"levels"`
	Factor      int `json:"factor"`
	Cycles      int `json:"cycles"`
	// Resolution is the cycle span of each point (the chosen level's
	// window duration).
	Resolution int `json:"resolution"`
	// FootprintBytes is the sampler's fixed memory footprint.
	FootprintBytes int     `json:"footprint_bytes"`
	Points         []Point `json:"points"`
	// Analysis results (see Analyzer).
	TopLinks       []LinkSummary   `json:"top_links,omitempty"`
	Faults         []FaultEvent    `json:"faults,omitempty"`
	Recoveries     []RecoveryEvent `json:"recoveries,omitempty"`
	Violations     []Violation     `json:"violations,omitempty"`
	ViolationCount int             `json:"violation_count"`
	GroundTruth    *GroundTruth    `json:"ground_truth,omitempty"`
}

// BuildSnapshot assembles the timeline from a finished sampler and its
// analyzer (analyzer may be nil for a plain timeline). It picks the
// finest resolution level whose ring still holds the run's entire
// history, so the points always span the whole run.
func BuildSnapshot(s *Sampler, a *Analyzer, meta SnapshotMeta) *Snapshot {
	sn := &Snapshot{
		Schema:      SnapshotSchema,
		Meta:        meta,
		SampleEvery: s.cfg.SampleEvery,
		Windows:     s.cfg.Windows,
		Levels:      s.cfg.Levels,
		Factor:      s.cfg.Factor,
		Cycles:      s.Cycles(),
	}
	if s.levels == nil { // no frames ever arrived
		return sn
	}
	sn.FootprintBytes = s.FootprintBytes()
	lvl := s.Levels() - 1
	for l := 0; l < s.Levels(); l++ {
		if s.TotalWindows(l) <= s.Retained(l) {
			lvl = l
			break
		}
	}
	sn.Resolution = s.LevelDuration(lvl)
	nodes := meta.Nodes
	cumDelivered := 0
	sn.Points = make([]Point, 0, s.Retained(lvl))
	for i := 0; i < s.Retained(lvl); i++ {
		run, _ := s.Window(lvl, i)
		p := Point{
			Start: run.Start, End: run.End, Partial: run.Partial,
			Phase:         phaseLabel(run),
			MaxLinkUtil:   run.MaxLinkUtil,
			MaxLinkFrom:   run.MaxLinkFrom,
			MaxLinkTo:     run.MaxLinkTo,
			BufferedFlits: run.BufferedFlits,
			Dropped:       run.Dropped,
			Reissued:      run.Reissued,
			Recoveries:    run.Recoveries,
		}
		cumDelivered += run.Delivered
		if nodes > 0 {
			if dur := run.End - run.Start; dur > 0 {
				p.Rate = float64(run.Delivered) / float64(nodes) / float64(dur)
			}
			if run.End > 0 {
				p.CumRate = float64(cumDelivered) / float64(nodes) / float64(run.End)
			}
		}
		sn.Points = append(sn.Points, p)
	}
	if a != nil {
		rep := a.Report()
		sn.TopLinks = rep.TopLinks
		sn.Faults = rep.Faults
		sn.Recoveries = rep.Recoveries
		sn.Violations = rep.Violations
		sn.ViolationCount = rep.ViolationCount
	}
	return sn
}

// phaseLabel classifies a window by its injection mix.
func phaseLabel(run RunWindow) string {
	total := run.ReduceFlits + run.BcastFlits
	if total == 0 {
		return "drain"
	}
	frac := float64(run.ReduceFlits) / float64(total)
	switch {
	case frac >= 0.9:
		return "reduce"
	case frac <= 0.1:
		return "bcast"
	}
	return "mixed"
}

// WriteMarkdown renders the snapshot as a human-readable phase timeline:
// a run header, the per-window table with a utilization bar, and the
// fault/violation sections when present.
func (sn *Snapshot) WriteMarkdown(w io.Writer) error {
	bw := &errWriter{w: w}
	bw.printf("## Telemetry timeline — q=%d %s m=%d\n\n", sn.Meta.Q, sn.Meta.Kind, sn.Meta.M)
	bw.printf("%d cycles sampled every %d; %d points at %d-cycle resolution; sampler footprint %d bytes.\n",
		sn.Cycles, sn.SampleEvery, len(sn.Points), sn.Resolution, sn.FootprintBytes)
	bw.printf("Model: aggregate %.3f, optimal %.3f, floor %.3f (per-node elements/cycle).\n\n",
		sn.Meta.Aggregate, sn.Meta.Optimal, sn.Meta.Floor)
	bw.printf("| window | phase | rate | cum | max link util | hottest | buffered |\n")
	bw.printf("|---|---|---|---|---|---|---|\n")
	for _, p := range sn.Points {
		mark := ""
		if p.Partial {
			mark = "*"
		}
		ev := ""
		if p.Recoveries > 0 {
			ev = fmt.Sprintf(" ⚡%d", p.Recoveries)
		}
		bw.printf("| (%d,%d]%s | %s%s | %.3f | %.3f | %s %.2f | %d→%d | %d |\n",
			p.Start, p.End, mark, p.Phase, ev, p.Rate, p.CumRate,
			utilBar(p.MaxLinkUtil), p.MaxLinkUtil, p.MaxLinkFrom, p.MaxLinkTo, p.BufferedFlits)
	}
	if len(sn.Points) > 0 {
		bw.printf("\n`*` marks a partial window; ⚡n marks n recoveries in the window.\n")
	}
	if len(sn.TopLinks) > 0 {
		bw.printf("\n### Hottest links\n\n| link | peak util | at | flagged |\n|---|---|---|---|\n")
		for _, l := range sn.TopLinks {
			bw.printf("| %d→%d | %.3f | (%d,%d] | %d× |\n",
				l.From, l.To, l.PeakUtil, l.PeakStart, l.PeakEnd, l.Flagged)
		}
	}
	if len(sn.Faults) > 0 || len(sn.Recoveries) > 0 {
		bw.printf("\n### Fault events (telemetry-derived)\n\n")
		for _, f := range sn.Faults {
			bw.printf("- fault at cycle %d (observed by boundary %d)\n", f.Cycle, f.ObservedEnd)
		}
		for _, r := range sn.Recoveries {
			bw.printf("- recovery at cycle %d, latency %d (observed by boundary %d)\n",
				r.Cycle, r.Latency, r.ObservedEnd)
		}
		if gt := sn.GroundTruth; gt != nil {
			verdict := "MISMATCH"
			if gt.Match {
				verdict = "exact match"
			}
			bw.printf("\nCross-check against trace ground truth: **%s** (%d faults, %d recoveries).\n",
				verdict, len(gt.FaultCycles), len(gt.RecoverCycles))
		}
	}
	if sn.ViolationCount > 0 {
		bw.printf("\n### Bound violations\n\n")
		for _, v := range sn.Violations {
			bw.printf("- %s\n", v.String())
		}
		if sn.ViolationCount > len(sn.Violations) {
			bw.printf("- … %d more beyond the retention cap\n", sn.ViolationCount-len(sn.Violations))
		}
	} else {
		bw.printf("\nNo bound violations: windows respect the tolerance-adjusted Thm 7.6/7.19 bounds.\n")
	}
	return bw.err
}

// utilBar is a 10-slot unicode bar for a utilization in [0, 1+].
func utilBar(u float64) string {
	n := int(u*10 + 0.5)
	if n > 10 {
		n = 10
	}
	if n < 0 {
		n = 0
	}
	return strings.Repeat("█", n) + strings.Repeat("░", 10-n)
}

// errWriter latches the first write error so the render path stays flat.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...interface{}) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}
