package tsdb

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"polarfly/internal/bandwidth"
	"polarfly/internal/core"
	"polarfly/internal/faults"
	"polarfly/internal/netsim"
	"polarfly/internal/workload"
)

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name    string
		cfg     Config
		wantErr string
	}{
		{"defaults", Config{SampleEvery: 16}, ""},
		{"explicit", Config{SampleEvery: 1, Windows: 4, Levels: 2, Factor: 2}, ""},
		{"no window", Config{}, "SampleEvery"},
		{"negative window", Config{SampleEvery: -4}, "SampleEvery"},
		{"bad ring", Config{SampleEvery: 16, Windows: -1}, "Windows"},
		{"bad levels", Config{SampleEvery: 16, Levels: -2}, "Levels"},
		{"bad factor", Config{SampleEvery: 16, Factor: 1}, "Factor"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := New(tc.cfg)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("New(%+v) = %v, want nil", tc.cfg, err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("New(%+v) = %v, want error mentioning %q", tc.cfg, err, tc.wantErr)
			}
		})
	}
	if c, _ := (Config{SampleEvery: 16}).withDefaults(); c.Windows != 64 || c.Levels != 3 || c.Factor != 8 {
		t.Fatalf("defaults = %+v, want Windows=64 Levels=3 Factor=8", c)
	}
}

// sampledRun runs one simulated Allreduce with a sampler attached.
func sampledRun(t testing.TB, q, m int, kind core.EmbeddingKind, scfg Config,
	plan *faults.Plan) (*core.Embedding, *core.AllreduceResult, *Sampler, *Analyzer) {
	t.Helper()
	inst, err := core.NewInstance(q)
	if err != nil {
		t.Fatal(err)
	}
	e, err := inst.Embed(kind)
	if err != nil {
		t.Fatal(err)
	}
	s := MustNew(scfg)
	a := NewAnalyzer(s, AnalyzerConfig{
		Tolerance: 0.1,
		Bounds: Bounds{
			Nodes:     inst.N(),
			Aggregate: e.Model.Aggregate,
			Optimal:   bandwidth.Optimal(q, 1.0),
			Floor:     floorFor(q, kind, e),
			FaultFree: plan == nil,
		},
	})
	cfg := netsim.Config{LinkLatency: 2, VCDepth: 4,
		SampleEvery: scfg.SampleEvery, Sample: s.Sample, Faults: plan}
	inputs := workload.Vectors(inst.N(), m, 100, int64(q))
	res, err := inst.Allreduce(e, inputs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e, res, s, a
}

// floorFor is the construction's guaranteed bandwidth (§7).
func floorFor(q int, kind core.EmbeddingKind, e *core.Embedding) float64 {
	switch kind {
	case core.LowDepth:
		return bandwidth.LowDepthBound(q, 1.0)
	case core.Hamiltonian:
		return bandwidth.HamiltonianBound(len(e.Forest), 1.0)
	}
	return 0
}

// TestConservation is the satellite-4 property: for every design point
// and embedding, summing the per-link window deltas over a fully
// retained resolution level reconciles EXACTLY against the end-of-run
// Result.LinkStats counters — no quantization, no loss at ring wrap,
// no loss in the downsampling cascade.
func TestConservation(t *testing.T) {
	kinds := []core.EmbeddingKind{core.SingleTree, core.LowDepth, core.Hamiltonian}
	for _, q := range []int{3, 5, 7, 11} {
		for _, kind := range kinds {
			t.Run(fmt.Sprintf("q=%d/%v", q, kind), func(t *testing.T) {
				scfg := Config{SampleEvery: 16, Windows: 16, Levels: 3, Factor: 4}
				_, res, s, _ := sampledRun(t, q, 256, kind, scfg, nil)
				if !s.Finished() {
					t.Fatal("sampler never saw the final frame")
				}
				// The finest level that retained its whole history.
				lvl := -1
				for l := 0; l < s.Levels(); l++ {
					if s.TotalWindows(l) <= s.Retained(l) {
						lvl = l
						break
					}
				}
				if lvl < 0 {
					t.Fatalf("no level retained full history (%d cycles)", res.Cycles)
				}
				if lvl > 0 && s.TotalWindows(0) <= scfg.Windows {
					t.Logf("note: base ring did not wrap (%d windows)", s.TotalWindows(0))
				}
				nlinks := s.NumLinks()
				if nlinks != len(res.LinkStats) {
					t.Fatalf("%d sampled links vs %d LinkStats", nlinks, len(res.LinkStats))
				}
				type tot struct{ flits, busy, stalls, dropped int }
				sums := make([]tot, nlinks)
				delivered, flits := 0, 0
				for i := 0; i < s.Retained(lvl); i++ {
					run, links := s.Window(lvl, i)
					delivered += run.Delivered
					flits += run.Flits
					for j := range links {
						sums[j].flits += int(links[j].Flits)
						sums[j].busy += int(links[j].Busy)
						sums[j].stalls += int(links[j].Stalls)
						sums[j].dropped += int(links[j].Dropped)
					}
				}
				for j, ls := range res.LinkStats {
					key := s.Links()[j]
					if key[0] != ls.From || key[1] != ls.To {
						t.Fatalf("link %d order mismatch: %v vs %d->%d", j, key, ls.From, ls.To)
					}
					if sums[j].flits != ls.Flits || sums[j].busy != ls.BusyCycles ||
						sums[j].stalls != ls.StallCycles || sums[j].dropped != ls.Dropped {
						t.Errorf("link %d->%d window sums %+v != LinkStats {%d %d %d %d}",
							ls.From, ls.To, sums[j], ls.Flits, ls.BusyCycles, ls.StallCycles, ls.Dropped)
					}
				}
				if flits != res.FlitsSent {
					t.Errorf("window Flits sum to %d, want %d", flits, res.FlitsSent)
				}
				if want := len(res.Outputs) * 256; delivered != want {
					t.Errorf("window Delivered sum to %d, want N*m = %d", delivered, want)
				}
			})
		}
	}
}

// TestCascade pins the downsampling arithmetic: a coarser window is the
// exact sum (or max, for MaxBuf/MaxLinkUtil) of its child windows.
func TestCascade(t *testing.T) {
	scfg := Config{SampleEvery: 8, Windows: 64, Levels: 2, Factor: 4}
	_, _, s, _ := sampledRun(t, 3, 128, core.LowDepth, scfg, nil)
	if s.TotalWindows(1) < 2 {
		t.Fatalf("need ≥ 2 coarse windows, got %d (cycles=%d)", s.TotalWindows(1), s.Cycles())
	}
	if d := s.LevelDuration(1); d != 32 {
		t.Fatalf("level 1 duration %d, want 32", d)
	}
	// Both levels fully retained here, so child groups line up directly.
	for ci := 0; ci < s.TotalWindows(1); ci++ {
		crun, clinks := s.Window(1, ci)
		var frun RunWindow
		fsum := make([]LinkWindow, s.NumLinks())
		nchild := 0
		for fi := ci * 4; fi < (ci+1)*4 && fi < s.TotalWindows(0); fi++ {
			run, links := s.Window(0, fi)
			if nchild == 0 {
				frun = run
				copy(fsum, links)
			} else {
				frun.End = run.End
				frun.Flits += run.Flits
				frun.Delivered += run.Delivered
				for j := range links {
					fsum[j].Flits += links[j].Flits
					fsum[j].Busy += links[j].Busy
					fsum[j].Stalls += links[j].Stalls
					if links[j].MaxBuf > fsum[j].MaxBuf {
						fsum[j].MaxBuf = links[j].MaxBuf
					}
				}
			}
			nchild++
		}
		if crun.Start != frun.Start || crun.End != frun.End ||
			crun.Flits != frun.Flits || crun.Delivered != frun.Delivered {
			t.Fatalf("coarse window %d = %+v disagrees with child sum %+v", ci, crun, frun)
		}
		if nchild < 4 && !crun.Partial {
			t.Errorf("coarse window %d has %d children but is not partial", ci, nchild)
		}
		for j := range clinks {
			if clinks[j] != fsum[j] {
				t.Fatalf("coarse window %d link %d = %+v, child sum %+v", ci, j, clinks[j], fsum[j])
			}
		}
	}
}

// TestFootprintIndependence is the bounded-memory guarantee: the same
// spec run 8× longer (larger m ⇒ more cycles ⇒ more windows ⇒ ring
// wraps) has the identical sampler footprint.
func TestFootprintIndependence(t *testing.T) {
	scfg := Config{SampleEvery: 8, Windows: 8, Levels: 3, Factor: 4}
	_, resShort, sShort, _ := sampledRun(t, 5, 256, core.LowDepth, scfg, nil)
	_, resLong, sLong, _ := sampledRun(t, 5, 2048, core.LowDepth, scfg, nil)
	if resLong.Cycles <= resShort.Cycles {
		t.Fatalf("long run (%d cycles) not longer than short (%d)", resLong.Cycles, resShort.Cycles)
	}
	if sLong.TotalWindows(0) <= scfg.Windows {
		t.Fatalf("long run closed only %d base windows; ring never wrapped", sLong.TotalWindows(0))
	}
	fpShort, fpLong := sShort.FootprintBytes(), sLong.FootprintBytes()
	if fpShort != fpLong {
		t.Fatalf("footprint grew with run length: %d bytes vs %d", fpShort, fpLong)
	}
	if fpShort <= 0 {
		t.Fatal("degenerate footprint")
	}
}

// TestSamplerReset pins run-to-run reuse: resetting and replaying the
// same spec yields identical series with zero additional footprint.
func TestSamplerReset(t *testing.T) {
	inst, err := core.NewInstance(3)
	if err != nil {
		t.Fatal(err)
	}
	e, err := inst.Embed(core.LowDepth)
	if err != nil {
		t.Fatal(err)
	}
	s := MustNew(Config{SampleEvery: 8, Windows: 16, Levels: 2, Factor: 4})
	inputs := workload.Vectors(inst.N(), 128, 100, 7)
	cfg := netsim.Config{LinkLatency: 2, VCDepth: 4, SampleEvery: 8, Sample: s.Sample}
	if _, err := inst.Allreduce(e, inputs, cfg); err != nil {
		t.Fatal(err)
	}
	first := BuildSnapshot(s, nil, SnapshotMeta{Nodes: inst.N()})
	fp := s.FootprintBytes()
	s.Reset()
	if s.Finished() {
		t.Fatal("Reset left the sampler finished")
	}
	if _, err := inst.Allreduce(e, inputs, cfg); err != nil {
		t.Fatal(err)
	}
	second := BuildSnapshot(s, nil, SnapshotMeta{Nodes: inst.N()})
	b1, _ := json.Marshal(first)
	b2, _ := json.Marshal(second)
	if !bytes.Equal(b1, b2) {
		t.Fatalf("replay after Reset diverged:\n%s\nvs\n%s", b1, b2)
	}
	if got := s.FootprintBytes(); got != fp {
		t.Fatalf("footprint changed across Reset: %d vs %d", got, fp)
	}
}

// TestAnalyzerFaultDetection pins the tentpole's fault story: onset and
// recovery latency recovered purely from windowed telemetry match the
// simulator's recovery record exactly.
func TestAnalyzerFaultDetection(t *testing.T) {
	inst, err := core.NewInstance(5)
	if err != nil {
		t.Fatal(err)
	}
	e, err := inst.Embed(core.LowDepth)
	if err != nil {
		t.Fatal(err)
	}
	var u, v int
	for w, p := range e.Forest[0].Parent {
		if p >= 0 {
			u, v = w, p
			break
		}
	}
	plan := &faults.Plan{Faults: []faults.Fault{
		{Kind: faults.LinkDown, U: u, V: v, At: 40},
	}}
	scfg := Config{SampleEvery: 8, Windows: 64, Levels: 2, Factor: 4}
	s := MustNew(scfg)
	a := NewAnalyzer(s, AnalyzerConfig{Bounds: Bounds{Nodes: inst.N()}})
	inputs := workload.Vectors(inst.N(), 256, 100, 5)
	res, err := inst.Allreduce(e, inputs, netsim.Config{LinkLatency: 2, VCDepth: 4,
		SampleEvery: 8, Sample: s.Sample, Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Recoveries) == 0 {
		t.Fatal("fault plan caused no recovery")
	}
	rep := a.Report()
	if len(rep.Faults) != 1 || rep.Faults[0].Cycle != 40 {
		t.Fatalf("telemetry faults = %+v, want one at cycle 40", rep.Faults)
	}
	if lag := rep.Faults[0].ObservedEnd - rep.Faults[0].Cycle; lag < 0 || lag > scfg.SampleEvery {
		t.Errorf("detection lag %d outside [0, %d]", lag, scfg.SampleEvery)
	}
	if len(rep.Recoveries) != len(res.Recoveries) {
		t.Fatalf("telemetry saw %d recoveries, simulator recorded %d",
			len(rep.Recoveries), len(res.Recoveries))
	}
	for i, r := range rep.Recoveries {
		want := res.Recoveries[i]
		if r.Cycle != want.Cycle {
			t.Errorf("recovery %d at cycle %d, want %d", i, r.Cycle, want.Cycle)
		}
		if wantLat := want.Cycle - 40; r.Latency != wantLat {
			t.Errorf("recovery %d latency %d, want %d", i, r.Latency, wantLat)
		}
	}
}

// TestBoundsFaultFree is the acceptance criterion: on fault-free runs of
// both constructions, the cumulative delivered rate never exceeds the
// tolerance-adjusted Algorithm 1 / Corollary 7.1 ceilings, and the
// finish-time rate clears the Theorem 7.6 / 7.19 floor.
func TestBoundsFaultFree(t *testing.T) {
	for _, kind := range []core.EmbeddingKind{core.LowDepth, core.Hamiltonian} {
		t.Run(kind.String(), func(t *testing.T) {
			scfg := Config{SampleEvery: 32, Windows: 64, Levels: 3, Factor: 8}
			e, res, _, a := sampledRun(t, 7, 4096, kind, scfg, nil)
			rep := a.Report()
			if rep.ViolationCount != 0 {
				t.Fatalf("bound violations on a fault-free run: %+v", rep.Violations)
			}
			if rep.FinalRate <= 0 {
				t.Fatal("no final rate computed")
			}
			// The measured rate itself sits between floor and aggregate.
			if fl := floorFor(7, kind, e); rep.FinalRate < fl*0.9 {
				t.Errorf("final rate %.3f below floor %.3f-tolerance (cycles=%d)",
					rep.FinalRate, fl, res.Cycles)
			}
			if rep.FinalRate > e.Model.Aggregate*1.1 {
				t.Errorf("final rate %.3f above aggregate %.3f+tolerance",
					rep.FinalRate, e.Model.Aggregate)
			}
		})
	}
}

// TestAnalyzerHotspots sanity-checks the congestion side: top-k entries
// are sorted, utilizations are in range, and the per-link predicted
// comparison wires through.
func TestAnalyzerHotspots(t *testing.T) {
	inst, err := core.NewInstance(5)
	if err != nil {
		t.Fatal(err)
	}
	e, err := inst.Embed(core.LowDepth)
	if err != nil {
		t.Fatal(err)
	}
	s := MustNew(Config{SampleEvery: 16, Windows: 8, Levels: 2, Factor: 4})
	a := NewAnalyzer(s, AnalyzerConfig{TopK: 4,
		Bounds:    Bounds{Nodes: inst.N()},
		Predicted: core.ModelLinkLoads(e)})
	inputs := workload.Vectors(inst.N(), 512, 100, 9)
	if _, err := inst.Allreduce(e, inputs, netsim.Config{LinkLatency: 2, VCDepth: 4,
		SampleEvery: 16, Sample: s.Sample}); err != nil {
		t.Fatal(err)
	}
	rep := a.Report()
	if len(rep.Hotspots) == 0 {
		t.Fatal("no hotspot windows recorded")
	}
	if len(rep.Hotspots) > 8 {
		t.Fatalf("hotspot ring retained %d windows, cap is 8", len(rep.Hotspots))
	}
	for _, hw := range rep.Hotspots {
		for i, h := range hw.Top {
			if h.Util < 0 || h.Util > 1.0+1e-9 {
				t.Errorf("window (%d,%d] util %.3f out of range", hw.Start, hw.End, h.Util)
			}
			if i > 0 && h.Util > hw.Top[i-1].Util {
				t.Errorf("window (%d,%d] top-k not sorted", hw.Start, hw.End)
			}
		}
	}
	if len(rep.TopLinks) == 0 || rep.TopLinks[0].PeakUtil <= 0 {
		t.Fatalf("top links missing: %+v", rep.TopLinks)
	}
	// Steady-state windows should not beat the Algorithm 1 prediction by
	// more than tolerance on the hottest link of the whole run.
	pred := core.ModelLinkLoads(e)
	top := rep.TopLinks[0]
	if p := pred[[2]int{top.From, top.To}]; p > 0 && top.PeakUtil > p*1.5 {
		t.Errorf("peak util %.3f far above prediction %.3f for %d->%d",
			top.PeakUtil, p, top.From, top.To)
	}
}

// TestSnapshotTimeline pins the snapshot document: schema, full-run
// coverage at the chosen resolution, phase labels, and a deterministic
// markdown rendering.
func TestSnapshotTimeline(t *testing.T) {
	scfg := Config{SampleEvery: 16, Windows: 16, Levels: 3, Factor: 4}
	e, res, s, a := sampledRun(t, 5, 4096, core.Hamiltonian, scfg, nil)
	meta := SnapshotMeta{Q: 5, Kind: "hamiltonian", M: 4096, Nodes: len(res.Outputs),
		Aggregate: e.Model.Aggregate, Optimal: bandwidth.Optimal(5, 1.0),
		Floor: floorFor(5, core.Hamiltonian, e)}
	sn := BuildSnapshot(s, a, meta)
	if sn.Schema != SnapshotSchema {
		t.Fatalf("schema %q, want %q", sn.Schema, SnapshotSchema)
	}
	if len(sn.Points) == 0 {
		t.Fatal("no timeline points")
	}
	if sn.Points[0].Start != 0 || sn.Points[len(sn.Points)-1].End != res.Cycles {
		t.Fatalf("points cover (%d,%d], want (0,%d]", sn.Points[0].Start,
			sn.Points[len(sn.Points)-1].End, res.Cycles)
	}
	for i := 1; i < len(sn.Points); i++ {
		if sn.Points[i].Start != sn.Points[i-1].End {
			t.Fatalf("gap between points %d and %d", i-1, i)
		}
	}
	// Reduce and broadcast pipeline per-element, so steady-state windows
	// are "mixed"; the tail of the run drains as pure broadcast.
	valid := map[string]bool{"reduce": true, "bcast": true, "mixed": true, "drain": true}
	for _, p := range sn.Points {
		if !valid[p.Phase] {
			t.Fatalf("unknown phase label %q", p.Phase)
		}
	}
	// At the chosen resolution (coarse enough to retain the whole run)
	// every window carries traffic, so labels must be traffic-bearing.
	if sn.Resolution <= scfg.SampleEvery {
		if last := sn.Points[len(sn.Points)-1].Phase; last != "bcast" && last != "drain" {
			t.Errorf("final base window phase %q, want a broadcast/drain tail", last)
		}
	}
	if sn.FootprintBytes != s.FootprintBytes() {
		t.Errorf("snapshot footprint %d != sampler %d", sn.FootprintBytes, s.FootprintBytes())
	}
	var md bytes.Buffer
	if err := sn.WriteMarkdown(&md); err != nil {
		t.Fatal(err)
	}
	out := md.String()
	for _, want := range []string{"## Telemetry timeline", "| window | phase |",
		"Hottest links", "No bound violations"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
}
