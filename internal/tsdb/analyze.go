package tsdb

import (
	"fmt"
	"sort"
)

// Bounds carries the Algorithm 1 / §7 model figures the analyzer checks
// measured telemetry against. All rates are per-node delivered elements
// per cycle, the unit of bandwidth.Result.Aggregate.
type Bounds struct {
	// Nodes is N = q²+q+1, needed to turn fabric-wide delivery counts
	// into per-node rates.
	Nodes int `json:"nodes"`
	// Aggregate is the Algorithm 1 waterfill prediction ΣB_i.
	Aggregate float64 `json:"aggregate"`
	// Optimal is the Corollary 7.1 ceiling (q+1)·B/2.
	Optimal float64 `json:"optimal"`
	// Floor is the construction's guaranteed bandwidth — Theorem 7.6
	// q·B/2 for the low-depth forest, Theorem 7.19 t·B for Hamiltonian.
	// Zero disables the floor check.
	Floor float64 `json:"floor"`
	// FaultFree enables the finish-time floor check; a faulted run
	// legitimately lands below the fault-free floor.
	FaultFree bool `json:"fault_free"`
}

// AnalyzerConfig tunes the hotspot analyzer.
type AnalyzerConfig struct {
	// TopK is how many hottest links each window reports. Defaults to 3.
	TopK int
	// Tolerance widens model comparisons: ceilings scale by (1+Tolerance),
	// the floor by (1-Tolerance). Defaults to 0.05.
	Tolerance float64
	// Bounds enables the bandwidth-bound checks when Nodes > 0.
	Bounds Bounds
	// Predicted is the Algorithm 1 per-directed-link steady-state load
	// (flits/cycle), keyed by {from, to}; when set, hotspot entries are
	// compared against it. Links absent from the map predict zero load.
	Predicted map[[2]int]float64
}

// Hotspot is one hot link within a window.
type Hotspot struct {
	From int     `json:"from"`
	To   int     `json:"to"`
	Util float64 `json:"util"`
	// Predicted is the Algorithm 1 steady-state load for this link and
	// Exceeds whether measured utilization beats it beyond tolerance —
	// informational: transient post-stall bursts legitimately exceed the
	// steady-state figure within a single window.
	Predicted float64 `json:"predicted"`
	Exceeds   bool    `json:"exceeds,omitempty"`
}

// HotspotWindow is the top-k congested links of one base window.
type HotspotWindow struct {
	Start int       `json:"start"`
	End   int       `json:"end"`
	Top   []Hotspot `json:"top"`
}

// FaultEvent is a fault onset detected purely from telemetry: the
// LastFaultCycle gauge moved between two window boundaries.
type FaultEvent struct {
	// Cycle is the exact activation cycle recovered from the gauge.
	Cycle int `json:"cycle"`
	// ObservedEnd is the boundary at which the gauge move was seen —
	// detection lag is ObservedEnd-Cycle, at most one sampling window.
	ObservedEnd int `json:"observed_end"`
}

// RecoveryEvent is a recovery detected from the LastRecoverCycle gauge.
type RecoveryEvent struct {
	Cycle       int `json:"cycle"`
	ObservedEnd int `json:"observed_end"`
	// Latency is Cycle minus the latest detected fault at or before it,
	// matching obsv.RecoverMark.LatencyCycles; -1 if no fault was seen.
	Latency int `json:"latency"`
}

// Violation is a measured value outside its tolerance-adjusted bound.
type Violation struct {
	Start int     `json:"start"`
	End   int     `json:"end"`
	Kind  string  `json:"kind"` // "aggregate-ceiling", "optimal-ceiling", "floor"
	Value float64 `json:"value"`
	Bound float64 `json:"bound"`
}

func (v Violation) String() string {
	return fmt.Sprintf("window (%d,%d]: %s: rate %.4f vs bound %.4f", v.Start, v.End, v.Kind, v.Value, v.Bound)
}

// maxViolations caps the retained violation list; the count keeps going.
const maxViolations = 64

// LinkSummary is one link's whole-run congestion summary.
type LinkSummary struct {
	From int `json:"from"`
	To   int `json:"to"`
	// PeakUtil is the link's hottest single-window utilization.
	PeakUtil float64 `json:"peak_util"`
	// PeakStart/PeakEnd delimit the window where the peak occurred.
	PeakStart int `json:"peak_start"`
	PeakEnd   int `json:"peak_end"`
	// Flagged counts windows where this link made the top-k.
	Flagged int `json:"flagged"`
}

// Analyzer consumes closed base windows from a Sampler and maintains
// fixed-memory congestion and fault analyses: per-window top-k hotspots
// (recent ring), whole-run per-link peaks, telemetry-derived fault
// onset/recovery events, and bandwidth-bound checks against the
// Algorithm 1 prediction and the §7 floors/ceilings.
type Analyzer struct {
	cfg     AnalyzerConfig
	sampler *Sampler

	windows   int // base windows observed
	delivered int // cumulative delivered elements

	// utils is nil until the first window allocates the fixed-size state;
	// the nil check in observe is the one-time init gate. lint:cold
	utils    []float64 // scratch: per-link utilization of the current window
	peakUtil []float64
	peakAt   [][2]int // window (start, end] of each link's peak
	flagged  []int
	pred     []float64 // per-link predicted load, frame order

	recent    []HotspotWindow // ring of the last cfg-Windows hotspot windows
	recentTop []Hotspot       // slot-major backing for the rings' Top slices
	recentSeq int

	lastFaultGauge   int
	lastRecoverGauge int
	faults           []FaultEvent
	recoveries       []RecoveryEvent

	violations     []Violation
	violationCount int
	finishDone     bool
}

// NewAnalyzer attaches an analyzer to the sampler; it observes every base
// window the sampler closes from then on. Attach before the first frame.
func NewAnalyzer(s *Sampler, cfg AnalyzerConfig) *Analyzer {
	if cfg.TopK == 0 {
		cfg.TopK = 3
	}
	if cfg.Tolerance <= 0 {
		cfg.Tolerance = 0.05
	}
	a := &Analyzer{cfg: cfg, sampler: s,
		lastFaultGauge: -1, lastRecoverGauge: -1}
	s.onWindow = a.observe
	return a
}

// observe is the Sampler's base-window hook.
//
//lint:hotpath per-window analysis driven from the sampler's ingest path
func (a *Analyzer) observe(run RunWindow, links []LinkWindow) {
	if a.utils == nil {
		a.init(len(links))
	}
	a.windows++
	a.delivered += run.Delivered
	dur := float64(run.End - run.Start)

	for i := range links {
		u := float64(links[i].Busy) / dur
		a.utils[i] = u
		if u > a.peakUtil[i] {
			a.peakUtil[i] = u
			a.peakAt[i] = [2]int{run.Start, run.End}
		}
	}
	// Each ring slot owns a fixed TopK segment of recentTop; reslicing it
	// keeps the per-window top-k allocation-free after init.
	slot := a.recentSeq % cap(a.recent)
	hw := HotspotWindow{Start: run.Start, End: run.End,
		Top: a.recentTop[slot*a.cfg.TopK : slot*a.cfg.TopK : (slot+1)*a.cfg.TopK]}
	for k := 0; k < a.cfg.TopK; k++ {
		best, bestIdx := 0.0, -1
		for i, u := range a.utils {
			if u > best && !a.inTop(hw.Top, i) {
				best, bestIdx = u, i
			}
		}
		if bestIdx < 0 || best <= 0 {
			break
		}
		key := a.sampler.keys[bestIdx]
		h := Hotspot{From: key[0], To: key[1], Util: best}
		if a.pred != nil {
			h.Predicted = a.pred[bestIdx]
			h.Exceeds = best > h.Predicted*(1+a.cfg.Tolerance)
		}
		//lint:ignore hotalloc the three-index reslice caps Top at TopK and the loop runs at most TopK times
		hw.Top = append(hw.Top, h)
		a.flagged[bestIdx]++
	}
	a.recent = a.recent[:minInt(len(a.recent)+1, cap(a.recent))]
	a.recent[slot] = hw
	a.recentSeq++

	a.observeGauges(run)
	a.checkCeilings(run)
}

func (a *Analyzer) init(nlinks int) {
	a.utils = make([]float64, nlinks)
	a.peakUtil = make([]float64, nlinks)
	a.peakAt = make([][2]int, nlinks)
	a.flagged = make([]int, nlinks)
	a.recent = make([]HotspotWindow, 0, a.sampler.cfg.Windows)
	a.recentTop = make([]Hotspot, a.sampler.cfg.Windows*a.cfg.TopK)
	a.violations = make([]Violation, 0, maxViolations)
	if a.cfg.Predicted != nil {
		a.pred = make([]float64, nlinks)
		for i, key := range a.sampler.keys {
			a.pred[i] = a.cfg.Predicted[key]
		}
	}
}

// inTop reports whether link index i is already among the window's picks.
func (a *Analyzer) inTop(top []Hotspot, i int) bool {
	key := a.sampler.keys[i]
	for _, h := range top {
		if h.From == key[0] && h.To == key[1] {
			return true
		}
	}
	return false
}

// observeGauges turns gauge movement into exact fault/recovery events.
// The gauges carry the precise event cycle, so detection recovers the
// ground-truth timing even though it only looks at window boundaries.
func (a *Analyzer) observeGauges(run RunWindow) {
	if run.LastFaultCycle != a.lastFaultGauge {
		a.lastFaultGauge = run.LastFaultCycle
		//lint:ignore hotalloc fault events are bounded by the fault plan, not the cycle count
		a.faults = append(a.faults, FaultEvent{
			Cycle: run.LastFaultCycle, ObservedEnd: run.End})
	}
	if run.LastRecoverCycle != a.lastRecoverGauge {
		a.lastRecoverGauge = run.LastRecoverCycle
		ev := RecoveryEvent{Cycle: run.LastRecoverCycle,
			ObservedEnd: run.End, Latency: -1}
		// Latest detected fault at or before the recovery, mirroring the
		// obsv collector's latency attribution.
		for i := len(a.faults) - 1; i >= 0; i-- {
			if a.faults[i].Cycle <= ev.Cycle {
				ev.Latency = ev.Cycle - a.faults[i].Cycle
				break
			}
		}
		//lint:ignore hotalloc recovery events are bounded by the fault plan, not the cycle count
		a.recoveries = append(a.recoveries, ev)
	}
}

// checkCeilings verifies the cumulative per-node delivered rate against
// the Algorithm 1 aggregate and the Corollary 7.1 optimal. Cumulative —
// not per-window — because a post-stall burst can legitimately exceed
// the steady-state rate inside a single window, while the cumulative
// rate is bounded for the whole prefix.
func (a *Analyzer) checkCeilings(run RunWindow) {
	b := a.cfg.Bounds
	if b.Nodes <= 0 || run.End <= 0 {
		return
	}
	rate := float64(a.delivered) / float64(b.Nodes) / float64(run.End)
	tol := 1 + a.cfg.Tolerance
	if b.Aggregate > 0 && rate > b.Aggregate*tol {
		a.violate(Violation{Start: run.Start, End: run.End,
			Kind: "aggregate-ceiling", Value: rate, Bound: b.Aggregate * tol})
	}
	if b.Optimal > 0 && rate > b.Optimal*tol {
		a.violate(Violation{Start: run.Start, End: run.End,
			Kind: "optimal-ceiling", Value: rate, Bound: b.Optimal * tol})
	}
}

func (a *Analyzer) violate(v Violation) {
	a.violationCount++
	if len(a.violations) < maxViolations {
		a.violations = append(a.violations, v)
	}
}

// finishChecks runs the end-of-run floor check: on a fault-free run the
// whole-run per-node rate must reach the construction's guaranteed
// bandwidth (Theorem 7.6 / Theorem 7.19) within tolerance.
func (a *Analyzer) finishChecks() {
	b := a.cfg.Bounds
	if !b.FaultFree || b.Floor <= 0 || b.Nodes <= 0 || !a.sampler.Finished() {
		return
	}
	cycles := a.sampler.Cycles()
	if cycles <= 0 {
		return
	}
	rate := float64(a.delivered) / float64(b.Nodes) / float64(cycles)
	bound := b.Floor * (1 - a.cfg.Tolerance)
	if rate < bound {
		a.violate(Violation{Start: 0, End: cycles,
			Kind: "floor", Value: rate, Bound: bound})
	}
}

// Report summarises the analysis. Call after the run (the floor check
// needs the final frame); safe to call repeatedly. Reports are
// reproducible run artifacts. lint:detsink
type Report struct {
	// Windows is how many base windows were analyzed, Cycles the last
	// sampled cycle.
	Windows int `json:"windows"`
	Cycles  int `json:"cycles"`
	// FinalRate is the whole-run per-node delivered rate (the measured
	// Allreduce bandwidth, comparable to bandwidth.Result.Aggregate).
	FinalRate float64 `json:"final_rate"`
	// TopLinks are the run's hottest links by peak window utilization.
	TopLinks []LinkSummary `json:"top_links"`
	// Hotspots is the retained ring of recent per-window top-k flags,
	// oldest first.
	Hotspots []HotspotWindow `json:"hotspots"`
	// Faults and Recoveries are the telemetry-derived event timelines.
	Faults     []FaultEvent    `json:"faults"`
	Recoveries []RecoveryEvent `json:"recoveries"`
	// Violations are bound breaches (empty on a healthy run);
	// ViolationCount includes any beyond the retention cap.
	Violations     []Violation `json:"violations"`
	ViolationCount int         `json:"violation_count"`
}

// Report builds the analysis summary.
func (a *Analyzer) Report() *Report {
	a.finishedOnce()
	r := &Report{
		Windows:        a.windows,
		Cycles:         a.sampler.Cycles(),
		Faults:         append([]FaultEvent(nil), a.faults...),
		Recoveries:     append([]RecoveryEvent(nil), a.recoveries...),
		Violations:     append([]Violation(nil), a.violations...),
		ViolationCount: a.violationCount,
	}
	if b := a.cfg.Bounds; b.Nodes > 0 && r.Cycles > 0 {
		r.FinalRate = float64(a.delivered) / float64(b.Nodes) / float64(r.Cycles)
	}
	r.TopLinks = a.topLinks()
	r.Hotspots = a.recentHotspots()
	return r
}

// finishedOnce runs the finish checks exactly once after the final frame.
func (a *Analyzer) finishedOnce() {
	if a.sampler.Finished() && !a.finishDone {
		a.finishDone = true
		a.finishChecks()
	}
}

// topLinks ranks links by peak utilization, descending, ties by frame
// order (deterministic).
func (a *Analyzer) topLinks() []LinkSummary {
	n := len(a.peakUtil)
	if n == 0 {
		return nil
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(x, y int) bool {
		return a.peakUtil[idx[x]] > a.peakUtil[idx[y]]
	})
	k := minInt(a.cfg.TopK, n)
	out := make([]LinkSummary, 0, k)
	for _, i := range idx[:k] {
		key := a.sampler.keys[i]
		out = append(out, LinkSummary{
			From: key[0], To: key[1],
			PeakUtil:  a.peakUtil[i],
			PeakStart: a.peakAt[i][0], PeakEnd: a.peakAt[i][1],
			Flagged: a.flagged[i],
		})
	}
	return out
}

// recentHotspots returns the retained hotspot windows oldest-first.
func (a *Analyzer) recentHotspots() []HotspotWindow {
	n := len(a.recent)
	if n == 0 {
		return nil
	}
	out := make([]HotspotWindow, 0, n)
	start := a.recentSeq - n
	for i := 0; i < n; i++ {
		hw := a.recent[(start+i)%cap(a.recent)]
		// The ring reuses each slot's Top backing; a report must not alias
		// storage the next window will overwrite.
		hw.Top = append([]Hotspot(nil), hw.Top...)
		out = append(out, hw)
	}
	return out
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
