package tsdb

import (
	"testing"

	"polarfly/internal/bandwidth"
	"polarfly/internal/er"
	"polarfly/internal/netsim"
	"polarfly/internal/singer"
	"polarfly/internal/trees"
	"polarfly/internal/workload"
)

// benchSpec mirrors internal/netsim's hot-loop benchmark spec exactly
// (same q, m, embeddings, fabric config), so the "HotLoopSampled" series
// is directly comparable to the unsampled "HotLoop" series from the same
// benchmark run — that pairing is what the telemetry-overhead gate in
// internal/perf checks against the <5% budget.
func benchSpec(b *testing.B, q, m int, kind string) netsim.Spec {
	b.Helper()
	pg, err := er.New(q)
	if err != nil {
		b.Fatal(err)
	}
	var forest []*trees.Tree
	topo := pg.G
	switch kind {
	case "single":
		tr, err := trees.SingleTreeBaseline(pg.G, 0)
		if err != nil {
			b.Fatal(err)
		}
		forest = []*trees.Tree{tr}
	case "lowdepth":
		l, err := er.NewLayout(pg, -1)
		if err != nil {
			b.Fatal(err)
		}
		forest, err = trees.LowDepthForest(l)
		if err != nil {
			b.Fatal(err)
		}
	case "hamiltonian":
		s, err := singer.New(q)
		if err != nil {
			b.Fatal(err)
		}
		forest, err = trees.HamiltonianForest(s, 30, 42)
		if err != nil {
			b.Fatal(err)
		}
		topo = s.Topology()
	}
	wf := bandwidth.ForForest(forest, 1.0)
	split, err := bandwidth.SubvectorSplit(m, wf.PerTree)
	if err != nil {
		b.Fatal(err)
	}
	return netsim.Spec{Topology: topo, Forest: forest, Split: split,
		Inputs: workload.Vectors(topo.N(), m, 100, 1)}
}

// BenchmarkAnalyzerWindow isolates the per-window ingest path — one
// Sample call closing one base window, observed by an attached Analyzer —
// on synthetic frames, with the one-time init outside the timer. This is
// the path the hotalloc analyzer proves allocation-free (Sample and
// observe roots); allocs/op must stay at 0 in steady state. Before the
// slot-backed hotspot ring it paid one make([]Hotspot) per window.
func BenchmarkAnalyzerWindow(b *testing.B) {
	const nlinks = 512
	s := MustNew(Config{SampleEvery: 64})
	NewAnalyzer(s, AnalyzerConfig{TopK: 3})
	fr := &netsim.SampleFrame{Links: make([]netsim.LinkCounters, nlinks)}
	for i := range fr.Links {
		fr.Links[i].From = i
		fr.Links[i].To = i + 1
	}
	s.Sample(fr) // first frame: allocates all ring storage
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fr.Cycle += 64
		for j := range fr.Links {
			fr.Links[j].Flits += j % 7
			fr.Links[j].BusyCycles += j % 5
		}
		fr.Run.FlitsSent += nlinks
		fr.Run.Delivered += nlinks / 2
		s.Sample(fr)
	}
}

// BenchmarkHotLoopSampled is netsim.BenchmarkHotLoop with the telemetry
// sampler attached at the default 64-cycle window: same design point
// (q=11, m=8192), same fabric (LinkLatency 5, VCDepth 8), same sub-names,
// plus a Sampler consuming every frame into the default 3×64-window
// rings. The perf overhead gate pairs each sub-benchmark with its
// unsampled twin from the same snapshot and fails if sampling costs more
// than 5% ns/op.
func BenchmarkHotLoopSampled(b *testing.B) {
	for _, kind := range []string{"single", "lowdepth", "hamiltonian"} {
		spec := benchSpec(b, 11, 8192, kind)
		b.Run("q=11/"+kind, func(b *testing.B) {
			cfg := netsim.Config{LinkLatency: 5, VCDepth: 8}
			s := MustNew(Config{SampleEvery: 64})
			cfg.SampleEvery = 64
			cfg.Sample = s.Sample
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s.Reset()
				res, err := netsim.Run(spec, cfg)
				if err != nil {
					b.Fatal(err)
				}
				if !s.Finished() {
					b.Fatal("sampler missed the final frame")
				}
				b.ReportMetric(float64(res.Cycles), "simcycles")
			}
		})
	}
}
