package tsdb

import (
	"testing"

	"polarfly/internal/netsim"
)

// feedFrames drives a sampler with n synthetic base windows of
// SampleEvery cycles, one flit and one busy cycle per link per window,
// then the final flush frame at the last boundary (zero duration, the
// shape netsim emits when the run ends exactly on a boundary).
func feedFrames(s *Sampler, sampleEvery, nlinks, n int) {
	fr := netsim.SampleFrame{Links: make([]netsim.LinkCounters, nlinks)}
	for i := range fr.Links {
		fr.Links[i].From, fr.Links[i].To = i, i+1
	}
	fr.Run.LastFaultCycle, fr.Run.LastRecoverCycle = -1, -1
	// The init frame: netsim samples cycle 0 so the sampler learns the
	// link set before any window elapses.
	s.Sample(&fr)
	for w := 1; w <= n; w++ {
		fr.Cycle = w * sampleEvery
		for i := range fr.Links {
			fr.Links[i].Flits++
			fr.Links[i].BusyCycles++
			fr.Links[i].Buffered = w % 3
		}
		fr.Run.FlitsSent += nlinks
		fr.Run.ReduceFlits += nlinks
		s.Sample(&fr)
	}
	fr.Final = true
	s.Sample(&fr)
}

// TestExactRingFill pins the ring boundary where the window count
// exactly fills a level: with Windows base windows closed, the ring
// holds its complete history (nothing evicted, nothing wrapped), and
// with Windows an exact multiple of Factor the cascade closes only
// full-group coarse windows — the end-of-run flush must not mint an
// extra partial from an empty accumulator.
func TestExactRingFill(t *testing.T) {
	const (
		sampleEvery = 4
		windows     = 8
		factor      = 4
		nlinks      = 3
	)
	s := MustNew(Config{SampleEvery: sampleEvery, Windows: windows, Levels: 3, Factor: factor})
	feedFrames(s, sampleEvery, nlinks, windows)

	if got := s.TotalWindows(0); got != windows {
		t.Fatalf("level 0 closed %d windows, want exactly %d", got, windows)
	}
	if got := s.Retained(0); got != windows {
		t.Fatalf("level 0 retains %d windows, want the full ring %d", got, windows)
	}
	for i := 0; i < windows; i++ {
		run, links := s.Window(0, i)
		if run.Start != i*sampleEvery || run.End != (i+1)*sampleEvery {
			t.Errorf("window %d spans (%d, %d], want (%d, %d]",
				i, run.Start, run.End, i*sampleEvery, (i+1)*sampleEvery)
		}
		if run.Partial {
			t.Errorf("window %d marked partial; every base window was full length", i)
		}
		for li, lw := range links {
			if lw.Flits != 1 || lw.Busy != 1 {
				t.Errorf("window %d link %d: flits=%d busy=%d, want 1/1", i, li, lw.Flits, lw.Busy)
			}
		}
	}

	// windows/factor full groups and not one window more: a flush with an
	// empty accumulator must be a no-op at every coarser level.
	if got, want := s.TotalWindows(1), windows/factor; got != want {
		t.Fatalf("level 1 closed %d windows, want exactly %d full groups", got, want)
	}
	for i := 0; i < windows/factor; i++ {
		run, links := s.Window(1, i)
		if run.Partial {
			t.Errorf("level 1 window %d marked partial; it closed as a full Factor group", i)
		}
		if dur := run.End - run.Start; dur != factor*sampleEvery {
			t.Errorf("level 1 window %d covers %d cycles, want %d", i, dur, factor*sampleEvery)
		}
		for li, lw := range links {
			if lw.Flits != factor {
				t.Errorf("level 1 window %d link %d: %d flits, want %d", i, li, lw.Flits, factor)
			}
		}
	}
	// Level 2 saw windows/factor = 2 children — less than a group — so
	// flush closes them as one partial window.
	if got := s.TotalWindows(2); got != 1 {
		t.Fatalf("level 2 closed %d windows, want 1 flushed partial", got)
	}
	if run, _ := s.Window(2, 0); !run.Partial {
		t.Error("level 2 flush window not marked partial despite an incomplete group")
	}
}

// TestNonDivisibleRunLength pins the flush path when the base-window
// count does not divide by Factor: the leftover children close as a
// partial coarse window, and the level-1 series still accounts for every
// base window — full groups plus the flushed tail reconcile exactly
// against the run totals.
func TestNonDivisibleRunLength(t *testing.T) {
	const (
		sampleEvery = 4
		windows     = 32
		factor      = 4
		total       = 11 // 2 full groups of 4 + 3 leftover
		nlinks      = 2
	)
	s := MustNew(Config{SampleEvery: sampleEvery, Windows: windows, Levels: 2, Factor: factor})
	feedFrames(s, sampleEvery, nlinks, total)

	if got, want := s.TotalWindows(1), total/factor+1; got != want {
		t.Fatalf("level 1 closed %d windows, want %d full + 1 partial = %d", got, total/factor, want)
	}
	flits := 0
	for i := 0; i < s.Retained(1); i++ {
		run, links := s.Window(1, i)
		last := i == s.Retained(1)-1
		if run.Partial != last {
			t.Errorf("level 1 window %d partial=%v, want %v (only the flushed tail is partial)",
				i, run.Partial, last)
		}
		wantDur := factor * sampleEvery
		if last {
			wantDur = (total % factor) * sampleEvery
		}
		if dur := run.End - run.Start; dur != wantDur {
			t.Errorf("level 1 window %d covers %d cycles, want %d", i, dur, wantDur)
		}
		for li, lw := range links {
			wantFlits := uint32(factor)
			if last {
				wantFlits = uint32(total % factor)
			}
			if lw.Flits != wantFlits {
				t.Errorf("level 1 window %d link %d: %d flits, want %d", i, li, lw.Flits, wantFlits)
			}
		}
		flits += run.Flits
	}
	if want := total * nlinks; flits != want {
		t.Errorf("level 1 windows sum to %d flits, run injected %d — the cascade lost flits", flits, want)
	}
	// Windows tile the run with no gap or overlap across the flush seam.
	for i := 1; i < s.Retained(1); i++ {
		prev, _ := s.Window(1, i-1)
		cur, _ := s.Window(1, i)
		if cur.Start != prev.End {
			t.Errorf("level 1 window %d starts at %d, previous ended at %d", i, cur.Start, prev.End)
		}
	}
}
