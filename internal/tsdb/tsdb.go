// Package tsdb is the repository's bounded-memory streaming telemetry
// engine: a fixed-size, multi-resolution time-series store fed by the
// netsim sampling hook (Config.Sample), plus a hotspot analyzer that
// compares each window against the Algorithm 1 waterfill prediction and
// the Theorem 7.6 / Theorem 7.19 bandwidth bounds and detects fault
// onset and recovery latency purely from telemetry.
//
// The Sampler differences successive cumulative SampleFrames into exact
// per-window counters and stores them in RRD-style ring buffers: level 0
// holds the most recent Windows base windows (SampleEvery cycles each),
// level 1 the most recent Windows windows of Factor base windows, and so
// on. Memory is fixed at construction — links × levels × Windows rows —
// and independent of how many cycles the simulation runs, which is what
// makes telemetry viable at the ROADMAP's 100×-scale design points
// (q=127 has ~2M directed links·levels·windows rows only if asked for;
// the default 3 levels × 64 windows costs tens of bytes per link).
//
// Because windows are exact counter deltas, the per-link window sums over
// a fully retained level reconcile exactly against the end-of-run
// Result.LinkStats counters — the conservation property the tests pin.
package tsdb

import (
	"fmt"
	"unsafe"

	"polarfly/internal/netsim"
)

// Config sizes the sampler's fixed-memory rings.
type Config struct {
	// SampleEvery is the base window length in cycles; it must match the
	// netsim.Config.SampleEvery of the run feeding the sampler.
	SampleEvery int `json:"sample_every"`
	// Windows is the ring capacity per resolution level: how many of the
	// most recent windows each level retains. Defaults to 64.
	Windows int `json:"windows"`
	// Levels is the number of resolution levels. Defaults to 3
	// (base, Factor×, Factor²× — the RRD-style 1×/8×/64× hierarchy).
	Levels int `json:"levels"`
	// Factor is the downsampling ratio between adjacent levels.
	// Defaults to 8.
	Factor int `json:"factor"`
}

// withDefaults validates the config and fills documented defaults.
func (c Config) withDefaults() (Config, error) {
	if c.SampleEvery < 1 {
		return c, fmt.Errorf("tsdb: SampleEvery must be ≥ 1, got %d", c.SampleEvery)
	}
	if c.Windows == 0 {
		c.Windows = 64
	}
	if c.Windows < 1 {
		return c, fmt.Errorf("tsdb: Windows must be ≥ 1, got %d", c.Windows)
	}
	if c.Levels == 0 {
		c.Levels = 3
	}
	if c.Levels < 1 {
		return c, fmt.Errorf("tsdb: Levels must be ≥ 1, got %d", c.Levels)
	}
	if c.Factor == 0 {
		c.Factor = 8
	}
	if c.Factor < 2 {
		return c, fmt.Errorf("tsdb: Factor must be ≥ 2, got %d", c.Factor)
	}
	return c, nil
}

// LinkWindow is one closed window of one directed link's series: exact
// counter deltas over the window, so sums across windows reconcile
// against the run totals. uint32 bounds a single window at ~4G flits —
// far beyond any simulated window — while keeping the ring rows at 20
// bytes per link per window.
type LinkWindow struct {
	// Flits, Busy, Stalls, and Dropped are the window's deltas of the
	// corresponding LinkStat counters.
	Flits   uint32 `json:"flits"`
	Busy    uint32 `json:"busy"`
	Stalls  uint32 `json:"stalls"`
	Dropped uint32 `json:"dropped"`
	// MaxBuf is the receive-buffer occupancy observed at base-window
	// close; coarser levels keep the max over their child windows.
	MaxBuf uint32 `json:"max_buf"`
}

// RunWindow is one closed window of the run-level series: fabric-wide
// counter deltas plus end-of-window gauges.
type RunWindow struct {
	// Start and End delimit the window: it covers cycles (Start, End].
	Start int `json:"start"`
	End   int `json:"end"`
	// Partial marks a window shorter than its level's nominal duration —
	// the flushed tail at the end of a run.
	Partial bool `json:"partial,omitempty"`
	// Flits, ReduceFlits, and BcastFlits are injection deltas.
	Flits       int `json:"flits"`
	ReduceFlits int `json:"reduce_flits"`
	BcastFlits  int `json:"bcast_flits"`
	// Delivered, Dropped, Reissued, and Recoveries are deltas of the
	// corresponding run counters.
	Delivered  int `json:"delivered"`
	Dropped    int `json:"dropped,omitempty"`
	Reissued   int `json:"reissued,omitempty"`
	Recoveries int `json:"recoveries,omitempty"`
	// BufferedFlits is the total buffered flits at window close.
	BufferedFlits int `json:"buffered_flits"`
	// MaxLinkUtil is the window's hottest link utilization (injection
	// busy cycles over window duration) and MaxLinkFrom/To that link;
	// ties resolve to the first link in (From, To) order.
	MaxLinkUtil float64 `json:"max_link_util"`
	MaxLinkFrom int     `json:"max_link_from"`
	MaxLinkTo   int     `json:"max_link_to"`
	// LastFaultCycle and LastRecoverCycle are the end-of-window gauges
	// from netsim.RunCounters (-1 before the first event).
	LastFaultCycle   int `json:"last_fault_cycle"`
	LastRecoverCycle int `json:"last_recover_cycle"`
}

// level is one resolution ring plus the accumulator collecting child
// windows for the next coarser level.
type level struct {
	dur  int          // nominal window duration in cycles
	seq  int          // windows closed at this level so far
	run  []RunWindow  // ring, capacity Windows
	data []LinkWindow // window-major ring: [slot*nlinks + link]

	// Accumulation toward this level from the finer one (unused at
	// level 0, whose windows close directly from frames).
	openCount   int
	openPartial bool
	openRun     RunWindow
	openLinks   []LinkWindow
}

// Sampler is the fixed-memory multi-resolution store. Feed it by setting
// netsim.Config.Sample = sampler.Sample (with matching SampleEvery); all
// storage is allocated on the first frame and reused for the rest of the
// run.
type Sampler struct {
	cfg    Config
	nlinks int
	keys   [][2]int // directed link identities, in frame order

	// prev is nil until the first frame allocates all ring storage; the
	// nil check in Sample is the one-time init gate. lint:cold
	prev      []netsim.LinkCounters // cumulative counters at the previous boundary
	prevRun   netsim.RunCounters
	prevCycle int

	levels   []level
	delta    []LinkWindow // scratch: one base window of per-link deltas
	finished bool

	// onWindow observes every closed base window (set by NewAnalyzer).
	onWindow func(run RunWindow, links []LinkWindow)
}

// New constructs a sampler; ring storage is allocated lazily on the
// first frame, when the link count is known.
func New(cfg Config) (*Sampler, error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	return &Sampler{cfg: c}, nil
}

// MustNew is New for callers with a statically valid config.
func MustNew(cfg Config) *Sampler {
	s, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Sample is the netsim.Config.Sample hook: it differences the cumulative
// frame against the previous boundary into one base window and cascades
// full groups of Factor windows into the coarser levels. Frames after
// the final one are ignored.
//
//lint:hotpath telemetry ingest runs once per sampling window inside the simulation
func (s *Sampler) Sample(fr *netsim.SampleFrame) {
	if s.finished {
		return
	}
	if s.prev == nil {
		s.init(fr)
	}
	if dur := fr.Cycle - s.prevCycle; dur > 0 {
		s.closeBase(fr, dur)
	}
	if fr.Final {
		s.finished = true
		s.flush()
	}
}

// init allocates all ring storage for the run's link set.
func (s *Sampler) init(fr *netsim.SampleFrame) {
	s.nlinks = len(fr.Links)
	s.keys = make([][2]int, s.nlinks)
	for i, lc := range fr.Links {
		s.keys[i] = [2]int{lc.From, lc.To}
	}
	s.prev = make([]netsim.LinkCounters, s.nlinks)
	s.prevRun = netsim.RunCounters{LastFaultCycle: -1, LastRecoverCycle: -1}
	s.delta = make([]LinkWindow, s.nlinks)
	s.levels = make([]level, s.cfg.Levels)
	dur := s.cfg.SampleEvery
	for l := range s.levels {
		lv := &s.levels[l]
		lv.dur = dur
		lv.run = make([]RunWindow, s.cfg.Windows)
		lv.data = make([]LinkWindow, s.cfg.Windows*s.nlinks)
		if l > 0 {
			lv.openLinks = make([]LinkWindow, s.nlinks)
		}
		dur *= s.cfg.Factor
	}
}

// closeBase turns the frame into one base window and pushes it.
func (s *Sampler) closeBase(fr *netsim.SampleFrame, dur int) {
	bestBusy, bestIdx := uint32(0), -1
	for i := range fr.Links {
		c, p := &fr.Links[i], &s.prev[i]
		d := &s.delta[i]
		d.Flits = uint32(c.Flits - p.Flits)
		d.Busy = uint32(c.BusyCycles - p.BusyCycles)
		d.Stalls = uint32(c.StallCycles - p.StallCycles)
		d.Dropped = uint32(c.Dropped - p.Dropped)
		d.MaxBuf = uint32(c.Buffered)
		if d.Busy > bestBusy {
			bestBusy, bestIdx = d.Busy, i
		}
	}
	run := RunWindow{
		Start:            s.prevCycle,
		End:              fr.Cycle,
		Partial:          fr.Final && dur < s.cfg.SampleEvery,
		Flits:            fr.Run.FlitsSent - s.prevRun.FlitsSent,
		ReduceFlits:      fr.Run.ReduceFlits - s.prevRun.ReduceFlits,
		BcastFlits:       fr.Run.BcastFlits - s.prevRun.BcastFlits,
		Delivered:        fr.Run.Delivered - s.prevRun.Delivered,
		Dropped:          fr.Run.Dropped - s.prevRun.Dropped,
		Reissued:         fr.Run.Reissued - s.prevRun.Reissued,
		Recoveries:       fr.Run.Recoveries - s.prevRun.Recoveries,
		BufferedFlits:    fr.Run.BufferedFlits,
		MaxLinkFrom:      -1,
		MaxLinkTo:        -1,
		LastFaultCycle:   fr.Run.LastFaultCycle,
		LastRecoverCycle: fr.Run.LastRecoverCycle,
	}
	if bestIdx >= 0 {
		run.MaxLinkUtil = float64(bestBusy) / float64(dur)
		run.MaxLinkFrom = s.keys[bestIdx][0]
		run.MaxLinkTo = s.keys[bestIdx][1]
	}
	copy(s.prev, fr.Links)
	s.prevRun = fr.Run
	s.prevCycle = fr.Cycle
	s.push(0, run, s.delta)
}

// push commits one closed window into level l's ring, hands base windows
// to the analyzer hook, and accumulates toward level l+1, cascading when
// a full group of Factor children closes.
func (s *Sampler) push(l int, run RunWindow, links []LinkWindow) {
	lv := &s.levels[l]
	slot := lv.seq % s.cfg.Windows
	lv.run[slot] = run
	copy(lv.data[slot*s.nlinks:(slot+1)*s.nlinks], links)
	lv.seq++
	if l == 0 && s.onWindow != nil {
		//lint:ignore hotalloc the hook target is (*Analyzer).observe, itself a checked hotpath root
		s.onWindow(run, links)
	}
	if l+1 >= len(s.levels) {
		return
	}
	next := &s.levels[l+1]
	if next.openCount == 0 {
		next.openRun = run
		next.openPartial = run.Partial
		copy(next.openLinks, links)
	} else {
		o := &next.openRun
		o.End = run.End
		o.Flits += run.Flits
		o.ReduceFlits += run.ReduceFlits
		o.BcastFlits += run.BcastFlits
		o.Delivered += run.Delivered
		o.Dropped += run.Dropped
		o.Reissued += run.Reissued
		o.Recoveries += run.Recoveries
		o.BufferedFlits = run.BufferedFlits
		o.LastFaultCycle = run.LastFaultCycle
		o.LastRecoverCycle = run.LastRecoverCycle
		if run.MaxLinkUtil > o.MaxLinkUtil {
			o.MaxLinkUtil = run.MaxLinkUtil
			o.MaxLinkFrom = run.MaxLinkFrom
			o.MaxLinkTo = run.MaxLinkTo
		}
		next.openPartial = next.openPartial || run.Partial
		for i := range next.openLinks {
			a, b := &next.openLinks[i], &links[i]
			a.Flits += b.Flits
			a.Busy += b.Busy
			a.Stalls += b.Stalls
			a.Dropped += b.Dropped
			if b.MaxBuf > a.MaxBuf {
				a.MaxBuf = b.MaxBuf
			}
		}
	}
	next.openCount++
	if next.openCount == s.cfg.Factor {
		closed := next.openRun
		closed.Partial = next.openPartial
		next.openCount = 0
		s.push(l+1, closed, next.openLinks)
	}
}

// flush closes every level's partial accumulator at end of run, bottom
// up, so each level's total history is complete (and marked partial).
func (s *Sampler) flush() {
	for l := 1; l < len(s.levels); l++ {
		lv := &s.levels[l]
		if lv.openCount == 0 {
			continue
		}
		closed := lv.openRun
		closed.Partial = true
		lv.openCount = 0
		s.push(l, closed, lv.openLinks)
	}
}

// Links returns the directed link identities in ring order (the order of
// every Window's links slice). The slice is owned by the sampler.
func (s *Sampler) Links() [][2]int { return s.keys }

// NumLinks is the number of directed links in the series.
func (s *Sampler) NumLinks() int { return s.nlinks }

// Levels is the number of resolution levels.
func (s *Sampler) Levels() int { return len(s.levels) }

// LevelDuration is level l's nominal window length in cycles.
func (s *Sampler) LevelDuration(l int) int { return s.levels[l].dur }

// TotalWindows is how many windows level l has closed over the whole
// run; Retained is how many of the most recent ones the ring still
// holds.
func (s *Sampler) TotalWindows(l int) int { return s.levels[l].seq }

// Retained reports how many windows of level l are available to Window.
func (s *Sampler) Retained(l int) int {
	if s.levels == nil {
		return 0
	}
	if s.levels[l].seq < s.cfg.Windows {
		return s.levels[l].seq
	}
	return s.cfg.Windows
}

// Window returns level l's i-th retained window, oldest first
// (i in [0, Retained(l))). The links slice aliases ring storage and is
// valid until the ring wraps over it.
func (s *Sampler) Window(l, i int) (RunWindow, []LinkWindow) {
	lv := &s.levels[l]
	idx := lv.seq - s.Retained(l) + i
	slot := idx % s.cfg.Windows
	return lv.run[slot], lv.data[slot*s.nlinks : (slot+1)*s.nlinks]
}

// Reset clears all series so the sampler can consume another run of the
// SAME spec (same link set, in the same order), reusing the ring storage
// allocated for the first run. Sweep runners and benchmarks use it to
// keep the steady state allocation-free across repeated runs.
func (s *Sampler) Reset() {
	s.finished = false
	s.prevCycle = 0
	if s.prev == nil {
		return
	}
	for i := range s.prev {
		s.prev[i] = netsim.LinkCounters{From: s.keys[i][0], To: s.keys[i][1]}
	}
	s.prevRun = netsim.RunCounters{LastFaultCycle: -1, LastRecoverCycle: -1}
	for l := range s.levels {
		lv := &s.levels[l]
		lv.seq = 0
		lv.openCount = 0
		lv.openPartial = false
	}
}

// Finished reports whether the final frame was consumed.
func (s *Sampler) Finished() bool { return s.finished }

// Cycles is the last sampled cycle (the run length once finished).
func (s *Sampler) Cycles() int { return s.prevCycle }

// FootprintBytes is the sampler's steady-state memory footprint, computed
// from the actual capacities of every slice it allocated. It depends only
// on the link count and the ring configuration — never on how many cycles
// were simulated — and is deterministic, which is what lets CI assert a
// byte ceiling on the q=31 telemetry smoke.
func (s *Sampler) FootprintBytes() int {
	const (
		lwSize = int(unsafe.Sizeof(LinkWindow{}))
		rwSize = int(unsafe.Sizeof(RunWindow{}))
		lcSize = int(unsafe.Sizeof(netsim.LinkCounters{}))
	)
	n := int(unsafe.Sizeof(*s))
	n += cap(s.keys) * int(unsafe.Sizeof([2]int{}))
	n += cap(s.prev) * lcSize
	n += cap(s.delta) * lwSize
	for i := range s.levels {
		lv := &s.levels[i]
		n += int(unsafe.Sizeof(level{}))
		n += cap(lv.run) * rwSize
		n += cap(lv.data) * lwSize
		n += cap(lv.openLinks) * lwSize
	}
	return n
}
