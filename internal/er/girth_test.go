package er

import "testing"

// TestGirthThree verifies ER_q contains triangles for q ≥ 3 but no C4
// (the unique-2-path property forbids quadrilaterals), so its girth is
// exactly 3 — the structure behind the clustering of Figure 1.
func TestGirthThree(t *testing.T) {
	for _, q := range []int{3, 4, 5, 7, 8, 9} {
		pg := build(t, q)
		if g := pg.G.Girth(); g != 3 {
			t.Errorf("q=%d: girth %d, want 3", q, g)
		}
	}
	// q=2 (the Fano-plane polarity graph): check whatever the construction
	// yields is C4-free at minimum.
	pg := build(t, 2)
	if girth := pg.G.Girth(); girth == 4 {
		t.Errorf("q=2: girth 4 contradicts unique 2-paths")
	}
}
