// Package er builds the Erdős–Rényi polarity graph ER_q — the PolarFly
// topology — from its projective-geometry construction (§6.1 of the paper),
// classifies vertices into quadrics W(q), quadric-adjacent V1(q) and the
// rest V2(q) (Table 1), and computes the modular PolarFly layout of
// Algorithm 2 with its structural Properties 1–3, which underpin the
// low-depth Allreduce trees of §7.1.
package er

import (
	"fmt"

	"polarfly/internal/ff"
	"polarfly/internal/graph"
)

// Vector is a 3-dimensional vector over F_q with coordinates stored as
// field-element indices. ER_q vertices are the left-normalised vectors:
// the leftmost non-zero coordinate is 1.
type Vector [3]int

// VertexType partitions ER_q vertices per §6.1.
type VertexType int

const (
	// Quadric vertices are self-orthogonal (W(q) in the paper).
	Quadric VertexType = iota
	// V1 vertices are adjacent to at least one quadric.
	V1
	// V2 vertices are adjacent to no quadric.
	V2
)

func (t VertexType) String() string {
	switch t {
	case Quadric:
		return "W"
	case V1:
		return "V1"
	case V2:
		return "V2"
	}
	return fmt.Sprintf("VertexType(%d)", int(t))
}

// Graph is the Erdős–Rényi polarity graph ER_q together with the algebraic
// data of its projective construction.
type Graph struct {
	// Q is the prime power order of the underlying field.
	Q int
	// F is the field F_q used for dot products.
	F ff.Field
	// G is the topology: N = q²+q+1 vertices, edges between orthogonal
	// vector pairs. Self-loops on quadrics are omitted, as in PolarFly.
	G *graph.Graph
	// Vecs maps vertex index to its left-normalised vector.
	Vecs []Vector

	index map[Vector]int
	types []VertexType
	// quadrics is the sorted list of quadric vertices (|W(q)| = q+1).
	quadrics []int
}

// New constructs ER_q. q must be a prime power.
func New(q int) (*Graph, error) {
	f, err := ff.New(q)
	if err != nil {
		return nil, fmt.Errorf("er: %w", err)
	}
	n := q*q + q + 1
	pg := &Graph{
		Q:     q,
		F:     f,
		G:     graph.New(n),
		Vecs:  make([]Vector, 0, n),
		index: make(map[Vector]int, n),
	}

	// Enumerate left-normalised vectors: [1,y,z], then [0,1,z], then
	// [0,0,1]. This fixed order makes vertex indices deterministic.
	add := func(v Vector) {
		pg.index[v] = len(pg.Vecs)
		pg.Vecs = append(pg.Vecs, v)
	}
	for y := 0; y < q; y++ {
		for z := 0; z < q; z++ {
			add(Vector{1, y, z})
		}
	}
	for z := 0; z < q; z++ {
		add(Vector{0, 1, z})
	}
	add(Vector{0, 0, 1})

	// Edges: (u,v) iff u·v = 0 in F_q. Quadrics (u·u = 0) get no self-loop.
	for i := 0; i < n; i++ {
		if pg.Dot(pg.Vecs[i], pg.Vecs[i]) == 0 {
			pg.quadrics = append(pg.quadrics, i)
		}
		for j := i + 1; j < n; j++ {
			if pg.Dot(pg.Vecs[i], pg.Vecs[j]) == 0 {
				pg.G.AddEdge(i, j)
			}
		}
	}

	// Classify vertices.
	pg.types = make([]VertexType, n)
	isQuadric := make([]bool, n)
	for _, w := range pg.quadrics {
		pg.types[w] = Quadric
		isQuadric[w] = true
	}
	for v := 0; v < n; v++ {
		if isQuadric[v] {
			continue
		}
		pg.types[v] = V2
		for _, u := range pg.G.Neighbors(v) {
			if isQuadric[u] {
				pg.types[v] = V1
				break
			}
		}
	}
	return pg, nil
}

// N returns the number of vertices, q²+q+1.
func (pg *Graph) N() int { return pg.G.N() }

// Dot returns the F_q dot product u·v.
func (pg *Graph) Dot(u, v Vector) int {
	f := pg.F
	s := f.Mul(u[0], v[0])
	s = f.Add(s, f.Mul(u[1], v[1]))
	return f.Add(s, f.Mul(u[2], v[2]))
}

// IndexOf returns the vertex index of a left-normalised vector, or -1 if v
// is not a vertex of ER_q.
func (pg *Graph) IndexOf(v Vector) int {
	if i, ok := pg.index[v]; ok {
		return i
	}
	return -1
}

// Normalize returns the left-normalised representative of a non-zero
// vector: the scalar multiple whose leftmost non-zero coordinate is 1.
func (pg *Graph) Normalize(v Vector) Vector {
	for i := 0; i < 3; i++ {
		if v[i] != 0 {
			inv := pg.F.Inv(v[i])
			return Vector{pg.F.Mul(v[0], inv), pg.F.Mul(v[1], inv), pg.F.Mul(v[2], inv)}
		}
	}
	panic("er: cannot normalise the zero vector")
}

// Type returns the W/V1/V2 classification of vertex v.
func (pg *Graph) Type(v int) VertexType { return pg.types[v] }

// Quadrics returns the sorted quadric vertices; |W(q)| = q+1.
func (pg *Graph) Quadrics() []int {
	out := make([]int, len(pg.quadrics))
	copy(out, pg.quadrics)
	return out
}

// CountByType returns the number of vertices of each type, in the order
// (W, V1, V2). Table 1 predicts (q+1, q(q+1)/2, q(q−1)/2) for odd q.
func (pg *Graph) CountByType() (w, v1, v2 int) {
	for _, t := range pg.types {
		switch t {
		case Quadric:
			w++
		case V1:
			v1++
		case V2:
			v2++
		}
	}
	return
}

// NeighborTypeCounts returns how many neighbors of v fall in each type, in
// the order (W, V1, V2). Table 1 predicts, for odd q:
//
//	v ∈ W:  (0, q, 0)
//	v ∈ V1: (2, (q−1)/2, (q−1)/2)
//	v ∈ V2: (0, (q+1)/2, (q+1)/2)
func (pg *Graph) NeighborTypeCounts(v int) (w, v1, v2 int) {
	for _, u := range pg.G.Neighbors(v) {
		switch pg.types[u] {
		case Quadric:
			w++
		case V1:
			v1++
		case V2:
			v2++
		}
	}
	return
}
