package er

import "testing"

func buildLayout(t *testing.T, q int) *Layout {
	t.Helper()
	pg := build(t, q)
	l, err := NewLayout(pg, -1)
	if err != nil {
		t.Fatalf("NewLayout(q=%d): %v", q, err)
	}
	return l
}

func TestLayoutRejects(t *testing.T) {
	pg := build(t, 4)
	if _, err := NewLayout(pg, -1); err == nil {
		t.Error("layout for even q should fail")
	}
	pg3 := build(t, 3)
	nonQuadric := -1
	for v := 0; v < pg3.N(); v++ {
		if pg3.Type(v) != Quadric {
			nonQuadric = v
			break
		}
	}
	if _, err := NewLayout(pg3, nonQuadric); err == nil {
		t.Error("non-quadric starter should fail")
	}
}

func TestLayoutPartition(t *testing.T) {
	// Algorithm 2 adds every vertex to exactly one cluster.
	for _, q := range oddQs {
		l := buildLayout(t, q)
		pg := l.PG
		if l.NumClusters() != q {
			t.Errorf("q=%d: %d clusters, want %d", q, l.NumClusters(), q)
		}
		seen := make(map[int]int)
		for ci, cluster := range l.Clusters {
			// Property 1(1): every non-quadric cluster has q vertices.
			if len(cluster) != q {
				t.Errorf("q=%d: |C_%d|=%d, want %d", q, ci, len(cluster), q)
			}
			for _, v := range cluster {
				if pg.Type(v) == Quadric {
					t.Errorf("q=%d: quadric %d inside C_%d", q, v, ci)
				}
				if prev, dup := seen[v]; dup {
					t.Errorf("q=%d: vertex %d in clusters %d and %d", q, v, prev, ci)
				}
				seen[v] = ci
				if l.ClusterOf[v] != ci {
					t.Errorf("q=%d: ClusterOf[%d]=%d, want %d", q, v, l.ClusterOf[v], ci)
				}
			}
		}
		// W cluster plus clusters cover all vertices.
		if len(seen)+len(pg.Quadrics()) != pg.N() {
			t.Errorf("q=%d: covered %d+%d vertices of %d", q, len(seen), len(pg.Quadrics()), pg.N())
		}
		for _, w := range pg.Quadrics() {
			if l.ClusterOf[w] != -1 {
				t.Errorf("q=%d: quadric %d has ClusterOf=%d", q, w, l.ClusterOf[w])
			}
		}
	}
}

func TestLayoutCentersAdjacentToAll(t *testing.T) {
	// Property 1(3): the center is adjacent to all other cluster vertices.
	for _, q := range oddQs {
		l := buildLayout(t, q)
		for ci, cluster := range l.Clusters {
			center := l.Centers[ci]
			for _, v := range cluster {
				if v != center && !l.PG.G.HasEdge(center, v) {
					t.Errorf("q=%d: center %d of C_%d not adjacent to %d", q, center, ci, v)
				}
			}
		}
	}
}

func TestProperty2QuadricClusterConnectivity(t *testing.T) {
	for _, q := range []int{3, 5, 7, 9, 11, 13} {
		l := buildLayout(t, q)
		pg := l.PG
		for ci, cluster := range l.Clusters {
			// Property 2(1): q+1 edges between W and C_i.
			if got := l.EdgesToQuadricCluster(ci); got != q+1 {
				t.Errorf("q=%d: |E(W,C_%d)|=%d, want %d", q, ci, got, q+1)
			}
			// Property 2(2): every quadric adjacent to exactly one vertex
			// of C_i.
			for _, w := range pg.Quadrics() {
				adj := 0
				for _, v := range cluster {
					if pg.G.HasEdge(w, v) {
						adj++
					}
				}
				if adj != 1 {
					t.Errorf("q=%d: quadric %d adjacent to %d vertices of C_%d, want 1", q, w, adj, ci)
				}
			}
			// Property 2(3): every V1 vertex in C_i has exactly 2 quadric
			// neighbors.
			for _, v := range cluster {
				if pg.Type(v) != V1 {
					continue
				}
				w, _, _ := pg.NeighborTypeCounts(v)
				if w != 2 {
					t.Errorf("q=%d: V1 vertex %d has %d quadric neighbors", q, v, w)
				}
			}
		}
	}
}

func TestProperty3InterClusterConnectivity(t *testing.T) {
	for _, q := range []int{3, 5, 7, 9, 11} {
		l := buildLayout(t, q)
		pg := l.PG
		for i := 0; i < l.NumClusters(); i++ {
			for j := i + 1; j < l.NumClusters(); j++ {
				// Property 3(1): exactly q−2 edges between C_i and C_j.
				if got := l.EdgesBetweenClusters(i, j); got != q-2 {
					t.Errorf("q=%d: |E(C_%d,C_%d)|=%d, want %d", q, i, j, got, q-2)
				}
				// Property 3(2): center v_j and exactly one non-center
				// vertex of C_j have no neighbor in C_i.
				nonAdjacent := 0
				centerAdjacent := false
				for _, v := range l.Clusters[j] {
					touchesI := false
					for _, u := range l.Clusters[i] {
						if pg.G.HasEdge(u, v) {
							touchesI = true
							break
						}
					}
					if !touchesI {
						nonAdjacent++
					} else if v == l.Centers[j] {
						centerAdjacent = true
					}
				}
				if centerAdjacent {
					t.Errorf("q=%d: center of C_%d adjacent to C_%d", q, j, i)
				}
				if nonAdjacent != 2 { // center + one non-center vertex
					t.Errorf("q=%d: %d vertices of C_%d not adjacent to C_%d, want 2", q, nonAdjacent, j, i)
				}
			}
		}
	}
}

func TestCorollary73QuadricCenterBijection(t *testing.T) {
	// Each non-starter quadric is adjacent to exactly one unique center.
	for _, q := range oddQs {
		l := buildLayout(t, q)
		seen := make(map[int]bool)
		for ci, w := range l.QuadricOfCenter {
			if w == l.Starter {
				t.Errorf("q=%d: starter recorded as QuadricOfCenter[%d]", q, ci)
			}
			if seen[w] {
				t.Errorf("q=%d: quadric %d mapped to two centers", q, w)
			}
			seen[w] = true
			if !l.PG.G.HasEdge(w, l.Centers[ci]) {
				t.Errorf("q=%d: w_%d=%d not adjacent to its center %d", q, ci, w, l.Centers[ci])
			}
			if l.CenterOfQuadric[w] != ci {
				t.Errorf("q=%d: CenterOfQuadric[%d]=%d, want %d", q, w, l.CenterOfQuadric[w], ci)
			}
		}
		if len(seen) != q {
			t.Errorf("q=%d: %d non-starter quadrics mapped, want %d", q, len(seen), q)
		}
	}
}

func TestLemma72CentersShareOnlyStarter(t *testing.T) {
	// The quadric neighbors of two distinct centers are {w, w_i} and
	// {w, w_j} with w_i ≠ w_j.
	for _, q := range []int{3, 5, 7, 9, 11, 13} {
		l := buildLayout(t, q)
		pg := l.PG
		quadricNeighbors := func(v int) []int {
			var out []int
			for _, u := range pg.G.Neighbors(v) {
				if pg.Type(u) == Quadric {
					out = append(out, u)
				}
			}
			return out
		}
		for i := 0; i < len(l.Centers); i++ {
			qi := quadricNeighbors(l.Centers[i])
			if len(qi) != 2 {
				t.Fatalf("q=%d: center %d has %d quadric neighbors", q, l.Centers[i], len(qi))
			}
			hasStarter := qi[0] == l.Starter || qi[1] == l.Starter
			if !hasStarter {
				t.Errorf("q=%d: center %d not adjacent to starter", q, l.Centers[i])
			}
		}
	}
}

func TestLayoutDeterministicWithDefaultStarter(t *testing.T) {
	a := buildLayout(t, 7)
	b := buildLayout(t, 7)
	if a.Starter != b.Starter {
		t.Fatal("default starter not deterministic")
	}
	for i := range a.Centers {
		if a.Centers[i] != b.Centers[i] {
			t.Fatal("centers not deterministic")
		}
	}
}

func TestLayoutWithExplicitStarter(t *testing.T) {
	pg := build(t, 5)
	for _, w := range pg.Quadrics() {
		l, err := NewLayout(pg, w)
		if err != nil {
			t.Fatalf("starter %d: %v", w, err)
		}
		if l.Starter != w {
			t.Fatalf("starter %d not honored", w)
		}
		if l.NumClusters() != 5 {
			t.Fatalf("starter %d: %d clusters", w, l.NumClusters())
		}
	}
}
