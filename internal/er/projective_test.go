package er

import "testing"

// polarLine returns the point set of the line polar to vertex u: the
// left-normalised vectors orthogonal to u — in graph terms u's neighbors,
// plus u itself when u is a quadric (self-orthogonal).
func polarLine(pg *Graph, u int) map[int]bool {
	line := make(map[int]bool)
	for _, v := range pg.G.Neighbors(u) {
		line[v] = true
	}
	if pg.Type(u) == Quadric {
		line[u] = true
	}
	return line
}

// TestProjectivePlaneAxioms verifies that the polarity structure underlying
// ER_q really is a projective plane PG(2,q): every line has q+1 points,
// every two distinct lines meet in exactly one point, and every two
// distinct points lie on exactly one common line.
func TestProjectivePlaneAxioms(t *testing.T) {
	for _, q := range []int{2, 3, 4, 5, 7} {
		pg := build(t, q)
		n := pg.N()
		lines := make([]map[int]bool, n)
		for u := 0; u < n; u++ {
			lines[u] = polarLine(pg, u)
			if len(lines[u]) != q+1 {
				t.Fatalf("q=%d: line %d has %d points, want %d", q, u, len(lines[u]), q+1)
			}
		}
		// Two distinct lines meet in exactly one point.
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				common := 0
				for p := range lines[u] {
					if lines[v][p] {
						common++
					}
				}
				if common != 1 {
					t.Fatalf("q=%d: lines %d,%d meet in %d points", q, u, v, common)
				}
			}
		}
		// Dual axiom: two distinct points lie on exactly one line. By the
		// polarity, point p lies on line u iff u is adjacent to p (or
		// u = p for quadrics); count lines through each point pair.
		onLine := func(point, line int) bool { return lines[line][point] }
		for p1 := 0; p1 < n; p1++ {
			for p2 := p1 + 1; p2 < n; p2++ {
				through := 0
				for u := 0; u < n; u++ {
					if onLine(p1, u) && onLine(p2, u) {
						through++
					}
				}
				if through != 1 {
					t.Fatalf("q=%d: points %d,%d lie on %d common lines", q, p1, p2, through)
				}
			}
		}
	}
}

// TestEvenQQuadricNeighborTrichotomy pins the full even-q classification
// (the reason Table 1 is odd-q only): the quadrics lie on one line whose
// pole — the nucleus — is adjacent to all q+1 of them; every other vertex
// is adjacent to exactly ONE quadric (its polar line meets the quadric
// line in one point); and quadrics have no quadric neighbors.
func TestEvenQQuadricNeighborTrichotomy(t *testing.T) {
	for _, q := range []int{2, 4, 8, 16} {
		pg := build(t, q)
		nucleusCount := 0
		for v := 0; v < pg.N(); v++ {
			w, _, _ := pg.NeighborTypeCounts(v)
			switch {
			case pg.Type(v) == Quadric:
				if w != 0 {
					t.Errorf("q=%d: quadric %d has %d quadric neighbors", q, v, w)
				}
			case w == q+1:
				nucleusCount++
			case w == 1:
				// the generic case
			default:
				t.Errorf("q=%d: vertex %d has %d quadric neighbors (want 1 or %d)", q, v, w, q+1)
			}
		}
		if nucleusCount != 1 {
			t.Errorf("q=%d: %d nuclei", q, nucleusCount)
		}
	}
}

// TestEvenQNucleusStructure documents the even-characteristic anomaly that
// makes the paper's odd-q layout inapplicable: in characteristic 2 the
// quadrics are exactly the points of one line (x+y+z = 0 up to the
// Frobenius), and a single non-quadric "nucleus" vertex is adjacent to all
// q+1 of them.
func TestEvenQNucleusStructure(t *testing.T) {
	for _, q := range []int{2, 4, 8, 16} {
		pg := build(t, q)
		quadrics := pg.Quadrics()
		if len(quadrics) != q+1 {
			t.Fatalf("q=%d: %d quadrics", q, len(quadrics))
		}
		// Count vertices adjacent to every quadric.
		nucleus := -1
		for v := 0; v < pg.N(); v++ {
			all := true
			for _, w := range quadrics {
				if v == w || !pg.G.HasEdge(v, w) {
					all = false
					break
				}
			}
			if all {
				if nucleus != -1 {
					t.Fatalf("q=%d: multiple nuclei %d, %d", q, nucleus, v)
				}
				nucleus = v
			}
		}
		if nucleus == -1 {
			t.Fatalf("q=%d: no nucleus found", q)
		}
		if pg.Type(nucleus) == Quadric {
			t.Fatalf("q=%d: nucleus %d is a quadric", q, nucleus)
		}
		// For even q, V2 is empty: every non-quadric OTHER than... in fact
		// every vertex adjacent to a quadric is V1; check the V2 count is
		// q²−... measure and assert it differs from the odd-q Table 1.
		_, v1, v2 := pg.CountByType()
		if v1+v2 != q*q {
			t.Fatalf("q=%d: non-quadrics %d", q, v1+v2)
		}
		if v2 == q*(q-1)/2 && q > 2 {
			t.Errorf("q=%d: V2 count matches the odd-q formula — Table 1 should not apply", q)
		}
	}
}
