package er

import "testing"

// TestEdgeConnectivityAndTreePacking brackets the paper's tree-packing
// result with classical graph theory: ER_q has edge connectivity λ = q
// (its minimum degree, attained at quadrics), so Nash-Williams–Tutte
// guarantees ⌊q/2⌋ edge-disjoint spanning trees, while the edge count
// caps packing at ⌊m/(n−1)⌋ = ⌊(q+1)/2⌋ (Lemma 7.18). The Singer
// construction (§7.2) achieves the upper bound — strictly beating the
// generic guarantee for odd q.
func TestEdgeConnectivityAndTreePacking(t *testing.T) {
	qs := []int{2, 3, 4, 5, 7}
	if testing.Short() {
		qs = []int{2, 3}
	}
	for _, q := range qs {
		pg := build(t, q)
		lambda := pg.G.EdgeConnectivity()
		if lambda != q {
			t.Errorf("q=%d: λ(ER_q) = %d, want %d", q, lambda, q)
		}
		lower, upper := pg.G.TreePackingBounds()
		if lower != q/2 {
			t.Errorf("q=%d: Nash-Williams lower bound %d, want %d", q, lower, q/2)
		}
		if upper != (q+1)/2 {
			t.Errorf("q=%d: edge-count upper bound %d, want %d (Lemma 7.18)", q, upper, (q+1)/2)
		}
	}
}
