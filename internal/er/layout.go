package er

import (
	"fmt"
	"sort"
)

// Layout is the modular PolarFly layout of Algorithm 2: the quadric cluster
// W plus q non-quadric clusters C_0..C_{q-1}, each anchored at a center
// vertex adjacent to the starter quadric. Defined for odd prime powers q,
// matching the scope of §6.1.1 and §7.1 of the paper.
type Layout struct {
	PG *Graph
	// Starter is the starter quadric w chosen in line 2 of Algorithm 2.
	Starter int
	// Centers[i] is the center v_i of cluster C_i; the centers are exactly
	// the neighbors of Starter, so len(Centers) == q.
	Centers []int
	// Clusters[i] lists the vertices of C_i in ascending order (center
	// included); every non-quadric cluster has exactly q vertices.
	Clusters [][]int
	// ClusterOf maps a vertex to its cluster index, with -1 for quadrics
	// (the W cluster).
	ClusterOf []int
	// CenterOf maps cluster index to its center (same as Centers, kept for
	// readability at call sites).
	CenterOf []int
	// QuadricOfCenter maps cluster index i to w_i, the unique non-starter
	// quadric adjacent to center v_i (Corollary 7.3).
	QuadricOfCenter []int
	// CenterOfQuadric inverts QuadricOfCenter: maps a non-starter quadric
	// vertex to the index of the unique cluster whose center it neighbors;
	// -1 for the starter quadric and all non-quadrics.
	CenterOfQuadric []int
}

// NewLayout computes the PolarFly layout with the given starter quadric. If
// starter is negative, the smallest-index quadric is used. NewLayout
// returns an error for even q (the paper's layout covers odd prime powers)
// or if starter is not a quadric.
func NewLayout(pg *Graph, starter int) (*Layout, error) {
	if pg.Q%2 == 0 {
		return nil, fmt.Errorf("er: layout requires odd q, got %d", pg.Q)
	}
	quadrics := pg.Quadrics()
	if starter < 0 {
		starter = quadrics[0]
	}
	if pg.Type(starter) != Quadric {
		return nil, fmt.Errorf("er: starter %d is not a quadric", starter)
	}

	n := pg.N()
	l := &Layout{
		PG:              pg,
		Starter:         starter,
		ClusterOf:       make([]int, n),
		CenterOfQuadric: make([]int, n),
	}
	for i := range l.ClusterOf {
		l.ClusterOf[i] = -1
		l.CenterOfQuadric[i] = -1
	}

	// Line 3-5 of Algorithm 2: one cluster per neighbor of the starter.
	centers := pg.G.Neighbors(starter) // ascending, deterministic
	for ci, center := range centers {
		cluster := []int{center}
		l.ClusterOf[center] = ci
		for _, u := range pg.G.Neighbors(center) {
			if pg.Type(u) != Quadric {
				if l.ClusterOf[u] != -1 {
					return nil, fmt.Errorf("er: vertex %d assigned to clusters %d and %d", u, l.ClusterOf[u], ci)
				}
				l.ClusterOf[u] = ci
				cluster = append(cluster, u)
			}
		}
		sort.Ints(cluster)
		l.Clusters = append(l.Clusters, cluster)
		l.Centers = append(l.Centers, center)
	}
	l.CenterOf = l.Centers

	// Every non-quadric must be covered (Lakhotia et al. [37]; tested in
	// this package).
	for v := 0; v < n; v++ {
		if pg.Type(v) != Quadric && l.ClusterOf[v] == -1 {
			return nil, fmt.Errorf("er: vertex %d not covered by any cluster", v)
		}
	}

	// Corollary 7.3: each non-starter quadric is adjacent to exactly one
	// center.
	l.QuadricOfCenter = make([]int, len(centers))
	for i := range l.QuadricOfCenter {
		l.QuadricOfCenter[i] = -1
	}
	for _, w := range quadrics {
		if w == starter {
			continue
		}
		for _, u := range pg.G.Neighbors(w) {
			if ci := indexOf(centers, u); ci >= 0 {
				if l.QuadricOfCenter[ci] != -1 || l.CenterOfQuadric[w] != -1 {
					return nil, fmt.Errorf("er: quadric %d adjacent to multiple centers", w)
				}
				l.QuadricOfCenter[ci] = w
				l.CenterOfQuadric[w] = ci
			}
		}
	}
	for ci, w := range l.QuadricOfCenter {
		if w == -1 {
			return nil, fmt.Errorf("er: center %d has no non-starter quadric neighbor", l.Centers[ci])
		}
	}
	return l, nil
}

func indexOf(s []int, v int) int {
	for i, x := range s {
		if x == v {
			return i
		}
	}
	return -1
}

// NumClusters returns the number of non-quadric clusters, q.
func (l *Layout) NumClusters() int { return len(l.Clusters) }

// EdgesBetweenClusters returns the number of ER_q edges with one endpoint
// in cluster i and the other in cluster j (i ≠ j). Property 3 predicts
// exactly q−2 for distinct non-quadric clusters.
func (l *Layout) EdgesBetweenClusters(i, j int) int {
	count := 0
	for _, u := range l.Clusters[i] {
		for _, v := range l.Clusters[j] {
			if l.PG.G.HasEdge(u, v) {
				count++
			}
		}
	}
	return count
}

// EdgesToQuadricCluster returns the number of edges between cluster i and
// the quadric cluster W. Property 2 predicts exactly q+1.
func (l *Layout) EdgesToQuadricCluster(i int) int {
	count := 0
	for _, u := range l.Clusters[i] {
		for _, w := range l.PG.Quadrics() {
			if l.PG.G.HasEdge(u, w) {
				count++
			}
		}
	}
	return count
}
