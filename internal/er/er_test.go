package er

import (
	"testing"

	"polarfly/internal/numtheory"
)

// oddQs are the odd prime powers exercised in structural tests; evenQs the
// even ones (the graph itself exists for all prime powers, the layout only
// for odd q).
var (
	oddQs  = []int{3, 5, 7, 9, 11, 13, 17, 19, 23, 25, 27}
	evenQs = []int{2, 4, 8, 16}
)

func build(t *testing.T, q int) *Graph {
	t.Helper()
	pg, err := New(q)
	if err != nil {
		t.Fatalf("New(%d): %v", q, err)
	}
	return pg
}

func TestNewRejectsNonPrimePower(t *testing.T) {
	for _, q := range []int{1, 6, 10, 12} {
		if _, err := New(q); err == nil {
			t.Errorf("New(%d) should fail", q)
		}
	}
}

func TestOrderAndEdgeCount(t *testing.T) {
	for _, q := range append(append([]int{}, oddQs...), evenQs...) {
		pg := build(t, q)
		n := q*q + q + 1
		if pg.N() != n {
			t.Errorf("q=%d: N=%d, want %d", q, pg.N(), n)
		}
		// Cor. 7.1's edge count: q+1 quadrics of degree q, q² non-quadrics
		// of degree q+1 → q(q+1)²/2 edges.
		if want := q * (q + 1) * (q + 1) / 2; pg.G.M() != want {
			t.Errorf("q=%d: M=%d, want %d", q, pg.G.M(), want)
		}
	}
}

func TestDegrees(t *testing.T) {
	for _, q := range append(append([]int{}, oddQs...), evenQs...) {
		pg := build(t, q)
		for v := 0; v < pg.N(); v++ {
			want := q + 1
			if pg.Type(v) == Quadric {
				want = q // self-loop dropped
			}
			if d := pg.G.Degree(v); d != want {
				t.Errorf("q=%d: deg(%d)=%d, want %d (type %v)", q, v, d, want, pg.Type(v))
			}
		}
	}
}

func TestDiameter2AndUnique2Paths(t *testing.T) {
	// Theorem 6.1 for a representative subset (O(N²·q) work per graph).
	for _, q := range []int{2, 3, 4, 5, 7, 8, 9, 11} {
		pg := build(t, q)
		if d := pg.G.Diameter(); d != 2 {
			t.Errorf("q=%d: diameter=%d, want 2", q, d)
		}
		if !pg.G.HasUniqueTwoPaths() {
			t.Errorf("q=%d: found a vertex pair with two distinct 2-paths", q)
		}
	}
}

func TestTable1GlobalCounts(t *testing.T) {
	for _, q := range oddQs {
		pg := build(t, q)
		w, v1, v2 := pg.CountByType()
		if w != q+1 {
			t.Errorf("q=%d: |W|=%d, want %d", q, w, q+1)
		}
		if want := q * (q + 1) / 2; v1 != want {
			t.Errorf("q=%d: |V1|=%d, want %d", q, v1, want)
		}
		if want := q * (q - 1) / 2; v2 != want {
			t.Errorf("q=%d: |V2|=%d, want %d", q, v2, want)
		}
	}
}

func TestTable1NeighborhoodCounts(t *testing.T) {
	for _, q := range oddQs {
		pg := build(t, q)
		for v := 0; v < pg.N(); v++ {
			w, v1, v2 := pg.NeighborTypeCounts(v)
			switch pg.Type(v) {
			case Quadric:
				if w != 0 || v1 != q || v2 != 0 {
					t.Errorf("q=%d v=%d∈W: neighbors (%d,%d,%d), want (0,%d,0)", q, v, w, v1, v2, q)
				}
			case V1:
				if w != 2 || v1 != (q-1)/2 || v2 != (q-1)/2 {
					t.Errorf("q=%d v=%d∈V1: neighbors (%d,%d,%d), want (2,%d,%d)", q, v, w, v1, v2, (q-1)/2, (q-1)/2)
				}
			case V2:
				if w != 0 || v1 != (q+1)/2 || v2 != (q+1)/2 {
					t.Errorf("q=%d v=%d∈V2: neighbors (%d,%d,%d), want (0,%d,%d)", q, v, w, v1, v2, (q+1)/2, (q+1)/2)
				}
			}
		}
	}
}

func TestNoEdgesBetweenQuadrics(t *testing.T) {
	// Property 1(2), odd q.
	for _, q := range oddQs {
		pg := build(t, q)
		qs := pg.Quadrics()
		if len(qs) != q+1 {
			t.Fatalf("q=%d: %d quadrics", q, len(qs))
		}
		for i := 0; i < len(qs); i++ {
			for j := i + 1; j < len(qs); j++ {
				if pg.G.HasEdge(qs[i], qs[j]) {
					t.Errorf("q=%d: quadrics %d,%d adjacent", q, qs[i], qs[j])
				}
			}
		}
	}
}

func TestOrthogonalityDefinesEdges(t *testing.T) {
	pg := build(t, 5)
	for i := 0; i < pg.N(); i++ {
		for j := i + 1; j < pg.N(); j++ {
			orth := pg.Dot(pg.Vecs[i], pg.Vecs[j]) == 0
			if orth != pg.G.HasEdge(i, j) {
				t.Fatalf("edge/orthogonality mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestQuadricsAreSelfOrthogonal(t *testing.T) {
	for _, q := range []int{3, 4, 5, 8, 9} {
		pg := build(t, q)
		for v := 0; v < pg.N(); v++ {
			selfOrth := pg.Dot(pg.Vecs[v], pg.Vecs[v]) == 0
			if selfOrth != (pg.Type(v) == Quadric) {
				t.Errorf("q=%d v=%d: self-orthogonal=%v but type=%v", q, v, selfOrth, pg.Type(v))
			}
		}
	}
}

func TestNormalizeAndIndexOf(t *testing.T) {
	pg := build(t, 7)
	f := pg.F
	// Any scalar multiple of a vertex vector must normalise back to it.
	for v := 0; v < pg.N(); v++ {
		vec := pg.Vecs[v]
		for c := 1; c < 7; c++ {
			scaled := Vector{f.Mul(c, vec[0]), f.Mul(c, vec[1]), f.Mul(c, vec[2])}
			if got := pg.Normalize(scaled); got != vec {
				t.Fatalf("Normalize(%v) = %v, want %v", scaled, got, vec)
			}
		}
		if pg.IndexOf(vec) != v {
			t.Fatalf("IndexOf(%v) = %d, want %d", vec, pg.IndexOf(vec), v)
		}
	}
	if pg.IndexOf(Vector{2, 0, 0}) != -1 {
		t.Error("non-normalised vector should not be found")
	}
}

func TestVertexTypeString(t *testing.T) {
	if Quadric.String() != "W" || V1.String() != "V1" || V2.String() != "V2" {
		t.Error("VertexType.String broken")
	}
	if VertexType(9).String() == "" {
		t.Error("unknown type should still render")
	}
}

func TestAllFeasibleRadixesConstruct(t *testing.T) {
	// Every prime power q in the paper's sweep range must construct; keep
	// the bound modest in short mode.
	hi := 49
	if testing.Short() {
		hi = 13
	}
	for _, q := range numtheory.PrimePowersUpTo(2, hi) {
		pg := build(t, q)
		if !pg.G.IsConnected() {
			t.Errorf("q=%d: ER_q disconnected", q)
		}
	}
}
