package er

import (
	"testing"
	"testing/quick"
)

// Property tests over the algebra of the projective construction.

func TestDotBilinearityQuick(t *testing.T) {
	pg := build(t, 9) // extension field to exercise non-prime arithmetic
	f := pg.F
	prop := func(a1, a2, a3, b1, b2, b3, c uint8) bool {
		u := Vector{int(a1) % 9, int(a2) % 9, int(a3) % 9}
		v := Vector{int(b1) % 9, int(b2) % 9, int(b3) % 9}
		s := int(c) % 9
		// Symmetry.
		if pg.Dot(u, v) != pg.Dot(v, u) {
			return false
		}
		// Homogeneity: (s·u)·v = s·(u·v).
		su := Vector{f.Mul(s, u[0]), f.Mul(s, u[1]), f.Mul(s, u[2])}
		return pg.Dot(su, v) == f.Mul(s, pg.Dot(u, v))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestNormalizeIdempotentQuick(t *testing.T) {
	pg := build(t, 7)
	prop := func(a1, a2, a3 uint8) bool {
		u := Vector{int(a1) % 7, int(a2) % 7, int(a3) % 7}
		if u == (Vector{0, 0, 0}) {
			return true // normalisation of zero is undefined
		}
		n := pg.Normalize(u)
		// Idempotent, and the result is a graph vertex.
		return pg.Normalize(n) == n && pg.IndexOf(n) >= 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestScalarMultiplesPreserveOrthogonalityQuick(t *testing.T) {
	// The projective quotient is well-defined: scaling either vector never
	// changes orthogonality. This is why ER_q vertices are equivalence
	// classes.
	pg := build(t, 5)
	f := pg.F
	prop := func(a1, a2, a3, b1, b2, b3, s1, s2 uint8) bool {
		u := Vector{int(a1) % 5, int(a2) % 5, int(a3) % 5}
		v := Vector{int(b1) % 5, int(b2) % 5, int(b3) % 5}
		c1, c2 := int(s1)%4+1, int(s2)%4+1 // non-zero scalars
		su := Vector{f.Mul(c1, u[0]), f.Mul(c1, u[1]), f.Mul(c1, u[2])}
		sv := Vector{f.Mul(c2, v[0]), f.Mul(c2, v[1]), f.Mul(c2, v[2])}
		return (pg.Dot(u, v) == 0) == (pg.Dot(su, sv) == 0)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}
