package er

import "testing"

// TestMooreBoundScalingEfficiency quantifies the §1.3 "scaling efficiency"
// claim: a diameter-2 network of max degree d can have at most d²+1 nodes
// (the Moore bound). PolarFly reaches N = q²+q+1 with degree d = q+1 —
// an efficiency of (q²+q+1)/((q+1)²+1) ≈ 1 − 1/q, above 0.85 for every
// feasible q ≥ 7 and approaching the bound asymptotically.
func TestMooreBoundScalingEfficiency(t *testing.T) {
	for _, q := range []int{3, 4, 5, 7, 9, 11, 13} {
		pg := build(t, q)
		d := pg.G.MaxDegree()
		if d != q+1 {
			t.Fatalf("q=%d: max degree %d", q, d)
		}
		moore := d*d + 1
		if pg.N() > moore {
			t.Fatalf("q=%d: N=%d exceeds the Moore bound %d — impossible", q, pg.N(), moore)
		}
		eff := float64(pg.N()) / float64(moore)
		if q >= 7 && eff < 0.85 {
			t.Errorf("q=%d: scaling efficiency %.3f below 0.85", q, eff)
		}
		// Monotone convergence toward 1.
		if q >= 5 {
			prevEff := float64(3*3+3+1) / float64(16+1) // q=3 reference
			if eff <= prevEff-1e-9 && q > 3 {
				t.Errorf("q=%d: efficiency %.3f below the q=3 point %.3f", q, eff, prevEff)
			}
		}
	}
}
