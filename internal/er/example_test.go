package er_test

import (
	"fmt"

	"polarfly/internal/er"
)

// ExampleNew builds the smallest PolarFly and reports its Table 1 class
// sizes.
func ExampleNew() {
	pg, err := er.New(3)
	if err != nil {
		panic(err)
	}
	w, v1, v2 := pg.CountByType()
	fmt.Println(pg.N(), pg.G.M(), w, v1, v2)
	// Output: 13 24 4 6 3
}

// ExampleNewLayout shows the Algorithm 2 cluster decomposition.
func ExampleNewLayout() {
	pg, _ := er.New(3)
	l, err := er.NewLayout(pg, -1)
	if err != nil {
		panic(err)
	}
	fmt.Println(l.NumClusters(), len(l.Clusters[0]))
	// Output: 3 3
}
