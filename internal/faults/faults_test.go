package faults

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func validPlan() *Plan {
	return &Plan{Faults: []Fault{
		{Kind: LinkDown, U: 3, V: 1, At: 100},
		{Kind: LinkTransient, U: 0, V: 5, At: 50, Until: 80},
		{Kind: LinkDegraded, U: 2, V: 4, At: 10, Until: 0, Bandwidth: 0.25},
		{Kind: EngineStall, Node: 7, At: 5, Until: 25},
		{Kind: RouterDown, Node: 6, At: 200},
		{Kind: LinkStorm, U: 8, V: 2, At: 30, Until: 40, Period: 50, Repeat: 3},
	}}
}

func TestValidateCanonicalisesEndpoints(t *testing.T) {
	p := validPlan()
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if p.Faults[0].U != 1 || p.Faults[0].V != 3 {
		t.Fatalf("endpoints not canonicalised: got %d-%d", p.Faults[0].U, p.Faults[0].V)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		f    Fault
		want string
	}{
		{"zero cycle", Fault{Kind: LinkDown, U: 0, V: 1, At: 0}, "activation cycle"},
		{"self loop", Fault{Kind: LinkDown, U: 2, V: 2, At: 1}, "self-loop"},
		{"negative endpoint", Fault{Kind: LinkDown, U: -1, V: 2, At: 1}, "negative link endpoint"},
		{"link-down with until", Fault{Kind: LinkDown, U: 0, V: 1, At: 1, Until: 9}, "permanent"},
		{"empty window", Fault{Kind: LinkTransient, U: 0, V: 1, At: 9, Until: 9}, "empty"},
		{"zero bandwidth", Fault{Kind: LinkDegraded, U: 0, V: 1, At: 1, Bandwidth: 0}, "bandwidth"},
		{"negative bandwidth", Fault{Kind: LinkDegraded, U: 0, V: 1, At: 1, Bandwidth: -2}, "bandwidth"},
		{"bandwidth on down", Fault{Kind: LinkDown, U: 0, V: 1, At: 1, Bandwidth: 1}, "only applies"},
		{"negative node", Fault{Kind: EngineStall, Node: -3, At: 1}, "negative node"},
		{"unknown kind", Fault{Kind: Kind(99), At: 1}, "unknown kind"},
		{"router-down with until", Fault{Kind: RouterDown, Node: 2, At: 1, Until: 9}, "permanent"},
		{"router-down negative node", Fault{Kind: RouterDown, Node: -1, At: 1}, "negative node"},
		{"storm empty window", Fault{Kind: LinkStorm, U: 0, V: 1, At: 9, Until: 9, Period: 5, Repeat: 2}, "empty"},
		{"storm no until", Fault{Kind: LinkStorm, U: 0, V: 1, At: 9, Period: 5, Repeat: 2}, "empty"},
		{"storm zero repeat", Fault{Kind: LinkStorm, U: 0, V: 1, At: 1, Until: 3, Period: 5}, "repeat"},
		{"storm period too short", Fault{Kind: LinkStorm, U: 0, V: 1, At: 1, Until: 9, Period: 8, Repeat: 2}, "period"},
		{"period on transient", Fault{Kind: LinkTransient, U: 0, V: 1, At: 1, Until: 3, Period: 5}, "only apply"},
		{"repeat on down", Fault{Kind: LinkDown, U: 0, V: 1, At: 1, Repeat: 2}, "only apply"},
	}
	for _, tc := range cases {
		p := &Plan{Faults: []Fault{tc.f}}
		err := p.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted %+v", tc.name, tc.f)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	p := validPlan()
	var buf bytes.Buffer
	if err := p.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if !strings.Contains(buf.String(), `"version": 1`) {
		t.Fatalf("missing schema version in %s", buf.String())
	}
	got, err := DecodePlan(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("DecodePlan: %v", err)
	}
	if !reflect.DeepEqual(got, p) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, p)
	}
}

func TestDecodeRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"garbage":       `{`,
		"wrong version": `{"version":2,"faults":[]}`,
		"bad kind":      `{"version":1,"faults":[{"kind":"meteor","at":1}]}`,
		"numeric kind":  `{"version":1,"faults":[{"kind":0,"at":1}]}`,
		"invalid fault": `{"version":1,"faults":[{"kind":"link-down","u":1,"v":1,"at":1}]}`,
	}
	for name, in := range cases {
		if _, err := DecodePlan(strings.NewReader(in)); err == nil {
			t.Errorf("%s: DecodePlan accepted %s", name, in)
		}
	}
}

func TestFailedLinks(t *testing.T) {
	p := &Plan{Faults: []Fault{
		{Kind: LinkDegraded, U: 0, V: 9, At: 1, Bandwidth: 0.5},
		{Kind: LinkDown, U: 5, V: 2, At: 10},
		{Kind: LinkTransient, U: 1, V: 4, At: 3, Until: 8},
		{Kind: LinkDown, U: 2, V: 5, At: 99}, // duplicate link
		{Kind: EngineStall, Node: 3, At: 2},
	}}
	got := p.FailedLinks()
	want := [][2]int{{1, 4}, {2, 5}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("FailedLinks = %v, want %v", got, want)
	}
}

func TestFailedLinksIncludesStorms(t *testing.T) {
	p := &Plan{Faults: []Fault{
		{Kind: LinkStorm, U: 7, V: 3, At: 10, Until: 20, Period: 30, Repeat: 2},
		{Kind: RouterDown, Node: 5, At: 100},
	}}
	got := p.FailedLinks()
	want := [][2]int{{3, 7}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("FailedLinks = %v, want %v", got, want)
	}
}

func TestFailedRouters(t *testing.T) {
	p := &Plan{Faults: []Fault{
		{Kind: RouterDown, Node: 9, At: 10},
		{Kind: EngineStall, Node: 4, At: 2, Until: 5},
		{Kind: RouterDown, Node: 1, At: 50},
		{Kind: RouterDown, Node: 9, At: 90}, // duplicate node
		{Kind: LinkDown, U: 0, V: 2, At: 3},
	}}
	got := p.FailedRouters()
	want := []int{1, 9}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("FailedRouters = %v, want %v", got, want)
	}
	if len((&Plan{}).FailedRouters()) != 0 {
		t.Fatal("empty plan has failed routers")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	links := [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}}
	a, err := Generate(links, 3, 100, 500, 7)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	// Same seed, shuffled + flipped candidate order: identical plan.
	shuffled := [][2]int{{6, 5}, {2, 1}, {4, 3}, {1, 0}, {5, 4}, {3, 2}}
	b, err := Generate(shuffled, 3, 100, 500, 7)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed diverged:\n a %+v\n b %+v", a, b)
	}
	c, err := Generate(links, 3, 100, 500, 8)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatalf("different seeds produced identical plans: %+v", a)
	}
	for _, f := range a.Faults {
		if f.Kind != LinkDown {
			t.Errorf("generated kind %v, want link-down", f.Kind)
		}
		if f.At < 100 || f.At > 500 {
			t.Errorf("generated cycle %d outside [100,500]", f.At)
		}
	}
	if len(a.FailedLinks()) != 3 {
		t.Fatalf("sampling with replacement: %v", a.Faults)
	}
}

func TestGenerateErrors(t *testing.T) {
	links := [][2]int{{0, 1}}
	if _, err := Generate(links, 2, 1, 9, 1); err == nil {
		t.Error("accepted count > candidates")
	}
	if _, err := Generate(links, 0, 1, 9, 1); err == nil {
		t.Error("accepted count 0")
	}
	if _, err := Generate(links, 1, 5, 4, 1); err == nil {
		t.Error("accepted inverted window")
	}
	if _, err := Generate(links, 1, 0, 4, 1); err == nil {
		t.Error("accepted minAt 0")
	}
	if _, err := Generate([][2]int{{2, 2}}, 1, 1, 9, 1); err == nil {
		t.Error("accepted self-loop candidate")
	}
}

func TestGenerateCorrelatedDeterministic(t *testing.T) {
	links := [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, {6, 7}, {7, 8}}
	a, err := GenerateCorrelated(links, 2, 3, 100, 500, 7)
	if err != nil {
		t.Fatalf("GenerateCorrelated: %v", err)
	}
	// Same seed, shuffled + flipped candidate order: identical plan.
	shuffled := [][2]int{{8, 7}, {2, 1}, {4, 3}, {1, 0}, {5, 4}, {3, 2}, {7, 6}, {6, 5}}
	b, err := GenerateCorrelated(shuffled, 2, 3, 100, 500, 7)
	if err != nil {
		t.Fatalf("GenerateCorrelated: %v", err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed diverged:\n a %+v\n b %+v", a, b)
	}
	if len(a.Faults) != 6 {
		t.Fatalf("got %d faults, want 6: %+v", len(a.Faults), a.Faults)
	}
	// Each group of 3 shares one activation cycle; links never repeat.
	for g := 0; g < 2; g++ {
		at := a.Faults[g*3].At
		if at < 100 || at > 500 {
			t.Errorf("group %d cycle %d outside [100,500]", g, at)
		}
		for i := 1; i < 3; i++ {
			if a.Faults[g*3+i].At != at {
				t.Errorf("group %d not atomic: cycles %d vs %d", g, a.Faults[g*3+i].At, at)
			}
		}
	}
	if len(a.FailedLinks()) != 6 {
		t.Fatalf("links drawn with replacement: %v", a.Faults)
	}
}

func TestGenerateCorrelatedErrors(t *testing.T) {
	links := [][2]int{{0, 1}, {1, 2}}
	if _, err := GenerateCorrelated(links, 1, 3, 1, 9, 1); err == nil {
		t.Error("accepted group size > candidates")
	}
	if _, err := GenerateCorrelated(links, 0, 1, 1, 9, 1); err == nil {
		t.Error("accepted 0 groups")
	}
	if _, err := GenerateCorrelated(links, 1, 0, 1, 9, 1); err == nil {
		t.Error("accepted group size 0")
	}
	if _, err := GenerateCorrelated(links, 1, 1, 5, 4, 1); err == nil {
		t.Error("accepted inverted window")
	}
	if _, err := GenerateCorrelated([][2]int{{2, 2}}, 1, 1, 1, 9, 1); err == nil {
		t.Error("accepted self-loop candidate")
	}
}

func TestKindString(t *testing.T) {
	want := map[Kind]string{
		LinkDown: "link-down", LinkTransient: "link-transient",
		LinkDegraded: "link-degraded", EngineStall: "engine-stall",
		RouterDown: "router-down", LinkStorm: "link-storm",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), k.String(), s)
		}
	}
	if Kind(42).String() == "" {
		t.Error("out-of-range Kind has empty String()")
	}
}
