package faults

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzPlanJSON checks that DecodePlan never panics on arbitrary input and
// that any plan it accepts survives a write/decode round trip unchanged.
func FuzzPlanJSON(f *testing.F) {
	var seed bytes.Buffer
	if err := validPlan().WriteJSON(&seed); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.String())
	f.Add(`{"version":1,"faults":[]}`)
	f.Add(`{"version":1,"faults":[{"kind":"link-down","u":0,"v":1,"at":1}]}`)
	f.Add(`{"version":1,"faults":[{"kind":"router-down","node":4,"at":100}]}`)
	f.Add(`{"version":1,"faults":[{"kind":"link-storm","u":2,"v":5,"at":10,"until":20,"period":25,"repeat":3}]}`)
	f.Add(`{"version":1,"faults":[{"kind":"link-down","u":0,"v":1,"at":50},{"kind":"link-down","u":1,"v":2,"at":50},{"kind":"link-down","u":2,"v":3,"at":50}]}`)
	f.Add(`{"version":1,"faults":[{"kind":"link-storm","u":0,"v":1,"at":10,"until":20,"period":5,"repeat":2}]}`)
	f.Add(`{"version":1,"faults":[{"kind":"router-down","node":4,"at":100,"until":200}]}`)
	f.Add(`{"version":2,"faults":[]}`)
	f.Add(`{`)
	f.Add(``)
	f.Fuzz(func(t *testing.T, in string) {
		p, err := DecodePlan(strings.NewReader(in))
		if err != nil {
			return // rejected cleanly
		}
		var buf bytes.Buffer
		if err := p.WriteJSON(&buf); err != nil {
			t.Fatalf("accepted plan failed to encode: %v\nplan: %+v", err, p)
		}
		first := buf.String()
		p2, err := DecodePlan(strings.NewReader(first))
		if err != nil {
			t.Fatalf("re-decode failed: %v\njson: %s", err, first)
		}
		var buf2 bytes.Buffer
		if err := p2.WriteJSON(&buf2); err != nil {
			t.Fatalf("second encode failed: %v", err)
		}
		if first != buf2.String() {
			t.Fatalf("round trip not stable:\n first %s\nsecond %s", first, buf2.String())
		}
	})
}
