// Package faults defines deterministic fault plans for the cycle-accurate
// simulator: which links fail (permanently, transiently, or in repeating
// storm bursts), which links run at degraded bandwidth, which routers
// fail outright (taking every incident link atomically), and which
// router reduction engines stall, each anchored to an exact simulated
// cycle. A plan is pure data — JSON
// (de)serializable and independent of any simulator state — so the same
// plan replayed against the same spec and seed reproduces the run
// bit-for-bit. Randomized plans come from an explicitly seeded stdlib
// PRNG, never the global source, matching the repository's determinism
// contract (the nondeterminism repolint analyzer enforces it).
package faults

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"sort"
)

// Kind classifies one fault.
type Kind int

const (
	// LinkDown permanently fails an undirected link at cycle At: both
	// directions stop delivering and every in-flight flit is dropped.
	LinkDown Kind = iota
	// LinkTransient fails the link during the window [At, Until): the
	// link heals afterwards, but any stream that lost flits in the window
	// is broken (the receiver discards out-of-sequence flits), so
	// detection and recovery proceed exactly as for LinkDown and the
	// link is quarantined from the recovered embedding.
	LinkTransient
	// LinkDegraded caps the link at Bandwidth flits per cycle (a token
	// bucket) during [At, Until); Until 0 means for the rest of the run.
	// No flits are lost, so no recovery triggers — throughput sags.
	LinkDegraded
	// EngineStall freezes router Node's reduction engine during
	// [At, Until): the node neither combines child flits nor computes
	// root results. Nothing is lost; the pipeline back-pressures.
	EngineStall
	// RouterDown permanently fails router Node at cycle At: every link
	// incident to the node fails atomically (a correlated fault domain),
	// in-flight flits on all of them drop, and the node's engine stops.
	// On a PolarFly every spanning tree touches every node, so a
	// router-down mid-run kills all trees unless the streams crossing the
	// node's links already completed.
	RouterDown
	// LinkStorm is a repeating transient: the link fails during
	// [At + i·Period, Until + i·Period) for i in [0, Repeat), healing
	// between windows. Each window that drops flits breaks the crossing
	// streams exactly as LinkTransient does, so a storm landing while a
	// recovery is still re-issuing forces a further (nested) recovery.
	LinkStorm
)

// kindNames is the JSON vocabulary; order must match the Kind constants
// and is append-only: committed plans decode forever.
var kindNames = [...]string{"link-down", "link-transient", "link-degraded", "engine-stall", "router-down", "link-storm"}

func (k Kind) String() string {
	if k >= 0 && int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// MarshalJSON renders the kind as its stable string name.
func (k Kind) MarshalJSON() ([]byte, error) {
	if k < 0 || int(k) >= len(kindNames) {
		return nil, fmt.Errorf("faults: unknown kind %d", int(k))
	}
	return json.Marshal(kindNames[k])
}

// UnmarshalJSON accepts the string names written by MarshalJSON.
func (k *Kind) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return fmt.Errorf("faults: kind must be a string: %w", err)
	}
	for i, name := range kindNames {
		if s == name {
			*k = Kind(i)
			return nil
		}
	}
	return fmt.Errorf("faults: unknown fault kind %q", s)
}

// Fault is one scheduled fault. Link faults identify the undirected link
// (U, V); EngineStall identifies the router Node.
type Fault struct {
	Kind Kind `json:"kind"`
	// U and V are the link endpoints for link faults (canonicalised so
	// U < V by Validate); unused for EngineStall.
	U int `json:"u,omitempty"`
	V int `json:"v,omitempty"`
	// Node is the stalled router for EngineStall.
	Node int `json:"node,omitempty"`
	// At is the activation cycle (≥ 1; the simulator starts at cycle 1).
	At int `json:"at"`
	// Until ends the window for LinkTransient / LinkDegraded /
	// EngineStall (exclusive); 0 means the fault lasts forever.
	// LinkDown ignores it.
	Until int `json:"until,omitempty"`
	// Bandwidth is the LinkDegraded cap in flits/cycle (0 < Bandwidth).
	Bandwidth float64 `json:"bandwidth,omitempty"`
	// Period is the LinkStorm window-to-window stride in cycles; it must
	// exceed the window length Until-At so the link heals between bursts.
	Period int `json:"period,omitempty"`
	// Repeat is the LinkStorm window count (≥ 1).
	Repeat int `json:"repeat,omitempty"`
}

func (f Fault) String() string {
	switch f.Kind {
	case EngineStall:
		return fmt.Sprintf("%v node %d @[%d,%d)", f.Kind, f.Node, f.At, f.Until)
	case RouterDown:
		return fmt.Sprintf("%v node %d @%d", f.Kind, f.Node, f.At)
	case LinkDegraded:
		return fmt.Sprintf("%v %d-%d to %.3g flits/cycle @[%d,%d)", f.Kind, f.U, f.V, f.Bandwidth, f.At, f.Until)
	case LinkTransient:
		return fmt.Sprintf("%v %d-%d @[%d,%d)", f.Kind, f.U, f.V, f.At, f.Until)
	case LinkStorm:
		return fmt.Sprintf("%v %d-%d @[%d,%d)×%d/%d", f.Kind, f.U, f.V, f.At, f.Until, f.Repeat, f.Period)
	default:
		return fmt.Sprintf("%v %d-%d @%d", f.Kind, f.U, f.V, f.At)
	}
}

// IsLink reports whether the fault targets a link (rather than a router).
func (f Fault) IsLink() bool { return f.Kind != EngineStall && f.Kind != RouterDown }

// Lossy reports whether the kind drops flits outright and can therefore
// trip timeout detection and trigger a recovery round. Degraded links
// and engine stalls slow traffic but never lose it.
func (k Kind) Lossy() bool {
	switch k {
	case LinkDown, LinkTransient, RouterDown, LinkStorm:
		return true
	case LinkDegraded, EngineStall:
		return false
	default:
		return false
	}
}

// Plan is an ordered list of faults. Order is activation order for
// same-cycle faults, so identical plans replay identically.
type Plan struct {
	Faults []Fault `json:"faults"`
}

// planFile is the versioned on-disk schema.
type planFile struct {
	Version int     `json:"version"`
	Faults  []Fault `json:"faults"`
}

// planVersion is the current JSON schema version.
const planVersion = 1

// Validate checks every fault and canonicalises link endpoints to U < V.
func (p *Plan) Validate() error {
	for i := range p.Faults {
		f := &p.Faults[i]
		if f.Kind < 0 || int(f.Kind) >= len(kindNames) {
			return fmt.Errorf("faults: fault %d: unknown kind %d", i, int(f.Kind))
		}
		if f.At < 1 {
			return fmt.Errorf("faults: fault %d: activation cycle %d, must be ≥ 1", i, f.At)
		}
		if f.IsLink() {
			if f.U < 0 || f.V < 0 {
				return fmt.Errorf("faults: fault %d: negative link endpoint (%d, %d)", i, f.U, f.V)
			}
			if f.U == f.V {
				return fmt.Errorf("faults: fault %d: self-loop link %d-%d", i, f.U, f.V)
			}
			if f.U > f.V {
				f.U, f.V = f.V, f.U
			}
		} else if f.Node < 0 {
			return fmt.Errorf("faults: fault %d: negative node %d", i, f.Node)
		}
		switch f.Kind {
		case LinkDown:
			if f.Until != 0 {
				return fmt.Errorf("faults: fault %d: link-down is permanent; until must be 0, got %d", i, f.Until)
			}
		case RouterDown:
			if f.Until != 0 {
				return fmt.Errorf("faults: fault %d: router-down is permanent; until must be 0, got %d", i, f.Until)
			}
		case LinkTransient, LinkDegraded, EngineStall:
			if f.Until != 0 && f.Until <= f.At {
				return fmt.Errorf("faults: fault %d: window [%d,%d) is empty", i, f.At, f.Until)
			}
		case LinkStorm:
			if f.Until <= f.At {
				return fmt.Errorf("faults: fault %d: link-storm window [%d,%d) is empty", i, f.At, f.Until)
			}
			if f.Repeat < 1 {
				return fmt.Errorf("faults: fault %d: link-storm repeat %d, must be ≥ 1", i, f.Repeat)
			}
			if f.Period <= f.Until-f.At {
				return fmt.Errorf("faults: fault %d: link-storm period %d must exceed the window length %d so the link heals between bursts", i, f.Period, f.Until-f.At)
			}
		}
		if f.Kind != LinkStorm && (f.Period != 0 || f.Repeat != 0) {
			return fmt.Errorf("faults: fault %d: period/repeat only apply to link-storm", i)
		}
		if f.Kind == LinkDegraded {
			if !(f.Bandwidth > 0) {
				return fmt.Errorf("faults: fault %d: degraded bandwidth %g, must be > 0", i, f.Bandwidth)
			}
			//lint:ignore floatcmp exact-zero sentinel: the JSON zero value means "field absent", not a tiny bandwidth
		} else if f.Bandwidth != 0 {
			return fmt.Errorf("faults: fault %d: bandwidth only applies to link-degraded", i)
		}
	}
	return nil
}

// FailedLinks returns the undirected links whose failure can kill trees
// (LinkDown, LinkTransient and LinkStorm; degraded links lose no flits),
// sorted and deduplicated — the input for core.Degrade's analytical
// prediction. RouterDown faults are not expanded here: the incident
// links depend on the topology, which a pure-data plan does not know.
// Use FailedRouters plus the topology's adjacency for those.
func (p *Plan) FailedLinks() [][2]int {
	seen := make(map[[2]int]bool)
	for _, f := range p.Faults {
		if f.Kind != LinkDown && f.Kind != LinkTransient && f.Kind != LinkStorm {
			continue
		}
		u, v := f.U, f.V
		if u > v {
			u, v = v, u
		}
		seen[[2]int{u, v}] = true
	}
	out := make([][2]int, 0, len(seen))
	for l := range seen {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// FailedRouters returns the RouterDown node set, sorted and deduplicated.
// The caller expands each node to its incident links with the topology's
// adjacency to feed core.Degrade.
func (p *Plan) FailedRouters() []int {
	seen := make(map[int]bool)
	for _, f := range p.Faults {
		if f.Kind == RouterDown {
			seen[f.Node] = true
		}
	}
	out := make([]int, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Ints(out)
	return out
}

// WriteJSON writes the plan in the versioned schema, validated first.
func (p *Plan) WriteJSON(w io.Writer) error {
	if err := p.Validate(); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(planFile{Version: planVersion, Faults: p.Faults})
}

// DecodePlan reads and validates a plan written by WriteJSON.
func DecodePlan(r io.Reader) (*Plan, error) {
	var pf planFile
	dec := json.NewDecoder(r)
	if err := dec.Decode(&pf); err != nil {
		return nil, fmt.Errorf("faults: decoding plan: %w", err)
	}
	if pf.Version != planVersion {
		return nil, fmt.Errorf("faults: plan version %d, want %d", pf.Version, planVersion)
	}
	p := &Plan{Faults: pf.Faults}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// Generate builds a random plan of `count` LinkDown faults drawn without
// replacement from the candidate links, each at a uniform cycle in
// [minAt, maxAt]. The candidates are canonicalised and sorted before
// sampling so the same seed yields the same plan regardless of input
// order. Randomness comes from an explicitly seeded stdlib source.
func Generate(candidates [][2]int, count, minAt, maxAt int, seed int64) (*Plan, error) {
	if count < 1 {
		return nil, fmt.Errorf("faults: generate count %d, must be ≥ 1", count)
	}
	if minAt < 1 || maxAt < minAt {
		return nil, fmt.Errorf("faults: generate cycle window [%d,%d] invalid", minAt, maxAt)
	}
	canon := make(map[[2]int]bool, len(candidates))
	for _, l := range candidates {
		u, v := l[0], l[1]
		if u == v || u < 0 || v < 0 {
			return nil, fmt.Errorf("faults: invalid candidate link %d-%d", u, v)
		}
		if u > v {
			u, v = v, u
		}
		canon[[2]int{u, v}] = true
	}
	links := make([][2]int, 0, len(canon))
	for l := range canon {
		links = append(links, l)
	}
	sort.Slice(links, func(i, j int) bool {
		if links[i][0] != links[j][0] {
			return links[i][0] < links[j][0]
		}
		return links[i][1] < links[j][1]
	})
	if count > len(links) {
		return nil, fmt.Errorf("faults: %d faults requested from %d candidate links", count, len(links))
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(len(links))[:count]
	sort.Ints(perm) // plan order follows link order, not draw order
	p := &Plan{}
	for _, idx := range perm {
		l := links[idx]
		p.Faults = append(p.Faults, Fault{
			Kind: LinkDown, U: l[0], V: l[1],
			At: minAt + rng.Intn(maxAt-minAt+1),
		})
	}
	return p, p.Validate()
}

// GenerateCorrelated builds a random plan of `groups` correlated fault
// groups: each group draws `groupSize` distinct links (without
// replacement across the whole plan) and fails them all atomically at
// one shared cycle in [minAt, maxAt] — the grouped-multi-link fault
// domain (a shared conduit or power feed taking several links at once).
// Candidates are canonicalised and sorted before sampling, so the same
// seed yields the same plan regardless of input order.
func GenerateCorrelated(candidates [][2]int, groups, groupSize, minAt, maxAt int, seed int64) (*Plan, error) {
	if groups < 1 || groupSize < 1 {
		return nil, fmt.Errorf("faults: generate %d groups of %d, both must be ≥ 1", groups, groupSize)
	}
	if minAt < 1 || maxAt < minAt {
		return nil, fmt.Errorf("faults: generate cycle window [%d,%d] invalid", minAt, maxAt)
	}
	canon := make(map[[2]int]bool, len(candidates))
	for _, l := range candidates {
		u, v := l[0], l[1]
		if u == v || u < 0 || v < 0 {
			return nil, fmt.Errorf("faults: invalid candidate link %d-%d", u, v)
		}
		if u > v {
			u, v = v, u
		}
		canon[[2]int{u, v}] = true
	}
	links := make([][2]int, 0, len(canon))
	for l := range canon {
		links = append(links, l)
	}
	sort.Slice(links, func(i, j int) bool {
		if links[i][0] != links[j][0] {
			return links[i][0] < links[j][0]
		}
		return links[i][1] < links[j][1]
	})
	if groups*groupSize > len(links) {
		return nil, fmt.Errorf("faults: %d×%d correlated faults requested from %d candidate links", groups, groupSize, len(links))
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(len(links))
	p := &Plan{}
	for g := 0; g < groups; g++ {
		at := minAt + rng.Intn(maxAt-minAt+1)
		idxs := append([]int(nil), perm[g*groupSize:(g+1)*groupSize]...)
		sort.Ints(idxs) // group order follows link order, not draw order
		for _, idx := range idxs {
			l := links[idx]
			p.Faults = append(p.Faults, Fault{Kind: LinkDown, U: l[0], V: l[1], At: at})
		}
	}
	return p, p.Validate()
}
