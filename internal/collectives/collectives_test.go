package collectives

import (
	"math/rand"
	"testing"

	"polarfly/internal/er"
	"polarfly/internal/graph"
	"polarfly/internal/netsim"
	"polarfly/internal/trees"
)

func randInputs(n, m int, seed int64) [][]int64 {
	rng := rand.New(rand.NewSource(seed))
	in := make([][]int64, n)
	for v := range in {
		in[v] = make([]int64, m)
		for k := range in[v] {
			in[v][k] = int64(rng.Intn(200) - 100)
		}
	}
	return in
}

func ringTopology(n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddEdge(i, (i+1)%n)
	}
	return g
}

func completeTopology(n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddEdge(i, j)
		}
	}
	return g
}

func checkAllOutputs(t *testing.T, inputs [][]int64, out *Outcome) {
	t.Helper()
	want := netsim.ExpectedOutput(inputs)
	for v, buf := range out.Outputs {
		for k := range want {
			if buf[k] != want[k] {
				t.Fatalf("process %d element %d: got %d, want %d", v, k, buf[k], want[k])
			}
		}
	}
}

type algo struct {
	name string
	run  func(*Fabric, [][]int64) (*Outcome, error)
}

var algos = []algo{
	{"ring", (*Fabric).RingAllreduce},
	{"recdbl", (*Fabric).RecursiveDoubling},
	{"rabenseifner", (*Fabric).Rabenseifner},
}

func TestCorrectnessAcrossSizesAndTopologies(t *testing.T) {
	// Every algorithm, on power-of-two and odd process counts, on sparse
	// and dense topologies, for several vector lengths including m < P and
	// m not divisible by P.
	for _, a := range algos {
		for _, n := range []int{2, 3, 4, 5, 7, 8, 12, 16} {
			for _, m := range []int{1, 3, n - 1, n, 2*n + 1, 64} {
				if m < 1 {
					continue
				}
				for _, build := range []func(int) *graph.Graph{ringTopology, completeTopology} {
					g := build(n)
					f := NewFabric(g, 10, 1, 1)
					in := randInputs(n, m, int64(n*1000+m))
					out, err := a.run(f, in)
					if err != nil {
						t.Fatalf("%s n=%d m=%d: %v", a.name, n, m, err)
					}
					checkAllOutputs(t, in, out)
				}
			}
		}
	}
}

func treesLowDepth(l *er.Layout) ([]*trees.Tree, error) { return trees.LowDepthForest(l) }

func evenSplit(m, k int) []int {
	out := make([]int, k)
	for i := range out {
		out[i] = m / k
	}
	out[0] += m - (m/k)*k
	return out
}

func TestSingleProcessTrivial(t *testing.T) {
	g := graph.New(1)
	f := NewFabric(g, 10, 1, 1)
	in := [][]int64{{5, 6, 7}}
	for _, a := range algos {
		out, err := a.run(f, in)
		if err != nil {
			t.Fatalf("%s: %v", a.name, err)
		}
		if out.Rounds != 0 || out.Time != 0 {
			t.Errorf("%s: single process should be free, got %+v", a.name, out)
		}
		checkAllOutputs(t, in, out)
	}
}

func TestValidationErrors(t *testing.T) {
	g := ringTopology(4)
	f := NewFabric(g, 1, 1, 1)
	if _, err := f.RingAllreduce(randInputs(3, 4, 1)); err == nil {
		t.Error("wrong process count accepted")
	}
	bad := randInputs(4, 4, 1)
	bad[2] = bad[2][:2]
	if _, err := f.RecursiveDoubling(bad); err == nil {
		t.Error("ragged inputs accepted")
	}
}

func TestRoundCounts(t *testing.T) {
	n, m := 8, 64
	g := completeTopology(n)
	f := NewFabric(g, 10, 1, 1)
	in := randInputs(n, m, 5)

	ring, _ := f.RingAllreduce(in)
	if ring.Rounds != 2*(n-1) {
		t.Errorf("ring rounds = %d, want %d", ring.Rounds, 2*(n-1))
	}
	rd, _ := f.RecursiveDoubling(in)
	if rd.Rounds != 3 { // log2(8)
		t.Errorf("recursive doubling rounds = %d, want 3", rd.Rounds)
	}
	rab, _ := f.Rabenseifner(in)
	if rab.Rounds != 6 { // 2·log2(8)
		t.Errorf("rabenseifner rounds = %d, want 6", rab.Rounds)
	}
}

func TestNonPowerOfTwoRoundCounts(t *testing.T) {
	n := 6 // p2 = 4, rem = 2
	g := completeTopology(n)
	f := NewFabric(g, 10, 1, 1)
	in := randInputs(n, 32, 6)
	rd, _ := f.RecursiveDoubling(in)
	if rd.Rounds != 2+2 { // fold + log2(4) + unfold
		t.Errorf("recdbl rounds = %d, want 4", rd.Rounds)
	}
	rab, _ := f.Rabenseifner(in)
	if rab.Rounds != 2+4 { // fold + 2·log2(4) + unfold
		t.Errorf("rabenseifner rounds = %d, want 6", rab.Rounds)
	}
}

func TestLatencyVsBandwidthRegimes(t *testing.T) {
	// Small vectors: recursive doubling (fewest rounds) beats ring.
	// Large vectors: ring and rabenseifner (per-process volume 2m(P−1)/P)
	// beat recursive doubling (volume m·logP... per round full m).
	n := 16
	g := completeTopology(n)
	f := NewFabric(g, 1000, 1, 1) // heavy per-round α
	small := randInputs(n, 4, 7)
	rSmall, _ := f.RingAllreduce(small)
	dSmall, _ := f.RecursiveDoubling(small)
	if dSmall.Time >= rSmall.Time {
		t.Errorf("small m: recdbl %.0f should beat ring %.0f", dSmall.Time, rSmall.Time)
	}
	f2 := NewFabric(g, 1, 1, 1) // negligible α
	big := randInputs(n, 4096, 8)
	rBig, _ := f2.RingAllreduce(big)
	dBig, _ := f2.RecursiveDoubling(big)
	rabBig, _ := f2.Rabenseifner(big)
	if rBig.Time >= dBig.Time {
		t.Errorf("large m: ring %.0f should beat recdbl %.0f", rBig.Time, dBig.Time)
	}
	if rabBig.Time >= dBig.Time {
		t.Errorf("large m: rabenseifner %.0f should beat recdbl %.0f", rabBig.Time, dBig.Time)
	}
}

func TestAnalyticModelsSanity(t *testing.T) {
	g := completeTopology(8)
	f := NewFabric(g, 10, 0, 1)
	// On a complete topology (dilation 1, no contention between distinct
	// pairs... ring neighbors are distinct links), the simulated ring cost
	// matches the analytic formula.
	in := randInputs(8, 800, 9)
	out, _ := f.RingAllreduce(in)
	want := f.AnalyticRing(8, 800)
	if ratio := out.Time / want; ratio < 0.95 || ratio > 1.1 {
		t.Errorf("ring sim %.1f vs analytic %.1f (ratio %.3f)", out.Time, want, ratio)
	}
	rd, _ := f.RecursiveDoubling(in)
	wantRD := f.AnalyticRecursiveDoubling(8, 800)
	if ratio := rd.Time / wantRD; ratio < 0.95 || ratio > 1.1 {
		t.Errorf("recdbl sim %.1f vs analytic %.1f", rd.Time, wantRD)
	}
	if f.AnalyticRing(1, 100) != 0 || f.AnalyticRecursiveDoubling(1, 100) != 0 {
		t.Error("single-process analytic cost should be 0")
	}
}

func TestAnalyticPipelinedRing(t *testing.T) {
	g := completeTopology(8)
	f := NewFabric(g, 100, 0, 1)
	// One segment equals the plain analytic ring up to the chunking
	// convention: (2(P−1))·(α + m/(P·B)).
	if got, want := f.AnalyticPipelinedRing(8, 800, 1), f.AnalyticRing(8, 800); got != want {
		t.Errorf("1 segment: %f, want %f", got, want)
	}
	// Pipelining helps when α is small relative to m: some s > 1 beats
	// s = 1 for large m.
	f2 := NewFabric(g, 10, 0, 1)
	s := f2.OptimalRingSegments(8, 100000)
	if s <= 1 {
		t.Errorf("optimal segments = %d, expected > 1 for huge m", s)
	}
	if f2.AnalyticPipelinedRing(8, 100000, s) >= f2.AnalyticPipelinedRing(8, 100000, 1) {
		t.Error("optimal segmentation not better than none")
	}
	// With enormous α, s = 1 is optimal.
	f3 := NewFabric(g, 1e9, 0, 1)
	if f3.OptimalRingSegments(8, 1000) != 1 {
		t.Error("huge α should force one segment")
	}
	if f.AnalyticPipelinedRing(1, 100, 4) != 0 {
		t.Error("single process should be free")
	}
	defer func() {
		if recover() == nil {
			t.Error("zero segments should panic")
		}
	}()
	f.AnalyticPipelinedRing(4, 100, 0)
}

func TestHostBasedVsInNetworkOnPolarFly(t *testing.T) {
	// The headline comparison (§1, §8): on ER_5, in-network multi-tree
	// Allreduce beats every host-based algorithm for large vectors.
	pg, err := er.New(5)
	if err != nil {
		t.Fatal(err)
	}
	n := pg.N()
	m := 2048
	in := randInputs(n, m, 11)
	alpha, perHop, bw := 500.0, 3.0, 1.0
	f := NewFabric(pg.G, alpha, perHop, bw)

	best := 1e18
	for _, a := range algos {
		out, err := a.run(f, in)
		if err != nil {
			t.Fatal(err)
		}
		checkAllOutputs(t, in, out)
		if out.Time < best {
			best = out.Time
		}
	}
	// In-network low-depth forest on the same fabric parameters.
	l, err := er.NewLayout(pg, -1)
	if err != nil {
		t.Fatal(err)
	}
	forest, err := treesLowDepth(l)
	if err != nil {
		t.Fatal(err)
	}
	split := evenSplit(m, len(forest))
	res, err := netsim.Run(netsim.Spec{Topology: pg.G, Forest: forest, Split: split, Inputs: in},
		netsim.Config{LinkLatency: int(perHop), VCDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	if float64(res.Cycles) >= best {
		t.Errorf("in-network %d cycles should beat best host-based %.0f", res.Cycles, best)
	}
	t.Logf("in-network=%d cycles, best host-based=%.0f (%.1fx)", res.Cycles, best, best/float64(res.Cycles))
}

func TestTotalTrafficAccounting(t *testing.T) {
	n, m := 4, 40
	g := completeTopology(n)
	f := NewFabric(g, 0, 0, 1)
	in := randInputs(n, m, 12)
	out, _ := f.RingAllreduce(in)
	// Ring on complete graph: every hop distance 1; total volume =
	// 2·(P−1)·Σchunks = 2·(P−1)·m.
	if want := 2 * (n - 1) * m; out.TotalTraffic != want {
		t.Errorf("ring traffic = %d, want %d", out.TotalTraffic, want)
	}
}
