package collectives

import (
	"fmt"
	"testing"
)

// BenchmarkAlgorithms measures the host-based baselines on a complete
// 16-process topology with a 4096-element vector.
func BenchmarkAlgorithms(b *testing.B) {
	g := completeTopology(16)
	f := NewFabric(g, 100, 1, 1)
	in := randInputs(16, 4096, 1)
	for _, a := range algos {
		b.Run(a.name, func(b *testing.B) {
			b.SetBytes(16 * 4096 * 8)
			for i := 0; i < b.N; i++ {
				out, err := a.run(f, in)
				if err != nil {
					b.Fatal(err)
				}
				_ = out
			}
		})
	}
}

// BenchmarkFabricConstruction measures the routing-table cost dominating
// fabric setup.
func BenchmarkFabricConstruction(b *testing.B) {
	for _, n := range []int{16, 64} {
		g := completeTopology(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = NewFabric(g, 1, 1, 1)
			}
		})
	}
}
