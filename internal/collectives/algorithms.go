package collectives

import (
	"fmt"
	"math/bits"
)

// validate returns the process count and vector length, or an error.
func (f *Fabric) validate(inputs [][]int64) (p, m int, err error) {
	p = f.G.N()
	if len(inputs) != p {
		return 0, 0, fmt.Errorf("collectives: %d inputs for %d processes", len(inputs), p)
	}
	if p == 0 {
		return 0, 0, fmt.Errorf("collectives: empty fabric")
	}
	m = len(inputs[0])
	for i, in := range inputs {
		if len(in) != m {
			return 0, 0, fmt.Errorf("collectives: process %d vector length %d, want %d", i, len(in), m)
		}
	}
	return p, m, nil
}

// chunkOff returns the start offset of chunk j when an m-element vector is
// split into p near-equal contiguous chunks.
func chunkOff(m, p, j int) int { return j * m / p }

// RingAllreduce runs the bandwidth-optimal Ring-Allreduce [Patarasuk &
// Yuan]: a reduce-scatter of P−1 rounds followed by an allgather of P−1
// rounds, each moving ~m/P elements per process around the logical ring
// 0→1→…→P−1→0. On a direct network the ring hops are routed on shortest
// paths, so the model charges the dilation and contention they incur.
func (f *Fabric) RingAllreduce(inputs [][]int64) (*Outcome, error) {
	p, m, err := f.validate(inputs)
	if err != nil {
		return nil, err
	}
	s, err := newState(f, inputs)
	if err != nil {
		return nil, err
	}
	if p == 1 {
		return s.finish(), nil
	}
	chunk := func(j int) (off, n int) {
		j = ((j % p) + p) % p
		off = chunkOff(m, p, j)
		return off, chunkOff(m, p, j+1) - off
	}
	// Reduce-scatter: in round r, process i sends chunk (i−r) to i+1,
	// which accumulates it.
	for r := 0; r < p-1; r++ {
		ts := make([]transfer, 0, p)
		for i := 0; i < p; i++ {
			off, n := chunk(i - r)
			ts = append(ts, transfer{src: i, dst: (i + 1) % p, srcOff: off, dstOff: off, elems: n, reduce: true})
		}
		s.round(ts)
	}
	// Allgather: process i forwards its freshest complete chunk (i+1−r).
	for r := 0; r < p-1; r++ {
		ts := make([]transfer, 0, p)
		for i := 0; i < p; i++ {
			off, n := chunk(i + 1 - r)
			ts = append(ts, transfer{src: i, dst: (i + 1) % p, srcOff: off, dstOff: off, elems: n})
		}
		s.round(ts)
	}
	return s.finish(), nil
}

// pow2Below returns the largest power of two ≤ p.
func pow2Below(p int) int {
	if p < 1 {
		return 0
	}
	return 1 << (bits.Len(uint(p)) - 1)
}

// p2Mapping implements the standard MPICH treatment of non-power-of-two
// process counts: the first 2·rem processes fold pairwise so that p2 = 2^k
// processes participate in the core exchange; afterwards results are copied
// back. realRank maps a participant's new rank to its process id.
type p2Mapping struct {
	p, p2, rem int
}

func newP2Mapping(p int) p2Mapping {
	p2 := pow2Below(p)
	return p2Mapping{p: p, p2: p2, rem: p - p2}
}

func (m p2Mapping) realRank(newRank int) int {
	if newRank < m.rem {
		return newRank*2 + 1
	}
	return newRank + m.rem
}

// fold performs the pre-step: even processes below 2·rem send their whole
// vector to the odd neighbor above them, which reduces it.
func (m p2Mapping) fold(s *state, vecLen int) {
	if m.rem == 0 {
		return
	}
	ts := make([]transfer, 0, m.rem)
	for i := 0; i < 2*m.rem; i += 2 {
		ts = append(ts, transfer{src: i, dst: i + 1, elems: vecLen, reduce: true})
	}
	s.round(ts)
}

// unfold performs the post-step: odd processes below 2·rem copy the final
// vector back to their even neighbor.
func (m p2Mapping) unfold(s *state, vecLen int) {
	if m.rem == 0 {
		return
	}
	ts := make([]transfer, 0, m.rem)
	for i := 0; i < 2*m.rem; i += 2 {
		ts = append(ts, transfer{src: i + 1, dst: i, elems: vecLen})
	}
	s.round(ts)
}

// RecursiveDoubling runs the latency-optimal recursive-doubling Allreduce
// [MPICH]: ⌈log₂P⌉ rounds of full-vector pairwise exchange. Every round
// moves the whole vector, so it is preferred for small (latency-bound)
// reductions (§4.2).
func (f *Fabric) RecursiveDoubling(inputs [][]int64) (*Outcome, error) {
	p, m, err := f.validate(inputs)
	if err != nil {
		return nil, err
	}
	s, err := newState(f, inputs)
	if err != nil {
		return nil, err
	}
	if p == 1 {
		return s.finish(), nil
	}
	pm := newP2Mapping(p)
	pm.fold(s, m)
	for d := 1; d < pm.p2; d <<= 1 {
		ts := make([]transfer, 0, pm.p2)
		for nr := 0; nr < pm.p2; nr++ {
			a, b := pm.realRank(nr), pm.realRank(nr^d)
			ts = append(ts, transfer{src: a, dst: b, elems: m, reduce: true})
		}
		s.round(ts)
	}
	pm.unfold(s, m)
	return s.finish(), nil
}

// Rabenseifner runs the recursive-halving reduce-scatter followed by a
// recursive-doubling allgather [Rabenseifner 2004] — bandwidth-optimal for
// large vectors with only 2·log₂P rounds.
func (f *Fabric) Rabenseifner(inputs [][]int64) (*Outcome, error) {
	p, m, err := f.validate(inputs)
	if err != nil {
		return nil, err
	}
	s, err := newState(f, inputs)
	if err != nil {
		return nil, err
	}
	if p == 1 {
		return s.finish(), nil
	}
	pm := newP2Mapping(p)
	pm.fold(s, m)
	p2 := pm.p2

	if p2 > 1 {
		// Reduce-scatter by recursive halving. Each participant tracks the
		// contiguous run of final chunks [clo, chi) it is still reducing;
		// after all rounds, participant nr owns exactly chunk nr.
		clo := make([]int, p2)
		chi := make([]int, p2)
		for nr := range clo {
			clo[nr], chi[nr] = 0, p2
		}
		elems := func(a, b int) (off, n int) { // chunks [a,b) → element span
			off = chunkOff(m, p2, a)
			return off, chunkOff(m, p2, b) - off
		}
		for d := p2 / 2; d >= 1; d /= 2 {
			ts := make([]transfer, 0, p2)
			newClo := append([]int(nil), clo...)
			newChi := append([]int(nil), chi...)
			for nr := 0; nr < p2; nr++ {
				partner := nr ^ d
				mid := (clo[nr] + chi[nr]) / 2
				if nr&d == 0 {
					// Keep the lower half, ship the upper half to partner.
					off, n := elems(mid, chi[nr])
					ts = append(ts, transfer{src: pm.realRank(nr), dst: pm.realRank(partner),
						srcOff: off, dstOff: off, elems: n, reduce: true})
					newChi[nr] = mid
				} else {
					off, n := elems(clo[nr], mid)
					ts = append(ts, transfer{src: pm.realRank(nr), dst: pm.realRank(partner),
						srcOff: off, dstOff: off, elems: n, reduce: true})
					newClo[nr] = mid
				}
			}
			s.round(ts)
			clo, chi = newClo, newChi
		}
		// Allgather by recursive doubling: owned runs double back up.
		for d := 1; d < p2; d <<= 1 {
			ts := make([]transfer, 0, p2)
			for nr := 0; nr < p2; nr++ {
				partner := nr ^ d
				off, n := elems(clo[nr], chi[nr])
				ts = append(ts, transfer{src: pm.realRank(nr), dst: pm.realRank(partner),
					srcOff: off, dstOff: off, elems: n})
			}
			s.round(ts)
			// After the exchange both partners own the union of the two
			// sibling runs.
			newClo := make([]int, p2)
			newChi := make([]int, p2)
			for nr := 0; nr < p2; nr++ {
				partner := nr ^ d
				lo, hi := clo[nr], chi[nr]
				if clo[partner] < lo {
					lo = clo[partner]
				}
				if chi[partner] > hi {
					hi = chi[partner]
				}
				newClo[nr], newChi[nr] = lo, hi
			}
			clo, chi = newClo, newChi
		}
	}
	pm.unfold(s, m)
	return s.finish(), nil
}

// AnalyticRing returns the textbook α-β cost of Ring-Allreduce on P
// processes with an m-element vector: 2(P−1)α + 2((P−1)/P)·m/B, before any
// topology dilation. Useful as a sanity reference for the simulated cost.
func (f *Fabric) AnalyticRing(p, m int) float64 {
	if p <= 1 {
		return 0
	}
	return 2*float64(p-1)*f.Alpha + 2*float64(p-1)/float64(p)*float64(m)/f.LinkBW
}

// AnalyticRecursiveDoubling returns ⌈log₂P⌉(α + m/B).
func (f *Fabric) AnalyticRecursiveDoubling(p, m int) float64 {
	if p <= 1 {
		return 0
	}
	rounds := bits.Len(uint(p - 1))
	return float64(rounds) * (f.Alpha + float64(m)/f.LinkBW)
}

// AnalyticPipelinedRing returns the cost of a segmented (pipelined) Ring
// Allreduce: the vector is cut into s segments that flow around the ring
// back-to-back, overlapping the rounds of consecutive segments. With
// 2(P−1) ring steps and s−1 extra pipeline stages, each moving m/(P·s)
// elements:
//
//	t(s) = (2(P−1) + s − 1) · (α + m / (P·s·B))
//
// Larger s amortises bandwidth per stage but pays more α's — the classic
// pipelining trade-off host-based systems tune (§8's BlueConnect-style
// optimisations).
func (f *Fabric) AnalyticPipelinedRing(p, m, segments int) float64 {
	if p <= 1 {
		return 0
	}
	if segments < 1 {
		panic("collectives: segments must be ≥ 1")
	}
	stages := float64(2*(p-1) + segments - 1)
	perStage := f.Alpha + float64(m)/(float64(p)*float64(segments)*f.LinkBW)
	return stages * perStage
}

// OptimalRingSegments returns the segment count minimising
// AnalyticPipelinedRing for the given (p, m), by ternary-style scan over
// the unimodal cost curve (bounded by m/p segments — below one element per
// stage further splitting is useless).
func (f *Fabric) OptimalRingSegments(p, m int) int {
	if p <= 1 || m <= 0 {
		return 1
	}
	maxS := m / p
	if maxS < 1 {
		maxS = 1
	}
	best, bestCost := 1, f.AnalyticPipelinedRing(p, m, 1)
	for s := 2; s <= maxS; s++ {
		c := f.AnalyticPipelinedRing(p, m, s)
		if c < bestCost {
			best, bestCost = s, c
		}
	}
	return best
}
