// Package collectives implements the classical host-based Allreduce
// algorithms the paper positions its in-network solutions against (§4.2,
// §8): Ring-Allreduce (bandwidth-optimal), Recursive Doubling
// (latency-optimal) and Rabenseifner's recursive halving + doubling. Each
// algorithm really moves and reduces data, so its output is verified, and
// its cost is evaluated round-by-round on the actual topology via the
// routing table — capturing the dilation and link contention a host-based
// collective pays on a direct network, plus the per-round software α that
// in-network offload eliminates.
package collectives

import (
	"fmt"

	"polarfly/internal/graph"
	"polarfly/internal/routing"
)

// Fabric is the cost model for host-based rounds on a topology.
type Fabric struct {
	G  *graph.Graph
	RT *routing.Table
	// Alpha is the per-round software/protocol startup cost in cycles
	// (host stack, synchronisation). In-network computing avoids this per
	// round; hosts pay it every round (§4.2).
	Alpha float64
	// PerHop is the per-hop wire latency in cycles.
	PerHop float64
	// LinkBW is the link bandwidth in elements/cycle.
	LinkBW float64
}

// NewFabric builds a Fabric with the given parameters.
func NewFabric(g *graph.Graph, alpha, perHop, linkBW float64) *Fabric {
	if linkBW <= 0 {
		panic("collectives: link bandwidth must be positive")
	}
	return &Fabric{G: g, RT: routing.New(g), Alpha: alpha, PerHop: perHop, LinkBW: linkBW}
}

// message is one point-to-point transfer within a round.
type message struct {
	src, dst int
	elems    int
}

// roundTime charges a synchronous communication round: every message is
// routed on its shortest path; each directed link serialises the elements
// crossing it; the round completes when the most loaded link drains, after
// the software startup and the longest path's wire latency.
func (f *Fabric) roundTime(msgs []message) float64 {
	if len(msgs) == 0 {
		return 0
	}
	load := make(map[[2]int]int)
	maxHops := 0
	for _, m := range msgs {
		if m.elems == 0 {
			continue
		}
		links := f.RT.Links(m.src, m.dst)
		if len(links) > maxHops {
			maxHops = len(links)
		}
		for _, l := range links {
			load[l] += m.elems
		}
	}
	maxLoad := 0
	for _, l := range load {
		if l > maxLoad {
			maxLoad = l
		}
	}
	return f.Alpha + f.PerHop*float64(maxHops) + float64(maxLoad)/f.LinkBW
}

// Outcome reports a completed host-based collective.
type Outcome struct {
	// Time is the modelled completion time in cycles.
	Time float64
	// Rounds is the number of communication rounds.
	Rounds int
	// Outputs[v] is process v's final vector (verified by tests to be the
	// element-wise sum).
	Outputs [][]int64
	// TotalTraffic is the total element·hop volume moved on the wire.
	TotalTraffic int
}

// state carries the evolving buffers of all processes during a schedule.
type state struct {
	f       *Fabric
	bufs    [][]int64
	outcome Outcome
}

func newState(f *Fabric, inputs [][]int64) (*state, error) {
	if len(inputs) != f.G.N() {
		return nil, fmt.Errorf("collectives: %d inputs for %d nodes", len(inputs), f.G.N())
	}
	m := len(inputs[0])
	s := &state{f: f, bufs: make([][]int64, len(inputs))}
	for i, in := range inputs {
		if len(in) != m {
			return nil, fmt.Errorf("collectives: process %d vector length %d, want %d", i, len(in), m)
		}
		s.bufs[i] = append([]int64(nil), in...)
	}
	return s, nil
}

// transfer is a staged copy/reduce executed atomically at the end of a
// round: `elems` values from src's buffer at [srcOff, srcOff+elems) arrive
// at dst at dstOff, either overwriting (reduce=false) or accumulating
// (reduce=true).
type transfer struct {
	src, dst       int
	srcOff, dstOff int
	elems          int
	reduce         bool
}

// round executes a set of transfers as one synchronous round, charging its
// time. All reads happen before all writes (processes send from their
// pre-round buffers, as real nonblocking exchanges do).
func (s *state) round(ts []transfer) {
	var msgs []message
	staged := make([][]int64, len(ts))
	for i, t := range ts {
		if t.elems == 0 {
			continue
		}
		if t.src == t.dst {
			panic("collectives: self-message")
		}
		staged[i] = append([]int64(nil), s.bufs[t.src][t.srcOff:t.srcOff+t.elems]...)
		msgs = append(msgs, message{src: t.src, dst: t.dst, elems: t.elems})
		s.outcome.TotalTraffic += t.elems * s.f.RT.Dist(t.src, t.dst)
	}
	for i, t := range ts {
		if t.elems == 0 {
			continue
		}
		dst := s.bufs[t.dst][t.dstOff : t.dstOff+t.elems]
		if t.reduce {
			for k, v := range staged[i] {
				dst[k] += v
			}
		} else {
			copy(dst, staged[i])
		}
	}
	if len(msgs) > 0 {
		s.outcome.Time += s.f.roundTime(msgs)
		s.outcome.Rounds++
	}
}

func (s *state) finish() *Outcome {
	s.outcome.Outputs = s.bufs
	return &s.outcome
}
