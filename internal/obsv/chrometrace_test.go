package obsv_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"polarfly/internal/graph"
	"polarfly/internal/netsim"
	"polarfly/internal/obsv"
	"polarfly/internal/trees"
	"polarfly/internal/workload"
)

// lineSpec builds an n-node path topology with one midpoint-rooted tree.
func lineSpec(n, m int) netsim.Spec {
	g := graph.New(n)
	path := make([]int, n)
	for i := 0; i < n; i++ {
		path[i] = i
		if i+1 < n {
			g.AddEdge(i, i+1)
		}
	}
	tr, err := trees.FromPath(path, (n-1)/2)
	if err != nil {
		panic(err)
	}
	return netsim.Spec{
		Topology: g,
		Forest:   []*trees.Tree{tr},
		Split:    []int{m},
		Inputs:   workload.Vectors(n, m, 1000, 1),
	}
}

// chromeJSON is the subset of the trace-event format the tests decode.
type chromeJSON struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Cat  string         `json:"cat"`
		Ph   string         `json:"ph"`
		Ts   int64          `json:"ts"`
		Dur  int64          `json:"dur"`
		Pid  int            `json:"pid"`
		Tid  int            `json:"tid"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
}

func TestChromeTraceExport(t *testing.T) {
	spec, cfg := lineSpec(4, 16), netsim.Config{LinkLatency: 3, VCDepth: 2}
	c := obsv.NewCollector()
	c.Attach(&cfg)
	res, err := netsim.Run(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.SetCycles(res.Cycles)

	ct := obsv.NewChromeTrace()
	ct.Add("line", c)
	var buf bytes.Buffer
	if err := ct.Write(&buf); err != nil {
		t.Fatal(err)
	}
	var file chromeJSON
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}

	pidsNamed := make(map[int]bool)
	flits := 0
	sawXmit, sawStall := false, false
	for _, ev := range file.TraceEvents {
		switch ev.Ph {
		case "M":
			if ev.Name == "process_name" {
				pidsNamed[ev.Pid] = true
			}
		case "X":
			if !pidsNamed[ev.Pid] {
				t.Fatalf("duration event on unnamed pid %d", ev.Pid)
			}
			if ev.Ts < 0 || ev.Dur <= 0 {
				t.Fatalf("bad span ts=%d dur=%d", ev.Ts, ev.Dur)
			}
			if int(ev.Ts)+int(ev.Dur) > res.Cycles+cfg.LinkLatency {
				t.Fatalf("span [%d, %d] exceeds run of %d cycles", ev.Ts, ev.Ts+ev.Dur, res.Cycles)
			}
			switch ev.Cat {
			case "xmit":
				sawXmit = true
				flits += int(ev.Args["flits"].(float64))
			case "stall":
				sawStall = true
			default:
				t.Fatalf("unknown span category %q", ev.Cat)
			}
		default:
			t.Fatalf("unknown event phase %q", ev.Ph)
		}
	}
	if !sawXmit {
		t.Error("no transmit spans exported")
	}
	if !sawStall {
		t.Error("no stall spans exported despite VCDepth < latency")
	}
	if flits != res.FlitsSent {
		t.Errorf("spans cover %d flits, simulator sent %d", flits, res.FlitsSent)
	}
	// 2·(n−1) directed links carry traffic on a line with allreduce.
	if len(pidsNamed) != 6 {
		t.Errorf("%d link tracks, want 6", len(pidsNamed))
	}
}

func TestChromeTraceDeterministic(t *testing.T) {
	render := func() string {
		spec, cfg := lineSpec(5, 12), netsim.Config{LinkLatency: 4, VCDepth: 2}
		c := obsv.NewCollector()
		c.Attach(&cfg)
		res, err := netsim.Run(spec, cfg)
		if err != nil {
			t.Fatal(err)
		}
		c.SetCycles(res.Cycles)
		ct := obsv.NewChromeTrace()
		ct.Add("a", c)
		var buf bytes.Buffer
		if err := ct.Write(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if render() != render() {
		t.Error("chrome trace output is nondeterministic")
	}
}

func TestChromeTraceMultiSectionPidsDisjoint(t *testing.T) {
	mk := func() *obsv.Collector {
		spec, cfg := lineSpec(3, 8), netsim.Config{LinkLatency: 2, VCDepth: 4}
		c := obsv.NewCollector()
		c.Attach(&cfg)
		if _, err := netsim.Run(spec, cfg); err != nil {
			t.Fatal(err)
		}
		return c
	}
	ct := obsv.NewChromeTrace()
	ct.Add("first", mk())
	ct.Add("second", mk())
	var buf bytes.Buffer
	if err := ct.Write(&buf); err != nil {
		t.Fatal(err)
	}
	var file chromeJSON
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatal(err)
	}
	names := make(map[int]string)
	for _, ev := range file.TraceEvents {
		if ev.Ph == "M" && ev.Name == "process_name" {
			name := ev.Args["name"].(string)
			if prev, ok := names[ev.Pid]; ok && prev != name {
				t.Fatalf("pid %d named both %q and %q", ev.Pid, prev, name)
			}
			names[ev.Pid] = name
		}
	}
	first, second := 0, 0
	for _, name := range names {
		switch name[:5] {
		case "first":
			first++
		case "secon":
			second++
		}
	}
	if first != 4 || second != 4 {
		t.Errorf("expected 4 link tracks per section, got %d and %d", first, second)
	}
}

// TestChromeTraceStreamedBytesMatchReference locks in the streaming
// writer's byte-identity contract: emitting events one json.Marshal at a
// time must produce exactly what encoding one whole file object would —
// same field order, same HTML escaping of the "->" link names, same
// trailing newline. The reference is rebuilt here by decoding the
// streamed output and re-encoding it with the stdlib whole-file encoder.
func TestChromeTraceStreamedBytesMatchReference(t *testing.T) {
	spec, cfg := lineSpec(4, 16), netsim.Config{LinkLatency: 3, VCDepth: 2}
	c := obsv.NewCollector()
	c.Attach(&cfg)
	res, err := netsim.Run(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.SetCycles(res.Cycles)
	ct := obsv.NewChromeTrace()
	ct.Add("line", c)
	var streamed bytes.Buffer
	if err := ct.Write(&streamed); err != nil {
		t.Fatal(err)
	}

	// Mirror of the trace-file shape with the same field order and types
	// as the events the writer emits.
	type event struct {
		Name string         `json:"name"`
		Cat  string         `json:"cat,omitempty"`
		Ph   string         `json:"ph"`
		Ts   int64          `json:"ts"`
		Dur  int64          `json:"dur,omitempty"`
		Pid  int            `json:"pid"`
		Tid  int            `json:"tid"`
		S    string         `json:"s,omitempty"`
		Args map[string]any `json:"args,omitempty"`
	}
	type file struct {
		TraceEvents     []event `json:"traceEvents"`
		DisplayTimeUnit string  `json:"displayTimeUnit"`
	}
	var f file
	if err := json.Unmarshal(streamed.Bytes(), &f); err != nil {
		t.Fatalf("streamed trace is not valid JSON: %v", err)
	}
	if len(f.TraceEvents) == 0 || f.DisplayTimeUnit != "ms" {
		t.Fatalf("decoded trace empty or missing displayTimeUnit: %d events, unit %q",
			len(f.TraceEvents), f.DisplayTimeUnit)
	}
	var reference bytes.Buffer
	if err := json.NewEncoder(&reference).Encode(f); err != nil {
		t.Fatal(err)
	}
	if streamed.String() != reference.String() {
		t.Fatalf("streamed bytes differ from the whole-file encoding:\n--- streamed ---\n%s\n--- reference ---\n%s",
			streamed.String(), reference.String())
	}
}

// TestChromeTraceEmpty: a builder with no sections still writes a valid,
// loadable file.
func TestChromeTraceEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := obsv.NewChromeTrace().Write(&buf); err != nil {
		t.Fatal(err)
	}
	want := "{\"traceEvents\":[],\"displayTimeUnit\":\"ms\"}\n"
	if buf.String() != want {
		t.Fatalf("empty trace = %q, want %q", buf.String(), want)
	}
}
