package obsv

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// The Chrome trace-event format (loadable by chrome://tracing and
// Perfetto): a JSON object with a traceEvents array of duration ("X") and
// metadata ("M") events. We map every directed link to a process (track
// group) and every (tree, phase) stream on it to a thread (track), so
// link sharing between trees is directly visible as parallel tracks under
// one link. Cycles are rendered as microseconds.

type chromeEvent struct {
	Name string `json:"name"`
	Cat  string `json:"cat,omitempty"`
	Ph   string `json:"ph"`
	Ts   int64  `json:"ts"`
	Dur  int64  `json:"dur,omitempty"`
	Pid  int    `json:"pid"`
	Tid  int    `json:"tid"`
	// S is the instant-event scope ("g" = global) for ph "i" events.
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

func linkName(from, to int) string { return fmt.Sprintf("%d->%d", from, to) }

func phaseName(phase int) string {
	if phase == 0 {
		return "reduce"
	}
	return "bcast"
}

// ChromeTrace assembles one trace file from one or more collectors, each
// under a section label (e.g. one per embedding), with disjoint pid
// ranges so tracks never collide.
type ChromeTrace struct {
	sections []chromeSection
}

type chromeSection struct {
	label     string
	collector *Collector
}

// NewChromeTrace returns an empty trace builder.
func NewChromeTrace() *ChromeTrace { return &ChromeTrace{} }

// Add appends a collector's spans under the given section label.
func (ct *ChromeTrace) Add(label string, c *Collector) {
	ct.sections = append(ct.sections, chromeSection{label: label, collector: c})
}

// eventStream marshals trace events straight to the writer as they are
// produced, so a long run's trace never materialises as one in-memory
// slice — the writer is the only O(events) consumer. Each event is
// json.Marshal'ed individually, which produces exactly the bytes the old
// whole-file encoder emitted for that array element, so the streamed
// output is byte-identical to buffering. The first error latches.
type eventStream struct {
	w   io.Writer
	n   int
	err error
}

func (s *eventStream) emit(evs ...chromeEvent) {
	for _, ev := range evs {
		if s.err != nil {
			return
		}
		b, err := json.Marshal(ev)
		if err != nil {
			s.err = err
			return
		}
		if s.n > 0 {
			if _, err := io.WriteString(s.w, ","); err != nil {
				s.err = err
				return
			}
		}
		if _, err := s.w.Write(b); err != nil {
			s.err = err
			return
		}
		s.n++
	}
}

func (s *eventStream) literal(lit string) {
	if s.err != nil {
		return
	}
	_, s.err = io.WriteString(s.w, lit)
}

// Write renders the trace-event JSON, streaming each event to w as it is
// generated. Deterministic and byte-identical to encoding the whole file
// at once (encoding/json field order and HTML escaping included).
func (ct *ChromeTrace) Write(w io.Writer) error {
	s := &eventStream{w: w}
	s.literal(`{"traceEvents":[`)
	pidBase := 0
	for _, sec := range ct.sections {
		c := sec.collector
		c.flush()

		// Assign one pid per directed link, in link order.
		links := make(map[[2]int]bool)
		for _, sp := range c.spans {
			links[[2]int{sp.From, sp.To}] = true
		}
		keys := make([][2]int, 0, len(links))
		for k := range links {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i][0] != keys[j][0] {
				return keys[i][0] < keys[j][0]
			}
			return keys[i][1] < keys[j][1]
		})
		pids := make(map[[2]int]int, len(keys))
		for i, k := range keys {
			pid := pidBase + i + 1
			pids[k] = pid
			name := "link " + linkName(k[0], k[1])
			if sec.label != "" {
				name = sec.label + " " + name
			}
			s.emit(
				chromeEvent{Name: "process_name", Ph: "M", Pid: pid,
					Args: map[string]any{"name": name}},
				chromeEvent{Name: "process_sort_index", Ph: "M", Pid: pid,
					Args: map[string]any{"sort_index": pid}},
			)
		}
		// Fault activations and recovery rounds render as global instant
		// events on a dedicated process per section, so the moments the
		// topology changed line up visually with the per-link tracks.
		if len(c.faultMarks) > 0 || len(c.recoverMarks) > 0 {
			faultPid := pidBase + len(keys) + 1
			name := "faults"
			if sec.label != "" {
				name = sec.label + " faults"
			}
			s.emit(
				chromeEvent{Name: "process_name", Ph: "M", Pid: faultPid,
					Args: map[string]any{"name": name}},
				chromeEvent{Name: "process_sort_index", Ph: "M", Pid: faultPid,
					Args: map[string]any{"sort_index": faultPid}},
			)
			for _, fm := range c.faultMarks {
				s.emit(chromeEvent{
					Name: fmt.Sprintf("fault kind=%d %s", fm.Kind, linkName(fm.U, fm.V)),
					Cat:  "fault", Ph: "i", S: "g",
					Ts: int64(fm.Cycle), Pid: faultPid, Tid: 1,
					Args: map[string]any{"dropped_at_activation": fm.DroppedAtActivation},
				})
			}
			for _, rm := range c.recoverMarks {
				s.emit(chromeEvent{
					Name: fmt.Sprintf("recover %s", linkName(rm.U, rm.V)),
					Cat:  "recover", Ph: "i", S: "g",
					Ts: int64(rm.Cycle), Pid: faultPid, Tid: 1,
					Args: map[string]any{
						"reissued":       rm.Reissued,
						"remaining":      rm.Remaining,
						"latency_cycles": rm.LatencyCycles,
					},
				})
			}
			pidBase++
		}
		pidBase += len(keys) + 1

		// Name the (tree, phase) threads that actually appear.
		type track struct {
			pid, tid    int
			tree, phase int
		}
		seen := make(map[track]bool)
		for _, sp := range c.spans {
			tr := track{pid: pids[[2]int{sp.From, sp.To}], tid: sp.Tree*2 + sp.Phase + 1, tree: sp.Tree, phase: sp.Phase}
			if seen[tr] {
				continue
			}
			seen[tr] = true
			s.emit(chromeEvent{
				Name: "thread_name", Ph: "M", Pid: tr.pid, Tid: tr.tid,
				Args: map[string]any{"name": fmt.Sprintf("tree %d %s", tr.tree, phaseName(tr.phase))},
			})
		}

		// Flit bursts as duration events; stall runs alongside them.
		for _, sp := range c.spans {
			pid := pids[[2]int{sp.From, sp.To}]
			tid := sp.Tree*2 + sp.Phase + 1
			ev := chromeEvent{Ph: "X", Pid: pid, Tid: tid, Ts: int64(sp.Start)}
			switch sp.Kind {
			case SpanTransmit:
				// A burst occupies the link from its first injection to the
				// last flit's arrival.
				ev.Name = fmt.Sprintf("xmit tree %d %s", sp.Tree, phaseName(sp.Phase))
				ev.Cat = "xmit"
				ev.Dur = int64(sp.End - sp.Start + c.LinkLatency)
				ev.Args = map[string]any{"flits": sp.Flits}
			case SpanStall:
				ev.Name = fmt.Sprintf("stall tree %d %s", sp.Tree, phaseName(sp.Phase))
				ev.Cat = "stall"
				ev.Dur = int64(sp.End - sp.Start + 1)
				ev.Args = map[string]any{"cycles": sp.End - sp.Start + 1}
			}
			s.emit(ev)
		}
	}
	s.literal("],\"displayTimeUnit\":\"ms\"}\n")
	return s.err
}
