// Package obsv is the simulator observability layer: a lightweight,
// stdlib-only metrics registry (counters, gauges, fixed-bucket
// histograms) with deterministic snapshots, a telemetry collector that
// consumes the netsim trace stream and aggregates per-link / per-tree
// statistics — including the congestion quantities of Theorem 7.6 and
// Theorem 7.19 — and a Chrome trace-event exporter for
// chrome://tracing / Perfetto.
package obsv

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
)

// Counter is a monotonically increasing integer metric.
type Counter struct {
	mu sync.Mutex
	v  int64
}

// Add increments the counter by n (n must be ≥ 0).
func (c *Counter) Add(n int64) {
	if n < 0 {
		panic("obsv: counter decrement")
	}
	c.mu.Lock()
	c.v += n
	c.mu.Unlock()
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.v
}

// Gauge is a metric that can move in either direction.
type Gauge struct {
	mu sync.Mutex
	v  float64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	g.mu.Lock()
	g.v = v
	g.mu.Unlock()
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

// Histogram counts observations into fixed buckets. An observation lands
// in the first bucket whose upper bound is ≥ the value; values above the
// last bound land in an implicit overflow bucket.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []int64 // len(bounds)+1; last is overflow
	sum    float64
	n      int64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.n++
}

// HistogramSnapshot is the exported state of a Histogram.
type HistogramSnapshot struct {
	// Bounds are the inclusive bucket upper bounds.
	Bounds []float64 `json:"bounds"`
	// Counts has one entry per bound plus a final overflow bucket.
	Counts []int64 `json:"counts"`
	Sum    float64 `json:"sum"`
	Count  int64   `json:"count"`
}

func (h *Histogram) snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	return HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: append([]int64(nil), h.counts...),
		Sum:    h.sum,
		Count:  h.n,
	}
}

// Registry holds named metrics. Metric constructors are idempotent: the
// same name returns the same metric, and registering a name as two
// different metric types panics (a programming error).
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

func (r *Registry) checkFree(name, want string) {
	if _, ok := r.counters[name]; ok && want != "counter" {
		panic(fmt.Sprintf("obsv: %q already registered as a counter", name))
	}
	if _, ok := r.gauges[name]; ok && want != "gauge" {
		panic(fmt.Sprintf("obsv: %q already registered as a gauge", name))
	}
	if _, ok := r.histograms[name]; ok && want != "histogram" {
		panic(fmt.Sprintf("obsv: %q already registered as a histogram", name))
	}
}

// Counter returns the counter with the given name, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkFree(name, "counter")
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge with the given name, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkFree(name, "gauge")
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram with the given name, creating it with
// the given bucket upper bounds if needed. Bounds must be strictly
// increasing and non-empty; they are fixed at first registration.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkFree(name, "histogram")
	h, ok := r.histograms[name]
	if ok {
		return h
	}
	if len(bounds) == 0 {
		panic("obsv: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obsv: histogram bounds must be strictly increasing")
		}
	}
	h = &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]int64, len(bounds)+1),
	}
	r.histograms[name] = h
	return h
}

// DefaultStallBuckets is the registry's shared bucket layout for
// stall-run-length histograms: twelve powers of two from 1 to 2048
// cycles. Collector.Report and Collector.Metrics both build their
// "sim.stall_run_cycles" histograms from it, so the JSON report and the
// registry snapshot always bucket identically.
func DefaultStallBuckets() []float64 { return ExpBuckets(1, 2, 12) }

// ExpBuckets returns n strictly increasing bounds start, start·factor,
// start·factor², … — the usual latency-histogram shape.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obsv: ExpBuckets needs start > 0, factor > 1, n ≥ 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Snapshot is a deterministic point-in-time export of a Registry:
// every map is rendered sorted by metric name.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures the current value of every metric.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]float64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.histograms)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		s.Histograms[name] = h.snapshot()
	}
	return s
}

// WriteJSON writes the snapshot as indented JSON. encoding/json sorts
// map keys, so the output is deterministic for a given state.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteText writes the snapshot in a flat, sorted name=value form, one
// metric per line — the quick-look format for terminals and test goldens.
func (s Snapshot) WriteText(w io.Writer) error {
	var lines []string
	for name, v := range s.Counters {
		lines = append(lines, fmt.Sprintf("%s %d", name, v))
	}
	for name, v := range s.Gauges {
		lines = append(lines, fmt.Sprintf("%s %s", name, formatFloat(v)))
	}
	for name, h := range s.Histograms {
		for i, b := range h.Bounds {
			lines = append(lines, fmt.Sprintf("%s{le=%s} %d", name, formatFloat(b), h.Counts[i]))
		}
		lines = append(lines, fmt.Sprintf("%s{le=+Inf} %d", name, h.Counts[len(h.Bounds)]))
		lines = append(lines, fmt.Sprintf("%s_sum %s", name, formatFloat(h.Sum)))
		lines = append(lines, fmt.Sprintf("%s_count %d", name, h.Count))
	}
	sort.Strings(lines)
	for _, l := range lines {
		if _, err := fmt.Fprintln(w, l); err != nil {
			return err
		}
	}
	return nil
}

func formatFloat(v float64) string {
	//lint:ignore floatcmp exact integrality test chooses the rendering; both branches print the same value, so no tolerance is wanted
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
