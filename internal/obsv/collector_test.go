package obsv_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"polarfly/internal/core"
	"polarfly/internal/netsim"
	"polarfly/internal/obsv"
	"polarfly/internal/workload"
)

// collectRun executes one embedding on PolarFly q with a collector
// attached and returns the collector, its report, and the sim result.
func collectRun(t *testing.T, q, m int, kind core.EmbeddingKind, cfg netsim.Config) (*obsv.Collector, *obsv.Report, *core.AllreduceResult) {
	t.Helper()
	inst, err := core.NewInstance(q)
	if err != nil {
		t.Fatal(err)
	}
	e, err := inst.Embed(kind)
	if err != nil {
		t.Fatal(err)
	}
	c := obsv.NewCollector()
	c.Attach(&cfg)
	inputs := workload.Vectors(inst.N(), m, 1000, core.DefaultSeed)
	res, err := inst.Allreduce(e, inputs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.SetCycles(res.Cycles)
	return c, c.Report(), res
}

// TestTheorem76CongestionObserved attaches the collector to a q=7
// low-depth run and verifies the measured congestion quantities:
// Theorem 7.6's edge congestion ≤ 2 and Lemma 7.8's opposed reduction
// flows (no (directed link, phase) stream shared by two trees).
func TestTheorem76CongestionObserved(t *testing.T) {
	_, rep, res := collectRun(t, 7, 64, core.LowDepth, netsim.Config{LinkLatency: 4, VCDepth: 8})
	if rep.MaxEdgeCongestion < 1 || rep.MaxEdgeCongestion > 2 {
		t.Errorf("measured max edge congestion %d, Theorem 7.6 bounds it by 2", rep.MaxEdgeCongestion)
	}
	if rep.SharedSamePhaseLinks != 0 {
		t.Errorf("%d (link, phase) streams shared by two trees; Lemma 7.8 forbids same-direction sharing",
			rep.SharedSamePhaseLinks)
	}
	if rep.TotalFlits != res.FlitsSent {
		t.Errorf("collector saw %d flits, simulator sent %d", rep.TotalFlits, res.FlitsSent)
	}
	if rep.MaxLinkUtilization <= 0 || rep.MaxLinkUtilization > 1 {
		t.Errorf("max link utilization %g out of (0, 1]", rep.MaxLinkUtilization)
	}
}

// TestTheorem719ZeroContentionObserved verifies the Hamiltonian forest is
// edge-disjoint in the measured traffic: every undirected link carries
// one tree, and no directed link carries flits from two trees.
func TestTheorem719ZeroContentionObserved(t *testing.T) {
	_, rep, _ := collectRun(t, 7, 64, core.Hamiltonian, netsim.Config{LinkLatency: 4, VCDepth: 8})
	if rep.MaxEdgeCongestion != 1 {
		t.Errorf("measured max edge congestion %d, Theorem 7.19's forest is edge-disjoint", rep.MaxEdgeCongestion)
	}
	if rep.SharedDirectedLinks != 0 {
		t.Errorf("%d directed links carry two trees; want zero shared-link contention", rep.SharedDirectedLinks)
	}
	for _, cell := range rep.Heatmap {
		if len(cell.Trees) != 1 {
			t.Fatalf("heatmap link %d–%d used by trees %v, want exactly one", cell.U, cell.V, cell.Trees)
		}
	}
}

// TestTelemetryDoesNotPerturbSimulation is the acceptance criterion that
// attaching the collector changes no simulation result.
func TestTelemetryDoesNotPerturbSimulation(t *testing.T) {
	inst, err := core.NewInstance(5)
	if err != nil {
		t.Fatal(err)
	}
	e, err := inst.Embed(core.LowDepth)
	if err != nil {
		t.Fatal(err)
	}
	inputs := workload.Vectors(inst.N(), 48, 1000, core.DefaultSeed)
	plain, err := inst.Allreduce(e, inputs, netsim.Config{LinkLatency: 3, VCDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	cfg := netsim.Config{LinkLatency: 3, VCDepth: 4}
	c := obsv.NewCollector()
	c.Attach(&cfg)
	observed, err := inst.Allreduce(e, inputs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Cycles != observed.Cycles {
		t.Errorf("collector changed cycle count: %d vs %d", plain.Cycles, observed.Cycles)
	}
	if plain.FlitsSent != observed.FlitsSent {
		t.Errorf("collector changed flits sent: %d vs %d", plain.FlitsSent, observed.FlitsSent)
	}
	for v := range plain.Outputs {
		for k := range plain.Outputs[v] {
			if plain.Outputs[v][k] != observed.Outputs[v][k] {
				t.Fatalf("collector changed output at node %d element %d", v, k)
			}
		}
	}
}

// TestCollectorAgreesWithLinkStats cross-checks the trace-derived
// telemetry against the simulator's own Result.LinkStats counters.
func TestCollectorAgreesWithLinkStats(t *testing.T) {
	spec, cfg := lineSpec(5, 32), netsim.Config{LinkLatency: 6, VCDepth: 2}
	c := obsv.NewCollector()
	c.Attach(&cfg)
	res, err := netsim.Run(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.SetCycles(res.Cycles)
	rep := c.Report()
	if len(rep.Links) != len(res.LinkStats) {
		t.Fatalf("collector saw %d links, simulator reports %d", len(rep.Links), len(res.LinkStats))
	}
	for i, ls := range res.LinkStats {
		lr := rep.Links[i]
		if lr.From != ls.From || lr.To != ls.To {
			t.Fatalf("link %d order mismatch: collector %d→%d vs sim %d→%d", i, lr.From, lr.To, ls.From, ls.To)
		}
		if lr.Flits != ls.Flits {
			t.Errorf("link %d→%d: collector %d flits, sim %d", ls.From, ls.To, lr.Flits, ls.Flits)
		}
		if lr.BusyCycles != ls.BusyCycles {
			t.Errorf("link %d→%d: collector %d busy cycles, sim %d", ls.From, ls.To, lr.BusyCycles, ls.BusyCycles)
		}
		if lr.StallCycles != ls.StallCycles {
			t.Errorf("link %d→%d: collector %d stall cycles, sim %d", ls.From, ls.To, lr.StallCycles, ls.StallCycles)
		}
		if lr.PeakBufferFlits != ls.PeakBufferFlits {
			t.Errorf("link %d→%d: collector peak buffer %d, sim %d", ls.From, ls.To, lr.PeakBufferFlits, ls.PeakBufferFlits)
		}
		if lr.Utilization != ls.Utilization {
			t.Errorf("link %d→%d: collector utilization %g, sim %g", ls.From, ls.To, lr.Utilization, ls.Utilization)
		}
	}
	// The tight VC window must have produced stalls and a histogram.
	if rep.StallRuns.Count == 0 {
		t.Error("no stall runs recorded under VCDepth 2, latency 6")
	}
}

// TestDisableSpansMetricsIdentical pins the DisableSpans contract: span
// accumulation feeds only the Chrome trace exporter, so turning it off
// (as the perf gates do at q=31 scale, where spans are O(flits)) must
// leave the Metrics registry export and the Report byte-identical —
// including the stall-run histogram, which stays on.
func TestDisableSpansMetricsIdentical(t *testing.T) {
	// VCDepth 2 under latency 6 forces credit stalls, so the stall-run
	// histogram and the stall telemetry paths are exercised on both sides.
	run := func(disable bool) ([]byte, []byte) {
		spec, cfg := lineSpec(5, 32), netsim.Config{LinkLatency: 6, VCDepth: 2}
		c := obsv.NewCollector()
		c.DisableSpans = disable
		c.Attach(&cfg)
		res, err := netsim.Run(spec, cfg)
		if err != nil {
			t.Fatal(err)
		}
		c.SetCycles(res.Cycles)
		reg := obsv.NewRegistry()
		rep := c.Metrics(reg)
		if rep.StallRuns.Count == 0 {
			t.Fatal("no stall runs recorded under VCDepth 2, latency 6")
		}
		var mbuf, rbuf bytes.Buffer
		if err := reg.Snapshot().WriteJSON(&mbuf); err != nil {
			t.Fatal(err)
		}
		if err := json.NewEncoder(&rbuf).Encode(rep); err != nil {
			t.Fatal(err)
		}
		return mbuf.Bytes(), rbuf.Bytes()
	}
	withMetrics, withReport := run(false)
	withoutMetrics, withoutReport := run(true)
	if !bytes.Equal(withMetrics, withoutMetrics) {
		t.Error("DisableSpans changed the metrics export")
	}
	if !bytes.Equal(withReport, withoutReport) {
		t.Error("DisableSpans changed the report")
	}
}

func TestMetricsExport(t *testing.T) {
	c, rep, _ := collectRun(t, 3, 16, core.Hamiltonian, netsim.Config{LinkLatency: 2, VCDepth: 4})
	reg := obsv.NewRegistry()
	rep2 := c.Metrics(reg)
	if rep2.TotalFlits != rep.TotalFlits {
		t.Errorf("second report drifted: %d vs %d flits", rep2.TotalFlits, rep.TotalFlits)
	}
	snap := reg.Snapshot()
	if snap.Counters["sim.flits_total"] != int64(rep.TotalFlits) {
		t.Errorf("sim.flits_total = %d, want %d", snap.Counters["sim.flits_total"], rep.TotalFlits)
	}
	if snap.Gauges["sim.max_edge_congestion"] != 1 {
		t.Errorf("sim.max_edge_congestion = %g, want 1 for the Hamiltonian forest",
			snap.Gauges["sim.max_edge_congestion"])
	}
	found := false
	for name := range snap.Gauges {
		if len(name) > 5 && name[:5] == "link." {
			found = true
			break
		}
	}
	if !found {
		t.Error("no per-link metrics exported")
	}
	var buf bytes.Buffer
	if err := snap.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded obsv.Snapshot
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	var rbuf bytes.Buffer
	if err := json.NewEncoder(&rbuf).Encode(rep); err != nil {
		t.Fatalf("report is not JSON-serialisable: %v", err)
	}
}

// TestUnknownEventKindCounted: an event kind the collector has no switch
// arm for must land in the unknown-events counter — visible in the
// report and, only when nonzero, as the obsv_unknown_events metric — so
// a future netsim event kind cannot be dropped invisibly.
func TestUnknownEventKindCounted(t *testing.T) {
	c := obsv.NewCollector()
	c.Observe(netsim.TraceEvent{Kind: netsim.TraceEventKind(250), Cycle: 7})
	c.Observe(netsim.TraceEvent{Kind: netsim.TraceEventKind(251), Cycle: 9})
	c.Observe(netsim.TraceEvent{Kind: netsim.TraceSend, Cycle: 10, From: 0, To: 1})
	reg := obsv.NewRegistry()
	rep := c.Metrics(reg)
	if rep.UnknownEvents != 2 {
		t.Errorf("UnknownEvents = %d, want 2", rep.UnknownEvents)
	}
	if rep.Events != 3 {
		t.Errorf("Events = %d, want 3 (unknown events still count as events)", rep.Events)
	}
	if got := reg.Snapshot().Counters["obsv_unknown_events"]; got != 2 {
		t.Errorf("obsv_unknown_events = %d, want 2", got)
	}

	// A clean run must not register the counter at all, keeping metric
	// exports byte-identical to before the counter existed.
	clean, _, _ := collectRun(t, 3, 16, core.Hamiltonian, netsim.Config{LinkLatency: 2, VCDepth: 4})
	cleanReg := obsv.NewRegistry()
	if rep := clean.Metrics(cleanReg); rep.UnknownEvents != 0 {
		t.Errorf("clean run UnknownEvents = %d, want 0", rep.UnknownEvents)
	}
	if _, ok := cleanReg.Snapshot().Counters["obsv_unknown_events"]; ok {
		t.Error("clean run registered obsv_unknown_events; it must stay absent when zero")
	}
}

// TestPhaseBreakdown verifies the reduce/broadcast phase split: every
// tree's boundary sits at its root's last compute, the phases tile the
// run, and the run-level split matches the slowest tree.
func TestPhaseBreakdown(t *testing.T) {
	_, rep, res := collectRun(t, 5, 64, core.LowDepth, netsim.Config{LinkLatency: 2, VCDepth: 4})
	if rep.ReducePhaseCycles <= 0 || rep.BcastPhaseCycles <= 0 {
		t.Fatalf("phase split %d/%d, want both positive", rep.ReducePhaseCycles, rep.BcastPhaseCycles)
	}
	if got := rep.ReducePhaseCycles + rep.BcastPhaseCycles; got != res.Cycles {
		t.Errorf("phases sum to %d cycles, run took %d", got, res.Cycles)
	}
	maxReduce := 0
	for _, tr := range rep.Trees {
		if tr.ReduceCycles <= 0 {
			t.Errorf("tree %d: reduce phase %d cycles, want > 0", tr.Tree, tr.ReduceCycles)
		}
		if tr.BcastCycles <= 0 {
			t.Errorf("tree %d: broadcast phase %d cycles, want > 0", tr.Tree, tr.BcastCycles)
		}
		if end := tr.ReduceCycles + tr.BcastCycles; end > res.Cycles {
			t.Errorf("tree %d: phases end at cycle %d, after the run's %d", tr.Tree, end, res.Cycles)
		}
		if tr.ReduceCycles > maxReduce {
			maxReduce = tr.ReduceCycles
		}
	}
	if rep.ReducePhaseCycles != maxReduce {
		t.Errorf("run-level reduce phase %d, slowest tree finished reducing at %d",
			rep.ReducePhaseCycles, maxReduce)
	}
}

// TestPhaseBreakdownMetrics checks the phase split reaches the registry
// export.
func TestPhaseBreakdownMetrics(t *testing.T) {
	c, rep, _ := collectRun(t, 3, 32, core.Hamiltonian, netsim.Config{LinkLatency: 2, VCDepth: 4})
	reg := obsv.NewRegistry()
	c.Metrics(reg)
	snap := reg.Snapshot()
	if got := snap.Gauges["sim.reduce_phase_cycles"]; got != float64(rep.ReducePhaseCycles) {
		t.Errorf("sim.reduce_phase_cycles = %g, want %d", got, rep.ReducePhaseCycles)
	}
	if got := snap.Gauges["sim.bcast_phase_cycles"]; got != float64(rep.BcastPhaseCycles) {
		t.Errorf("sim.bcast_phase_cycles = %g, want %d", got, rep.BcastPhaseCycles)
	}
}
