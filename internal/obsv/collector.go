package obsv

import (
	"sort"

	"polarfly/internal/faults"
	"polarfly/internal/netsim"
)

// Collector aggregates a netsim trace stream into per-link and per-tree
// telemetry. Attach it to a run with Attach (or set Config.Trace to
// Observe directly); it never mutates simulator state, so a run with a
// collector attached produces bit-identical results to one without.
type Collector struct {
	// LinkLatency extends Chrome-trace spans to the flit's arrival; set
	// by Attach from the Config, 1 if never set.
	LinkLatency int
	// SpanMergeGap coalesces Chrome-trace spans: activity on one stream
	// separated by at most this many idle cycles renders as one span
	// (the span's flit count still reports the true density). Without
	// it, round-robin arbitration under congestion — one flit every
	// other cycle — would emit one sliver per flit. Attach sets it to
	// the link latency; 1 if never set. The stall-run histogram is not
	// affected: it always uses strictly consecutive cycles.
	SpanMergeGap int
	// DisableSpans turns off transmit/stall span accumulation. Spans
	// feed only the Chrome trace exporter, but they are O(bursts) —
	// under multi-tree round-robin interleaving effectively O(flits) —
	// which at §7.3 scale (q=31, m≈2·10⁵) is tens of gigabytes. The
	// perf gates never export Chrome traces, so they set this; the
	// Metrics report is byte-identical either way (it reads none of the
	// span state). The stall-run histogram still accumulates.
	DisableSpans bool

	cycles   int // highest cycle observed; override with SetCycles
	setCycle bool

	arena    netsim.ArenaFootprint // simulator memory footprint; see SetArena
	setArena bool

	links map[[2]int]*linkTelemetry
	trees map[int]*treeTelemetry

	bursts        map[streamKey]*burst // open transmit bursts (Chrome spans)
	stallOpen     map[streamKey]*burst // open stall spans
	stallRuns     map[streamKey]*burst // open strictly-consecutive stall runs
	spans         []Span
	runLengths    []int // closed stall-run lengths in cycles
	events        int
	totalFlits    int
	unknownEvents int // events whose Kind matched no switch arm

	// Fault telemetry, in event order (empty on fault-free runs).
	faultMarks   []FaultMark
	recoverMarks []RecoverMark
	dropped      int
}

// FaultMark is one fault activation observed in the trace stream.
type FaultMark struct {
	// Cycle is the activation cycle; Kind the faults.Kind as an int.
	Cycle int `json:"cycle"`
	Kind  int `json:"kind"`
	// U and V are the link endpoints (both the router for engine stalls).
	U int `json:"u"`
	V int `json:"v"`
	// DroppedAtActivation is how many in-flight flits the fault destroyed.
	DroppedAtActivation int `json:"dropped_at_activation"`
}

// RecoverMark is one recovery round observed in the trace stream.
type RecoverMark struct {
	Cycle int `json:"cycle"`
	// U and V identify the first suspect link of the round.
	U int `json:"u"`
	V int `json:"v"`
	// Reissued is the number of elements redistributed to survivors;
	// Remaining the elements still incomplete after the re-issue.
	Reissued  int `json:"reissued"`
	Remaining int `json:"remaining"`
	// LatencyCycles is the detection latency: cycles since the most
	// recent lossy fault activation at or before this recovery,
	// preferring a fault on the round's suspect link (-1 if the stream
	// carried no lossy fault event, which would be a simulator bug).
	LatencyCycles int `json:"latency_cycles"`
}

type streamKey struct{ from, to, tree, phase int }

type burst struct {
	start, last int
	flits       int
}

type linkTelemetry struct {
	from, to    int
	flits       int
	busyCycles  int
	lastBusy    int // marker: last cycle counted busy
	stallCycles int
	lastStall   int
	peakBuffer  int
	dropped     int // flits destroyed by faults on this link
	// flits by (tree, phase) — the heatmap's raw cells.
	byTreePhase map[[2]int]int
}

type treeTelemetry struct {
	reduceFlits, bcastFlits, computeFlits int

	// rootDoneCycle is the cycle of the tree's last root-compute event —
	// the moment the final reduce-phase flit arrived at the tree root.
	// lastBcastCycle is the last broadcast-phase delivery. Together they
	// split the tree's span into a reduce and a broadcast phase.
	rootDoneCycle  int
	lastBcastCycle int
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{
		LinkLatency:  1,
		SpanMergeGap: 1,
		links:        make(map[[2]int]*linkTelemetry),
		trees:        make(map[int]*treeTelemetry),
		bursts:       make(map[streamKey]*burst),
		stallOpen:    make(map[streamKey]*burst),
		stallRuns:    make(map[streamKey]*burst),
	}
}

// Attach hooks the collector into a simulation config, chaining any trace
// hook already installed, and adopts the config's link latency for span
// rendering. Call before netsim.Run.
func (c *Collector) Attach(cfg *netsim.Config) {
	if cfg.LinkLatency >= 1 {
		c.LinkLatency = cfg.LinkLatency
		c.SpanMergeGap = cfg.LinkLatency
	}
	prev := cfg.Trace
	cfg.Trace = func(ev netsim.TraceEvent) {
		c.Observe(ev)
		if prev != nil {
			prev(ev)
		}
	}
}

func (c *Collector) link(from, to int) *linkTelemetry {
	key := [2]int{from, to}
	lt, ok := c.links[key]
	if !ok {
		lt = &linkTelemetry{from: from, to: to, byTreePhase: make(map[[2]int]int)}
		c.links[key] = lt
	}
	return lt
}

func (c *Collector) tree(ti int) *treeTelemetry {
	tt, ok := c.trees[ti]
	if !ok {
		tt = &treeTelemetry{}
		c.trees[ti] = tt
	}
	return tt
}

// Observe consumes one trace event. It is the netsim.Config.Trace
// callback; events must arrive in the simulator's deterministic order.
func (c *Collector) Observe(ev netsim.TraceEvent) {
	c.events++
	if ev.Cycle > c.cycles && !c.setCycle {
		c.cycles = ev.Cycle
	}
	switch ev.Kind {
	case netsim.TraceSend:
		lt := c.link(ev.From, ev.To)
		lt.flits++
		if lt.lastBusy != ev.Cycle {
			lt.lastBusy = ev.Cycle
			lt.busyCycles++
		}
		lt.byTreePhase[[2]int{ev.Tree, ev.Phase}]++
		tt := c.tree(ev.Tree)
		if ev.Phase == 0 {
			tt.reduceFlits++
		} else {
			tt.bcastFlits++
		}
		c.totalFlits++
		if !c.DisableSpans {
			c.extendBurst(c.bursts, streamKey{ev.From, ev.To, ev.Tree, ev.Phase}, ev.Cycle, true)
		}
	case netsim.TraceStall:
		lt := c.link(ev.From, ev.To)
		if lt.lastStall != ev.Cycle {
			lt.lastStall = ev.Cycle
			lt.stallCycles++
		}
		key := streamKey{ev.From, ev.To, ev.Tree, ev.Phase}
		if !c.DisableSpans {
			c.extendBurst(c.stallOpen, key, ev.Cycle, false)
		}
		c.extendRun(key, ev.Cycle)
	case netsim.TraceBufferOccupancy:
		lt := c.link(ev.From, ev.To)
		if int(ev.Value) > lt.peakBuffer {
			lt.peakBuffer = int(ev.Value)
		}
	case netsim.TraceRootCompute:
		tt := c.tree(ev.Tree)
		tt.computeFlits++
		if ev.Cycle > tt.rootDoneCycle {
			tt.rootDoneCycle = ev.Cycle
		}
	case netsim.TraceArrive:
		// Deliveries mirror sends one link latency later; counting both
		// would double every link aggregate, so arrivals are not added to
		// the link counters. Broadcast arrivals do mark the phase split:
		// the last one closes the tree's broadcast phase.
		if ev.Phase == 1 {
			tt := c.tree(ev.Tree)
			if ev.Cycle > tt.lastBcastCycle {
				tt.lastBcastCycle = ev.Cycle
			}
		}
	case netsim.TraceFault:
		c.faultMarks = append(c.faultMarks, FaultMark{
			Cycle: ev.Cycle, Kind: ev.Phase, U: ev.From, V: ev.To,
			DroppedAtActivation: int(ev.Value),
		})
	case netsim.TraceDrop:
		c.dropped++
		lt := c.link(ev.From, ev.To)
		lt.dropped++
	case netsim.TraceRecover:
		mark := RecoverMark{
			Cycle: ev.Cycle, U: ev.From, V: ev.To,
			Reissued: ev.Flit, Remaining: int(ev.Value),
			LatencyCycles: -1,
		}
		// Pair with the latest lossy fault at or before the recovery,
		// preferring one on the round's own suspect link: degraded/stall
		// window openings and other links' storm pulses never trigger
		// timeouts, so pairing with them would misreport the latency.
		for i := len(c.faultMarks) - 1; i >= 0; i-- {
			fm := c.faultMarks[i]
			if fm.Cycle > ev.Cycle || !faults.Kind(fm.Kind).Lossy() {
				continue
			}
			if mark.LatencyCycles < 0 {
				mark.LatencyCycles = ev.Cycle - fm.Cycle
			}
			if (fm.U == ev.From && fm.V == ev.To) || (fm.U == ev.To && fm.V == ev.From) {
				mark.LatencyCycles = ev.Cycle - fm.Cycle
				break
			}
		}
		c.recoverMarks = append(c.recoverMarks, mark)
	default:
		// A kind this collector does not know about — most likely a new
		// netsim event added without a matching arm here. Count it so the
		// omission is visible in the report instead of silently dropped.
		c.unknownEvents++
	}
}

// extendBurst grows the open span burst for key, or closes it into spans
// and opens a new one once the idle gap exceeds SpanMergeGap.
func (c *Collector) extendBurst(open map[streamKey]*burst, key streamKey, cycle int, xmit bool) {
	gap := c.SpanMergeGap
	if gap < 1 {
		gap = 1
	}
	b, ok := open[key]
	if ok && cycle <= b.last+gap {
		b.last = cycle
		b.flits++
		return
	}
	if ok {
		c.closeBurst(key, b, xmit)
	}
	open[key] = &burst{start: cycle, last: cycle, flits: 1}
}

// extendRun tracks strictly-consecutive stall cycles for the histogram.
func (c *Collector) extendRun(key streamKey, cycle int) {
	b, ok := c.stallRuns[key]
	if ok && cycle == b.last+1 {
		b.last = cycle
		return
	}
	if ok {
		c.runLengths = append(c.runLengths, b.last-b.start+1)
	}
	c.stallRuns[key] = &burst{start: cycle, last: cycle, flits: 1}
}

func (c *Collector) closeBurst(key streamKey, b *burst, xmit bool) {
	kind := SpanStall
	if xmit {
		kind = SpanTransmit
	}
	c.spans = append(c.spans, Span{
		From: key.from, To: key.to, Tree: key.tree, Phase: key.phase,
		Start: b.start, End: b.last, Flits: b.flits, Kind: kind,
	})
}

// SetCycles pins the run length used for utilization (e.g. to the
// simulator's Result.Cycles); otherwise the highest event cycle is used.
func (c *Collector) SetCycles(cycles int) {
	c.cycles = cycles
	c.setCycle = true
}

// SetArena records the simulator's construction-time memory footprint
// (Result.Arena) so Metrics can export it; the trace stream itself
// carries no sizing information. Exported only when set, keeping metric
// exports byte-identical for callers that never call it.
func (c *Collector) SetArena(a netsim.ArenaFootprint) {
	c.arena = a
	c.setArena = true
}

// SpanKind distinguishes Chrome-trace span flavours.
type SpanKind int

const (
	// SpanTransmit is a contiguous burst of flit injections on one
	// (directed link, tree, phase) stream.
	SpanTransmit SpanKind = iota
	// SpanStall is a run of consecutive credit-stalled cycles on one
	// stream.
	SpanStall
)

// Span is one contiguous activity interval on a stream, in cycles
// [Start, End] inclusive.
type Span struct {
	From, To    int
	Tree, Phase int
	Start, End  int
	Flits       int
	Kind        SpanKind
}

// flush closes all open bursts so spans and stall runs are complete.
// Observing further events after a flush is not supported.
func (c *Collector) flush() {
	closeAll := func(m map[streamKey]*burst, xmit bool) {
		keys := make([]streamKey, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return lessStream(keys[i], keys[j]) })
		for _, k := range keys {
			c.closeBurst(k, m[k], xmit)
			delete(m, k)
		}
	}
	closeAll(c.bursts, true)
	closeAll(c.stallOpen, false)
	rkeys := make([]streamKey, 0, len(c.stallRuns))
	for k := range c.stallRuns {
		rkeys = append(rkeys, k)
	}
	sort.Slice(rkeys, func(i, j int) bool { return lessStream(rkeys[i], rkeys[j]) })
	for _, k := range rkeys {
		b := c.stallRuns[k]
		c.runLengths = append(c.runLengths, b.last-b.start+1)
		delete(c.stallRuns, k)
	}
	sort.Slice(c.spans, func(i, j int) bool {
		a, b := c.spans[i], c.spans[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.From != b.From {
			return a.From < b.From
		}
		if a.To != b.To {
			return a.To < b.To
		}
		if a.Tree != b.Tree {
			return a.Tree < b.Tree
		}
		if a.Phase != b.Phase {
			return a.Phase < b.Phase
		}
		return a.Kind < b.Kind
	})
}

func lessStream(a, b streamKey) bool {
	if a.from != b.from {
		return a.from < b.from
	}
	if a.to != b.to {
		return a.to < b.to
	}
	if a.tree != b.tree {
		return a.tree < b.tree
	}
	return a.phase < b.phase
}

// LinkReport is the exported per-directed-link aggregate.
type LinkReport struct {
	From            int     `json:"from"`
	To              int     `json:"to"`
	Flits           int     `json:"flits"`
	Utilization     float64 `json:"utilization"`
	BusyCycles      int     `json:"busy_cycles"`
	StallCycles     int     `json:"stall_cycles"`
	PeakBufferFlits int     `json:"peak_buffer_flits"`
	// DroppedFlits counts flits destroyed on this link by faults.
	DroppedFlits int `json:"dropped_flits,omitempty"`
	// Trees lists the distinct trees with traffic on this directed link.
	Trees []int `json:"trees"`
	// ByTreePhase details flit counts per (tree, phase) stream.
	ByTreePhase []StreamFlits `json:"streams"`
}

// StreamFlits is one (tree, phase) cell of the congestion heatmap.
type StreamFlits struct {
	Tree  int `json:"tree"`
	Phase int `json:"phase"`
	Flits int `json:"flits"`
}

// TreeReport is the exported per-tree aggregate. The phase split places
// the boundary at the tree root's last reduce arrival: ReduceCycles is
// the cycle the root computed its final flit, BcastCycles the tail from
// there to the last broadcast delivery. The phases pipeline — early
// flits broadcast while late flits still reduce — so the split
// attributes each tree's span to the phase its slowest flit was in, not
// to exclusive occupancy.
type TreeReport struct {
	Tree         int `json:"tree"`
	ReduceFlits  int `json:"reduce_flits"`
	BcastFlits   int `json:"bcast_flits"`
	ComputeFlits int `json:"compute_flits"`
	// ReduceCycles is the cycle of the last root-compute event (0 when the
	// run had no reduce phase).
	ReduceCycles int `json:"reduce_cycles"`
	// BcastCycles is the span from the root's last compute to the last
	// broadcast delivery (0 when the run had no broadcast phase).
	BcastCycles int `json:"bcast_cycles"`
}

// HeatmapCell aggregates one undirected physical link of the congestion
// heatmap: which trees crossed it (in either direction) and how hot it
// ran. Theorem 7.6 bounds len(Trees) by 2 for the low-depth forest;
// Theorem 7.19's edge-disjoint forest pins it at 1.
type HeatmapCell struct {
	U     int   `json:"u"`
	V     int   `json:"v"`
	Trees []int `json:"trees"`
	Flits int   `json:"flits"`
}

// Report is the full telemetry summary of one run.
type Report struct {
	Cycles     int `json:"cycles"`
	TotalFlits int `json:"total_flits"`
	Events     int `json:"events"`
	// UnknownEvents counts trace events whose Kind the collector did not
	// recognise — nonzero means a netsim event kind was added without a
	// collector arm and its telemetry is missing from this report.
	UnknownEvents int           `json:"unknown_events,omitempty"`
	Links         []LinkReport  `json:"links"`
	Trees         []TreeReport  `json:"trees"`
	Heatmap       []HeatmapCell `json:"heatmap"`
	// MaxEdgeCongestion is the most trees observed crossing one
	// undirected link — the measured Theorem 7.6 quantity.
	MaxEdgeCongestion int `json:"max_edge_congestion"`
	// SharedDirectedLinks counts directed links that carried flits of two
	// or more trees in the same direction (any phase). Zero for the
	// edge-disjoint Hamiltonian forest (Thm. 7.19).
	SharedDirectedLinks int `json:"shared_directed_links"`
	// SharedSamePhaseLinks counts (directed link, phase) streams shared
	// by two or more trees. Zero whenever Lemma 7.8 holds.
	SharedSamePhaseLinks int `json:"shared_same_phase_links"`
	// MaxLinkUtilization is the hottest directed link's utilization.
	MaxLinkUtilization float64 `json:"max_link_utilization"`
	// ReducePhaseCycles is the run-level reduce/broadcast boundary: the
	// latest root-compute cycle across all trees. BcastPhaseCycles is the
	// remainder of the run. Model error can be attributed to a phase by
	// comparing these against the model's symmetric m/ΣB_i halves.
	ReducePhaseCycles int `json:"reduce_phase_cycles"`
	BcastPhaseCycles  int `json:"bcast_phase_cycles"`
	// StallRuns is a histogram of consecutive-stall run lengths (cycles).
	StallRuns HistogramSnapshot `json:"stall_runs"`
	// Fault telemetry (zero/empty on fault-free runs): every fault
	// activation and recovery round in event order, and the total flits
	// destroyed.
	Faults       []FaultMark   `json:"faults,omitempty"`
	Recoveries   []RecoverMark `json:"recoveries,omitempty"`
	DroppedFlits int           `json:"dropped_flits,omitempty"`
	// PostRecoveryBW is the measured aggregate bandwidth after the last
	// recovery (elements still incomplete at the recovery, divided by the
	// cycles the run took from there) — the degraded-bandwidth gauge the
	// core.Degrade prediction is checked against. Zero without recovery.
	PostRecoveryBW float64 `json:"post_recovery_bw,omitempty"`
}

// Report finalises the collector (closing open bursts) and returns the
// aggregated telemetry. Deterministic: all slices are sorted.
func (c *Collector) Report() *Report {
	c.flush()
	r := &Report{
		Cycles:        c.cycles,
		TotalFlits:    c.totalFlits,
		Events:        c.events,
		UnknownEvents: c.unknownEvents,
	}

	keys := make([][2]int, 0, len(c.links))
	for k := range c.links {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})

	undirected := make(map[[2]int]*HeatmapCell)
	for _, k := range keys {
		lt := c.links[k]
		lr := LinkReport{
			From: lt.from, To: lt.to,
			Flits:           lt.flits,
			BusyCycles:      lt.busyCycles,
			StallCycles:     lt.stallCycles,
			PeakBufferFlits: lt.peakBuffer,
			DroppedFlits:    lt.dropped,
		}
		if c.cycles > 0 {
			lr.Utilization = float64(lt.busyCycles) / float64(c.cycles)
		}
		if lr.Utilization > r.MaxLinkUtilization {
			r.MaxLinkUtilization = lr.Utilization
		}
		treeSet := make(map[int]bool)
		phaseTrees := make(map[int]map[int]bool)
		for tp, flits := range lt.byTreePhase {
			treeSet[tp[0]] = true
			if phaseTrees[tp[1]] == nil {
				phaseTrees[tp[1]] = make(map[int]bool)
			}
			phaseTrees[tp[1]][tp[0]] = true
			lr.ByTreePhase = append(lr.ByTreePhase, StreamFlits{Tree: tp[0], Phase: tp[1], Flits: flits})
		}
		sort.Slice(lr.ByTreePhase, func(i, j int) bool {
			a, b := lr.ByTreePhase[i], lr.ByTreePhase[j]
			if a.Tree != b.Tree {
				return a.Tree < b.Tree
			}
			return a.Phase < b.Phase
		})
		for t := range treeSet {
			lr.Trees = append(lr.Trees, t)
		}
		sort.Ints(lr.Trees)
		if len(lr.Trees) >= 2 {
			r.SharedDirectedLinks++
		}
		for _, trees := range phaseTrees {
			if len(trees) >= 2 {
				r.SharedSamePhaseLinks++
			}
		}
		r.Links = append(r.Links, lr)

		uk := [2]int{lt.from, lt.to}
		if uk[0] > uk[1] {
			uk[0], uk[1] = uk[1], uk[0]
		}
		cell, ok := undirected[uk]
		if !ok {
			cell = &HeatmapCell{U: uk[0], V: uk[1]}
			undirected[uk] = cell
		}
		cell.Flits += lt.flits
		for t := range treeSet {
			found := false
			for _, have := range cell.Trees {
				if have == t {
					found = true
					break
				}
			}
			if !found {
				cell.Trees = append(cell.Trees, t)
			}
		}
	}

	ukeys := make([][2]int, 0, len(undirected))
	for k := range undirected {
		ukeys = append(ukeys, k)
	}
	sort.Slice(ukeys, func(i, j int) bool {
		if ukeys[i][0] != ukeys[j][0] {
			return ukeys[i][0] < ukeys[j][0]
		}
		return ukeys[i][1] < ukeys[j][1]
	})
	for _, k := range ukeys {
		cell := undirected[k]
		sort.Ints(cell.Trees)
		if len(cell.Trees) > r.MaxEdgeCongestion {
			r.MaxEdgeCongestion = len(cell.Trees)
		}
		r.Heatmap = append(r.Heatmap, *cell)
	}

	tkeys := make([]int, 0, len(c.trees))
	for t := range c.trees {
		tkeys = append(tkeys, t)
	}
	sort.Ints(tkeys)
	for _, t := range tkeys {
		tt := c.trees[t]
		tr := TreeReport{
			Tree: t, ReduceFlits: tt.reduceFlits, BcastFlits: tt.bcastFlits, ComputeFlits: tt.computeFlits,
			ReduceCycles: tt.rootDoneCycle,
		}
		if tt.lastBcastCycle > tt.rootDoneCycle {
			tr.BcastCycles = tt.lastBcastCycle - tt.rootDoneCycle
		}
		if tr.ReduceCycles > r.ReducePhaseCycles {
			r.ReducePhaseCycles = tr.ReduceCycles
		}
		r.Trees = append(r.Trees, tr)
	}
	if r.Cycles > r.ReducePhaseCycles {
		r.BcastPhaseCycles = r.Cycles - r.ReducePhaseCycles
	}

	bounds := DefaultStallBuckets()
	hist := &Histogram{bounds: bounds, counts: make([]int64, len(bounds)+1)}
	for _, run := range c.runLengths {
		hist.Observe(float64(run))
	}
	r.StallRuns = hist.snapshot()

	r.Faults = append(r.Faults, c.faultMarks...)
	r.Recoveries = append(r.Recoveries, c.recoverMarks...)
	r.DroppedFlits = c.dropped
	if n := len(c.recoverMarks); n > 0 {
		last := c.recoverMarks[n-1]
		if r.Cycles > last.Cycle {
			r.PostRecoveryBW = float64(last.Remaining) / float64(r.Cycles-last.Cycle)
		}
	}
	return r
}

// Metrics populates a fresh Registry from the collector's aggregates, so
// the telemetry can be exported through the standard snapshot formats.
// Link-scoped metric names embed the directed link as "u->v". The report
// it derives from is also returned.
func (c *Collector) Metrics(reg *Registry) *Report {
	rep := c.Report()
	reg.Counter("sim.cycles").Add(int64(rep.Cycles))
	reg.Counter("sim.flits_total").Add(int64(rep.TotalFlits))
	reg.Counter("sim.trace_events").Add(int64(rep.Events))
	if rep.UnknownEvents > 0 {
		// Registered only when nonzero so clean runs keep byte-identical
		// metric exports.
		reg.Counter("obsv_unknown_events").Add(int64(rep.UnknownEvents))
	}
	reg.Gauge("sim.max_link_utilization").Set(rep.MaxLinkUtilization)
	reg.Gauge("sim.max_edge_congestion").Set(float64(rep.MaxEdgeCongestion))
	reg.Gauge("sim.shared_directed_links").Set(float64(rep.SharedDirectedLinks))
	reg.Gauge("sim.reduce_phase_cycles").Set(float64(rep.ReducePhaseCycles))
	reg.Gauge("sim.bcast_phase_cycles").Set(float64(rep.BcastPhaseCycles))
	if c.setArena {
		reg.Gauge("sim.arena_bytes").Set(float64(c.arena.TotalBytes))
		reg.Gauge("sim.arena.node_tree_bytes").Set(float64(c.arena.NodeTreeBytes))
		reg.Gauge("sim.arena.flow_bytes").Set(float64(c.arena.FlowBytes))
		reg.Gauge("sim.arena.vc_buffer_bytes").Set(float64(c.arena.VCBufferBytes))
		reg.Gauge("sim.arena.link_bytes").Set(float64(c.arena.LinkBytes + c.arena.PipelineBytes))
		reg.Gauge("sim.arena.output_bytes").Set(float64(c.arena.OutputBytes))
		reg.Gauge("sim.arena.event_bytes").Set(float64(c.arena.EventBytes))
	}
	if len(rep.Faults) > 0 || rep.DroppedFlits > 0 {
		reg.Counter("sim.faults").Add(int64(len(rep.Faults)))
		reg.Counter("sim.recoveries").Add(int64(len(rep.Recoveries)))
		reg.Counter("sim.dropped_flits").Add(int64(rep.DroppedFlits))
		reg.Gauge("sim.post_recovery_bw").Set(rep.PostRecoveryBW)
		if n := len(rep.Recoveries); n > 0 {
			reg.Gauge("sim.recovery_latency_cycles").Set(float64(rep.Recoveries[n-1].LatencyCycles))
		}
	}
	for _, lr := range rep.Links {
		name := "link." + linkName(lr.From, lr.To)
		reg.Counter(name + ".flits").Add(int64(lr.Flits))
		reg.Counter(name + ".stall_cycles").Add(int64(lr.StallCycles))
		reg.Gauge(name + ".utilization").Set(lr.Utilization)
	}
	h := reg.Histogram("sim.stall_run_cycles", DefaultStallBuckets())
	for _, run := range c.runLengths {
		h.Observe(float64(run))
	}
	return rep
}
