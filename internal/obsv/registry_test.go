package obsv

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestCounterGaugeHistogram(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("flits")
	c.Add(5)
	c.Inc()
	if got := c.Value(); got != 6 {
		t.Errorf("counter = %d, want 6", got)
	}
	if reg.Counter("flits") != c {
		t.Error("Counter not idempotent by name")
	}

	g := reg.Gauge("util")
	g.Set(0.75)
	if got := g.Value(); got != 0.75 {
		t.Errorf("gauge = %g, want 0.75", got)
	}

	h := reg.Histogram("lat", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	s := h.snapshot()
	// 0.5,1 → le=1; 1.5 → le=2; 3 → le=4; 100 → overflow.
	want := []int64{2, 1, 1, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d (%+v)", i, s.Counts[i], w, s)
		}
	}
	if s.Count != 5 || s.Sum != 106 {
		t.Errorf("count %d sum %g, want 5 and 106", s.Count, s.Sum)
	}
}

func TestRegistryTypeCollision(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x")
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge did not panic")
		}
	}()
	reg.Gauge("x")
}

func TestSnapshotDeterministicExports(t *testing.T) {
	build := func() Snapshot {
		reg := NewRegistry()
		reg.Counter("b.count").Add(2)
		reg.Counter("a.count").Add(1)
		reg.Gauge("z.util").Set(0.5)
		reg.Histogram("h.lat", []float64{1, 10}).Observe(3)
		return reg.Snapshot()
	}
	var j1, j2, t1, t2 bytes.Buffer
	s1, s2 := build(), build()
	if err := s1.WriteJSON(&j1); err != nil {
		t.Fatal(err)
	}
	if err := s2.WriteJSON(&j2); err != nil {
		t.Fatal(err)
	}
	if j1.String() != j2.String() {
		t.Error("JSON snapshots of identical registries differ")
	}
	if err := s1.WriteText(&t1); err != nil {
		t.Fatal(err)
	}
	if err := s2.WriteText(&t2); err != nil {
		t.Fatal(err)
	}
	if t1.String() != t2.String() {
		t.Error("text snapshots of identical registries differ")
	}

	var decoded Snapshot
	if err := json.Unmarshal(j1.Bytes(), &decoded); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
	if decoded.Counters["a.count"] != 1 || decoded.Counters["b.count"] != 2 {
		t.Errorf("decoded counters %+v", decoded.Counters)
	}
	for _, want := range []string{"a.count 1", "z.util 0.5", "h.lat{le=1} 0", "h.lat{le=10} 1", "h.lat{le=+Inf} 0", "h.lat_count 1"} {
		if !strings.Contains(t1.String(), want) {
			t.Errorf("text export missing %q:\n%s", want, t1.String())
		}
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", b, want)
		}
	}
}

// TestHistogramDuplicateName pins the registry's duplicate-name
// contract for histograms: re-registering the name as another metric
// type panics, while re-registering it as a histogram returns the
// original instance with its first-registration bounds intact.
func TestHistogramDuplicateName(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("dup", []float64{1, 2, 4})
	if reg.Histogram("dup", []float64{8, 16}) != h {
		t.Error("histogram re-registration did not return the original instance")
	}
	h.Observe(3)
	if s := h.snapshot(); len(s.Bounds) != 3 || s.Bounds[2] != 4 {
		t.Errorf("bounds %v changed after re-registration, want the first registration's {1,2,4}", s.Bounds)
	}
	defer func() {
		if recover() == nil {
			t.Error("re-registering a histogram name as a counter did not panic")
		}
	}()
	reg.Counter("dup")
}

// TestDefaultStallBuckets keeps the shared stall-run bucket layout
// strictly increasing and wide enough for kilocycle stalls.
func TestDefaultStallBuckets(t *testing.T) {
	b := DefaultStallBuckets()
	if len(b) != 12 || b[0] != 1 || b[len(b)-1] != 2048 {
		t.Fatalf("DefaultStallBuckets() = %v, want 12 powers of two from 1 to 2048", b)
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("bounds not strictly increasing at %d: %v", i, b)
		}
	}
}
