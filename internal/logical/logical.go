// Package logical models the SHARP-style alternative the paper argues
// against in §4.4: Allreduce trees whose parent/child relations are
// *logical* — defined between arbitrary routers — with the physical
// routing path of each logical edge chosen by the routing algorithm at
// runtime. Logical edges between non-adjacent routers expand to multi-hop
// physical paths that can overlap, creating the "path conflicts" the paper
// cites; congestion arises even within a single logical tree, which cannot
// happen for physically embedded trees (§5.1).
//
// The package builds classic logical aggregation trees (binomial and
// k-ary), expands them over a deterministic routing table, measures
// physical-link congestion, and evaluates achievable bandwidth with a
// generalisation of Algorithm 1 that accounts for one tree loading a link
// multiple times.
package logical

import (
	"fmt"
	"sort"

	"polarfly/internal/routing"
)

// Tree is a logical aggregation tree: Parent[v] may be any router, not
// necessarily a neighbor of v.
type Tree struct {
	Root   int
	Parent []int
}

// Binomial returns the binomial (hypercube-style) logical tree over n
// routers rooted at 0: router v's parent clears v's lowest set bit. This
// is the canonical software-defined aggregation shape.
func Binomial(n int) *Tree {
	if n < 1 {
		panic("logical: need at least one router")
	}
	t := &Tree{Root: 0, Parent: make([]int, n)}
	for v := 1; v < n; v++ {
		t.Parent[v] = v &^ (v & -v)
	}
	t.Parent[0] = -1
	return t
}

// KAry returns a k-ary heap-shaped logical tree rooted at 0: router v's
// parent is (v−1)/k.
func KAry(n, k int) *Tree {
	if n < 1 || k < 1 {
		panic("logical: invalid k-ary shape")
	}
	t := &Tree{Root: 0, Parent: make([]int, n)}
	t.Parent[0] = -1
	for v := 1; v < n; v++ {
		t.Parent[v] = (v - 1) / k
	}
	return t
}

// Embedding is a logical tree expanded onto physical links.
type Embedding struct {
	Tree *Tree
	// Load[l] is the number of logical-edge paths crossing directed
	// physical link l. Both reduction (child→parent direction) and
	// broadcast (reverse) are counted on their respective directions,
	// so Load is per directed link.
	Load map[[2]int]int
	// MaxLoad is the bottleneck congestion.
	MaxLoad int
	// TotalHops is the physical path length summed over logical edges
	// (dilation × edges).
	TotalHops int
	// MaxLogicalDepth is the logical hop depth of the tree; physical
	// latency is TotalPathDepth.
	MaxLogicalDepth int
	// MaxPhysicalDepth is the worst-case physical hops from a leaf to the
	// root (latency proxy comparable to physical trees' depth).
	MaxPhysicalDepth int
}

// Expand routes every logical edge over rt and accumulates physical link
// loads. Reduction traffic uses the child→parent direction of each path;
// broadcast retraces it in reverse, loading the opposite directions
// symmetrically (so analysing one direction suffices; Expand records the
// reduction direction).
func Expand(t *Tree, rt *routing.Table) (*Embedding, error) {
	n := len(t.Parent)
	e := &Embedding{Tree: t, Load: make(map[[2]int]int)}
	depth := make([]int, n)     // logical depth
	physDepth := make([]int, n) // accumulated physical hops to root
	order := topoOrder(t)
	if order == nil {
		return nil, fmt.Errorf("logical: tree has a cycle or invalid parents")
	}
	for _, v := range order {
		p := t.Parent[v]
		if p < 0 {
			continue
		}
		links := rt.Links(v, p)
		for _, l := range links {
			e.Load[l]++
		}
		e.TotalHops += len(links)
		depth[v] = depth[p] + 1
		physDepth[v] = physDepth[p] + len(links)
		if depth[v] > e.MaxLogicalDepth {
			e.MaxLogicalDepth = depth[v]
		}
		if physDepth[v] > e.MaxPhysicalDepth {
			e.MaxPhysicalDepth = physDepth[v]
		}
	}
	for _, c := range e.Load {
		if c > e.MaxLoad {
			e.MaxLoad = c
		}
	}
	return e, nil
}

// topoOrder returns vertices in root-first order, or nil if the parent
// array is cyclic/invalid.
func topoOrder(t *Tree) []int {
	n := len(t.Parent)
	children := make([][]int, n)
	root := -1
	for v, p := range t.Parent {
		if p == -1 {
			if root != -1 {
				return nil
			}
			root = v
			continue
		}
		if p < 0 || p >= n {
			return nil
		}
		children[p] = append(children[p], v)
	}
	if root == -1 {
		return nil
	}
	order := make([]int, 0, n)
	stack := []int{root}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		order = append(order, v)
		stack = append(stack, children[v]...)
	}
	if len(order) != n {
		return nil
	}
	return order
}

// Bandwidth returns the per-tree Allreduce bandwidth of a set of logical
// embeddings sharing the fabric, generalising Algorithm 1 to multiplicity:
// a tree whose paths cross a link k times consumes k shares of that link.
// For a single embedding this reduces to B / MaxLoad.
func Bandwidth(embs []*Embedding, linkB float64) []float64 {
	if linkB <= 0 {
		panic("logical: link bandwidth must be positive")
	}
	// Remaining capacity and per-(link, tree) multiplicity.
	avail := make(map[[2]int]float64)
	mult := make([]map[[2]int]int, len(embs))
	totalMult := make(map[[2]int]int)
	for i, e := range embs {
		mult[i] = e.Load
		for l, k := range e.Load {
			avail[l] = linkB
			totalMult[l] += k
		}
	}
	out := make([]float64, len(embs))
	active := make([]bool, len(embs))
	remaining := 0
	for i := range embs {
		if len(embs[i].Load) > 0 {
			active[i] = true
			remaining++
		}
	}
	// Sorted candidate links make the bottleneck argmin break ties the
	// same way on every run instead of following map iteration order.
	links := make([][2]int, 0, len(totalMult))
	for l := range totalMult {
		links = append(links, l)
	}
	sort.Slice(links, func(i, j int) bool {
		if links[i][0] != links[j][0] {
			return links[i][0] < links[j][0]
		}
		return links[i][1] < links[j][1]
	})
	for remaining > 0 {
		// Bottleneck link: minimum avail/totalMult.
		var lmin [2]int
		best := -1.0
		for _, l := range links {
			tm := totalMult[l]
			if tm <= 0 {
				continue
			}
			share := avail[l] / float64(tm)
			if best < 0 || share < best {
				best = share
				lmin = l
			}
		}
		if best < 0 {
			panic("logical: active trees but no loaded link")
		}
		for i, e := range embs {
			if !active[i] {
				continue
			}
			k := mult[i][lmin]
			if k == 0 {
				continue
			}
			out[i] = best
			for l, kk := range e.Load {
				avail[l] -= best * float64(kk)
				totalMult[l] -= kk
			}
			active[i] = false
			remaining--
		}
		delete(avail, lmin)
		delete(totalMult, lmin)
	}
	return out
}

// SortedLoads returns the link loads in descending order (diagnostics).
func (e *Embedding) SortedLoads() []int {
	out := make([]int, 0, len(e.Load))
	for _, c := range e.Load {
		out = append(out, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(out)))
	return out
}
