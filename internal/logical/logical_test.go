package logical

import (
	"math"
	"testing"

	"polarfly/internal/er"
	"polarfly/internal/routing"
)

func polarFly(t *testing.T, q int) (*er.Graph, *routing.Table) {
	t.Helper()
	pg, err := er.New(q)
	if err != nil {
		t.Fatal(err)
	}
	return pg, routing.New(pg.G)
}

func TestBinomialShape(t *testing.T) {
	b := Binomial(8)
	wantParents := []int{-1, 0, 0, 2, 0, 4, 4, 6}
	for v, w := range wantParents {
		if b.Parent[v] != w {
			t.Errorf("Parent[%d] = %d, want %d", v, b.Parent[v], w)
		}
	}
	if b.Root != 0 {
		t.Error("root should be 0")
	}
	// Non-power-of-two count.
	b13 := Binomial(13)
	if b13.Parent[12] != 8 { // 12 = 0b1100 → clear lowest bit 4 → 8
		t.Errorf("Parent[12] = %d, want 8", b13.Parent[12])
	}
}

func TestKAryShape(t *testing.T) {
	k := KAry(7, 2)
	want := []int{-1, 0, 0, 1, 1, 2, 2}
	for v := range want {
		if k.Parent[v] != want[v] {
			t.Errorf("Parent[%d] = %d, want %d", v, k.Parent[v], want[v])
		}
	}
}

func TestExpandPathConflicts(t *testing.T) {
	// §4.4's claim: a single logical tree on PolarFly suffers physical
	// path conflicts (some directed link carries >1 logical edge), unlike
	// a physically embedded tree whose per-link load is exactly 1.
	for _, q := range []int{5, 7, 9} {
		pg, rt := polarFly(t, q)
		emb, err := Expand(Binomial(pg.N()), rt)
		if err != nil {
			t.Fatal(err)
		}
		if emb.MaxLoad <= 1 {
			t.Errorf("q=%d: binomial logical tree has no conflicts (MaxLoad=%d) — unexpected on ER_q", q, emb.MaxLoad)
		}
		// Dilation: logical edges between non-adjacent routers cost 2 hops.
		if emb.TotalHops <= pg.N()-1 {
			t.Errorf("q=%d: total hops %d implies no dilation", q, emb.TotalHops)
		}
		// Single-embedding bandwidth is B / MaxLoad.
		bw := Bandwidth([]*Embedding{emb}, 1.0)
		if math.Abs(bw[0]-1.0/float64(emb.MaxLoad)) > 1e-9 {
			t.Errorf("q=%d: bandwidth %f, want %f", q, bw[0], 1.0/float64(emb.MaxLoad))
		}
		if bw[0] >= 1.0 {
			t.Errorf("q=%d: logical tree should fall below one link bandwidth", q)
		}
	}
}

func TestExpandDepths(t *testing.T) {
	pg, rt := polarFly(t, 5)
	emb, err := Expand(KAry(pg.N(), 4), rt)
	if err != nil {
		t.Fatal(err)
	}
	if emb.MaxLogicalDepth < 2 {
		t.Errorf("logical depth %d too small", emb.MaxLogicalDepth)
	}
	if emb.MaxPhysicalDepth < emb.MaxLogicalDepth {
		t.Errorf("physical depth %d below logical %d", emb.MaxPhysicalDepth, emb.MaxLogicalDepth)
	}
	loads := emb.SortedLoads()
	if len(loads) == 0 || loads[0] != emb.MaxLoad {
		t.Errorf("SortedLoads inconsistent: %v vs %d", loads, emb.MaxLoad)
	}
}

func TestExpandRejectsCycles(t *testing.T) {
	pg, rt := polarFly(t, 3)
	bad := &Tree{Root: 0, Parent: make([]int, pg.N())}
	bad.Parent[0] = -1
	for v := 1; v < pg.N(); v++ {
		bad.Parent[v] = v // self-parent cycle
	}
	if _, err := Expand(bad, rt); err == nil {
		t.Error("cyclic tree accepted")
	}
	// Two roots.
	if _, err := Expand(&Tree{Root: 0, Parent: []int{-1, -1, 0}}, rt); err == nil {
		t.Error("two-root tree accepted")
	}
	// Out-of-range parent.
	if _, err := Expand(&Tree{Root: 0, Parent: []int{-1, 99}}, rt); err == nil {
		t.Error("invalid parent accepted")
	}
}

func TestBandwidthSharedLogicalTrees(t *testing.T) {
	// Two identical logical trees halve each other's share on the
	// bottleneck.
	pg, rt := polarFly(t, 5)
	a, err := Expand(Binomial(pg.N()), rt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Expand(Binomial(pg.N()), rt)
	if err != nil {
		t.Fatal(err)
	}
	solo := Bandwidth([]*Embedding{a}, 1.0)[0]
	both := Bandwidth([]*Embedding{a, b}, 1.0)
	if math.Abs(both[0]-solo/2) > 1e-9 || math.Abs(both[1]-solo/2) > 1e-9 {
		t.Errorf("shared logical trees: %v, want %f each", both, solo/2)
	}
}

func TestLogicalVsPhysicalComparison(t *testing.T) {
	// The §4.4 punchline: the physically embedded BFS tree sustains the
	// full link bandwidth; every logical shape tested falls short.
	pg, rt := polarFly(t, 7)
	for _, shape := range []*Tree{Binomial(pg.N()), KAry(pg.N(), 2), KAry(pg.N(), 8)} {
		emb, err := Expand(shape, rt)
		if err != nil {
			t.Fatal(err)
		}
		bw := Bandwidth([]*Embedding{emb}, 1.0)[0]
		if bw >= 1.0 {
			t.Errorf("logical tree reached %f ≥ physical single-tree bandwidth", bw)
		}
	}
}

func TestShapePanics(t *testing.T) {
	for _, fn := range []func(){
		func() { Binomial(0) },
		func() { KAry(0, 2) },
		func() { KAry(5, 0) },
		func() { Bandwidth(nil, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}
