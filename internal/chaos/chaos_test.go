package chaos

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"polarfly/internal/netsim"
)

// TestCampaignEngineEquivalence runs the smoke campaign on both netsim
// engines: every randomized fault plan — correlated link-downs, storms,
// degradations, router failures — must yield a byte-identical report,
// extending the engines' differential contract to the chaos generator's
// full scenario space.
func TestCampaignEngineEquivalence(t *testing.T) {
	cfg := smokeConfig()
	cfg.Engine = netsim.EngineCycle
	cyc, err := Campaign(cfg)
	if err != nil {
		t.Fatalf("Campaign (cycle): %v", err)
	}
	cfg.Engine = netsim.EngineEvent
	evt, err := Campaign(cfg)
	if err != nil {
		t.Fatalf("Campaign (event): %v", err)
	}
	if fails := evt.Failures(); len(fails) != 0 {
		t.Fatalf("event-engine campaign recorded %d violations:\n%s", len(fails), strings.Join(fails, "\n"))
	}
	var a, b bytes.Buffer
	cyc.Label, evt.Label = "x", "x"
	if err := cyc.WriteJSON(&a); err != nil {
		t.Fatalf("WriteJSON (cycle): %v", err)
	}
	if err := evt.WriteJSON(&b); err != nil {
		t.Fatalf("WriteJSON (event): %v", err)
	}
	if a.String() != b.String() {
		t.Error("event-engine campaign report not byte-identical to cycle engine")
	}
}

func smokeConfig() Config {
	cfg := DefaultConfig()
	cfg.Qs = []int{3}
	cfg.Embeddings = []string{"low-depth", "hamiltonian"}
	cfg.Runs = 12
	cfg.M = 512
	cfg.MinAt = 20
	cfg.MaxAt = 150
	cfg.MinTailElems = 64
	return cfg
}

func TestRunSeedPure(t *testing.T) {
	a := RunSeed(42, 5, 1, 7)
	if b := RunSeed(42, 5, 1, 7); a != b {
		t.Fatalf("RunSeed not pure: %d vs %d", a, b)
	}
	seen := map[int64]bool{a: true}
	for _, alt := range [][3]int{{5, 1, 8}, {5, 0, 7}, {3, 1, 7}} {
		s := RunSeed(42, alt[0], alt[1], alt[2])
		if seen[s] {
			t.Errorf("RunSeed collision for %v: %d", alt, s)
		}
		seen[s] = true
	}
}

func TestParseEmbedding(t *testing.T) {
	for _, name := range []string{"single-tree", "low-depth", "hamiltonian"} {
		k, err := ParseEmbedding(name)
		if err != nil {
			t.Fatalf("ParseEmbedding(%q): %v", name, err)
		}
		if k.String() != name {
			t.Errorf("ParseEmbedding(%q) = %v", name, k)
		}
	}
	if _, err := ParseEmbedding("ring"); err == nil {
		t.Error("ParseEmbedding accepted unknown name")
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Qs = nil },
		func(c *Config) { c.Embeddings = nil },
		func(c *Config) { c.Embeddings = []string{"mesh"} },
		func(c *Config) { c.Runs = 0 },
		func(c *Config) { c.M = 0 },
		func(c *Config) { c.MinAt = 0 },
		func(c *Config) { c.MaxAt = c.MinAt - 1 },
		func(c *Config) { c.Tolerance = 0 },
		func(c *Config) { c.Tolerance = 1 },
		func(c *Config) { c.MinTailElems = 0 },
	}
	for i, mutate := range bad {
		cfg := smokeConfig()
		mutate(&cfg)
		if _, err := Campaign(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

// TestCampaignSmoke is the in-tree campaign gate: a small seeded
// campaign must classify every run and record zero violations, and the
// report must be byte-identical across repeats and parallelism levels.
func TestCampaignSmoke(t *testing.T) {
	cfg := smokeConfig()
	rep, err := Campaign(cfg)
	if err != nil {
		t.Fatalf("Campaign: %v", err)
	}
	if fails := rep.Failures(); len(fails) != 0 {
		t.Fatalf("campaign recorded %d violations:\n%s", len(fails), strings.Join(fails, "\n"))
	}
	recoveries := 0
	for _, pt := range rep.Points {
		if pt.Runs != cfg.Runs {
			t.Errorf("point q=%d %s: runs %d, want %d", pt.Q, pt.Embedding, pt.Runs, cfg.Runs)
		}
		if got := pt.Completed + pt.AllTreesLost + pt.RecoveryLimit; got != pt.Runs {
			t.Errorf("point q=%d %s: %d of %d runs classified", pt.Q, pt.Embedding, got, pt.Runs)
		}
		if pt.Completed == 0 {
			t.Errorf("point q=%d %s: no run completed", pt.Q, pt.Embedding)
		}
		recoveries += pt.Recoveries
	}
	if recoveries == 0 {
		t.Error("campaign exercised no recovery at all")
	}

	again, err := Campaign(cfg)
	if err != nil {
		t.Fatalf("Campaign (repeat): %v", err)
	}
	if !reflect.DeepEqual(rep, again) {
		t.Error("repeat campaign differs from the first")
	}
	cfg.Parallel = 4
	par, err := Campaign(cfg)
	if err != nil {
		t.Fatalf("Campaign (parallel): %v", err)
	}
	var serial, parallel bytes.Buffer
	rep.Label, par.Label = "x", "x"
	if err := rep.WriteJSON(&serial); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if err := par.WriteJSON(&parallel); err != nil {
		t.Fatalf("WriteJSON (parallel): %v", err)
	}
	if serial.String() != parallel.String() {
		t.Error("parallel campaign report not byte-identical to serial")
	}

	back, err := DecodeReport(strings.NewReader(serial.String()))
	if err != nil {
		t.Fatalf("DecodeReport: %v", err)
	}
	if !reflect.DeepEqual(rep, back) {
		t.Error("report did not survive the JSON round trip")
	}

	var md strings.Builder
	if err := WriteMarkdown(&md, rep); err != nil {
		t.Fatalf("WriteMarkdown: %v", err)
	}
	for _, want := range []string{"Chaos campaign", "all-trees-lost", "low-depth", "hamiltonian", "classified sentinel"} {
		if !strings.Contains(md.String(), want) {
			t.Errorf("markdown missing %q:\n%s", want, md.String())
		}
	}
}

func TestDecodeReportRejects(t *testing.T) {
	cases := []string{
		`{`,
		`{"schema":"polarfly-bench/v1","points":[]}`,
		`{"schema":"polarfly-campaign/v1","points":[{"q":3,"runs":0}]}`,
		`{"schema":"polarfly-campaign/v1","points":[{"q":3,"runs":4,"completed":3,"all_trees_lost":2}]}`,
	}
	for i, in := range cases {
		if _, err := DecodeReport(strings.NewReader(in)); err == nil {
			t.Errorf("case %d: invalid report accepted: %s", i, in)
		}
	}
}
