// Package chaos is the seeded fault-space exploration campaign: it
// generates thousands of randomized fault plans — single and correlated
// link failures, transient windows, repeating storms, router-down
// domains, degraded links and engine stalls — runs each against the
// cycle-accurate simulator, and checks per-run invariants that must hold
// under ANY fault schedule:
//
//   - a completed run's outputs equal the exact element-wise sum;
//   - flit conservation: FlitsSent == DeliveredFlits + DroppedFlits;
//   - the causal critical path telescopes to exactly Result.Cycles with
//     zero unattributed residue;
//   - when the tail after the last recovery is long enough and the plan
//     is purely lossy, the measured post-recovery bandwidth is within
//     tolerance of the iterated core.Degrade prediction;
//   - every non-completion maps to a classified sentinel
//     (netsim.ErrAllTreesLost or netsim.ErrRecoveryLimit) — a progress
//     timeout or any other error is a campaign violation.
//
// Every run is reproducible in isolation: the per-run PRNG seed is a
// pure function of (campaign seed, q, embedding, run index), so a
// violation's plan can be regenerated without replaying the campaign.
// Runs execute on a parrun pool with ordered commit, keeping the report
// byte-identical at any -parallel setting.
package chaos

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"polarfly/internal/core"
	"polarfly/internal/critpath"
	"polarfly/internal/faults"
	"polarfly/internal/netsim"
	"polarfly/internal/parrun"
	"polarfly/internal/workload"
)

// Config parameterises one campaign.
type Config struct {
	// Qs are the PolarFly orders to sweep.
	Qs []int `json:"qs"`
	// Embeddings names the forest kinds per q ("low-depth",
	// "hamiltonian", "single-tree").
	Embeddings []string `json:"embeddings"`
	// Runs is the number of randomized fault plans per (q, embedding)
	// design point.
	Runs int `json:"runs"`
	// M is the Allreduce vector length.
	M int `json:"m"`
	// LinkLatency and VCDepth configure the simulated fabric.
	LinkLatency int `json:"link_latency"`
	VCDepth     int `json:"vc_depth"`
	// MinAt and MaxAt bound fault activation cycles (inclusive).
	MinAt int `json:"min_at"`
	MaxAt int `json:"max_at"`
	// Seed drives every per-run plan generator (mixed with the design
	// point and run index).
	Seed int64 `json:"seed"`
	// Tolerance is the relative error allowed between the measured
	// post-recovery bandwidth and the core.Degrade prediction.
	Tolerance float64 `json:"tolerance"`
	// MinTailElems gates the bandwidth cross-check: the elements still
	// outstanding after the last recovery must be at least this many for
	// the measured rate to be meaningful.
	MinTailElems int `json:"min_tail_elems"`
	// Parallel is the parrun worker-pool size: 1 forces the serial path,
	// <1 means GOMAXPROCS. Ordered commit keeps the report identical
	// either way; excluded from snapshots so CAMPAIGN_*.json stays
	// byte-identical.
	Parallel int `json:"-"`
	// Engine selects the netsim advance strategy (cycle or event); the
	// engines are byte-identical, so it is excluded from snapshots.
	Engine netsim.Engine `json:"-"`
}

// DefaultConfig is the scorecard calibration: 64 plans per point over
// q ∈ {3,5,7,11} × {low-depth, hamiltonian} = 512 runs.
func DefaultConfig() Config {
	return Config{
		Qs:           []int{3, 5, 7, 11},
		Embeddings:   []string{"low-depth", "hamiltonian"},
		Runs:         64,
		M:            2048,
		LinkLatency:  1,
		VCDepth:      4,
		MinAt:        50,
		MaxAt:        300,
		Seed:         core.DefaultSeed,
		Tolerance:    0.25,
		MinTailElems: 256,
	}
}

// ParseEmbedding maps an embedding name to its core kind.
func ParseEmbedding(name string) (core.EmbeddingKind, error) {
	for _, k := range []core.EmbeddingKind{core.SingleTree, core.LowDepth, core.Hamiltonian} {
		if k.String() == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("chaos: unknown embedding %q (want single-tree, low-depth or hamiltonian)", name)
}

func (c *Config) validate() error {
	if len(c.Qs) == 0 {
		return fmt.Errorf("chaos: campaign needs at least one q")
	}
	if len(c.Embeddings) == 0 {
		return fmt.Errorf("chaos: campaign needs at least one embedding")
	}
	for _, name := range c.Embeddings {
		if _, err := ParseEmbedding(name); err != nil {
			return err
		}
	}
	if c.Runs < 1 {
		return fmt.Errorf("chaos: runs per point must be ≥ 1, got %d", c.Runs)
	}
	if c.M < 1 {
		return fmt.Errorf("chaos: vector length must be ≥ 1, got %d", c.M)
	}
	if c.MinAt < 1 || c.MaxAt < c.MinAt {
		return fmt.Errorf("chaos: activation window [%d,%d] invalid", c.MinAt, c.MaxAt)
	}
	if c.Tolerance <= 0 || c.Tolerance >= 1 {
		return fmt.Errorf("chaos: tolerance %g out of (0, 1)", c.Tolerance)
	}
	if c.MinTailElems < 1 {
		return fmt.Errorf("chaos: min tail elements must be ≥ 1, got %d", c.MinTailElems)
	}
	return nil
}

// Outcome classifies one campaign run.
type Outcome int

const (
	// Completed: the run delivered and every invariant was checked.
	Completed Outcome = iota
	// AllTreesLost: the run aborted with netsim.ErrAllTreesLost — the
	// expected terminal state when the plan kills every tree.
	AllTreesLost
	// RecoveryLimit: the run aborted with netsim.ErrRecoveryLimit — the
	// bounded-nesting backstop, classified rather than hung.
	RecoveryLimit
	// Violation: wrong outputs, broken conservation, critpath residue, a
	// bandwidth miss, a progress timeout, or an unclassified error.
	Violation
)

func (o Outcome) String() string {
	switch o {
	case Completed:
		return "completed"
	case AllTreesLost:
		return "all-trees-lost"
	case RecoveryLimit:
		return "recovery-limit"
	case Violation:
		return "violation"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// Point aggregates one (q, embedding) design point of the campaign.
type Point struct {
	Q         int    `json:"q"`
	Embedding string `json:"embedding"`
	Trees     int    `json:"trees"`
	Runs      int    `json:"runs"`
	// Outcome counts.
	Completed     int `json:"completed"`
	AllTreesLost  int `json:"all_trees_lost"`
	RecoveryLimit int `json:"recovery_limit,omitempty"`
	// Recoveries totals the recovery rounds across the point's runs;
	// MaxGeneration is the deepest recovery nesting observed (≥ 2 means a
	// mid-recovery fault storm forced a nested round).
	Recoveries    int `json:"recoveries"`
	MaxGeneration int `json:"max_generation"`
	// BWChecked counts the runs whose post-recovery tail was long enough
	// for the Degrade cross-check to apply.
	BWChecked int `json:"bw_checked"`
	// Violations lists every invariant breach, each prefixed with the
	// run index so the plan can be regenerated from the seed.
	Violations []string `json:"violations,omitempty"`
}

// Report is the versioned campaign result.
type Report struct {
	Schema string  `json:"schema"`
	Label  string  `json:"label"`
	Config Config  `json:"config"`
	Points []Point `json:"points"`
}

// Schema is the campaign snapshot schema identifier.
const Schema = "polarfly-campaign/v1"

// defaultMaxStall caps engine-stall and degraded-link windows well
// below netsim's progress timeout, so a slow run never masquerades as a
// hang.
const defaultMaxStall = 1500

// topoLinks returns the embedding's topology edge list, canonicalised
// (u < v) and sorted — the candidate pool every fault draw samples from.
func topoLinks(e *core.Embedding) [][2]int {
	var links [][2]int
	for _, ed := range e.Topology.Edges() {
		u, v := ed.U, ed.V
		if u > v {
			u, v = v, u
		}
		links = append(links, [2]int{u, v})
	}
	sort.Slice(links, func(i, j int) bool {
		if links[i][0] != links[j][0] {
			return links[i][0] < links[j][0]
		}
		return links[i][1] < links[j][1]
	})
	return links
}

// pointSpec is the immutable per-design-point state shared (read-only)
// by that point's runs.
type pointSpec struct {
	q        int
	kindIdx  int // index into cfg.Embeddings
	kind     core.EmbeddingKind
	inst     *core.Instance
	e        *core.Embedding
	inputs   [][]int64
	want     []int64
	links    [][2]int // topology edge list, canonical and sorted
	maxStall int      // engine-stall / degraded window cap, < ProgressTimeout
}

// runResult is one run's contribution, merged per point in input order.
type runResult struct {
	outcome    Outcome
	violations []string
	recoveries int
	maxGen     int
	bwChecked  bool
}

// RunSeed is the per-run PRNG seed: a pure function of the campaign
// seed and the run coordinates, so any single run can be reproduced
// without replaying the campaign. The mixing constant is the SplitMix64
// increment; uint64 arithmetic keeps the wraparound well-defined.
func RunSeed(seed int64, q, kindIdx, run int) int64 {
	h := uint64(seed)
	for _, v := range []uint64{uint64(q), uint64(kindIdx), uint64(run)} {
		h ^= v + 0x9e3779b97f4a7c15 + (h << 6) + (h >> 2)
	}
	return int64(h)
}

// Campaign runs the configured fault-space exploration and returns the
// aggregated report. It returns an error only on configuration or setup
// problems; invariant breaches are recorded as violations in the report
// (see Failures).
func Campaign(cfg Config) (*Report, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	// Build each design point's instance and embedding once, serially;
	// runs share them read-only.
	var specs []*pointSpec
	for _, q := range cfg.Qs {
		for ki, name := range cfg.Embeddings {
			kind, err := ParseEmbedding(name)
			if err != nil {
				return nil, err
			}
			inst, err := core.NewInstance(q)
			if err != nil {
				return nil, fmt.Errorf("chaos: q=%d: %w", q, err)
			}
			e, err := inst.Embed(kind)
			if err != nil {
				return nil, fmt.Errorf("chaos: q=%d %s: %w", q, name, err)
			}
			inputs := workload.Vectors(inst.N(), cfg.M, 1000, cfg.Seed)
			specs = append(specs, &pointSpec{
				q: q, kindIdx: ki, kind: kind,
				inst: inst, e: e, inputs: inputs,
				want:     netsim.ExpectedOutput(inputs),
				links:    topoLinks(e),
				maxStall: defaultMaxStall,
			})
		}
	}

	total := len(specs) * cfg.Runs
	results, err := parrun.Map(cfg.Parallel, total, func(i int) (runResult, error) {
		return runOne(cfg, specs[i/cfg.Runs], i%cfg.Runs), nil
	})
	if err != nil {
		return nil, err
	}

	rep := &Report{Schema: Schema, Config: cfg}
	for si, sp := range specs {
		pt := Point{
			Q: sp.q, Embedding: cfg.Embeddings[sp.kindIdx],
			Trees: len(sp.e.Forest), Runs: cfg.Runs,
		}
		for run := 0; run < cfg.Runs; run++ {
			rr := results[si*cfg.Runs+run]
			switch rr.outcome {
			case Completed:
				pt.Completed++
			case AllTreesLost:
				pt.AllTreesLost++
			case RecoveryLimit:
				pt.RecoveryLimit++
			case Violation:
				// Counted through the violation list below; a point's
				// violations slice being non-empty is the gate signal.
			default:
			}
			pt.Recoveries += rr.recoveries
			if rr.maxGen > pt.MaxGeneration {
				pt.MaxGeneration = rr.maxGen
			}
			if rr.bwChecked {
				pt.BWChecked++
			}
			pt.Violations = append(pt.Violations, rr.violations...)
		}
		rep.Points = append(rep.Points, pt)
	}
	return rep, nil
}

// runOne generates run `run`'s fault plan from its deterministic seed,
// executes it, and checks every applicable invariant. It never returns
// an error: anything unexpected is a recorded violation.
func runOne(cfg Config, sp *pointSpec, run int) runResult {
	rng := rand.New(rand.NewSource(RunSeed(cfg.Seed, sp.q, sp.kindIdx, run)))
	plan := randomPlan(rng, cfg, sp)
	var rr runResult
	violate := func(format string, args ...any) {
		rr.outcome = Violation
		prefix := fmt.Sprintf("q=%d %s run %d: ", sp.q, sp.kind, run)
		rr.violations = append(rr.violations, prefix+fmt.Sprintf(format, args...))
	}
	if err := plan.Validate(); err != nil {
		violate("generated plan invalid: %v", err)
		return rr
	}

	runCfg := netsim.Config{
		LinkLatency: cfg.LinkLatency, VCDepth: cfg.VCDepth,
		Faults: plan, Engine: cfg.Engine,
	}
	b := critpath.NewBuilder()
	b.Attach(&runCfg)
	res, err := sp.inst.Allreduce(sp.e, sp.inputs, runCfg)

	var pe *netsim.ProgressError
	switch {
	case err == nil:
		rr.outcome = Completed
	case errors.Is(err, netsim.ErrAllTreesLost):
		rr.outcome = AllTreesLost
		return rr
	case errors.Is(err, netsim.ErrRecoveryLimit):
		rr.outcome = RecoveryLimit
		return rr
	case errors.As(err, &pe):
		violate("progress timeout (plan %v): %v", plan.Faults, err)
		return rr
	default:
		violate("unclassified failure (plan %v): %v", plan.Faults, err)
		return rr
	}

	rr.recoveries = len(res.Recoveries)
	for _, r := range res.Recoveries {
		if r.Generation > rr.maxGen {
			rr.maxGen = r.Generation
		}
	}

	// Invariant 1: exact reduction output at every node.
	for v := range res.Outputs {
		for k := range sp.want {
			if res.Outputs[v][k] != sp.want[k] {
				violate("node %d output[%d] = %d, want %d (plan %v)",
					v, k, res.Outputs[v][k], sp.want[k], plan.Faults)
				break
			}
		}
		if rr.outcome == Violation {
			break
		}
	}

	// Invariant 2: flit conservation.
	if res.FlitsSent != res.DeliveredFlits+res.DroppedFlits {
		violate("flit conservation: sent=%d delivered=%d dropped=%d (plan %v)",
			res.FlitsSent, res.DeliveredFlits, res.DroppedFlits, plan.Faults)
	}

	// Invariant 3: the causal critical path telescopes to exactly
	// Result.Cycles (Analyze re-verifies conservation internally). Zero
	// residue is only demanded for purely lossy plans: degraded-link
	// metering and engine-stall freezes leave no trace event, so their
	// delay legitimately lands in the unattributed class.
	if a, aerr := b.Analyze(res.Cycles); aerr != nil {
		violate("critpath analysis failed (plan %v): %v", plan.Faults, aerr)
	} else {
		total := 0
		for _, be := range a.Blame {
			total += be.Cycles
		}
		if total != res.Cycles {
			violate("critpath blame sums to %d, want %d (plan %v)", total, res.Cycles, plan.Faults)
		}
		if a.Unattributed != 0 && planAllLossy(plan) {
			violate("critpath residue %d cycles on a lossy-only plan (plan %v)", a.Unattributed, plan.Faults)
		}
	}

	// Invariant 4: post-recovery bandwidth tracks iterated Degrade. Only
	// meaningful when the plan is purely lossy (degraded links and engine
	// stalls depress the measured rate below the structural prediction)
	// and the tail after the last recovery carries enough elements.
	if n := len(res.Recoveries); n > 0 && planAllLossy(plan) &&
		res.Recoveries[n-1].Remaining >= cfg.MinTailElems {
		failed := make(map[[2]int]bool)
		for _, r := range res.Recoveries {
			for _, l := range r.FailedLinks {
				failed[l] = true
			}
		}
		union := make([][2]int, 0, len(failed))
		for l := range failed {
			union = append(union, l)
		}
		sort.Slice(union, func(i, j int) bool {
			if union[i][0] != union[j][0] {
				return union[i][0] < union[j][0]
			}
			return union[i][1] < union[j][1]
		})
		deg, derr := core.Degrade(sp.e, union)
		if derr != nil {
			violate("completed but Degrade(%v) predicts no survivors: %v", union, derr)
		} else if deg.Model.Aggregate > 0 {
			rr.bwChecked = true
			rel := (res.PostRecoveryBW - deg.Model.Aggregate) / deg.Model.Aggregate
			if math.Abs(rel) > cfg.Tolerance {
				violate("post-recovery BW %.3f vs predicted %.3f (rel err %+.1f%%, tolerance %.0f%%, plan %v)",
					res.PostRecoveryBW, deg.Model.Aggregate, 100*rel, 100*cfg.Tolerance, plan.Faults)
			}
		}
	}
	return rr
}

// planAllLossy reports whether every fault in the plan is of a lossy
// kind (no degraded links or engine stalls).
func planAllLossy(p *faults.Plan) bool {
	for _, f := range p.Faults {
		if !f.Kind.Lossy() {
			return false
		}
	}
	return true
}

// randomPlan draws one weighted fault scenario. The weights skew toward
// the lossy kinds that exercise detection and recovery; roughly one run
// in twelve draws a router-down domain and one in six a non-lossy
// slowdown fault (alone or stacked on a link failure).
func randomPlan(rng *rand.Rand, cfg Config, sp *pointSpec) *faults.Plan {
	at := func() int { return cfg.MinAt + rng.Intn(cfg.MaxAt-cfg.MinAt+1) }
	link := func() [2]int { return sp.links[rng.Intn(len(sp.links))] }
	p := &faults.Plan{}
	switch w := rng.Intn(24); {
	case w < 6: // single permanent link failure
		l := link()
		p.Faults = append(p.Faults, faults.Fault{Kind: faults.LinkDown, U: l[0], V: l[1], At: at()})
	case w < 10: // correlated group: 2-3 links down at one shared cycle
		groupSize := 2 + rng.Intn(2)
		gp, err := faults.GenerateCorrelated(sp.links, 1, groupSize, cfg.MinAt, cfg.MaxAt, rng.Int63())
		if err != nil {
			l := link()
			p.Faults = append(p.Faults, faults.Fault{Kind: faults.LinkDown, U: l[0], V: l[1], At: at()})
			break
		}
		p.Faults = gp.Faults
	case w < 13: // staggered pair: second failure lands mid-recovery
		l1, l2 := link(), link()
		a1 := at()
		p.Faults = append(p.Faults, faults.Fault{Kind: faults.LinkDown, U: l1[0], V: l1[1], At: a1})
		if l2 != l1 {
			p.Faults = append(p.Faults, faults.Fault{
				Kind: faults.LinkDown, U: l2[0], V: l2[1],
				At: a1 + cfg.LinkLatency*(5+rng.Intn(40)),
			})
		}
	case w < 16: // transient window
		l := link()
		a := at()
		p.Faults = append(p.Faults, faults.Fault{
			Kind: faults.LinkTransient, U: l[0], V: l[1],
			At: a, Until: a + 10 + rng.Intn(60),
		})
	case w < 19: // repeating storm
		l := link()
		a := at()
		width := 10 + rng.Intn(40)
		p.Faults = append(p.Faults, faults.Fault{
			Kind: faults.LinkStorm, U: l[0], V: l[1],
			At: a, Until: a + width,
			Period: width + 30 + rng.Intn(200),
			Repeat: 2 + rng.Intn(3),
		})
	case w < 21: // router-down domain: every incident link atomically
		p.Faults = append(p.Faults, faults.Fault{
			Kind: faults.RouterDown, Node: rng.Intn(sp.inst.N()), At: at(),
		})
	case w < 23: // degraded link, sometimes stacked on a failure elsewhere
		l := link()
		a := at()
		f := faults.Fault{
			Kind: faults.LinkDegraded, U: l[0], V: l[1],
			At: a, Bandwidth: 0.25 + 0.7*rng.Float64(),
		}
		if rng.Intn(2) == 0 {
			f.Until = a + 200 + rng.Intn(sp.maxStall-200)
		}
		p.Faults = append(p.Faults, f)
		if l2 := link(); rng.Intn(2) == 0 && l2 != l {
			p.Faults = append(p.Faults, faults.Fault{Kind: faults.LinkDown, U: l2[0], V: l2[1], At: at()})
		}
	default: // engine stall window
		a := at()
		p.Faults = append(p.Faults, faults.Fault{
			Kind: faults.EngineStall, Node: rng.Intn(sp.inst.N()),
			At: a, Until: a + 100 + rng.Intn(sp.maxStall-100),
		})
	}
	return p
}

// RandomPlan draws one weighted fault scenario for an embedding outside
// a campaign — the allreduce-sim -chaos-seed path — so the CLI and the
// campaign engine explore the same fault space with the same weights.
// Activations land uniformly in [minAt, maxAt] and slow-fault windows
// get the cap campaign runs use; the same seed always yields the same
// plan for the same embedding.
func RandomPlan(inst *core.Instance, e *core.Embedding, latency, minAt, maxAt int, seed int64) (*faults.Plan, error) {
	if minAt < 1 || maxAt < minAt {
		return nil, fmt.Errorf("chaos: cycle window [%d,%d] invalid", minAt, maxAt)
	}
	if latency < 1 {
		return nil, fmt.Errorf("chaos: link latency %d, must be ≥ 1", latency)
	}
	sp := &pointSpec{inst: inst, e: e, links: topoLinks(e), maxStall: defaultMaxStall}
	cfg := Config{LinkLatency: latency, MinAt: minAt, MaxAt: maxAt}
	rng := rand.New(rand.NewSource(seed))
	p := randomPlan(rng, cfg, sp)
	return p, p.Validate()
}

// Failures flattens every recorded violation across the report's
// points. Empty means the campaign gate passes: every run either
// completed with all invariants intact or terminated on a classified
// sentinel.
func (r *Report) Failures() []string {
	var fails []string
	for _, pt := range r.Points {
		fails = append(fails, pt.Violations...)
	}
	return fails
}
