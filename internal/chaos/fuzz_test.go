package chaos

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReportJSON checks that DecodeReport never panics on arbitrary
// input and that any report it accepts survives a write/decode round
// trip unchanged.
func FuzzReportJSON(f *testing.F) {
	seedRep := &Report{
		Schema: Schema,
		Label:  "seed",
		Config: DefaultConfig(),
		Points: []Point{{
			Q: 5, Embedding: "low-depth", Trees: 5, Runs: 64,
			Completed: 60, AllTreesLost: 3, RecoveryLimit: 1,
			Recoveries: 71, MaxGeneration: 2, BWChecked: 12,
		}},
	}
	var seed bytes.Buffer
	if err := seedRep.WriteJSON(&seed); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.String())
	f.Add(`{"schema":"polarfly-campaign/v1","label":"x","config":{},"points":[]}`)
	f.Add(`{"schema":"polarfly-campaign/v1","points":[{"q":3,"runs":4,"completed":5}]}`)
	f.Add(`{"schema":"polarfly-campaign/v1","points":[{"q":3,"runs":4,"completed":2,"violations":["boom"]}]}`)
	f.Add(`{"schema":"polarfly-bench/v1"}`)
	f.Add(`{`)
	f.Add(``)
	f.Fuzz(func(t *testing.T, in string) {
		r, err := DecodeReport(strings.NewReader(in))
		if err != nil {
			return // rejected cleanly
		}
		var buf bytes.Buffer
		if err := r.WriteJSON(&buf); err != nil {
			t.Fatalf("accepted report failed to encode: %v", err)
		}
		first := buf.String()
		r2, err := DecodeReport(strings.NewReader(first))
		if err != nil {
			t.Fatalf("re-decode failed: %v\njson: %s", err, first)
		}
		var buf2 bytes.Buffer
		if err := r2.WriteJSON(&buf2); err != nil {
			t.Fatalf("second encode failed: %v", err)
		}
		if first != buf2.String() {
			t.Fatalf("round trip not stable:\n first %s\nsecond %s", first, buf2.String())
		}
	})
}
