package chaos

import (
	"encoding/json"
	"fmt"
	"io"
)

// WriteJSON writes the campaign report in the versioned schema.
func (r *Report) WriteJSON(w io.Writer) error {
	if r.Schema != Schema {
		return fmt.Errorf("chaos: report schema %q, want %q", r.Schema, Schema)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// DecodeReport reads and validates a report written by WriteJSON.
func DecodeReport(rd io.Reader) (*Report, error) {
	var r Report
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return nil, fmt.Errorf("chaos: decoding report: %w", err)
	}
	if r.Schema != Schema {
		return nil, fmt.Errorf("chaos: report schema %q, want %q", r.Schema, Schema)
	}
	for i, pt := range r.Points {
		if pt.Runs < 1 {
			return nil, fmt.Errorf("chaos: point %d: runs %d, must be ≥ 1", i, pt.Runs)
		}
		classified := pt.Completed + pt.AllTreesLost + pt.RecoveryLimit
		if pt.Completed < 0 || pt.AllTreesLost < 0 || pt.RecoveryLimit < 0 || classified > pt.Runs {
			return nil, fmt.Errorf("chaos: point %d: outcome counts %d/%d/%d exceed %d runs",
				i, pt.Completed, pt.AllTreesLost, pt.RecoveryLimit, pt.Runs)
		}
	}
	return &r, nil
}

// WriteMarkdown renders the campaign survival/classification table.
func WriteMarkdown(w io.Writer, r *Report) error {
	if _, err := fmt.Fprintf(w, "### Chaos campaign — %s\n\n", r.Label); err != nil {
		return err
	}
	cfg := r.Config
	if _, err := fmt.Fprintf(w,
		"%d randomized plans per point, m=%d, link latency=%d, VC depth=%d, activation window [%d,%d], seed %d, BW tolerance %.0f%%\n\n",
		cfg.Runs, cfg.M, cfg.LinkLatency, cfg.VCDepth, cfg.MinAt, cfg.MaxAt, cfg.Seed, 100*cfg.Tolerance); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w,
		"| q | embedding | trees | runs | completed | all-trees-lost | recovery-limit | recoveries | max gen | bw checked | violations |"); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w,
		"|---|---|---|---|---|---|---|---|---|---|---|"); err != nil {
		return err
	}
	for _, pt := range r.Points {
		viol := "0"
		if n := len(pt.Violations); n > 0 {
			viol = fmt.Sprintf("**%d**", n)
		}
		if _, err := fmt.Fprintf(w, "| %d | %s | %d | %d | %d | %d | %d | %d | %d | %d | %s |\n",
			pt.Q, pt.Embedding, pt.Trees, pt.Runs, pt.Completed, pt.AllTreesLost,
			pt.RecoveryLimit, pt.Recoveries, pt.MaxGeneration, pt.BWChecked, viol); err != nil {
			return err
		}
	}
	fails := r.Failures()
	if len(fails) == 0 {
		_, err := fmt.Fprintln(w, "\nEvery run completed byte-correct with conserved flits or terminated on a classified sentinel.")
		return err
	}
	if _, err := fmt.Fprintf(w, "\n%d violation(s):\n", len(fails)); err != nil {
		return err
	}
	for _, f := range fails {
		if _, err := fmt.Fprintf(w, "- %s\n", f); err != nil {
			return err
		}
	}
	return nil
}
