package workload

import "testing"

func TestVectorsDeterministicAndBounded(t *testing.T) {
	a := Vectors(4, 32, 50, 7)
	b := Vectors(4, 32, 50, 7)
	c := Vectors(4, 32, 50, 8)
	if len(a) != 4 || len(a[0]) != 32 {
		t.Fatal("shape wrong")
	}
	different := false
	for v := range a {
		for k := range a[v] {
			if a[v][k] != b[v][k] {
				t.Fatal("same seed gave different vectors")
			}
			if a[v][k] != c[v][k] {
				different = true
			}
			if a[v][k] < -50 || a[v][k] > 50 {
				t.Fatalf("value %d out of bounds", a[v][k])
			}
		}
	}
	if !different {
		t.Error("different seeds gave identical vectors")
	}
	defer func() {
		if recover() == nil {
			t.Error("non-positive limit should panic")
		}
	}()
	Vectors(1, 1, 0, 1)
}

func TestGradientStepDeterministic(t *testing.T) {
	a := GradientStep(3, 16, 5)
	b := GradientStep(3, 16, 5)
	c := GradientStep(3, 16, 6)
	same := true
	for w := range a {
		for k := range a[w] {
			if a[w][k] != b[w][k] {
				t.Fatal("same step differs")
			}
			if a[w][k] != c[w][k] {
				same = false
			}
		}
	}
	if same {
		t.Error("different steps identical")
	}
}

func TestScalarPerNode(t *testing.T) {
	in := ScalarPerNode(5)
	sum := int64(0)
	for _, v := range in {
		if len(v) != 1 {
			t.Fatal("not scalar")
		}
		sum += v[0]
	}
	if sum != 15 {
		t.Errorf("sum = %d, want 15", sum)
	}
}

func TestRadixSweep(t *testing.T) {
	pts := RadixSweep(3, 10)
	// q ∈ {2,3,4,5,7,8,9} → radix {3,4,5,6,8,9,10}
	wantQ := []int{2, 3, 4, 5, 7, 8, 9}
	if len(pts) != len(wantQ) {
		t.Fatalf("sweep = %+v", pts)
	}
	for i, pt := range pts {
		if pt.Q != wantQ[i] || pt.Radix != wantQ[i]+1 || pt.N != wantQ[i]*wantQ[i]+wantQ[i]+1 {
			t.Errorf("point %d = %+v", i, pt)
		}
	}
	// Lower bound clamps to radix 3.
	if got := RadixSweep(0, 4); got[0].Q != 2 {
		t.Errorf("clamped sweep starts at %+v", got[0])
	}
}

func TestTransformerLayerSizes(t *testing.T) {
	sizes := TransformerLayerSizes(2, 8, 100)
	if len(sizes) != 3 {
		t.Fatalf("sizes = %v", sizes)
	}
	if sizes[0] != 800 {
		t.Errorf("embedding = %d, want 800", sizes[0])
	}
	perLayer := 4*64 + 8*64 + 72
	if sizes[1] != perLayer || sizes[2] != perLayer {
		t.Errorf("layers = %v, want %d each", sizes[1:], perLayer)
	}
	if TotalElements(sizes) != 800+2*perLayer {
		t.Errorf("total = %d", TotalElements(sizes))
	}
	defer func() {
		if recover() == nil {
			t.Error("invalid shape should panic")
		}
	}()
	TransformerLayerSizes(0, 1, 1)
}

func TestMessageSizeSweep(t *testing.T) {
	got := MessageSizeSweep(4, 64, 4)
	want := []int{4, 16, 64}
	if len(got) != len(want) {
		t.Fatalf("sweep = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sweep = %v, want %v", got, want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("invalid sweep parameters should panic")
		}
	}()
	MessageSizeSweep(0, 10, 2)
}
