// Package workload generates deterministic Allreduce input workloads for
// tests, examples and benchmarks: uniform random vectors, ML-style gradient
// streams (the bandwidth-bound motivation of §1), and HPC-style short
// vectors (the latency-bound regime), plus parameter-sweep helpers for the
// Figure 5 reproductions.
package workload

import (
	"fmt"
	"math/rand"

	"polarfly/internal/numtheory"
)

// Vectors returns n deterministic pseudo-random input vectors of length m
// with entries in [-lim, lim].
func Vectors(n, m int, lim int64, seed int64) [][]int64 {
	if lim <= 0 {
		panic("workload: limit must be positive")
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([][]int64, n)
	for v := range out {
		out[v] = make([]int64, m)
		for k := range out[v] {
			out[v][k] = rng.Int63n(2*lim+1) - lim
		}
	}
	return out
}

// GradientStep mimics one data-parallel training step: every worker holds a
// gradient whose entries are the base model gradient perturbed per worker,
// quantised to integers (as integer-summing in-network reduction units
// would see them). Deterministic in (step, worker).
func GradientStep(n, m int, step int) [][]int64 {
	out := make([][]int64, n)
	for w := range out {
		rng := rand.New(rand.NewSource(int64(step)*1e6 + int64(w)))
		out[w] = make([]int64, m)
		for k := range out[w] {
			// Heavy-tailed-ish gradient magnitudes around zero.
			v := rng.NormFloat64() * 1000
			out[w][k] = int64(v)
		}
	}
	return out
}

// ScalarPerNode returns the classic HPC reduction input: one value per
// node, node i contributing i+1 (so the expected sum is n(n+1)/2, easy to
// eyeball in examples).
func ScalarPerNode(n int) [][]int64 {
	out := make([][]int64, n)
	for i := range out {
		out[i] = []int64{int64(i + 1)}
	}
	return out
}

// SweepPoint is one radix in a Figure 5-style sweep.
type SweepPoint struct {
	// Q is the prime power; the router radix is Q+1 and N = Q²+Q+1.
	Q int
	// Radix is Q+1.
	Radix int
	// N is the node count.
	N int
}

// RadixSweep enumerates the feasible PolarFly design points with radix in
// [loRadix, hiRadix], i.e. prime powers q = radix−1. The paper sweeps
// radix 3..129 (q = 2..128).
func RadixSweep(loRadix, hiRadix int) []SweepPoint {
	if loRadix < 3 {
		loRadix = 3
	}
	var out []SweepPoint
	for _, q := range numtheory.PrimePowersUpTo(loRadix-1, hiRadix-1) {
		out = append(out, SweepPoint{Q: q, Radix: q + 1, N: q*q + q + 1})
	}
	return out
}

// MessageSizeSweep returns a geometric sweep of vector lengths from lo to
// hi (inclusive when hi is a power-of-factor multiple of lo).
func MessageSizeSweep(lo, hi, factor int) []int {
	if lo < 1 || factor < 2 {
		panic(fmt.Sprintf("workload: invalid sweep lo=%d factor=%d", lo, factor))
	}
	var out []int
	for m := lo; m <= hi; m *= factor {
		out = append(out, m)
	}
	return out
}

// TransformerLayerSizes returns per-layer gradient element counts for a
// GPT-style decoder stack — the §1 motivation names GPT-3 as the canonical
// bandwidth-bound Allreduce workload. Each layer contributes the attention
// projections (4·d²) and the MLP block (8·d²) plus biases and norms; the
// embedding matrix (vocab·d) is prepended. Counts are element counts, not
// bytes, and are intended for layer-by-layer gradient Allreduce
// simulations where vectors are reduced as each layer finishes its
// backward pass.
func TransformerLayerSizes(layers, dModel, vocab int) []int {
	if layers < 1 || dModel < 1 || vocab < 1 {
		panic("workload: invalid transformer shape")
	}
	out := make([]int, 0, layers+1)
	out = append(out, vocab*dModel) // embedding / unembedding gradient
	perLayer := 4*dModel*dModel +   // Q,K,V,O projections
		8*dModel*dModel + // MLP up+down (4·d hidden)
		9*dModel // biases + 2 layer norms (scale+shift) + attn bias
	for i := 0; i < layers; i++ {
		out = append(out, perLayer)
	}
	return out
}

// TotalElements sums a layer-size schedule.
func TotalElements(sizes []int) int {
	total := 0
	for _, s := range sizes {
		total += s
	}
	return total
}
