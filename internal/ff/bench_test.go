package ff

import (
	"fmt"
	"testing"
)

func BenchmarkPrimeFieldMul(b *testing.B) {
	f, _ := NewPrimeField(127)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = f.Mul(i%126+1, (i+7)%126+1)
	}
}

func BenchmarkExtFieldMulTabled(b *testing.B) {
	f, _ := New(128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = f.Mul(i%127+1, (i+7)%127+1)
	}
}

func BenchmarkExtFieldMulUntabled(b *testing.B) {
	base, _ := NewPrimeField(2)
	mod, _ := FindIrreduciblePoly(base, 10)
	f, _ := NewExtension(base, mod) // order 1024 > tableLimit
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = f.Mul(i%1023+1, (i+7)%1023+1)
	}
}

func BenchmarkFieldInv(b *testing.B) {
	for _, q := range []int{9, 128} {
		f, _ := New(q)
		b.Run(fmt.Sprintf("GF(%d)", q), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = f.Inv(i%(q-1) + 1)
			}
		})
	}
}

func BenchmarkFindPrimitivePoly(b *testing.B) {
	for _, q := range []int{9, 25, 49} {
		base, _ := New(q)
		b.Run(fmt.Sprintf("deg3overGF(%d)", q), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := FindPrimitivePoly(base, 3); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFieldConstruction(b *testing.B) {
	for _, q := range []int{64, 81, 128} {
		b.Run(fmt.Sprintf("GF(%d)", q), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := New(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
