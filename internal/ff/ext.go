package ff

import (
	"fmt"
)

// extField is GF(|K|^d) built as K[x]/(m(x)) for a base field K and a monic
// irreducible polynomial m of degree d. Elements are encoded as base-|K|
// integers of the coefficient vector (x^0 digit least significant).
type extField struct {
	base    Field
	modulus Poly
	deg     int
	order   int

	// Operation tables, present when order ≤ tableLimit.
	addTab []int // addTab[a*order+b]
	mulTab []int
	negTab []int
	invTab []int
}

// NewExtension builds the extension of base by the monic irreducible
// polynomial modulus. The degree of the extension is deg(modulus).
func NewExtension(base Field, modulus Poly) (Field, error) {
	modulus = modulus.trim()
	d := modulus.Degree()
	if d < 2 {
		return nil, fmt.Errorf("ff: extension degree must be ≥ 2, got %d", d)
	}
	if modulus[d] != 1 {
		return nil, fmt.Errorf("ff: modulus %v is not monic", modulus)
	}
	if !IsIrreducible(base, modulus) {
		return nil, fmt.Errorf("ff: modulus %v is reducible over %v", modulus, base)
	}
	order := 1
	for i := 0; i < d; i++ {
		order *= base.Order()
		if order > 1<<30 {
			return nil, fmt.Errorf("ff: extension order overflows practical bounds")
		}
	}
	f := &extField{base: base, modulus: modulus, deg: d, order: order}
	if order <= tableLimit {
		f.buildTables()
	}
	return f, nil
}

func (f *extField) Order() int  { return f.order }
func (f *extField) Char() int   { return f.base.Char() }
func (f *extField) Degree() int { return f.base.Degree() * f.deg }

func (f *extField) String() string {
	return fmt.Sprintf("GF(%d) = %v[x]/(%v)", f.order, f.base, f.modulus)
}

func (f *extField) check(a int) {
	if a < 0 || a >= f.order {
		panic(fmt.Sprintf("ff: element %d out of range for GF(%d)", a, f.order))
	}
}

// Decode expands element index a into its coefficient vector over the base
// field (length = extension degree, little-endian).
func (f *extField) Decode(a int) Poly {
	f.check(a)
	out := make(Poly, f.deg)
	q := f.base.Order()
	for i := 0; i < f.deg; i++ {
		out[i] = a % q
		a /= q
	}
	return out
}

// Encode packs a coefficient vector (degree < extension degree after
// reduction) back into an element index.
func (f *extField) Encode(p Poly) int {
	q := f.base.Order()
	idx := 0
	for i := len(p) - 1; i >= 0; i-- {
		if i >= f.deg && p[i] != 0 {
			panic("ff: Encode: polynomial degree exceeds extension degree")
		}
		if i < f.deg {
			idx = idx*q + p[i]
		}
	}
	return idx
}

func (f *extField) buildTables() {
	n := f.order
	f.addTab = make([]int, n*n)
	f.mulTab = make([]int, n*n)
	f.negTab = make([]int, n)
	f.invTab = make([]int, n)
	for a := 0; a < n; a++ {
		pa := f.Decode(a)
		f.negTab[a] = f.Encode(PolyScale(f.base, f.base.Neg(1), pa))
		for b := 0; b < n; b++ {
			pb := f.Decode(b)
			f.addTab[a*n+b] = f.Encode(PolyAdd(f.base, pa, pb))
			f.mulTab[a*n+b] = f.Encode(PolyMod(f.base, PolyMul(f.base, pa, pb), f.modulus))
		}
	}
	for a := 1; a < n; a++ {
		if f.invTab[a] != 0 {
			continue
		}
		for b := 1; b < n; b++ {
			if f.mulTab[a*n+b] == 1 {
				f.invTab[a] = b
				f.invTab[b] = a
				break
			}
		}
		if f.invTab[a] == 0 {
			panic(fmt.Sprintf("ff: element %d has no inverse in %v", a, f))
		}
	}
}

func (f *extField) Add(a, b int) int {
	if f.addTab != nil {
		f.check(a)
		f.check(b)
		return f.addTab[a*f.order+b]
	}
	return f.Encode(PolyAdd(f.base, f.Decode(a), f.Decode(b)))
}

func (f *extField) Sub(a, b int) int { return f.Add(a, f.Neg(b)) }

func (f *extField) Neg(a int) int {
	if f.negTab != nil {
		f.check(a)
		return f.negTab[a]
	}
	return f.Encode(PolyScale(f.base, f.base.Neg(1), f.Decode(a)))
}

func (f *extField) Mul(a, b int) int {
	if f.mulTab != nil {
		f.check(a)
		f.check(b)
		return f.mulTab[a*f.order+b]
	}
	return f.Encode(PolyMod(f.base, PolyMul(f.base, f.Decode(a), f.Decode(b)), f.modulus))
}

func (f *extField) Inv(a int) int {
	f.check(a)
	if a == 0 {
		panic("ff: inverse of zero")
	}
	if f.invTab != nil {
		return f.invTab[a]
	}
	// a^(q-2) = a⁻¹ in GF(q).
	return genericPow(f, a, f.order-2)
}

func (f *extField) Div(a, b int) int { return f.Mul(a, f.Inv(b)) }

func (f *extField) Pow(a, k int) int { return genericPow(f, a, k) }

// Ext exposes extension-field-specific operations for fields produced by
// NewExtension. Callers that hold a Field can type-assert to Ext when they
// need coefficient-level access, such as the Singer construction, which
// selects powers of ζ with a specific coefficient pattern.
type Ext interface {
	Field
	// Decode returns the coefficient vector of an element over the base
	// field, little-endian, with length equal to the extension degree.
	Decode(a int) Poly
	// Encode packs a reduced coefficient vector into an element index.
	Encode(p Poly) int
	// Base returns the base field K.
	Base() Field
	// Modulus returns the defining monic irreducible polynomial over K.
	Modulus() Poly
	// X returns the element index of the adjoined root x of the modulus.
	X() int
}

func (f *extField) Base() Field   { return f.base }
func (f *extField) Modulus() Poly { return f.modulus.Clone() }
func (f *extField) X() int        { return f.base.Order() }
