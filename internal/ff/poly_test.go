package ff

import (
	"math/rand"
	"testing"
)

func gf(t *testing.T, q int) Field {
	t.Helper()
	f, err := New(q)
	if err != nil {
		t.Fatalf("New(%d): %v", q, err)
	}
	return f
}

func TestPolyBasics(t *testing.T) {
	if (Poly{}).Degree() != -1 {
		t.Error("zero poly degree should be -1")
	}
	if (Poly{0, 0}).Degree() != -1 {
		t.Error("all-zero poly degree should be -1")
	}
	if (Poly{3, 0, 1}).Degree() != 2 {
		t.Error("degree of x²+3 should be 2")
	}
	if !(Poly{1, 2, 0}).Equal(Poly{1, 2}) {
		t.Error("trailing zeros should not affect equality")
	}
	if (Poly{1, 2}).Equal(Poly{1, 3}) {
		t.Error("distinct polys reported equal")
	}
	if got := (Poly{1, 2, 1}).String(); got != "x^2 + 2x + 1" {
		t.Errorf("String = %q", got)
	}
	if got := (Poly{}).String(); got != "0" {
		t.Errorf("String of zero = %q", got)
	}
	if (Poly{5, 7}).Coeff(5) != 0 {
		t.Error("Coeff out of range should be 0")
	}
}

func TestPolyArithmetic(t *testing.T) {
	f := gf(t, 5)
	a := Poly{1, 2, 3} // 3x²+2x+1
	b := Poly{4, 1}    // x+4
	sum := PolyAdd(f, a, b)
	if !sum.Equal(Poly{0, 3, 3}) {
		t.Errorf("sum = %v", sum)
	}
	if !PolySub(f, sum, b).Equal(a) {
		t.Error("sub does not invert add")
	}
	prod := PolyMul(f, a, b)
	// (3x²+2x+1)(x+4) = 3x³ + (12+2)x² + (8+1)x + 4 = 3x³+4x²+4x+4 mod 5
	if !prod.Equal(Poly{4, 4, 4, 3}) {
		t.Errorf("prod = %v", prod)
	}
	quo, rem := PolyDivMod(f, prod, b)
	if !quo.Equal(a) || !rem.IsZero() {
		t.Errorf("divmod: quo=%v rem=%v", quo, rem)
	}
	if !PolyMul(f, a, Poly{}).IsZero() {
		t.Error("mul by zero poly should be zero")
	}
	if !PolyScale(f, 2, a).Equal(Poly{2, 4, 1}) {
		t.Errorf("scale = %v", PolyScale(f, 2, a))
	}
}

func TestPolyDivModRandomised(t *testing.T) {
	f := gf(t, 7)
	rng := rand.New(rand.NewSource(7))
	randPoly := func(maxDeg int) Poly {
		p := make(Poly, rng.Intn(maxDeg+1)+1)
		for i := range p {
			p[i] = rng.Intn(7)
		}
		return p.trim()
	}
	for i := 0; i < 500; i++ {
		a := randPoly(8)
		d := randPoly(4)
		if d.IsZero() {
			continue
		}
		quo, rem := PolyDivMod(f, a, d)
		if rem.Degree() >= d.Degree() {
			t.Fatalf("remainder degree %d ≥ divisor degree %d", rem.Degree(), d.Degree())
		}
		recon := PolyAdd(f, PolyMul(f, quo, d), rem)
		if !recon.Equal(a) {
			t.Fatalf("q·d + r = %v ≠ %v (d=%v q=%v r=%v)", recon, a, d, quo, rem)
		}
	}
}

func TestPolyDivideByZeroPanics(t *testing.T) {
	f := gf(t, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("division by zero polynomial did not panic")
		}
	}()
	PolyDivMod(f, Poly{1, 1}, Poly{})
}

func TestPolyEval(t *testing.T) {
	f := gf(t, 13)
	p := Poly{1, 2, 1} // (x+1)²
	for v := 0; v < 13; v++ {
		want := f.Mul(f.Add(v, 1), f.Add(v, 1))
		if got := PolyEval(f, p, v); got != want {
			t.Errorf("eval (x+1)² at %d = %d, want %d", v, got, want)
		}
	}
}

func TestPolyPowMod(t *testing.T) {
	f := gf(t, 3)
	mod := Poly{1, 2, 0, 1} // x³+2x+1, irreducible over GF(3)
	x := Poly{0, 1}
	// x^26 ≡ 1 mod f since the field GF(27) has multiplicative order 26
	// and x is primitive for this modulus.
	if got := PolyPowMod(f, x, 26, mod); !got.Equal(Poly{1}) {
		t.Errorf("x^26 mod (x³+2x+1) = %v, want 1", got)
	}
	if got := PolyPowMod(f, x, 0, mod); !got.Equal(Poly{1}) {
		t.Errorf("x^0 = %v", got)
	}
	// x^3 ≡ -2x - 1 = x + 2 mod f.
	if got := PolyPowMod(f, x, 3, mod); !got.Equal(Poly{2, 1}) {
		t.Errorf("x^3 mod f = %v, want x+2", got)
	}
}

func TestIsIrreducibleKnownCases(t *testing.T) {
	f2 := gf(t, 2)
	f3 := gf(t, 3)
	cases := []struct {
		f    Field
		p    Poly
		want bool
	}{
		{f2, Poly{1, 1, 1}, true},        // x²+x+1 irreducible over GF(2)
		{f2, Poly{1, 0, 1}, false},       // x²+1 = (x+1)²
		{f2, Poly{1, 1, 0, 1}, true},     // x³+x+1
		{f2, Poly{1, 0, 1, 1}, true},     // x³+x²+1
		{f2, Poly{1, 1, 1, 1}, false},    // x³+x²+x+1 = (x+1)(x²+1)
		{f2, Poly{1, 1, 0, 0, 1}, true},  // x⁴+x+1
		{f2, Poly{1, 0, 0, 1, 1}, true},  // x⁴+x³+1
		{f2, Poly{1, 0, 1, 0, 1}, false}, // x⁴+x²+1 = (x²+x+1)²
		{f3, Poly{1, 2, 0, 1}, true},     // x³+2x+1
		{f3, Poly{2, 1, 0, 1}, false},    // x³+x+2 has root 2
		{f3, Poly{1, 0, 1}, true},        // x²+1 irreducible over GF(3)
		{f3, Poly{0, 1}, true},           // x is degree 1, irreducible
		{f3, Poly{2}, false},             // constants are not irreducible
	}
	for _, c := range cases {
		if got := IsIrreducible(c.f, c.p); got != c.want {
			t.Errorf("IsIrreducible(%v over %v) = %v, want %v", c.p, c.f, got, c.want)
		}
	}
}

func TestIsIrreducibleMatchesBruteForceGF2(t *testing.T) {
	// Cross-check against explicit factor enumeration for all monic
	// polynomials of degree 4..6 over GF(2).
	f := gf(t, 2)
	for deg := 4; deg <= 6; deg++ {
		monicPolys(f, deg, func(p Poly) bool {
			brute := true
			for d := 1; d <= deg/2 && brute; d++ {
				monicPolys(f, d, func(div Poly) bool {
					if PolyMod(f, p, div).IsZero() {
						brute = false
						return false
					}
					return true
				})
			}
			if got := IsIrreducible(f, p); got != brute {
				t.Errorf("IsIrreducible(%v) = %v, brute force says %v", p, got, brute)
			}
			return true
		})
	}
}

func TestIrreducibleCountsGF2(t *testing.T) {
	// The number of monic irreducible polynomials of degree n over GF(q) is
	// (1/n)Σ_{d|n} μ(n/d) q^d. Over GF(2): deg 2 → 1, 3 → 2, 4 → 3, 5 → 6,
	// 6 → 9, 7 → 18.
	f := gf(t, 2)
	want := map[int]int{2: 1, 3: 2, 4: 3, 5: 6, 6: 9, 7: 18}
	for deg, w := range want {
		count := 0
		monicPolys(f, deg, func(p Poly) bool {
			if IsIrreducible(f, p) {
				count++
			}
			return true
		})
		if count != w {
			t.Errorf("GF(2) degree %d: %d irreducibles, want %d", deg, count, w)
		}
	}
}

func TestFindIrreducibleAndPrimitive(t *testing.T) {
	f3 := gf(t, 3)
	irr, err := FindIrreduciblePoly(f3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !IsIrreducible(f3, irr) {
		t.Fatalf("FindIrreduciblePoly returned reducible %v", irr)
	}
	prim, err := FindPrimitivePoly(f3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !IsPrimitivePoly(f3, prim) {
		t.Fatalf("FindPrimitivePoly returned non-primitive %v", prim)
	}
	// Primitive implies irreducible; the lex-smallest primitive cannot be
	// lex-smaller than the lex-smallest irreducible.
	if irr.Degree() != 3 || prim.Degree() != 3 {
		t.Fatal("wrong degrees")
	}
}

func TestIsPrimitivePolyKnownGF2(t *testing.T) {
	f := gf(t, 2)
	// x⁴+x+1 is primitive over GF(2); x⁴+x³+x²+x+1 is irreducible but NOT
	// primitive (its root has order 5 < 15).
	if !IsPrimitivePoly(f, Poly{1, 1, 0, 0, 1}) {
		t.Error("x⁴+x+1 should be primitive over GF(2)")
	}
	notPrim := Poly{1, 1, 1, 1, 1}
	if !IsIrreducible(f, notPrim) {
		t.Error("x⁴+x³+x²+x+1 should be irreducible over GF(2)")
	}
	if IsPrimitivePoly(f, notPrim) {
		t.Error("x⁴+x³+x²+x+1 should not be primitive over GF(2)")
	}
}

func TestExtensionOverExtension(t *testing.T) {
	// Build GF(4), then a degree-3 extension GF(64) over it, exercising the
	// tower construction used by the Singer difference sets for even q.
	f4 := gf(t, 4)
	mod, err := FindPrimitivePoly(f4, 3)
	if err != nil {
		t.Fatal(err)
	}
	f64, err := NewExtension(f4, mod)
	if err != nil {
		t.Fatal(err)
	}
	if f64.Order() != 64 || f64.Char() != 2 || f64.Degree() != 6 {
		t.Fatalf("tower GF(64): order=%d char=%d degree=%d", f64.Order(), f64.Char(), f64.Degree())
	}
	// ζ = x must have multiplicative order 63.
	x := f64.(Ext).X()
	v, ord := x, 1
	for v != 1 {
		v = f64.Mul(v, x)
		ord++
		if ord > 63 {
			t.Fatal("order of x exceeds group order")
		}
	}
	if ord != 63 {
		t.Fatalf("ord(x) = %d, want 63", ord)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := gf(t, 27).(Ext)
	for a := 0; a < 27; a++ {
		if got := f.Encode(f.Decode(a)); got != a {
			t.Fatalf("round trip %d → %v → %d", a, f.Decode(a), got)
		}
	}
}

func TestNewExtensionRejectsBadModulus(t *testing.T) {
	f3 := gf(t, 3)
	if _, err := NewExtension(f3, Poly{2, 1, 0, 1}); err == nil {
		t.Error("reducible modulus (x³+x+2) accepted")
	}
	if _, err := NewExtension(f3, Poly{1, 2}); err == nil {
		t.Error("degree-1 modulus accepted")
	}
	if _, err := NewExtension(f3, Poly{1, 0, 2}); err == nil {
		t.Error("non-monic modulus accepted")
	}
}
