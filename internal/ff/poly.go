package ff

import (
	"fmt"
	"strings"
)

// Poly is a polynomial over some Field, stored little-endian: Poly{c0, c1,
// c2} is c0 + c1·x + c2·x². Coefficients are field-element indices. The
// zero polynomial is the empty (or all-zero) slice. Polynomials returned by
// this package are normalised: no trailing zero coefficients.
type Poly []int

// trim removes trailing zero coefficients.
func (p Poly) trim() Poly {
	n := len(p)
	for n > 0 && p[n-1] == 0 {
		n--
	}
	return p[:n]
}

// Degree returns the degree of p, with -1 for the zero polynomial.
func (p Poly) Degree() int { return len(p.trim()) - 1 }

// IsZero reports whether p is the zero polynomial.
func (p Poly) IsZero() bool { return len(p.trim()) == 0 }

// Equal reports whether p and r are the same polynomial.
func (p Poly) Equal(r Poly) bool {
	a, b := p.trim(), r.trim()
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of p.
func (p Poly) Clone() Poly {
	c := make(Poly, len(p))
	copy(c, p)
	return c
}

// Coeff returns the coefficient of x^i (0 if i exceeds the stored length).
func (p Poly) Coeff(i int) int {
	if i < 0 || i >= len(p) {
		return 0
	}
	return p[i]
}

// String renders p in conventional high-to-low form, e.g. "x^3 + 2x + 1".
func (p Poly) String() string {
	t := p.trim()
	if len(t) == 0 {
		return "0"
	}
	var parts []string
	for i := len(t) - 1; i >= 0; i-- {
		c := t[i]
		if c == 0 {
			continue
		}
		switch {
		case i == 0:
			parts = append(parts, fmt.Sprintf("%d", c))
		case i == 1 && c == 1:
			parts = append(parts, "x")
		case i == 1:
			parts = append(parts, fmt.Sprintf("%dx", c))
		case c == 1:
			parts = append(parts, fmt.Sprintf("x^%d", i))
		default:
			parts = append(parts, fmt.Sprintf("%dx^%d", c, i))
		}
	}
	return strings.Join(parts, " + ")
}

// PolyAdd returns p + r over field f.
func PolyAdd(f Field, p, r Poly) Poly {
	n := len(p)
	if len(r) > n {
		n = len(r)
	}
	out := make(Poly, n)
	for i := 0; i < n; i++ {
		out[i] = f.Add(p.Coeff(i), r.Coeff(i))
	}
	return out.trim()
}

// PolySub returns p - r over field f.
func PolySub(f Field, p, r Poly) Poly {
	n := len(p)
	if len(r) > n {
		n = len(r)
	}
	out := make(Poly, n)
	for i := 0; i < n; i++ {
		out[i] = f.Sub(p.Coeff(i), r.Coeff(i))
	}
	return out.trim()
}

// PolyScale returns c·p over field f.
func PolyScale(f Field, c int, p Poly) Poly {
	out := make(Poly, len(p))
	for i, v := range p {
		out[i] = f.Mul(c, v)
	}
	return out.trim()
}

// PolyMul returns p·r over field f by schoolbook multiplication (degrees in
// this package never exceed single digits).
func PolyMul(f Field, p, r Poly) Poly {
	p, r = p.trim(), r.trim()
	if len(p) == 0 || len(r) == 0 {
		return nil
	}
	out := make(Poly, len(p)+len(r)-1)
	for i, a := range p {
		if a == 0 {
			continue
		}
		for j, b := range r {
			out[i+j] = f.Add(out[i+j], f.Mul(a, b))
		}
	}
	return out.trim()
}

// PolyDivMod returns quotient and remainder of p divided by d (d non-zero).
func PolyDivMod(f Field, p, d Poly) (quo, rem Poly) {
	d = d.trim()
	if len(d) == 0 {
		panic("ff: polynomial division by zero")
	}
	rem = p.Clone().trim()
	if rem.Degree() < d.Degree() {
		return nil, rem
	}
	quo = make(Poly, rem.Degree()-d.Degree()+1)
	lcInv := f.Inv(d[len(d)-1])
	for rem.Degree() >= d.Degree() {
		shift := rem.Degree() - d.Degree()
		c := f.Mul(rem[rem.Degree()], lcInv)
		quo[shift] = c
		// rem -= c·x^shift·d
		for i, dc := range d {
			rem[i+shift] = f.Sub(rem[i+shift], f.Mul(c, dc))
		}
		rem = rem.trim()
	}
	return quo.trim(), rem
}

// PolyMod returns p mod d over field f.
func PolyMod(f Field, p, d Poly) Poly {
	_, rem := PolyDivMod(f, p, d)
	return rem
}

// PolyEval evaluates p at point v by Horner's rule.
func PolyEval(f Field, p Poly, v int) int {
	acc := 0
	for i := len(p) - 1; i >= 0; i-- {
		acc = f.Add(f.Mul(acc, v), p[i])
	}
	return acc
}

// PolyMulMod returns p·r mod d over field f.
func PolyMulMod(f Field, p, r, d Poly) Poly {
	return PolyMod(f, PolyMul(f, p, r), d)
}

// PolyPowMod returns p^k mod d over field f for k ≥ 0.
func PolyPowMod(f Field, p Poly, k int, d Poly) Poly {
	if k < 0 {
		panic("ff: PolyPowMod with negative exponent")
	}
	result := Poly{1}
	base := PolyMod(f, p, d)
	for k > 0 {
		if k&1 == 1 {
			result = PolyMulMod(f, result, base, d)
		}
		base = PolyMulMod(f, base, base, d)
		k >>= 1
	}
	return result
}

// monicPolys enumerates all monic polynomials of exactly the given degree
// over field f, in lexicographic order of the coefficient tuple
// (c_{deg-1}, ..., c_1, c_0) with field-element indices compared as
// integers. This ordering defines "lexicographically smallest" throughout
// the package, matching the reproducibility note in §6.2 of the paper.
func monicPolys(f Field, degree int, visit func(Poly) bool) {
	q := f.Order()
	coeffs := make([]int, degree) // coeffs[i] is c_i
	var rec func(pos int) bool
	rec = func(pos int) bool {
		if pos < 0 {
			p := make(Poly, degree+1)
			copy(p, coeffs)
			p[degree] = 1
			return visit(p)
		}
		for v := 0; v < q; v++ {
			coeffs[pos] = v
			if !rec(pos - 1) {
				return false
			}
		}
		return true
	}
	rec(degree - 1)
}

// IsIrreducible reports whether monic polynomial p of degree ≥ 1 is
// irreducible over field f, by trial division against all monic polynomials
// of degree up to deg(p)/2. The degrees in this package are at most 7 over
// tiny fields, so trial division is both simple and fast.
func IsIrreducible(f Field, p Poly) bool {
	p = p.trim()
	deg := p.Degree()
	if deg < 1 {
		return false
	}
	if deg <= 3 {
		// Degree 2 or 3 polynomials are reducible iff they have a root;
		// degree 1 is always irreducible.
		if deg == 1 {
			return true
		}
		for v := 0; v < f.Order(); v++ {
			if PolyEval(f, p, v) == 0 {
				return false
			}
		}
		return true
	}
	reducible := false
	for d := 1; d <= deg/2 && !reducible; d++ {
		monicPolys(f, d, func(div Poly) bool {
			if PolyMod(f, p, div).IsZero() {
				reducible = true
				return false
			}
			return true
		})
	}
	return !reducible
}

// IsPrimitivePoly reports whether monic irreducible p over f defines a
// primitive extension: x must generate the multiplicative group of
// GF(f.Order()^deg(p)), i.e. ord(x) = q^deg − 1. Callers should ensure p is
// irreducible first (IsPrimitivePoly checks it for safety).
func IsPrimitivePoly(f Field, p Poly) bool {
	if !IsIrreducible(f, p) {
		return false
	}
	deg := p.Degree()
	order := 1
	for i := 0; i < deg; i++ {
		order *= f.Order()
	}
	groupOrder := order - 1
	x := Poly{0, 1}
	// x is primitive iff x^(groupOrder/r) ≠ 1 for every prime r | groupOrder.
	for _, pp := range factorInt(groupOrder) {
		e := PolyPowMod(f, x, groupOrder/pp, p)
		if e.Equal(Poly{1}) {
			return false
		}
	}
	return true
}

// FindIrreduciblePoly returns the lexicographically smallest monic
// irreducible polynomial of the given degree over f.
func FindIrreduciblePoly(f Field, degree int) (Poly, error) {
	var found Poly
	monicPolys(f, degree, func(p Poly) bool {
		if IsIrreducible(f, p) {
			found = p
			return false
		}
		return true
	})
	if found == nil {
		return nil, fmt.Errorf("ff: no irreducible polynomial of degree %d over %v", degree, f)
	}
	return found, nil
}

// FindPrimitivePoly returns the lexicographically smallest monic primitive
// polynomial of the given degree over f (irreducible, with x generating the
// multiplicative group of the extension).
func FindPrimitivePoly(f Field, degree int) (Poly, error) {
	var found Poly
	monicPolys(f, degree, func(p Poly) bool {
		if IsPrimitivePoly(f, p) {
			found = p
			return false
		}
		return true
	})
	if found == nil {
		return nil, fmt.Errorf("ff: no primitive polynomial of degree %d over %v", degree, f)
	}
	return found, nil
}

// factorInt returns the distinct prime factors of n ≥ 2 by trial division.
func factorInt(n int) []int {
	var primes []int
	for p := 2; p*p <= n; p++ {
		if n%p == 0 {
			primes = append(primes, p)
			for n%p == 0 {
				n /= p
			}
		}
	}
	if n > 1 {
		primes = append(primes, n)
	}
	return primes
}
