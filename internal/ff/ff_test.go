package ff

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// fieldsUnderTest builds a representative set of fields: prime fields, the
// small extension fields used in the paper's examples (GF(4), GF(8), GF(9)),
// and a larger untabled extension (GF(q³) for q=3 has order 27 — tabled; use
// GF(5³)=125 tabled and GF(2^10)=1024 untabled to hit the polynomial path).
func fieldsUnderTest(t *testing.T) []Field {
	t.Helper()
	var out []Field
	for _, q := range []int{2, 3, 5, 7, 11, 13} {
		f, err := NewPrimeField(q)
		if err != nil {
			t.Fatalf("NewPrimeField(%d): %v", q, err)
		}
		out = append(out, f)
	}
	for _, q := range []int{4, 8, 9, 16, 25, 27, 32, 49, 64, 81, 121, 125, 128} {
		f, err := New(q)
		if err != nil {
			t.Fatalf("New(%d): %v", q, err)
		}
		out = append(out, f)
	}
	// An untabled extension to exercise the slow path.
	base, _ := NewPrimeField(2)
	mod, err := FindIrreduciblePoly(base, 10)
	if err != nil {
		t.Fatalf("FindIrreduciblePoly(GF(2),10): %v", err)
	}
	big, err := NewExtension(base, mod)
	if err != nil {
		t.Fatalf("NewExtension: %v", err)
	}
	out = append(out, big)
	return out
}

func TestNewRejectsNonPrimePower(t *testing.T) {
	for _, q := range []int{0, 1, 6, 10, 12, 100} {
		if _, err := New(q); err == nil {
			t.Errorf("New(%d) should fail", q)
		}
	}
	if _, err := NewPrimeField(9); err == nil {
		t.Error("NewPrimeField(9) should fail")
	}
}

func TestFieldAxioms(t *testing.T) {
	for _, f := range fieldsUnderTest(t) {
		f := f
		t.Run(f.String(), func(t *testing.T) {
			q := f.Order()
			rng := rand.New(rand.NewSource(42))
			samples := 200
			pick := func() int { return rng.Intn(q) }
			for i := 0; i < samples; i++ {
				a, b, c := pick(), pick(), pick()
				// Commutativity.
				if f.Add(a, b) != f.Add(b, a) {
					t.Fatalf("add not commutative at (%d,%d)", a, b)
				}
				if f.Mul(a, b) != f.Mul(b, a) {
					t.Fatalf("mul not commutative at (%d,%d)", a, b)
				}
				// Associativity.
				if f.Add(f.Add(a, b), c) != f.Add(a, f.Add(b, c)) {
					t.Fatalf("add not associative at (%d,%d,%d)", a, b, c)
				}
				if f.Mul(f.Mul(a, b), c) != f.Mul(a, f.Mul(b, c)) {
					t.Fatalf("mul not associative at (%d,%d,%d)", a, b, c)
				}
				// Distributivity.
				if f.Mul(a, f.Add(b, c)) != f.Add(f.Mul(a, b), f.Mul(a, c)) {
					t.Fatalf("not distributive at (%d,%d,%d)", a, b, c)
				}
				// Identities.
				if f.Add(a, 0) != a || f.Mul(a, 1) != a {
					t.Fatalf("identity failure at %d", a)
				}
				// Inverses.
				if f.Add(a, f.Neg(a)) != 0 {
					t.Fatalf("additive inverse failure at %d", a)
				}
				if a != 0 {
					if f.Mul(a, f.Inv(a)) != 1 {
						t.Fatalf("multiplicative inverse failure at %d", a)
					}
					if f.Div(f.Mul(a, b), a) != b {
						t.Fatalf("div failure at (%d,%d)", a, b)
					}
				}
				// Sub consistency.
				if f.Sub(a, b) != f.Add(a, f.Neg(b)) {
					t.Fatalf("sub inconsistent at (%d,%d)", a, b)
				}
			}
		})
	}
}

func TestFieldCharacteristic(t *testing.T) {
	for _, f := range fieldsUnderTest(t) {
		p := f.Char()
		// p·1 = 0 and k·1 ≠ 0 for 0 < k < p.
		acc := 0
		for k := 1; k <= p; k++ {
			acc = f.Add(acc, 1)
			if k < p && acc == 0 {
				t.Errorf("%v: characteristic smaller than %d", f, p)
			}
		}
		if acc != 0 {
			t.Errorf("%v: p·1 ≠ 0", f)
		}
		// Order = p^Degree.
		order := 1
		for i := 0; i < f.Degree(); i++ {
			order *= p
		}
		if order != f.Order() {
			t.Errorf("%v: p^a = %d ≠ order %d", f, order, f.Order())
		}
	}
}

func TestMultiplicativeGroupCyclic(t *testing.T) {
	// Every non-zero element satisfies a^(q-1) = 1 and the number of
	// generators equals φ(q−1).
	for _, q := range []int{4, 8, 9, 16, 25, 27} {
		f, err := New(q)
		if err != nil {
			t.Fatal(err)
		}
		generators := 0
		for a := 1; a < q; a++ {
			if f.Pow(a, q-1) != 1 {
				t.Fatalf("GF(%d): %d^(q-1) ≠ 1", q, a)
			}
			ord := 1
			v := a
			for v != 1 {
				v = f.Mul(v, a)
				ord++
			}
			if (q-1)%ord != 0 {
				t.Fatalf("GF(%d): ord(%d)=%d does not divide q-1", q, a, ord)
			}
			if ord == q-1 {
				generators++
			}
		}
		phi := totient(q - 1)
		if generators != phi {
			t.Errorf("GF(%d): %d generators, want φ(%d)=%d", q, generators, q-1, phi)
		}
	}
}

func totient(n int) int {
	phi := 0
	for k := 1; k <= n; k++ {
		if gcd(k, n) == 1 {
			phi++
		}
	}
	return phi
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func TestPrimitivePolynomialMakesXGenerate(t *testing.T) {
	// For New(q) fields the adjoined root (index p for GF(p^a)) must
	// generate the multiplicative group.
	for _, q := range []int{4, 8, 9, 16, 27, 32, 64, 81, 128} {
		f, err := New(q)
		if err != nil {
			t.Fatal(err)
		}
		ext, ok := f.(Ext)
		if !ok {
			t.Fatalf("GF(%d) is not an extension field", q)
		}
		x := ext.X()
		seen := make(map[int]bool)
		v := 1
		for i := 0; i < q-1; i++ {
			if seen[v] {
				t.Fatalf("GF(%d): x has order %d < q-1", q, i)
			}
			seen[v] = true
			v = f.Mul(v, x)
		}
		if v != 1 {
			t.Fatalf("GF(%d): x^(q-1) ≠ 1", q)
		}
		if len(seen) != q-1 {
			t.Fatalf("GF(%d): x generated %d elements, want %d", q, len(seen), q-1)
		}
	}
}

func TestFrobeniusIsAutomorphism(t *testing.T) {
	// (a+b)^p = a^p + b^p in characteristic p.
	for _, q := range []int{4, 9, 25, 27, 49} {
		f, err := New(q)
		if err != nil {
			t.Fatal(err)
		}
		p := f.Char()
		for a := 0; a < q; a++ {
			for b := 0; b < q; b++ {
				lhs := f.Pow(f.Add(a, b), p)
				rhs := f.Add(f.Pow(a, p), f.Pow(b, p))
				if lhs != rhs {
					t.Fatalf("GF(%d): Frobenius fails at (%d,%d)", q, a, b)
				}
			}
		}
	}
}

func TestGF4KnownTable(t *testing.T) {
	// GF(4) = GF(2)[x]/(x²+x+1): indices 0,1,2=x,3=x+1.
	f, err := New(4)
	if err != nil {
		t.Fatal(err)
	}
	ext := f.(Ext)
	if !ext.Modulus().Equal(Poly{1, 1, 1}) {
		t.Fatalf("GF(4) modulus = %v, want x^2+x+1", ext.Modulus())
	}
	mul := [4][4]int{
		{0, 0, 0, 0},
		{0, 1, 2, 3},
		{0, 2, 3, 1}, // x·x = x+1, x·(x+1) = x²+x = 1
		{0, 3, 1, 2},
	}
	for a := 0; a < 4; a++ {
		for b := 0; b < 4; b++ {
			if got := f.Mul(a, b); got != mul[a][b] {
				t.Errorf("GF(4): %d·%d = %d, want %d", a, b, got, mul[a][b])
			}
			// char 2: add = xor of coefficient vectors = integer xor here.
			if got := f.Add(a, b); got != a^b {
				t.Errorf("GF(4): %d+%d = %d, want %d", a, b, got, a^b)
			}
		}
	}
}

func TestInverseOfZeroPanics(t *testing.T) {
	for _, q := range []int{5, 9} {
		f, err := New(q)
		if err != nil {
			t.Fatal(err)
		}
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("GF(%d): Inv(0) did not panic", q)
				}
			}()
			f.Inv(0)
		}()
	}
}

func TestPowNegativeExponent(t *testing.T) {
	f, err := New(9)
	if err != nil {
		t.Fatal(err)
	}
	for a := 1; a < 9; a++ {
		if f.Mul(f.Pow(a, -1), a) != 1 {
			t.Errorf("GF(9): a^-1·a ≠ 1 for a=%d", a)
		}
		if f.Pow(a, -3) != f.Inv(f.Pow(a, 3)) {
			t.Errorf("GF(9): a^-3 mismatch for a=%d", a)
		}
	}
	if f.Pow(0, 0) != 1 {
		t.Error("0^0 should be 1")
	}
}

func TestPowPropertyQuick(t *testing.T) {
	f, err := New(27)
	if err != nil {
		t.Fatal(err)
	}
	cfg := &quick.Config{MaxCount: 500}
	// a^(j+k) = a^j · a^k
	prop := func(a, j, k uint8) bool {
		av := int(a)%26 + 1
		jv, kv := int(j)%30, int(k)%30
		return f.Pow(av, jv+kv) == f.Mul(f.Pow(av, jv), f.Pow(av, kv))
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}
