// Package ff implements finite (Galois) field arithmetic from scratch, as
// needed by the two constructions of the Erdős–Rényi polarity graph ER_q in
// the paper:
//
//   - the projective-geometry construction (§6.1) needs arithmetic in F_q
//     for prime powers q = p^a, to evaluate dot products of 3-vectors;
//   - the Singer difference-set construction (§6.2) needs the cubic
//     extension GF(q³) built from a degree-3 primitive polynomial over F_q,
//     to enumerate the powers of a generator ζ.
//
// Field elements are represented as integer indices in [0, q). For a prime
// field F_p the index is the residue itself. For an extension field GF(p^a)
// built over a base field K with a monic irreducible polynomial m(x) of
// degree d, an element Σ c_i x^i is encoded as the base-|K| integer
// Σ idx(c_i)·|K|^i. In particular index 0 is the additive identity, index 1
// the multiplicative identity, and index |K| is the adjoined root x.
//
// Fields of order up to tableLimit precompute full operation tables so that
// the hot loops of graph construction run on array lookups.
package ff

import (
	"fmt"

	"polarfly/internal/numtheory"
)

// Field is finite field arithmetic on elements encoded as indices in
// [0, Order()). All operations panic on out-of-range inputs; Inv and Div
// panic on division by zero. Implementations are immutable and safe for
// concurrent use.
type Field interface {
	// Order returns the number of elements q.
	Order() int
	// Char returns the characteristic p (q = p^Degree()).
	Char() int
	// Degree returns the extension degree a over the prime field.
	Degree() int
	// Add returns a + b.
	Add(a, b int) int
	// Sub returns a - b.
	Sub(a, b int) int
	// Neg returns -a.
	Neg(a int) int
	// Mul returns a * b.
	Mul(a, b int) int
	// Inv returns a⁻¹ and panics if a == 0.
	Inv(a int) int
	// Div returns a / b and panics if b == 0.
	Div(a, b int) int
	// Pow returns a^k for any integer k (negative k uses Inv; 0^0 == 1;
	// 0^negative panics).
	Pow(a, k int) int
	// String describes the field, e.g. "GF(9) = GF(3)[x]/(x^2+1)".
	String() string
}

// tableLimit is the largest field order for which full q×q operation tables
// are precomputed. 512 covers every base field used by the paper's design
// sweep (q ≤ 128) with at most 256 KiB per table.
const tableLimit = 512

// primeField is F_p with elements 0..p-1 under arithmetic mod p.
type primeField struct {
	p   int
	inv []int // inv[a] = a⁻¹ mod p for a ≥ 1
}

// NewPrimeField returns F_p. It returns an error unless p is prime.
func NewPrimeField(p int) (Field, error) {
	if !numtheory.IsPrime(p) {
		return nil, fmt.Errorf("ff: %d is not prime", p)
	}
	f := &primeField{p: p, inv: make([]int, p)}
	for a := 1; a < p; a++ {
		v, ok := numtheory.ModInverse(a, p)
		if !ok {
			return nil, fmt.Errorf("ff: no inverse for %d mod %d", a, p)
		}
		f.inv[a] = v
	}
	return f, nil
}

func (f *primeField) Order() int  { return f.p }
func (f *primeField) Char() int   { return f.p }
func (f *primeField) Degree() int { return 1 }

func (f *primeField) check(a int) {
	if a < 0 || a >= f.p {
		panic(fmt.Sprintf("ff: element %d out of range for GF(%d)", a, f.p))
	}
}

func (f *primeField) Add(a, b int) int {
	f.check(a)
	f.check(b)
	s := a + b
	if s >= f.p {
		s -= f.p
	}
	return s
}

func (f *primeField) Sub(a, b int) int {
	f.check(a)
	f.check(b)
	s := a - b
	if s < 0 {
		s += f.p
	}
	return s
}

func (f *primeField) Neg(a int) int {
	f.check(a)
	if a == 0 {
		return 0
	}
	return f.p - a
}

func (f *primeField) Mul(a, b int) int {
	f.check(a)
	f.check(b)
	return a * b % f.p
}

func (f *primeField) Inv(a int) int {
	f.check(a)
	if a == 0 {
		panic("ff: inverse of zero")
	}
	return f.inv[a]
}

func (f *primeField) Div(a, b int) int { return f.Mul(a, f.Inv(b)) }

func (f *primeField) Pow(a, k int) int { return genericPow(f, a, k) }

func (f *primeField) String() string { return fmt.Sprintf("GF(%d)", f.p) }

// genericPow implements exponentiation by squaring on top of Mul/Inv.
func genericPow(f Field, a, k int) int {
	if k < 0 {
		a = f.Inv(a) // panics for a == 0, as required
		k = -k
	}
	result := 1
	for k > 0 {
		if k&1 == 1 {
			result = f.Mul(result, a)
		}
		a = f.Mul(a, a)
		k >>= 1
	}
	return result
}

// New returns the finite field of order q = p^a. For prime q this is F_p;
// for proper prime powers it is the extension field built from the
// lexicographically smallest monic primitive polynomial over F_p (so the
// representation is deterministic and reproducible, per §6.2 of the paper).
// It returns an error if q is not a prime power.
func New(q int) (Field, error) {
	p, a, ok := numtheory.IsPrimePower(q)
	if !ok {
		return nil, fmt.Errorf("ff: %d is not a prime power", q)
	}
	if a == 1 {
		return NewPrimeField(p)
	}
	base, err := NewPrimeField(p)
	if err != nil {
		return nil, err
	}
	mod, err := FindPrimitivePoly(base, a)
	if err != nil {
		return nil, fmt.Errorf("ff: GF(%d): %w", q, err)
	}
	return NewExtension(base, mod)
}
