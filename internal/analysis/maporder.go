package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrder flags `range` over a map whose iteration order can leak into an
// order-sensitive sink: appending key- or value-derived elements to a
// slice that is never sorted afterwards, comparison-guarded winner
// selection that records the map key, or printing from inside the loop.
// Go randomizes map iteration order per run, so any of these makes output
// differ between identical runs — the exact bug class behind PR 1's
// -sweep winner fix. Iterate a sorted key slice (or sort the result)
// instead.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "map iteration order must not reach order-sensitive sinks (append without sort, winner selection, printing)",
	Run:  runMapOrder,
}

func runMapOrder(pass *Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				if t := pass.Info.TypeOf(rs.X); t == nil {
					return true
				} else if _, isMap := t.Underlying().(*types.Map); !isMap {
					return true
				}
				checkMapRange(pass, fd.Body, rs)
				return true
			})
		}
	}
}

func checkMapRange(pass *Pass, scope *ast.BlockStmt, rs *ast.RangeStmt) {
	define := rs.Tok == token.DEFINE
	keyObj := rangeVarObject(pass.Info, rs.Key, define)
	valObj := rangeVarObject(pass.Info, rs.Value, define)
	if keyObj == nil && valObj == nil {
		return
	}

	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			checkAppendSink(pass, scope, rs, n, keyObj, valObj)
		case *ast.IfStmt:
			checkWinnerSink(pass, rs, n, keyObj)
		case *ast.CallExpr:
			checkPrintSink(pass, n, keyObj, valObj)
		}
		return true
	})
}

// checkAppendSink flags s = append(s, x...) where x derives from the
// iteration variables and s is declared outside the loop, unless s is
// passed to a sort/slices call later in the enclosing function.
func checkAppendSink(pass *Pass, scope *ast.BlockStmt, rs *ast.RangeStmt, as *ast.AssignStmt, keyObj, valObj types.Object) {
	for i, rhs := range as.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || len(call.Args) < 2 {
			continue
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || id.Name != "append" {
			continue
		}
		if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); !isBuiltin {
			continue
		}
		derived := false
		for _, arg := range call.Args[1:] {
			if usesObject(pass.Info, arg, keyObj, valObj) {
				derived = true
			}
		}
		if !derived || i >= len(as.Lhs) {
			continue
		}
		if declaredWithin(pass.Info, as.Lhs[i], rs) {
			continue
		}
		slice := types.ExprString(as.Lhs[i])
		if sortedAfter(pass, scope, rs.End(), slice) {
			continue
		}
		pass.Reportf(as.Pos(),
			"append of map-iteration data to %q without a later sort: element order follows randomized map order", slice)
	}
}

// declaredWithin reports whether expr is a simple identifier whose
// declaration lies inside the range statement (a loop-local accumulator).
func declaredWithin(info *types.Info, expr ast.Expr, rs *ast.RangeStmt) bool {
	id, ok := ast.Unparen(expr).(*ast.Ident)
	if !ok {
		return false
	}
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	return obj != nil && obj.Pos() >= rs.Pos() && obj.Pos() < rs.End()
}

// sortedAfter reports whether a sort or slices package call mentioning
// slice (by expression text, anywhere in its arguments — including nested
// wrappers like sort.Reverse(sort.IntSlice(s))) appears after pos in
// scope.
func sortedAfter(pass *Pass, scope *ast.BlockStmt, pos token.Pos, slice string) bool {
	found := false
	ast.Inspect(scope, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		f := calleeFunc(pass.Info, call)
		if f == nil || f.Pkg() == nil {
			return true
		}
		if p := f.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(sub ast.Node) bool {
				if e, ok := sub.(ast.Expr); ok && types.ExprString(e) == slice {
					found = true
				}
				return !found
			})
		}
		return true
	})
	return found
}

// checkWinnerSink flags comparison-guarded assignments that record the map
// key in a variable outliving the loop: `if x < best { bestKey = k }` picks
// an arbitrary winner among ties, in randomized map order.
func checkWinnerSink(pass *Pass, rs *ast.RangeStmt, ifs *ast.IfStmt, keyObj types.Object) {
	if keyObj == nil || !hasRelationalOp(ifs.Cond) {
		return
	}
	ast.Inspect(ifs.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.ASSIGN {
			return true
		}
		for i, lhs := range as.Lhs {
			if i >= len(as.Rhs) && len(as.Rhs) != 1 {
				break
			}
			rhs := as.Rhs[0]
			if len(as.Rhs) > i {
				rhs = as.Rhs[i]
			}
			if !usesObject(pass.Info, rhs, keyObj) {
				continue
			}
			switch ast.Unparen(lhs).(type) {
			case *ast.Ident, *ast.SelectorExpr:
			default:
				continue
			}
			if declaredWithin(pass.Info, lhs, rs) {
				continue
			}
			pass.Reportf(as.Pos(),
				"comparison-guarded assignment records map key %q: ties resolve in randomized map order; iterate sorted keys instead", keyObj.Name())
		}
		return true
	})
}

func hasRelationalOp(cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		if be, ok := n.(*ast.BinaryExpr); ok {
			switch be.Op {
			case token.LSS, token.GTR, token.LEQ, token.GEQ:
				found = true
			}
		}
		return !found
	})
	return found
}

// checkPrintSink flags fmt printing of iteration data from inside the
// loop: the output line order follows randomized map order.
func checkPrintSink(pass *Pass, call *ast.CallExpr, keyObj, valObj types.Object) {
	f := calleeFunc(pass.Info, call)
	if f == nil || f.Pkg() == nil || f.Pkg().Path() != "fmt" {
		return
	}
	switch f.Name() {
	case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
	default:
		return
	}
	for _, arg := range call.Args {
		if usesObject(pass.Info, arg, keyObj, valObj) {
			pass.Reportf(call.Pos(),
				"fmt.%s inside a map range prints in randomized map order; iterate sorted keys instead", f.Name())
			return
		}
	}
}
