package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Module is the whole-program view shared by the call-graph-aware
// analyzers (hotalloc, gocapture, dettaint). It indexes every function
// declaration across the loaded packages, resolves the source directives
// that configure analysis (hot-path roots, cold guards, determinism
// sinks), and memoizes the hot-path reachability set and the
// interprocedural taint summaries so each analyzer pays for them once.
//
// Directives, all ordinary comments so they need no build tooling:
//
//	//lint:hotpath <reason>   on a func decl: a reachability root — the
//	                          function and everything it (transitively)
//	                          calls on non-cold paths must be proven
//	                          allocation-free by hotalloc.
//	lint:cold                 in a field or var comment: conditions that
//	                          test this object (x, x != nil, x == nil,
//	                          or a && conjunct of those) guard cold
//	                          paths; their if-bodies are not analyzed.
//	lint:detsink              in a type comment: values stored into this
//	                          type's fields are determinism-critical;
//	                          dettaint reports nondeterministic writes.
type Module struct {
	Pkgs []*Package

	funcs    map[*types.Func]*funcNode
	funcList []*types.Func // deterministic iteration order
	cold     map[types.Object]bool
	sinks    map[types.Object]bool // lint:detsink type names
	roots    []*types.Func

	hot       map[*types.Func]hotVia
	summaries map[*types.Func]*taintSummary
}

// funcNode ties a function object to its declaration and owning package.
type funcNode struct {
	fn   *types.Func
	decl *ast.FuncDecl
	pkg  *Package
}

// hotVia records how a function became hot-reachable: the caller and the
// call site, or zeros for a declared root.
type hotVia struct {
	caller *types.Func
	pos    token.Pos
}

const (
	hotpathPrefix = "//lint:hotpath"
	coldMarker    = "lint:cold"
	sinkMarker    = "lint:detsink"
)

// NewModule indexes pkgs and resolves analysis directives. It is cheap
// relative to type-checking; reachability and taint summaries are
// computed lazily on first use.
func NewModule(pkgs []*Package) *Module {
	m := &Module{
		Pkgs:  pkgs,
		funcs: make(map[*types.Func]*funcNode),
		cold:  make(map[types.Object]bool),
		sinks: make(map[types.Object]bool),
	}
	for _, p := range pkgs {
		for _, file := range p.Files {
			m.indexFile(p, file)
		}
	}
	sort.Slice(m.funcList, func(i, j int) bool {
		return m.funcList[i].Pos() < m.funcList[j].Pos()
	})
	sort.Slice(m.roots, func(i, j int) bool {
		return m.roots[i].Pos() < m.roots[j].Pos()
	})
	return m
}

func (m *Module) indexFile(p *Package, file *ast.File) {
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok {
			continue
		}
		fn, ok := p.Info.Defs[fd.Name].(*types.Func)
		if !ok {
			continue
		}
		m.funcs[fn] = &funcNode{fn: fn, decl: fd, pkg: p}
		m.funcList = append(m.funcList, fn)
		if commentGroupHasPrefix(fd.Doc, hotpathPrefix) {
			m.roots = append(m.roots, fn)
		}
	}
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.StructType:
			for _, field := range n.Fields.List {
				if commentGroupContains(field.Doc, coldMarker) ||
					commentGroupContains(field.Comment, coldMarker) {
					for _, name := range field.Names {
						if obj := p.Info.Defs[name]; obj != nil {
							m.cold[obj] = true
						}
					}
				}
			}
		case *ast.GenDecl:
			for _, spec := range n.Specs {
				switch spec := spec.(type) {
				case *ast.ValueSpec:
					if commentGroupContains(spec.Doc, coldMarker) ||
						commentGroupContains(spec.Comment, coldMarker) ||
						(len(n.Specs) == 1 && commentGroupContains(n.Doc, coldMarker)) {
						for _, name := range spec.Names {
							if obj := p.Info.Defs[name]; obj != nil {
								m.cold[obj] = true
							}
						}
					}
				case *ast.TypeSpec:
					if commentGroupContains(spec.Doc, sinkMarker) ||
						commentGroupContains(spec.Comment, sinkMarker) ||
						(len(n.Specs) == 1 && commentGroupContains(n.Doc, sinkMarker)) {
						if obj := p.Info.Defs[spec.Name]; obj != nil {
							m.sinks[obj] = true
						}
					}
				}
			}
		}
		return true
	})
}

func commentGroupHasPrefix(cg *ast.CommentGroup, prefix string) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		if strings.HasPrefix(c.Text, prefix) {
			return true
		}
	}
	return false
}

func commentGroupContains(cg *ast.CommentGroup, marker string) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		if strings.Contains(c.Text, marker) {
			return true
		}
	}
	return false
}

// Roots returns the declared //lint:hotpath reachability roots in source
// order.
func (m *Module) Roots() []*types.Func { return m.roots }

// node returns the declaration record for a module-local function, or nil
// for imported/synthetic functions.
func (m *Module) node(fn *types.Func) *funcNode {
	if fn == nil {
		return nil
	}
	if n, ok := m.funcs[fn]; ok {
		return n
	}
	// Generic instantiations resolve to a distinct *types.Func; fall back
	// to the origin declaration.
	if o := fn.Origin(); o != fn {
		return m.funcs[o]
	}
	return nil
}

// isLocal reports whether pkg belongs to the analyzed module.
func (m *Module) isLocal(pkg *types.Package) bool {
	if pkg == nil {
		return false
	}
	for _, p := range m.Pkgs {
		if p.Types == pkg {
			return true
		}
	}
	return false
}

// coldObject reports whether obj carries a lint:cold marker.
func (m *Module) coldObject(obj types.Object) bool { return obj != nil && m.cold[obj] }

// sinkType reports whether named resolves to a lint:detsink-marked type.
func (m *Module) sinkType(t types.Type) bool {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Named:
			return m.sinks[tt.Obj()]
		default:
			return false
		}
	}
}

// callTargets resolves the possible callees of call within pkg. For a
// static call it returns the single callee; for a call through an
// interface method it returns every module-local implementation of that
// method (the module's interface surface is closed for analysis
// purposes). dynamic is true when the call goes through a function value
// or an interface with no local implementation, i.e. the target set is
// unknowable statically. Builtins and conversions return (nil, false).
func (m *Module) callTargets(pkg *Package, call *ast.CallExpr) (targets []*types.Func, dynamic bool) {
	fun := ast.Unparen(call.Fun)
	if tv, ok := pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		return nil, false // conversion
	}
	switch fun := fun.(type) {
	case *ast.Ident:
		switch obj := pkg.Info.Uses[fun].(type) {
		case *types.Func:
			return []*types.Func{obj}, false
		case *types.Builtin:
			return nil, false
		}
		return nil, true // call through a function-typed variable
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			recv := sel.Recv()
			if iface, ok := recv.Underlying().(*types.Interface); ok {
				impls := m.implementers(iface, fun.Sel.Name)
				if len(impls) == 0 {
					return nil, true
				}
				return impls, false
			}
		}
		if f, ok := pkg.Info.Uses[fun.Sel].(*types.Func); ok {
			return []*types.Func{f}, false
		}
		return nil, true // func-typed field or variable
	case *ast.IndexExpr, *ast.IndexListExpr:
		// Generic instantiation: resolve the underlying identifier.
		var x ast.Expr
		if ie, ok := fun.(*ast.IndexExpr); ok {
			x = ie.X
		} else {
			x = fun.(*ast.IndexListExpr).X
		}
		inner := &ast.CallExpr{Fun: x, Args: call.Args}
		return m.callTargets(pkg, inner)
	}
	return nil, true
}

// implementers returns every module-local method named name whose
// receiver type implements iface, sorted by position for deterministic
// reporting.
func (m *Module) implementers(iface *types.Interface, name string) []*types.Func {
	var out []*types.Func
	for _, fn := range m.funcList {
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Recv() == nil || fn.Name() != name {
			continue
		}
		rt := sig.Recv().Type()
		if types.Implements(rt, iface) {
			out = append(out, fn)
			continue
		}
		if _, isPtr := rt.(*types.Pointer); !isPtr {
			if types.Implements(types.NewPointer(rt), iface) {
				out = append(out, fn)
			}
		}
	}
	return out
}

// HotFuncs computes (once) the set of functions reachable from the
// //lint:hotpath roots via non-cold paths, mapping each to how it was
// reached. Calls inside cold regions (see coldRegions) do not propagate
// reachability; calls to functions outside the module are not traversed —
// hotalloc flags those at the call site instead.
func (m *Module) HotFuncs() map[*types.Func]hotVia {
	if m.hot != nil {
		return m.hot
	}
	m.hot = make(map[*types.Func]hotVia)
	queue := make([]*types.Func, 0, len(m.roots))
	for _, r := range m.roots {
		m.hot[r] = hotVia{}
		queue = append(queue, r)
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		node := m.node(fn)
		if node == nil || node.decl.Body == nil {
			continue
		}
		cold := m.coldRegions(node.pkg.Info, node.decl.Body)
		ast.Inspect(node.decl.Body, func(n ast.Node) bool {
			if cold[n] {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			targets, _ := m.callTargets(node.pkg, call)
			for _, t := range targets {
				tn := m.node(t)
				if tn == nil {
					continue // outside the module; hotalloc reports at site
				}
				key := tn.fn
				if _, seen := m.hot[key]; !seen {
					m.hot[key] = hotVia{caller: fn, pos: call.Pos()}
					queue = append(queue, key)
				}
			}
			return true
		})
	}
	return m.hot
}

// hotTrace renders the reachability chain from a root to fn, e.g.
// "cycleLoop → advanceLinks → push".
func (m *Module) hotTrace(fn *types.Func) string {
	hot := m.HotFuncs()
	var names []string
	seen := make(map[*types.Func]bool)
	for f := fn; f != nil && !seen[f]; {
		seen[f] = true
		names = append(names, f.Name())
		via, ok := hot[f]
		if !ok {
			break
		}
		f = via.caller
	}
	for i, j := 0, len(names)-1; i < j; i, j = i+1, j-1 {
		names[i], names[j] = names[j], names[i]
	}
	return strings.Join(names, " → ")
}

// coldRegions returns the statement subtrees of body that only execute on
// cold paths and are therefore excluded from hot-path analysis:
//
//   - the body of an if whose condition tests a lint:cold-marked object
//     (x, !x is NOT cold, x != nil, x == nil, indexing/selecting through
//     one, or any && conjunct of those);
//   - the body of an if that terminates by returning a non-nil error or
//     panicking (failure exits are off the steady-state path);
//   - a statement that is itself a panic call (crash path).
//
// Else branches always stay hot.
func (m *Module) coldRegions(info *types.Info, body *ast.BlockStmt) map[ast.Node]bool {
	cold := make(map[ast.Node]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.IfStmt:
			if m.coldCond(info, n.Cond) || errorExitBlock(info, n.Body) {
				cold[n.Body] = true
			}
		case *ast.ExprStmt:
			if isPanicCall(info, n.X) {
				cold[n] = true
			}
		}
		return true
	})
	return cold
}

// coldCond reports whether cond is a cold-path guard per coldRegions.
func (m *Module) coldCond(info *types.Info, cond ast.Expr) bool {
	cond = ast.Unparen(cond)
	switch e := cond.(type) {
	case *ast.BinaryExpr:
		switch e.Op {
		case token.LAND:
			return m.coldCond(info, e.X) || m.coldCond(info, e.Y)
		case token.EQL, token.NEQ:
			if isNilIdent(info, e.X) {
				return m.coldRef(info, e.Y)
			}
			if isNilIdent(info, e.Y) {
				return m.coldRef(info, e.X)
			}
		}
		return false
	default:
		return m.coldRef(info, cond)
	}
}

// coldRef reports whether e reads a lint:cold-marked object, looking
// through selectors and indexing.
func (m *Module) coldRef(info *types.Info, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return m.coldObject(info.Uses[e])
	case *ast.SelectorExpr:
		return m.coldObject(info.Uses[e.Sel]) || m.coldRef(info, e.X)
	case *ast.IndexExpr:
		return m.coldRef(info, e.X)
	}
	return false
}

func isNilIdent(info *types.Info, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := info.Uses[id].(*types.Nil)
	return isNil
}

// errorExitBlock reports whether block ends by returning a non-nil error
// or panicking — the shape of a failure exit.
func errorExitBlock(info *types.Info, block *ast.BlockStmt) bool {
	if block == nil || len(block.List) == 0 {
		return false
	}
	switch last := block.List[len(block.List)-1].(type) {
	case *ast.ReturnStmt:
		for _, res := range last.Results {
			if isNilIdent(info, res) {
				continue
			}
			// A concrete error type (e.g. *ProgressError) marks the exit
			// just as well as the error interface itself.
			if tv, ok := info.Types[res]; ok && implementsError(tv.Type) {
				return true
			}
		}
		return false
	case *ast.ExprStmt:
		return isPanicCall(info, last.X)
	}
	return false
}

func isPanicCall(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "panic"
}

// describeRoot renders a root list for diagnostics, e.g. when no roots
// are declared.
func (m *Module) describeRoot() string {
	if len(m.roots) == 0 {
		return "no //lint:hotpath roots declared"
	}
	names := make([]string, len(m.roots))
	for i, r := range m.roots {
		names[i] = r.Name()
	}
	return fmt.Sprintf("roots: %s", strings.Join(names, ", "))
}
