package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatCmp flags == and != between floating-point operands. Algorithm 1's
// waterfill shares are quotients of subtracted floats, so exact equality
// silently depends on rounding; model comparisons must use an epsilon
// tolerance. Exact sentinel checks (comparing against a value that was
// stored, never computed) are legitimate — suppress those with
// //lint:ignore floatcmp and a reason.
var FloatCmp = &Analyzer{
	Name: "floatcmp",
	Doc:  "floating-point == / != must use a tolerance (or a justified suppression)",
	Run:  runFloatCmp,
}

func runFloatCmp(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isFloat(pass.Info.TypeOf(be.X)) && !isFloat(pass.Info.TypeOf(be.Y)) {
				return true
			}
			// Both sides constant folds at compile time; nothing can drift.
			if pass.Info.Types[be.X].Value != nil && pass.Info.Types[be.Y].Value != nil {
				return true
			}
			pass.Reportf(be.Pos(),
				"floating-point %s comparison; use an epsilon tolerance, or //lint:ignore floatcmp with a reason for exact sentinel checks", be.Op)
			return true
		})
	}
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
