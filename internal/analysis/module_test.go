package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestReadModuleInfo(t *testing.T) {
	dir := t.TempDir()
	gomod := filepath.Join(dir, "go.mod")
	if err := os.WriteFile(gomod, []byte("module example.com/m\n\ngo 1.21\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	path, ver, err := readModuleInfo(gomod)
	if err != nil {
		t.Fatal(err)
	}
	if path != "example.com/m" || ver != "1.21" {
		t.Errorf("got (%q, %q), want (example.com/m, 1.21)", path, ver)
	}
	if err := os.WriteFile(gomod, []byte("go 1.21\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := readModuleInfo(gomod); err == nil {
		t.Error("go.mod without a module directive should error")
	}
}

func TestGoVersionBefore(t *testing.T) {
	cases := []struct {
		v    string
		want bool
	}{
		{"1.21", true},
		{"1.21.5", true},
		{"1.19", true},
		{"1.22", false},
		{"1.22.1", false},
		{"1.23", false},
		{"2.0", false},
		{"", false}, // unknown: assume modern semantics
		{"bogus", false},
	}
	for _, tc := range cases {
		if got := goVersionBefore(tc.v, 1, 22); got != tc.want {
			t.Errorf("goVersionBefore(%q, 1, 22) = %v, want %v", tc.v, got, tc.want)
		}
	}
}

// TestLoadModuleMultiPackage builds a two-package module on disk and runs
// gocapture across it: the cross-package call-graph must recognise the
// local parrun.Map shape, and the go.mod `go 1.21` directive must enable
// the pre-1.22 loop-variable capture check.
func TestLoadModuleMultiPackage(t *testing.T) {
	root := t.TempDir()
	write := func(rel, src string) {
		t.Helper()
		full := filepath.Join(root, rel)
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(full, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module tmpmod\n\ngo 1.21\n")
	write("parrun/parrun.go", `package parrun

import "sync"

// Map runs fn(0..n-1) concurrently, committing into index-owned slots.
func Map(n int, fn func(int) error) []error {
	errs := make([]error, n)
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				errs[i] = fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return errs
}
`)
	write("use/use.go", `package use

import "tmpmod/parrun"

func Sum(n int) int {
	total := 0
	parrun.Map(n, func(i int) error {
		total += i
		return nil
	})
	return total
}

func Capture(n int) {
	for i := 0; i < n; i++ {
		go func() {
			_ = i
		}()
	}
}
`)

	pkgs, err := LoadModule(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("loaded %d packages, want 2", len(pkgs))
	}
	for _, p := range pkgs {
		if p.GoVersion != "1.21" {
			t.Errorf("package %s GoVersion = %q, want 1.21", p.Path, p.GoVersion)
		}
	}

	diags := Run(pkgs, []*Analyzer{GoCapture}, nil)
	var msgs []string
	for _, d := range diags {
		msgs = append(msgs, d.Message)
	}
	find := func(sub string) bool {
		for _, m := range msgs {
			if strings.Contains(m, sub) {
				return true
			}
		}
		return false
	}
	// The unsynchronised shared write through the parrun.Map closure.
	if !find("total") {
		t.Errorf("expected a gocapture finding for the captured write to total, got %v", msgs)
	}
	// The pre-1.22 loop-variable capture, enabled by the go 1.21 directive.
	if !find("loop variable") {
		t.Errorf("expected a pre-1.22 loop-variable capture finding, got %v", msgs)
	}
	// The slot-pattern writes inside parrun.Map itself must stay clean.
	if find("errs") {
		t.Errorf("slot-pattern writes in parrun.Map should not be flagged, got %v", msgs)
	}
}
