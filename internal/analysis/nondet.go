package analysis

import (
	"go/ast"
	"go/types"
)

// Nondeterminism bans ambient nondeterminism sources: wall-clock reads
// (time.Now and friends), the globally seeded math/rand source, and
// select statements with multiple communication cases (which resolve
// uniformly at random when several are ready). Simulator and model
// packages must be bit-for-bit reproducible — that is how the paper's
// theorems are checked — so randomness must flow from an explicit seed
// and time from the simulated cycle counter. The shipped allowlist file
// exempts cmd/ and examples/, where wall-clock output is legitimate.
var Nondeterminism = &Analyzer{
	Name: "nondeterminism",
	Doc:  "no wall-clock time, unseeded math/rand, or racy select in deterministic packages",
	Run:  runNondeterminism,
}

// seededConstructors are the math/rand entry points that do not touch the
// global source; everything else at package level does.
var seededConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true, // math/rand/v2
}

func runNondeterminism(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkNondetCall(pass, n)
			case *ast.SelectStmt:
				comm := 0
				for _, clause := range n.Body.List {
					if cc, ok := clause.(*ast.CommClause); ok && cc.Comm != nil {
						comm++
					}
				}
				if comm >= 2 {
					pass.Reportf(n.Pos(),
						"select with %d communication cases resolves uniformly at random when several are ready; restructure for a deterministic order", comm)
				}
			}
			return true
		})
	}
}

func checkNondetCall(pass *Pass, call *ast.CallExpr) {
	f := calleeFunc(pass.Info, call)
	if f == nil || f.Pkg() == nil {
		return
	}
	switch f.Pkg().Path() {
	case "time":
		switch f.Name() {
		case "Now", "Since", "Until":
			pass.Reportf(call.Pos(),
				"time.%s reads the wall clock; deterministic packages must use the simulated cycle counter", f.Name())
		}
	case "math/rand", "math/rand/v2":
		if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
			return // method on an explicitly seeded *rand.Rand
		}
		if !seededConstructors[f.Name()] {
			pass.Reportf(call.Pos(),
				"rand.%s draws from the global (unseeded) source; use rand.New(rand.NewSource(seed)) so runs are reproducible", f.Name())
		}
	}
}
