package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Exhaustive checks that every switch over a module-local enum — a named
// integer type with two or more package-level constants, like the netsim
// trace-event kinds — either covers all declared values or carries a
// default clause. Without this, adding an event kind (PR 1 added
// TraceStall and TraceBufferOccupancy) silently falls through existing
// collectors instead of failing loudly.
var Exhaustive = &Analyzer{
	Name: "exhaustive",
	Doc:  "switches over module-local enums must cover every declared value or have a default",
	Run:  runExhaustive,
}

func runExhaustive(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			checkSwitch(pass, sw)
			return true
		})
	}
}

func checkSwitch(pass *Pass, sw *ast.SwitchStmt) {
	tagType := pass.Info.TypeOf(sw.Tag)
	named, ok := tagType.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || !pass.IsLocal(named.Obj().Pkg()) {
		return
	}
	basic, ok := named.Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsInteger == 0 {
		return
	}
	members := enumMembers(named)
	if len(members) < 2 {
		return
	}

	covered := make([]constant.Value, 0, len(members))
	for _, clause := range sw.Body.List {
		cc, ok := clause.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			return // default clause: new values cannot fall through silently
		}
		for _, expr := range cc.List {
			tv := pass.Info.Types[expr]
			if tv.Value == nil {
				return // non-constant case; can't reason about coverage
			}
			covered = append(covered, tv.Value)
		}
	}

	var missing []string
	for _, m := range members {
		v := m.Val()
		hit := false
		for _, c := range covered {
			if constant.Compare(v, token.EQL, c) {
				hit = true
				break
			}
		}
		if !hit {
			missing = append(missing, m.Name())
		}
	}
	if len(missing) > 0 {
		pass.Reportf(sw.Pos(), "switch on %s misses %s; add cases or a default clause",
			named.Obj().Name(), strings.Join(missing, ", "))
	}
}

// enumMembers returns the package-level constants of exactly type t,
// deduplicated by value (the first declared name wins, so aliases don't
// demand redundant cases), sorted by constant value.
func enumMembers(named *types.Named) []*types.Const {
	scope := named.Obj().Pkg().Scope()
	var all []*types.Const
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), named) {
			continue
		}
		all = append(all, c)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Pos() < all[j].Pos() })
	var out []*types.Const
	for _, c := range all {
		dup := false
		for _, have := range out {
			if constant.Compare(c.Val(), token.EQL, have.Val()) {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, c)
		}
	}
	return out
}
