package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"
)

// This file implements the intra-procedural dataflow walker behind the
// dettaint analyzer, plus the interprocedural summary fixpoint that lifts
// it to whole-module precision.
//
// Taint is a small sorted set of "kind" strings per object. Kinds come in
// three flavours:
//
//   - value kinds ("time.Now wall-clock read", "global math/rand draw"):
//     the value itself is nondeterministic;
//   - order kinds ("map iteration order", "select arrival order"): the
//     value depends on an observation order. Order kinds are dropped
//     across commutative integer accumulation (x += n over ints), which
//     is order-insensitive; float accumulation keeps them because float
//     addition does not commute bit-for-bit;
//   - param markers ("\x00param:i"): placeholders used while computing a
//     function's summary, recording that parameter i flows somewhere.
//
// The walker is flow-sensitive in statement order (assigning a clean
// value clears a variable's taint) and walks loop bodies twice to reach a
// fixpoint for taint accumulated across iterations. sort.* / slices.Sort*
// calls sanitize their argument — the canonical "range a map, collect,
// sort" pattern comes out clean.

const paramMarkerPrefix = "\x00param:"

func paramMarker(i int) string { return paramMarkerPrefix + strconv.Itoa(i) }

func paramMarkerIndex(kind string) (int, bool) {
	if !strings.HasPrefix(kind, paramMarkerPrefix) {
		return 0, false
	}
	i, err := strconv.Atoi(kind[len(paramMarkerPrefix):])
	return i, err == nil
}

func isOrderKind(kind string) bool {
	return kind == "map iteration order" || kind == "select arrival order"
}

// mergeKinds returns the sorted union of kind sets.
func mergeKinds(sets ...[]string) []string {
	var out []string
	for _, s := range sets {
		for _, k := range s {
			found := false
			for _, have := range out {
				if have == k {
					found = true
					break
				}
			}
			if !found {
				out = append(out, k)
			}
		}
	}
	sort.Strings(out)
	return out
}

func realKinds(kinds []string) []string {
	var out []string
	for _, k := range kinds {
		if _, isParam := paramMarkerIndex(k); !isParam {
			out = append(out, k)
		}
	}
	return out
}

// taintSummary is one function's interprocedural contract.
type taintSummary struct {
	retKinds  []string // source kinds that taint the results unconditionally
	retParam  []bool   // parameter i flows to a result
	sinkParam []bool   // parameter i reaches a stdout/detsink write inside
}

func (s *taintSummary) equal(o *taintSummary) bool {
	if len(s.retKinds) != len(o.retKinds) ||
		len(s.retParam) != len(o.retParam) || len(s.sinkParam) != len(o.sinkParam) {
		return false
	}
	for i := range s.retKinds {
		if s.retKinds[i] != o.retKinds[i] {
			return false
		}
	}
	for i := range s.retParam {
		if s.retParam[i] != o.retParam[i] {
			return false
		}
	}
	for i := range s.sinkParam {
		if s.sinkParam[i] != o.sinkParam[i] {
			return false
		}
	}
	return true
}

// taintSummaries computes (once) the per-function summaries by iterating
// the walker over every module function until the summaries stop
// changing, bounded at 5 rounds — enough for the module's call-depth.
func (m *Module) taintSummaries() map[*types.Func]*taintSummary {
	if m.summaries != nil {
		return m.summaries
	}
	m.summaries = make(map[*types.Func]*taintSummary, len(m.funcList))
	for round := 0; round < 5; round++ {
		changed := false
		for _, fn := range m.funcList {
			node := m.node(fn)
			if node == nil || node.decl.Body == nil {
				continue
			}
			next := m.summarize(node)
			prev, ok := m.summaries[fn]
			if !ok || !prev.equal(next) {
				m.summaries[fn] = next
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return m.summaries
}

// summarize runs one summary-mode walk over node: parameters carry
// markers, sinks record marker hits, returns record both marker and real
// flows.
func (m *Module) summarize(node *funcNode) *taintSummary {
	sig := node.fn.Type().(*types.Signature)
	sum := &taintSummary{
		retParam:  make([]bool, sig.Params().Len()),
		sinkParam: make([]bool, sig.Params().Len()),
	}
	w := &taintWalker{
		m:       m,
		pkg:     node.pkg,
		info:    node.pkg.Info,
		taint:   make(map[types.Object][]string),
		summary: sum,
	}
	for i := 0; i < sig.Params().Len(); i++ {
		w.taint[sig.Params().At(i)] = []string{paramMarker(i)}
	}
	w.block(node.decl.Body)
	sum.retKinds = mergeKinds(sum.retKinds)
	return sum
}

// reportTaint runs one report-mode walk over node: parameters are
// unknown (callers report through sinkParam), sinks fire the callback.
// Reports are deduplicated — loop bodies are walked twice for fixpoint,
// which would otherwise double every in-loop sink.
func (m *Module) reportTaint(node *funcNode, report func(pos token.Pos, kinds []string, sink string)) {
	m.taintSummaries() // ensure summaries exist
	type repKey struct {
		pos  token.Pos
		sink string
	}
	seen := make(map[repKey]bool)
	w := &taintWalker{
		m:     m,
		pkg:   node.pkg,
		info:  node.pkg.Info,
		taint: make(map[types.Object][]string),
		report: func(pos token.Pos, kinds []string, sink string) {
			k := repKey{pos, sink}
			if seen[k] {
				return
			}
			seen[k] = true
			report(pos, kinds, sink)
		},
	}
	w.block(node.decl.Body)
}

// taintWalker is one walk over one function body.
type taintWalker struct {
	m    *Module
	pkg  *Package
	info *types.Info

	taint  map[types.Object][]string
	stdout map[types.Object]bool

	summary *taintSummary // non-nil in summary mode
	report  func(pos token.Pos, kinds []string, sink string)

	// closureDepth > 0 while walking a FuncLit body inline: its return
	// statements return from the closure, not the enclosing function, so
	// they must not feed the enclosing summary.
	closureDepth int
	// rangeKeys holds the key variables of the map-range loops currently
	// being walked. A compound update indexed by the live range key
	// (m2[k] += v inside `for k, v := range m`) touches each key exactly
	// once per sweep — pointwise, hence order-independent.
	rangeKeys []types.Object
}

// liveRangeKey reports whether e is an identifier bound to the key of an
// enclosing map-range loop.
func (w *taintWalker) liveRangeKey(e ast.Expr) bool {
	// Accept any expression whose variable references are all live range
	// keys: the bare key `k`, but also a re-keying like `canon(k[0], k[1])`
	// — a pure function of the key still writes each key's slot once.
	vars := 0
	pure := true
	ast.Inspect(e, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := w.info.Uses[id].(*types.Var)
		if !ok {
			return true
		}
		vars++
		live := false
		for _, k := range w.rangeKeys {
			if k == v {
				live = true
				break
			}
		}
		if !live {
			pure = false
		}
		return true
	})
	return vars > 0 && pure
}

func (w *taintWalker) kindsOf(obj types.Object) []string {
	if obj == nil {
		return nil
	}
	return w.taint[obj]
}

func (w *taintWalker) setTaint(obj types.Object, kinds []string, strong bool) {
	if obj == nil {
		return
	}
	if strong {
		if len(kinds) == 0 {
			delete(w.taint, obj)
		} else {
			w.taint[obj] = kinds
		}
		return
	}
	if len(kinds) > 0 {
		w.taint[obj] = mergeKinds(w.taint[obj], kinds)
	}
}

// sinkHit routes a tainted flow into a sink: real kinds are reported (in
// report mode), param markers feed the summary's sinkParam.
func (w *taintWalker) sinkHit(pos token.Pos, kinds []string, sink string) {
	if len(kinds) == 0 {
		return
	}
	for _, k := range kinds {
		if i, ok := paramMarkerIndex(k); ok {
			if w.summary != nil && i < len(w.summary.sinkParam) {
				w.summary.sinkParam[i] = true
			}
		}
	}
	if w.report != nil {
		if rk := realKinds(kinds); len(rk) > 0 {
			w.report(pos, rk, sink)
		}
	}
}

func (w *taintWalker) block(b *ast.BlockStmt) {
	if b == nil {
		return
	}
	for _, s := range b.List {
		w.stmt(s)
	}
}

func (w *taintWalker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		w.block(s)
	case *ast.ExprStmt:
		w.expr(s.X)
	case *ast.AssignStmt:
		w.assignStmt(s)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					var kinds []string
					if i < len(vs.Values) {
						kinds = w.expr(vs.Values[i])
					} else if len(vs.Values) == 1 {
						kinds = w.expr(vs.Values[0])
					}
					w.setTaint(w.info.Defs[name], kinds, true)
				}
			}
		}
	case *ast.IfStmt:
		w.stmt(s.Init)
		w.expr(s.Cond)
		if acc, val, ok := maxMinIdiom(s); ok {
			// if x > acc { acc = x }: a max/min reduction commutes, so
			// observation-order kinds do not survive it; value kinds do.
			kinds := w.expr(val)
			var keep []string
			for _, k := range kinds {
				if !isOrderKind(k) {
					keep = append(keep, k)
				}
			}
			w.assignTo(acc, mergeKinds(keep, w.expr(acc)), false)
		} else {
			w.block(s.Body)
		}
		w.stmt(s.Else)
	case *ast.ForStmt:
		w.stmt(s.Init)
		for i := 0; i < 2; i++ {
			if s.Cond != nil {
				w.expr(s.Cond)
			}
			w.block(s.Body)
			w.stmt(s.Post)
		}
	case *ast.RangeStmt:
		w.rangeStmt(s)
	case *ast.SwitchStmt:
		w.stmt(s.Init)
		if s.Tag != nil {
			w.expr(s.Tag)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					w.expr(e)
				}
				for _, st := range cc.Body {
					w.stmt(st)
				}
			}
		}
	case *ast.TypeSwitchStmt:
		w.stmt(s.Init)
		w.stmt(s.Assign)
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, st := range cc.Body {
					w.stmt(st)
				}
			}
		}
	case *ast.SelectStmt:
		w.selectStmt(s)
	case *ast.ReturnStmt:
		for _, res := range s.Results {
			kinds := w.expr(res)
			if w.summary == nil || w.closureDepth > 0 {
				continue
			}
			for _, k := range kinds {
				if i, ok := paramMarkerIndex(k); ok {
					if i < len(w.summary.retParam) {
						w.summary.retParam[i] = true
					}
				} else {
					w.summary.retKinds = mergeKinds(w.summary.retKinds, []string{k})
				}
			}
		}
	case *ast.GoStmt:
		w.expr(s.Call)
	case *ast.DeferStmt:
		w.expr(s.Call)
	case *ast.SendStmt:
		w.expr(s.Chan)
		w.expr(s.Value)
	case *ast.IncDecStmt:
		w.expr(s.X)
	case *ast.LabeledStmt:
		w.stmt(s.Stmt)
	}
}

func (w *taintWalker) assignStmt(s *ast.AssignStmt) {
	switch s.Tok {
	case token.ASSIGN, token.DEFINE:
		if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
			kinds := w.expr(s.Rhs[0])
			for _, lhs := range s.Lhs {
				w.assignTo(lhs, kinds, s.Tok == token.DEFINE)
			}
			return
		}
		for i, lhs := range s.Lhs {
			var kinds []string
			if i < len(s.Rhs) {
				kinds = w.expr(s.Rhs[i])
				// Re-keying idiom: `m2[canon(k)] = v` inside a map range
				// writes one slot per key, so sweep order cannot reach the
				// stored values (value kinds still propagate).
				if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok && w.liveRangeKey(ix.Index) {
					var keep []string
					for _, k := range kinds {
						if !isOrderKind(k) {
							keep = append(keep, k)
						}
					}
					kinds = keep
				}
				if w.stdoutExpr(s.Rhs[i]) {
					if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
						obj := w.info.Defs[id]
						if obj == nil {
							obj = w.info.Uses[id]
						}
						w.markStdout(obj)
					}
				}
			}
			w.assignTo(lhs, kinds, s.Tok == token.DEFINE)
		}
	default: // compound assignment: x op= v
		kinds := w.expr(s.Rhs[0])
		w.expr(s.Lhs[0]) // evaluate for side effects (index reads)
		// Two order-insensitivity exemptions:
		//   - pointwise update keyed by the live range key (m2[k] op= v
		//     inside `for k, v := range m`): each key is touched once per
		//     sweep, so sweep order cannot matter;
		//   - commutative integer accumulation (x += n over ints).
		// Order kinds drop; value kinds (a wall-clock read is wrong in
		// any order) always keep.
		pointwise := false
		if ix, ok := ast.Unparen(s.Lhs[0]).(*ast.IndexExpr); ok && w.liveRangeKey(ix.Index) {
			pointwise = true
		}
		if pointwise || (commutativeIntOp(s.Tok) && isIntegerExpr(w.info, s.Lhs[0])) {
			var keep []string
			for _, k := range kinds {
				if !isOrderKind(k) {
					keep = append(keep, k)
				}
			}
			kinds = keep
		}
		// The accumulator's prior taint comes from its root object alone:
		// merging the full lhs expression would pull the index variable's
		// order taint into a pointwise update.
		kinds = mergeKinds(kinds, w.kindsOf(rootIdentObject(w.info, s.Lhs[0])))
		w.assignTo(s.Lhs[0], kinds, false)
	}
}

// assignTo stores kinds into the assignment target: strong update for
// plain identifiers, weak (merging) update through selectors, indexing
// and derefs. Writes into lint:detsink-marked types are sink sites.
func (w *taintWalker) assignTo(lhs ast.Expr, kinds []string, define bool) {
	switch t := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if t.Name == "_" {
			return
		}
		obj := w.info.Defs[t]
		if obj == nil {
			obj = w.info.Uses[t]
		}
		w.setTaint(obj, kinds, true)
	case *ast.SelectorExpr:
		if sel, ok := w.info.Selections[t]; ok && w.m.sinkType(sel.Recv()) {
			w.sinkHit(t.Pos(), kinds,
				fmt.Sprintf("stored into determinism-critical %s.%s", typeName(sel.Recv()), t.Sel.Name))
		}
		w.setTaint(w.info.Uses[t.Sel], kinds, false)
		w.setTaint(rootIdentObject(w.info, t.X), kinds, false)
	case *ast.IndexExpr, *ast.StarExpr:
		w.setTaint(rootIdentObject(w.info, lhs), kinds, false)
	}
}

func (w *taintWalker) rangeStmt(s *ast.RangeStmt) {
	xKinds := w.expr(s.X)
	overMap := false
	if tv, ok := w.info.Types[s.X]; ok && tv.Type != nil {
		_, overMap = tv.Type.Underlying().(*types.Map)
	}
	loopKinds := xKinds
	if overMap {
		loopKinds = mergeKinds(xKinds, []string{"map iteration order"})
	}
	define := s.Tok == token.DEFINE
	for _, v := range []ast.Expr{s.Key, s.Value} {
		if v == nil {
			continue
		}
		if define {
			if id, ok := v.(*ast.Ident); ok {
				w.setTaint(w.info.Defs[id], loopKinds, true)
				continue
			}
		}
		w.assignTo(v, loopKinds, false)
	}
	if overMap && s.Key != nil {
		if id, ok := s.Key.(*ast.Ident); ok && id.Name != "_" {
			keyObj := w.info.Defs[id]
			if keyObj == nil {
				keyObj = w.info.Uses[id]
			}
			if keyObj != nil {
				w.rangeKeys = append(w.rangeKeys, keyObj)
				defer func() { w.rangeKeys = w.rangeKeys[:len(w.rangeKeys)-1] }()
			}
		}
	}
	for i := 0; i < 2; i++ {
		w.block(s.Body)
	}
}

func (w *taintWalker) selectStmt(s *ast.SelectStmt) {
	comm := 0
	for _, c := range s.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
			comm++
		}
	}
	for _, c := range s.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		if comm >= 2 {
			if as, ok := cc.Comm.(*ast.AssignStmt); ok {
				for _, lhs := range as.Lhs {
					w.assignTo(lhs, []string{"select arrival order"}, as.Tok == token.DEFINE)
				}
			}
		} else {
			w.stmt(cc.Comm)
		}
		for _, st := range cc.Body {
			w.stmt(st)
		}
	}
}

// expr evaluates e for taint, handling calls (sources, sanitizers,
// summaries, sinks) along the way.
func (w *taintWalker) expr(e ast.Expr) []string {
	switch e := ast.Unparen(e).(type) {
	case nil:
		return nil
	case *ast.Ident:
		return w.kindsOf(w.info.Uses[e])
	case *ast.SelectorExpr:
		return mergeKinds(w.kindsOf(w.info.Uses[e.Sel]), w.kindsOf(rootIdentObject(w.info, e.X)))
	case *ast.IndexExpr:
		return mergeKinds(w.expr(e.X), w.expr(e.Index))
	case *ast.StarExpr:
		return w.expr(e.X)
	case *ast.UnaryExpr:
		return w.expr(e.X)
	case *ast.BinaryExpr:
		return mergeKinds(w.expr(e.X), w.expr(e.Y))
	case *ast.CallExpr:
		return w.call(e)
	case *ast.CompositeLit:
		var kinds []string
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				kinds = mergeKinds(kinds, w.expr(kv.Value))
			} else {
				kinds = mergeKinds(kinds, w.expr(el))
			}
		}
		return kinds
	case *ast.TypeAssertExpr:
		return w.expr(e.X)
	case *ast.SliceExpr:
		return w.expr(e.X)
	case *ast.FuncLit:
		w.closureDepth++
		w.block(e.Body) // captured variables share this walker's state
		w.closureDepth--
		return nil
	}
	return nil
}

func (w *taintWalker) call(call *ast.CallExpr) []string {
	// Conversion: taint passes through.
	if tv, ok := w.info.Types[call.Fun]; ok && tv.IsType() {
		var kinds []string
		for _, a := range call.Args {
			kinds = mergeKinds(kinds, w.expr(a))
		}
		return kinds
	}

	// Builtins: len/cap launder order taint (a count does not depend on
	// order); append/copy propagate.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := w.info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "len", "cap", "delete", "clear", "panic", "print", "println":
				for _, a := range call.Args {
					w.expr(a)
				}
				return nil
			case "copy":
				if len(call.Args) == 2 {
					w.setTaint(rootIdentObject(w.info, call.Args[0]), w.expr(call.Args[1]), false)
				}
				return nil
			default:
				var kinds []string
				for _, a := range call.Args {
					kinds = mergeKinds(kinds, w.expr(a))
				}
				return kinds
			}
		}
	}

	argKinds := make([][]string, len(call.Args))
	for i, a := range call.Args {
		argKinds[i] = w.expr(a)
	}

	// Nondeterminism sources.
	if desc := nondetSourceDesc(w.info, call); desc != "" {
		return []string{desc}
	}

	// Sanitizers: sorting imposes a deterministic order on its argument.
	// Every variable mentioned in the arguments is cleared, so wrapped
	// forms like sort.Sort(sort.Reverse(sort.IntSlice(out))) work too.
	if isSortCall(w.info, call) {
		for _, a := range call.Args {
			ast.Inspect(a, func(n ast.Node) bool {
				if _, isLit := n.(*ast.FuncLit); isLit {
					return false // a comparator's locals are its own
				}
				if id, ok := n.(*ast.Ident); ok {
					if v, isVar := w.info.Uses[id].(*types.Var); isVar {
						w.setTaint(v, nil, true)
					}
				}
				return true
			})
		}
		return nil
	}

	callee := calleeFunc(w.info, call)
	targets, _ := w.m.callTargets(w.pkg, call)
	sums := w.m.taintSummaries()

	var out []string
	resolvedLocal := false
	for _, t := range targets {
		node := w.m.node(t)
		if node == nil {
			continue
		}
		resolvedLocal = true
		sum, ok := sums[node.fn]
		if !ok {
			continue
		}
		out = mergeKinds(out, sum.retKinds)
		for i, ak := range argKinds {
			if len(ak) == 0 {
				continue
			}
			if i < len(sum.retParam) && sum.retParam[i] {
				out = mergeKinds(out, ak)
			}
			if i < len(sum.sinkParam) && sum.sinkParam[i] {
				w.sinkHit(call.Args[i].Pos(), ak,
					fmt.Sprintf("argument reaches a stdout/determinism sink inside %s", t.Name()))
			}
		}
	}

	// Stdout sinks: direct fmt printers, and any call mixing a
	// stdout-backed writer with tainted data.
	if callee != nil && callee.Pkg() != nil && callee.Pkg().Path() == "fmt" &&
		strings.HasPrefix(callee.Name(), "Print") {
		for i, ak := range argKinds {
			w.sinkHit(call.Args[i].Pos(), ak, "written to stdout via fmt."+callee.Name())
		}
	}
	stdoutInvolved := false
	for _, a := range call.Args {
		if w.stdoutExpr(a) {
			stdoutInvolved = true
		}
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && w.stdoutExpr(sel.X) {
		stdoutInvolved = true
	}
	if stdoutInvolved {
		name := "a stdout-backed writer"
		if callee != nil {
			name = pkgFuncName(callee)
		}
		for i, ak := range argKinds {
			if w.stdoutExpr(call.Args[i]) {
				continue
			}
			w.sinkHit(call.Args[i].Pos(), ak, "written to stdout via "+name)
		}
	}

	if !resolvedLocal {
		// Unknown (stdlib or dynamic) callee: assume taint flows through,
		// including the receiver of a method call (t.UnixNano() is as
		// tainted as t).
		for _, ak := range argKinds {
			out = mergeKinds(out, ak)
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			out = mergeKinds(out, w.expr(sel.X))
		}
	}
	return out
}

// stdoutExpr reports whether e denotes a writer backed by os.Stdout: the
// os.Stdout selector itself, a variable assigned from one, or a call
// wrapping one (tabwriter.NewWriter(os.Stdout, ...)).
func (w *taintWalker) stdoutExpr(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return w.stdout[w.info.Uses[e]]
	case *ast.SelectorExpr:
		if f, ok := w.info.Uses[e.Sel].(*types.Var); ok && f.Pkg() != nil &&
			f.Pkg().Path() == "os" && f.Name() == "Stdout" {
			return true
		}
		return w.stdout[w.info.Uses[e.Sel]]
	case *ast.CallExpr:
		for _, a := range e.Args {
			if w.stdoutExpr(a) {
				return true
			}
		}
	}
	return false
}

// markStdout records that obj now aliases a stdout-backed writer.
func (w *taintWalker) markStdout(obj types.Object) {
	if obj == nil {
		return
	}
	if w.stdout == nil {
		w.stdout = make(map[types.Object]bool)
	}
	w.stdout[obj] = true
}

// maxMinIdiom matches the compare-and-assign reduction shape
//
//	if x OP acc { acc = x }
//
// for a relational OP, with the if-body being exactly that single
// assignment and both operands textually matching the condition's sides.
// It returns the accumulator and value expressions.
func maxMinIdiom(s *ast.IfStmt) (acc, val ast.Expr, ok bool) {
	if s.Else != nil || s.Init != nil || len(s.Body.List) != 1 {
		return nil, nil, false
	}
	as, oka := s.Body.List[0].(*ast.AssignStmt)
	if !oka || as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return nil, nil, false
	}
	lhs := types.ExprString(ast.Unparen(as.Lhs[0]))
	rhs := types.ExprString(ast.Unparen(as.Rhs[0]))
	// The relational comparison may be one conjunct of an && chain: a
	// filtered reduction (`if k.from == v && next > max { max = next }`)
	// is still order-independent — the other conjuncts are per-item
	// predicates.
	for _, conjunct := range andConjuncts(s.Cond) {
		cond, okc := ast.Unparen(conjunct).(*ast.BinaryExpr)
		if !okc {
			continue
		}
		switch cond.Op {
		case token.LSS, token.GTR, token.LEQ, token.GEQ:
		default:
			continue
		}
		x := types.ExprString(ast.Unparen(cond.X))
		y := types.ExprString(ast.Unparen(cond.Y))
		if (lhs == x && rhs == y) || (lhs == y && rhs == x) {
			return as.Lhs[0], as.Rhs[0], true
		}
	}
	return nil, nil, false
}

// andConjuncts flattens an && chain into its conjuncts.
func andConjuncts(e ast.Expr) []ast.Expr {
	if b, ok := ast.Unparen(e).(*ast.BinaryExpr); ok && b.Op == token.LAND {
		return append(andConjuncts(b.X), andConjuncts(b.Y)...)
	}
	return []ast.Expr{e}
}

// nondetSourceDesc returns a description when call reads an ambient
// nondeterminism source, mirroring the nondeterminism analyzer's
// detection but for dataflow use.
func nondetSourceDesc(info *types.Info, call *ast.CallExpr) string {
	f := calleeFunc(info, call)
	if f == nil || f.Pkg() == nil {
		return ""
	}
	switch f.Pkg().Path() {
	case "time":
		switch f.Name() {
		case "Now", "Since", "Until":
			return "time." + f.Name() + " wall-clock read"
		}
	case "math/rand", "math/rand/v2":
		if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
			return "" // explicitly seeded *rand.Rand
		}
		if !seededConstructors[f.Name()] {
			return "global math/rand draw"
		}
	}
	return ""
}

// isSortCall matches sort.* and slices.Sort* in-place sorts.
func isSortCall(info *types.Info, call *ast.CallExpr) bool {
	f := calleeFunc(info, call)
	if f == nil || f.Pkg() == nil {
		return false
	}
	switch f.Pkg().Path() {
	case "sort":
		return true
	case "slices":
		return strings.HasPrefix(f.Name(), "Sort")
	}
	return false
}

func isIntegerExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

func commutativeIntOp(tok token.Token) bool {
	switch tok {
	case token.ADD_ASSIGN, token.MUL_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
		return true
	}
	return false
}

func typeName(t types.Type) string {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Named:
			return tt.Obj().Name()
		default:
			return t.String()
		}
	}
}
