package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// want is one expected diagnostic, parsed from a fixture's
// `// want "substring"` comments.
type want struct {
	file string
	line int
	sub  string
}

// parseWants extracts the expectations from a loaded fixture package by
// scanning its files' comments.
func parseWants(t *testing.T, pkg *Package) []want {
	t.Helper()
	var out []want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, `// want "`)
				if !ok {
					continue
				}
				end := strings.Index(rest, `"`)
				if end < 0 {
					t.Fatalf("%s: malformed want comment %q", pkg.Fset.Position(c.Pos()), c.Text)
				}
				pos := pkg.Fset.Position(c.Pos())
				out = append(out, want{file: pos.Filename, line: pos.Line, sub: rest[:end]})
			}
		}
	}
	return out
}

// runFixture loads testdata/<name> as a standalone package and runs a
// single analyzer over it.
func runFixture(t *testing.T, a *Analyzer, name string) ([]Diagnostic, *Package) {
	t.Helper()
	dir := filepath.Join("testdata", name)
	pkg, err := LoadDir(dir, "fixture/"+strings.ReplaceAll(name, "/", "_"))
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	return Run([]*Package{pkg}, []*Analyzer{a}, nil), pkg
}

// checkFixture asserts the analyzer's diagnostics match the fixture's
// want comments one for one.
func checkFixture(t *testing.T, a *Analyzer, name string, wantFindings bool) {
	t.Helper()
	diags, pkg := runFixture(t, a, name)
	wants := parseWants(t, pkg)

	if wantFindings && len(wants) == 0 {
		t.Fatalf("fixture %s has no want comments; a bad fixture must assert at least one finding", name)
	}
	if !wantFindings && len(wants) > 0 {
		t.Fatalf("clean fixture %s unexpectedly has want comments", name)
	}

	type key struct {
		file string
		line int
	}
	unmatched := make(map[key][]string)
	for _, d := range diags {
		unmatched[key{d.File, d.Line}] = append(unmatched[key{d.File, d.Line}], d.Message)
	}
	for _, w := range wants {
		k := key{w.file, w.line}
		msgs := unmatched[k]
		found := -1
		for i, m := range msgs {
			if strings.Contains(m, w.sub) {
				found = i
				break
			}
		}
		if found < 0 {
			t.Errorf("%s:%d: want diagnostic containing %q, got %v", w.file, w.line, w.sub, msgs)
			continue
		}
		unmatched[k] = append(msgs[:found], msgs[found+1:]...)
	}
	for k, msgs := range unmatched {
		for _, m := range msgs {
			t.Errorf("%s:%d: unexpected [%s] diagnostic: %s", k.file, k.line, a.Name, m)
		}
	}
}

func TestAnalyzerFixtures(t *testing.T) {
	cases := []struct {
		analyzer *Analyzer
		dir      string
	}{
		{MapOrder, "maporder"},
		{Nondeterminism, "nondeterminism"},
		{FloatCmp, "floatcmp"},
		{Exhaustive, "exhaustive"},
		{ErrCheckLite, "errcheck"},
		{HotAlloc, "hotalloc"},
		{GoCapture, "gocapture"},
		{DetTaint, "dettaint"},
	}
	for _, tc := range cases {
		t.Run(tc.dir+"/bad", func(t *testing.T) {
			checkFixture(t, tc.analyzer, tc.dir+"/bad", true)
		})
		t.Run(tc.dir+"/clean", func(t *testing.T) {
			checkFixture(t, tc.analyzer, tc.dir+"/clean", false)
		})
	}
}

// TestFixtureNamesMatchAnalyzers keeps the fixture tree and the registry
// in sync: every analyzer in All() must appear in the case table above.
func TestFixtureNamesMatchAnalyzers(t *testing.T) {
	covered := map[string]bool{
		"maporder": true, "nondeterminism": true, "floatcmp": true,
		"exhaustive": true, "errcheck": true,
		"hotalloc": true, "gocapture": true, "dettaint": true,
	}
	for _, a := range All() {
		if !covered[a.Name] {
			t.Errorf("analyzer %s has no fixture coverage", a.Name)
		}
	}
	if len(All()) != len(covered) {
		t.Errorf("registry has %d analyzers, fixtures cover %d", len(All()), len(covered))
	}
}

func TestSuppressionDirectives(t *testing.T) {
	// The floatcmp clean fixture exercises a working //lint:ignore; here a
	// synthetic package checks malformed directives are themselves flagged.
	dir := t.TempDir()
	src := `package p

//lint:ignore floatcmp
func eq(a, b float64) bool {
	return a == b
}

//lint:ignore nosuchanalyzer because reasons
func eq2(a, b float64) bool {
	return a == b
}
`
	writeFixtureFile(t, dir, "p.go", src)
	pkg, err := LoadDir(dir, "fixture/suppression")
	if err != nil {
		t.Fatal(err)
	}
	diags := Run([]*Package{pkg}, []*Analyzer{FloatCmp}, nil)

	var lintMsgs, floatMsgs []string
	for _, d := range diags {
		switch d.Analyzer {
		case "lint":
			lintMsgs = append(lintMsgs, d.Message)
		case "floatcmp":
			floatMsgs = append(floatMsgs, d.Message)
		}
	}
	if len(lintMsgs) != 2 {
		t.Errorf("want 2 lint diagnostics for malformed directives, got %v", lintMsgs)
	}
	// Malformed directives must NOT suppress; both comparisons still fire.
	if len(floatMsgs) != 2 {
		t.Errorf("want 2 floatcmp diagnostics (malformed ignores don't suppress), got %v", floatMsgs)
	}
}

func TestAllowRules(t *testing.T) {
	rules, err := ParseAllowFile("# comment\n\nnondeterminism cmd/\n* examples/\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 2 {
		t.Fatalf("want 2 rules, got %d", len(rules))
	}
	if !rules[0].matches("nondeterminism", "cmd/allreduce-sim") {
		t.Error("rule should match its analyzer under cmd/")
	}
	if rules[0].matches("floatcmp", "cmd/allreduce-sim") {
		t.Error("rule must not match other analyzers")
	}
	if !rules[1].matches("floatcmp", "examples/quickstart") {
		t.Error("wildcard rule should match any analyzer")
	}
	if _, err := ParseAllowFile("just-one-field\n"); err == nil {
		t.Error("malformed allow line should error")
	}
}

// TestAllowRuleSegmentAnchoring pins the prefix semantics: a rule for
// cmd/ covers cmd itself and its subtree, and never leaks onto a sibling
// directory that merely shares the prefix string (cmdx/).
func TestAllowRuleSegmentAnchoring(t *testing.T) {
	for _, raw := range []string{"cmd", "cmd/"} {
		rules, err := ParseAllowFile("nondeterminism " + raw + "\n")
		if err != nil {
			t.Fatal(err)
		}
		r := rules[0]
		for _, path := range []string{"cmd", "cmd/treegen", "cmd/treegen/sub"} {
			if !r.matches("nondeterminism", path) {
				t.Errorf("rule %q should match %q", raw, path)
			}
		}
		for _, path := range []string{"cmdx", "cmdx/tool", "internal/cmd2"} {
			if r.matches("nondeterminism", path) {
				t.Errorf("rule %q must not match %q", raw, path)
			}
		}
	}
}

func TestAllowRuleFiltersDiagnostics(t *testing.T) {
	diags, pkg := runFixture(t, Nondeterminism, "nondeterminism/bad")
	if len(diags) == 0 {
		t.Fatal("expected findings without allow rules")
	}
	allowed := Run([]*Package{pkg}, []*Analyzer{Nondeterminism},
		[]AllowRule{{Analyzer: "nondeterminism", PathPrefix: "."}})
	if len(allowed) != 0 {
		t.Errorf("allow rule for the package root should drop all findings, got %d", len(allowed))
	}
}

func writeFixtureFile(t *testing.T, dir, name, content string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
