package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotAlloc statically proves allocation freedom for every function
// reachable from the //lint:hotpath roots (the netsim cycle loop and the
// per-sample telemetry path). It walks the cross-package call graph from
// the roots, models lint:cold-guarded branches and failure exits as cold,
// and flags every allocation-inducing construct on the remaining hot
// region: make/new, append without a capacity guard in the same function,
// map/slice composite literals and &T{...}, interface boxing at call
// sites, closure creation, go/defer statements, string concatenation,
// variadic argument packing, string<->[]byte/[]rune conversions, and
// calls that cannot be resolved (function values) or leave the module
// (stdlib), which the analysis cannot prove anything about.
//
// This turns the allocs/op benchmark result into a lint-time proof; the
// benchreport hotcheck gate cross-checks the two views.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "functions reachable from //lint:hotpath roots must be provably allocation-free",
	Run:  runHotAlloc,
}

func runHotAlloc(pass *Pass) {
	m := pass.Module
	if m == nil || len(m.Roots()) == 0 {
		return
	}
	hot := m.HotFuncs()
	for _, fn := range m.funcList {
		if _, ok := hot[fn]; !ok {
			continue
		}
		node := m.node(fn)
		if node == nil || node.pkg.Types != pass.Pkg || node.decl.Body == nil {
			continue
		}
		checkHotFunc(pass, m, node)
	}
}

// checkHotFunc flags allocation-inducing constructs on the hot region of
// one reachable function.
func checkHotFunc(pass *Pass, m *Module, node *funcNode) {
	info := node.pkg.Info
	cold := m.coldRegions(info, node.decl.Body)
	guarded := capacityGuards(info, node.decl.Body)
	trace := m.hotTrace(node.fn)

	report := func(pos token.Pos, format string, args ...any) {
		args = append(args, trace)
		pass.Reportf(pos, format+" on the hot path (%s)", args...)
	}

	ast.Inspect(node.decl.Body, func(n ast.Node) bool {
		if cold[n] {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			checkHotCall(pass, m, node, n, guarded, report)
		case *ast.CompositeLit:
			tv, ok := info.Types[n]
			if !ok {
				return true
			}
			switch tv.Type.Underlying().(type) {
			case *types.Map:
				report(n.Pos(), "map literal allocates")
			case *types.Slice:
				report(n.Pos(), "slice literal allocates")
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					report(n.Pos(), "&composite literal escapes to the heap")
				}
			}
		case *ast.FuncLit:
			report(n.Pos(), "closure creation allocates")
		case *ast.GoStmt:
			report(n.Pos(), "go statement allocates a goroutine")
		case *ast.DeferStmt:
			report(n.Pos(), "defer allocates its record in a loop-bearing function")
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringExpr(info, n.X) {
				if tv, ok := info.Types[n]; !ok || tv.Value == nil { // constants fold at compile time
					report(n.Pos(), "string concatenation allocates")
				}
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isStringExpr(info, n.Lhs[0]) {
				report(n.Pos(), "string += allocates")
			}
		}
		return true
	})
}

// checkHotCall handles the call-shaped findings: builtin allocators,
// allocating conversions, unprovable targets, interface boxing, and
// variadic packing.
func checkHotCall(pass *Pass, m *Module, node *funcNode, call *ast.CallExpr,
	guarded map[string]bool, report func(token.Pos, string, ...any)) {
	info := node.pkg.Info

	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				report(call.Pos(), "make allocates")
			case "new":
				report(call.Pos(), "new allocates")
			case "append":
				if len(call.Args) > 0 && !guarded[types.ExprString(ast.Unparen(call.Args[0]))] {
					report(call.Pos(),
						"append without a capacity guard (len(x)==cap(x) check in the same function) may grow")
				}
			}
			return
		}
	}

	// Allocating conversions: string <-> []byte / []rune.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		dst := tv.Type.Underlying()
		src := info.Types[call.Args[0]].Type
		if src != nil && isStringByteConversion(dst, src.Underlying()) {
			report(call.Pos(), "string/byte-slice conversion copies and allocates")
		}
		return
	}

	targets, dynamic := m.callTargets(node.pkg, call)
	if dynamic {
		report(call.Pos(), "dynamic call through a function value cannot be proven allocation-free")
		return
	}
	for _, t := range targets {
		if m.node(t) == nil && t.Pkg() != nil && !m.isLocal(t.Pkg()) {
			report(call.Pos(), "call to %s leaves the module; allocation freedom is not provable", t.FullName())
		}
	}

	// Interface boxing and variadic packing at the call site.
	sigType := info.Types[call.Fun].Type
	sig, ok := sigType.(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // spread: no packing, no boxing beyond the slice itself
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		at := info.Types[arg]
		if at.Type == nil || at.Value != nil || isNilIdent(info, arg) {
			continue // constants and nil don't box
		}
		if _, already := at.Type.Underlying().(*types.Interface); already {
			continue
		}
		if pointerShaped(at.Type) {
			continue // pointer-shaped values fit the iface data word
		}
		report(arg.Pos(), "argument boxed into interface parameter allocates")
	}
	if sig.Variadic() && !call.Ellipsis.IsValid() && len(call.Args) >= params.Len() {
		report(call.Pos(), "variadic call packs arguments into a new slice")
	}
}

// capacityGuards collects the expressions whose capacity the function
// visibly manages: any X appearing in a len(X)==cap(X) (or <, >=, ...)
// comparison. An append to a guarded expression is treated as staying
// within proven capacity — the author compacts or bounds it — and the
// benchreport hotcheck gate verifies the claim dynamically.
func capacityGuards(info *types.Info, body *ast.BlockStmt) map[string]bool {
	guards := make(map[string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch be.Op {
		case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
		default:
			return true
		}
		for _, side := range []ast.Expr{be.X, be.Y} {
			call, ok := ast.Unparen(side).(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				continue
			}
			id, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok {
				continue
			}
			if b, ok := info.Uses[id].(*types.Builtin); ok && (b.Name() == "len" || b.Name() == "cap") {
				guards[types.ExprString(ast.Unparen(call.Args[0]))] = true
			}
		}
		return true
	})
	return guards
}

func isStringExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsString != 0
}

func isStringByteConversion(dst, src types.Type) bool {
	return (isStringKind(dst) && isByteOrRuneSlice(src)) ||
		(isByteOrRuneSlice(dst) && isStringKind(src))
}

func isStringKind(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// pointerShaped reports whether values of t occupy a single pointer word,
// so converting them to an interface stores the value directly without a
// heap allocation.
func pointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		b := t.Underlying().(*types.Basic)
		return b.Kind() == types.UnsafePointer
	}
	return false
}
