package analysis

import (
	"go/token"
	"strings"
)

// DetTaint tracks nondeterminism taint interprocedurally: from sources
// (wall-clock reads, the global math/rand source, map iteration order,
// multi-case select arrival order) through assignments, arithmetic,
// helper calls and struct fields, to the sinks that make nondeterminism
// observable — stdout writes and stores into lint:detsink-marked types
// (the simulator's Result and the telemetry snapshots). It replaces the
// syntactic nondeterminism analyzer's file-local view with whole-module
// dataflow: a helper that prints its argument is itself a sink for every
// caller, and a map-ranged value that is sorted before use comes out
// clean. See dataflow.go for the walker's exact model.
var DetTaint = &Analyzer{
	Name: "dettaint",
	Doc:  "no nondeterministic dataflow into Result, snapshots, or stdout",
	Run:  runDetTaint,
}

func runDetTaint(pass *Pass) {
	m := pass.Module
	if m == nil {
		return
	}
	for _, fn := range m.funcList {
		node := m.node(fn)
		if node == nil || node.pkg.Types != pass.Pkg || node.decl.Body == nil {
			continue
		}
		m.reportTaint(node, func(pos token.Pos, kinds []string, sink string) {
			pass.Reportf(pos, "nondeterministic value (%s) %s; derive it from seeded/simulated state or impose an order first",
				strings.Join(kinds, ", "), sink)
		})
	}
}
