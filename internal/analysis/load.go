package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package of the module.
type Package struct {
	// Path is the package's import path; ModulePath the module's.
	Path       string
	ModulePath string
	// GoVersion is the module's go directive ("1.22"); version-sensitive
	// checks (pre-1.22 loop-variable capture) key off it.
	GoVersion string
	Dir       string
	// FileNames holds the absolute path of each file in Files, in order.
	FileNames []string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	Info      *types.Info
}

// LoadModule parses and type-checks every non-test package of the Go
// module rooted at root (the directory containing go.mod), using only the
// standard library: local imports resolve to the loaded packages
// themselves and standard-library imports are type-checked from GOROOT
// source. Test files, testdata and vendor trees, and hidden directories
// are skipped — repolint's contract covers shipped code; _test.go files
// are free to trade determinism for brevity.
func LoadModule(root string) ([]*Package, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modulePath, goVersion, err := readModuleInfo(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}

	dirs, err := packageDirs(root)
	if err != nil {
		return nil, err
	}

	ld := &loader{
		root:       root,
		modulePath: modulePath,
		goVersion:  goVersion,
		fset:       token.NewFileSet(),
		dirs:       make(map[string]string, len(dirs)),
		pkgs:       make(map[string]*Package),
		checking:   make(map[string]bool),
	}
	ld.std = importer.ForCompiler(ld.fset, "source", nil)

	paths := make([]string, 0, len(dirs))
	for _, dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		path := modulePath
		if rel != "." {
			path = modulePath + "/" + filepath.ToSlash(rel)
		}
		ld.dirs[path] = dir
		paths = append(paths, path)
	}
	sort.Strings(paths)

	var out []*Package
	for _, path := range paths {
		pkg, err := ld.load(path)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			out = append(out, pkg)
		}
	}
	return out, nil
}

func readModuleInfo(gomod string) (path, goVersion string, err error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			path = strings.TrimSpace(rest)
		} else if rest, ok := strings.CutPrefix(line, "go "); ok {
			goVersion = strings.TrimSpace(rest)
		}
	}
	if path == "" {
		return "", "", fmt.Errorf("%s: no module directive", gomod)
	}
	return path, goVersion, nil
}

// packageDirs returns every directory under root holding at least one
// non-test .go file, skipping hidden, testdata and vendor subtrees.
func packageDirs(root string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			dir := filepath.Dir(path)
			if !seen[dir] {
				seen[dir] = true
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	return dirs, err
}

type loader struct {
	root       string
	modulePath string
	goVersion  string
	fset       *token.FileSet
	std        types.Importer
	dirs       map[string]string // import path -> directory
	pkgs       map[string]*Package
	checking   map[string]bool
}

// Import implements types.Importer: module-local paths resolve to loaded
// packages, everything else is delegated to the source importer.
func (l *loader) Import(path string) (*types.Package, error) {
	if _, ok := l.dirs[path]; ok {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

func (l *loader) load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.checking[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	l.checking[path] = true
	defer delete(l.checking, path)

	dir := l.dirs[path]
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		full := filepath.Join(dir, name)
		f, err := parser.ParseFile(l.fset, full, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		names = append(names, full)
	}
	if len(files) == 0 {
		return nil, nil
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", path, err)
	}
	pkg := &Package{
		Path:       path,
		ModulePath: l.modulePath,
		GoVersion:  l.goVersion,
		Dir:        dir,
		FileNames:  names,
		Fset:       l.fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

// LoadDir parses and type-checks the single package in dir under the given
// import path, resolving only standard-library imports. It exists for
// fixture tests; real runs use LoadModule. The reported GoVersion is
// pinned to 1.21 so fixtures exercise version-gated checks (pre-1.22
// loop-variable capture) that the real module, on a newer go directive,
// no longer needs.
func LoadDir(dir, path string) (*Package, error) {
	ld := &loader{
		root:       dir,
		modulePath: path,
		goVersion:  "1.21",
		fset:       token.NewFileSet(),
		dirs:       map[string]string{path: dir},
		pkgs:       make(map[string]*Package),
		checking:   make(map[string]bool),
	}
	ld.std = importer.ForCompiler(ld.fset, "source", nil)
	pkg, err := ld.load(path)
	if err != nil {
		return nil, err
	}
	if pkg == nil {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	return pkg, nil
}
