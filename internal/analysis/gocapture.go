package analysis

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// GoCapture enforces the module's concurrency discipline on every `go`
// statement closure and every worker function handed to parrun.Map:
//
//   - shared mutable state captured by the closure must only be written
//     through the ordered-commit slot pattern (out[i] = ... with a
//     closure-local index) or under a mutex the closure itself locks;
//     plain assignments, field writes, and any captured-map writes race
//     and — worse for this repo — commit results in scheduler order,
//     breaking bit-for-bit determinism;
//   - on modules before Go 1.22, goroutines must not capture the loop
//     variable of an enclosing for/range statement;
//   - lock-bearing types (sync.Mutex and friends) must not be copied via
//     value parameters or value receivers.
var GoCapture = &Analyzer{
	Name: "gocapture",
	Doc:  "goroutine closures must follow the slot pattern or hold a mutex; no loop-var capture, no lock copies",
	Run:  runGoCapture,
}

func runGoCapture(pass *Pass) {
	preLoopVarSemantics := goVersionBefore(pass.Package.GoVersion, 1, 22)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
					checkClosureWrites(pass, lit, "go statement closure")
				}
			case *ast.CallExpr:
				if isParrunMap(pass.Info, n) && len(n.Args) > 0 {
					if lit, ok := ast.Unparen(n.Args[len(n.Args)-1]).(*ast.FuncLit); ok {
						checkClosureWrites(pass, lit, "parrun.Map worker")
					}
				}
			case *ast.FuncDecl:
				checkLockCopies(pass, n.Recv, n.Type)
				if preLoopVarSemantics && n.Body != nil {
					checkLoopVarCapture(pass, n.Body)
				}
			case *ast.FuncLit:
				checkLockCopies(pass, nil, n.Type)
			}
			return true
		})
	}
}

// isParrunMap reports whether call invokes the module's parrun.Map
// parallel runner (matched by package path suffix so the check works in
// any module embedding the library).
func isParrunMap(info *types.Info, call *ast.CallExpr) bool {
	f := calleeFunc(info, call)
	if f == nil || f.Name() != "Map" || f.Pkg() == nil {
		return false
	}
	path := f.Pkg().Path()
	return path == "parrun" || strings.HasSuffix(path, "/parrun")
}

// checkClosureWrites reports writes to captured state that follow neither
// the slot pattern nor a mutex. If the closure locks a captured mutex
// anywhere in its body, writes are considered protected and skipped —
// the analyzer checks the discipline, not lock placement.
func checkClosureWrites(pass *Pass, lit *ast.FuncLit, what string) {
	if lit.Body == nil {
		return
	}
	free := func(obj types.Object) bool {
		v, ok := obj.(*types.Var)
		if !ok || v.IsField() {
			return false
		}
		return v.Pos() < lit.Pos() || v.Pos() > lit.End()
	}
	if closureLocksMutex(pass.Info, lit, free) {
		return
	}

	checkWrite := func(target ast.Expr) {
		switch t := ast.Unparen(target).(type) {
		case *ast.Ident:
			if obj := pass.Info.Uses[t]; obj != nil && free(obj) {
				pass.Reportf(t.Pos(),
					"%s assigns captured variable %s directly; commit results through an index-owned slot (out[i] = ...) or a mutex", what, t.Name)
			}
		case *ast.IndexExpr:
			baseObj := rootIdentObject(pass.Info, t.X)
			if baseObj == nil || !free(baseObj) {
				return
			}
			if tv, ok := pass.Info.Types[t.X]; ok && tv.Type != nil {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					pass.Reportf(t.Pos(),
						"%s writes captured map %s; map writes race regardless of key — use a slot slice or a mutex", what, baseObj.Name())
					return
				}
			}
			if !indexIsClosureLocal(pass.Info, t.Index, lit) {
				pass.Reportf(t.Pos(),
					"%s writes %s[...] with an index captured from outside the closure; the slot pattern needs a closure-owned index", what, baseObj.Name())
			}
		case *ast.SelectorExpr:
			if baseObj := rootIdentObject(pass.Info, t.X); baseObj != nil && free(baseObj) {
				pass.Reportf(t.Pos(),
					"%s writes field %s of captured %s without a mutex", what, t.Sel.Name, baseObj.Name())
			}
		case *ast.StarExpr:
			if obj := rootIdentObject(pass.Info, t.X); obj != nil && free(obj) {
				pass.Reportf(t.Pos(),
					"%s writes through captured pointer %s without a mutex", what, obj.Name())
			}
		}
	}

	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				checkWrite(lhs)
			}
		case *ast.IncDecStmt:
			checkWrite(n.X)
		}
		return true
	})
}

// closureLocksMutex reports whether lit calls Lock/RLock on a captured
// sync lock anywhere in its body.
func closureLocksMutex(info *types.Info, lit *ast.FuncLit, free func(types.Object) bool) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		f, ok := info.Uses[sel.Sel].(*types.Func)
		if !ok || f.Pkg() == nil || f.Pkg().Path() != "sync" {
			return true
		}
		if obj := rootIdentObject(info, sel.X); obj != nil && free(obj) {
			found = true
		}
		return true
	})
	return found
}

// indexIsClosureLocal reports whether every variable in an index
// expression is declared inside the closure — the ownership property the
// slot pattern rests on.
func indexIsClosureLocal(info *types.Info, index ast.Expr, lit *ast.FuncLit) bool {
	local := true
	ast.Inspect(index, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			local = false
		}
		return local
	})
	return local
}

// rootIdentObject peels selectors, indexing and derefs down to the
// leftmost identifier's object.
func rootIdentObject(info *types.Info, e ast.Expr) types.Object {
	for {
		switch t := ast.Unparen(e).(type) {
		case *ast.Ident:
			return info.Uses[t]
		case *ast.SelectorExpr:
			e = t.X
		case *ast.IndexExpr:
			e = t.X
		case *ast.StarExpr:
			e = t.X
		default:
			return nil
		}
	}
}

// checkLoopVarCapture flags goroutines launched inside a loop that
// reference the loop's iteration variables (a data race before Go 1.22's
// per-iteration variables).
func checkLoopVarCapture(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		var loopVars []types.Object
		var loopBody *ast.BlockStmt
		switch n := n.(type) {
		case *ast.RangeStmt:
			if n.Tok.String() == ":=" {
				if o := rangeVarObject(pass.Info, n.Key, true); o != nil {
					loopVars = append(loopVars, o)
				}
				if o := rangeVarObject(pass.Info, n.Value, true); o != nil {
					loopVars = append(loopVars, o)
				}
			}
			loopBody = n.Body
		case *ast.ForStmt:
			if init, ok := n.Init.(*ast.AssignStmt); ok && init.Tok.String() == ":=" {
				for _, lhs := range init.Lhs {
					if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
						if o := pass.Info.Defs[id]; o != nil {
							loopVars = append(loopVars, o)
						}
					}
				}
			}
			loopBody = n.Body
		default:
			return true
		}
		if len(loopVars) == 0 || loopBody == nil {
			return true
		}
		ast.Inspect(loopBody, func(inner ast.Node) bool {
			gs, ok := inner.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit)
			if !ok {
				return true
			}
			for _, lv := range loopVars {
				if blockUsesObject(pass.Info, lit.Body, lv) {
					pass.Reportf(gs.Pos(),
						"goroutine captures loop variable %s (module targets Go %s, before per-iteration loop variables); pass it as an argument or copy it",
						lv.Name(), pass.Package.GoVersion)
				}
			}
			return true
		})
		return true
	})
}

// blockUsesObject reports whether any identifier in block resolves to obj.
func blockUsesObject(info *types.Info, block *ast.BlockStmt, obj types.Object) bool {
	found := false
	ast.Inspect(block, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// checkLockCopies flags value parameters and value receivers whose type
// contains a sync lock — copying one silently forks the lock state.
func checkLockCopies(pass *Pass, recv *ast.FieldList, ft *ast.FuncType) {
	check := func(field *ast.Field, what string) {
		var t types.Type
		if len(field.Names) > 0 {
			if obj := pass.Info.Defs[field.Names[0]]; obj != nil {
				t = obj.Type()
			}
		}
		if t == nil {
			if tv, ok := pass.Info.Types[field.Type]; ok {
				t = tv.Type
			}
		}
		if t == nil {
			return
		}
		if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
			return
		}
		if lock := containsLockType(t, 0); lock != "" {
			pass.Reportf(field.Pos(), "%s copies %s (contains %s); use a pointer", what, t.String(), lock)
		}
	}
	if recv != nil {
		for _, f := range recv.List {
			check(f, "value receiver")
		}
	}
	if ft.Params != nil {
		for _, f := range ft.Params.List {
			check(f, "value parameter")
		}
	}
}

// containsLockType returns the name of a sync lock type embedded (by
// value) anywhere in t, or "".
func containsLockType(t types.Type, depth int) string {
	if depth > 4 {
		return ""
	}
	switch tt := t.(type) {
	case *types.Named:
		if pkg := tt.Obj().Pkg(); pkg != nil && pkg.Path() == "sync" {
			switch tt.Obj().Name() {
			case "Mutex", "RWMutex", "WaitGroup", "Once", "Cond", "Pool", "Map":
				return "sync." + tt.Obj().Name()
			}
		}
		return containsLockType(tt.Underlying(), depth+1)
	case *types.Struct:
		for i := 0; i < tt.NumFields(); i++ {
			if lock := containsLockType(tt.Field(i).Type(), depth+1); lock != "" {
				return lock
			}
		}
	case *types.Array:
		return containsLockType(tt.Elem(), depth+1)
	}
	return ""
}

// goVersionBefore reports whether version (a go.mod "go" directive like
// "1.21" or "1.21.3") is older than major.minor. Unparseable versions are
// treated as new enough, keeping the check quiet rather than noisy.
func goVersionBefore(version string, major, minor int) bool {
	parts := strings.SplitN(strings.TrimSpace(version), ".", 3)
	if len(parts) < 2 {
		return false
	}
	maj, err1 := strconv.Atoi(parts[0])
	min, err2 := strconv.Atoi(parts[1])
	if err1 != nil || err2 != nil {
		return false
	}
	if maj != major {
		return maj < major
	}
	return min < minor
}
