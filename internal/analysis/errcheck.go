package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrCheckLite flags calls whose final error result is silently dropped —
// an expression statement, defer, or go whose callee returns an error
// nobody reads. A simulator that swallows an os.File.Close error can
// report a truncated metrics file as success. Writes that cannot fail
// (fmt printing, strings.Builder, bytes.Buffer) are exempt, and an
// explicit `_ =` assignment is accepted as a visible decision.
var ErrCheckLite = &Analyzer{
	Name: "errcheck",
	Doc:  "error results must be handled, or discarded explicitly with _ =",
	Run:  runErrCheck,
}

// errcheckExempt lists callee prefixes whose dropped errors are
// conventionally meaningless: fmt's print family only fails when the
// io.Writer does, and the in-memory builders never fail.
var errcheckExempt = []string{
	"fmt.Print", "fmt.Printf", "fmt.Println",
	"fmt.Fprint", "fmt.Fprintf", "fmt.Fprintln",
	"(*strings.Builder).",
	"(*bytes.Buffer).",
}

func runErrCheck(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var call *ast.CallExpr
			switch n := n.(type) {
			case *ast.ExprStmt:
				c, ok := ast.Unparen(n.X).(*ast.CallExpr)
				if !ok {
					return true
				}
				call = c
			case *ast.DeferStmt:
				call = n.Call
			case *ast.GoStmt:
				call = n.Call
			default:
				return true
			}
			checkDiscardedError(pass, call)
			return true
		})
	}
}

func checkDiscardedError(pass *Pass, call *ast.CallExpr) {
	sig, ok := pass.Info.TypeOf(call.Fun).(*types.Signature)
	if !ok { // conversion or builtin
		return
	}
	results := sig.Results()
	if results.Len() == 0 || !isErrorType(results.At(results.Len()-1).Type()) {
		return
	}
	name := pkgFuncName(calleeFunc(pass.Info, call))
	for _, prefix := range errcheckExempt {
		if name != "" && strings.HasPrefix(name, prefix) {
			return
		}
	}
	if name == "" {
		name = types.ExprString(call.Fun)
	}
	pass.Reportf(call.Pos(), "error result of %s is discarded; handle it or assign to _ explicitly", name)
}
