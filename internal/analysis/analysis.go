// Package analysis is a project-specific static-analysis suite built only
// on the standard library's go/ast, go/parser, go/token and go/types. It
// enforces the invariants the simulator's correctness claims rest on —
// bit-for-bit determinism, tolerance-based float comparisons in the
// Algorithm 1 waterfill model, exhaustive handling of trace-event kinds —
// plus basic error-handling hygiene. cmd/repolint is the CLI front end.
//
// The suite exists because review alone does not scale: PR 1 shipped (and
// then had to fix) a real nondeterminism bug where -sweep winner selection
// iterated a Go map in random order. The maporder analyzer mechanically
// rejects that whole bug class.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// An Analyzer is one named check over a type-checked package.
type Analyzer struct {
	// Name is the analyzer's identifier, used in diagnostics and in
	// //lint:ignore directives.
	Name string
	// Doc is a one-line description of what the analyzer enforces.
	Doc string
	// Run inspects the package in pass and reports diagnostics via
	// pass.Reportf.
	Run func(pass *Pass)
}

// A Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// ModulePath is the import path of the module under analysis.
	ModulePath string
	// Package is the loaded package this pass inspects (carries Dir,
	// FileNames and GoVersion alongside the type information).
	Package *Package
	// Module is the whole-program view shared across passes; call-graph
	// analyzers use it for reachability and interprocedural summaries.
	Module *Module

	local map[*types.Package]bool
	sink  *diagSink
}

// IsLocal reports whether pkg is part of the analyzed module (as opposed
// to the standard library).
func (p *Pass) IsLocal(pkg *types.Package) bool {
	return pkg != nil && p.local[pkg]
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.sink.add(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"-"`
	File     string         `json:"file"`
	Line     int            `json:"line"`
	Column   int            `json:"column"`
	Message  string         `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Column, d.Analyzer, d.Message)
}

// AllowRule exempts one analyzer within a package-path subtree. Rules come
// from the allowlist file (see ParseAllowFile).
type AllowRule struct {
	// Analyzer is an analyzer name or "*".
	Analyzer string
	// PathPrefix is matched against the package import path with the
	// module prefix stripped, so "cmd/" covers every main package under
	// cmd regardless of the module name.
	PathPrefix string
}

// ParseAllowFile parses allowlist content: one "analyzer path-prefix" rule
// per line, with blank lines and #-comments ignored.
func ParseAllowFile(content string) ([]AllowRule, error) {
	var rules []AllowRule
	for i, line := range strings.Split(content, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("allowlist line %d: want \"analyzer path-prefix\", got %q", i+1, line)
		}
		// Normalise to a canonical separator-free form: forward slashes,
		// no trailing slash. Matching is segment-anchored either way.
		prefix := strings.TrimSuffix(filepath.ToSlash(fields[1]), "/")
		rules = append(rules, AllowRule{Analyzer: fields[0], PathPrefix: prefix})
	}
	return rules, nil
}

func (r AllowRule) matches(analyzer, relPath string) bool {
	if r.Analyzer != "*" && r.Analyzer != analyzer {
		return false
	}
	relPath = strings.TrimSuffix(filepath.ToSlash(relPath), "/")
	prefix := strings.TrimSuffix(r.PathPrefix, "/")
	if prefix == "" || prefix == "." {
		return true
	}
	if !strings.HasPrefix(relPath, prefix) {
		return false
	}
	// Segment-anchored: "cmd" allows cmd and cmd/treegen, never cmdx.
	return len(relPath) == len(prefix) || relPath[len(prefix)] == '/'
}

// diagSink collects diagnostics across passes and applies suppressions.
type diagSink struct {
	diags []Diagnostic
}

func (s *diagSink) add(d Diagnostic) {
	d.File = d.Pos.Filename
	d.Line = d.Pos.Line
	d.Column = d.Pos.Column
	s.diags = append(s.diags, d)
}

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	file     string
	line     int
	analyzer string
	valid    bool // has both an analyzer name and a reason
}

const ignorePrefix = "//lint:ignore"

// scanIgnores extracts //lint:ignore directives from a file's comments.
// Malformed directives (no analyzer, no reason, or an unknown analyzer
// name) are reported as "lint" diagnostics so suppressions can't silently
// rot.
func scanIgnores(fset *token.FileSet, f *ast.File, known map[string]bool, sink *diagSink) []ignoreDirective {
	var out []ignoreDirective
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, ignorePrefix) {
				continue
			}
			pos := fset.Position(c.Pos())
			rest := strings.TrimSpace(strings.TrimPrefix(c.Text, ignorePrefix))
			fields := strings.Fields(rest)
			d := ignoreDirective{file: pos.Filename, line: pos.Line}
			switch {
			case len(fields) == 0:
				sink.add(Diagnostic{Analyzer: "lint", Pos: pos,
					Message: "malformed //lint:ignore: want \"//lint:ignore analyzer reason\""})
			case len(fields) == 1:
				sink.add(Diagnostic{Analyzer: "lint", Pos: pos,
					Message: fmt.Sprintf("//lint:ignore %s is missing a reason", fields[0])})
			case !known[fields[0]]:
				sink.add(Diagnostic{Analyzer: "lint", Pos: pos,
					Message: fmt.Sprintf("//lint:ignore names unknown analyzer %q", fields[0])})
			default:
				d.analyzer = fields[0]
				d.valid = true
			}
			out = append(out, d)
		}
	}
	return out
}

// Run executes analyzers over pkgs, drops diagnostics covered by a valid
// //lint:ignore directive (same line or the line above) or an allow rule,
// and returns the survivors sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer, allow []AllowRule) []Diagnostic {
	// Directive validation recognises the whole registry, not just the
	// analyzers in this run: a caller running one analyzer (e.g. the
	// hotcheck gate) must not flag other analyzers' suppressions.
	known := make(map[string]bool, len(analyzers)+len(All())+1)
	known["lint"] = true
	for _, a := range All() {
		known[a.Name] = true
	}
	for _, a := range analyzers {
		known[a.Name] = true
	}

	local := make(map[*types.Package]bool, len(pkgs))
	for _, p := range pkgs {
		local[p.Types] = true
	}

	mod := NewModule(pkgs)
	sink := &diagSink{}
	var ignores []ignoreDirective
	for _, p := range pkgs {
		for _, f := range p.Files {
			ignores = append(ignores, scanIgnores(p.Fset, f, known, sink)...)
		}
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:   a,
				Fset:       p.Fset,
				Files:      p.Files,
				Pkg:        p.Types,
				Info:       p.Info,
				ModulePath: p.ModulePath,
				Package:    p,
				Module:     mod,
				local:      local,
				sink:       sink,
			}
			a.Run(pass)
		}
	}

	suppressed := func(d Diagnostic) bool {
		for _, ig := range ignores {
			if ig.valid && ig.analyzer == d.Analyzer && ig.file == d.File &&
				(ig.line == d.Line || ig.line == d.Line-1) {
				return true
			}
		}
		return false
	}
	var out []Diagnostic
	for _, d := range sink.diags {
		if suppressed(d) {
			continue
		}
		if allowedByRule(d, pkgs, allow) {
			continue
		}
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// allowedByRule reports whether d falls inside a package subtree an allow
// rule exempts for its analyzer.
func allowedByRule(d Diagnostic, pkgs []*Package, allow []AllowRule) bool {
	if len(allow) == 0 {
		return false
	}
	rel := ""
	for _, p := range pkgs {
		for _, name := range p.FileNames {
			if name == d.File {
				rel = strings.TrimPrefix(strings.TrimPrefix(p.Path, p.ModulePath), "/")
				if rel == "" {
					rel = "."
				}
			}
		}
	}
	if rel == "" {
		return false
	}
	for _, r := range allow {
		if r.matches(d.Analyzer, rel) {
			return true
		}
	}
	return false
}
