package analysis

import (
	"go/ast"
	"go/types"
)

// calleeFunc resolves the *types.Func a call invokes, or nil for builtins,
// conversions and calls through function-typed values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// usesObject reports whether expr references any of the given objects.
func usesObject(info *types.Info, expr ast.Expr, objs ...types.Object) bool {
	if expr == nil {
		return false
	}
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || found {
			return !found
		}
		use := info.Uses[id]
		for _, o := range objs {
			if o != nil && use == o {
				found = true
			}
		}
		return !found
	})
	return found
}

// rangeVarObject returns the types.Object bound to a range clause variable
// (key or value), or nil when the variable is absent or blank.
func rangeVarObject(info *types.Info, expr ast.Expr, define bool) types.Object {
	id, ok := expr.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if define {
		return info.Defs[id]
	}
	return info.Uses[id]
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// implementsError reports whether t satisfies the error interface,
// covering concrete error types as well as error itself.
func implementsError(t types.Type) bool {
	if t == nil {
		return false
	}
	iface, _ := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	return iface != nil && types.Implements(t, iface)
}

// pkgFuncName returns "path.Name" for a package-level function or
// "(recv).Name" via FullName for methods; empty for nil.
func pkgFuncName(f *types.Func) string {
	if f == nil {
		return ""
	}
	return f.FullName()
}
