// Package fixture holds clean patterns the exhaustive analyzer must
// accept.
package fixture

type EventKind int

const (
	Send EventKind = iota
	Arrive
	Compute
	// Legacy aliases Send; covering one of the pair suffices.
	Legacy = Send
)

// full covers every declared value.
func full(k EventKind) string {
	switch k {
	case Send:
		return "send"
	case Arrive:
		return "arrive"
	case Compute:
		return "compute"
	}
	return "?"
}

// defaulted routes unknown values explicitly.
func defaulted(k EventKind) string {
	switch k {
	case Send:
		return "send"
	default:
		return "other"
	}
}

// plainInt is not an enum switch; untyped ints stay out of scope.
func plainInt(n int) bool {
	switch n {
	case 1:
		return true
	}
	return false
}
