// Package fixture holds true positives for the exhaustive analyzer.
package fixture

// EventKind mirrors the shape of netsim.TraceEventKind: a module-local
// integer enum.
type EventKind int

const (
	Send EventKind = iota
	Arrive
	Compute
	Stall
)

// collect misses Arrive and Stall and has no default, so a new event kind
// silently falls through — the PR 1 TraceStall hazard.
func collect(k EventKind) int {
	switch k { // want "misses Arrive, Stall"
	case Send:
		return 1
	case Compute:
		return 2
	}
	return 0
}

// one misses a single value.
func one(k EventKind) bool {
	switch k { // want "misses Stall"
	case Send, Arrive, Compute:
		return true
	}
	return false
}
