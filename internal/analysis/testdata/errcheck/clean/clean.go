// Package fixture holds clean patterns the errcheck analyzer must accept.
package fixture

import (
	"bytes"
	"fmt"
	"os"
	"strings"
)

// report threads every error, closing explicitly on both paths.
func report(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintln(f, "ok"); err != nil {
		// The write error is the root cause; the close is best-effort.
		_ = f.Close()
		return err
	}
	return f.Close()
}

// build uses the in-memory writers whose errors are vacuous.
func build() string {
	var b strings.Builder
	b.WriteString("hello")
	fmt.Fprintf(&b, " %d", 42)
	var buf bytes.Buffer
	buf.WriteByte('\n')
	return b.String() + buf.String()
}

// stdout printing is conventionally fire-and-forget.
func stdout() {
	fmt.Println("hi")
}

// void calls with no error result are out of scope.
func void() {
	stdout()
}
