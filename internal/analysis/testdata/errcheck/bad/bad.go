// Package fixture holds true positives for the errcheck analyzer.
package fixture

import (
	"os"
	"strconv"
)

// touch drops the Close error, so a failed flush reads as success.
func touch(path string) {
	f, err := os.Create(path)
	if err != nil {
		return
	}
	defer f.Close() // want "discarded"
}

// remove drops the error in statement position.
func remove(path string) {
	os.Remove(path) // want "discarded"
}

// parse drops the error of a multi-result call.
func parse(s string) {
	strconv.Atoi(s) // want "discarded"
}

// background drops the error of a goroutine's call.
func background(path string) {
	go os.Remove(path) // want "discarded"
}
