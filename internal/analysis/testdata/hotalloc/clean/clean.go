// Package fix is the hotalloc clean fixture: a hot loop in the shape the
// simulator actually uses — compaction-guarded appends, telemetry and
// failure paths behind cold guards, value struct literals, pointer-shaped
// interface arguments, and spread (not packed) variadics — none of which
// may be flagged.
package fix

import "errors"

type handler interface{ accept(v any) }

type dev struct{}

func (dev) accept(v any) {}

type event struct {
	kind int
	val  int
}

type state struct {
	buf  []int
	head int
	vals []int
	// traced enables the tracing path; nil on benchmarked runs. lint:cold
	traced bool
	// hook is the telemetry callback. lint:cold
	hook func(event)
	out  handler
	bad  bool
}

func vary(xs ...int) int { return len(xs) }

//lint:hotpath steady-state loop for the fixture
func (s *state) step(v int) error {
	// Compaction-guarded append: capacity is managed in-function.
	if len(s.buf) == cap(s.buf) && s.head > 0 {
		copy(s.buf, s.buf[s.head:])
		s.buf = s.buf[:len(s.buf)-s.head]
		s.head = 0
	}
	s.buf = append(s.buf, v)

	// Value struct literals stay on the stack.
	ev := event{kind: 1, val: v}

	// Cold: the tracing flag gates this branch.
	if s.traced {
		s.vals = append(s.vals, make([]int, 8)...)
	}
	// Cold: nil-guarded telemetry hook.
	if s.hook != nil {
		s.hook(ev)
	}
	// Cold: failure exit returning a non-nil error.
	if s.bad {
		return errors.New("invariant violated")
	}
	// Cold: crash path.
	if v < 0 {
		panic("negative value")
	}

	// Pointer-shaped values don't allocate when boxed.
	s.out.accept(s)
	// Constants don't box either.
	s.out.accept(3)
	// Spread variadics reuse the existing slice.
	_ = vary(s.vals...)
	return nil
}
