// Package fix exercises every hotalloc finding class: direct allocators,
// composite literals, closures, goroutine/defer records, string work,
// interface boxing, variadic packing, allocating conversions, dynamic
// calls, out-of-module calls, and transitive reachability through the
// call graph.
package fix

import "strings"

type sink interface{ accept(v any) }

type dev struct{}

func (dev) accept(v any) {}

type state struct {
	buf  []int
	name string
	hook func(int)
	out  sink
}

func vary(xs ...int) int { return len(xs) }

//lint:hotpath cycle-loop root for the fixture
func (s *state) step(v int) {
	s.buf = append(s.buf, v) // want "append without a capacity guard"
	m := make([]int, 4)      // want "make allocates"
	_ = m
	p := new(int) // want "new allocates"
	_ = p
	t := map[string]int{"a": 1} // want "map literal allocates"
	_ = t
	sl := []int{1, 2} // want "slice literal allocates"
	_ = sl
	q := &state{} // want "composite literal escapes to the heap"
	_ = q
	f := func() {} // want "closure creation allocates"
	_ = f
	go s.helper(v)        // want "go statement allocates a goroutine"
	defer s.helper(v)     // want "defer allocates"
	s.name = s.name + "x" // want "string concatenation allocates"
	b := []byte(s.name)   // want "conversion copies and allocates"
	_ = b
	_ = vary(1, 2)          // want "variadic call packs arguments into a new slice"
	s.hook(v)               // want "dynamic call through a function value"
	s.out.accept(v)         // want "boxed into interface parameter"
	_ = strings.ToUpper("") // want "leaves the module"
	s.helper(v)
}

// helper is hot only transitively, via step.
func (s *state) helper(v int) {
	s.buf = make([]int, v) // want "make allocates"
}
