// Package fixture holds clean patterns the floatcmp analyzer must accept.
package fixture

import "math"

const eps = 1e-9

// eq uses a tolerance, as Algorithm 1 comparisons must.
func eq(a, b float64) bool {
	return math.Abs(a-b) < eps
}

// intEq is integer equality; nothing to flag.
func intEq(a, b int) bool {
	return a == b
}

// sentinel compares against a stored (never computed) marker value; the
// suppression documents why exactness is correct here.
func sentinel(v float64) bool {
	//lint:ignore floatcmp -1 is a stored sentinel that is assigned, never computed, so exact comparison is the intent
	return v == -1
}

// constFold compares two compile-time constants; nothing can drift.
func constFold() bool {
	return 0.5 == 1.0/2.0
}
