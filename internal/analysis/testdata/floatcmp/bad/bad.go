// Package fixture holds true positives for the floatcmp analyzer.
package fixture

// eq compares computed floats exactly: waterfill shares are quotients of
// subtracted floats, so this silently depends on rounding.
func eq(a, b float64) bool {
	return a == b // want "floating-point"
}

// neq is the same bug with the other operator and width.
func neq(a, b float32) bool {
	return a != b // want "floating-point"
}

// mixed flags comparisons where only one side is floating-point.
func mixed(share float64) bool {
	return share == 0 // want "floating-point"
}
