// Package fixture holds clean patterns the maporder analyzer must accept.
package fixture

import (
	"fmt"
	"sort"
)

// sortedKeys is the canonical deterministic iteration pattern.
func sortedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// sortedLater is fine even when the sort call wraps the slice in helpers.
func sortedLater(m map[int]int) []int {
	var out []int
	for _, v := range m {
		out = append(out, v)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(out)))
	return out
}

// sum folds commutatively; iteration order cannot matter.
func sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// maxValue keeps only the maximal value, which is order-independent; the
// analyzer flags winner selection only when the KEY is recorded.
func maxValue(m map[string]int) int {
	best := -1
	for _, v := range m {
		if v > best {
			best = v
		}
	}
	return best
}

// show prints via a sorted key slice, not the map range.
func show(m map[string]int) {
	for _, k := range sortedKeys(m) {
		fmt.Println(k, m[k])
	}
}

// localAccumulator appends to a slice scoped inside the loop body.
func localAccumulator(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		doubled := make([]int, 0, len(vs))
		for _, v := range vs {
			doubled = append(doubled, 2*v)
		}
		n += len(doubled)
	}
	return n
}
