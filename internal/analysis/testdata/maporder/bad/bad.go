// Package fixture holds true positives for the maporder analyzer: map
// iteration feeding order-sensitive sinks with no deterministic sort.
package fixture

import "fmt"

// keys leaks randomized map order into the returned slice.
func keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want "without a later sort"
	}
	return out
}

// winner records the map key under a comparison guard: ties (and with
// float scores, near-ties) resolve differently run to run.
func winner(scores map[string]int) string {
	best := -1
	name := ""
	for k, v := range scores {
		if v > best {
			best = v
			name = k // want "randomized map order"
		}
	}
	return name
}

// show prints lines in randomized map order.
func show(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want "prints in randomized map order"
	}
}

// values leaks order through the value variable too.
func values(m map[string]int) []int {
	var out []int
	for _, v := range m {
		out = append(out, v) // want "without a later sort"
	}
	return out
}
