// Package fix is the dettaint clean fixture: the sanctioned patterns —
// integer accumulation over maps (order-insensitive), sort-before-print,
// order-independent len(), explicitly seeded rand, and deterministic
// stores into the determinism-critical type.
package fix

import (
	"fmt"
	"math/rand"
	"sort"
)

// Result is the simulation outcome. lint:detsink
type Result struct {
	Cycles int64
	Count  int
}

// sumInts: integer addition commutes, so map order cannot reach the total.
func sumInts(m map[string]int) {
	total := 0
	for _, v := range m {
		total += v
	}
	fmt.Println(total)
}

// sortedKeys imposes an order before printing.
func sortedKeys(m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Println(k)
	}
}

// countEntries: a count does not depend on iteration order.
func countEntries(m map[string]int) {
	fmt.Println(len(m))
}

// seededDraw: an explicitly seeded source is deterministic.
func seededDraw(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

func record(r *Result, cycles int64) {
	r.Cycles = cycles
	r.Count = len(map[string]int{})
}

func printDraws(seed int64) {
	fmt.Println(seededDraw(seed))
}
