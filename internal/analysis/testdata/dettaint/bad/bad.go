// Package fix exercises the dettaint finding classes: wall-clock and
// global-rand taint reaching stdout and determinism-critical stores,
// map-iteration-order taint surviving float accumulation, select arrival
// order, and interprocedural flows through helper returns and helper
// sinks.
package fix

import (
	"fmt"
	"math/rand"
	"time"
)

// Result is the simulation outcome. lint:detsink
type Result struct {
	Cycles  int64
	Quality float64
}

func stamp(r *Result) {
	r.Cycles = time.Now().UnixNano() // want "stored into determinism-critical Result.Cycles"
}

func printClock() {
	fmt.Println(time.Now()) // want "written to stdout via fmt.Println"
}

func printDraw() {
	fmt.Println(rand.Int()) // want "global math/rand draw"
}

func dumpKeys(scores map[string]int) {
	for name := range scores {
		fmt.Println(name) // want "map iteration order"
	}
}

// sumFloats: float accumulation is order-sensitive bit-for-bit, so map
// order taints the total.
func sumFloats(m map[string]float64) {
	total := 0.0
	for _, v := range m {
		total += v
	}
	fmt.Println(total) // want "map iteration order"
}

func firstOf(a, b chan int) {
	var v int
	select {
	case v = <-a:
	case v = <-b:
	}
	fmt.Println(v) // want "select arrival order"
}

// nowNanos launders a wall-clock read through a return value.
func nowNanos() int64 {
	return time.Now().UnixNano()
}

func recordStart(r *Result) {
	r.Cycles = nowNanos() // want "stored into determinism-critical Result.Cycles"
}

// logLine is a stdout sink for every caller.
func logLine(v int64) {
	fmt.Println(v)
}

func emitElapsed() {
	logLine(nowNanos()) // want "reaches a stdout/determinism sink inside logLine"
}
