// Package fixture holds true positives for the nondeterminism analyzer.
package fixture

import (
	"math/rand"
	"time"
)

// stamp reads the wall clock, which differs on every run.
func stamp() int64 {
	return time.Now().UnixNano() // want "wall clock"
}

// elapsed hides the clock read behind time.Since.
func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want "wall clock"
}

// draw uses the globally seeded source.
func draw() int {
	return rand.Intn(10) // want "global"
}

// shuffle mutates via the global source too.
func shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "global"
}

// pick races two channels: when both are ready the case is chosen
// uniformly at random.
func pick(a, b chan int) int {
	select { // want "select"
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}
