// Package fixture holds clean patterns the nondeterminism analyzer must
// accept: explicitly seeded randomness and single-channel selects.
package fixture

import "math/rand"

// draw threads an explicit seed, so runs reproduce bit for bit.
func draw(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}

// methods on an explicitly constructed *rand.Rand are fine.
func perm(rng *rand.Rand, n int) []int {
	return rng.Perm(n)
}

// recv has one communication case; the default makes it a poll, not a race.
func recv(a chan int) int {
	select {
	case v := <-a:
		return v
	default:
		return 0
	}
}
