// Package fix exercises the gocapture finding classes: loop-variable
// capture (the fixture loads as Go 1.21, before per-iteration loop
// variables), unsynchronized writes to captured state, captured-map
// writes, slot writes with a non-owned index, and lock copies.
package fix

import "sync"

func loopCapture(n int) {
	total := 0
	for i := 0; i < n; i++ {
		go func() { // want "goroutine captures loop variable i"
			total += i // want "assigns captured variable total"
		}()
	}
}

func mapWrite(keys []string) {
	m := map[string]int{}
	var wg sync.WaitGroup
	for _, k := range keys {
		k := k
		wg.Add(1)
		go func() {
			defer wg.Done()
			m[k] = 1 // want "writes captured map m"
		}()
	}
	wg.Wait()
}

func foreignIndex(out []int, idx int) {
	go func() {
		out[idx] = 1 // want "index captured from outside the closure"
	}()
}

type counter struct{ n int }

func fieldWrite(c *counter) {
	go func() {
		c.n++ // want "writes field n of captured c"
	}()
}

func pointerWrite(p *int) {
	go func() {
		*p = 1 // want "writes through captured pointer p"
	}()
}

type guarded struct {
	mu sync.Mutex
	n  int
}

func lockByValue(g guarded) { // want "value parameter copies"
	_ = g
}

func (g guarded) snapshot() int { // want "value receiver copies"
	return g.n
}
