// Package fix is the gocapture clean fixture: the ordered-commit slot
// pattern with closure-owned indices, mutex-guarded shared writes,
// loop variables passed as arguments, and pointer-borne locks.
package fix

import "sync"

// slotWorkers is the parrun.Map shape: results commit into index-owned
// slots, the index arriving through a channel the closure ranges itself.
func slotWorkers(n int, fn func(int) int) []int {
	out := make([]int, n)
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				out[i] = fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return out
}

// mutexTotal shows the mutex alternative: captured state written only
// while holding a captured lock.
func mutexTotal(n int) int {
	var mu sync.Mutex
	total := 0
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			mu.Lock()
			total += i
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	return total
}

type guarded struct {
	mu sync.Mutex
	n  int
}

// inc takes the lock-bearing struct by pointer, as required.
func (g *guarded) inc() {
	g.mu.Lock()
	g.n++
	g.mu.Unlock()
}
