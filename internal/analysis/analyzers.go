package analysis

// All returns the full analyzer suite in reporting-name order.
func All() []*Analyzer {
	return []*Analyzer{
		ErrCheckLite,
		Exhaustive,
		FloatCmp,
		MapOrder,
		Nondeterminism,
	}
}
