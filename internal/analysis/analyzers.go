package analysis

// All returns the full analyzer suite in reporting-name order.
func All() []*Analyzer {
	return []*Analyzer{
		DetTaint,
		ErrCheckLite,
		Exhaustive,
		FloatCmp,
		GoCapture,
		HotAlloc,
		MapOrder,
		Nondeterminism,
	}
}
