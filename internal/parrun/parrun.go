// Package parrun executes independent jobs on a fixed-size worker pool
// while committing results in input order, so any output derived from
// them is byte-identical to a serial run.
//
// The determinism argument is structural, not scheduling-dependent:
// workers write only to their own job's pre-assigned slot in the result
// slice (no shared accumulator, no append), and callers consume the
// slice only after Map returns, which happens after every worker has
// exited. The OS may interleave job *execution* arbitrarily; job
// *results* land at fixed indices, and rendering happens afterwards in
// index order. With workers == 1 the pool is bypassed entirely and jobs
// run on the calling goroutine — exactly the pre-parallel code path.
//
// The package deliberately avoids select, time, and math/rand so it
// stays inside the repolint nondeterminism contract for library code.
package parrun

import (
	"runtime"
	"sync"
)

// Workers normalises a -parallel flag value: anything below 1 means
// "one worker per available CPU" (GOMAXPROCS at call time).
func Workers(n int) int {
	if n < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Map runs fn(0) … fn(n-1) on at most `workers` goroutines and returns
// the results in input order. workers < 1 defaults to GOMAXPROCS;
// workers == 1 runs serially on the calling goroutine. If any job
// fails, Map returns the error of the lowest-indexed failing job —
// the same error a serial loop would have stopped on — and no results.
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	if n == 0 {
		return out, nil
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			v, err := fn(i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}
	errs := make([]error, n)
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				out[i], errs[i] = fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
