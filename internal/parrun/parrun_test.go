package parrun

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

// TestMapOrder checks the ordered-commit contract: regardless of worker
// count, results land at the input index. Workers yield between steps to
// shake up the schedule.
func TestMapOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		got, err := Map(workers, 100, func(i int) (int, error) {
			for k := 0; k < i%7; k++ {
				runtime.Gosched()
			}
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != 100 {
			t.Fatalf("workers=%d: got %d results, want 100", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: got[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

// TestMapSerialParallelIdentical runs the same jobs serially and with a
// pool and requires identical result slices — the property every caller
// (scorecard, sweep) relies on for byte-identical output.
func TestMapSerialParallelIdentical(t *testing.T) {
	job := func(i int) (string, error) {
		return fmt.Sprintf("row-%03d", i*13%97), nil
	}
	serial, err := Map(1, 64, job)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Map(8, 64, job)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("index %d: serial %q != parallel %q", i, serial[i], parallel[i])
		}
	}
}

// TestMapFirstErrorWins checks that the reported error is the
// lowest-indexed failure — the one a serial loop would stop on — not
// whichever worker happened to fail first in wall-clock order.
func TestMapFirstErrorWins(t *testing.T) {
	errLow := errors.New("low")
	errHigh := errors.New("high")
	for _, workers := range []int{1, 4} {
		_, err := Map(workers, 20, func(i int) (int, error) {
			switch i {
			case 3:
				return 0, errLow
			case 17:
				return 0, errHigh
			}
			return i, nil
		})
		if !errors.Is(err, errLow) {
			t.Fatalf("workers=%d: got %v, want %v", workers, err, errLow)
		}
	}
}

// TestMapPoolBounded checks the pool really is fixed-size: concurrent
// job executions never exceed the requested worker count.
func TestMapPoolBounded(t *testing.T) {
	const workers = 3
	var inFlight, peak atomic.Int32
	_, err := Map(workers, 50, func(i int) (int, error) {
		n := inFlight.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		runtime.Gosched()
		inFlight.Add(-1)
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent jobs, pool size is %d", p, workers)
	}
}

func TestMapEmpty(t *testing.T) {
	got, err := Map(4, 0, func(i int) (int, error) { return i, nil })
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v, %v; want empty, nil", got, err)
	}
}

// TestWorkersDefault checks the -parallel flag normalisation: values
// below 1 mean GOMAXPROCS, everything else passes through.
func TestWorkersDefault(t *testing.T) {
	if got, want := Workers(0), runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("Workers(0) = %d, want %d", got, want)
	}
	if got, want := Workers(-3), runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("Workers(-3) = %d, want %d", got, want)
	}
	if got := Workers(5); got != 5 {
		t.Fatalf("Workers(5) = %d, want 5", got)
	}
}
