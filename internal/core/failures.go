package core

import (
	"fmt"

	"polarfly/internal/bandwidth"
	"polarfly/internal/graph"
	"polarfly/internal/trees"
)

// TreesUsingLink returns the indices of forest trees whose edge set
// contains the undirected link (u, v).
func TreesUsingLink(forest []*trees.Tree, u, v int) []int {
	e := graph.NewEdge(u, v)
	var out []int
	for i, t := range forest {
		for _, te := range t.Edges() {
			if te == e {
				out = append(out, i)
				break
			}
		}
	}
	return out
}

// Degrade returns a new embedding that survives the failure of the given
// undirected links, by dropping every tree that crosses a failed link and
// re-evaluating the bandwidth model on the survivors. This is the graceful-
// degradation strategy the multi-tree embeddings enable: because the
// low-depth forest has congestion ≤ 2, one link failure removes at most 2
// of its q trees; because the Hamiltonian forest is edge-disjoint, one
// failure removes at most 1 of its ⌊(q+1)/2⌋ trees. A single-tree
// embedding loses everything.
//
// Degrade returns an error if no tree survives.
func Degrade(e *Embedding, failed [][2]int) (*Embedding, error) {
	dead := make(map[int]bool)
	for _, l := range failed {
		for _, ti := range TreesUsingLink(e.Forest, l[0], l[1]) {
			dead[ti] = true
		}
	}
	var surviving []*trees.Tree
	for i, t := range e.Forest {
		if !dead[i] {
			surviving = append(surviving, t)
		}
	}
	if len(surviving) == 0 {
		return nil, fmt.Errorf("core: all %d trees cross a failed link", len(e.Forest))
	}
	out := &Embedding{Kind: e.Kind, Forest: surviving, Topology: e.Topology}
	out.Model = bandwidth.ForForest(surviving, 1.0)
	for _, t := range surviving {
		if d := t.MaxDepth(); d > out.MaxDepth {
			out.MaxDepth = d
		}
	}
	return out, nil
}

// SubsetEmbedding returns an embedding restricted to the given tree
// indices, with the model re-evaluated. Indices must be distinct and in
// range.
func SubsetEmbedding(e *Embedding, indices []int) (*Embedding, error) {
	seen := make(map[int]bool)
	var forest []*trees.Tree
	for _, i := range indices {
		if i < 0 || i >= len(e.Forest) {
			return nil, fmt.Errorf("core: tree index %d out of range [0,%d)", i, len(e.Forest))
		}
		if seen[i] {
			return nil, fmt.Errorf("core: duplicate tree index %d", i)
		}
		seen[i] = true
		forest = append(forest, e.Forest[i])
	}
	out := &Embedding{Kind: e.Kind, Forest: forest, Topology: e.Topology}
	out.Model = bandwidth.ForForest(forest, 1.0)
	for _, t := range forest {
		if d := t.MaxDepth(); d > out.MaxDepth {
			out.MaxDepth = d
		}
	}
	return out, nil
}

// FailureToleranceRow records how many trees a worst-case single-link
// failure removes from each embedding — the redundancy argument for
// multi-tree Allreduce.
type FailureToleranceRow struct {
	Kind EmbeddingKind
	// Trees is the forest size before failure.
	Trees int
	// WorstCaseLost is the maximum trees lost to any single link failure.
	WorstCaseLost int
	// WorstCaseRemainingBW is the model aggregate after that worst
	// failure.
	WorstCaseRemainingBW float64
}

// FailureTolerance computes the single-link worst case for each available
// embedding of q.
func FailureTolerance(q int) ([]FailureToleranceRow, error) {
	inst, err := NewInstance(q)
	if err != nil {
		return nil, err
	}
	kinds := []EmbeddingKind{SingleTree, LowDepth, Hamiltonian}
	if q%2 == 0 {
		kinds = []EmbeddingKind{SingleTree, Hamiltonian}
	}
	var rows []FailureToleranceRow
	for _, kind := range kinds {
		e, err := inst.Embed(kind)
		if err != nil {
			return nil, err
		}
		row := FailureToleranceRow{Kind: kind, Trees: len(e.Forest)}
		worstLost := 0
		worstBW := e.Model.Aggregate
		// Only links used by some tree can hurt.
		cong := trees.Congestion(e.Forest)
		for link, c := range cong {
			if c <= worstLost {
				continue
			}
			deg, err := Degrade(e, [][2]int{{link.U, link.V}})
			lost := len(e.Forest)
			bw := 0.0
			if err == nil {
				lost = len(e.Forest) - len(deg.Forest)
				bw = deg.Model.Aggregate
			}
			if lost > worstLost || (lost == worstLost && bw < worstBW) {
				worstLost = lost
				worstBW = bw
			}
		}
		row.WorstCaseLost = worstLost
		row.WorstCaseRemainingBW = worstBW
		rows = append(rows, row)
	}
	return rows, nil
}
