package core

import (
	"fmt"
	"sort"

	"polarfly/internal/bandwidth"
	"polarfly/internal/graph"
	"polarfly/internal/trees"
)

// TreesUsingLink returns the indices of forest trees whose edge set
// contains the undirected link (u, v).
func TreesUsingLink(forest []*trees.Tree, u, v int) []int {
	e := graph.NewEdge(u, v)
	var out []int
	for i, t := range forest {
		for _, te := range t.Edges() {
			if te == e {
				out = append(out, i)
				break
			}
		}
	}
	return out
}

// Degrade returns a new embedding that survives the failure of the given
// undirected links, by dropping every tree that crosses a failed link and
// re-evaluating the bandwidth model on the survivors. This is the graceful-
// degradation strategy the multi-tree embeddings enable: because the
// low-depth forest has congestion ≤ 2, one link failure removes at most 2
// of its q trees; because the Hamiltonian forest is edge-disjoint, one
// failure removes at most 1 of its ⌊(q+1)/2⌋ trees. A single-tree
// embedding loses everything.
//
// Degrade returns an error if no tree survives.
func Degrade(e *Embedding, failed [][2]int) (*Embedding, error) {
	dead := make(map[int]bool)
	for _, l := range failed {
		for _, ti := range TreesUsingLink(e.Forest, l[0], l[1]) {
			dead[ti] = true
		}
	}
	var surviving []*trees.Tree
	for i, t := range e.Forest {
		if !dead[i] {
			surviving = append(surviving, t)
		}
	}
	if len(surviving) == 0 {
		return nil, fmt.Errorf("core: all %d trees cross a failed link", len(e.Forest))
	}
	out := &Embedding{Kind: e.Kind, Forest: surviving, Topology: e.Topology, LinkB: e.linkB()}
	out.Model = bandwidth.ForForest(surviving, out.LinkB)
	for _, t := range surviving {
		if d := t.MaxDepth(); d > out.MaxDepth {
			out.MaxDepth = d
		}
	}
	return out, nil
}

// SubsetEmbedding returns an embedding restricted to the given tree
// indices, with the model re-evaluated. Indices must be distinct and in
// range.
func SubsetEmbedding(e *Embedding, indices []int) (*Embedding, error) {
	seen := make(map[int]bool)
	var forest []*trees.Tree
	for _, i := range indices {
		if i < 0 || i >= len(e.Forest) {
			return nil, fmt.Errorf("core: tree index %d out of range [0,%d)", i, len(e.Forest))
		}
		if seen[i] {
			return nil, fmt.Errorf("core: duplicate tree index %d", i)
		}
		seen[i] = true
		forest = append(forest, e.Forest[i])
	}
	out := &Embedding{Kind: e.Kind, Forest: forest, Topology: e.Topology, LinkB: e.linkB()}
	out.Model = bandwidth.ForForest(forest, out.LinkB)
	for _, t := range forest {
		if d := t.MaxDepth(); d > out.MaxDepth {
			out.MaxDepth = d
		}
	}
	return out, nil
}

// WorstCaseLink returns the undirected link whose single failure hurts
// the embedding most — losing the most trees, ties broken by the lowest
// surviving model aggregate, then by link order (deterministic). The
// returned embedding is the degraded survivor set; it is nil when the
// worst failure kills every tree (the single-tree case).
func WorstCaseLink(e *Embedding) ([2]int, *Embedding, error) {
	cong := trees.Congestion(e.Forest)
	links := make([]graph.Edge, 0, len(cong))
	for l := range cong {
		links = append(links, l)
	}
	sort.Slice(links, func(i, j int) bool {
		if links[i].U != links[j].U {
			return links[i].U < links[j].U
		}
		return links[i].V < links[j].V
	})
	if len(links) == 0 {
		return [2]int{}, nil, fmt.Errorf("core: embedding has no links")
	}
	var worst [2]int
	var worstDeg *Embedding
	worstLost := -1
	worstBW := 0.0
	for _, l := range links {
		deg, err := Degrade(e, [][2]int{{l.U, l.V}})
		lost := len(e.Forest)
		bw := 0.0
		if err == nil {
			lost = len(e.Forest) - len(deg.Forest)
			bw = deg.Model.Aggregate
		}
		if lost > worstLost || (lost == worstLost && bw < worstBW) {
			worstLost, worstBW = lost, bw
			worst = [2]int{l.U, l.V}
			worstDeg = deg
		}
	}
	return worst, worstDeg, nil
}

// FailureToleranceRow records how many trees a worst-case single-link
// failure removes from each embedding — the redundancy argument for
// multi-tree Allreduce.
type FailureToleranceRow struct {
	Kind EmbeddingKind
	// Trees is the forest size before failure.
	Trees int
	// WorstCaseLost is the maximum trees lost to any single link failure.
	WorstCaseLost int
	// WorstCaseRemainingBW is the model aggregate after that worst
	// failure.
	WorstCaseRemainingBW float64
}

// FailureTolerance computes the single-link worst case for each available
// embedding of q.
func FailureTolerance(q int) ([]FailureToleranceRow, error) {
	inst, err := NewInstance(q)
	if err != nil {
		return nil, err
	}
	kinds := []EmbeddingKind{SingleTree, LowDepth, Hamiltonian}
	if q%2 == 0 {
		kinds = []EmbeddingKind{SingleTree, Hamiltonian}
	}
	var rows []FailureToleranceRow
	for _, kind := range kinds {
		e, err := inst.Embed(kind)
		if err != nil {
			return nil, err
		}
		row := FailureToleranceRow{Kind: kind, Trees: len(e.Forest)}
		_, deg, err := WorstCaseLink(e)
		if err != nil {
			return nil, err
		}
		if deg == nil {
			row.WorstCaseLost = len(e.Forest)
			row.WorstCaseRemainingBW = 0
		} else {
			row.WorstCaseLost = len(e.Forest) - len(deg.Forest)
			row.WorstCaseRemainingBW = deg.Model.Aggregate
		}
		rows = append(rows, row)
	}
	return rows, nil
}
