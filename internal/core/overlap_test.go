package core

import (
	"testing"

	"polarfly/internal/netsim"
)

func TestOverlapStep(t *testing.T) {
	inst := instance(t, 5)
	layers := []int{512, 512, 512, 512}
	cfg := netsim.Config{LinkLatency: 3, VCDepth: 6}

	slow, err := OverlapStep(inst, SingleTree, layers, 100, cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := OverlapStep(inst, LowDepth, layers, 100, cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	if slow.ComputeCycles != 400 || fast.ComputeCycles != 400 {
		t.Fatalf("compute cycles wrong: %d/%d", slow.ComputeCycles, fast.ComputeCycles)
	}
	// Multi-tree Allreduce shrinks the exposed communication tail.
	if fast.ExposedCommCycles >= slow.ExposedCommCycles {
		t.Errorf("low-depth exposed comm %d not below single-tree %d",
			fast.ExposedCommCycles, slow.ExposedCommCycles)
	}
	if fast.StepCycles >= slow.StepCycles {
		t.Errorf("low-depth step %d not below single-tree %d", fast.StepCycles, slow.StepCycles)
	}
	// Step time is never below pure compute.
	if fast.StepCycles < fast.ComputeCycles {
		t.Error("step time below compute time")
	}
	// Per-layer sync times recorded.
	if len(slow.SyncCycles) != 4 {
		t.Errorf("sync cycles: %v", slow.SyncCycles)
	}
}

func TestOverlapMostlyHidden(t *testing.T) {
	// With enormous per-layer compute, all but the final gradient's sync
	// hides behind compute: the exposed tail is exactly the last layer's
	// Allreduce (which starts only when the backward pass has finished —
	// no overlap is ever possible for it).
	inst := instance(t, 3)
	res, err := OverlapStep(inst, LowDepth, []int{64, 64}, 100000,
		netsim.Config{LinkLatency: 2, VCDepth: 4}, 9)
	if err != nil {
		t.Fatal(err)
	}
	lastSync := res.SyncCycles[len(res.SyncCycles)-1]
	if res.ExposedCommCycles != lastSync {
		t.Errorf("exposed comm %d, want final sync %d", res.ExposedCommCycles, lastSync)
	}
	if res.StepCycles != res.ComputeCycles+lastSync {
		t.Errorf("step %d != compute %d + tail %d", res.StepCycles, res.ComputeCycles, lastSync)
	}
}

func TestOverlapErrors(t *testing.T) {
	inst := instance(t, 3)
	if _, err := OverlapStep(inst, LowDepth, []int{4}, -1, netsim.DefaultConfig(), 1); err == nil {
		t.Error("negative compute accepted")
	}
}
