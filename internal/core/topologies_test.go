package core

import (
	"strings"
	"testing"
)

func TestTopologyComparison(t *testing.T) {
	rows, err := TopologyComparison(11, 0.5) // N=133; 12² = 144, 5³ = 125 etc.
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 3 {
		t.Fatalf("only %d rows: %+v", len(rows), rows)
	}
	var pf TopologyRow
	torusSeen := false
	for _, r := range rows {
		if r.N <= 0 || r.Radix <= 0 || r.AllreduceBW <= 0 {
			t.Errorf("degenerate row %+v", r)
		}
		if strings.HasPrefix(r.Name, "PolarFly q=11") && !strings.Contains(r.Name, "low-depth") {
			pf = r
		}
		if strings.Contains(r.Name, "cube") {
			torusSeen = true
			// The paper's positioning: at similar node counts the torus
			// has a much larger diameter and a much smaller radix (hence
			// less Allreduce bandwidth) than PolarFly.
			if r.Diameter <= 2 {
				t.Errorf("torus %s diameter %d suspicious", r.Name, r.Diameter)
			}
		}
	}
	if !torusSeen {
		t.Fatal("no torus row generated")
	}
	if pf.Diameter != 2 || pf.AllreduceBW != 6.0 {
		t.Errorf("PolarFly row %+v", pf)
	}
	// PolarFly beats every comparable torus on aggregate bandwidth.
	for _, r := range rows {
		if strings.Contains(r.Name, "cube") && r.AllreduceBW >= pf.AllreduceBW {
			t.Errorf("torus %s bandwidth %.1f not below PolarFly's %.1f", r.Name, r.AllreduceBW, pf.AllreduceBW)
		}
	}
}

func TestTopologyComparisonEvenQ(t *testing.T) {
	rows, err := TopologyComparison(8, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if strings.Contains(r.Name, "low-depth") {
			t.Error("even q should not produce a low-depth row")
		}
	}
}
