package core

import (
	"fmt"

	"polarfly/internal/netsim"
	"polarfly/internal/trees"
	"polarfly/internal/workload"
)

// TenantRow reports one tenant of a shared-fabric experiment.
type TenantRow struct {
	Tenant     int
	Trees      int
	Elements   int
	DoneCycles int
}

// TenantIsolation partitions the edge-disjoint Hamiltonian forest across
// `tenants` concurrent Allreduce jobs, each reducing its own m-element
// vector, and runs them simultaneously on one fabric. Because the trees
// are edge-disjoint, tenants share no links: each finishes as if it ran
// alone on its subset of trees — performance isolation that congested
// embeddings cannot give. Returns per-tenant completion cycles.
func TenantIsolation(q, m, tenants int, cfg netsim.Config, seed int64) ([]TenantRow, error) {
	if tenants < 1 {
		return nil, fmt.Errorf("core: need ≥ 1 tenant")
	}
	inst, err := NewInstance(q)
	if err != nil {
		return nil, err
	}
	forest, err := trees.HamiltonianForest(inst.Singer, DefaultMISTries, seed)
	if err != nil {
		return nil, err
	}
	if tenants > len(forest) {
		return nil, fmt.Errorf("core: %d tenants exceed %d available disjoint trees", tenants, len(forest))
	}

	// Deal trees round-robin to tenants; tenant j's vector occupies its own
	// segment of the concatenated input space.
	treeTenant := make([]int, len(forest))
	treesOf := make([][]int, tenants)
	for i := range forest {
		j := i % tenants
		treeTenant[i] = j
		treesOf[j] = append(treesOf[j], i)
	}
	split := make([]int, len(forest))
	for j := 0; j < tenants; j++ {
		k := len(treesOf[j])
		for idx, ti := range treesOf[j] {
			split[ti] = m / k
			if idx == 0 {
				split[ti] += m - (m/k)*k
			}
		}
	}
	total := 0
	for _, s := range split {
		total += s
	}
	inputs := workload.Vectors(inst.N(), total, 1000, seed)
	res, err := netsim.Run(netsim.Spec{
		Topology: inst.Singer.Topology(),
		Forest:   forest,
		Split:    split,
		Inputs:   inputs,
	}, cfg)
	if err != nil {
		return nil, err
	}
	// Verify sums.
	want := netsim.ExpectedOutput(inputs)
	for v := range res.Outputs {
		for k := range want {
			if res.Outputs[v][k] != want[k] {
				return nil, fmt.Errorf("core: tenant experiment wrong at node %d element %d", v, k)
			}
		}
	}
	rows := make([]TenantRow, tenants)
	for j := range rows {
		rows[j] = TenantRow{Tenant: j, Trees: len(treesOf[j]), Elements: m}
	}
	for ti, done := range res.TreeDone {
		j := treeTenant[ti]
		if done > rows[j].DoneCycles {
			rows[j].DoneCycles = done
		}
	}
	return rows, nil
}
