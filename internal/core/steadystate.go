package core

import (
	"fmt"

	"polarfly/internal/netsim"
	"polarfly/internal/workload"
)

// SteadyStateRow separates an embedding's pipeline-fill latency from its
// sustained rate. The paper reports analytic bandwidths; the simulator's
// raw m/cycles conflates rate with fill time, which penalises deep trees
// (the Hamiltonian forest's depth-(N−1)/2 pipeline). Running two vector
// sizes and differencing recovers both components:
//
//	cycles(m) ≈ Fill + m / Rate
type SteadyStateRow struct {
	Kind EmbeddingKind
	// Rate is the sustained bandwidth in elements/cycle.
	Rate float64
	// Fill is the extrapolated zero-length completion time in cycles
	// (pipeline fill + drain).
	Fill float64
	// ModelBW is the Algorithm 1 aggregate for comparison.
	ModelBW float64
}

// SteadyState measures sustained bandwidth for the given embedding by
// running vector lengths m and 2m and differencing.
func SteadyState(inst *Instance, kind EmbeddingKind, m int, cfg netsim.Config, seed int64) (*SteadyStateRow, error) {
	if m < 2 {
		return nil, fmt.Errorf("core: steady-state needs m ≥ 2")
	}
	e, err := inst.Embed(kind)
	if err != nil {
		return nil, err
	}
	run := func(mm int) (int, error) {
		inputs := workload.Vectors(inst.N(), mm, 1000, seed)
		res, err := inst.Allreduce(e, inputs, cfg)
		if err != nil {
			return 0, err
		}
		return res.Cycles, nil
	}
	c1, err := run(m)
	if err != nil {
		return nil, err
	}
	c2, err := run(2 * m)
	if err != nil {
		return nil, err
	}
	if c2 <= c1 {
		return nil, fmt.Errorf("core: non-monotone cycle counts %d, %d", c1, c2)
	}
	rate := float64(m) / float64(c2-c1)
	return &SteadyStateRow{
		Kind:    kind,
		Rate:    rate,
		Fill:    float64(c1) - float64(m)/rate,
		ModelBW: e.Model.Aggregate,
	}, nil
}

// SteadyStateComparison measures all available embeddings of q.
func SteadyStateComparison(q, m int, cfg netsim.Config, seed int64) ([]SteadyStateRow, error) {
	inst, err := NewInstance(q)
	if err != nil {
		return nil, err
	}
	kinds := []EmbeddingKind{SingleTree, LowDepth, Hamiltonian}
	if q%2 == 0 {
		kinds = []EmbeddingKind{SingleTree, Hamiltonian}
	}
	var rows []SteadyStateRow
	for _, kind := range kinds {
		row, err := SteadyState(inst, kind, m, cfg, seed)
		if err != nil {
			return nil, err
		}
		rows = append(rows, *row)
	}
	return rows, nil
}
