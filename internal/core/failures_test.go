package core

import (
	"testing"

	"polarfly/internal/netsim"
	"polarfly/internal/workload"
)

func TestTreesUsingLink(t *testing.T) {
	in := instance(t, 5)
	e, err := in.Embed(LowDepth)
	if err != nil {
		t.Fatal(err)
	}
	// Every tree edge maps back to its tree.
	for ti, tr := range e.Forest {
		edges := tr.Edges()
		found := false
		for _, idx := range TreesUsingLink(e.Forest, edges[0].U, edges[0].V) {
			if idx == ti {
				found = true
			}
		}
		if !found {
			t.Fatalf("tree %d not found for its own edge", ti)
		}
	}
	// Theorem 7.6: no link serves more than 2 trees.
	for _, tr := range e.Forest {
		for _, edge := range tr.Edges() {
			if n := len(TreesUsingLink(e.Forest, edge.U, edge.V)); n > 2 {
				t.Fatalf("link %v used by %d trees", edge, n)
			}
		}
	}
}

func TestDegradeDropsAffectedTreesOnly(t *testing.T) {
	in := instance(t, 5)
	e, err := in.Embed(Hamiltonian)
	if err != nil {
		t.Fatal(err)
	}
	// Fail one edge of tree 0: exactly one tree dies (edge-disjointness).
	victim := e.Forest[0].Edges()[3]
	deg, err := Degrade(e, [][2]int{{victim.U, victim.V}})
	if err != nil {
		t.Fatal(err)
	}
	if len(deg.Forest) != len(e.Forest)-1 {
		t.Errorf("lost %d trees, want 1", len(e.Forest)-len(deg.Forest))
	}
	if deg.Model.Aggregate != e.Model.Aggregate-1.0 {
		t.Errorf("degraded BW %f, want %f", deg.Model.Aggregate, e.Model.Aggregate-1.0)
	}

	// The degraded embedding still computes correct Allreduces.
	inputs := workload.Vectors(in.N(), 120, 100, 8)
	res, err := in.Allreduce(deg, inputs, netsim.Config{LinkLatency: 2, VCDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	want := netsim.ExpectedOutput(inputs)
	for v := range res.Outputs {
		for k := range want {
			if res.Outputs[v][k] != want[k] {
				t.Fatalf("degraded allreduce wrong at node %d", v)
			}
		}
	}

	// Failing every tree's first edge kills the whole forest.
	var all [][2]int
	for _, tr := range e.Forest {
		edge := tr.Edges()[0]
		all = append(all, [2]int{edge.U, edge.V})
	}
	if _, err := Degrade(e, all); err == nil {
		t.Error("total failure should error")
	}
}

func TestFailureTolerance(t *testing.T) {
	rows, err := FailureTolerance(5)
	if err != nil {
		t.Fatal(err)
	}
	byKind := map[EmbeddingKind]FailureToleranceRow{}
	for _, r := range rows {
		byKind[r.Kind] = r
	}
	// Single tree: one failure loses everything.
	if byKind[SingleTree].WorstCaseLost != 1 || byKind[SingleTree].WorstCaseRemainingBW != 0 {
		t.Errorf("single tree tolerance: %+v", byKind[SingleTree])
	}
	// Low-depth: at most 2 trees lost (Theorem 7.6), ≥ q−2 survive.
	if byKind[LowDepth].WorstCaseLost > 2 {
		t.Errorf("low-depth lost %d > 2", byKind[LowDepth].WorstCaseLost)
	}
	if byKind[LowDepth].WorstCaseRemainingBW <= 0 {
		t.Error("low-depth should retain bandwidth after one failure")
	}
	// Hamiltonian: at most 1 tree lost (edge-disjoint).
	if byKind[Hamiltonian].WorstCaseLost > 1 {
		t.Errorf("hamiltonian lost %d > 1", byKind[Hamiltonian].WorstCaseLost)
	}
	if byKind[Hamiltonian].WorstCaseRemainingBW != 2.0 { // 3 trees − 1
		t.Errorf("hamiltonian remaining BW %f, want 2", byKind[Hamiltonian].WorstCaseRemainingBW)
	}
}
