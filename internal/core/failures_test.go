package core

import (
	"errors"
	"math/rand"
	"testing"

	"polarfly/internal/faults"
	"polarfly/internal/netsim"
	"polarfly/internal/workload"
)

func TestTreesUsingLink(t *testing.T) {
	in := instance(t, 5)
	e, err := in.Embed(LowDepth)
	if err != nil {
		t.Fatal(err)
	}
	// Every tree edge maps back to its tree.
	for ti, tr := range e.Forest {
		edges := tr.Edges()
		found := false
		for _, idx := range TreesUsingLink(e.Forest, edges[0].U, edges[0].V) {
			if idx == ti {
				found = true
			}
		}
		if !found {
			t.Fatalf("tree %d not found for its own edge", ti)
		}
	}
	// Theorem 7.6: no link serves more than 2 trees.
	for _, tr := range e.Forest {
		for _, edge := range tr.Edges() {
			if n := len(TreesUsingLink(e.Forest, edge.U, edge.V)); n > 2 {
				t.Fatalf("link %v used by %d trees", edge, n)
			}
		}
	}
}

func TestDegradeDropsAffectedTreesOnly(t *testing.T) {
	in := instance(t, 5)
	e, err := in.Embed(Hamiltonian)
	if err != nil {
		t.Fatal(err)
	}
	// Fail one edge of tree 0: exactly one tree dies (edge-disjointness).
	victim := e.Forest[0].Edges()[3]
	deg, err := Degrade(e, [][2]int{{victim.U, victim.V}})
	if err != nil {
		t.Fatal(err)
	}
	if len(deg.Forest) != len(e.Forest)-1 {
		t.Errorf("lost %d trees, want 1", len(e.Forest)-len(deg.Forest))
	}
	if deg.Model.Aggregate != e.Model.Aggregate-1.0 {
		t.Errorf("degraded BW %f, want %f", deg.Model.Aggregate, e.Model.Aggregate-1.0)
	}

	// The degraded embedding still computes correct Allreduces.
	inputs := workload.Vectors(in.N(), 120, 100, 8)
	res, err := in.Allreduce(deg, inputs, netsim.Config{LinkLatency: 2, VCDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	want := netsim.ExpectedOutput(inputs)
	for v := range res.Outputs {
		for k := range want {
			if res.Outputs[v][k] != want[k] {
				t.Fatalf("degraded allreduce wrong at node %d", v)
			}
		}
	}

	// Failing every tree's first edge kills the whole forest.
	var all [][2]int
	for _, tr := range e.Forest {
		edge := tr.Edges()[0]
		all = append(all, [2]int{edge.U, edge.V})
	}
	if _, err := Degrade(e, all); err == nil {
		t.Error("total failure should error")
	}
}

// TestSingleLinkFailureProperty exercises the structural robustness claim
// across q ∈ {3, 5, 7, 11}: EVERY single link failure (not just the worst
// case) removes at most 2 low-depth trees (Theorem 7.6's congestion
// bound) and at most 1 Hamiltonian tree (Theorem 7.19's edge-
// disjointness), while the single-tree baseline loses everything on any
// used link.
func TestSingleLinkFailureProperty(t *testing.T) {
	for _, q := range []int{3, 5, 7, 11} {
		in := instance(t, q)
		cases := []struct {
			kind    EmbeddingKind
			maxLost int
		}{
			{LowDepth, 2},
			{Hamiltonian, 1},
		}
		for _, c := range cases {
			e, err := in.Embed(c.kind)
			if err != nil {
				t.Fatal(err)
			}
			for _, tr := range e.Forest {
				for _, edge := range tr.Edges() {
					deg, err := Degrade(e, [][2]int{{edge.U, edge.V}})
					if err != nil {
						t.Fatalf("q=%d %v: link %v killed all trees: %v", q, c.kind, edge, err)
					}
					lost := len(e.Forest) - len(deg.Forest)
					if lost < 1 || lost > c.maxLost {
						t.Errorf("q=%d %v: link %v lost %d trees, want 1..%d",
							q, c.kind, edge, lost, c.maxLost)
					}
				}
			}
		}
		// The single-tree baseline: every used link is fatal.
		e, err := in.Embed(SingleTree)
		if err != nil {
			t.Fatal(err)
		}
		for _, edge := range e.Forest[0].Edges() {
			if _, err := Degrade(e, [][2]int{{edge.U, edge.V}}); err == nil {
				t.Errorf("q=%d single tree survived losing link %v", q, edge)
			}
		}
	}
}

// forestLinks returns every link any tree of the embedding uses, in the
// deterministic tree/edge iteration order, deduplicated.
func forestLinks(e *Embedding) [][2]int {
	var pool [][2]int
	seen := map[[2]int]bool{}
	for _, tr := range e.Forest {
		for _, edge := range tr.Edges() {
			u, v := edge.U, edge.V
			if u > v {
				u, v = v, u
			}
			if !seen[[2]int{u, v}] {
				seen[[2]int{u, v}] = true
				pool = append(pool, [2]int{u, v})
			}
		}
	}
	return pool
}

// TestKLinkFailureProperty generalizes TestSingleLinkFailureProperty to
// correlated k-link fault domains across q ∈ {3, 5, 7, 11}: any k-subset
// of tree links leaves at least trees−2k low-depth survivors (Theorem
// 7.6: a link serves ≤ 2 trees) and at least trees−k Hamiltonian
// survivors (Theorem 7.19: edge-disjointness). Degrade may only report
// total loss when the bound itself reaches zero.
func TestKLinkFailureProperty(t *testing.T) {
	for _, q := range []int{3, 5, 7, 11} {
		in := instance(t, q)
		cases := []struct {
			kind    EmbeddingKind
			perLink int
		}{
			{LowDepth, 2},
			{Hamiltonian, 1},
		}
		for _, c := range cases {
			e, err := in.Embed(c.kind)
			if err != nil {
				t.Fatal(err)
			}
			pool := forestLinks(e)
			rng := rand.New(rand.NewSource(int64(1000 + q)))
			for k := 2; k <= 3; k++ {
				bound := len(e.Forest) - c.perLink*k
				for trial := 0; trial < 20; trial++ {
					idxs := rng.Perm(len(pool))[:k]
					fail := make([][2]int, k)
					for i, idx := range idxs {
						fail[i] = pool[idx]
					}
					deg, err := Degrade(e, fail)
					if err != nil {
						if bound >= 1 {
							t.Errorf("q=%d %v: %d-link failure %v killed all %d trees, bound promises ≥ %d survivors",
								q, c.kind, k, fail, len(e.Forest), bound)
						}
						continue
					}
					got := len(deg.Forest)
					if got < bound {
						t.Errorf("q=%d %v: %d-link failure %v left %d trees, want ≥ %d",
							q, c.kind, k, fail, got, bound)
					}
					if got >= len(e.Forest) {
						t.Errorf("q=%d %v: %d tree links failed but no tree died", q, c.kind, k)
					}
				}
			}
		}
	}
}

// TestRouterFailureProperty checks the correlated router-down domain
// across q ∈ {3, 5, 7, 11}: every spanning tree touches every node, so
// losing any router's incident links structurally kills every embedding
// (Degrade reports total loss), and the simulator classifies a mid-run
// router-down as ErrAllTreesLost instead of hanging or misreporting.
func TestRouterFailureProperty(t *testing.T) {
	for _, q := range []int{3, 5, 7, 11} {
		in := instance(t, q)
		for _, kind := range []EmbeddingKind{SingleTree, LowDepth, Hamiltonian} {
			e, err := in.Embed(kind)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(int64(q)))
			for trial := 0; trial < 5; trial++ {
				n := rng.Intn(in.N())
				var fail [][2]int
				for _, nb := range e.Topology.Neighbors(n) {
					fail = append(fail, [2]int{n, nb})
				}
				if _, err := Degrade(e, fail); err == nil {
					t.Errorf("q=%d %v: router %d down left survivors", q, kind, n)
				}
			}
		}
		// The simulator side: a router-down before completion must abort
		// with the classified sentinel on the single-tree baseline.
		e, err := in.Embed(SingleTree)
		if err != nil {
			t.Fatal(err)
		}
		inputs := workload.Vectors(in.N(), 256, 100, 7)
		plan := &faults.Plan{Faults: []faults.Fault{{Kind: faults.RouterDown, Node: q, At: 20}}}
		if _, err := in.Allreduce(e, inputs, netsim.Config{LinkLatency: 1, VCDepth: 4, Faults: plan}); !errors.Is(err, netsim.ErrAllTreesLost) {
			t.Errorf("q=%d single-tree router-down: err=%v, want ErrAllTreesLost", q, err)
		}
	}
}

// TestWorstCaseLink pins the helper's contract: deterministic worst link,
// a survivor embedding for multi-tree forests, nil for the single tree.
func TestWorstCaseLink(t *testing.T) {
	in := instance(t, 5)
	e, err := in.Embed(LowDepth)
	if err != nil {
		t.Fatal(err)
	}
	link, deg, err := WorstCaseLink(e)
	if err != nil {
		t.Fatal(err)
	}
	if deg == nil {
		t.Fatal("low-depth worst case killed everything")
	}
	lost := len(e.Forest) - len(deg.Forest)
	if lost < 1 || lost > 2 {
		t.Errorf("worst case lost %d trees, want 1..2", lost)
	}
	if got := len(TreesUsingLink(e.Forest, link[0], link[1])); got != lost {
		t.Errorf("worst link %v used by %d trees but lost %d", link, got, lost)
	}
	link2, _, err := WorstCaseLink(e)
	if err != nil {
		t.Fatal(err)
	}
	if link != link2 {
		t.Errorf("WorstCaseLink not deterministic: %v vs %v", link, link2)
	}

	st, err := in.Embed(SingleTree)
	if err != nil {
		t.Fatal(err)
	}
	if _, deg, err := WorstCaseLink(st); err != nil || deg != nil {
		t.Errorf("single tree: deg=%v err=%v, want nil survivors", deg, err)
	}
}

// TestDegradePreservesLinkBandwidth is the satellite-1 regression: the
// survivors' model must be evaluated at the original embedding's link
// bandwidth, not hard-coded 1.0.
func TestDegradePreservesLinkBandwidth(t *testing.T) {
	in := instance(t, 5)
	e, err := in.Embed(Hamiltonian)
	if err != nil {
		t.Fatal(err)
	}
	e4, err := e.WithLinkBandwidth(4.0)
	if err != nil {
		t.Fatal(err)
	}
	if e4.Model.Aggregate != 4.0*e.Model.Aggregate {
		t.Fatalf("repriced aggregate %f, want %f", e4.Model.Aggregate, 4.0*e.Model.Aggregate)
	}
	victim := e4.Forest[0].Edges()[0]
	deg, err := Degrade(e4, [][2]int{{victim.U, victim.V}})
	if err != nil {
		t.Fatal(err)
	}
	if deg.LinkB != 4.0 {
		t.Errorf("degraded LinkB = %g, want 4", deg.LinkB)
	}
	// Edge-disjoint forest: each tree contributes LinkB to the aggregate.
	want := e4.Model.Aggregate - 4.0
	if deg.Model.Aggregate != want {
		t.Errorf("degraded aggregate %f at LinkB=4, want %f", deg.Model.Aggregate, want)
	}
	sub, err := SubsetEmbedding(e4, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if sub.LinkB != 4.0 || sub.Model.Aggregate != 8.0 {
		t.Errorf("subset at LinkB=4: LinkB=%g aggregate=%f, want 4 and 8", sub.LinkB, sub.Model.Aggregate)
	}
	if _, err := e.WithLinkBandwidth(0); err == nil {
		t.Error("WithLinkBandwidth(0) accepted")
	}
}

func TestFailureTolerance(t *testing.T) {
	rows, err := FailureTolerance(5)
	if err != nil {
		t.Fatal(err)
	}
	byKind := map[EmbeddingKind]FailureToleranceRow{}
	for _, r := range rows {
		byKind[r.Kind] = r
	}
	// Single tree: one failure loses everything.
	if byKind[SingleTree].WorstCaseLost != 1 || byKind[SingleTree].WorstCaseRemainingBW != 0 {
		t.Errorf("single tree tolerance: %+v", byKind[SingleTree])
	}
	// Low-depth: at most 2 trees lost (Theorem 7.6), ≥ q−2 survive.
	if byKind[LowDepth].WorstCaseLost > 2 {
		t.Errorf("low-depth lost %d > 2", byKind[LowDepth].WorstCaseLost)
	}
	if byKind[LowDepth].WorstCaseRemainingBW <= 0 {
		t.Error("low-depth should retain bandwidth after one failure")
	}
	// Hamiltonian: at most 1 tree lost (edge-disjoint).
	if byKind[Hamiltonian].WorstCaseLost > 1 {
		t.Errorf("hamiltonian lost %d > 1", byKind[Hamiltonian].WorstCaseLost)
	}
	if byKind[Hamiltonian].WorstCaseRemainingBW != 2.0 { // 3 trees − 1
		t.Errorf("hamiltonian remaining BW %f, want 2", byKind[Hamiltonian].WorstCaseRemainingBW)
	}
}
