package core

import (
	"testing"

	"polarfly/internal/netsim"
	"polarfly/internal/workload"
)

func TestTreesUsingLink(t *testing.T) {
	in := instance(t, 5)
	e, err := in.Embed(LowDepth)
	if err != nil {
		t.Fatal(err)
	}
	// Every tree edge maps back to its tree.
	for ti, tr := range e.Forest {
		edges := tr.Edges()
		found := false
		for _, idx := range TreesUsingLink(e.Forest, edges[0].U, edges[0].V) {
			if idx == ti {
				found = true
			}
		}
		if !found {
			t.Fatalf("tree %d not found for its own edge", ti)
		}
	}
	// Theorem 7.6: no link serves more than 2 trees.
	for _, tr := range e.Forest {
		for _, edge := range tr.Edges() {
			if n := len(TreesUsingLink(e.Forest, edge.U, edge.V)); n > 2 {
				t.Fatalf("link %v used by %d trees", edge, n)
			}
		}
	}
}

func TestDegradeDropsAffectedTreesOnly(t *testing.T) {
	in := instance(t, 5)
	e, err := in.Embed(Hamiltonian)
	if err != nil {
		t.Fatal(err)
	}
	// Fail one edge of tree 0: exactly one tree dies (edge-disjointness).
	victim := e.Forest[0].Edges()[3]
	deg, err := Degrade(e, [][2]int{{victim.U, victim.V}})
	if err != nil {
		t.Fatal(err)
	}
	if len(deg.Forest) != len(e.Forest)-1 {
		t.Errorf("lost %d trees, want 1", len(e.Forest)-len(deg.Forest))
	}
	if deg.Model.Aggregate != e.Model.Aggregate-1.0 {
		t.Errorf("degraded BW %f, want %f", deg.Model.Aggregate, e.Model.Aggregate-1.0)
	}

	// The degraded embedding still computes correct Allreduces.
	inputs := workload.Vectors(in.N(), 120, 100, 8)
	res, err := in.Allreduce(deg, inputs, netsim.Config{LinkLatency: 2, VCDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	want := netsim.ExpectedOutput(inputs)
	for v := range res.Outputs {
		for k := range want {
			if res.Outputs[v][k] != want[k] {
				t.Fatalf("degraded allreduce wrong at node %d", v)
			}
		}
	}

	// Failing every tree's first edge kills the whole forest.
	var all [][2]int
	for _, tr := range e.Forest {
		edge := tr.Edges()[0]
		all = append(all, [2]int{edge.U, edge.V})
	}
	if _, err := Degrade(e, all); err == nil {
		t.Error("total failure should error")
	}
}

// TestSingleLinkFailureProperty exercises the structural robustness claim
// across q ∈ {3, 5, 7, 11}: EVERY single link failure (not just the worst
// case) removes at most 2 low-depth trees (Theorem 7.6's congestion
// bound) and at most 1 Hamiltonian tree (Theorem 7.19's edge-
// disjointness), while the single-tree baseline loses everything on any
// used link.
func TestSingleLinkFailureProperty(t *testing.T) {
	for _, q := range []int{3, 5, 7, 11} {
		in := instance(t, q)
		cases := []struct {
			kind    EmbeddingKind
			maxLost int
		}{
			{LowDepth, 2},
			{Hamiltonian, 1},
		}
		for _, c := range cases {
			e, err := in.Embed(c.kind)
			if err != nil {
				t.Fatal(err)
			}
			for _, tr := range e.Forest {
				for _, edge := range tr.Edges() {
					deg, err := Degrade(e, [][2]int{{edge.U, edge.V}})
					if err != nil {
						t.Fatalf("q=%d %v: link %v killed all trees: %v", q, c.kind, edge, err)
					}
					lost := len(e.Forest) - len(deg.Forest)
					if lost < 1 || lost > c.maxLost {
						t.Errorf("q=%d %v: link %v lost %d trees, want 1..%d",
							q, c.kind, edge, lost, c.maxLost)
					}
				}
			}
		}
		// The single-tree baseline: every used link is fatal.
		e, err := in.Embed(SingleTree)
		if err != nil {
			t.Fatal(err)
		}
		for _, edge := range e.Forest[0].Edges() {
			if _, err := Degrade(e, [][2]int{{edge.U, edge.V}}); err == nil {
				t.Errorf("q=%d single tree survived losing link %v", q, edge)
			}
		}
	}
}

// TestWorstCaseLink pins the helper's contract: deterministic worst link,
// a survivor embedding for multi-tree forests, nil for the single tree.
func TestWorstCaseLink(t *testing.T) {
	in := instance(t, 5)
	e, err := in.Embed(LowDepth)
	if err != nil {
		t.Fatal(err)
	}
	link, deg, err := WorstCaseLink(e)
	if err != nil {
		t.Fatal(err)
	}
	if deg == nil {
		t.Fatal("low-depth worst case killed everything")
	}
	lost := len(e.Forest) - len(deg.Forest)
	if lost < 1 || lost > 2 {
		t.Errorf("worst case lost %d trees, want 1..2", lost)
	}
	if got := len(TreesUsingLink(e.Forest, link[0], link[1])); got != lost {
		t.Errorf("worst link %v used by %d trees but lost %d", link, got, lost)
	}
	link2, _, err := WorstCaseLink(e)
	if err != nil {
		t.Fatal(err)
	}
	if link != link2 {
		t.Errorf("WorstCaseLink not deterministic: %v vs %v", link, link2)
	}

	st, err := in.Embed(SingleTree)
	if err != nil {
		t.Fatal(err)
	}
	if _, deg, err := WorstCaseLink(st); err != nil || deg != nil {
		t.Errorf("single tree: deg=%v err=%v, want nil survivors", deg, err)
	}
}

// TestDegradePreservesLinkBandwidth is the satellite-1 regression: the
// survivors' model must be evaluated at the original embedding's link
// bandwidth, not hard-coded 1.0.
func TestDegradePreservesLinkBandwidth(t *testing.T) {
	in := instance(t, 5)
	e, err := in.Embed(Hamiltonian)
	if err != nil {
		t.Fatal(err)
	}
	e4, err := e.WithLinkBandwidth(4.0)
	if err != nil {
		t.Fatal(err)
	}
	if e4.Model.Aggregate != 4.0*e.Model.Aggregate {
		t.Fatalf("repriced aggregate %f, want %f", e4.Model.Aggregate, 4.0*e.Model.Aggregate)
	}
	victim := e4.Forest[0].Edges()[0]
	deg, err := Degrade(e4, [][2]int{{victim.U, victim.V}})
	if err != nil {
		t.Fatal(err)
	}
	if deg.LinkB != 4.0 {
		t.Errorf("degraded LinkB = %g, want 4", deg.LinkB)
	}
	// Edge-disjoint forest: each tree contributes LinkB to the aggregate.
	want := e4.Model.Aggregate - 4.0
	if deg.Model.Aggregate != want {
		t.Errorf("degraded aggregate %f at LinkB=4, want %f", deg.Model.Aggregate, want)
	}
	sub, err := SubsetEmbedding(e4, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if sub.LinkB != 4.0 || sub.Model.Aggregate != 8.0 {
		t.Errorf("subset at LinkB=4: LinkB=%g aggregate=%f, want 4 and 8", sub.LinkB, sub.Model.Aggregate)
	}
	if _, err := e.WithLinkBandwidth(0); err == nil {
		t.Error("WithLinkBandwidth(0) accepted")
	}
}

func TestFailureTolerance(t *testing.T) {
	rows, err := FailureTolerance(5)
	if err != nil {
		t.Fatal(err)
	}
	byKind := map[EmbeddingKind]FailureToleranceRow{}
	for _, r := range rows {
		byKind[r.Kind] = r
	}
	// Single tree: one failure loses everything.
	if byKind[SingleTree].WorstCaseLost != 1 || byKind[SingleTree].WorstCaseRemainingBW != 0 {
		t.Errorf("single tree tolerance: %+v", byKind[SingleTree])
	}
	// Low-depth: at most 2 trees lost (Theorem 7.6), ≥ q−2 survive.
	if byKind[LowDepth].WorstCaseLost > 2 {
		t.Errorf("low-depth lost %d > 2", byKind[LowDepth].WorstCaseLost)
	}
	if byKind[LowDepth].WorstCaseRemainingBW <= 0 {
		t.Error("low-depth should retain bandwidth after one failure")
	}
	// Hamiltonian: at most 1 tree lost (edge-disjoint).
	if byKind[Hamiltonian].WorstCaseLost > 1 {
		t.Errorf("hamiltonian lost %d > 1", byKind[Hamiltonian].WorstCaseLost)
	}
	if byKind[Hamiltonian].WorstCaseRemainingBW != 2.0 { // 3 trees − 1
		t.Errorf("hamiltonian remaining BW %f, want 2", byKind[Hamiltonian].WorstCaseRemainingBW)
	}
}
