// Package core orchestrates the paper's experiments: it bundles the two
// constructions of a PolarFly instance, derives the three Allreduce
// embeddings (single-tree baseline, Algorithm 3 low-depth forest,
// edge-disjoint Hamiltonian forest), evaluates them under the Algorithm 1
// bandwidth model and the cycle-level simulator, and produces the exact
// data series behind every table and figure in the evaluation (§7.3).
package core

import (
	"fmt"

	"polarfly/internal/bandwidth"
	"polarfly/internal/er"
	"polarfly/internal/graph"
	"polarfly/internal/netsim"
	"polarfly/internal/singer"
	"polarfly/internal/trees"
)

// DefaultMISTries is the number of random maximal-independent-set
// instances used when searching for edge-disjoint Hamiltonian paths,
// matching §7.3 of the paper.
const DefaultMISTries = 30

// DefaultSeed makes every randomized search reproducible by default.
const DefaultSeed = 42

// Instance is one PolarFly design point with both of the paper's
// constructions materialised.
type Instance struct {
	// Q is the prime power; radix = Q+1, N = Q²+Q+1.
	Q int
	// ER is the projective-geometry construction (§6.1).
	ER *er.Graph
	// Layout is the Algorithm 2 cluster layout; nil for even Q (the paper
	// covers the odd-q layout).
	Layout *er.Layout
	// Singer is the difference-set construction (§6.2), isomorphic to ER
	// (Theorem 6.6).
	Singer *singer.Graph
}

// NewInstance builds the PolarFly instance for prime power q.
func NewInstance(q int) (*Instance, error) {
	pg, err := er.New(q)
	if err != nil {
		return nil, err
	}
	s, err := singer.New(q)
	if err != nil {
		return nil, err
	}
	inst := &Instance{Q: q, ER: pg, Singer: s}
	if q%2 == 1 {
		l, err := er.NewLayout(pg, -1)
		if err != nil {
			return nil, err
		}
		inst.Layout = l
	}
	return inst, nil
}

// N returns the node count q²+q+1.
func (in *Instance) N() int { return in.ER.N() }

// Radix returns the network radix q+1.
func (in *Instance) Radix() int { return in.Q + 1 }

// EmbeddingKind selects one of the three Allreduce embeddings.
type EmbeddingKind int

const (
	// SingleTree is the one-BFS-tree baseline capped at one link bandwidth.
	SingleTree EmbeddingKind = iota
	// LowDepth is the Algorithm 3 forest: q trees, depth ≤ 3, congestion 2.
	LowDepth
	// Hamiltonian is the §7.2 forest: ⌊(q+1)/2⌋ edge-disjoint Hamiltonian
	// paths rooted at their midpoints.
	Hamiltonian
	// DepthTwo is the forced depth-2 forest (unique BFS trees, one per
	// root): the obvious alternative the paper's depth-3 construction
	// beats — its congestion grows with the tree count because unique
	// 2-paths leave no freedom to steer overlap. Available for all q
	// (including even q, where the paper's low-depth layout is not
	// specified); roots default to the q lowest-numbered vertices.
	DepthTwo
)

func (k EmbeddingKind) String() string {
	switch k {
	case SingleTree:
		return "single-tree"
	case LowDepth:
		return "low-depth"
	case Hamiltonian:
		return "hamiltonian"
	case DepthTwo:
		return "depth-2"
	}
	return fmt.Sprintf("EmbeddingKind(%d)", int(k))
}

// Embedding is a forest together with the topology it is embedded in and
// its model evaluation.
type Embedding struct {
	Kind   EmbeddingKind
	Forest []*trees.Tree
	// Topology is the graph the forest spans (the ER construction for
	// SingleTree/LowDepth, the Singer construction for Hamiltonian; the
	// two are isomorphic).
	Topology *graph.Graph
	// Model is the Algorithm 1 evaluation at LinkB link bandwidth.
	Model bandwidth.Result
	// MaxDepth is the deepest tree in the forest (latency proxy).
	MaxDepth int
	// LinkB is the per-link bandwidth (flits/cycle) the model was
	// evaluated at. Embed uses 1.0; WithLinkBandwidth reprices it for
	// trunked-link configurations. Degrade and SubsetEmbedding preserve
	// it, so degraded predictions stay comparable to the original run.
	// Zero is read as 1.0 (a zero-value Embedding predates this field).
	LinkB float64
}

// linkB returns the embedding's link bandwidth, defaulting zero to 1.0.
func (e *Embedding) linkB() float64 {
	if e.LinkB > 0 {
		return e.LinkB
	}
	return 1.0
}

// WithLinkBandwidth returns a copy of the embedding with the Algorithm 1
// model re-evaluated at link bandwidth b (flits/cycle), matching a
// netsim.Config with the same LinkBandwidth.
func (e *Embedding) WithLinkBandwidth(b float64) (*Embedding, error) {
	if b <= 0 {
		return nil, fmt.Errorf("core: link bandwidth %g, must be > 0", b)
	}
	out := *e
	out.LinkB = b
	out.Model = bandwidth.ForForest(e.Forest, b)
	return &out, nil
}

// Embed derives the requested embedding. For Hamiltonian it uses
// DefaultMISTries random instances with DefaultSeed; use EmbedSeeded for
// explicit control.
func (in *Instance) Embed(kind EmbeddingKind) (*Embedding, error) {
	return in.EmbedSeeded(kind, DefaultMISTries, DefaultSeed)
}

// EmbedSeeded is Embed with explicit randomized-search parameters.
func (in *Instance) EmbedSeeded(kind EmbeddingKind, tries int, seed int64) (*Embedding, error) {
	var forest []*trees.Tree
	topo := in.ER.G
	var err error
	switch kind {
	case SingleTree:
		var t *trees.Tree
		t, err = trees.SingleTreeBaseline(in.ER.G, 0)
		forest = []*trees.Tree{t}
	case LowDepth:
		if in.Layout == nil {
			return nil, fmt.Errorf("core: the low-depth solution requires odd q (got %d); see §6.1.1", in.Q)
		}
		forest, err = trees.LowDepthForest(in.Layout)
	case Hamiltonian:
		forest, err = trees.HamiltonianForest(in.Singer, tries, seed)
		topo = in.Singer.Topology()
	case DepthTwo:
		roots := make([]int, in.Q)
		for i := range roots {
			roots[i] = i
		}
		forest, err = trees.DepthTwoForest(in.ER.G, roots)
	default:
		return nil, fmt.Errorf("core: unknown embedding kind %v", kind)
	}
	if err != nil {
		return nil, err
	}
	e := &Embedding{Kind: kind, Forest: forest, Topology: topo, LinkB: 1.0}
	e.Model = bandwidth.ForForest(forest, e.LinkB)
	for _, t := range forest {
		if d := t.MaxDepth(); d > e.MaxDepth {
			e.MaxDepth = d
		}
	}
	return e, nil
}

// ModelMaxLinkLoad is the Algorithm 1 prediction of the busiest link's
// steady-state load, in link bandwidths: every tree streams B_i flits per
// cycle through each direction of each of its edges, so a directed link's
// load is the sum of B_i over the trees crossing it. Waterfilling
// saturates the bottleneck link, so on the paper's forests this is 1.0;
// the simulator's measured utilization approaches it from below as
// pipeline fill/drain amortises.
func (e *Embedding) ModelMaxLinkLoad() float64 {
	load := make(map[graph.Edge]float64)
	max := 0.0
	for i, t := range e.Forest {
		for _, edge := range t.Edges() {
			load[edge] += e.Model.PerTree[i]
			if load[edge] > max {
				max = load[edge]
			}
		}
	}
	return max
}

// ModelLinkLoads is the Algorithm 1 prediction per DIRECTED link, keyed
// by {from, to}: each tree streams B_i flits per cycle through both
// directions of each of its edges (reduce up, broadcast down), so a
// directed link's steady-state load is the sum of B_i over the trees
// crossing it. This is the per-link decomposition of ModelMaxLinkLoad,
// in the shape the telemetry analyzer consumes (tsdb.AnalyzerConfig's
// Predicted field) to flag links running hotter than the waterfill says
// they should.
func ModelLinkLoads(e *Embedding) map[[2]int]float64 {
	load := make(map[[2]int]float64)
	for i, t := range e.Forest {
		for _, edge := range t.Edges() {
			load[[2]int{edge.U, edge.V}] += e.Model.PerTree[i]
			load[[2]int{edge.V, edge.U}] += e.Model.PerTree[i]
		}
	}
	return load
}

// AllreduceResult is the outcome of a simulated in-network Allreduce.
type AllreduceResult struct {
	// Outputs[v] is node v's reduced vector (verified equal across nodes by
	// the simulator's construction; tests verify against the exact sum).
	Outputs [][]int64
	// Cycles is the simulated completion time.
	Cycles int
	// ModelCycles is the Theorem 5.1 prediction m/ΣB_i (bandwidth term
	// only; pipeline-fill latency comes on top).
	ModelCycles float64
	// Split is the per-tree sub-vector assignment used (Equation 2).
	Split []int
	// FlitsSent counts link-level transmissions.
	FlitsSent int
	// PeakBufferFlits is the maximum simultaneously buffered flits.
	PeakBufferFlits int
	// LinkStats is the simulator's per-directed-link telemetry summary.
	LinkStats []netsim.LinkStat
	// TreeReduceDone[i] is the cycle tree i's root computed its final
	// reduced flit — the per-tree reduce/broadcast phase boundary.
	TreeReduceDone []int
	// Fault telemetry, copied from the simulator (zero on fault-free
	// runs): flits destroyed by link faults, the trees recovery aborted,
	// every recovery round, and the measured aggregate bandwidth after
	// the last recovery (the dynamic counterpart of Degrade's model).
	DroppedFlits int
	// DeliveredFlits counts flits accepted into receive buffers;
	// FlitsSent == DeliveredFlits + DroppedFlits on every completed run.
	DeliveredFlits int
	DeadTrees      []int
	Recoveries     []netsim.Recovery
	PostRecoveryBW float64
	// Arena is the simulator's construction-time memory footprint,
	// copied from netsim.Result.Arena.
	Arena netsim.ArenaFootprint
}

// Allreduce simulates an in-network Allreduce of the given inputs over the
// embedding, splitting the vector across trees per Theorem 5.1.
func (in *Instance) Allreduce(e *Embedding, inputs [][]int64, cfg netsim.Config) (*AllreduceResult, error) {
	if len(inputs) != in.N() {
		return nil, fmt.Errorf("core: %d inputs for %d nodes", len(inputs), in.N())
	}
	m := 0
	if len(inputs) > 0 {
		m = len(inputs[0])
	}
	split, err := bandwidth.SubvectorSplit(m, e.Model.PerTree)
	if err != nil {
		return nil, err
	}
	res, err := netsim.Run(netsim.Spec{
		Topology: e.Topology,
		Forest:   e.Forest,
		Split:    split,
		Inputs:   inputs,
	}, cfg)
	if err != nil {
		return nil, err
	}
	return &AllreduceResult{
		Outputs:         res.Outputs,
		Cycles:          res.Cycles,
		ModelCycles:     float64(m) / e.Model.Aggregate,
		Split:           split,
		FlitsSent:       res.FlitsSent,
		PeakBufferFlits: res.PeakBufferFlits,
		LinkStats:       res.LinkStats,
		TreeReduceDone:  res.TreeReduceDone,
		DroppedFlits:    res.DroppedFlits,
		DeliveredFlits:  res.DeliveredFlits,
		Arena:           res.Arena,
		DeadTrees:       res.DeadTrees,
		Recoveries:      res.Recoveries,
		PostRecoveryBW:  res.PostRecoveryBW,
	}, nil
}

// VerifyIsomorphism checks Theorem 6.6 on this instance by searching for an
// explicit isomorphism between the Singer graph and the projective ER
// graph. Exponential-time in the worst case; intended for small q.
func (in *Instance) VerifyIsomorphism() ([]int, bool) {
	return graph.Isomorphic(in.Singer.Topology(), in.ER.G)
}
