package core

import (
	"testing"

	"polarfly/internal/netsim"
)

func TestTenantIsolation(t *testing.T) {
	cfg := netsim.Config{LinkLatency: 2, VCDepth: 4}
	// q=9 → 5 disjoint trees. Two tenants share the fabric.
	rows, err := TenantIsolation(9, 600, 2, cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	if rows[0].Trees+rows[1].Trees != 5 {
		t.Errorf("trees split %d+%d", rows[0].Trees, rows[1].Trees)
	}
	for _, r := range rows {
		if r.DoneCycles <= 0 {
			t.Errorf("tenant %d no completion", r.Tenant)
		}
	}
	// Isolation: tenant 0 (3 trees) must be FASTER than tenant 1 (2 trees)
	// for the same m — their speeds reflect only their own tree counts.
	if rows[0].Trees > rows[1].Trees && rows[0].DoneCycles >= rows[1].DoneCycles {
		t.Errorf("tenant with more trees not faster: %+v", rows)
	}
}

func TestTenantIsolationMatchesSoloRun(t *testing.T) {
	cfg := netsim.Config{LinkLatency: 2, VCDepth: 4}
	// A tenant sharing the fabric with another must finish in (nearly) the
	// same time as if it ran alone with the same trees — the edge-disjoint
	// isolation property.
	shared, err := TenantIsolation(5, 400, 3, cfg, 7) // 3 tenants, 1 tree each
	if err != nil {
		t.Fatal(err)
	}
	solo, err := TenantIsolation(5, 400, 1, cfg, 7) // all 3 trees, 1 tenant
	if err != nil {
		t.Fatal(err)
	}
	_ = solo
	// Each single-tree tenant streams 400 elements through 1 tree:
	// ~400 cycles + fill. All should be within a whisker of each other.
	for _, r := range shared {
		if r.Trees != 1 {
			t.Fatalf("unexpected tree split: %+v", shared)
		}
		if r.DoneCycles < 400 {
			t.Errorf("tenant %d done impossibly fast: %d", r.Tenant, r.DoneCycles)
		}
	}
	max, min := 0, 1<<30
	for _, r := range shared {
		if r.DoneCycles > max {
			max = r.DoneCycles
		}
		if r.DoneCycles < min {
			min = r.DoneCycles
		}
	}
	if float64(max) > 1.25*float64(min) {
		t.Errorf("edge-disjoint tenants should finish together: min=%d max=%d", min, max)
	}
}

func TestTenantIsolationErrors(t *testing.T) {
	cfg := netsim.Config{LinkLatency: 1, VCDepth: 2}
	if _, err := TenantIsolation(5, 10, 0, cfg, 1); err == nil {
		t.Error("zero tenants accepted")
	}
	if _, err := TenantIsolation(5, 10, 9, cfg, 1); err == nil {
		t.Error("more tenants than trees accepted")
	}
}

func TestDepthTwoEmbedding(t *testing.T) {
	in := instance(t, 5)
	e, err := in.Embed(DepthTwo)
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Forest) != 5 || e.MaxDepth != 2 {
		t.Errorf("depth-2 embed: %d trees depth %d", len(e.Forest), e.MaxDepth)
	}
	if e.Model.MaxCongestion <= 2 {
		t.Errorf("depth-2 congestion %d suspiciously low", e.Model.MaxCongestion)
	}
	// Works for even q too (the point of the fallback).
	even := instance(t, 4)
	e4, err := even.Embed(DepthTwo)
	if err != nil {
		t.Fatal(err)
	}
	if len(e4.Forest) != 4 {
		t.Errorf("even q depth-2: %d trees", len(e4.Forest))
	}
	// And simulates correctly.
	rows, err := SimulationComparison(5, 200, netsim.Config{LinkLatency: 2, VCDepth: 4}, 3)
	if err != nil {
		t.Fatal(err)
	}
	_ = rows
	if EmbeddingKind(DepthTwo).String() != "depth-2" {
		t.Error("String broken")
	}
}

func TestDepthTwoComparison(t *testing.T) {
	row, err := DepthTwoComparison(9)
	if err != nil {
		t.Fatal(err)
	}
	if row.DepthTwoBW >= row.DepthThreeBW {
		t.Errorf("depth-2 %.3f should lose to depth-3 %.3f", row.DepthTwoBW, row.DepthThreeBW)
	}
	if row.DepthTwoCong <= row.DepthThreeCong {
		t.Errorf("depth-2 congestion %d not worse than %d", row.DepthTwoCong, row.DepthThreeCong)
	}
}
