package core

import (
	"fmt"

	"polarfly/internal/bandwidth"
	"polarfly/internal/collectives"
	"polarfly/internal/er"
	"polarfly/internal/netsim"
	"polarfly/internal/numtheory"
	"polarfly/internal/parrun"
	"polarfly/internal/singer"
	"polarfly/internal/workload"
)

// This file regenerates the data series behind every table and figure of
// the paper's evaluation. Each function returns typed rows; cmd/figures
// renders them, and the root benchmark suite re-runs them under testing.B.

// Table1Row is one column of Table 1 for a concrete q, measured on the
// constructed graph.
type Table1Row struct {
	Q int
	// Global vertex counts.
	W, V1, V2 int
	// Per-vertex neighbor counts (uniform per class for odd q; verified by
	// the construction): NbrOf[class] = (w, v1, v2) neighbors.
	QuadricNbrs, V1Nbrs, V2Nbrs [3]int
}

// Table1 measures the Table 1 quantities on the constructed ER_q.
// Returns an error if any class has non-uniform neighbor statistics
// (which would contradict the paper for odd q).
func Table1(q int) (*Table1Row, error) {
	pg, err := NewInstance(q)
	if err != nil {
		return nil, err
	}
	row := &Table1Row{Q: q}
	row.W, row.V1, row.V2 = pg.ER.CountByType()
	var have [3]bool
	for v := 0; v < pg.N(); v++ {
		w, v1, v2 := pg.ER.NeighborTypeCounts(v)
		counts := [3]int{w, v1, v2}
		var slot *[3]int
		switch pg.ER.Type(v) {
		case er.Quadric:
			slot = &row.QuadricNbrs
		case er.V1:
			slot = &row.V1Nbrs
		default:
			slot = &row.V2Nbrs
		}
		idx := int(pg.ER.Type(v))
		if !have[idx] {
			*slot = counts
			have[idx] = true
		} else if *slot != counts {
			return nil, fmt.Errorf("core: non-uniform neighbor counts for class %v at vertex %d", pg.ER.Type(v), v)
		}
	}
	return row, nil
}

// Fig2Data is the content of one Figure 2 panel: a Singer difference set
// with its reflection points.
type Fig2Data struct {
	Q, N        int
	D           []int
	Reflections []int
}

// Figure2 regenerates the Figure 2 data for one q (the paper shows q=3 and
// q=4).
func Figure2(q int) (*Fig2Data, error) {
	s, err := singer.New(q)
	if err != nil {
		return nil, err
	}
	return &Fig2Data{Q: q, N: s.N, D: s.D, Reflections: s.ReflectionPoints()}, nil
}

// Table2 regenerates Table 2: all non-Hamiltonian maximal alternating-sum
// paths of S_q (the paper shows q=4).
func Table2(q int) ([]singer.MaximalPathInfo, error) {
	s, err := singer.New(q)
	if err != nil {
		return nil, err
	}
	return s.NonHamiltonianMaximalPaths(), nil
}

// Fig4Data is one Figure 4 panel: a maximal set of edge-disjoint
// Hamiltonian paths with their generating colour pairs.
type Fig4Data struct {
	Q     int
	Pairs []singer.Pair
	Paths [][]int
}

// Figure4 regenerates a maximal edge-disjoint Hamiltonian set for q.
func Figure4(q int, tries int, seed int64) (*Fig4Data, error) {
	s, err := singer.New(q)
	if err != nil {
		return nil, err
	}
	pairs, ok := s.DisjointHamiltonianPairs(s.MaxDisjointUpperBound(), tries, seed)
	if !ok {
		return nil, fmt.Errorf("core: q=%d: incomplete disjoint set (%d found)", q, len(pairs))
	}
	d := &Fig4Data{Q: q, Pairs: pairs}
	for _, p := range pairs {
		d.Paths = append(d.Paths, s.MaximalPath(p))
	}
	return d, nil
}

// Fig5Row is one radix of Figure 5: normalized bandwidths (5a) and tree
// depths (5b) for both solutions.
type Fig5Row struct {
	Q, Radix, N int
	// OptimalBW is (q+1)/2 at unit link bandwidth (Corollary 7.1).
	OptimalBW float64
	// LowDepthBW and HamiltonianBW are aggregate bandwidths at unit link
	// bandwidth; the *Norm fields divide by OptimalBW as Figure 5a plots.
	LowDepthBW, HamiltonianBW     float64
	LowDepthNorm, HamiltonianNorm float64
	// HamTrees is the number of edge-disjoint Hamiltonian paths found
	// (= ⌊(q+1)/2⌋ whenever the §7.3 search succeeds).
	HamTrees int
	// LowDepthDepth (3) and HamiltonianDepth ((N−1)/2) are the Figure 5b
	// series.
	LowDepthDepth, HamiltonianDepth int
	// Constructive reports whether the bandwidths were obtained by
	// actually building the forests and running Algorithm 1 (as opposed to
	// the closed-form values the construction provably attains).
	Constructive bool
}

// Figure5 sweeps radixes [loRadix, hiRadix]. For q ≤ constructiveUpTo the
// low-depth forest is built and measured through Algorithm 1; beyond that
// the proven closed forms are used (the sweep to radix 129 would otherwise
// build multi-million-edge graphs). The Hamiltonian series is always
// obtained by running the §7.3 randomized search on the real difference
// set, exactly as the paper did.
func Figure5(loRadix, hiRadix, constructiveUpTo int, tries int, seed int64) ([]Fig5Row, error) {
	var rows []Fig5Row
	for _, pt := range workload.RadixSweep(loRadix, hiRadix) {
		q := pt.Q
		row := Fig5Row{
			Q: q, Radix: pt.Radix, N: pt.N,
			OptimalBW:        bandwidth.Optimal(q, 1.0),
			LowDepthDepth:    3,
			HamiltonianDepth: (pt.N - 1) / 2,
		}

		// Hamiltonian series: run the paper's search on the real D.
		s, err := singer.New(q)
		if err != nil {
			return nil, err
		}
		pairs, ok := s.DisjointHamiltonianPairs(s.MaxDisjointUpperBound(), tries, seed)
		if !ok {
			return nil, fmt.Errorf("core: q=%d: only %d disjoint Hamiltonian paths found", q, len(pairs))
		}
		row.HamTrees = len(pairs)
		row.HamiltonianBW = bandwidth.HamiltonianBound(len(pairs), 1.0)

		// Low-depth series.
		if q%2 == 1 && q <= constructiveUpTo {
			inst, err := NewInstance(q)
			if err != nil {
				return nil, err
			}
			e, err := inst.Embed(LowDepth)
			if err != nil {
				return nil, err
			}
			row.LowDepthBW = e.Model.Aggregate
			row.Constructive = true
		} else {
			row.LowDepthBW = bandwidth.LowDepthBound(q, 1.0)
		}

		row.LowDepthNorm = row.LowDepthBW / row.OptimalBW
		row.HamiltonianNorm = row.HamiltonianBW / row.OptimalBW
		rows = append(rows, row)
	}
	return rows, nil
}

// SimRow compares the three embeddings end-to-end in the cycle simulator
// for one (q, m) point — the data behind the headline claim that multiple
// trees boost Allreduce bandwidth by ~radix/2 over a single tree.
type SimRow struct {
	Q, M          int
	Kind          EmbeddingKind
	ModelBW       float64 // Algorithm 1 aggregate, elements/cycle
	MeasuredBW    float64 // m / simulated cycles
	Cycles        int
	MaxDepth      int
	MaxCongestion int
	SpeedupVsOne  float64 // single-tree cycles / this embedding's cycles
	// MaxLinkUtil is the measured utilization of the hottest directed
	// link; ModelMaxLinkUtil is the Algorithm 1 bottleneck prediction
	// (1.0 on a waterfilled forest). UtilRelErr is their explicit
	// relative error (measured − model)/model, so readers and the perf
	// scorecard get the model-accuracy number directly instead of
	// diffing two absolute columns.
	MaxLinkUtil      float64
	ModelMaxLinkUtil float64
	UtilRelErr       float64
	// ReduceCycles is the cycle the slowest tree's root finished
	// reducing; BcastCycles is the remainder of the run. The split
	// attributes measured-vs-model error to a phase.
	ReduceCycles int
	BcastCycles  int
	// Arena is the simulator's construction-time memory footprint for
	// this embedding's run (netsim.Result.Arena), so scale sweeps can
	// gate on a deterministic per-run memory ceiling.
	Arena netsim.ArenaFootprint
}

// ComparisonKinds is the embedding sweep SimulationComparison runs for
// one q: all three embeddings, minus LowDepth for even q (the paper's
// layout needs odd q).
func ComparisonKinds(q int) []EmbeddingKind {
	if q%2 == 0 {
		return []EmbeddingKind{SingleTree, Hamiltonian}
	}
	return []EmbeddingKind{SingleTree, LowDepth, Hamiltonian}
}

// SimulationComparison runs all three embeddings (two for even q) on the
// same inputs and fabric configuration.
func SimulationComparison(q, m int, cfg netsim.Config, seed int64) ([]SimRow, error) {
	return SimulationComparisonPar(q, m, cfg, seed, 1, nil)
}

// SimulationComparisonHooked is SimulationComparison with an optional
// per-embedding trace tap: when hook is non-nil it is called before each
// run and may return a netsim trace callback (nil to skip that
// embedding). This is how cmd/allreduce-sim attaches one obsv collector
// per embedding without altering the comparison itself.
func SimulationComparisonHooked(q, m int, cfg netsim.Config, seed int64,
	hook func(EmbeddingKind) func(netsim.TraceEvent)) ([]SimRow, error) {
	var prep func(EmbeddingKind, *Embedding, *netsim.Config)
	if hook != nil {
		prep = func(kind EmbeddingKind, _ *Embedding, c *netsim.Config) {
			c.Trace = hook(kind)
		}
	}
	return SimulationComparisonPar(q, m, cfg, seed, 1, prep)
}

// SimulationComparisonPar is the general form: the embeddings are built
// serially in ComparisonKinds order and prep (optional) customises each
// run's config — attach a trace collector, a telemetry sampler, a fault
// plan — with the embedding in hand for model-derived wiring. The
// simulations then run on a parrun pool of the given size (1 forces
// serial, <1 means GOMAXPROCS). Because prep runs before the pool
// dispatches and each run only touches its own config, per-kind consumers
// need no synchronisation, and the ordered commit keeps the rows — and
// anything prep wired up — byte-identical to a serial sweep.
func SimulationComparisonPar(q, m int, cfg netsim.Config, seed int64, parallel int,
	prep func(EmbeddingKind, *Embedding, *netsim.Config)) ([]SimRow, error) {
	return SimulationSweep(q, m, cfg, seed, parallel, nil, prep)
}

// SimulationSweep is SimulationComparisonPar with an explicit embedding
// list: kinds == nil means the full ComparisonKinds sweep, anything else
// restricts the runs (e.g. hamiltonian-only at q=127, where building
// every embedding would dominate a smoke test). When SingleTree is not
// in the list the SpeedupVsOne column stays zero — there is no baseline
// to normalise against.
func SimulationSweep(q, m int, cfg netsim.Config, seed int64, parallel int,
	kinds []EmbeddingKind, prep func(EmbeddingKind, *Embedding, *netsim.Config)) ([]SimRow, error) {
	inst, err := NewInstance(q)
	if err != nil {
		return nil, err
	}
	if kinds == nil {
		kinds = ComparisonKinds(q)
	}
	inputs := workload.Vectors(inst.N(), m, 1000, seed)
	want := netsim.ExpectedOutput(inputs)
	embeds := make([]*Embedding, len(kinds))
	cfgs := make([]netsim.Config, len(kinds))
	for i, kind := range kinds {
		e, err := inst.Embed(kind)
		if err != nil {
			return nil, err
		}
		embeds[i] = e
		cfgs[i] = cfg
		if prep != nil {
			prep(kind, e, &cfgs[i])
		}
	}
	rows, err := parrun.Map(parallel, len(kinds), func(i int) (SimRow, error) {
		kind, e := kinds[i], embeds[i]
		res, err := inst.Allreduce(e, inputs, cfgs[i])
		if err != nil {
			return SimRow{}, err
		}
		// Verify numerical correctness on every run.
		for v := range res.Outputs {
			for k := range want {
				if res.Outputs[v][k] != want[k] {
					return SimRow{}, fmt.Errorf("core: %v: wrong sum at node %d element %d", kind, v, k)
				}
			}
		}
		maxUtil := 0.0
		for _, ls := range res.LinkStats {
			if ls.Utilization > maxUtil {
				maxUtil = ls.Utilization
			}
		}
		reduceDone := 0
		for _, rd := range res.TreeReduceDone {
			if rd > reduceDone {
				reduceDone = rd
			}
		}
		row := SimRow{
			Q: q, M: m, Kind: kind,
			ModelBW:          e.Model.Aggregate,
			MeasuredBW:       float64(m) / float64(res.Cycles),
			Cycles:           res.Cycles,
			MaxDepth:         e.MaxDepth,
			MaxCongestion:    e.Model.MaxCongestion,
			MaxLinkUtil:      maxUtil,
			ModelMaxLinkUtil: e.ModelMaxLinkLoad(),
			ReduceCycles:     reduceDone,
			BcastCycles:      res.Cycles - reduceDone,
			Arena:            res.Arena,
		}
		if row.ModelMaxLinkUtil > 0 {
			row.UtilRelErr = (row.MaxLinkUtil - row.ModelMaxLinkUtil) / row.ModelMaxLinkUtil
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	// Speedups need the single-tree cycle count, so they land after the
	// pool's barrier; SingleTree is always part of the sweep.
	singleCycles := 0
	for i, kind := range kinds {
		if kind == SingleTree {
			singleCycles = rows[i].Cycles
		}
	}
	for i := range rows {
		if singleCycles > 0 {
			rows[i].SpeedupVsOne = float64(singleCycles) / float64(rows[i].Cycles)
		}
	}
	return rows, nil
}

// HostRow compares one host-based baseline against the in-network result.
type HostRow struct {
	Algorithm string
	Time      float64
	Rounds    int
}

// HostComparison runs the three host-based Allreduce baselines on ER_q
// with the given fabric cost parameters and vector length.
func HostComparison(q, m int, alpha, perHop, linkBW float64, seed int64) ([]HostRow, error) {
	inst, err := NewInstance(q)
	if err != nil {
		return nil, err
	}
	f := collectives.NewFabric(inst.ER.G, alpha, perHop, linkBW)
	inputs := workload.Vectors(inst.N(), m, 100, seed)
	runs := []struct {
		name string
		fn   func([][]int64) (*collectives.Outcome, error)
	}{
		{"ring", f.RingAllreduce},
		{"recursive-doubling", f.RecursiveDoubling},
		{"rabenseifner", f.Rabenseifner},
	}
	var rows []HostRow
	for _, r := range runs {
		out, err := r.fn(inputs)
		if err != nil {
			return nil, err
		}
		rows = append(rows, HostRow{Algorithm: r.name, Time: out.Time, Rounds: out.Rounds})
	}
	return rows, nil
}

// DisjointSweepRow records the §7.3 verification for one q.
type DisjointSweepRow struct {
	Q, Target, Found, TriesUsed int
	Success                     bool
}

// DisjointSweep re-runs the paper's §7.3 experiment: for every prime power
// q in [2, hiQ], search for ⌊(q+1)/2⌋ edge-disjoint Hamiltonian paths with
// up to `tries` random instances, reporting how many tries were needed.
func DisjointSweep(hiQ, tries int, seed int64) ([]DisjointSweepRow, error) {
	var rows []DisjointSweepRow
	for _, q := range numtheory.PrimePowersUpTo(2, hiQ) {
		s, err := singer.New(q)
		if err != nil {
			return nil, err
		}
		target := s.MaxDisjointUpperBound()
		row := DisjointSweepRow{Q: q, Target: target}
		for used := 1; used <= tries; used++ {
			set, ok := s.DisjointHamiltonianPairs(target, used, seed)
			if ok {
				row.Found = len(set)
				row.TriesUsed = used
				row.Success = true
				break
			}
			row.Found = len(set)
			row.TriesUsed = used
		}
		rows = append(rows, row)
	}
	return rows, nil
}
