package core

import (
	"math"
	"testing"

	"polarfly/internal/graph"
	"polarfly/internal/netsim"
	"polarfly/internal/workload"
)

func instance(t *testing.T, q int) *Instance {
	t.Helper()
	in, err := NewInstance(q)
	if err != nil {
		t.Fatalf("NewInstance(%d): %v", q, err)
	}
	return in
}

func TestNewInstance(t *testing.T) {
	in := instance(t, 5)
	if in.N() != 31 || in.Radix() != 6 {
		t.Errorf("N=%d radix=%d", in.N(), in.Radix())
	}
	if in.Layout == nil {
		t.Error("odd q should have a layout")
	}
	even := instance(t, 4)
	if even.Layout != nil {
		t.Error("even q should have no layout")
	}
	if _, err := NewInstance(6); err == nil {
		t.Error("non-prime-power accepted")
	}
}

func TestEmbedKinds(t *testing.T) {
	in := instance(t, 5)
	for _, kind := range []EmbeddingKind{SingleTree, LowDepth, Hamiltonian} {
		e, err := in.Embed(kind)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		switch kind {
		case SingleTree:
			if len(e.Forest) != 1 || e.Model.Aggregate != 1.0 {
				t.Errorf("single tree: %d trees, agg %f", len(e.Forest), e.Model.Aggregate)
			}
			if e.MaxDepth > 2 {
				t.Errorf("BFS tree depth %d on diameter-2 graph", e.MaxDepth)
			}
		case LowDepth:
			if len(e.Forest) != 5 || e.MaxDepth > 3 || e.Model.MaxCongestion > 2 {
				t.Errorf("low depth: %d trees depth %d congestion %d", len(e.Forest), e.MaxDepth, e.Model.MaxCongestion)
			}
			if e.Model.Aggregate < 2.5-1e-9 {
				t.Errorf("low depth aggregate %f < 2.5", e.Model.Aggregate)
			}
		case Hamiltonian:
			if len(e.Forest) != 3 || e.Model.MaxCongestion != 1 {
				t.Errorf("hamiltonian: %d trees congestion %d", len(e.Forest), e.Model.MaxCongestion)
			}
			if e.MaxDepth != (in.N()-1)/2 {
				t.Errorf("hamiltonian depth %d, want %d", e.MaxDepth, (in.N()-1)/2)
			}
			if math.Abs(e.Model.Aggregate-3.0) > 1e-9 {
				t.Errorf("hamiltonian aggregate %f, want 3", e.Model.Aggregate)
			}
		}
	}
	// Even q: low-depth unavailable, Hamiltonian available.
	even := instance(t, 4)
	if _, err := even.Embed(LowDepth); err == nil {
		t.Error("low depth for even q should error")
	}
	if _, err := even.Embed(Hamiltonian); err != nil {
		t.Errorf("hamiltonian for even q: %v", err)
	}
	if _, err := even.Embed(EmbeddingKind(9)); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestEmbeddingKindString(t *testing.T) {
	if SingleTree.String() != "single-tree" || LowDepth.String() != "low-depth" ||
		Hamiltonian.String() != "hamiltonian" || EmbeddingKind(9).String() == "" {
		t.Error("String broken")
	}
}

func TestAllreduceEndToEnd(t *testing.T) {
	in := instance(t, 3)
	inputs := workload.Vectors(in.N(), 200, 500, 3)
	want := netsim.ExpectedOutput(inputs)
	for _, kind := range []EmbeddingKind{SingleTree, LowDepth, Hamiltonian} {
		e, err := in.Embed(kind)
		if err != nil {
			t.Fatal(err)
		}
		res, err := in.Allreduce(e, inputs, netsim.Config{LinkLatency: 2, VCDepth: 4})
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		for v := range res.Outputs {
			for k := range want {
				if res.Outputs[v][k] != want[k] {
					t.Fatalf("%v node %d element %d wrong", kind, v, k)
				}
			}
		}
		sum := 0
		for _, s := range res.Split {
			sum += s
		}
		if sum != 200 {
			t.Errorf("%v: split sums to %d", kind, sum)
		}
		if res.ModelCycles <= 0 || res.Cycles <= 0 {
			t.Errorf("%v: degenerate result %+v", kind, res)
		}
	}
	// Input validation.
	e, _ := in.Embed(SingleTree)
	if _, err := in.Allreduce(e, inputs[:3], netsim.DefaultConfig()); err == nil {
		t.Error("wrong input count accepted")
	}
}

func TestVerifyIsomorphismTheorem66(t *testing.T) {
	// Theorem 6.6: S_q ≅ ER_q, checked explicitly for small q.
	for _, q := range []int{2, 3, 4, 5, 7} {
		in := instance(t, q)
		m, ok := in.VerifyIsomorphism()
		if !ok {
			t.Fatalf("q=%d: no isomorphism found between S_q and ER_q", q)
		}
		if !graph.VerifyMapping(in.Singer.Topology(), in.ER.G, m) {
			t.Fatalf("q=%d: returned mapping is invalid", q)
		}
	}
}

func TestTable1(t *testing.T) {
	for _, q := range []int{3, 5, 7, 9} {
		row, err := Table1(q)
		if err != nil {
			t.Fatalf("q=%d: %v", q, err)
		}
		if row.W != q+1 || row.V1 != q*(q+1)/2 || row.V2 != q*(q-1)/2 {
			t.Errorf("q=%d: counts %+v", q, row)
		}
		if row.QuadricNbrs != [3]int{0, q, 0} {
			t.Errorf("q=%d: quadric neighbors %v", q, row.QuadricNbrs)
		}
		if row.V1Nbrs != [3]int{2, (q - 1) / 2, (q - 1) / 2} {
			t.Errorf("q=%d: V1 neighbors %v", q, row.V1Nbrs)
		}
		if row.V2Nbrs != [3]int{0, (q + 1) / 2, (q + 1) / 2} {
			t.Errorf("q=%d: V2 neighbors %v", q, row.V2Nbrs)
		}
	}
}

func TestFigure2(t *testing.T) {
	d3, err := Figure2(3)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := d3.D, []int{0, 1, 3, 9}; !equalInts(got, want) {
		t.Errorf("q=3 D = %v", got)
	}
	if got, want := d3.Reflections, []int{0, 7, 8, 11}; !equalInts(got, want) {
		t.Errorf("q=3 reflections = %v", got)
	}
	d4, err := Figure2(4)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := d4.D, []int{0, 1, 4, 14, 16}; !equalInts(got, want) {
		t.Errorf("q=4 D = %v", got)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestTable2AndFigure4(t *testing.T) {
	rows, err := Table2(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Errorf("Table2(4) has %d rows, want 4", len(rows))
	}
	f4, err := Figure4(4, 30, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(f4.Pairs) != 2 || len(f4.Paths) != 2 {
		t.Errorf("Figure4(4): %d pairs", len(f4.Pairs))
	}
	for _, p := range f4.Paths {
		if len(p) != 21 {
			t.Errorf("Figure4(4) path length %d, want 21", len(p))
		}
	}
}

func TestFigure5Sweep(t *testing.T) {
	rows, err := Figure5(3, 32, 13, DefaultMISTries, DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("empty sweep")
	}
	for _, r := range rows {
		// 5a invariants.
		if r.HamiltonianNorm > 1+1e-9 || r.LowDepthNorm > 1+1e-9 {
			t.Errorf("q=%d: normalized bandwidth above optimal: %+v", r.Q, r)
		}
		if r.Q%2 == 1 && math.Abs(r.HamiltonianNorm-1.0) > 1e-9 {
			t.Errorf("q=%d odd: Hamiltonian should be optimal, got %f", r.Q, r.HamiltonianNorm)
		}
		if r.Q%2 == 1 {
			want := float64(r.Q) / float64(r.Q+1)
			if math.Abs(r.LowDepthNorm-want) > 1e-9 {
				t.Errorf("q=%d: low-depth norm %f, want %f", r.Q, r.LowDepthNorm, want)
			}
		}
		if r.HamTrees != (r.Q+1)/2 {
			t.Errorf("q=%d: %d Hamiltonian trees", r.Q, r.HamTrees)
		}
		// 5b invariants.
		if r.LowDepthDepth != 3 {
			t.Errorf("q=%d: low depth %d", r.Q, r.LowDepthDepth)
		}
		if r.HamiltonianDepth != (r.N-1)/2 {
			t.Errorf("q=%d: ham depth %d", r.Q, r.HamiltonianDepth)
		}
		// Constructive points must match the closed form they verify.
		if r.Constructive && r.Q%2 == 1 {
			if r.LowDepthBW < float64(r.Q)/2-1e-9 {
				t.Errorf("q=%d: constructive BW %f below qB/2", r.Q, r.LowDepthBW)
			}
		}
	}
}

func TestFigure5ConstructiveExtended(t *testing.T) {
	// Build the Algorithm 3 forests constructively for every odd prime
	// power up to 25 and verify Cor. 7.7 exactly: the waterfilled
	// aggregate equals qB/2 (within fp tolerance). Short mode caps at 9.
	hi := 25
	if testing.Short() {
		hi = 9
	}
	rows, err := Figure5(3, hi+1, hi, DefaultMISTries, DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	constructivePoints := 0
	for _, r := range rows {
		if !r.Constructive {
			continue
		}
		constructivePoints++
		if want := float64(r.Q) / 2; math.Abs(r.LowDepthBW-want) > 1e-9 {
			t.Errorf("q=%d: constructive low-depth BW %f, want exactly %f", r.Q, r.LowDepthBW, want)
		}
	}
	if constructivePoints < 3 {
		t.Errorf("only %d constructive points", constructivePoints)
	}
}

func TestSimulationComparison(t *testing.T) {
	rows, err := SimulationComparison(5, 600, netsim.Config{LinkLatency: 2, VCDepth: 6}, 17)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	var single, low, ham SimRow
	for _, r := range rows {
		switch r.Kind {
		case SingleTree:
			single = r
		case LowDepth:
			low = r
		case Hamiltonian:
			ham = r
		}
	}
	if single.SpeedupVsOne != 1.0 {
		t.Errorf("single speedup %f", single.SpeedupVsOne)
	}
	if low.SpeedupVsOne < 1.5 || ham.SpeedupVsOne < 1.5 {
		t.Errorf("multi-tree speedups too low: low=%f ham=%f", low.SpeedupVsOne, ham.SpeedupVsOne)
	}
	// Even q drops the low-depth row.
	rows, err = SimulationComparison(4, 300, netsim.Config{LinkLatency: 2, VCDepth: 6}, 17)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Errorf("even q: %d rows, want 2", len(rows))
	}
}

func TestHostComparison(t *testing.T) {
	rows, err := HostComparison(3, 256, 100, 2, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.Time <= 0 || r.Rounds <= 0 {
			t.Errorf("%s: degenerate %+v", r.Algorithm, r)
		}
	}
}

func TestDisjointSweep(t *testing.T) {
	rows, err := DisjointSweep(16, 30, DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if !r.Success {
			t.Errorf("q=%d: failed (%d of %d)", r.Q, r.Found, r.Target)
		}
		if r.TriesUsed > 30 {
			t.Errorf("q=%d: %d tries", r.Q, r.TriesUsed)
		}
	}
}
