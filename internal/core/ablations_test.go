package core

import "testing"

func TestRandomForestComparison(t *testing.T) {
	row, err := RandomForestComparison(7, 3)
	if err != nil {
		t.Fatal(err)
	}
	if row.K != 7 {
		t.Errorf("K = %d", row.K)
	}
	if row.RandomBW >= row.CoordinatedBW {
		t.Errorf("random %.3f ≥ coordinated %.3f", row.RandomBW, row.CoordinatedBW)
	}
	if row.RandomCong <= 2 {
		t.Errorf("random congestion %d ≤ 2", row.RandomCong)
	}
	if row.PortStreamsRandom <= 1 {
		t.Errorf("random port streams %d ≤ 1", row.PortStreamsRandom)
	}
	if _, err := RandomForestComparison(4, 1); err == nil {
		t.Error("even q accepted")
	}
}

func TestVCDepthSweepMonotone(t *testing.T) {
	rows, err := VCDepthSweep(5, 800, 8, []int{1, 2, 4, 8, 16}, LowDepth, 9)
	if err != nil {
		t.Fatal(err)
	}
	// Deeper VCs never hurt; VCDepth=1 with latency 8 must be much slower
	// than VCDepth=16.
	for i := 1; i < len(rows); i++ {
		if rows[i].Cycles > rows[i-1].Cycles+4 { // tiny arbitration jitter allowed
			t.Errorf("cycles increased with deeper VCs: %+v", rows)
		}
	}
	if float64(rows[0].Cycles) < 2.0*float64(rows[len(rows)-1].Cycles) {
		t.Errorf("VCDepth=1 not clearly throttled: %+v", rows)
	}
}

func TestEngineRateSweepMonotone(t *testing.T) {
	rows, err := EngineRateSweep(5, 800, 3, []int{1, 2, 5, 0}, LowDepth, 9)
	if err != nil {
		t.Fatal(err)
	}
	// Rate 1 slower than rate 5; rate 5 ≈ unlimited (rate 0, last entry).
	if rows[0].Cycles <= rows[2].Cycles {
		t.Errorf("engine rate 1 not throttled: %+v", rows)
	}
	unlimited := rows[len(rows)-1].Cycles
	if float64(rows[2].Cycles) > 1.15*float64(unlimited) {
		t.Errorf("rate 5 should be near unlimited: %+v", rows)
	}
}

func TestResourceComparison(t *testing.T) {
	rows, err := ResourceComparison(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	byKind := map[EmbeddingKind]ResourceRow{}
	for _, r := range rows {
		byKind[r.Kind] = r
	}
	if byKind[SingleTree].VCsPerLink != 1 || byKind[SingleTree].ReductionsPerPort != 1 {
		t.Errorf("single tree resources: %+v", byKind[SingleTree])
	}
	// Low-depth: congestion 2 → ≤2 VCs, but 1 reduction per port (Lemma 7.8).
	if byKind[LowDepth].ReductionsPerPort != 1 {
		t.Errorf("low-depth port streams %d, want 1", byKind[LowDepth].ReductionsPerPort)
	}
	if byKind[LowDepth].VCsPerLink > 2 {
		t.Errorf("low-depth VCs %d > 2", byKind[LowDepth].VCsPerLink)
	}
	// Hamiltonian: edge-disjoint → 1 VC, 1 reduction per port.
	if byKind[Hamiltonian].VCsPerLink != 1 || byKind[Hamiltonian].ReductionsPerPort != 1 {
		t.Errorf("hamiltonian resources: %+v", byKind[Hamiltonian])
	}
	// States: low-depth holds ~q·(children) states at busy routers; the
	// Hamiltonian path holds at most 2 children per router per tree.
	if byKind[Hamiltonian].MaxStatesPerRouter > byKind[LowDepth].MaxStatesPerRouter {
		t.Errorf("hamiltonian states %d > low-depth %d",
			byKind[Hamiltonian].MaxStatesPerRouter, byKind[LowDepth].MaxStatesPerRouter)
	}
	// Even q variant.
	evenRows, err := ResourceComparison(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(evenRows) != 2 {
		t.Errorf("even q: %d rows", len(evenRows))
	}
}
