package core

import (
	"fmt"
	"math"

	"polarfly/internal/torus"
)

// TopologyRow compares a PolarFly design point against tori of similar
// scale — the §1.2/§1.3 positioning: both families scale Allreduce
// bandwidth with radix, but PolarFly reaches high radix at N = q²+q+1
// nodes and diameter 2, while a torus must either grow its diameter
// (larger k) or its radix budget (more dimensions).
type TopologyRow struct {
	Name string
	// N is the node count, Radix the links per node, Diameter the
	// worst-case hop count (Allreduce latency scales with the embedded
	// tree depth, which is at least the diameter for a single instance).
	N, Radix, Diameter int
	// AllreduceBW is the aggregate in-network Allreduce bandwidth at unit
	// link bandwidth: the constructed forest's Algorithm 1 value for
	// PolarFly, the multi-ported ring bound for tori.
	AllreduceBW float64
	// BWPerRadix normalises the aggregate by radix — the efficiency of
	// the design point (0.5 is the §5 optimum for tree-based Allreduce).
	BWPerRadix float64
}

// TopologyComparison builds the PolarFly q instance and tori with node
// counts within `slack` (fractional) of PolarFly's N, and reports their
// Allreduce capabilities.
func TopologyComparison(q int, slack float64) ([]TopologyRow, error) {
	inst, err := NewInstance(q)
	if err != nil {
		return nil, err
	}
	ham, err := inst.Embed(Hamiltonian)
	if err != nil {
		return nil, err
	}
	rows := []TopologyRow{{
		Name:        fmt.Sprintf("PolarFly q=%d", q),
		N:           inst.N(),
		Radix:       inst.Radix(),
		Diameter:    2,
		AllreduceBW: ham.Model.Aggregate,
		BWPerRadix:  ham.Model.Aggregate / float64(inst.Radix()),
	}}
	if q%2 == 1 {
		low, err := inst.Embed(LowDepth)
		if err != nil {
			return nil, err
		}
		rows = append(rows, TopologyRow{
			Name:        fmt.Sprintf("PolarFly q=%d (low-depth)", q),
			N:           inst.N(),
			Radix:       inst.Radix(),
			Diameter:    2,
			AllreduceBW: low.Model.Aggregate,
			BWPerRadix:  low.Model.Aggregate / float64(inst.Radix()),
		})
	}

	target := float64(inst.N())
	for dims := 2; dims <= 4; dims++ {
		// Pick k so k^dims is closest to PolarFly's N.
		k := int(math.Round(math.Pow(target, 1/float64(dims))))
		if k < 2 {
			continue
		}
		tr, err := torus.New(k, dims)
		if err != nil {
			continue
		}
		if math.Abs(float64(tr.N())-target) > slack*target {
			continue
		}
		// The multi-ported bucket bound is host-based; the in-network
		// analogue with edge-disjoint embedded structures is bounded by
		// the same edge-count argument as Cor. 7.1: M/(N−1) unit trees.
		_, upper := tr.G.TreePackingBounds()
		bw := math.Min(tr.MultiPortAllreduceBandwidth(1.0)/2, float64(upper))
		rows = append(rows, TopologyRow{
			Name:        fmt.Sprintf("%d-ary %d-cube", k, dims),
			N:           tr.N(),
			Radix:       tr.Radix(),
			Diameter:    tr.Diameter(),
			AllreduceBW: bw,
			BWPerRadix:  bw / float64(tr.Radix()),
		})
	}
	return rows, nil
}
