package core

import "testing"

func TestSubsetEmbedding(t *testing.T) {
	in := instance(t, 9)
	e, err := in.Embed(Hamiltonian) // 5 disjoint trees
	if err != nil {
		t.Fatal(err)
	}
	sub, err := SubsetEmbedding(e, []int{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(sub.Forest) != 2 {
		t.Fatalf("%d trees", len(sub.Forest))
	}
	if sub.Model.Aggregate != 2.0 {
		t.Errorf("aggregate %f, want 2 (edge-disjoint unit trees)", sub.Model.Aggregate)
	}
	if sub.Kind != e.Kind || sub.Topology != e.Topology {
		t.Error("metadata not preserved")
	}
	if sub.MaxDepth != e.MaxDepth {
		t.Errorf("depth %d, want %d", sub.MaxDepth, e.MaxDepth)
	}
	// Trees are shared by reference with the parent embedding.
	if sub.Forest[0] != e.Forest[1] || sub.Forest[1] != e.Forest[3] {
		t.Error("wrong trees selected")
	}
	// Errors.
	if _, err := SubsetEmbedding(e, []int{0, 0}); err == nil {
		t.Error("duplicate index accepted")
	}
	if _, err := SubsetEmbedding(e, []int{-1}); err == nil {
		t.Error("negative index accepted")
	}
	if _, err := SubsetEmbedding(e, []int{5}); err == nil {
		t.Error("out-of-range index accepted")
	}
}
