package core

import (
	"fmt"

	"polarfly/internal/netsim"
	"polarfly/internal/workload"
)

// This file models compute/communication overlap in data-parallel training
// (the §1 ML motivation): during the backward pass, each layer's gradient
// Allreduce can start as soon as that layer's backward compute finishes,
// overlapping with the compute of earlier layers. Faster Allreduce shrinks
// the non-overlappable tail, which is where the multi-tree embeddings pay
// off at the application level rather than just in microbenchmarks.

// OverlapResult summarises one simulated training step.
type OverlapResult struct {
	Kind EmbeddingKind
	// ComputeCycles is the total backward-pass compute time.
	ComputeCycles int
	// SyncCycles[i] is the simulated Allreduce time of layer i's gradient.
	SyncCycles []int
	// StepCycles is the end-to-end step time with overlap: gradients
	// reduce while earlier layers still compute; the step ends when the
	// last reduction drains.
	StepCycles int
	// ExposedCommCycles is the communication time NOT hidden by compute —
	// the quantity faster Allreduce actually shrinks.
	ExposedCommCycles int
}

// OverlapStep simulates one backward pass: layers (sized by layerSizes,
// last layer computed first) each take computePerLayer cycles of backward
// compute, after which their gradient Allreduce runs on the embedding. The
// network processes reductions in order (one collective at a time, as
// bucketed implementations do), so a reduction starts at
// max(gradient ready, previous reduction done).
func OverlapStep(inst *Instance, kind EmbeddingKind, layerSizes []int, computePerLayer int, cfg netsim.Config, seed int64) (*OverlapResult, error) {
	if computePerLayer < 0 {
		return nil, fmt.Errorf("core: negative compute time")
	}
	e, err := inst.Embed(kind)
	if err != nil {
		return nil, err
	}
	res := &OverlapResult{Kind: kind}
	// Simulate each layer's Allreduce independently to get its duration.
	for li, m := range layerSizes {
		inputs := workload.Vectors(inst.N(), m, 500, seed+int64(li))
		r, err := inst.Allreduce(e, inputs, cfg)
		if err != nil {
			return nil, err
		}
		res.SyncCycles = append(res.SyncCycles, r.Cycles)
	}
	// Pipeline: layer i's gradient is ready at (i+1)·computePerLayer; its
	// reduction starts when both the gradient and the network are free.
	res.ComputeCycles = computePerLayer * len(layerSizes)
	networkFree := 0
	for i, sync := range res.SyncCycles {
		ready := (i + 1) * computePerLayer
		start := ready
		if networkFree > start {
			start = networkFree
		}
		networkFree = start + sync
	}
	res.StepCycles = networkFree
	if res.StepCycles < res.ComputeCycles {
		res.StepCycles = res.ComputeCycles
	}
	res.ExposedCommCycles = res.StepCycles - res.ComputeCycles
	return res, nil
}
