package core

import (
	"testing"

	"polarfly/internal/netsim"
)

func TestSteadyStateRecoversModelBandwidth(t *testing.T) {
	// Once fill time is factored out, the measured rate of every embedding
	// must sit within 10% of the Algorithm 1 prediction — including the
	// deep Hamiltonian trees that raw m/cycles penalises.
	cfg := netsim.Config{LinkLatency: 3, VCDepth: 6}
	rows, err := SteadyStateComparison(7, 3000, cfg, 11)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		ratio := r.Rate / r.ModelBW
		if ratio < 0.90 || ratio > 1.05 {
			t.Errorf("%v: steady-state rate %.3f vs model %.3f (ratio %.3f)",
				r.Kind, r.Rate, r.ModelBW, ratio)
		}
		if r.Fill <= 0 {
			t.Errorf("%v: non-positive fill %.1f", r.Kind, r.Fill)
		}
	}
	// Fill must reflect depth: Hamiltonian ≫ low-depth.
	var low, ham SteadyStateRow
	for _, r := range rows {
		switch r.Kind {
		case LowDepth:
			low = r
		case Hamiltonian:
			ham = r
		}
	}
	if ham.Fill <= low.Fill {
		t.Errorf("hamiltonian fill %.1f should exceed low-depth fill %.1f", ham.Fill, low.Fill)
	}
}

func TestSteadyStateErrors(t *testing.T) {
	inst := instance(t, 3)
	if _, err := SteadyState(inst, SingleTree, 1, netsim.DefaultConfig(), 1); err == nil {
		t.Error("m=1 accepted")
	}
}
