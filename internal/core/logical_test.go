package core

import "testing"

func TestLogicalTreeComparison(t *testing.T) {
	rows, err := LogicalTreeComparison(9)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 { // 3 single shapes + the SHARP two-tree emulation
		t.Fatalf("%d rows", len(rows))
	}
	// SHARP's two-tree cap must still fall below the single physical tree
	// (cross-tree conflicts eat what the second tree adds), let alone the
	// paper's q-tree forests.
	pair := rows[len(rows)-1]
	if pair.Bandwidth >= 1.0 {
		t.Errorf("SHARP pair bandwidth %f not below physical single tree", pair.Bandwidth)
	}
	for _, r := range rows {
		// §4.4: every logical shape suffers path conflicts on ER_q and
		// falls below the single physical tree's bandwidth.
		if r.MaxLoad <= 1 {
			t.Errorf("%s: MaxLoad %d, expected conflicts", r.Shape, r.MaxLoad)
		}
		if r.Bandwidth >= 1.0 {
			t.Errorf("%s: bandwidth %f not below physical reference", r.Shape, r.Bandwidth)
		}
		if r.PhysicalDepth < 2 {
			t.Errorf("%s: physical depth %d", r.Shape, r.PhysicalDepth)
		}
	}
}
