package core

import (
	"fmt"

	"polarfly/internal/bandwidth"
	"polarfly/internal/logical"
	"polarfly/internal/netsim"
	"polarfly/internal/routing"
	"polarfly/internal/trees"
	"polarfly/internal/workload"
)

// This file holds the ablation studies DESIGN.md calls out: they quantify
// each design decision of the paper's solutions against its naive
// alternative.

// RandomForestRow compares k coordinated low-depth trees against k
// uncoordinated random spanning trees under the Algorithm 1 model — the
// §3 argument that tree sets must be carefully embedded.
type RandomForestRow struct {
	Q, K int
	// Coordinated is the Algorithm 3 forest's aggregate bandwidth;
	// Random the random forest's.
	CoordinatedBW, RandomBW float64
	// Congestion of each.
	CoordinatedCong, RandomCong int
	// PortStreamsRandom is the worst-case reduction streams per input
	// port for the random forest (always 1 for Algorithm 3, Lemma 7.8).
	PortStreamsRandom int
}

// RandomForestComparison runs the §3 ablation for odd prime power q.
func RandomForestComparison(q int, seed int64) (*RandomForestRow, error) {
	inst, err := NewInstance(q)
	if err != nil {
		return nil, err
	}
	if inst.Layout == nil {
		return nil, fmt.Errorf("core: random-forest ablation requires odd q")
	}
	coordinated, err := trees.LowDepthForest(inst.Layout)
	if err != nil {
		return nil, err
	}
	random, err := trees.RandomForest(inst.ER.G, len(coordinated), seed)
	if err != nil {
		return nil, err
	}
	c := bandwidth.ForForest(coordinated, 1.0)
	r := bandwidth.ForForest(random, 1.0)
	return &RandomForestRow{
		Q: q, K: len(coordinated),
		CoordinatedBW: c.Aggregate, RandomBW: r.Aggregate,
		CoordinatedCong: c.MaxCongestion, RandomCong: r.MaxCongestion,
		PortStreamsRandom: trees.MaxReductionsPerInputPort(random),
	}, nil
}

// SweepRow is one point of a fabric-parameter ablation.
type SweepRow struct {
	Param      int
	Cycles     int
	MeasuredBW float64
}

// VCDepthSweep measures the credit-loop throttling of §1.2: cycles for one
// Allreduce as the per-VC buffer shrinks below the link latency-bandwidth
// product.
func VCDepthSweep(q, m, linkLatency int, depths []int, kind EmbeddingKind, seed int64) ([]SweepRow, error) {
	inst, err := NewInstance(q)
	if err != nil {
		return nil, err
	}
	e, err := inst.Embed(kind)
	if err != nil {
		return nil, err
	}
	inputs := workload.Vectors(inst.N(), m, 1000, seed)
	var rows []SweepRow
	for _, d := range depths {
		res, err := inst.Allreduce(e, inputs, netsim.Config{LinkLatency: linkLatency, VCDepth: d})
		if err != nil {
			return nil, err
		}
		rows = append(rows, SweepRow{Param: d, Cycles: res.Cycles, MeasuredBW: float64(m) / float64(res.Cycles)})
	}
	return rows, nil
}

// EngineRateSweep measures the arithmetic-throughput requirement of §5.1:
// Allreduce time as the router reduction engine's per-cycle output is
// capped. Rate 0 means unlimited.
func EngineRateSweep(q, m, linkLatency int, rates []int, kind EmbeddingKind, seed int64) ([]SweepRow, error) {
	inst, err := NewInstance(q)
	if err != nil {
		return nil, err
	}
	e, err := inst.Embed(kind)
	if err != nil {
		return nil, err
	}
	inputs := workload.Vectors(inst.N(), m, 1000, seed)
	var rows []SweepRow
	for _, r := range rates {
		res, err := inst.Allreduce(e, inputs, netsim.Config{LinkLatency: linkLatency, VCDepth: 2 * linkLatency, EngineRate: r})
		if err != nil {
			return nil, err
		}
		rows = append(rows, SweepRow{Param: r, Cycles: res.Cycles, MeasuredBW: float64(m) / float64(res.Cycles)})
	}
	return rows, nil
}

// ResourceRow summarises the router-resource requirements (§5.1) of an
// embedding: the practical motivation for the edge-disjoint solution.
type ResourceRow struct {
	Kind EmbeddingKind
	// VCsPerLink is the worst-case virtual channels one link direction
	// needs to keep streams separate.
	VCsPerLink int
	// ReductionsPerPort is the worst-case reduction streams sharing an
	// input port (Lemma 7.8: 1 for the low-depth forest).
	ReductionsPerPort int
	// MaxStatesPerRouter is the largest per-router (tree, child) reduction
	// state count.
	MaxStatesPerRouter int
}

// DepthTwoRow compares the forced depth-2 forest against Algorithm 3's
// depth-3 forest: the one-extra-hop design decision, quantified.
type DepthTwoRow struct {
	Q int
	// DepthTwoBW / DepthThreeBW are Algorithm 1 aggregates at unit B.
	DepthTwoBW, DepthThreeBW float64
	// Congestion of each forest.
	DepthTwoCong, DepthThreeCong int
}

// DepthTwoComparison runs the depth-2-vs-depth-3 ablation for odd q.
func DepthTwoComparison(q int) (*DepthTwoRow, error) {
	inst, err := NewInstance(q)
	if err != nil {
		return nil, err
	}
	d2, err := inst.Embed(DepthTwo)
	if err != nil {
		return nil, err
	}
	d3, err := inst.Embed(LowDepth)
	if err != nil {
		return nil, err
	}
	return &DepthTwoRow{
		Q:            q,
		DepthTwoBW:   d2.Model.Aggregate,
		DepthThreeBW: d3.Model.Aggregate,
		DepthTwoCong: d2.Model.MaxCongestion, DepthThreeCong: d3.Model.MaxCongestion,
	}, nil
}

// LogicalTreeRow compares a SHARP-style logical aggregation tree (§4.4's
// runtime-routed alternative) against the physically embedded trees.
type LogicalTreeRow struct {
	Shape string
	// MaxLoad is the worst physical-link congestion induced by the routed
	// logical edges — >1 even for one tree (path conflicts).
	MaxLoad int
	// Bandwidth is the achievable Allreduce bandwidth B/MaxLoad at unit B.
	Bandwidth float64
	// PhysicalDepth is the worst-case physical hops to the root.
	PhysicalDepth int
}

// LogicalTreeComparison expands binomial and k-ary logical trees over the
// ER_q routing table and reports their conflicts, alongside physical
// references (single BFS tree: load 1, bandwidth 1, depth 2).
func LogicalTreeComparison(q int) ([]LogicalTreeRow, error) {
	inst, err := NewInstance(q)
	if err != nil {
		return nil, err
	}
	rt := routing.New(inst.ER.G)
	shapes := []struct {
		name string
		tree *logical.Tree
	}{
		{"binomial", logical.Binomial(inst.N())},
		{"2-ary", logical.KAry(inst.N(), 2)},
		{"radix-ary", logical.KAry(inst.N(), q+1)},
	}
	var rows []LogicalTreeRow
	for _, s := range shapes {
		emb, err := logical.Expand(s.tree, rt)
		if err != nil {
			return nil, err
		}
		bw := logical.Bandwidth([]*logical.Embedding{emb}, 1.0)
		rows = append(rows, LogicalTreeRow{
			Shape:         s.name,
			MaxLoad:       emb.MaxLoad,
			Bandwidth:     bw[0],
			PhysicalDepth: emb.MaxPhysicalDepth,
		})
	}

	// SHARP supports at most two concurrent logical trees (§1.1). Emulate
	// its best case — two binomial trees rooted apart — and report the
	// pair's aggregate.
	a, err := logical.Expand(logical.Binomial(inst.N()), rt)
	if err != nil {
		return nil, err
	}
	bTree := logical.Binomial(inst.N())
	// Re-root the second tree at the last vertex by relabelling v ↔ n−1−v.
	n := inst.N()
	rel := &logical.Tree{Root: n - 1, Parent: make([]int, n)}
	for v := 0; v < n; v++ {
		p := bTree.Parent[n-1-v]
		if p == -1 {
			rel.Parent[v] = -1
		} else {
			rel.Parent[v] = n - 1 - p
		}
	}
	b, err := logical.Expand(rel, rt)
	if err != nil {
		return nil, err
	}
	pair := logical.Bandwidth([]*logical.Embedding{a, b}, 1.0)
	rows = append(rows, LogicalTreeRow{
		Shape:         "2×binomial (SHARP cap)",
		MaxLoad:       maxInt(a.MaxLoad, b.MaxLoad),
		Bandwidth:     pair[0] + pair[1],
		PhysicalDepth: maxInt(a.MaxPhysicalDepth, b.MaxPhysicalDepth),
	})
	return rows, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// ResourceComparison computes the router-resource table for all available
// embeddings of q.
func ResourceComparison(q int) ([]ResourceRow, error) {
	inst, err := NewInstance(q)
	if err != nil {
		return nil, err
	}
	kinds := []EmbeddingKind{SingleTree, LowDepth, Hamiltonian}
	if q%2 == 0 {
		kinds = []EmbeddingKind{SingleTree, Hamiltonian}
	}
	var rows []ResourceRow
	for _, kind := range kinds {
		e, err := inst.Embed(kind)
		if err != nil {
			return nil, err
		}
		states := trees.ReductionStatesPerRouter(e.Forest, inst.N())
		maxStates := 0
		for _, s := range states {
			if s > maxStates {
				maxStates = s
			}
		}
		rows = append(rows, ResourceRow{
			Kind:               kind,
			VCsPerLink:         trees.VCRequirement(e.Forest),
			ReductionsPerPort:  trees.MaxReductionsPerInputPort(e.Forest),
			MaxStatesPerRouter: maxStates,
		})
	}
	return rows, nil
}
