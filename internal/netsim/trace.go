package netsim

import "fmt"

// TraceEventKind classifies simulator events.
type TraceEventKind int

const (
	// TraceSend: a flit entered a link pipeline.
	TraceSend TraceEventKind = iota
	// TraceArrive: a flit was delivered into a receive buffer.
	TraceArrive
	// TraceRootCompute: a root reduction engine produced a final flit.
	TraceRootCompute
	// TraceStall: a virtual channel had a flit ready to inject but was
	// blocked on VC credit (the receiver's buffer window is full). Emitted
	// at most once per (stream, cycle); Flit is the blocked flit index and
	// Value the number of outstanding (unconsumed) flits on the stream.
	TraceStall
	// TraceBufferOccupancy: the total number of flits buffered across all
	// virtual channels of one directed link changed this cycle. From/To
	// are the link endpoints, Value the new occupancy; Tree, Phase and
	// Flit are -1 (the event is per-link, not per-stream).
	TraceBufferOccupancy
	// TraceFault: a fault from the plan activated this cycle. From/To are
	// the link endpoints (both the stalled router for an engine stall),
	// Phase is the faults.Kind as an int, Tree and Flit are -1, and Value
	// is the number of in-flight flits destroyed at activation.
	TraceFault
	// TraceDrop: a link fault destroyed one flit — purged from a failed
	// link's pipeline, swallowed at injection into a failed link,
	// discarded on arrival of a broken stream, or purged when its tree
	// was aborted. Fields identify the flit like TraceSend.
	TraceDrop
	// TraceRecover: a recovery round completed — lost flits were detected,
	// the trees crossing the suspect links aborted, and their unfinished
	// elements re-issued over the survivors. From/To is the first suspect
	// link, Flit the number of re-issued elements, Value the elements
	// still incomplete across all nodes; Tree and Phase are -1.
	TraceRecover
)

func (k TraceEventKind) String() string {
	switch k {
	case TraceSend:
		return "send"
	case TraceArrive:
		return "arrive"
	case TraceRootCompute:
		return "compute"
	case TraceStall:
		return "stall"
	case TraceBufferOccupancy:
		return "occupancy"
	case TraceFault:
		return "fault"
	case TraceDrop:
		return "drop"
	case TraceRecover:
		return "recover"
	}
	return fmt.Sprintf("TraceEventKind(%d)", int(k))
}

// TraceEvent is one simulator event, delivered to Config.Trace in
// deterministic order.
type TraceEvent struct {
	Cycle int
	Kind  TraceEventKind
	// Tree and Phase identify the stream (Phase is 0 for reduction, 1 for
	// broadcast; meaningless for TraceRootCompute).
	Tree, Phase int
	// From and To are the link endpoints (for TraceRootCompute both equal
	// the root).
	From, To int
	// Flit is the stream-local flit index.
	Flit int
	// Value is the payload.
	Value int64
	// Job is the simulator-wide job index the event belongs to: the
	// initial jobs are numbered 0..len(Forest)-1 in tree order and
	// recovery re-issues append in creation order. It disambiguates
	// re-issued streams, which reuse a (Tree, Phase, From, To) key with
	// flit indices restarting at 0. It is -1 for per-link and fault
	// events (TraceBufferOccupancy, TraceFault); for TraceRecover it is
	// the index of the first job created by the round's re-issue (equal
	// to the total job count when the round re-issued nothing).
	Job int
}

// emit forwards an event to the trace hook if one is installed.
func (s *sim) emit(ev TraceEvent) {
	if s.cfg.Trace != nil {
		s.cfg.Trace(ev)
	}
}
