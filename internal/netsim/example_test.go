package netsim_test

import (
	"fmt"

	"polarfly/internal/graph"
	"polarfly/internal/netsim"
	"polarfly/internal/trees"
)

// Example runs the smallest possible in-network Allreduce: two routers,
// one tree, a three-element vector.
func Example() {
	g := graph.New(2)
	g.AddEdge(0, 1)
	tree, err := trees.FromParent(0, []int{-1, 0})
	if err != nil {
		panic(err)
	}
	res, err := netsim.Run(netsim.Spec{
		Topology: g,
		Forest:   []*trees.Tree{tree},
		Split:    []int{3},
		Inputs:   [][]int64{{1, 2, 3}, {10, 20, 30}},
	}, netsim.Config{LinkLatency: 1, VCDepth: 2})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Outputs[0], res.Outputs[1])
	// Output: [11 22 33] [11 22 33]
}
