package netsim

import (
	"encoding/json"
	"errors"
	"fmt"
	"testing"

	"polarfly/internal/faults"
)

// runCapture executes one simulation under the given engine with full
// trace and telemetry capture, returning everything an engine can
// observably produce: the Result, the error, the complete trace stream,
// and deep copies of every sample frame.
type engineRun struct {
	res    *Result
	err    error
	events []TraceEvent
	frames []SampleFrame
}

func runCapture(spec Spec, cfg Config, engine Engine) engineRun {
	var r engineRun
	cfg.Engine = engine
	cfg.Trace = func(ev TraceEvent) { r.events = append(r.events, ev) }
	cfg.SampleEvery = 16
	cfg.Sample = func(f *SampleFrame) {
		cp := *f
		cp.Links = append([]LinkCounters(nil), f.Links...)
		r.frames = append(r.frames, cp)
	}
	r.res, r.err = Run(spec, cfg)
	return r
}

// firstTreeEdge returns the first (child, parent) edge of tree 0 — the
// deterministic fault target shared by the faulted scenarios.
func firstTreeEdge(spec Spec) (int, int) {
	for w, p := range spec.Forest[0].Parent {
		if p >= 0 {
			return w, p
		}
	}
	panic("tree 0 has no edges")
}

// diffPlans builds the fault scenarios of the equivalence matrix. All
// activation cycles land mid-reduction for the small vectors used here.
func diffPlans(spec Spec) []struct {
	name string
	plan *faults.Plan
} {
	u, v := firstTreeEdge(spec)
	node := u // a non-root router on tree 0
	return []struct {
		name string
		plan *faults.Plan
	}{
		{"fault-free", nil},
		{"link-down", &faults.Plan{Faults: []faults.Fault{
			{Kind: faults.LinkDown, U: u, V: v, At: 120},
		}}},
		{"router-down", &faults.Plan{Faults: []faults.Fault{
			{Kind: faults.RouterDown, Node: node, At: 90},
		}}},
		{"storm", &faults.Plan{Faults: []faults.Fault{
			{Kind: faults.LinkStorm, U: u, V: v, At: 80, Until: 110, Period: 100, Repeat: 3},
			{Kind: faults.LinkDegraded, U: v, V: u, At: 60, Until: 400, Bandwidth: 0.5},
			{Kind: faults.EngineStall, Node: v, At: 70, Until: 200},
		}}},
	}
}

// compareRuns asserts byte-identity between the cycle-engine reference
// run and the event-engine run: identical error, identical JSON-encoded
// Result, identical trace event sequence, identical telemetry frames.
func compareRuns(t *testing.T, ref, got engineRun) {
	t.Helper()
	if (ref.err == nil) != (got.err == nil) {
		t.Fatalf("error divergence: cycle=%v event=%v", ref.err, got.err)
	}
	if ref.err != nil {
		if ref.err.Error() != got.err.Error() {
			t.Fatalf("error text divergence:\n cycle: %v\n event: %v", ref.err, got.err)
		}
		var rp, gp *ProgressError
		if errors.As(ref.err, &rp) != errors.As(got.err, &gp) {
			t.Fatalf("error type divergence: cycle=%T event=%T", ref.err, got.err)
		}
	} else {
		// Arena.EventBytes sizes machinery only the event engine allocates —
		// the one documented engine-dependent Result field. Check it obeys
		// its contract, then normalise it out of the byte comparison.
		ra, ga := ref.res.Arena, got.res.Arena
		if ra.EventBytes != 0 {
			t.Fatalf("cycle engine reported EventBytes=%d, want 0", ra.EventBytes)
		}
		if ga.EventBytes <= 0 {
			t.Fatalf("event engine reported EventBytes=%d, want > 0", ga.EventBytes)
		}
		if ga.TotalBytes-ga.EventBytes != ra.TotalBytes {
			t.Fatalf("arena totals disagree beyond EventBytes: cycle %+v event %+v", ra, ga)
		}
		got.res.Arena = ra
		defer func() { got.res.Arena = ga }()
		rb, err := json.Marshal(ref.res)
		if err != nil {
			t.Fatal(err)
		}
		gb, err := json.Marshal(got.res)
		if err != nil {
			t.Fatal(err)
		}
		if string(rb) != string(gb) {
			t.Errorf("Result bytes diverge:\n cycle: %.2000s\n event: %.2000s", rb, gb)
		}
	}
	if len(ref.events) != len(got.events) {
		t.Fatalf("trace length divergence: cycle=%d event=%d (first divergence: %s)",
			len(ref.events), len(got.events), firstEventDiff(ref.events, got.events))
	}
	for i := range ref.events {
		if ref.events[i] != got.events[i] {
			t.Fatalf("trace event %d diverges:\n cycle: %+v\n event: %+v", i, ref.events[i], got.events[i])
		}
	}
	if len(ref.frames) != len(got.frames) {
		t.Fatalf("frame count divergence: cycle=%d event=%d", len(ref.frames), len(got.frames))
	}
	for i := range ref.frames {
		rf, gf := ref.frames[i], got.frames[i]
		if rf.Cycle != gf.Cycle || rf.Final != gf.Final || rf.Run != gf.Run {
			t.Fatalf("frame %d header/run diverges:\n cycle: %+v\n event: %+v", i, rf, gf)
		}
		for j := range rf.Links {
			if rf.Links[j] != gf.Links[j] {
				t.Fatalf("frame %d (cycle %d) link %d diverges:\n cycle: %+v\n event: %+v",
					i, rf.Cycle, j, rf.Links[j], gf.Links[j])
			}
		}
	}
}

func firstEventDiff(a, b []TraceEvent) string {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return fmt.Sprintf("index %d: cycle %+v vs event %+v", i, a[i], b[i])
		}
	}
	return fmt.Sprintf("common prefix of %d events identical", n)
}

// TestEngineEquivalence is the differential harness of DESIGN.md §7h:
// for every swept q × embedding × fault scenario, the event engine must
// reproduce the cycle engine byte for byte — Result (JSON), trace stream,
// and telemetry frames — including identical classified errors where the
// scenario kills every tree.
func TestEngineEquivalence(t *testing.T) {
	cfg := Config{LinkLatency: 3, VCDepth: 2}
	for _, q := range []int{3, 5, 7, 11} {
		m := 384
		if q >= 7 {
			m = 768
		}
		for _, kind := range []string{"single", "lowdepth", "hamiltonian"} {
			if kind == "lowdepth" && q%2 == 0 {
				continue
			}
			spec := benchSpec(t, q, m, kind)
			for _, sc := range diffPlans(spec) {
				sc := sc
				name := fmt.Sprintf("q=%d/%s/%s", q, kind, sc.name)
				t.Run(name, func(t *testing.T) {
					t.Parallel()
					c := cfg
					c.Faults = sc.plan
					ref := runCapture(spec, c, EngineCycle)
					got := runCapture(spec, c, EngineEvent)
					compareRuns(t, ref, got)
				})
			}
		}
	}
}

// TestEngineEquivalenceVariants covers the configuration axes the main
// matrix holds fixed: deep pipelines, trunked links, a rate-limited
// reduction engine, reduce/broadcast-only collectives, and the
// no-recovery abort path (both engines must emit the same ProgressError
// at the same cycle).
func TestEngineEquivalenceVariants(t *testing.T) {
	spec := benchSpec(t, 5, 512, "lowdepth")
	u, v := firstTreeEdge(spec)

	variants := []struct {
		name string
		cfg  Config
		op   Op
	}{
		{"deep-latency", Config{LinkLatency: 10, VCDepth: 16}, OpAllreduce},
		{"latency-bound", Config{LinkLatency: 8, VCDepth: 3}, OpAllreduce},
		{"trunked", Config{LinkLatency: 2, VCDepth: 6, LinkBandwidth: 3}, OpAllreduce},
		{"engine-rate", Config{LinkLatency: 2, VCDepth: 4, EngineRate: 1}, OpAllreduce},
		{"reduce-only", Config{LinkLatency: 3, VCDepth: 2}, OpReduce},
		{"bcast-only", Config{LinkLatency: 3, VCDepth: 2}, OpBroadcast},
	}
	for _, vt := range variants {
		vt := vt
		t.Run(vt.name, func(t *testing.T) {
			t.Parallel()
			sp := spec
			sp.Op = vt.op
			ref := runCapture(sp, vt.cfg, EngineCycle)
			got := runCapture(sp, vt.cfg, EngineEvent)
			compareRuns(t, ref, got)
		})
	}

	t.Run("no-recovery-stall", func(t *testing.T) {
		t.Parallel()
		c := Config{LinkLatency: 3, VCDepth: 2, ProgressTimeout: 200, DisableRecovery: true,
			Faults: &faults.Plan{Faults: []faults.Fault{
				{Kind: faults.LinkDown, U: u, V: v, At: 50},
			}}}
		ref := runCapture(spec, c, EngineCycle)
		got := runCapture(spec, c, EngineEvent)
		if ref.err == nil || got.err == nil {
			t.Fatalf("expected both engines to abort: cycle=%v event=%v", ref.err, got.err)
		}
		compareRuns(t, ref, got)
	})

	t.Run("single-tree-all-lost", func(t *testing.T) {
		t.Parallel()
		sp := benchSpec(t, 5, 256, "single")
		su, sv := firstTreeEdge(sp)
		c := Config{LinkLatency: 3, VCDepth: 2,
			Faults: &faults.Plan{Faults: []faults.Fault{
				{Kind: faults.LinkDown, U: su, V: sv, At: 40},
			}}}
		ref := runCapture(sp, c, EngineCycle)
		got := runCapture(sp, c, EngineEvent)
		if !errors.Is(ref.err, ErrAllTreesLost) || !errors.Is(got.err, ErrAllTreesLost) {
			t.Fatalf("expected ErrAllTreesLost from both: cycle=%v event=%v", ref.err, got.err)
		}
		compareRuns(t, ref, got)
	})
}
