package netsim

import (
	"testing"

	"polarfly/internal/graph"
	"polarfly/internal/trees"
)

func TestOpString(t *testing.T) {
	if OpAllreduce.String() != "allreduce" || OpReduce.String() != "reduce" ||
		OpBroadcast.String() != "broadcast" || Op(9).String() == "" {
		t.Error("Op.String broken")
	}
}

func TestOpReduceDeliversAtRootOnly(t *testing.T) {
	spec := lineSpec(t, 7, 64)
	spec.Op = OpReduce
	res, err := Run(spec, Config{LinkLatency: 2, VCDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	root := spec.Forest[0].Root
	want := ExpectedOutput(spec.Inputs)
	for k := range want {
		if res.Outputs[root][k] != want[k] {
			t.Fatalf("root element %d = %d, want %d", k, res.Outputs[root][k], want[k])
		}
	}
	// Non-root nodes receive nothing.
	for v := range res.Outputs {
		if v == root {
			continue
		}
		for k := range res.Outputs[v] {
			if res.Outputs[v][k] != 0 {
				t.Fatalf("non-root %d element %d = %d, want 0", v, k, res.Outputs[v][k])
			}
		}
	}
	// Reduce moves half the flits of an allreduce.
	if res.FlitsSent != 6*64 {
		t.Errorf("FlitsSent = %d, want %d", res.FlitsSent, 6*64)
	}
	// And takes strictly less time.
	full := lineSpec(t, 7, 64)
	fres, err := Run(full, Config{LinkLatency: 2, VCDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles >= fres.Cycles {
		t.Errorf("reduce (%d) not faster than allreduce (%d)", res.Cycles, fres.Cycles)
	}
}

func TestOpBroadcastDistributesRootVector(t *testing.T) {
	spec := lineSpec(t, 7, 64)
	spec.Op = OpBroadcast
	res, err := Run(spec, Config{LinkLatency: 2, VCDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	root := spec.Forest[0].Root
	want := spec.Inputs[root]
	for v := range res.Outputs {
		for k := range want {
			if res.Outputs[v][k] != want[k] {
				t.Fatalf("node %d element %d = %d, want %d (root's value)",
					v, k, res.Outputs[v][k], want[k])
			}
		}
	}
	if res.FlitsSent != 6*64 {
		t.Errorf("FlitsSent = %d, want %d", res.FlitsSent, 6*64)
	}
}

func TestOpsOnMultiTreeForest(t *testing.T) {
	// Reduce on a 2-tree forest: each root gets its own segment's sum.
	g := graph.New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 2)
	t1, _ := trees.FromParent(0, []int{-1, 0, 1})
	t2, _ := trees.FromParent(2, []int{2, 0, -1})
	spec := Spec{Op: OpReduce, Topology: g, Forest: []*trees.Tree{t1, t2},
		Split: []int{4, 4}, Inputs: randInputs(3, 8, 9)}
	res, err := Run(spec, Config{LinkLatency: 1, VCDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := ExpectedOutput(spec.Inputs)
	for k := 0; k < 4; k++ {
		if res.Outputs[0][k] != want[k] { // tree 1's root owns segment [0,4)
			t.Errorf("root0 element %d = %d, want %d", k, res.Outputs[0][k], want[k])
		}
		if res.Outputs[2][4+k] != want[4+k] { // tree 2's root owns [4,8)
			t.Errorf("root2 element %d = %d, want %d", 4+k, res.Outputs[2][4+k], want[4+k])
		}
	}
}

func TestUnknownOpRejected(t *testing.T) {
	spec := lineSpec(t, 3, 2)
	spec.Op = Op(7)
	if _, err := Run(spec, DefaultConfig()); err == nil {
		t.Error("unknown op accepted")
	}
}
