package netsim

// The event engine (Config.Engine == EngineEvent) reproduces the cycle
// loop's semantics while skipping cycles in which nothing can change. It
// rests on one observation about the reference loop: a link that has no
// deliverable flit, no sendable flow and no retiring credit contributes
// nothing to a cycle — scanning it is pure overhead. The engine therefore
// maintains, per upcoming cycle, a *superset* of the links that can act
// (spurious wakes are harmless; missed wakes are bugs), processes exactly
// those links in ascending link-id order through the same per-cycle phase
// sequence as the cycle loop, and advances `now` directly to the next
// cycle with any scheduled work. DESIGN.md §7h derives why the wake rules
// below cannot miss a congestion or fault edge; the differential harness
// in engine_diff_test.go checks byte-identity against the cycle loop.
//
// Fault-plan runs never skip: fault windows open and close on absolute
// cycles, detection deadlines expire on absolute cycles, and degraded
// token buckets refill fractionally every cycle, so the engine falls back
// to processing each cycle in turn (still touching only woken links in
// arbitration). Faulted scorecards run at small q, where that costs
// little; the large-N points this engine exists for are fault-free.

// evInf is the "no constraint" sentinel for the incremental minima and
// horizon terms.
const evInf = int(^uint(0) >> 1)

// deBruijn64 multiplies an isolated low bit into a unique 6-bit index —
// the classic branch-free trailing-zero count, local so the hot loop
// calls nothing outside the package.
const deBruijn64 = 0x03f79d71b4ca8b09

var deBruijn64tab = [64]byte{
	0, 1, 56, 2, 57, 49, 28, 3, 61, 58, 42, 50, 38, 29, 17, 4,
	62, 47, 59, 36, 45, 43, 51, 22, 53, 39, 33, 30, 24, 18, 12, 5,
	63, 55, 48, 27, 60, 41, 37, 16, 46, 35, 44, 21, 52, 32, 23, 11,
	54, 26, 40, 15, 34, 20, 31, 10, 25, 14, 19, 9, 13, 8, 7, 6,
}

func ntz64(x uint64) int { return int(deBruijn64tab[(x&-x)*deBruijn64>>58]) }

// linkSet is a three-level bitmap over link ids: a membership word layer
// plus two summary layers, so draining costs O(members + occupied words)
// rather than O(universe), insertions deduplicate for free, and iteration
// is naturally in ascending link-id order — the property that keeps event
// processing byte-identical to the cycle loop's in-order link scan. All
// storage is fixed at construction; the hot loop never allocates.
type linkSet struct {
	l0, l1, l2 []uint64
	n          int // members
}

func newLinkSet(nlinks int) linkSet {
	w0 := (nlinks + 63) >> 6
	if w0 == 0 {
		w0 = 1
	}
	w1 := (w0 + 63) >> 6
	w2 := (w1 + 63) >> 6
	return linkSet{l0: make([]uint64, w0), l1: make([]uint64, w1), l2: make([]uint64, w2)}
}

func (b *linkSet) add(id int32) {
	w := int(id) >> 6
	bit := uint64(1) << (uint(id) & 63)
	if b.l0[w]&bit != 0 {
		return
	}
	b.l0[w] |= bit
	b.l1[w>>6] |= 1 << (uint(w) & 63)
	b.l2[w>>12] |= 1 << (uint(w>>6) & 63)
	b.n++
}

// drainTo empties the set into dst in ascending id order and returns the
// member count. dst must have room for every member (the callers size it
// to the link universe).
func (b *linkSet) drainTo(dst []int32) int {
	if b.n == 0 {
		return 0
	}
	k := 0
	for w2 := 0; w2 < len(b.l2); w2++ {
		x2 := b.l2[w2]
		if x2 == 0 {
			continue
		}
		b.l2[w2] = 0
		for x2 != 0 {
			i1 := w2<<6 + ntz64(x2)
			x2 &= x2 - 1
			x1 := b.l1[i1]
			b.l1[i1] = 0
			for x1 != 0 {
				i0 := i1<<6 + ntz64(x1)
				x1 &= x1 - 1
				x0 := b.l0[i0]
				b.l0[i0] = 0
				for x0 != 0 {
					dst[k] = int32(i0<<6 + ntz64(x0))
					k++
					x0 &= x0 - 1
				}
			}
		}
	}
	b.n = 0
	return k
}

// evState is the event engine's wake bookkeeping. Everything here is a
// conservative schedule — membership means "may act", never "will act" —
// so correctness only requires that every state change enqueues the wakes
// its consequences need.
type evState struct {
	// wheel[due % len(wheel)] holds the links with pipeline arrivals due
	// at cycle `due`; len(wheel) == LinkLatency+1, and a slot is fully
	// drained at its due cycle before any reuse (a flit sent at t lands
	// at t+LinkLatency, which collides mod LinkLatency+1 only with cycles
	// already drained). wheelDue[slot] is the due cycle of the slot's
	// current occupants.
	wheel    []linkSet
	wheelDue []int

	// arb[0]/arb[1] alternate between "this cycle's arbitration set" and
	// "the set being assembled for the next cycle"; eventLoop swaps them
	// each processed cycle.
	arb [2]linkSet

	// occ collects links whose buffer occupancy changed this cycle, for
	// the peak/trace occupancy pass.
	occ linkSet

	// scratch receives bitmap drains (delivery, arbitration, occupancy —
	// strictly sequential, so one buffer serves all three).
	scratch []int32

	// conNow/conNext are the flows whose consumed counter may advance
	// this cycle / next cycle (deduplicated via flow.consumeMark, so
	// length is bounded by the live-flow census the capacity matches).
	conNow, conNext []*flow
	nNow, nNext     int

	// rootNext forces the next cycle to be processed because some root
	// engine still holds computable flits (budget or rate limited).
	rootNext bool

	// bufTotal is the incrementally maintained Σ link.curBuf, replacing
	// the cycle loop's per-cycle summation for the global peak.
	bufTotal int

	// engineStamp[v] is the last cycle engineUsed[v] was touched; the
	// stamp replaces the cycle loop's O(n) per-cycle reset. Allocated
	// only when EngineRate > 0 (the counters are unread otherwise).
	engineStamp []int
}

func (s *sim) initEvent() {
	nl := len(s.links)
	w := s.cfg.LinkLatency + 1
	ev := &evState{
		wheel:    make([]linkSet, w),
		wheelDue: make([]int, w),
		scratch:  make([]int32, nl),
	}
	for i := range ev.wheel {
		ev.wheel[i] = newLinkSet(nl)
	}
	ev.arb[0] = newLinkSet(nl)
	ev.arb[1] = newLinkSet(nl)
	ev.occ = newLinkSet(nl)
	nf := 0
	for _, l := range s.links {
		nf += len(l.flows)
	}
	ev.conNow = make([]*flow, nf)
	ev.conNext = make([]*flow, nf)
	if s.cfg.EngineRate > 0 {
		ev.engineStamp = make([]int, s.n)
	}
	s.ev = ev
	// Seed cycle 1: every flow with data at rest (leaf reduce streams;
	// broadcast roots under OpBroadcast) wakes its link, and the root
	// engines are scanned on the first processed cycle.
	for _, l := range s.links {
		for _, f := range l.flows {
			if f.sent < f.m && s.senderReadyFast(f) > f.sent {
				ev.arb[1].add(l.id)
				break
			}
		}
	}
	ev.rootNext = s.spec.Op != OpBroadcast
}

// senderReadyFast is senderReady computed from the incremental minima —
// O(1) instead of an O(degree) child scan. The two must agree exactly;
// the differential harness compares engines end to end, and the census
// maintenance sites (deliverLinkEv, arbitrateLinkEv) are the only
// writers.
func (s *sim) senderReadyFast(f *flow) int {
	nt := f.snd
	if f.phase == phaseReduce {
		if len(nt.redIn) == 0 || nt.redMin >= f.m {
			return f.m
		}
		return nt.redMin
	}
	if nt.bcastIn == nil {
		return nt.rootComputed
	}
	return nt.bcastIn.arrived
}

// addConsumeNow queues a retirement check for flow f at the current
// cycle; addConsumeNext for the following cycle. consumeMark stores the
// queued-for cycle, so each flow appears at most once per target cycle
// and list length stays bounded by the live-flow census.
func (s *sim) addConsumeNow(f *flow, now int) {
	ev := s.ev
	if f.consumeMark == now {
		return
	}
	f.consumeMark = now
	if ev.nNow == len(ev.conNow) {
		panic("netsim: internal: consume-now list overflow")
	}
	ev.conNow[ev.nNow] = f
	ev.nNow++
}

func (s *sim) addConsumeNext(f *flow, now int) {
	ev := s.ev
	if f.consumeMark == now+1 {
		return
	}
	f.consumeMark = now + 1
	if ev.nNext == len(ev.conNext) {
		panic("netsim: internal: consume-next list overflow")
	}
	ev.conNext[ev.nNext] = f
	ev.nNext++
}

// wheelAdd schedules link l for the delivery pass of cycle `due`.
func (ev *evState) wheelAdd(due int, id int32) {
	slot := due % len(ev.wheel)
	ev.wheel[slot].add(id)
	ev.wheelDue[slot] = due
}

// engineUsedEv reads router v's engine budget for this cycle under the
// stamp discipline; engineUseEv charges one slot. Only called when
// EngineRate > 0 (matching the cycle loop, whose counters are unread
// otherwise).
func (s *sim) engineUsedEv(v, now int) int {
	if s.ev.engineStamp[v] != now {
		return 0
	}
	return s.engineUsed[v]
}

func (s *sim) engineUseEv(v, now int) {
	if s.ev.engineStamp[v] != now {
		s.ev.engineStamp[v] = now
		s.engineUsed[v] = 0
	}
	s.engineUsed[v]++
}

// nextEventCycle returns the next cycle that must be processed after
// `now`. Fault-plan runs advance one cycle at a time (window edges,
// detection deadlines and token refills are per-cycle phenomena);
// otherwise the horizon is the earliest of: pending next-cycle work
// (arbitration wakes, credit retirements, root-engine budget), the
// earliest scheduled pipeline arrival, the next telemetry boundary, and
// the progress-timeout deadline — the cycle at which the reference loop
// would abort, so the diagnostic fires at the identical cycle.
func (s *sim) nextEventCycle(now, lastProgress int, nxt *linkSet) int {
	if s.faultsOn {
		return now + 1
	}
	ev := s.ev
	if ev.rootNext || nxt.n > 0 || ev.nNext > 0 {
		return now + 1
	}
	next := lastProgress + s.cfg.ProgressTimeout + 1
	for i := range ev.wheel {
		if ev.wheel[i].n > 0 && ev.wheelDue[i] < next {
			next = ev.wheelDue[i]
		}
	}
	if s.sampling && s.nextSample < next {
		next = s.nextSample
	}
	if next <= now {
		next = now + 1
	}
	return next
}

// eventLoop is the event-driven counterpart of cycleLoop: identical phase
// order per processed cycle, restricted to woken links, with idle spans
// skipped outright. Returns the same cycle count, errors, traces and
// telemetry as the reference loop on every input.
//
//lint:hotpath event-driven advance loop; allocation here scales with active links × processed cycles
func (s *sim) eventLoop() (int, error) {
	ev := s.ev
	if ev == nil {
		panic("netsim: internal: eventLoop without initEvent")
	}
	linkBW := s.cfg.LinkBandwidth
	if linkBW == 0 {
		linkBW = 1
	}
	now := 0
	lastProgress := 0
	cur, nxt := &ev.arb[0], &ev.arb[1]
	for s.pending > 0 {
		now = s.nextEventCycle(now, lastProgress, nxt)
		progressed := false
		cur, nxt = nxt, cur
		ev.conNow, ev.conNext = ev.conNext, ev.conNow
		ev.nNow, ev.nNext = ev.nNext, 0
		ev.rootNext = false

		// 0. Fault plan transitions (fault runs process every cycle).
		if s.faultsOn {
			s.applyFaults(now)
		}

		// 1. Deliver flits due this cycle, from the wheel slot.
		slot := now % len(ev.wheel)
		if ws := &ev.wheel[slot]; ws.n > 0 && ev.wheelDue[slot] == now {
			cnt := ws.drainTo(ev.scratch)
			for i := 0; i < cnt; i++ {
				if s.deliverLinkEv(s.links[ev.scratch[i]], now, cur) {
					progressed = true
				}
			}
		}

		// 1b. Loss detection and recovery; re-issued streams and purged
		//     buffers invalidate the wake schedule, so recovery rewakes
		//     every populated link.
		if s.faultsOn && !s.cfg.DisableRecovery {
			recovered, err := s.detectAndRecover(now)
			if err != nil {
				return 0, err
			}
			if recovered {
				progressed = true
				s.rewakeEv(cur)
			}
		}

		// 2. Root reduction engines (every live job — O(jobs), with the
		//    readiness test O(1) via the incremental minima).
		before := s.pending
		s.rootComputeEv(now, cur)
		if s.pending != before {
			progressed = true
		}

		// 3. Credit release for the flows whose retirement frontier may
		//    have moved (queued by the sends/computes/arrivals that move
		//    it). Freed credit wakes the link for this cycle's
		//    arbitration, exactly as the cycle loop's phase order allows.
		for i := 0; i < ev.nNow; i++ {
			s.consumeFlowEv(ev.conNow[i], cur)
		}
		ev.nNow = 0

		// 4. Link arbitration over the woken set, ascending link id. The
		//    degraded token buckets refill for every link first, as the
		//    cycle loop does at the top of each link's scan.
		if s.faultsOn {
			for _, l := range s.links {
				if l.degraded {
					l.degBudget += l.degRate
					if burst := maxf(1, l.degRate); l.degBudget > burst {
						l.degBudget = burst
					}
				}
			}
		}
		cnt := cur.drainTo(ev.scratch)
		for i := 0; i < cnt; i++ {
			if s.arbitrateLinkEv(s.links[ev.scratch[i]], now, linkBW, nxt) {
				progressed = true
			}
		}

		// 5. Occupancy pass over the links whose buffers changed.
		cnt = ev.occ.drainTo(ev.scratch)
		for i := 0; i < cnt; i++ {
			l := s.links[ev.scratch[i]]
			lb := l.curBuf
			if lb > l.peakBuf {
				l.peakBuf = lb
			}
			if lb != l.lastBuf {
				l.lastBuf = lb
				s.emit(TraceEvent{Cycle: now, Kind: TraceBufferOccupancy,
					Tree: -1, Phase: -1, From: l.from, To: l.to, Flit: -1, Value: int64(lb), Job: -1})
			}
		}
		if ev.bufTotal > s.result.PeakBufferFlits {
			s.result.PeakBufferFlits = ev.bufTotal
		}

		// 6. Telemetry sample boundary (the horizon includes nextSample,
		//    so boundary cycles are always processed).
		if s.sampling && now >= s.nextSample {
			s.sampleNow(now, false)
			s.nextSample = now + s.cfg.SampleEvery
		}

		// 7. Progress accounting: skipped cycles change nothing, so they
		//    are idle by construction and the deadlock diagnostic fires at
		//    the same cycle as the reference loop.
		if progressed {
			lastProgress = now
		} else if idle := now - lastProgress; idle > s.cfg.ProgressTimeout {
			return 0, s.progressError(now, idle)
		}
	}
	return now, nil
}

// deliverLinkEv is the cycle loop's delivery block for one link, plus the
// wake consequences of each accepted arrival: a reduce arrival feeds the
// receiver's parent stream (and the root engine, scanned every processed
// cycle); a broadcast arrival feeds the receiver's child streams and may
// retire its own buffer entry.
func (s *sim) deliverLinkEv(l *link, now int, cur *linkSet) bool {
	ev := s.ev
	progressed := false
	for l.pipeHead < len(l.pipeline) && l.pipeline[l.pipeHead].arrive <= now {
		fl := l.pipeline[l.pipeHead]
		l.pipeHead++
		f := fl.f
		if f.lost {
			s.result.DroppedFlits++
			l.dropped++
			s.emit(TraceEvent{Cycle: now, Kind: TraceDrop, Tree: f.tree, Phase: f.phase,
				From: f.from, To: f.to, Flit: -1, Value: fl.val, Job: f.j.idx})
			continue
		}
		f.push(fl.val)
		l.curBuf++
		ev.bufTotal++
		ev.occ.add(l.id)
		s.result.DeliveredFlits++
		k := f.arrived
		f.arrived++
		nt := f.rcv
		if f.phase == phaseReduce && k == nt.redMin {
			// Census maintenance: f sat at the minimum and moved up one.
			nt.redMinCnt--
			if nt.redMinCnt == 0 {
				nt.redMin++
				c := 0
				for _, cf := range nt.redIn {
					if cf.arrived == nt.redMin {
						c++
					}
				}
				nt.redMinCnt = c
			}
		}
		if s.faultsOn && f.sentAtLen() > 0 {
			f.popSentAt()
		}
		if s.traced {
			s.emit(TraceEvent{Cycle: now, Kind: TraceArrive, Tree: f.tree, Phase: f.phase,
				From: f.from, To: f.to, Flit: k, Value: fl.val, Job: f.j.idx})
		}
		if f.phase == phaseBcast {
			s.outputs[f.to][f.j.goff+k] = fl.val
			nt.delivered++
			if s.sampling {
				s.delivered++
			}
			s.pending--
			f.j.remaining--
			s.checkJobDone(f.j, now)
			for _, of := range nt.bcastOut {
				cur.add(of.ln.id)
			}
			s.addConsumeNow(f, now)
		} else if nt.redOut != nil {
			cur.add(nt.redOut.ln.id)
		}
		progressed = true
	}
	if l.pipeHead == len(l.pipeline) && l.pipeHead > 0 {
		l.pipeline = l.pipeline[:0]
		l.pipeHead = 0
	}
	return progressed
}

// rootComputeEv is rootCompute with the O(degree) readiness scan replaced
// by the incremental minimum, plus the wake consequences of each computed
// flit: new broadcast data for the root's child streams, and retirement
// of the root's child reduce buffers this same cycle. rootNext keeps the
// next cycle scheduled while any engine still holds computable flits.
func (s *sim) rootComputeEv(now int, cur *linkSet) {
	if s.spec.Op == OpBroadcast {
		return
	}
	ev := s.ev
	perJob := s.cfg.LinkBandwidth
	if perJob == 0 {
		perJob = 1
	}
	for _, j := range s.jobs {
		if j.dead || j.done {
			continue
		}
		root := s.spec.Forest[j.tree].Root
		if s.faultsOn && s.stalled[root] {
			continue // faulted runs process every cycle; no wake needed
		}
		nt := &j.nodes[root]
		mt := j.m
		for slot := 0; slot < perJob; slot++ {
			if nt.rootComputed >= mt {
				break
			}
			if s.cfg.EngineRate > 0 && s.engineUsedEv(root, now) >= s.cfg.EngineRate {
				break
			}
			k := nt.rootComputed
			if len(nt.redIn) > 0 && nt.redMin <= k {
				break
			}
			v := nt.seg[k]
			for _, cf := range nt.redIn {
				v += cf.at(k)
			}
			nt.rootResult[k] = v
			nt.rootComputed++
			if nt.rootComputed == mt {
				s.result.TreeReduceDone[j.tree] = now
			}
			nt.delivered++
			if s.sampling {
				s.delivered++
			}
			if s.cfg.EngineRate > 0 {
				s.engineUseEv(root, now)
			}
			s.pending--
			j.remaining--
			if s.traced {
				s.emit(TraceEvent{Cycle: now, Kind: TraceRootCompute, Tree: j.tree,
					From: root, To: root, Flit: k, Value: v, Job: j.idx})
			}
			s.checkJobDone(j, now)
			for _, of := range nt.bcastOut {
				cur.add(of.ln.id)
			}
			for _, cf := range nt.redIn {
				s.addConsumeNow(cf, now)
			}
		}
		if !j.done && nt.rootComputed < mt &&
			(len(nt.redIn) == 0 || nt.redMin > nt.rootComputed) {
			ev.rootNext = true
		}
	}
}

// consumeFlowEv is updateConsumed's per-flow body. Freed credit wakes the
// flow's link for this cycle's arbitration — the cycle loop releases
// credit in phase 3 and arbitrates in phase 4, so a same-cycle send on
// the freed window is reference behaviour, not an anticipation.
func (s *sim) consumeFlowEv(f *flow, cur *linkSet) {
	if f.consumed >= f.m {
		return
	}
	if s.faultsOn && f.j.dead {
		// A recovery purge already released this stream's buffered flits
		// and removed it from its link; the queued reference must not
		// release them twice.
		return
	}
	nt := f.rcv
	var c int
	if f.phase == phaseReduce {
		if nt.redOut != nil {
			c = nt.redOut.sent
		} else {
			c = nt.rootComputed
		}
	} else {
		c = f.arrived
		if nt.bcastMin < c {
			c = nt.bcastMin
		}
	}
	if c > f.consumed {
		l := f.ln
		l.curBuf -= c - f.consumed
		s.ev.bufTotal -= c - f.consumed
		s.ev.occ.add(l.id)
		f.consumed = c
		f.dropTo(c)
		if f.sent < f.m {
			cur.add(l.id)
		}
	}
}

// arbitrateLinkEv is the cycle loop's arbitration scan for one link (same
// round-robin restart discipline, same stall/engine/fault gates), plus
// the wake consequences of each send: the scheduled arrival enters the
// wheel, and the sender's own receive buffers may retire next cycle. The
// closing data-present scan re-arms the link for the next cycle whenever
// any stream still has data to move — this single rule is what keeps
// stalled, metered and rate-limited streams scanned (and their stall
// telemetry counted) every cycle, exactly like the reference loop.
func (s *sim) arbitrateLinkEv(l *link, now, linkBW int, nxt *linkSet) bool {
	ev := s.ev
	nf := len(l.flows)
	sentThisCycle := 0
	for i := 0; i < nf && sentThisCycle < linkBW; i++ {
		if l.degraded && l.degBudget < 1 {
			break // metered out this cycle
		}
		f := l.flows[(l.rr+i)%nf]
		if f.sent >= f.m {
			continue // stream finished
		}
		if s.senderReadyFast(f) <= f.sent {
			continue // nothing to send yet
		}
		if f.sent-f.consumed >= s.cfg.VCDepth {
			s.noteStall(l, f, now)
			continue // no credit
		}
		if f.phase == phaseReduce && s.faultsOn && s.stalled[f.from] &&
			len(f.snd.redIn) > 0 {
			continue // combining engine frozen by an engine-stall fault
		}
		if f.phase == phaseReduce && s.cfg.EngineRate > 0 {
			if len(f.snd.redIn) > 0 {
				if s.engineUsedEv(f.from, now) >= s.cfg.EngineRate {
					continue
				}
				s.engineUseEv(f.from, now)
			}
		}
		val := s.flitValue(f, f.sent)
		k := f.sent
		f.sent++
		if f.phase == phaseBcast {
			snd := f.snd
			if k == snd.bcastMin {
				// Census maintenance: f sat at the minimum and moved up.
				snd.bcastMinCnt--
				if snd.bcastMinCnt == 0 {
					snd.bcastMin++
					c := 0
					for _, of := range snd.bcastOut {
						if of.sent == snd.bcastMin {
							c++
						}
					}
					snd.bcastMinCnt = c
				}
			}
		}
		if s.faultsOn {
			f.pushSentAt(now, s.cfg.VCDepth)
		}
		s.result.FlitsSent++
		if s.sampling && f.phase == phaseReduce {
			s.reduceFlits++
		}
		if s.traced {
			s.emit(TraceEvent{Cycle: now, Kind: TraceSend, Tree: f.tree, Phase: f.phase,
				From: f.from, To: f.to, Flit: k, Value: val, Job: f.j.idx})
		}
		if l.failed {
			f.lost = true
			s.result.DroppedFlits++
			l.dropped++
			s.emit(TraceEvent{Cycle: now, Kind: TraceDrop, Tree: f.tree, Phase: f.phase,
				From: f.from, To: f.to, Flit: k, Value: val, Job: f.j.idx})
		} else {
			l.pipePush(inflight{f: f, val: val, arrive: now + s.cfg.LinkLatency})
			ev.wheelAdd(now+s.cfg.LinkLatency, l.id)
		}
		if f.phase == phaseReduce {
			for _, cf := range f.snd.redIn {
				s.addConsumeNext(cf, now)
			}
		} else if f.snd.bcastIn != nil {
			s.addConsumeNext(f.snd.bcastIn, now)
		}
		if l.degraded {
			l.degBudget--
		}
		l.rr = (l.rr + i + 1) % nf
		sentThisCycle++
		// Restart the round-robin scan so fairness is preserved across
		// the remaining budget.
		i = -1
		nf = len(l.flows)
	}
	l.flits += sentThisCycle
	if sentThisCycle > 0 {
		l.busyCycles++
	}
	for _, f := range l.flows {
		if f.sent < f.m && s.senderReadyFast(f) > f.sent {
			nxt.add(l.id)
			break
		}
	}
	return sentThisCycle > 0
}

// rewakeEv re-arms the schedule after a recovery round: purges and
// re-issues move data between streams wholesale, so every populated link
// goes back into this cycle's arbitration set (the cycle loop arbitrates
// re-issued streams in their creation cycle) and the root engines are
// rescanned. Re-issues can also push the live-flow census past the
// retirement lists' capacity; both lists grow here, preserving queued
// entries. Cold: only reachable on fault-plan runs.
func (s *sim) rewakeEv(cur *linkSet) {
	ev := s.ev
	nf := 0
	for _, l := range s.links {
		if len(l.flows) > 0 {
			cur.add(l.id)
		}
		nf += len(l.flows)
	}
	if nf > len(ev.conNow) {
		grown := make([]*flow, nf)
		copy(grown, ev.conNow[:ev.nNow])
		ev.conNow = grown
		grown = make([]*flow, nf)
		copy(grown, ev.conNext[:ev.nNext])
		ev.conNext = grown
	}
	ev.rootNext = true
}
