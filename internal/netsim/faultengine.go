package netsim

import (
	"errors"
	"fmt"
	"sort"

	"polarfly/internal/bandwidth"
	"polarfly/internal/faults"
	"polarfly/internal/trees"
)

// ErrAllTreesLost reports that recovery found no surviving tree: every
// tree of the forest crosses a detected-failed link, so the collective
// cannot finish. The single-tree baseline hits this on any link failure —
// the paper's motivation for multi-tree embeddings. A router-down hits it
// on every embedding whose streams still cross the dead node's links:
// spanning trees touch every node.
var ErrAllTreesLost = errors.New("netsim: all trees lost to link faults")

// ErrRecoveryLimit reports that a fault schedule forced more recovery
// rounds than Config.MaxRecoveries allows — the bounded-nesting backstop
// for adversarial storms. The run state is abandoned, not corrupted: the
// error classifies the schedule, it does not mask a hang.
var ErrRecoveryLimit = errors.New("netsim: recovery round limit exceeded")

// ProgressError is the deadlock diagnostic returned when no flit moves
// for Config.ProgressTimeout consecutive cycles. Beyond the headline
// numbers it names the trees that still owe deliveries and the directed
// link with the most unacknowledged flits — with recovery disabled, that
// is the faulted link.
type ProgressError struct {
	// Cycle is when the simulator gave up.
	Cycle int
	// IdleCycles is the length of the no-progress streak.
	IdleCycles int
	// PendingFlits is the number of deliveries still outstanding.
	PendingFlits int
	// LastProgressCycle is the last cycle any flit moved.
	LastProgressCycle int
	// StalledTrees lists forest trees with undelivered targets, sorted.
	StalledTrees []int
	// WorstLink is the directed link with the most sent-but-unarrived
	// flits ({-1, -1} when nothing is outstanding anywhere), and
	// WorstLinkOutstanding that count.
	WorstLink            [2]int
	WorstLinkOutstanding int
}

func (e *ProgressError) Error() string {
	return fmt.Sprintf("netsim: no progress for %d cycles at cycle %d (%d flits pending; last progress at cycle %d; stalled trees %v; worst link %d→%d with %d unacknowledged flits)",
		e.IdleCycles, e.Cycle, e.PendingFlits, e.LastProgressCycle,
		e.StalledTrees, e.WorstLink[0], e.WorstLink[1], e.WorstLinkOutstanding)
}

// progressError assembles the diagnostic state for the timeout abort.
func (s *sim) progressError(now, idle int) *ProgressError {
	e := &ProgressError{
		Cycle:             now,
		IdleCycles:        idle,
		PendingFlits:      s.pending,
		LastProgressCycle: now - idle,
		WorstLink:         [2]int{-1, -1},
	}
	stalled := make(map[int]bool)
	for _, j := range s.jobs {
		if j.dead || j.done {
			continue
		}
		for _, nt := range j.nodes {
			if nt.delivered < nt.target {
				stalled[j.tree] = true
				break
			}
		}
	}
	for ti := range stalled {
		e.StalledTrees = append(e.StalledTrees, ti)
	}
	sort.Ints(e.StalledTrees)
	for _, l := range s.links {
		outstanding := 0
		for _, f := range l.flows {
			outstanding += f.sent - f.arrived
		}
		if outstanding > e.WorstLinkOutstanding {
			e.WorstLinkOutstanding = outstanding
			e.WorstLink = [2]int{l.from, l.to}
		}
	}
	return e
}

// faultWindowActive reports whether the fault is inside an activation
// window at cycle now. Storms repeat their [At, Until) window every
// Period cycles, Repeat times; every other kind has the single window
// [At, Until) with Until 0 meaning forever.
func faultWindowActive(f faults.Fault, now int) bool {
	if f.Kind == faults.LinkStorm {
		if now < f.At {
			return false
		}
		return (now-f.At)/f.Period < f.Repeat && (now-f.At)%f.Period < f.Until-f.At
	}
	return now >= f.At && (f.Until == 0 || now < f.Until)
}

// lossyLinkActive reports whether any lossy fault covers the undirected
// link (u, v) at cycle now: a link-down/transient/storm targeting it, or
// a router-down on either endpoint. Plan transitions are rare, so the
// full-plan scan stays off the hot path.
func (s *sim) lossyLinkActive(u, v, now int) bool {
	for _, g := range s.cfg.Faults.Faults {
		switch g.Kind {
		case faults.LinkDown, faults.LinkTransient, faults.LinkStorm:
			if g.U == u && g.V == v && faultWindowActive(g, now) {
				return true
			}
		case faults.RouterDown:
			if (g.Node == u || g.Node == v) && faultWindowActive(g, now) {
				return true
			}
		case faults.LinkDegraded, faults.EngineStall:
			// Lossless kinds never fail a link.
		}
	}
	return false
}

// degradedRate returns the tightest active LinkDegraded cap on (u, v),
// with ok false when no degradation window is open.
func (s *sim) degradedRate(u, v, now int) (rate float64, ok bool) {
	for _, g := range s.cfg.Faults.Faults {
		if g.Kind != faults.LinkDegraded || g.U != u || g.V != v || !faultWindowActive(g, now) {
			continue
		}
		if !ok || g.Bandwidth < rate {
			rate = g.Bandwidth
		}
		ok = true
	}
	return rate, ok
}

// engineStalled reports whether node's reduction engine is frozen at
// cycle now: an open engine-stall window, or the node itself is down.
func (s *sim) engineStalled(node, now int) bool {
	for _, g := range s.cfg.Faults.Faults {
		if (g.Kind == faults.EngineStall || g.Kind == faults.RouterDown) &&
			g.Node == node && faultWindowActive(g, now) {
			return true
		}
	}
	return false
}

// setLinkFailed recomputes the undirected link's failed state from every
// fault covering it — not just the transitioning one, so overlapping
// windows (a storm burst inside a link-down, a router-down sharing an
// endpoint) cannot heal a link another fault still holds down. Returns
// the in-flight flits purged when the link newly fails.
func (s *sim) setLinkFailed(u, v, now int) int {
	failed := s.lossyLinkActive(u, v, now)
	dropped := 0
	for _, key := range [2][2]int{{u, v}, {v, u}} {
		if l := s.linkAt(key[0], key[1]); l != nil {
			rising := failed && !l.failed
			l.failed = failed
			if rising {
				dropped += s.purgePipeline(l, now)
			}
		}
	}
	return dropped
}

// applyFaults processes plan-window transitions at the top of each cycle:
// links fail (dropping their in-flight flits) or heal, routers die
// (failing every incident link atomically), degradation windows open or
// close, engine stalls start or stop. On any transition the affected
// link or node state is recomputed from the whole plan, so overlapping
// faults on one target compose correctly.
func (s *sim) applyFaults(now int) {
	for i := range s.cfg.Faults.Faults {
		f := s.cfg.Faults.Faults[i]
		active := faultWindowActive(f, now)
		if active == s.faultActive[i] {
			continue
		}
		s.faultActive[i] = active
		switch f.Kind {
		case faults.LinkDown, faults.LinkTransient, faults.LinkStorm:
			dropped := s.setLinkFailed(f.U, f.V, now)
			if active {
				s.lastFaultCycle = now
				s.emit(TraceEvent{Cycle: now, Kind: TraceFault, Tree: -1, Phase: int(f.Kind),
					From: f.U, To: f.V, Flit: -1, Value: int64(dropped), Job: -1})
			}
		case faults.RouterDown:
			// The correlated domain: every incident link fails in one
			// cycle. One TraceFault per used incident link (ascending
			// neighbor order, canonical u < v) so critpath and obsv can
			// bridge recoveries to a concrete link, plus the engine stop.
			s.stalled[f.Node] = s.engineStalled(f.Node, now)
			if active {
				s.lastFaultCycle = now
			}
			for _, w := range s.spec.Topology.Neighbors(f.Node) {
				a, b := f.Node, w
				if a > b {
					a, b = b, a
				}
				if s.linkAt(a, b) == nil && s.linkAt(b, a) == nil {
					continue // no flow ever crosses this incident link
				}
				dropped := s.setLinkFailed(a, b, now)
				if active {
					s.emit(TraceEvent{Cycle: now, Kind: TraceFault, Tree: -1, Phase: int(f.Kind),
						From: a, To: b, Flit: -1, Value: int64(dropped), Job: -1})
				}
			}
		case faults.LinkDegraded:
			rate, open := s.degradedRate(f.U, f.V, now)
			for _, key := range [2][2]int{{f.U, f.V}, {f.V, f.U}} {
				if l := s.linkAt(key[0], key[1]); l != nil {
					wasDegraded := l.degraded
					l.degraded = open
					if !open {
						l.degRate = 0
						l.degBudget = 0
						continue
					}
					l.degRate = rate
					if !wasDegraded {
						l.degBudget = 0
					} else if burst := maxf(1, rate); l.degBudget > burst {
						// A still-open tighter window keeps its banked
						// budget, clamped to the recomputed burst cap.
						l.degBudget = burst
					}
				}
			}
			if active {
				s.lastFaultCycle = now
				s.emit(TraceEvent{Cycle: now, Kind: TraceFault, Tree: -1, Phase: int(f.Kind),
					From: f.U, To: f.V, Flit: -1, Value: 0, Job: -1})
			}
		case faults.EngineStall:
			s.stalled[f.Node] = s.engineStalled(f.Node, now)
			if active {
				s.lastFaultCycle = now
				s.emit(TraceEvent{Cycle: now, Kind: TraceFault, Tree: -1, Phase: int(f.Kind),
					From: f.Node, To: f.Node, Flit: -1, Value: 0, Job: -1})
			}
		}
	}
}

// purgePipeline destroys every in-flight flit of a link that just failed,
// marking the owning streams broken and emitting a drop per flit. Returns
// the number of flits destroyed.
func (s *sim) purgePipeline(l *link, now int) int {
	if l.pipeLen() == 0 {
		return 0
	}
	// A healthy flow's pipeline entries are exactly flits
	// [arrived, arrived+count) in order; track the per-flow position so
	// each drop names its true flit index.
	pos := make(map[*flow]int)
	for _, fl := range l.pipeline[l.pipeHead:] {
		k := fl.f.arrived + pos[fl.f]
		pos[fl.f]++
		fl.f.lost = true
		s.result.DroppedFlits++
		l.dropped++
		s.emit(TraceEvent{Cycle: now, Kind: TraceDrop, Tree: fl.f.tree, Phase: fl.f.phase,
			From: fl.f.from, To: fl.f.to, Flit: k, Value: fl.val, Job: fl.f.j.idx})
	}
	n := l.pipeLen()
	l.pipeline = l.pipeline[:0]
	l.pipeHead = 0
	return n
}

// detectAndRecover scans every virtual channel for an overdue oldest
// outstanding flit (healthy flits arrive after exactly LinkLatency
// cycles, so an age beyond LinkLatency+FaultDetectTimeout proves loss),
// then runs one recovery round: quarantine the suspect links, abort every
// tree crossing them, purge their flows, and re-issue the aborted
// elements over the surviving trees with a backlog-aware waterfill split.
// It reports whether a recovery happened.
func (s *sim) detectAndRecover(now int) (bool, error) {
	deadline := s.cfg.LinkLatency + s.cfg.FaultDetectTimeout
	var suspects [][2]int
	seen := make(map[[2]int]bool)
	for _, l := range s.links {
		for _, f := range l.flows {
			if f.sentAtLen() == 0 || now-f.oldestSentAt() <= deadline {
				continue
			}
			u, v := l.from, l.to
			if u > v {
				u, v = v, u
			}
			key := [2]int{u, v}
			if !seen[key] {
				seen[key] = true
				suspects = append(suspects, key)
			}
			break
		}
	}
	if len(suspects) == 0 {
		return false, nil
	}
	if len(s.result.Recoveries) >= s.cfg.MaxRecoveries {
		return false, fmt.Errorf("%w: round %d at cycle %d (cap %d)",
			ErrRecoveryLimit, len(s.result.Recoveries)+1, now, s.cfg.MaxRecoveries)
	}
	sort.Slice(suspects, func(i, j int) bool {
		if suspects[i][0] != suspects[j][0] {
			return suspects[i][0] < suspects[j][0]
		}
		return suspects[i][1] < suspects[j][1]
	})
	for _, key := range suspects {
		s.quarantined[key] = true
	}

	// Abort every tree crossing a suspect link. Trees that already
	// finished their streams over the link before it failed never time
	// out, but they must still be retired: a later re-issue onto them
	// would cross the dead link again.
	var newlyDead []int
	for ti, t := range s.spec.Forest {
		if s.deadTree[ti] || !treeUsesAny(t, suspects) {
			continue
		}
		s.deadTree[ti] = true
		newlyDead = append(newlyDead, ti)
		s.result.DeadTrees = append(s.result.DeadTrees, ti)
		s.result.TreeDone[ti] = -1
		s.result.TreeReduceDone[ti] = -1
	}

	// Abort the dead trees' jobs: record the prefix every node already
	// holds, queue the rest for re-issue, release the pending count. The
	// round's generation is one past the deepest job it aborts, so a
	// fault landing on a prior round's re-issues nests the depth.
	var ranges [][2]int // {global offset, length}
	reissued := 0
	generation := 1
	for _, j := range s.jobs {
		if j.dead || !s.deadTree[j.tree] {
			continue
		}
		j.dead = true
		if j.gen+1 > generation {
			generation = j.gen + 1
		}
		minD := j.m
		for _, nt := range j.nodes {
			if nt.delivered < minD {
				minD = nt.delivered
			}
			s.pending -= nt.target - nt.delivered
		}
		if minD < j.m {
			ranges = append(ranges, [2]int{j.goff + minD, j.m - minD})
			reissued += j.m - minD
		}
	}

	// Purge the dead jobs' flows (releasing their buffered flits from the
	// link occupancy counter) and any of their in-flight flits.
	for _, l := range s.links {
		kept := make([]*flow, 0, len(l.flows))
		for _, f := range l.flows {
			if !f.j.dead {
				kept = append(kept, f)
			} else {
				if s.ev != nil && f.bufLen() > 0 {
					s.ev.bufTotal -= f.bufLen()
					s.ev.occ.add(l.id)
				}
				l.curBuf -= f.bufLen()
			}
		}
		if len(kept) != len(l.flows) {
			l.flows = kept
			l.rr = 0
		}
		if l.pipeLen() == 0 {
			continue
		}
		live := l.pipeline[l.pipeHead:]
		keptP := l.pipeline[:0]
		for _, fl := range live {
			if fl.f.j.dead {
				s.result.DroppedFlits++
				l.dropped++
				s.emit(TraceEvent{Cycle: now, Kind: TraceDrop, Tree: fl.f.tree, Phase: fl.f.phase,
					From: fl.f.from, To: fl.f.to, Flit: -1, Value: fl.val, Job: fl.f.j.idx})
				continue
			}
			keptP = append(keptP, fl)
		}
		l.pipeline = keptP
		l.pipeHead = 0
	}

	// Survivors and the re-issue split.
	var alive []int
	for ti := range s.spec.Forest {
		if !s.deadTree[ti] {
			alive = append(alive, ti)
		}
	}
	if len(alive) == 0 {
		return false, fmt.Errorf("%w: %d suspect links %v killed all %d trees at cycle %d",
			ErrAllTreesLost, len(suspects), suspects, len(s.spec.Forest), now)
	}
	firstNewJob := len(s.jobs)
	if reissued > 0 {
		forest := make([]*trees.Tree, len(alive))
		for i, ti := range alive {
			forest[i] = s.spec.Forest[ti]
		}
		linkB := float64(s.cfg.LinkBandwidth)
		if s.cfg.LinkBandwidth == 0 {
			linkB = 1
		}
		model := bandwidth.ForForest(forest, linkB)
		backlog := make([]int, len(alive))
		for i, ti := range alive {
			for _, j := range s.jobs {
				if j.dead || j.tree != ti {
					continue
				}
				minD := j.m
				for _, nt := range j.nodes {
					if nt.delivered < minD {
						minD = nt.delivered
					}
				}
				backlog[i] += j.m - minD
			}
		}
		split, err := bandwidth.BacklogAwareSplit(reissued, backlog, model.PerTree)
		if err != nil {
			return false, fmt.Errorf("netsim: internal: re-issue split: %w", err)
		}
		// Walk the aborted ranges, carving each survivor's share into
		// contiguous jobs.
		ri, consumed := 0, 0
		for i, ti := range alive {
			need := split[i]
			added := false
			for need > 0 {
				r := ranges[ri]
				avail := r[1] - consumed
				take := avail
				if take > need {
					take = need
				}
				s.addStream(ti, r[0]+consumed, take).gen = generation
				added = true
				consumed += take
				need -= take
				if consumed == ranges[ri][1] {
					ri++
					consumed = 0
				}
			}
			if added {
				// The tree has new work; its completion cycle moves.
				s.result.TreeDone[ti] = -1
			}
		}
	}

	// Remaining work: elements not yet complete at every node.
	remaining := 0
	for _, j := range s.jobs {
		if j.dead {
			continue
		}
		minD := j.m
		for _, nt := range j.nodes {
			if nt.delivered < minD {
				minD = nt.delivered
			}
		}
		remaining += j.m - minD
	}

	s.result.Recoveries = append(s.result.Recoveries, Recovery{
		Cycle:       now,
		FailedLinks: suspects,
		DeadTrees:   newlyDead,
		Reissued:    reissued,
		Remaining:   remaining,
		Generation:  generation,
	})
	s.reissuedTotal += reissued
	s.lastRecoverCycle = now
	s.emit(TraceEvent{Cycle: now, Kind: TraceRecover, Tree: -1, Phase: -1,
		From: suspects[0][0], To: suspects[0][1], Flit: reissued, Value: int64(remaining),
		Job: firstNewJob})
	return true, nil
}

// treeUsesAny reports whether the tree's parent links include any of the
// (canonicalised u < v) undirected links.
func treeUsesAny(t *trees.Tree, links [][2]int) bool {
	for v, p := range t.Parent {
		if p < 0 {
			continue
		}
		a, b := v, p
		if a > b {
			a, b = b, a
		}
		for _, l := range links {
			if l[0] == a && l[1] == b {
				return true
			}
		}
	}
	return false
}
