package netsim

import (
	"errors"
	"fmt"
	"sort"

	"polarfly/internal/bandwidth"
	"polarfly/internal/faults"
	"polarfly/internal/trees"
)

// ErrAllTreesLost reports that recovery found no surviving tree: every
// tree of the forest crosses a detected-failed link, so the collective
// cannot finish. The single-tree baseline hits this on any link failure —
// the paper's motivation for multi-tree embeddings.
var ErrAllTreesLost = errors.New("netsim: all trees lost to link faults")

// ProgressError is the deadlock diagnostic returned when no flit moves
// for Config.ProgressTimeout consecutive cycles. Beyond the headline
// numbers it names the trees that still owe deliveries and the directed
// link with the most unacknowledged flits — with recovery disabled, that
// is the faulted link.
type ProgressError struct {
	// Cycle is when the simulator gave up.
	Cycle int
	// IdleCycles is the length of the no-progress streak.
	IdleCycles int
	// PendingFlits is the number of deliveries still outstanding.
	PendingFlits int
	// LastProgressCycle is the last cycle any flit moved.
	LastProgressCycle int
	// StalledTrees lists forest trees with undelivered targets, sorted.
	StalledTrees []int
	// WorstLink is the directed link with the most sent-but-unarrived
	// flits ({-1, -1} when nothing is outstanding anywhere), and
	// WorstLinkOutstanding that count.
	WorstLink            [2]int
	WorstLinkOutstanding int
}

func (e *ProgressError) Error() string {
	return fmt.Sprintf("netsim: no progress for %d cycles at cycle %d (%d flits pending; last progress at cycle %d; stalled trees %v; worst link %d→%d with %d unacknowledged flits)",
		e.IdleCycles, e.Cycle, e.PendingFlits, e.LastProgressCycle,
		e.StalledTrees, e.WorstLink[0], e.WorstLink[1], e.WorstLinkOutstanding)
}

// progressError assembles the diagnostic state for the timeout abort.
func (s *sim) progressError(now, idle int) *ProgressError {
	e := &ProgressError{
		Cycle:             now,
		IdleCycles:        idle,
		PendingFlits:      s.pending,
		LastProgressCycle: now - idle,
		WorstLink:         [2]int{-1, -1},
	}
	stalled := make(map[int]bool)
	for _, j := range s.jobs {
		if j.dead || j.done {
			continue
		}
		for _, nt := range j.nodes {
			if nt.delivered < nt.target {
				stalled[j.tree] = true
				break
			}
		}
	}
	for ti := range stalled {
		e.StalledTrees = append(e.StalledTrees, ti)
	}
	sort.Ints(e.StalledTrees)
	for _, l := range s.links {
		outstanding := 0
		for _, f := range l.flows {
			outstanding += f.sent - f.arrived
		}
		if outstanding > e.WorstLinkOutstanding {
			e.WorstLinkOutstanding = outstanding
			e.WorstLink = [2]int{l.from, l.to}
		}
	}
	return e
}

// applyFaults processes plan-window transitions at the top of each cycle:
// links fail (dropping their in-flight flits) or heal, degradation
// windows open or close, engine stalls start or stop.
func (s *sim) applyFaults(now int) {
	for i := range s.cfg.Faults.Faults {
		f := s.cfg.Faults.Faults[i]
		active := now >= f.At && (f.Until == 0 || now < f.Until)
		if active == s.faultActive[i] {
			continue
		}
		s.faultActive[i] = active
		switch f.Kind {
		case faults.LinkDown, faults.LinkTransient:
			dropped := 0
			for _, key := range [2][2]int{{f.U, f.V}, {f.V, f.U}} {
				if l := s.linkAt(key[0], key[1]); l != nil {
					l.failed = active
					if active {
						dropped += s.purgePipeline(l, now)
					}
				}
			}
			if active {
				s.lastFaultCycle = now
				s.emit(TraceEvent{Cycle: now, Kind: TraceFault, Tree: -1, Phase: int(f.Kind),
					From: f.U, To: f.V, Flit: -1, Value: int64(dropped), Job: -1})
			}
		case faults.LinkDegraded:
			for _, key := range [2][2]int{{f.U, f.V}, {f.V, f.U}} {
				if l := s.linkAt(key[0], key[1]); l != nil {
					l.degraded = active
					if active {
						l.degRate = f.Bandwidth
						l.degBudget = 0
					} else {
						l.degRate = 0
						l.degBudget = 0
					}
				}
			}
			if active {
				s.lastFaultCycle = now
				s.emit(TraceEvent{Cycle: now, Kind: TraceFault, Tree: -1, Phase: int(f.Kind),
					From: f.U, To: f.V, Flit: -1, Value: 0, Job: -1})
			}
		case faults.EngineStall:
			s.stalled[f.Node] = active
			if active {
				s.lastFaultCycle = now
				s.emit(TraceEvent{Cycle: now, Kind: TraceFault, Tree: -1, Phase: int(f.Kind),
					From: f.Node, To: f.Node, Flit: -1, Value: 0, Job: -1})
			}
		}
	}
}

// purgePipeline destroys every in-flight flit of a link that just failed,
// marking the owning streams broken and emitting a drop per flit. Returns
// the number of flits destroyed.
func (s *sim) purgePipeline(l *link, now int) int {
	if l.pipeLen() == 0 {
		return 0
	}
	// A healthy flow's pipeline entries are exactly flits
	// [arrived, arrived+count) in order; track the per-flow position so
	// each drop names its true flit index.
	pos := make(map[*flow]int)
	for _, fl := range l.pipeline[l.pipeHead:] {
		k := fl.f.arrived + pos[fl.f]
		pos[fl.f]++
		fl.f.lost = true
		s.result.DroppedFlits++
		l.dropped++
		s.emit(TraceEvent{Cycle: now, Kind: TraceDrop, Tree: fl.f.tree, Phase: fl.f.phase,
			From: fl.f.from, To: fl.f.to, Flit: k, Value: fl.val, Job: fl.f.j.idx})
	}
	n := l.pipeLen()
	l.pipeline = l.pipeline[:0]
	l.pipeHead = 0
	return n
}

// detectAndRecover scans every virtual channel for an overdue oldest
// outstanding flit (healthy flits arrive after exactly LinkLatency
// cycles, so an age beyond LinkLatency+FaultDetectTimeout proves loss),
// then runs one recovery round: quarantine the suspect links, abort every
// tree crossing them, purge their flows, and re-issue the aborted
// elements over the surviving trees with a backlog-aware waterfill split.
// It reports whether a recovery happened.
func (s *sim) detectAndRecover(now int) (bool, error) {
	deadline := s.cfg.LinkLatency + s.cfg.FaultDetectTimeout
	var suspects [][2]int
	seen := make(map[[2]int]bool)
	for _, l := range s.links {
		for _, f := range l.flows {
			if f.sentAtLen() == 0 || now-f.oldestSentAt() <= deadline {
				continue
			}
			u, v := l.from, l.to
			if u > v {
				u, v = v, u
			}
			key := [2]int{u, v}
			if !seen[key] {
				seen[key] = true
				suspects = append(suspects, key)
			}
			break
		}
	}
	if len(suspects) == 0 {
		return false, nil
	}
	sort.Slice(suspects, func(i, j int) bool {
		if suspects[i][0] != suspects[j][0] {
			return suspects[i][0] < suspects[j][0]
		}
		return suspects[i][1] < suspects[j][1]
	})
	for _, key := range suspects {
		s.quarantined[key] = true
	}

	// Abort every tree crossing a suspect link. Trees that already
	// finished their streams over the link before it failed never time
	// out, but they must still be retired: a later re-issue onto them
	// would cross the dead link again.
	var newlyDead []int
	for ti, t := range s.spec.Forest {
		if s.deadTree[ti] || !treeUsesAny(t, suspects) {
			continue
		}
		s.deadTree[ti] = true
		newlyDead = append(newlyDead, ti)
		s.result.DeadTrees = append(s.result.DeadTrees, ti)
		s.result.TreeDone[ti] = -1
		s.result.TreeReduceDone[ti] = -1
	}

	// Abort the dead trees' jobs: record the prefix every node already
	// holds, queue the rest for re-issue, release the pending count.
	var ranges [][2]int // {global offset, length}
	reissued := 0
	for _, j := range s.jobs {
		if j.dead || !s.deadTree[j.tree] {
			continue
		}
		j.dead = true
		minD := j.m
		for _, nt := range j.nodes {
			if nt.delivered < minD {
				minD = nt.delivered
			}
			s.pending -= nt.target - nt.delivered
		}
		if minD < j.m {
			ranges = append(ranges, [2]int{j.goff + minD, j.m - minD})
			reissued += j.m - minD
		}
	}

	// Purge the dead jobs' flows (releasing their buffered flits from the
	// link occupancy counter) and any of their in-flight flits.
	for _, l := range s.links {
		kept := make([]*flow, 0, len(l.flows))
		for _, f := range l.flows {
			if !f.j.dead {
				kept = append(kept, f)
			} else {
				l.curBuf -= f.bufLen()
			}
		}
		if len(kept) != len(l.flows) {
			l.flows = kept
			l.rr = 0
		}
		if l.pipeLen() == 0 {
			continue
		}
		live := l.pipeline[l.pipeHead:]
		keptP := l.pipeline[:0]
		for _, fl := range live {
			if fl.f.j.dead {
				s.result.DroppedFlits++
				l.dropped++
				s.emit(TraceEvent{Cycle: now, Kind: TraceDrop, Tree: fl.f.tree, Phase: fl.f.phase,
					From: fl.f.from, To: fl.f.to, Flit: -1, Value: fl.val, Job: fl.f.j.idx})
				continue
			}
			keptP = append(keptP, fl)
		}
		l.pipeline = keptP
		l.pipeHead = 0
	}

	// Survivors and the re-issue split.
	var alive []int
	for ti := range s.spec.Forest {
		if !s.deadTree[ti] {
			alive = append(alive, ti)
		}
	}
	if len(alive) == 0 {
		return false, fmt.Errorf("%w: %d suspect links %v killed all %d trees at cycle %d",
			ErrAllTreesLost, len(suspects), suspects, len(s.spec.Forest), now)
	}
	firstNewJob := len(s.jobs)
	if reissued > 0 {
		forest := make([]*trees.Tree, len(alive))
		for i, ti := range alive {
			forest[i] = s.spec.Forest[ti]
		}
		linkB := float64(s.cfg.LinkBandwidth)
		if s.cfg.LinkBandwidth == 0 {
			linkB = 1
		}
		model := bandwidth.ForForest(forest, linkB)
		backlog := make([]int, len(alive))
		for i, ti := range alive {
			for _, j := range s.jobs {
				if j.dead || j.tree != ti {
					continue
				}
				minD := j.m
				for _, nt := range j.nodes {
					if nt.delivered < minD {
						minD = nt.delivered
					}
				}
				backlog[i] += j.m - minD
			}
		}
		split, err := bandwidth.BacklogAwareSplit(reissued, backlog, model.PerTree)
		if err != nil {
			return false, fmt.Errorf("netsim: internal: re-issue split: %w", err)
		}
		// Walk the aborted ranges, carving each survivor's share into
		// contiguous jobs.
		ri, consumed := 0, 0
		for i, ti := range alive {
			need := split[i]
			added := false
			for need > 0 {
				r := ranges[ri]
				avail := r[1] - consumed
				take := avail
				if take > need {
					take = need
				}
				s.addStream(ti, r[0]+consumed, take)
				added = true
				consumed += take
				need -= take
				if consumed == ranges[ri][1] {
					ri++
					consumed = 0
				}
			}
			if added {
				// The tree has new work; its completion cycle moves.
				s.result.TreeDone[ti] = -1
			}
		}
	}

	// Remaining work: elements not yet complete at every node.
	remaining := 0
	for _, j := range s.jobs {
		if j.dead {
			continue
		}
		minD := j.m
		for _, nt := range j.nodes {
			if nt.delivered < minD {
				minD = nt.delivered
			}
		}
		remaining += j.m - minD
	}

	s.result.Recoveries = append(s.result.Recoveries, Recovery{
		Cycle:       now,
		FailedLinks: suspects,
		DeadTrees:   newlyDead,
		Reissued:    reissued,
		Remaining:   remaining,
	})
	s.reissuedTotal += reissued
	s.lastRecoverCycle = now
	s.emit(TraceEvent{Cycle: now, Kind: TraceRecover, Tree: -1, Phase: -1,
		From: suspects[0][0], To: suspects[0][1], Flit: reissued, Value: int64(remaining),
		Job: firstNewJob})
	return true, nil
}

// treeUsesAny reports whether the tree's parent links include any of the
// (canonicalised u < v) undirected links.
func treeUsesAny(t *trees.Tree, links [][2]int) bool {
	for v, p := range t.Parent {
		if p < 0 {
			continue
		}
		a, b := v, p
		if a > b {
			a, b = b, a
		}
		for _, l := range links {
			if l[0] == a && l[1] == b {
				return true
			}
		}
	}
	return false
}
