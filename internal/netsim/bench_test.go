package netsim

import (
	"fmt"
	"testing"

	"polarfly/internal/bandwidth"
	"polarfly/internal/er"
	"polarfly/internal/singer"
	"polarfly/internal/trees"
)

// benchSpec prepares a PolarFly allreduce spec outside the timed loop.
func benchSpec(b *testing.B, q, m int, kind string) Spec {
	b.Helper()
	pg, err := er.New(q)
	if err != nil {
		b.Fatal(err)
	}
	var forest []*trees.Tree
	topo := pg.G
	switch kind {
	case "single":
		tr, err := trees.SingleTreeBaseline(pg.G, 0)
		if err != nil {
			b.Fatal(err)
		}
		forest = []*trees.Tree{tr}
	case "lowdepth":
		l, err := er.NewLayout(pg, -1)
		if err != nil {
			b.Fatal(err)
		}
		forest, err = trees.LowDepthForest(l)
		if err != nil {
			b.Fatal(err)
		}
	case "hamiltonian":
		s, err := singer.New(q)
		if err != nil {
			b.Fatal(err)
		}
		forest, err = trees.HamiltonianForest(s, 30, 42)
		if err != nil {
			b.Fatal(err)
		}
		topo = s.Topology()
	}
	wf := bandwidth.ForForest(forest, 1.0)
	split, err := bandwidth.SubvectorSplit(m, wf.PerTree)
	if err != nil {
		b.Fatal(err)
	}
	return Spec{Topology: topo, Forest: forest, Split: split, Inputs: randInputs(topo.N(), m, 1)}
}

// BenchmarkSimulator measures simulator throughput (wall time per simulated
// allreduce) for the three embeddings on ER_7.
func BenchmarkSimulator(b *testing.B) {
	for _, kind := range []string{"single", "lowdepth", "hamiltonian"} {
		spec := benchSpec(b, 7, 2048, kind)
		b.Run(kind, func(b *testing.B) {
			cfg := Config{LinkLatency: 5, VCDepth: 8}
			for i := 0; i < b.N; i++ {
				res, err := Run(spec, cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Cycles), "simcycles")
			}
		})
	}
}

// BenchmarkSimulatorScaling measures wall time as the instance grows.
func BenchmarkSimulatorScaling(b *testing.B) {
	for _, q := range []int{5, 9, 13} {
		spec := benchSpec(b, q, 1024, "lowdepth")
		b.Run(fmt.Sprintf("q=%d", q), func(b *testing.B) {
			cfg := Config{LinkLatency: 5, VCDepth: 8}
			for i := 0; i < b.N; i++ {
				if _, err := Run(spec, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
