package netsim

import (
	"fmt"
	"testing"

	"polarfly/internal/bandwidth"
	"polarfly/internal/er"
	"polarfly/internal/faults"
	"polarfly/internal/singer"
	"polarfly/internal/trees"
)

// benchSpec prepares a PolarFly allreduce spec outside the timed loop.
// It accepts testing.TB so the engine-differential tests can reuse it.
func benchSpec(b testing.TB, q, m int, kind string) Spec {
	b.Helper()
	pg, err := er.New(q)
	if err != nil {
		b.Fatal(err)
	}
	var forest []*trees.Tree
	topo := pg.G
	switch kind {
	case "single":
		tr, err := trees.SingleTreeBaseline(pg.G, 0)
		if err != nil {
			b.Fatal(err)
		}
		forest = []*trees.Tree{tr}
	case "lowdepth":
		l, err := er.NewLayout(pg, -1)
		if err != nil {
			b.Fatal(err)
		}
		forest, err = trees.LowDepthForest(l)
		if err != nil {
			b.Fatal(err)
		}
	case "hamiltonian":
		s, err := singer.New(q)
		if err != nil {
			b.Fatal(err)
		}
		forest, err = trees.HamiltonianForest(s, 30, 42)
		if err != nil {
			b.Fatal(err)
		}
		topo = s.Topology()
	}
	wf := bandwidth.ForForest(forest, 1.0)
	split, err := bandwidth.SubvectorSplit(m, wf.PerTree)
	if err != nil {
		b.Fatal(err)
	}
	return Spec{Topology: topo, Forest: forest, Split: split, Inputs: randInputs(topo.N(), m, 1)}
}

// BenchmarkSimulator measures simulator throughput (wall time per simulated
// allreduce) for the three embeddings on ER_7.
func BenchmarkSimulator(b *testing.B) {
	for _, kind := range []string{"single", "lowdepth", "hamiltonian"} {
		spec := benchSpec(b, 7, 2048, kind)
		b.Run(kind, func(b *testing.B) {
			cfg := Config{LinkLatency: 5, VCDepth: 8}
			for i := 0; i < b.N; i++ {
				res, err := Run(spec, cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Cycles), "simcycles")
			}
		})
	}
}

// hotLoopCfg is the fabric point shared by the hot-loop benchmarks: deep
// enough links that the credit loop matters, small enough buffers that
// arbitration and stalls are exercised.
func hotLoopCfg() Config { return Config{LinkLatency: 5, VCDepth: 8} }

// BenchmarkHotLoop isolates the cycle-loop cost at the largest swept
// design point (q=11, N=133) with a vector long enough that steady-state
// streaming dominates pipeline fill. One iteration is one full Allreduce;
// ns/op and allocs/op are the regression-gated signals (see
// BENCH_netsim.json for the committed pre-optimization baseline).
func BenchmarkHotLoop(b *testing.B) {
	for _, kind := range []string{"single", "lowdepth", "hamiltonian"} {
		spec := benchSpec(b, 11, 8192, kind)
		b.Run("q=11/"+kind, func(b *testing.B) {
			cfg := hotLoopCfg()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := Run(spec, cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Cycles), "simcycles")
			}
		})
	}
}

// BenchmarkCycleLoop times the cycle loop alone: simulator construction
// and result finalization run outside the timer, so allocs/op measures
// exactly what the hotalloc analyzer proves about cycleLoop's call graph.
// The benchreport hotcheck gate asserts this stays ≤ 1 alloc/op on the
// fault-free path.
func BenchmarkCycleLoop(b *testing.B) {
	for _, kind := range []string{"single", "lowdepth", "hamiltonian"} {
		spec := benchSpec(b, 11, 8192, kind)
		b.Run("q=11/"+kind, func(b *testing.B) {
			cfg := hotLoopCfg()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				s, err := newSim(spec, cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				now, err := s.cycleLoop()
				b.StopTimer()
				if err != nil {
					b.Fatal(err)
				}
				if _, err := s.finalize(now); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
			}
		})
	}
}

// BenchmarkEventLoop times the event-driven loop alone at the same q=11
// points as BenchmarkCycleLoop — construction and finalization outside
// the timer — so allocs/op measures exactly what the hotalloc analyzer
// proves about eventLoop's call graph. The benchreport hotcheck gate
// asserts this stays ≤ 1 alloc/op alongside the cycle-loop witness.
func BenchmarkEventLoop(b *testing.B) {
	for _, kind := range []string{"single", "lowdepth", "hamiltonian"} {
		spec := benchSpec(b, 11, 8192, kind)
		b.Run("q=11/"+kind, func(b *testing.B) {
			cfg := hotLoopCfg()
			cfg.Engine = EngineEvent
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				s, err := newSim(spec, cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				now, err := s.eventLoop()
				b.StopTimer()
				if err != nil {
					b.Fatal(err)
				}
				if _, err := s.finalize(now); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
			}
		})
	}
}

// BenchmarkEngineScale is the committed cycle-vs-event headline point:
// q=31 (N=993) Hamiltonian with deep pipelines and one short flow per
// directed link, so most links idle most cycles. The cycle loop still
// visits every link every cycle; the event loop only wakes the active
// ones. The committed BENCH_netsim-event.json records both subbenches,
// and CI's compare gate fails if the event engine's advantage evaporates.
func BenchmarkEngineScale(b *testing.B) {
	spec := benchSpec(b, 31, 4096, "hamiltonian")
	for _, engine := range []Engine{EngineCycle, EngineEvent} {
		b.Run("q=31/engine="+engine.String(), func(b *testing.B) {
			cfg := Config{LinkLatency: 10, VCDepth: 16, Engine: engine}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				s, err := newSim(spec, cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				var now int
				if engine == EngineEvent {
					now, err = s.eventLoop()
				} else {
					now, err = s.cycleLoop()
				}
				b.StopTimer()
				if err != nil {
					b.Fatal(err)
				}
				res, err := s.finalize(now)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Cycles), "simcycles")
				b.StartTimer()
			}
		})
	}
}

// BenchmarkHotLoopFaulted measures the faulted hot path at q=11: the
// per-flow send timestamps, the timeout scan, one mid-run link-down, and
// the recovery re-issue. The single-tree baseline is excluded — any link
// failure kills its only tree and the run aborts.
func BenchmarkHotLoopFaulted(b *testing.B) {
	for _, kind := range []string{"lowdepth", "hamiltonian"} {
		spec := benchSpec(b, 11, 8192, kind)
		// Fail the first edge of tree 0 mid-reduction: deterministic, and
		// guaranteed to cross at least one tree so recovery really runs.
		var u, v int
		for w, p := range spec.Forest[0].Parent {
			if p >= 0 {
				u, v = w, p
				break
			}
		}
		plan := &faults.Plan{Faults: []faults.Fault{
			{Kind: faults.LinkDown, U: u, V: v, At: 400},
		}}
		b.Run("q=11/"+kind, func(b *testing.B) {
			cfg := hotLoopCfg()
			cfg.Faults = plan
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := Run(spec, cfg)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Recoveries) == 0 {
					b.Fatal("faulted benchmark performed no recovery")
				}
				b.ReportMetric(float64(res.Cycles), "simcycles")
			}
		})
	}
}

// BenchmarkSimulatorScaling measures wall time as the instance grows.
func BenchmarkSimulatorScaling(b *testing.B) {
	for _, q := range []int{5, 9, 13} {
		spec := benchSpec(b, q, 1024, "lowdepth")
		b.Run(fmt.Sprintf("q=%d", q), func(b *testing.B) {
			cfg := Config{LinkLatency: 5, VCDepth: 8}
			for i := 0; i < b.N; i++ {
				if _, err := Run(spec, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
