// Package netsim is a cycle-accurate simulator of the in-network Allreduce
// router architecture described in §4.4 of the paper (modelled on Intel
// PIUMA and Mellanox SHARP):
//
//   - every undirected topology link is two directed links of bandwidth one
//     element ("flit") per cycle and a fixed pipeline latency;
//   - each embedded tree gets its own virtual channel on every link it
//     uses, with a finite buffer and credit-based flow control (§5.1);
//   - routers carry a pipelined reduction engine that can serve multiple
//     trees at link rate (§5.1: overlapping reduction vertices do not limit
//     bandwidth; links do);
//   - a directed link transmits at most one flit per cycle, arbitrating
//     round-robin among virtual channels that have both data and credit —
//     this is where congestion between overlapping trees materialises.
//
// An Allreduce run streams each tree's sub-vector up the tree (reduction),
// combines at the root, and streams the result back down (broadcast), all
// fully pipelined. The simulator moves real values, so tests verify
// end-to-end numerical correctness, and its cycle counts reproduce the
// bandwidth predicted by the Algorithm 1 waterfilling model.
package netsim

import (
	"fmt"

	"polarfly/internal/faults"
	"polarfly/internal/graph"
	"polarfly/internal/trees"
)

// Config sets the hardware parameters of the simulated fabric.
type Config struct {
	// LinkLatency is the pipeline depth of a link in cycles; a flit sent at
	// cycle t is delivered at t + LinkLatency. Must be ≥ 1.
	LinkLatency int
	// VCDepth is the per-(link, tree, phase) receive buffer in flits; the
	// credit loop stalls a sender once VCDepth flits are outstanding
	// (in-flight or buffered). Must be ≥ 1; small values throttle the
	// pipeline when VCDepth < LinkLatency (the latency-bandwidth product
	// argument of §1.2).
	VCDepth int
	// ProgressTimeout aborts the run if no flit moves for this many
	// consecutive cycles (a deadlock diagnostic; the credit protocol is
	// deadlock-free, so hitting it indicates a malformed embedding).
	// Defaults to DefaultProgressTimeout when zero.
	ProgressTimeout int
	// EngineRate caps how many reduction flits a router's arithmetic
	// engine may produce per cycle (combined across all trees reducing at
	// that router, including roots). Zero means unlimited — the §5.1
	// assumption that routers "compute multiple reductions at link rate".
	// Setting it to 1 models a single-output engine and quantifies the
	// arithmetic throughput the multi-tree embeddings actually demand.
	EngineRate int
	// Trace, when non-nil, receives every send/arrive/compute event in
	// deterministic order. Tracing large runs is expensive; intended for
	// debugging and fine-grained analysis. lint:cold
	Trace func(TraceEvent)
	// LinkBandwidth is the number of flits a directed link can accept per
	// cycle (trunked links). Zero means 1. All analytic comparisons in
	// this repository use 1; higher values scale the fabric uniformly.
	LinkBandwidth int
	// Faults is the deterministic fault plan injected into the run; nil
	// runs fault-free. Link faults drop flits and (unless DisableRecovery
	// is set) trigger timeout detection and tree-level recovery; degraded
	// links and engine stalls only slow the run down. Fault injection is
	// supported for OpAllreduce only. lint:cold
	Faults *faults.Plan
	// DisableRecovery turns off loss detection and recovery: trees hit by
	// a link fault simply stop making progress, so the run ends in a
	// *ProgressError carrying the stalled-tree diagnostic.
	DisableRecovery bool
	// FaultDetectTimeout is how many cycles beyond LinkLatency a virtual
	// channel waits for its oldest outstanding flit before declaring it
	// lost. Healthy flits always arrive after exactly LinkLatency cycles,
	// so any value ≥ 0 is free of false positives. Defaults to
	// 4·LinkLatency when zero.
	FaultDetectTimeout int
	// MaxRecoveries bounds recovery nesting: faults landing while a prior
	// recovery's re-issues are still in flight trigger further recovery
	// rounds, and each round quarantines at least one fresh link, so the
	// natural bound is the link count — this cap turns a pathological
	// schedule into the classified ErrRecoveryLimit sentinel instead of
	// unbounded churn. Defaults to DefaultMaxRecoveries when zero.
	MaxRecoveries int
	// SampleEvery is the telemetry sampling window in cycles: every
	// SampleEvery cycles (and once after the run ends) the Sample hook
	// receives a SampleFrame of cumulative counters. Zero disables
	// sampling; it must be ≥ 1 when Sample is set. Like Trace, the hook
	// is gated so untraced, unsampled runs pay nothing in the cycle loop.
	SampleEvery int
	// Sample, when non-nil, receives the periodic telemetry frames. The
	// frame and its Links slice are reused between calls; the hook must
	// copy anything it retains. Requires SampleEvery ≥ 1. lint:cold
	Sample func(*SampleFrame)
	// Engine selects the advance strategy. EngineCycle (the zero value) is
	// the reference loop that executes every simulated cycle; EngineEvent
	// skips cycles in which no link can act, producing byte-identical
	// results, traces and telemetry frames (see DESIGN.md §7h).
	Engine Engine
}

// Engine selects how the simulator advances time.
type Engine int

const (
	// EngineCycle executes every simulated cycle in turn — the reference
	// semantics all other engines must reproduce exactly.
	EngineCycle Engine = iota
	// EngineEvent advances directly to the next cycle at which anything can
	// change (earliest pipeline arrival, pending credit return, root-engine
	// slot, sample boundary, progress-timeout deadline), processing only the
	// links woken for that cycle. Results are byte-identical to EngineCycle;
	// fault-plan runs fall back to per-cycle processing so fault windows and
	// detection deadlines are honoured exactly.
	EngineEvent
)

func (e Engine) String() string {
	switch e {
	case EngineCycle:
		return "cycle"
	case EngineEvent:
		return "event"
	}
	return fmt.Sprintf("Engine(%d)", int(e))
}

// ParseEngine maps the CLI spelling to an Engine.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "cycle":
		return EngineCycle, nil
	case "event":
		return EngineEvent, nil
	}
	return 0, fmt.Errorf("netsim: unknown engine %q (want cycle or event)", s)
}

// DefaultProgressTimeout is the deadlock-diagnostic threshold applied by
// every entry point when Config.ProgressTimeout is zero.
const DefaultProgressTimeout = 10000

// DefaultMaxRecoveries is the recovery-round cap applied when
// Config.MaxRecoveries is zero — far above the link count of any
// simulated PolarFly, so only a genuinely pathological schedule hits it.
const DefaultMaxRecoveries = 1024

// DefaultConfig mirrors a plausible router point: 10-cycle links and
// buffers matching the latency-bandwidth product.
func DefaultConfig() Config {
	return Config{LinkLatency: 10, VCDepth: 10, ProgressTimeout: DefaultProgressTimeout}
}

// validate checks the configuration and fills documented defaults
// (ProgressTimeout) in place, so every entry point shares one source of
// truth for them.
func (c *Config) validate() error {
	if c.LinkLatency < 1 {
		return fmt.Errorf("netsim: LinkLatency must be ≥ 1, got %d", c.LinkLatency)
	}
	if c.VCDepth < 1 {
		return fmt.Errorf("netsim: VCDepth must be ≥ 1, got %d", c.VCDepth)
	}
	if c.EngineRate < 0 {
		return fmt.Errorf("netsim: EngineRate must be ≥ 0, got %d", c.EngineRate)
	}
	if c.LinkBandwidth < 0 {
		return fmt.Errorf("netsim: LinkBandwidth must be ≥ 0, got %d", c.LinkBandwidth)
	}
	if c.ProgressTimeout < 0 {
		return fmt.Errorf("netsim: ProgressTimeout must be ≥ 0, got %d", c.ProgressTimeout)
	}
	if c.ProgressTimeout == 0 {
		c.ProgressTimeout = DefaultProgressTimeout
	}
	if c.FaultDetectTimeout < 0 {
		return fmt.Errorf("netsim: FaultDetectTimeout must be ≥ 0, got %d", c.FaultDetectTimeout)
	}
	if c.FaultDetectTimeout == 0 {
		c.FaultDetectTimeout = 4 * c.LinkLatency
	}
	if c.MaxRecoveries < 0 {
		return fmt.Errorf("netsim: MaxRecoveries must be ≥ 0, got %d", c.MaxRecoveries)
	}
	if c.MaxRecoveries == 0 {
		c.MaxRecoveries = DefaultMaxRecoveries
	}
	if c.SampleEvery < 0 {
		return fmt.Errorf("netsim: SampleEvery must be ≥ 0, got %d", c.SampleEvery)
	}
	if c.Sample != nil && c.SampleEvery == 0 {
		return fmt.Errorf("netsim: Sample hook requires a sampling window; set SampleEvery ≥ 1")
	}
	if c.Sample == nil && c.SampleEvery > 0 {
		return fmt.Errorf("netsim: SampleEvery=%d without a Sample hook to receive frames", c.SampleEvery)
	}
	if c.Faults != nil {
		if err := c.Faults.Validate(); err != nil {
			return err
		}
	}
	if c.Engine != EngineCycle && c.Engine != EngineEvent {
		return fmt.Errorf("netsim: unknown Engine %d", int(c.Engine))
	}
	return nil
}

// Op selects which collective the embedded trees execute.
type Op int

const (
	// OpAllreduce streams the reduction up each tree and broadcasts the
	// result back down (§4.3) — every node ends with the full sum.
	OpAllreduce Op = iota
	// OpReduce runs only the up-phase: each tree's root ends with the sum
	// of its sub-vector; other nodes receive nothing.
	OpReduce
	// OpBroadcast runs only the down-phase: each tree's root distributes
	// its own input segment to all nodes.
	OpBroadcast
)

func (o Op) String() string {
	switch o {
	case OpAllreduce:
		return "allreduce"
	case OpReduce:
		return "reduce"
	case OpBroadcast:
		return "broadcast"
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// Spec describes one collective instance.
type Spec struct {
	// Op is the collective to run; zero value is OpAllreduce.
	Op Op
	// Topology is the physical network; every tree edge must be one of its
	// links.
	Topology *graph.Graph
	// Forest is the set of concurrently executing Allreduce trees.
	Forest []*trees.Tree
	// Split[i] is the number of vector elements assigned to tree i
	// (Theorem 5.1's m_i); the total vector length is the sum.
	Split []int
	// Inputs[v] is node v's full m-element input vector; tree i operates
	// on the contiguous segment [offset_i, offset_i + Split[i]).
	Inputs [][]int64
}

// Result reports a completed simulation. Every field must be a pure
// function of (Spec, Config): runs are bit-reproducible. lint:detsink
type Result struct {
	// Cycles is the completion time: the first cycle by which every node
	// holds the complete reduced vector.
	Cycles int
	// Outputs[v] is node v's assembled m-element result.
	Outputs [][]int64
	// FlitsSent counts total link transmissions (reduction + broadcast).
	FlitsSent int
	// TreeDone[i] is the cycle at which tree i's broadcast finished
	// everywhere.
	TreeDone []int
	// TreeReduceDone[i] is the cycle at which tree i's root computed its
	// final reduced flit — the reduce/broadcast phase boundary. It is -1
	// when the run had no reduce phase (OpBroadcast) and 0 for zero-split
	// trees.
	TreeReduceDone []int
	// PeakBufferFlits is the maximum total buffered flits observed across
	// all virtual channels (a proxy for router SRAM requirements; §5.1
	// motivates minimising congestion to keep this small).
	PeakBufferFlits int
	// LinkStats summarises every directed link, ordered by (From, To).
	// Always populated; the counters cost nothing beyond what the cycle
	// loop already touches.
	LinkStats []LinkStat
	// Arena is the simulator's construction-time memory footprint (see
	// ArenaFootprint). Every component is derived from the spec, so it is
	// identical across engines — except Arena.EventBytes (and the
	// TotalBytes it contributes to), which sizes machinery only the event
	// engine allocates.
	Arena ArenaFootprint
	// DroppedFlits counts flits destroyed by link faults: in-flight flits
	// purged at fault activation, injections swallowed by a failed link,
	// out-of-sequence arrivals discarded on broken streams, and flits
	// purged from pipelines when their tree is aborted. Zero on
	// fault-free runs.
	DroppedFlits int
	// DeliveredFlits counts flits accepted into a receive buffer. Every
	// sent flit ends exactly once as an accepted arrival or a drop, so
	// FlitsSent == DeliveredFlits + DroppedFlits on every completed run —
	// finalize asserts the identity and the chaos campaign re-checks it
	// per run.
	DeliveredFlits int
	// DeadTrees lists the forest trees aborted by recovery, sorted.
	DeadTrees []int
	// Recoveries records every recovery round, in cycle order.
	Recoveries []Recovery
	// PostRecoveryBW is the measured aggregate Allreduce bandwidth after
	// the last recovery, in elements per cycle: the number of vector
	// elements not yet complete at every node when recovery fired,
	// divided by the cycles the run took from there. It is the dynamic
	// counterpart of the Algorithm 1 aggregate of the surviving forest
	// (what core.Degrade predicts). Zero when no recovery happened.
	PostRecoveryBW float64
}

// Recovery summarises one recovery round: the detection of lost flits,
// the abort of the trees crossing the suspect links, and the re-issue of
// their unfinished elements over the survivors.
type Recovery struct {
	// Cycle is when loss was detected and the re-issue happened.
	Cycle int
	// FailedLinks are the undirected links whose streams timed out this
	// round, sorted.
	FailedLinks [][2]int
	// DeadTrees are the forest trees aborted this round, sorted.
	DeadTrees []int
	// Reissued is the number of vector elements redistributed over the
	// surviving trees.
	Reissued int
	// Remaining is the number of vector elements not yet complete at
	// every node just after the re-issue — the work the survivors carry.
	Remaining int
	// Generation is the recovery nesting depth: 1 for a round that only
	// aborted initial jobs, 1 + the deepest aborted job's generation when
	// a fault landed on work a prior round had already re-issued (the
	// mid-recovery storm case).
	Generation int
}

// LinkStat is the per-directed-link telemetry summary of one run.
type LinkStat struct {
	// From and To identify the directed link.
	From, To int
	// Flits is the number of flits injected into this link.
	Flits int
	// BusyCycles counts cycles in which at least one flit was injected;
	// with LinkBandwidth 1 it equals Flits.
	BusyCycles int
	// StallCycles counts cycles in which at least one of the link's
	// virtual channels had a flit ready but no credit to send it.
	StallCycles int
	// Dropped counts flits destroyed on this link by faults (zero on
	// fault-free runs); the per-link split of Result.DroppedFlits.
	Dropped int
	// PeakBufferFlits is the maximum simultaneous receive-buffer
	// occupancy across the link's virtual channels.
	PeakBufferFlits int
	// Trees is the number of distinct trees with a stream on this link —
	// the directed congestion the paper's Lemma 7.8 reasons about.
	Trees int
	// Utilization is BusyCycles divided by the run's total cycles.
	Utilization float64
}

// MaxLinkUtilization returns the highest per-link utilization of the run,
// the measured counterpart of the Algorithm 1 bottleneck prediction.
func (r *Result) MaxLinkUtilization() float64 {
	max := 0.0
	for _, ls := range r.LinkStats {
		if ls.Utilization > max {
			max = ls.Utilization
		}
	}
	return max
}

// phase of a flow.
const (
	phaseReduce = iota
	phaseBcast
)

// flow is one virtual channel: a (directed link, job, phase) stream.
type flow struct {
	j     *job
	tree  int // == j.tree, denormalised for the trace hot path
	phase int
	from  int
	to    int
	m     int // flits in this stream

	// snd and rcv are the sender's and receiver's per-job node state,
	// resolved once at stream construction so the cycle loop never chases
	// j.nodes indices.
	snd *nodeTree
	rcv *nodeTree

	// ln is the directed link carrying this stream, resolved at stream
	// construction so the event engine can wake a flow's link without a
	// topology lookup.
	ln *link

	sent     int // flits injected by the sender
	arrived  int // flits delivered to the receiver buffer
	consumed int // flits retired from the receiver buffer (credits freed)

	// stallCycle is the last cycle a credit stall was recorded for this
	// stream, so each (stream, cycle) stalls at most once even though the
	// arbitration scan may revisit the flow.
	stallCycle int

	// consumeMark is the cycle this flow was last queued for a retirement
	// check by the event engine (deduplicates the consume work lists; the
	// cycle engine never reads it).
	consumeMark int

	// buf holds values for flits [bufBase, bufBase+bufLen()) at positions
	// buf[bufHead:]. Retiring flits advances bufHead instead of reslicing,
	// so one fixed VCDepth-capacity array (carved from the job's shared
	// block) lasts the whole run: credit flow bounds occupancy by VCDepth,
	// and push compacts retired space back to the front before appending.
	buf     []int64
	bufHead int
	bufBase int

	// Fault bookkeeping, maintained only when a fault plan is present.
	// sentAt records the injection cycle of every outstanding flit (FIFO:
	// append on send, pop on accepted arrival, head-indexed like buf; the
	// credit window bounds it by VCDepth entries); lost marks a stream
	// that dropped a flit, so later arrivals are discarded rather than
	// pushed at the wrong prefix index.
	sentAt     []int
	sentAtHead int
	lost       bool // lint:cold: set only under an active fault plan
}

// pushSentAt records an injection cycle, allocating the fixed VCDepth
// window on first use (fault-plan runs only) and compacting popped space
// so the array never grows.
func (f *flow) pushSentAt(now, vcDepth int) {
	if f.sentAt == nil {
		f.sentAt = make([]int, 0, vcDepth)
	}
	if len(f.sentAt) == cap(f.sentAt) && f.sentAtHead > 0 {
		n := copy(f.sentAt, f.sentAt[f.sentAtHead:])
		f.sentAt = f.sentAt[:n]
		f.sentAtHead = 0
	}
	f.sentAt = append(f.sentAt, now)
}

// popSentAt retires the oldest outstanding injection cycle.
func (f *flow) popSentAt() {
	f.sentAtHead++
	if f.sentAtHead == len(f.sentAt) {
		f.sentAt = f.sentAt[:0]
		f.sentAtHead = 0
	}
}

// sentAtLen is the number of outstanding injection records; oldestSentAt
// is only valid when it is non-zero.
func (f *flow) sentAtLen() int    { return len(f.sentAt) - f.sentAtHead }
func (f *flow) oldestSentAt() int { return f.sentAt[f.sentAtHead] }

func (f *flow) push(v int64) {
	if len(f.buf) == cap(f.buf) && f.bufHead > 0 {
		n := copy(f.buf, f.buf[f.bufHead:])
		f.buf = f.buf[:n]
		f.bufHead = 0
	}
	f.buf = append(f.buf, v)
}

func (f *flow) at(k int) int64 { return f.buf[f.bufHead+k-f.bufBase] }

// bufLen is the number of buffered (arrived, unretired) flits.
func (f *flow) bufLen() int { return len(f.buf) - f.bufHead }

func (f *flow) dropTo(k int) {
	if k > f.bufBase {
		f.bufHead += k - f.bufBase
		f.bufBase = k
		if f.bufHead == len(f.buf) {
			f.buf = f.buf[:0]
			f.bufHead = 0
		}
	}
}

// inflight is a flit inside a link pipeline.
type inflight struct {
	f      *flow
	val    int64
	arrive int
}

// link is one directed physical link with its VCs and arbitration state.
type link struct {
	from, to int
	id       int32 // index in sim.links, assigned at freeze (event-engine wake sets)
	flows    []*flow
	rr       int // round-robin pointer

	// pipeline[pipeHead:] are the in-flight flits in arrival order.
	// Delivery advances pipeHead; injection compacts retired space and
	// appends, so the LinkBandwidth·LinkLatency capacity allocated at
	// freeze time is never outgrown.
	pipeline []inflight
	pipeHead int

	// curBuf is the current total receive-buffer occupancy across the
	// link's virtual channels, maintained incrementally (push/retire) so
	// the per-cycle occupancy pass does not rescan every flow.
	curBuf int

	// Fault state: failed links swallow injections and deliver nothing;
	// degraded links meter injections through a token bucket refilled at
	// degRate flits per cycle.
	failed    bool // lint:cold
	degraded  bool // lint:cold
	degRate   float64
	degBudget float64

	// Telemetry accumulators for Result.LinkStats.
	flits       int
	busyCycles  int
	stallCycles int
	stallMark   int // last cycle counted in stallCycles
	peakBuf     int
	lastBuf     int // occupancy at the end of the previous cycle
	dropped     int // flits destroyed on this link by faults
}

// pipeLen is the number of in-flight flits.
func (l *link) pipeLen() int { return len(l.pipeline) - l.pipeHead }

// pipePush appends an in-flight flit, compacting delivered space first so
// the backing array never grows past its freeze-time capacity.
func (l *link) pipePush(fl inflight) {
	if len(l.pipeline) == cap(l.pipeline) && l.pipeHead > 0 {
		n := copy(l.pipeline, l.pipeline[l.pipeHead:])
		l.pipeline = l.pipeline[:n]
		l.pipeHead = 0
	}
	l.pipeline = append(l.pipeline, fl)
}

// job is one pipelined sub-vector collective riding one forest tree: a
// contiguous range [goff, goff+m) of the global vector, with per-node
// dataflow state and a flow per tree edge per phase. The initial jobs are
// the Equation 2 split, one per tree; recovery appends new jobs when a
// dead tree's unfinished range is re-issued over the survivors.
type job struct {
	idx  int // simulator-wide creation index (the trace stream's Job)
	tree int // forest tree carrying this job
	goff int // global offset of the first element
	m    int // elements carried

	nodes []nodeTree // per-vertex state, one contiguous block
	dead  bool       // aborted by recovery; its flows are purged
	done  bool       // all nodes delivered their targets
	gen   int        // recovery generation: 0 initial, else creating round's depth

	// remaining is the sum of target−delivered over all nodes, kept in
	// step with s.pending so completion checks are O(1) per delivery
	// instead of an O(n) node scan.
	remaining int
}

// nodeTree is the per-(node, job) dataflow state.
type nodeTree struct {
	parent   int
	seg      []int64 // this node's input segment
	redIn    []*flow // reduce flows from children
	redOut   *flow   // reduce flow to parent (nil at root)
	bcastIn  *flow   // broadcast flow from parent (nil at root)
	bcastOut []*flow // broadcast flows to children

	// Root only: the pipelined reduction engine output. Aliases the root's
	// outputs row for the job's global range — engine output and local
	// delivery were always the same values at the same cycles, so they
	// share storage and recovery re-issues allocate nothing.
	rootResult   []int64
	rootComputed int

	delivered int
	target    int // flits this node must deliver for its job to finish

	// Incremental minima maintained by the event engine only (the cycle
	// loop recomputes these scans in place and never reads them):
	// redMin/redMinCnt track min and count-at-min over redIn[].arrived;
	// bcastMin/bcastMinCnt track the same over bcastOut[].sent. Each
	// underlying counter only ever advances by one, so when the count at
	// the minimum drains to zero the new minimum is exactly min+1 and an
	// O(degree) recount restores the census.
	redMin      int
	redMinCnt   int
	bcastMin    int
	bcastMinCnt int
}
