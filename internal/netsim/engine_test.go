package netsim

import (
	"testing"

	"polarfly/internal/er"
	"polarfly/internal/trees"
)

// TestEngineRateUnlimitedMatchesDefault confirms EngineRate=0 changes
// nothing.
func TestEngineRateUnlimitedMatchesDefault(t *testing.T) {
	spec := lineSpec(t, 7, 256)
	a, err := Run(spec, Config{LinkLatency: 3, VCDepth: 6})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(spec, Config{LinkLatency: 3, VCDepth: 6, EngineRate: 0})
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles {
		t.Errorf("EngineRate=0 changed cycles: %d vs %d", a.Cycles, b.Cycles)
	}
}

// TestEngineRateOneSufficesForSingleTree: a single tree never needs more
// than one reduction production per router per cycle.
func TestEngineRateOneSufficesForSingleTree(t *testing.T) {
	spec := lineSpec(t, 7, 256)
	unlimited, err := Run(spec, Config{LinkLatency: 3, VCDepth: 6})
	if err != nil {
		t.Fatal(err)
	}
	limited, err := Run(spec, Config{LinkLatency: 3, VCDepth: 6, EngineRate: 1})
	if err != nil {
		t.Fatal(err)
	}
	checkOutputs(t, spec, limited)
	if limited.Cycles != unlimited.Cycles {
		t.Errorf("EngineRate=1 should not slow a single tree: %d vs %d",
			limited.Cycles, unlimited.Cycles)
	}
}

// TestEngineRateThrottlesMultiTree: the low-depth forest runs many
// concurrent reductions per router, so a rate-1 engine becomes the
// bottleneck — quantifying the §5.1 assumption that routers must compute
// multiple reductions at link rate to sustain multi-tree bandwidth.
func TestEngineRateThrottlesMultiTree(t *testing.T) {
	pg, err := er.New(5)
	if err != nil {
		t.Fatal(err)
	}
	l, err := er.NewLayout(pg, -1)
	if err != nil {
		t.Fatal(err)
	}
	forest, err := trees.LowDepthForest(l)
	if err != nil {
		t.Fatal(err)
	}
	m := 1000
	split := make([]int, len(forest))
	for i := range split {
		split[i] = m / len(forest)
	}
	split[0] += m - (m/len(forest))*len(forest)
	spec := Spec{Topology: pg.G, Forest: forest, Split: split,
		Inputs: randInputs(pg.N(), m, 5)}

	unlimited, err := Run(spec, Config{LinkLatency: 3, VCDepth: 6})
	if err != nil {
		t.Fatal(err)
	}
	limited, err := Run(spec, Config{LinkLatency: 3, VCDepth: 6, EngineRate: 1})
	if err != nil {
		t.Fatal(err)
	}
	checkOutputs(t, spec, limited)
	if float64(limited.Cycles) < 1.5*float64(unlimited.Cycles) {
		t.Errorf("rate-1 engine should throttle the q-tree forest: %d vs %d cycles",
			limited.Cycles, unlimited.Cycles)
	}
	// A rate-q engine restores full throughput.
	wide, err := Run(spec, Config{LinkLatency: 3, VCDepth: 6, EngineRate: 5})
	if err != nil {
		t.Fatal(err)
	}
	if float64(wide.Cycles) > 1.1*float64(unlimited.Cycles) {
		t.Errorf("rate-q engine should match unlimited: %d vs %d cycles",
			wide.Cycles, unlimited.Cycles)
	}
}

func TestEngineRateValidation(t *testing.T) {
	spec := lineSpec(t, 3, 4)
	if _, err := Run(spec, Config{LinkLatency: 1, VCDepth: 1, EngineRate: -1}); err == nil {
		t.Error("negative EngineRate accepted")
	}
}
