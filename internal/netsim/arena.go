package netsim

import "unsafe"

// ArenaFootprint itemises the simulator's dominant steady-state
// allocations — the arenas sized at construction time that bound a run's
// memory: per-(job, node) tree state, the flow blocks with their VC
// receive buffers, the link records with their pipeline rings, the
// shared output matrix, and (under EngineEvent) the wake-set machinery.
// The numbers are computed from structure counts and capacities, so both
// engines report identical footprints for identical specs and the q=127
// smoke can gate on a deterministic ceiling instead of process RSS.
type ArenaFootprint struct {
	// Links and Flows count directed links and registered flow streams
	// (recovery re-issues included).
	Links int
	Flows int
	// NodeTreeBytes is the per-(job, node) tree state, including the
	// redIn/bcastOut child-pointer slices.
	NodeTreeBytes int64
	// FlowBytes is the contiguous per-job flow blocks plus the per-link
	// registration pointers.
	FlowBytes int64
	// VCBufferBytes is the credit-capped receive windows (VCDepth flits
	// of 8 bytes per flow).
	VCBufferBytes int64
	// LinkBytes is the link records and the frozen link/CSR indexes.
	LinkBytes int64
	// PipelineBytes is the in-flight rings (LinkBandwidth × LinkLatency
	// slots per link).
	PipelineBytes int64
	// OutputBytes is the shared n×m result matrix.
	OutputBytes int64
	// EventBytes is the event engine's wake sets, timing wheel, and
	// retirement queues; zero under EngineCycle.
	EventBytes int64
	// TotalBytes sums every component above.
	TotalBytes int64
}

// bytes is the linkSet's backing storage: three bitmap levels.
func (b *linkSet) bytes() int64 {
	return int64(len(b.l0)+len(b.l1)+len(b.l2)) * 8
}

// footprint sizes the event-engine state machine.
func (ev *evState) footprint() int64 {
	setSz := int64(unsafe.Sizeof(linkSet{}))
	total := int64(unsafe.Sizeof(evState{}))
	for i := range ev.wheel {
		total += setSz + ev.wheel[i].bytes()
	}
	total += int64(len(ev.wheelDue)) * 8
	total += ev.arb[0].bytes() + ev.arb[1].bytes() + ev.occ.bytes()
	total += int64(len(ev.scratch)) * 4
	ptr := int64(unsafe.Sizeof(uintptr(0)))
	total += int64(cap(ev.conNow)+cap(ev.conNext)) * ptr
	total += int64(len(ev.engineStamp)) * 8
	return total
}

// arenaFootprint walks the frozen simulator and tallies the arenas. Cold:
// called once from finalize.
func (s *sim) arenaFootprint() ArenaFootprint {
	var a ArenaFootprint
	ptr := int64(unsafe.Sizeof(uintptr(0)))
	linkSz := int64(unsafe.Sizeof(link{}))
	inflSz := int64(unsafe.Sizeof(inflight{}))
	flowSz := int64(unsafe.Sizeof(flow{}))
	ntSz := int64(unsafe.Sizeof(nodeTree{}))

	a.Links = len(s.links)
	a.LinkBytes = int64(len(s.links))*(linkSz+ptr) + int64(len(s.rowStart))*4
	for _, l := range s.links {
		a.Flows += len(l.flows)
		a.FlowBytes += int64(cap(l.flows)) * ptr
		a.PipelineBytes += int64(cap(l.pipeline)) * inflSz
		for _, f := range l.flows {
			a.FlowBytes += flowSz
			a.VCBufferBytes += int64(cap(f.buf)) * 8
		}
	}
	for _, j := range s.jobs {
		a.NodeTreeBytes += int64(len(j.nodes)) * ntSz
		for v := range j.nodes {
			nt := &j.nodes[v]
			a.NodeTreeBytes += int64(cap(nt.redIn)+cap(nt.bcastOut)) * ptr
		}
	}
	a.OutputBytes = int64(s.n) * int64(s.m) * 8
	if s.ev != nil {
		a.EventBytes = s.ev.footprint()
	}
	a.TotalBytes = a.NodeTreeBytes + a.FlowBytes + a.VCBufferBytes +
		a.LinkBytes + a.PipelineBytes + a.OutputBytes + a.EventBytes
	return a
}
