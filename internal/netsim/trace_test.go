package netsim

import "testing"

func TestTraceEventStream(t *testing.T) {
	spec := lineSpec(t, 4, 8)
	var events []TraceEvent
	cfg := Config{LinkLatency: 2, VCDepth: 4, Trace: func(ev TraceEvent) {
		events = append(events, ev)
	}}
	res, err := Run(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sends, arrives, computes := 0, 0, 0
	lastCycle := 0
	for _, ev := range events {
		if ev.Cycle < lastCycle {
			t.Fatalf("events out of order: cycle %d after %d", ev.Cycle, lastCycle)
		}
		lastCycle = ev.Cycle
		switch ev.Kind {
		case TraceSend:
			sends++
		case TraceArrive:
			arrives++
		case TraceRootCompute:
			computes++
		}
		if ev.Flit < 0 || ev.Flit >= 8 {
			t.Fatalf("flit index %d out of range", ev.Flit)
		}
	}
	if sends != res.FlitsSent {
		t.Errorf("%d send events, %d flits sent", sends, res.FlitsSent)
	}
	if arrives != sends {
		t.Errorf("%d arrives for %d sends", arrives, sends)
	}
	if computes != 8 { // m flits through the single root engine
		t.Errorf("%d compute events, want 8", computes)
	}
	// Every send precedes its arrival by exactly LinkLatency.
	type key struct{ tree, phase, from, to, flit int }
	sendCycle := make(map[key]int)
	for _, ev := range events {
		k := key{ev.Tree, ev.Phase, ev.From, ev.To, ev.Flit}
		switch ev.Kind {
		case TraceSend:
			sendCycle[k] = ev.Cycle
		case TraceArrive:
			sc, ok := sendCycle[k]
			if !ok {
				t.Fatalf("arrival without send: %+v", ev)
			}
			if ev.Cycle != sc+cfg.LinkLatency {
				t.Fatalf("flit %+v latency %d, want %d", ev, ev.Cycle-sc, cfg.LinkLatency)
			}
		}
	}
}

func TestTraceKindString(t *testing.T) {
	if TraceSend.String() != "send" || TraceArrive.String() != "arrive" ||
		TraceRootCompute.String() != "compute" || TraceEventKind(9).String() == "" {
		t.Error("TraceEventKind.String broken")
	}
}

func TestNoTraceNoOverheadPath(t *testing.T) {
	// Just confirms Run works identically with a nil hook.
	spec := lineSpec(t, 4, 16)
	a, err := Run(spec, Config{LinkLatency: 2, VCDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	b, err := Run(spec, Config{LinkLatency: 2, VCDepth: 4, Trace: func(TraceEvent) { count++ }})
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles {
		t.Error("tracing changed simulation behavior")
	}
	if count == 0 {
		t.Error("no events traced")
	}
}
