package netsim

import (
	"fmt"
	"testing"
)

func TestTraceEventStream(t *testing.T) {
	spec := lineSpec(t, 4, 8)
	var events []TraceEvent
	cfg := Config{LinkLatency: 2, VCDepth: 4, Trace: func(ev TraceEvent) {
		events = append(events, ev)
	}}
	res, err := Run(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sends, arrives, computes, occupancies := 0, 0, 0, 0
	lastCycle := 0
	for _, ev := range events {
		if ev.Cycle < lastCycle {
			t.Fatalf("events out of order: cycle %d after %d", ev.Cycle, lastCycle)
		}
		lastCycle = ev.Cycle
		switch ev.Kind {
		case TraceSend:
			sends++
		case TraceArrive:
			arrives++
		case TraceRootCompute:
			computes++
		case TraceBufferOccupancy:
			occupancies++
			if ev.Tree != -1 || ev.Phase != -1 || ev.Flit != -1 {
				t.Fatalf("occupancy event carries stream fields: %+v", ev)
			}
			continue // per-link event, no stream-local flit index
		}
		if ev.Flit < 0 || ev.Flit >= 8 {
			t.Fatalf("flit index %d out of range", ev.Flit)
		}
	}
	if occupancies == 0 {
		t.Error("no buffer-occupancy events traced")
	}
	if sends != res.FlitsSent {
		t.Errorf("%d send events, %d flits sent", sends, res.FlitsSent)
	}
	if arrives != sends {
		t.Errorf("%d arrives for %d sends", arrives, sends)
	}
	if computes != 8 { // m flits through the single root engine
		t.Errorf("%d compute events, want 8", computes)
	}
	// Every send precedes its arrival by exactly LinkLatency.
	type key struct{ tree, phase, from, to, flit int }
	sendCycle := make(map[key]int)
	for _, ev := range events {
		k := key{ev.Tree, ev.Phase, ev.From, ev.To, ev.Flit}
		switch ev.Kind {
		case TraceSend:
			sendCycle[k] = ev.Cycle
		case TraceArrive:
			sc, ok := sendCycle[k]
			if !ok {
				t.Fatalf("arrival without send: %+v", ev)
			}
			if ev.Cycle != sc+cfg.LinkLatency {
				t.Fatalf("flit %+v latency %d, want %d", ev, ev.Cycle-sc, cfg.LinkLatency)
			}
		}
	}
}

func TestTraceKindString(t *testing.T) {
	if TraceSend.String() != "send" || TraceArrive.String() != "arrive" ||
		TraceRootCompute.String() != "compute" || TraceStall.String() != "stall" ||
		TraceBufferOccupancy.String() != "occupancy" || TraceEventKind(9).String() == "" {
		t.Error("TraceEventKind.String broken")
	}
}

// TestTraceStallEvents throttles credits below the latency-bandwidth
// product so the pipeline must stall, and checks the stall events are
// well-formed and deduplicated per (stream, cycle).
func TestTraceStallEvents(t *testing.T) {
	spec := lineSpec(t, 4, 32)
	var events []TraceEvent
	cfg := Config{LinkLatency: 8, VCDepth: 2, Trace: func(ev TraceEvent) {
		events = append(events, ev)
	}}
	res, err := Run(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkOutputs(t, spec, res)
	type key struct{ tree, phase, from, to, cycle int }
	seen := make(map[key]bool)
	stalls := 0
	for _, ev := range events {
		if ev.Kind != TraceStall {
			continue
		}
		stalls++
		k := key{ev.Tree, ev.Phase, ev.From, ev.To, ev.Cycle}
		if seen[k] {
			t.Fatalf("duplicate stall for stream in one cycle: %+v", ev)
		}
		seen[k] = true
		if ev.Value != int64(cfg.VCDepth) {
			t.Errorf("stall with %d outstanding flits, want a full window of %d", ev.Value, cfg.VCDepth)
		}
	}
	if stalls == 0 {
		t.Fatal("VCDepth 2 under latency 8 produced no stall events")
	}
	// The per-link summary must agree with the trace: some link stalled.
	maxStall := 0
	for _, ls := range res.LinkStats {
		if ls.StallCycles > maxStall {
			maxStall = ls.StallCycles
		}
	}
	if maxStall == 0 {
		t.Error("LinkStats report no stall cycles despite stall events")
	}
}

// TestTraceDeterminism runs the same spec twice and requires the two
// event streams — including the new stall and occupancy kinds — to be
// byte-identical when rendered.
func TestTraceDeterminism(t *testing.T) {
	record := func(cfg Config) []string {
		var lines []string
		cfg.Trace = func(ev TraceEvent) {
			lines = append(lines, fmt.Sprintf("%+v", ev))
		}
		spec := lineSpec(t, 5, 24)
		if _, err := Run(spec, cfg); err != nil {
			t.Fatal(err)
		}
		return lines
	}
	for _, cfg := range []Config{
		{LinkLatency: 2, VCDepth: 4},
		{LinkLatency: 8, VCDepth: 2},  // stall-heavy
		{LinkLatency: 3, VCDepth: 64}, // stall-free
	} {
		a, b := record(cfg), record(cfg)
		if len(a) != len(b) {
			t.Fatalf("cfg %+v: %d events vs %d", cfg, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("cfg %+v: event %d differs:\n%s\n%s", cfg, i, a[i], b[i])
			}
		}
	}
}

func TestNoTraceNoOverheadPath(t *testing.T) {
	// Just confirms Run works identically with a nil hook.
	spec := lineSpec(t, 4, 16)
	a, err := Run(spec, Config{LinkLatency: 2, VCDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	b, err := Run(spec, Config{LinkLatency: 2, VCDepth: 4, Trace: func(TraceEvent) { count++ }})
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles {
		t.Error("tracing changed simulation behavior")
	}
	if count == 0 {
		t.Error("no events traced")
	}
}
