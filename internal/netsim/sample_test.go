package netsim

import (
	"strings"
	"testing"

	"polarfly/internal/faults"
)

// TestValidateSampling is the table-driven contract for the hoisted
// sampling-window validation: bad (SampleEvery, Sample) combinations are
// rejected by Config.validate with a clear error before any simulation
// state is built, mirroring the ProgressTimeout hoist.
func TestValidateSampling(t *testing.T) {
	hook := func(*SampleFrame) {}
	cases := []struct {
		name        string
		sampleEvery int
		sample      func(*SampleFrame)
		wantErr     string // substring; empty means the config is accepted
	}{
		{name: "disabled", sampleEvery: 0, sample: nil},
		{name: "enabled", sampleEvery: 64, sample: hook},
		{name: "window of one", sampleEvery: 1, sample: hook},
		{name: "negative window", sampleEvery: -1, sample: nil,
			wantErr: "SampleEvery must be ≥ 0"},
		{name: "negative window with hook", sampleEvery: -8, sample: hook,
			wantErr: "SampleEvery must be ≥ 0"},
		{name: "hook without window", sampleEvery: 0, sample: hook,
			wantErr: "Sample hook requires a sampling window"},
		{name: "window without hook", sampleEvery: 16, sample: nil,
			wantErr: "without a Sample hook"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := Config{LinkLatency: 1, VCDepth: 2,
				SampleEvery: tc.sampleEvery, Sample: tc.sample}
			err := cfg.validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("validate() = %v, want nil", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("validate() accepted SampleEvery=%d sample=%v", tc.sampleEvery, tc.sample != nil)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("validate() = %q, want substring %q", err, tc.wantErr)
			}
		})
	}
}

// copyFrames is a Sample hook that deep-copies every frame, since the
// simulator reuses the frame and its Links slice between calls.
type frameLog struct {
	frames []SampleFrame
}

func (fl *frameLog) hook(fr *SampleFrame) {
	cp := *fr
	cp.Links = append([]LinkCounters(nil), fr.Links...)
	fl.frames = append(fl.frames, cp)
}

// TestSampleFrames pins the sampling contract on a fault-free ring run:
// frames arrive at every SampleEvery boundary plus one final frame, the
// counters are cumulative and monotonic, the final frame reconciles
// exactly against the Result, and enabling sampling does not perturb the
// simulation (same cycles, flits, outputs).
func TestSampleFrames(t *testing.T) {
	spec := lineSpec(t, 8, 64)
	base, err := Run(spec, Config{LinkLatency: 2, VCDepth: 4})
	if err != nil {
		t.Fatal(err)
	}

	const every = 10
	var log frameLog
	res, err := Run(spec, Config{LinkLatency: 2, VCDepth: 4,
		SampleEvery: every, Sample: log.hook})
	if err != nil {
		t.Fatal(err)
	}

	if res.Cycles != base.Cycles || res.FlitsSent != base.FlitsSent {
		t.Fatalf("sampling perturbed the run: cycles %d vs %d, flits %d vs %d",
			res.Cycles, base.Cycles, res.FlitsSent, base.FlitsSent)
	}
	if len(log.frames) == 0 {
		t.Fatal("no frames delivered")
	}
	wantBoundary := res.Cycles / every
	if got := len(log.frames); got != wantBoundary+1 {
		t.Fatalf("got %d frames for %d cycles, want %d boundary + 1 final", got, res.Cycles, wantBoundary+1)
	}
	for i, fr := range log.frames[:len(log.frames)-1] {
		if fr.Final {
			t.Fatalf("frame %d marked final before the run ended", i)
		}
		if want := (i + 1) * every; fr.Cycle != want {
			t.Fatalf("frame %d at cycle %d, want %d", i, fr.Cycle, want)
		}
	}
	final := log.frames[len(log.frames)-1]
	if !final.Final || final.Cycle != res.Cycles {
		t.Fatalf("final frame = {Final:%v Cycle:%d}, want {true %d}", final.Final, final.Cycle, res.Cycles)
	}

	// Monotonic cumulative counters.
	for i := 1; i < len(log.frames); i++ {
		prev, cur := log.frames[i-1].Run, log.frames[i].Run
		if cur.FlitsSent < prev.FlitsSent || cur.Delivered < prev.Delivered ||
			cur.Dropped < prev.Dropped || cur.ReduceFlits < prev.ReduceFlits {
			t.Fatalf("counters regressed between frames %d and %d: %+v -> %+v", i-1, i, prev, cur)
		}
	}

	// The final frame reconciles exactly against the Result.
	if final.Run.FlitsSent != res.FlitsSent {
		t.Errorf("final FlitsSent %d, want %d", final.Run.FlitsSent, res.FlitsSent)
	}
	if final.Run.Dropped != res.DroppedFlits {
		t.Errorf("final Dropped %d, want %d", final.Run.Dropped, res.DroppedFlits)
	}
	if final.Run.PeakBufferFlits != res.PeakBufferFlits {
		t.Errorf("final PeakBufferFlits %d, want %d", final.Run.PeakBufferFlits, res.PeakBufferFlits)
	}
	if want := len(spec.Inputs) * spec.Split[0]; final.Run.Delivered != want {
		t.Errorf("final Delivered %d, want N*m = %d", final.Run.Delivered, want)
	}
	if final.Run.ReduceFlits+final.Run.BcastFlits != final.Run.FlitsSent {
		t.Errorf("phase split %d+%d != total %d",
			final.Run.ReduceFlits, final.Run.BcastFlits, final.Run.FlitsSent)
	}
	if final.Run.LastFaultCycle != -1 || final.Run.LastRecoverCycle != -1 {
		t.Errorf("fault gauges on a fault-free run: fault=%d recover=%d",
			final.Run.LastFaultCycle, final.Run.LastRecoverCycle)
	}
	if len(final.Links) != len(res.LinkStats) {
		t.Fatalf("%d sampled links, %d in LinkStats", len(final.Links), len(res.LinkStats))
	}
	for i, lc := range final.Links {
		ls := res.LinkStats[i]
		if lc.From != ls.From || lc.To != ls.To {
			t.Fatalf("link %d order mismatch: sampled %d->%d, stats %d->%d", i, lc.From, lc.To, ls.From, ls.To)
		}
		if lc.Flits != ls.Flits || lc.BusyCycles != ls.BusyCycles ||
			lc.StallCycles != ls.StallCycles || lc.Dropped != ls.Dropped ||
			lc.PeakBuffered != ls.PeakBufferFlits {
			t.Errorf("link %d->%d final counters %+v disagree with LinkStats %+v", lc.From, lc.To, lc, ls)
		}
		if lc.Buffered != 0 {
			t.Errorf("link %d->%d still buffered %d at the final frame", lc.From, lc.To, lc.Buffered)
		}
	}
}

// TestSampleFramesFaulted pins the fault gauges: on a deterministic
// link-down run the last-fault and last-recover gauges expose the exact
// activation and recovery cycles, matching the Result's recovery record.
func TestSampleFramesFaulted(t *testing.T) {
	// A multi-tree forest so a single link failure is survivable.
	spec, _ := buildPolarSpec(t, 5, 256, "lowdepth")
	var u, v int
	for w, p := range spec.Forest[0].Parent {
		if p >= 0 {
			u, v = w, p
			break
		}
	}
	plan := &faults.Plan{Faults: []faults.Fault{
		{Kind: faults.LinkDown, U: u, V: v, At: 40},
	}}

	var log frameLog
	res, err := Run(spec, Config{LinkLatency: 2, VCDepth: 4, Faults: plan,
		SampleEvery: 8, Sample: log.hook})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Recoveries) == 0 {
		t.Fatal("no recovery happened; fault plan missed the forest")
	}
	final := log.frames[len(log.frames)-1].Run
	if final.LastFaultCycle != 40 {
		t.Errorf("LastFaultCycle = %d, want 40", final.LastFaultCycle)
	}
	if want := res.Recoveries[len(res.Recoveries)-1].Cycle; final.LastRecoverCycle != want {
		t.Errorf("LastRecoverCycle = %d, want %d", final.LastRecoverCycle, want)
	}
	if final.Recoveries != len(res.Recoveries) {
		t.Errorf("Recoveries = %d, want %d", final.Recoveries, len(res.Recoveries))
	}
	wantReissued := 0
	for _, r := range res.Recoveries {
		wantReissued += r.Reissued
	}
	if final.Reissued != wantReissued {
		t.Errorf("Reissued = %d, want %d", final.Reissued, wantReissued)
	}
	if final.Dropped != res.DroppedFlits {
		t.Errorf("Dropped = %d, want %d", final.Dropped, res.DroppedFlits)
	}
	// Per-link drop split sums to the run total.
	sum := 0
	for _, ls := range res.LinkStats {
		sum += ls.Dropped
	}
	if sum != res.DroppedFlits {
		t.Errorf("per-link Dropped sums to %d, want %d", sum, res.DroppedFlits)
	}
}
