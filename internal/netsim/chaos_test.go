package netsim

import (
	"errors"
	"testing"

	"polarfly/internal/faults"
)

func TestFaultWindowActiveStorm(t *testing.T) {
	f := faults.Fault{Kind: faults.LinkStorm, U: 0, V: 1, At: 100, Until: 110, Period: 50, Repeat: 3}
	cases := []struct {
		now  int
		want bool
	}{
		{99, false}, {100, true}, {109, true}, {110, false}, {149, false},
		{150, true}, {159, true}, {160, false},
		{200, true}, {209, true}, {210, false},
		{250, false}, {1000, false}, // Repeat exhausted
	}
	for _, tc := range cases {
		if got := faultWindowActive(f, tc.now); got != tc.want {
			t.Errorf("faultWindowActive(storm, %d) = %v, want %v", tc.now, got, tc.want)
		}
	}
	down := faults.Fault{Kind: faults.LinkDown, U: 0, V: 1, At: 5}
	if faultWindowActive(down, 4) || !faultWindowActive(down, 5) || !faultWindowActive(down, 10000) {
		t.Error("link-down window should be [At, forever)")
	}
}

// TestRouterDownKillsAllTrees: a router dying mid-reduction takes all
// q+1 incident links atomically, and since every embedded tree is a
// spanning tree (it has an edge incident to the dead node), every
// embedding — not just the single-tree baseline — loses all trees.
func TestRouterDownKillsAllTrees(t *testing.T) {
	for _, kind := range []string{"lowdepth", "hamiltonian", "single"} {
		t.Run(kind, func(t *testing.T) {
			spec, _ := buildPolarSpec(t, 5, 3000, kind)
			plan := &faults.Plan{Faults: []faults.Fault{
				{Kind: faults.RouterDown, Node: spec.Forest[0].Root, At: 200},
			}}
			_, err := Run(spec, Config{LinkLatency: 3, VCDepth: 6, Faults: plan})
			if !errors.Is(err, ErrAllTreesLost) {
				t.Fatalf("err = %v, want ErrAllTreesLost", err)
			}
		})
	}
}

// TestLinkStormKillsAndRecovers: the first storm burst drops flits and
// breaks the crossing streams exactly like a transient; the healed
// windows afterwards do not matter because the link is quarantined. The
// run recovers onto the survivors and stays numerically exact.
func TestLinkStormKillsAndRecovers(t *testing.T) {
	m := 3000
	spec, _ := buildPolarSpec(t, 5, m, "lowdepth")
	link := firstTreeLink(spec, 0)
	plan := &faults.Plan{Faults: []faults.Fault{
		{Kind: faults.LinkStorm, U: link[0], V: link[1], At: 200, Until: 230, Period: 400, Repeat: 3},
	}}
	res, err := Run(spec, Config{LinkLatency: 3, VCDepth: 6, Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	checkOutputs(t, spec, res)
	if len(res.Recoveries) != 1 {
		t.Fatalf("recoveries = %d, want 1 (a quarantined link cannot re-break)", len(res.Recoveries))
	}
	if res.Recoveries[0].Generation != 1 {
		t.Errorf("generation = %d, want 1", res.Recoveries[0].Generation)
	}
	if res.DroppedFlits == 0 {
		t.Error("storm burst dropped no flits")
	}
	if res.FlitsSent != res.DeliveredFlits+res.DroppedFlits {
		t.Errorf("flit conservation: sent %d != delivered %d + dropped %d",
			res.FlitsSent, res.DeliveredFlits, res.DroppedFlits)
	}
}

// stormSchedule builds the mid-recovery fault-storm plan for q=5
// low-depth: probe a single link-down first to learn the recovery cycle
// and the surviving trees, then land a storm burst on a survivor's link
// while the first round's re-issues are still in flight.
func stormSchedule(t *testing.T) (Spec, *faults.Plan, [2]int, [2]int) {
	t.Helper()
	m := 3000
	spec, _ := buildPolarSpec(t, 5, m, "lowdepth")
	linkA := firstTreeLink(spec, 0)
	probePlan := &faults.Plan{Faults: []faults.Fault{
		{Kind: faults.LinkDown, U: linkA[0], V: linkA[1], At: 200},
	}}
	probe, err := Run(spec, Config{LinkLatency: 3, VCDepth: 6, Faults: probePlan})
	if err != nil {
		t.Fatal(err)
	}
	if len(probe.Recoveries) != 1 {
		t.Fatalf("probe recoveries = %d, want 1", len(probe.Recoveries))
	}
	rc := probe.Recoveries[0].Cycle
	dead := make(map[int]bool)
	for _, ti := range probe.DeadTrees {
		dead[ti] = true
	}
	var linkB [2]int
	found := false
	for ti := range spec.Forest {
		if !dead[ti] {
			linkB = firstTreeLink(spec, ti)
			found = true
			break
		}
	}
	if !found {
		t.Fatal("probe run left no survivors")
	}
	if linkB == linkA {
		t.Fatalf("survivor link %v equals the quarantined link", linkB)
	}
	plan := &faults.Plan{Faults: []faults.Fault{
		{Kind: faults.LinkDown, U: linkA[0], V: linkA[1], At: 200},
		{Kind: faults.LinkStorm, U: linkB[0], V: linkB[1],
			At: rc + 50, Until: rc + 80, Period: 200, Repeat: 2},
	}}
	return spec, plan, linkA, linkB
}

// TestMidRecoveryFaultStormNestsRecovery is the re-entrancy acceptance
// scenario: a storm burst lands on a surviving tree while the first
// recovery's re-issues are still streaming. The second round must abort
// generation-1 jobs (nesting depth 2), blame only the two faulted links
// (no false positives on trees a prior round already killed), and the
// run must still deliver the exact reduction.
func TestMidRecoveryFaultStormNestsRecovery(t *testing.T) {
	spec, plan, linkA, linkB := stormSchedule(t)
	res, err := Run(spec, Config{LinkLatency: 3, VCDepth: 6, Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	checkOutputs(t, spec, res)
	if len(res.Recoveries) < 2 {
		t.Fatalf("recoveries = %d, want ≥ 2 (storm must land mid-recovery)", len(res.Recoveries))
	}
	maxGen := 0
	for _, r := range res.Recoveries {
		if r.Generation > maxGen {
			maxGen = r.Generation
		}
		for _, l := range r.FailedLinks {
			if l != linkA && l != linkB {
				t.Errorf("recovery at %d blamed link %v, not one of the faulted %v/%v",
					r.Cycle, l, linkA, linkB)
			}
		}
	}
	if maxGen < 2 {
		t.Fatalf("max recovery generation = %d, want ≥ 2 (nested re-issue)", maxGen)
	}
	if res.FlitsSent != res.DeliveredFlits+res.DroppedFlits {
		t.Errorf("flit conservation: sent %d != delivered %d + dropped %d",
			res.FlitsSent, res.DeliveredFlits, res.DroppedFlits)
	}
}

// TestRecoveryLimitClassifies: the same nested schedule with
// MaxRecoveries 1 must terminate with the classified sentinel instead of
// running a second round.
func TestRecoveryLimitClassifies(t *testing.T) {
	spec, plan, _, _ := stormSchedule(t)
	_, err := Run(spec, Config{LinkLatency: 3, VCDepth: 6, Faults: plan, MaxRecoveries: 1})
	if !errors.Is(err, ErrRecoveryLimit) {
		t.Fatalf("err = %v, want ErrRecoveryLimit", err)
	}
}

// TestOverlappingDegradedWindowsCompose: when two degradation windows
// overlap on one link, closing the looser window must not lift the
// tighter cap — the aggregate state is recomputed from the whole plan,
// not overwritten by the last transition.
func TestOverlappingDegradedWindowsCompose(t *testing.T) {
	m := 512
	spec := lineSpec(t, 5, m)
	tight := &faults.Plan{Faults: []faults.Fault{
		{Kind: faults.LinkDegraded, U: 1, V: 2, At: 1, Bandwidth: 0.25},
	}}
	resTight, err := Run(spec, Config{LinkLatency: 2, VCDepth: 8, Faults: tight})
	if err != nil {
		t.Fatal(err)
	}
	overlap := &faults.Plan{Faults: []faults.Fault{
		{Kind: faults.LinkDegraded, U: 1, V: 2, At: 1, Bandwidth: 0.25},
		{Kind: faults.LinkDegraded, U: 1, V: 2, At: 10, Until: 50, Bandwidth: 0.5},
	}}
	res, err := Run(spec, Config{LinkLatency: 2, VCDepth: 8, Faults: overlap})
	if err != nil {
		t.Fatal(err)
	}
	checkOutputs(t, spec, res)
	if res.Cycles != resTight.Cycles {
		t.Errorf("overlapped run took %d cycles, the 0.25×-throughout run %d; closing the looser window lifted the tighter cap",
			res.Cycles, resTight.Cycles)
	}
}

// TestOverlappingStallWindowsCompose: an engine-stall window closing
// inside a longer one must not wake the engine early.
func TestOverlappingStallWindowsCompose(t *testing.T) {
	m := 256
	spec := lineSpec(t, 5, m) // root is node 2
	base, err := Run(spec, Config{LinkLatency: 2, VCDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	long := base.Cycles + 200
	plan := &faults.Plan{Faults: []faults.Fault{
		{Kind: faults.EngineStall, Node: 2, At: 1, Until: long},
		{Kind: faults.EngineStall, Node: 2, At: 5, Until: 30},
	}}
	res, err := Run(spec, Config{LinkLatency: 2, VCDepth: 8, Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	checkOutputs(t, spec, res)
	if res.Cycles < long {
		t.Errorf("cycles = %d, want ≥ %d: the short window's close woke the stalled engine", res.Cycles, long)
	}
}

// TestOverlappingLossyFaultsCompose: a permanent link-down inside a storm
// window on the same link must classify and recover cleanly — one
// recovery (the link is quarantined), exact outputs, conserved flits.
func TestOverlappingLossyFaultsCompose(t *testing.T) {
	m := 3000
	spec, _ := buildPolarSpec(t, 5, m, "lowdepth")
	link := firstTreeLink(spec, 0)
	plan := &faults.Plan{Faults: []faults.Fault{
		{Kind: faults.LinkStorm, U: link[0], V: link[1], At: 200, Until: 260, Period: 300, Repeat: 2},
		{Kind: faults.LinkDown, U: link[0], V: link[1], At: 230},
	}}
	res, err := Run(spec, Config{LinkLatency: 3, VCDepth: 6, Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	checkOutputs(t, spec, res)
	if len(res.Recoveries) != 1 {
		t.Errorf("recoveries = %d, want 1", len(res.Recoveries))
	}
	if res.FlitsSent != res.DeliveredFlits+res.DroppedFlits {
		t.Errorf("flit conservation: sent %d != delivered %d + dropped %d",
			res.FlitsSent, res.DeliveredFlits, res.DroppedFlits)
	}
}

// TestDeliveredFlitsAccounting: fault-free runs deliver every sent flit;
// the conservation identity is also asserted inside finalize, so this
// test mostly pins the field's meaning.
func TestDeliveredFlitsAccounting(t *testing.T) {
	spec := lineSpec(t, 5, 128)
	res, err := Run(spec, Config{LinkLatency: 2, VCDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.DroppedFlits != 0 || res.DeliveredFlits != res.FlitsSent {
		t.Errorf("fault-free: sent %d, delivered %d, dropped %d; want delivered == sent, dropped 0",
			res.FlitsSent, res.DeliveredFlits, res.DroppedFlits)
	}
}

// TestRouterDownValidation: the node must fit the topology, and the
// config must reject a negative recovery cap.
func TestRouterDownValidation(t *testing.T) {
	spec := lineSpec(t, 5, 8)
	plan := &faults.Plan{Faults: []faults.Fault{
		{Kind: faults.RouterDown, Node: 7, At: 10},
	}}
	if _, err := Run(spec, Config{LinkLatency: 2, VCDepth: 4, Faults: plan}); err == nil {
		t.Error("out-of-range router-down node accepted")
	}
	if _, err := Run(spec, Config{LinkLatency: 2, VCDepth: 4, MaxRecoveries: -1}); err == nil {
		t.Error("negative MaxRecoveries accepted")
	}
}
