package netsim

import "testing"

func TestLinkBandwidthScalesThroughput(t *testing.T) {
	spec := lineSpec(t, 7, 1024)
	one, err := Run(spec, Config{LinkLatency: 3, VCDepth: 16})
	if err != nil {
		t.Fatal(err)
	}
	two, err := Run(spec, Config{LinkLatency: 3, VCDepth: 16, LinkBandwidth: 2})
	if err != nil {
		t.Fatal(err)
	}
	checkOutputs(t, spec, two)
	ratio := float64(one.Cycles) / float64(two.Cycles)
	if ratio < 1.7 || ratio > 2.2 {
		t.Errorf("2x link bandwidth gave %.2fx speedup (one=%d two=%d)", ratio, one.Cycles, two.Cycles)
	}
	// Explicit 1 equals default 0.
	explicit, err := Run(spec, Config{LinkLatency: 3, VCDepth: 16, LinkBandwidth: 1})
	if err != nil {
		t.Fatal(err)
	}
	if explicit.Cycles != one.Cycles {
		t.Errorf("LinkBandwidth 1 vs default: %d vs %d", explicit.Cycles, one.Cycles)
	}
	if _, err := Run(spec, Config{LinkLatency: 1, VCDepth: 1, LinkBandwidth: -1}); err == nil {
		t.Error("negative LinkBandwidth accepted")
	}
}

func TestLinkBandwidthFairnessUnderSharing(t *testing.T) {
	// Two trees sharing a directed link with LinkBandwidth=2 both stream
	// at full rate — trunking absorbs the congestion.
	spec := lineSpec(t, 5, 256)
	// Add a second identical tree (same direction → congestion 2).
	spec.Forest = append(spec.Forest, spec.Forest[0])
	spec.Split = []int{256, 256}
	spec.Inputs = randInputs(5, 512, 8)
	congested, err := Run(spec, Config{LinkLatency: 2, VCDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	trunked, err := Run(spec, Config{LinkLatency: 2, VCDepth: 8, LinkBandwidth: 2})
	if err != nil {
		t.Fatal(err)
	}
	checkOutputs(t, spec, trunked)
	if float64(congested.Cycles) < 1.6*float64(trunked.Cycles) {
		t.Errorf("trunking did not absorb congestion: %d vs %d", congested.Cycles, trunked.Cycles)
	}
}
