package netsim

import (
	"fmt"
	"sort"
)

// Run executes one in-network Allreduce and returns the cycle count and the
// value-verified outputs. It validates the spec first: every tree must be a
// spanning tree of the topology, the split must match the input length, and
// all nodes must provide equal-length inputs.
func Run(spec Spec, cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	s, err := newSim(spec, cfg)
	if err != nil {
		return nil, err
	}
	return s.run()
}

type sim struct {
	spec Spec
	cfg  Config

	n       int
	m       int   // total vector length
	offsets []int // segment offset per tree

	// linkMap resolves directed (from,to) → link during construction only;
	// it is released at freeze time in favour of the CSR row index, so the
	// cycle loop and recovery path never touch a map.
	linkMap map[[2]int]*link
	links   []*link // links in deterministic (from, to) order
	// rowStart[v] is the index of node v's first outgoing link in links
	// (rowStart[n] == len(links)); links within a row are sorted by
	// destination, so linkAt is a binary search over the row. A CSR index
	// instead of a dense n×n table: at q=127 (N=16 257) the dense table
	// alone would cost a gigabyte for a fabric whose links number ~2M.
	rowStart []int32
	frozen   bool   // link set frozen; recovery may not add links
	jobs     []*job // initial jobs (one per tree) + recovery re-issues
	pending  int    // flit deliveries still outstanding (all jobs, all nodes)

	// ev is the event-engine state (wake sets, timing wheel, retirement
	// queues); nil under EngineCycle.
	ev *evState

	// traced is cfg.Trace != nil, hoisted so hot-loop emit sites skip
	// building TraceEvent values on untraced runs. lint:cold
	traced bool

	// Telemetry sampling state (see sample.go); sampling is cfg.Sample !=
	// nil, hoisted like traced so the unsampled cycle loop never branches
	// into frame assembly. The scratch frame is the only allocation.
	// lint:cold
	sampling      bool
	nextSample    int
	sampleScratch []LinkCounters
	sampleFrame   SampleFrame
	delivered     int // completed target deliveries (root computes + bcast arrivals)
	reduceFlits   int // FlitsSent split: reduce-phase injections
	reissuedTotal int // elements re-issued across all recovery rounds
	// lastFaultCycle / lastRecoverCycle are the RunCounters gauges, -1
	// until the first event.
	lastFaultCycle   int
	lastRecoverCycle int

	// outputs[v] is node v's assembled m-element result, written in place
	// at delivery time (broadcast arrival or root-local compute). All rows
	// share one contiguous backing array.
	outputs [][]int64

	// engineUsed[v] counts reduction flits produced by router v this
	// cycle, compared against cfg.EngineRate when it is non-zero.
	engineUsed []int

	// Fault-engine state; zero-valued and untouched on fault-free runs.
	// lint:cold
	faultsOn    bool
	faultActive []bool          // per plan fault: currently in its window
	stalled     []bool          // per node: reduction engine frozen
	deadTree    []bool          // per forest tree: aborted by recovery
	quarantined map[[2]int]bool // undirected links detected as failed

	result Result
}

// linkAt resolves a directed link through the CSR row index; nil when the
// pair carries no flow. Valid only after freeze. O(log degree), used by
// the fault/recovery paths only — never by the advance loops.
func (s *sim) linkAt(from, to int) *link {
	lo, hi := int(s.rowStart[from]), int(s.rowStart[from+1])
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s.links[mid].to < to {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < int(s.rowStart[from+1]) && s.links[lo].to == to {
		return s.links[lo]
	}
	return nil
}

func newSim(spec Spec, cfg Config) (*sim, error) {
	g := spec.Topology
	if g == nil {
		return nil, fmt.Errorf("netsim: nil topology")
	}
	n := g.N()
	if len(spec.Forest) == 0 {
		return nil, fmt.Errorf("netsim: empty forest")
	}
	if len(spec.Split) != len(spec.Forest) {
		return nil, fmt.Errorf("netsim: %d split entries for %d trees", len(spec.Split), len(spec.Forest))
	}
	if len(spec.Inputs) != n {
		return nil, fmt.Errorf("netsim: %d input vectors for %d nodes", len(spec.Inputs), n)
	}
	if spec.Op < OpAllreduce || spec.Op > OpBroadcast {
		return nil, fmt.Errorf("netsim: unknown op %v", spec.Op)
	}
	s := &sim{spec: spec, cfg: cfg, n: n, linkMap: make(map[[2]int]*link),
		engineUsed: make([]int, n), traced: cfg.Trace != nil}
	s.offsets = make([]int, 0, len(spec.Forest))
	s.jobs = make([]*job, 0, len(spec.Forest))
	for i, t := range spec.Forest {
		if err := t.ValidateSpanning(g); err != nil {
			return nil, fmt.Errorf("netsim: tree %d: %w", i, err)
		}
		if spec.Split[i] < 0 {
			return nil, fmt.Errorf("netsim: negative split for tree %d", i)
		}
		s.offsets = append(s.offsets, s.m)
		s.m += spec.Split[i]
	}
	for v, in := range spec.Inputs {
		if len(in) != s.m {
			return nil, fmt.Errorf("netsim: node %d input length %d, want %d", v, len(in), s.m)
		}
	}
	if cfg.Faults != nil {
		if spec.Op != OpAllreduce {
			return nil, fmt.Errorf("netsim: fault injection requires OpAllreduce, got %v", spec.Op)
		}
		for i, f := range cfg.Faults.Faults {
			if f.IsLink() {
				if f.U >= n || f.V >= n {
					return nil, fmt.Errorf("netsim: fault %d: link %d-%d outside %d-node topology", i, f.U, f.V, n)
				}
			} else if f.Node >= n {
				return nil, fmt.Errorf("netsim: fault %d: node %d outside %d-node topology", i, f.Node, n)
			}
		}
		s.faultsOn = true
		s.faultActive = make([]bool, len(cfg.Faults.Faults))
		s.stalled = make([]bool, n)
		s.deadTree = make([]bool, len(spec.Forest))
		s.quarantined = make(map[[2]int]bool)
	}

	// One contiguous backing array for all n result rows.
	outBack := make([]int64, n*s.m)
	s.outputs = make([][]int64, n)
	for v := 0; v < n; v++ {
		s.outputs[v] = outBack[v*s.m : (v+1)*s.m : (v+1)*s.m]
	}
	for ti := range spec.Forest {
		s.addStream(ti, s.offsets[ti], spec.Split[ti])
	}
	s.result.TreeDone = make([]int, len(spec.Forest))
	s.result.TreeReduceDone = make([]int, len(spec.Forest))
	for i := range s.result.TreeDone {
		s.result.TreeDone[i] = -1
		if spec.Op == OpBroadcast {
			s.result.TreeReduceDone[i] = -1 // no reduce phase
		}
		s.checkJobDone(s.jobs[i], 0) // zero-split or trivially-complete trees
	}

	// Freeze a deterministic link order for the cycle loop.
	keys := make([][2]int, 0, len(s.linkMap))
	for k := range s.linkMap {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	s.links = make([]*link, 0, len(keys))
	for _, k := range keys {
		s.links = append(s.links, s.linkMap[k])
	}
	s.linkMap = nil

	// Replace the construction map with the CSR row index the recovery
	// re-issues resolve through, and give every link a pipeline sized for
	// its maximum in-flight load (LinkBandwidth injections per cycle, each
	// airborne LinkLatency cycles) so injection never grows the backing
	// array.
	s.rowStart = make([]int32, n+1)
	for _, l := range s.links {
		s.rowStart[l.from+1]++
	}
	for v := 0; v < n; v++ {
		s.rowStart[v+1] += s.rowStart[v]
	}
	bw := cfg.LinkBandwidth
	if bw == 0 {
		bw = 1
	}
	for id, l := range s.links {
		l.id = int32(id)
		l.pipeline = make([]inflight, 0, bw*cfg.LinkLatency)
	}
	s.frozen = true
	s.initSampling()
	if cfg.Engine == EngineEvent {
		s.initEvent()
	}
	return s, nil
}

// addFlow registers a flow with its directed link. After the link set is
// frozen (recovery re-issues), the link must already exist — surviving
// trees only use links their initial flows created — and is resolved
// through the dense index table instead of the construction map.
func (s *sim) addFlow(f *flow) *flow {
	var l *link
	if s.frozen {
		l = s.linkAt(f.from, f.to)
		if l == nil {
			panic(fmt.Sprintf("netsim: internal: re-issue on unknown link %d→%d", f.from, f.to))
		}
	} else {
		key := [2]int{f.from, f.to}
		var ok bool
		l, ok = s.linkMap[key]
		if !ok {
			l = &link{from: f.from, to: f.to}
			s.linkMap[key] = l
		}
	}
	l.flows = append(l.flows, f)
	f.ln = l
	return f
}

// addStream builds one job — the collective for the contiguous global
// range [goff, goff+mt) over forest tree ti — together with its per-node
// state and flows. It is used both for the initial Equation 2 split and
// for recovery re-issues, so flow creation order (ascending vertex,
// reduce before broadcast) is part of the determinism contract.
//
// All per-node state, all flows, and all receive buffers of the job live
// in three contiguous blocks allocated up front: a tree contributes n−1
// edges per active phase, and credit flow caps every buffer at VCDepth
// flits, so the sizes are exact.
func (s *sim) addStream(ti, goff, mt int) *job {
	t := s.spec.Forest[ti]
	j := &job{idx: len(s.jobs), tree: ti, goff: goff, m: mt, nodes: make([]nodeTree, s.n)}
	for v := 0; v < s.n; v++ {
		j.nodes[v] = nodeTree{
			parent: t.Parent[v],
			seg:    s.spec.Inputs[v][goff : goff+mt],
		}
	}
	withReduce := s.spec.Op == OpAllreduce || s.spec.Op == OpReduce
	withBcast := s.spec.Op == OpAllreduce || s.spec.Op == OpBroadcast
	phases := 0
	if withReduce {
		phases++
	}
	if withBcast {
		phases++
	}
	nflows := phases * (s.n - 1)
	flowBlock := make([]flow, 0, nflows)
	bufBlock := make([]int64, nflows*s.cfg.VCDepth)
	newFlow := func(fl flow) *flow {
		i := len(flowBlock)
		fl.buf = bufBlock[i*s.cfg.VCDepth : i*s.cfg.VCDepth : (i+1)*s.cfg.VCDepth]
		flowBlock = append(flowBlock, fl)
		return &flowBlock[i]
	}
	for v := 0; v < s.n; v++ {
		nt := &j.nodes[v]
		p := t.Parent[v]
		if p >= 0 {
			pt := &j.nodes[p]
			if withReduce {
				nt.redOut = s.addFlow(newFlow(flow{j: j, tree: ti, phase: phaseReduce,
					from: v, to: p, m: mt, snd: nt, rcv: pt}))
				pt.redIn = append(pt.redIn, nt.redOut)
			}
			if withBcast {
				nt.bcastIn = s.addFlow(newFlow(flow{j: j, tree: ti, phase: phaseBcast,
					from: p, to: v, m: mt, snd: pt, rcv: nt}))
				pt.bcastOut = append(pt.bcastOut, nt.bcastIn)
			}
		} else {
			// The root's reduction-engine output is the root's result row:
			// both were always written with identical values at identical
			// times, so they share the outputs storage (and recovery
			// re-issues reuse it instead of allocating fresh scratch).
			nt.rootResult = s.outputs[v][goff : goff+mt]
			if s.spec.Op == OpBroadcast {
				// The root sources its own input; it is trivially done.
				copy(nt.rootResult, nt.seg)
				nt.rootComputed = mt
				nt.delivered = mt
			}
		}
		// Completion targets per op: everyone for allreduce/broadcast,
		// only the root for reduce.
		switch s.spec.Op {
		case OpReduce:
			if p < 0 {
				nt.target = mt
			}
		default:
			nt.target = mt
		}
		s.pending += nt.target - nt.delivered
		j.remaining += nt.target - nt.delivered
	}
	// Seed the event engine's incremental minima (see nodeTree): every
	// in-stream starts at arrived == 0 and every out-stream at sent == 0,
	// so the census is len at minimum 0; empty sets take the sentinel the
	// fast paths expect. Harmless under EngineCycle, which never reads
	// these fields, and recovery re-issues pass through here too.
	for v := 0; v < s.n; v++ {
		nt := &j.nodes[v]
		nt.redMinCnt = len(nt.redIn)
		if len(nt.bcastOut) == 0 {
			nt.bcastMin = evInf
		} else {
			nt.bcastMinCnt = len(nt.bcastOut)
		}
	}
	s.jobs = append(s.jobs, j)
	return j
}

// reduceReady returns how many reduced flits node nt could emit so far:
// bounded by the slowest child stream (its own input is always available).
func (nt *nodeTree) reduceReady(m int) int {
	ready := m
	for _, cf := range nt.redIn {
		if cf.arrived < ready {
			ready = cf.arrived
		}
	}
	return ready
}

// senderReady returns how many flits the sender of f has available to
// inject.
func (s *sim) senderReady(f *flow) int {
	nt := f.snd
	if f.phase == phaseReduce {
		return nt.reduceReady(f.m)
	}
	// Broadcast: the root sources from its reduction engine, everyone else
	// from the stream received from their parent.
	if nt.bcastIn == nil {
		return nt.rootComputed
	}
	return nt.bcastIn.arrived
}

// flitValue produces the value of flit k on flow f at injection time.
func (s *sim) flitValue(f *flow, k int) int64 {
	nt := f.snd
	if f.phase == phaseReduce {
		v := nt.seg[k]
		for _, cf := range nt.redIn {
			v += cf.at(k)
		}
		return v
	}
	if nt.bcastIn == nil {
		return nt.rootResult[k]
	}
	return nt.bcastIn.at(k)
}

// updateConsumed advances every flow's consumed counter (credit release)
// from the receiver's progress, and trims buffers.
func (s *sim) updateConsumed() {
	for _, l := range s.links {
		for _, f := range l.flows {
			if f.consumed >= f.m {
				continue // stream fully retired
			}
			nt := f.rcv
			var c int
			if f.phase == phaseReduce {
				if nt.redOut != nil {
					// A reduced flit k is retired from each child buffer
					// when the combined flit k departs toward the parent.
					c = nt.redOut.sent
				} else {
					// Root: retired when the reduction engine computes it.
					c = nt.rootComputed
				}
			} else {
				// Broadcast buffer at v is retired when flit k has been
				// forwarded to all of v's children (leaves retire on
				// arrival; local delivery copies the value eagerly).
				c = f.arrived
				for _, of := range nt.bcastOut {
					if of.sent < c {
						c = of.sent
					}
				}
			}
			if c > f.consumed {
				l.curBuf -= c - f.consumed
				f.consumed = c
				f.dropTo(c)
			}
		}
	}
}

// rootCompute advances every root reduction engine by at most one flit per
// job per cycle (link rate), recording the final value and delivering it
// locally.
func (s *sim) rootCompute(now int) {
	if s.spec.Op == OpBroadcast {
		return // roots already hold their source data
	}
	// The reduction engine runs at link rate: up to LinkBandwidth flits
	// per job per cycle (§5.1), unless EngineRate caps total output.
	perJob := s.cfg.LinkBandwidth
	if perJob == 0 {
		perJob = 1
	}
	for _, j := range s.jobs {
		if j.dead || j.done {
			continue
		}
		root := s.spec.Forest[j.tree].Root
		if s.faultsOn && s.stalled[root] {
			continue
		}
		nt := &j.nodes[root]
		mt := j.m
		for slot := 0; slot < perJob; slot++ {
			if nt.rootComputed >= mt {
				break
			}
			if s.cfg.EngineRate > 0 && s.engineUsed[root] >= s.cfg.EngineRate {
				break
			}
			k := nt.rootComputed
			ready := true
			for _, cf := range nt.redIn {
				if cf.arrived <= k {
					ready = false
					break
				}
			}
			if !ready {
				break
			}
			v := nt.seg[k]
			for _, cf := range nt.redIn {
				v += cf.at(k)
			}
			// rootResult aliases s.outputs[root][goff:goff+mt], so this one
			// write is both the engine output and the local delivery.
			nt.rootResult[k] = v
			nt.rootComputed++
			if nt.rootComputed == mt {
				s.result.TreeReduceDone[j.tree] = now
			}
			nt.delivered++
			if s.sampling {
				s.delivered++
			}
			s.engineUsed[root]++
			s.pending--
			j.remaining--
			if s.traced {
				s.emit(TraceEvent{Cycle: now, Kind: TraceRootCompute, Tree: j.tree,
					From: root, To: root, Flit: k, Value: v, Job: j.idx})
			}
			s.checkJobDone(j, now)
		}
	}
}

// noteStall records a credit stall: the stream has a flit ready but its
// VC window is full. Each stream and each link count at most one stall
// per cycle, because the arbitration scan may revisit a blocked flow.
func (s *sim) noteStall(l *link, f *flow, now int) {
	if f.stallCycle == now {
		return
	}
	f.stallCycle = now
	if l.stallMark != now {
		l.stallMark = now
		l.stallCycles++
	}
	s.emit(TraceEvent{Cycle: now, Kind: TraceStall, Tree: f.tree, Phase: f.phase,
		From: f.from, To: f.to, Flit: f.sent, Value: int64(f.sent - f.consumed), Job: f.j.idx})
}

// checkJobDone marks a completed job and, when it was the last unfinished
// job on its tree, records the tree's completion cycle. The per-job
// remaining counter makes the completion test O(1) per delivery.
func (s *sim) checkJobDone(j *job, now int) {
	if j.done || j.dead || j.remaining > 0 {
		return
	}
	j.done = true
	for _, o := range s.jobs {
		if o.tree == j.tree && !o.dead && !o.done {
			return
		}
	}
	s.result.TreeDone[j.tree] = now
}

func (s *sim) run() (*Result, error) {
	var now int
	var err error
	if s.cfg.Engine == EngineEvent {
		now, err = s.eventLoop()
	} else {
		now, err = s.cycleLoop()
	}
	if err != nil {
		return nil, err
	}
	return s.finalize(now)
}

// cycleLoop advances the simulation one cycle at a time until every flit
// is delivered, returning the cycle count. This is the simulator's hot
// path: everything reachable from here must stay allocation-free outside
// the cold tracing/sampling/fault branches.
//
//lint:hotpath per-cycle simulation loop; allocation here scales with cycles × links
func (s *sim) cycleLoop() (int, error) {
	now := 0
	idle := 0
	for s.pending > 0 {
		now++
		progressed := false
		for i := range s.engineUsed {
			s.engineUsed[i] = 0
		}

		// 0. Fault plan transitions: fail/heal links, start/stop
		//    degradation windows and engine stalls.
		if s.faultsOn {
			s.applyFaults(now)
		}

		// 1. Deliver flits whose pipeline delay expires this cycle.
		for _, l := range s.links {
			for l.pipeHead < len(l.pipeline) && l.pipeline[l.pipeHead].arrive <= now {
				fl := l.pipeline[l.pipeHead]
				l.pipeHead++
				f := fl.f
				if f.lost {
					// The stream already dropped an earlier flit: this one
					// is out of sequence and must not land at the wrong
					// prefix index. Discard; recovery re-issues the range.
					s.result.DroppedFlits++
					l.dropped++
					s.emit(TraceEvent{Cycle: now, Kind: TraceDrop, Tree: f.tree, Phase: f.phase,
						From: f.from, To: f.to, Flit: -1, Value: fl.val, Job: f.j.idx})
					continue
				}
				f.push(fl.val)
				l.curBuf++
				s.result.DeliveredFlits++
				k := f.arrived
				f.arrived++
				if s.faultsOn && f.sentAtLen() > 0 {
					f.popSentAt()
				}
				if s.traced {
					s.emit(TraceEvent{Cycle: now, Kind: TraceArrive, Tree: f.tree, Phase: f.phase,
						From: f.from, To: f.to, Flit: k, Value: fl.val, Job: f.j.idx})
				}
				if f.phase == phaseBcast {
					// Local delivery on arrival.
					nt := f.rcv
					s.outputs[f.to][f.j.goff+k] = fl.val
					nt.delivered++
					if s.sampling {
						s.delivered++
					}
					s.pending--
					f.j.remaining--
					s.checkJobDone(f.j, now)
				}
				progressed = true
			}
			if l.pipeHead == len(l.pipeline) && l.pipeHead > 0 {
				l.pipeline = l.pipeline[:0]
				l.pipeHead = 0
			}
		}

		// 1b. Loss detection and recovery: virtual channels whose oldest
		//     outstanding flit is overdue identify failed links; the trees
		//     crossing them abort and re-issue over the survivors.
		if s.faultsOn && !s.cfg.DisableRecovery {
			recovered, err := s.detectAndRecover(now)
			if err != nil {
				return 0, err
			}
			if recovered {
				progressed = true
			}
		}

		// 2. Root reduction engines run at link rate.
		before := s.pending
		s.rootCompute(now)
		if s.pending != before {
			progressed = true
		}

		// 3. Credit release from receiver progress.
		s.updateConsumed()

		// 4. Link arbitration: LinkBandwidth flits per directed link per
		//    cycle (default 1), round-robin over virtual channels with
		//    data and credit.
		linkBW := s.cfg.LinkBandwidth
		if linkBW == 0 {
			linkBW = 1
		}
		for _, l := range s.links {
			if l.degraded {
				// Token bucket: refill at the degraded rate, burst capped
				// so idle cycles cannot bank unbounded credit.
				l.degBudget += l.degRate
				if burst := maxf(1, l.degRate); l.degBudget > burst {
					l.degBudget = burst
				}
			}
			nf := len(l.flows)
			sentThisCycle := 0
			for i := 0; i < nf && sentThisCycle < linkBW; i++ {
				if l.degraded && l.degBudget < 1 {
					break // metered out this cycle
				}
				f := l.flows[(l.rr+i)%nf]
				if f.sent >= f.m {
					continue // stream finished
				}
				if s.senderReady(f) <= f.sent {
					continue // nothing to send yet
				}
				if f.sent-f.consumed >= s.cfg.VCDepth {
					s.noteStall(l, f, now)
					continue // no credit
				}
				if f.phase == phaseReduce && s.faultsOn && s.stalled[f.from] &&
					len(f.snd.redIn) > 0 {
					continue // combining engine frozen by an engine-stall fault
				}
				if f.phase == phaseReduce && s.cfg.EngineRate > 0 {
					// A non-leaf sender combines child flits as it
					// transmits — that production consumes engine slots.
					if len(f.snd.redIn) > 0 {
						if s.engineUsed[f.from] >= s.cfg.EngineRate {
							continue
						}
						s.engineUsed[f.from]++
					}
				}
				val := s.flitValue(f, f.sent)
				f.sent++
				if s.faultsOn {
					f.pushSentAt(now, s.cfg.VCDepth)
				}
				s.result.FlitsSent++
				if s.sampling && f.phase == phaseReduce {
					s.reduceFlits++
				}
				if s.traced {
					s.emit(TraceEvent{Cycle: now, Kind: TraceSend, Tree: f.tree, Phase: f.phase,
						From: f.from, To: f.to, Flit: f.sent - 1, Value: val, Job: f.j.idx})
				}
				if l.failed {
					// The physical layer fails silently: the sender spends
					// its cycle, the flit evaporates, the stream is broken.
					f.lost = true
					s.result.DroppedFlits++
					l.dropped++
					s.emit(TraceEvent{Cycle: now, Kind: TraceDrop, Tree: f.tree, Phase: f.phase,
						From: f.from, To: f.to, Flit: f.sent - 1, Value: val, Job: f.j.idx})
				} else {
					l.pipePush(inflight{f: f, val: val, arrive: now + s.cfg.LinkLatency})
				}
				if l.degraded {
					l.degBudget--
				}
				l.rr = (l.rr + i + 1) % nf
				sentThisCycle++
				progressed = true
				// Restart the round-robin scan so fairness is preserved
				// across the remaining budget.
				i = -1
				nf = len(l.flows)
			}
			l.flits += sentThisCycle
			if sentThisCycle > 0 {
				l.busyCycles++
			}
		}

		// Track peak buffering (globally and per link) for the
		// resource-requirement discussion, and publish occupancy changes
		// to the trace. Occupancy is maintained incrementally on push and
		// retire, so this pass reads one counter per link.
		buffered := 0
		for _, l := range s.links {
			lb := l.curBuf
			buffered += lb
			if lb > l.peakBuf {
				l.peakBuf = lb
			}
			if lb != l.lastBuf {
				l.lastBuf = lb
				s.emit(TraceEvent{Cycle: now, Kind: TraceBufferOccupancy,
					Tree: -1, Phase: -1, From: l.from, To: l.to, Flit: -1, Value: int64(lb), Job: -1})
			}
		}
		if buffered > s.result.PeakBufferFlits {
			s.result.PeakBufferFlits = buffered
		}

		// Telemetry sample boundary: hand the cumulative counters to the
		// hook. Cold unless sampling is enabled, and O(links) only at
		// boundary cycles.
		if s.sampling && now >= s.nextSample {
			s.sampleNow(now, false)
			s.nextSample = now + s.cfg.SampleEvery
		}

		if progressed {
			idle = 0
		} else {
			idle++
			if idle > s.cfg.ProgressTimeout {
				return 0, s.progressError(now, idle)
			}
		}
	}
	return now, nil
}

// finalize runs the post-loop invariant checks and assembles the Result.
// It is off the hot path: per-link summaries may allocate freely.
func (s *sim) finalize(now int) (*Result, error) {
	s.result.Cycles = now

	// Final telemetry frame: closes the partial tail window and flushes
	// downsampling accumulators. Emitted even when the last cycle was a
	// boundary — consumers treat a zero-duration final frame as a flush
	// marker.
	if s.sampling {
		s.sampleNow(now, true)
	}

	// Post-run invariants: every stream fully drained, no flit stranded in
	// a pipeline or buffer, all credits returned. A violation indicates a
	// simulator bug, not a workload property, so it is an error.
	s.updateConsumed()
	for _, l := range s.links {
		if l.pipeLen() != 0 {
			return nil, fmt.Errorf("netsim: internal: %d flits stranded in a link pipeline", l.pipeLen())
		}
		for _, f := range l.flows {
			if f.sent != f.m || f.arrived != f.m {
				return nil, fmt.Errorf("netsim: internal: flow tree=%d phase=%d %d→%d ended at sent=%d arrived=%d of %d",
					f.tree, f.phase, f.from, f.to, f.sent, f.arrived, f.m)
			}
			if f.consumed != f.m || f.bufLen() != 0 {
				return nil, fmt.Errorf("netsim: internal: flow tree=%d %d→%d left %d flits buffered",
					f.tree, f.from, f.to, f.bufLen())
			}
		}
	}

	// Flit conservation: every link transmission ends exactly once, as an
	// accepted arrival or as one of the four drop sites (injection into a
	// failed link, pipeline purge at fault activation, out-of-sequence
	// discard, abort purge at recovery).
	if s.result.FlitsSent != s.result.DeliveredFlits+s.result.DroppedFlits {
		return nil, fmt.Errorf("netsim: internal: flit conservation violated: sent=%d delivered=%d dropped=%d",
			s.result.FlitsSent, s.result.DeliveredFlits, s.result.DroppedFlits)
	}

	s.result.Outputs = s.outputs
	s.result.Arena = s.arenaFootprint()

	// Post-recovery bandwidth: the work outstanding at the last recovery
	// over the cycles the survivors took to finish it.
	if nr := len(s.result.Recoveries); nr > 0 {
		last := s.result.Recoveries[nr-1]
		if s.result.Cycles > last.Cycle {
			s.result.PostRecoveryBW = float64(last.Remaining) / float64(s.result.Cycles-last.Cycle)
		}
	}

	// Per-link summary; s.links is already in (from, to) order.
	s.result.LinkStats = make([]LinkStat, 0, len(s.links))
	for _, l := range s.links {
		treeSet := make(map[int]bool)
		for _, f := range l.flows {
			treeSet[f.tree] = true
		}
		ls := LinkStat{
			From: l.from, To: l.to,
			Flits:           l.flits,
			BusyCycles:      l.busyCycles,
			StallCycles:     l.stallCycles,
			Dropped:         l.dropped,
			PeakBufferFlits: l.peakBuf,
			Trees:           len(treeSet),
		}
		if now > 0 {
			ls.Utilization = float64(l.busyCycles) / float64(now)
		}
		s.result.LinkStats = append(s.result.LinkStats, ls)
	}
	return &s.result, nil
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// ExpectedOutput computes the reference element-wise sum of the inputs,
// for verification.
func ExpectedOutput(inputs [][]int64) []int64 {
	if len(inputs) == 0 {
		return nil
	}
	out := make([]int64, len(inputs[0]))
	for _, in := range inputs {
		for k, v := range in {
			out[k] += v
		}
	}
	return out
}

// UsedDirectedLinks returns the number of distinct directed links carrying
// at least one flow — a sanity statistic for embeddings.
func UsedDirectedLinks(spec Spec) int {
	seen := make(map[[2]int]bool)
	for _, t := range spec.Forest {
		for v, p := range t.Parent {
			if p >= 0 {
				seen[[2]int{v, p}] = true
				seen[[2]int{p, v}] = true
			}
		}
	}
	return len(seen)
}
