package netsim

import (
	"fmt"
	"sort"
)

// Run executes one in-network Allreduce and returns the cycle count and the
// value-verified outputs. It validates the spec first: every tree must be a
// spanning tree of the topology, the split must match the input length, and
// all nodes must provide equal-length inputs.
func Run(spec Spec, cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	s, err := newSim(spec, cfg)
	if err != nil {
		return nil, err
	}
	return s.run()
}

type sim struct {
	spec Spec
	cfg  Config

	n       int
	m       int   // total vector length
	offsets []int // segment offset per tree

	linkMap map[[2]int]*link // directed (from,to) → link
	links   []*link          // same links in deterministic order
	nodes   [][]*nodeTree    // nodes[tree][vertex]
	pending int              // flit deliveries still outstanding (all nodes, all trees)

	// engineUsed[v] counts reduction flits produced by router v this
	// cycle, compared against cfg.EngineRate when it is non-zero.
	engineUsed []int

	result Result
}

func newSim(spec Spec, cfg Config) (*sim, error) {
	g := spec.Topology
	if g == nil {
		return nil, fmt.Errorf("netsim: nil topology")
	}
	n := g.N()
	if len(spec.Forest) == 0 {
		return nil, fmt.Errorf("netsim: empty forest")
	}
	if len(spec.Split) != len(spec.Forest) {
		return nil, fmt.Errorf("netsim: %d split entries for %d trees", len(spec.Split), len(spec.Forest))
	}
	if len(spec.Inputs) != n {
		return nil, fmt.Errorf("netsim: %d input vectors for %d nodes", len(spec.Inputs), n)
	}
	s := &sim{spec: spec, cfg: cfg, n: n, linkMap: make(map[[2]int]*link), engineUsed: make([]int, n)}
	for i, t := range spec.Forest {
		if err := t.ValidateSpanning(g); err != nil {
			return nil, fmt.Errorf("netsim: tree %d: %w", i, err)
		}
		if spec.Split[i] < 0 {
			return nil, fmt.Errorf("netsim: negative split for tree %d", i)
		}
		s.offsets = append(s.offsets, s.m)
		s.m += spec.Split[i]
	}
	for v, in := range spec.Inputs {
		if len(in) != s.m {
			return nil, fmt.Errorf("netsim: node %d input length %d, want %d", v, len(in), s.m)
		}
	}

	getLink := func(from, to int) *link {
		key := [2]int{from, to}
		l, ok := s.linkMap[key]
		if !ok {
			l = &link{from: from, to: to}
			s.linkMap[key] = l
		}
		return l
	}
	addFlow := func(f *flow) *flow {
		l := getLink(f.from, f.to)
		l.flows = append(l.flows, f)
		return f
	}

	s.nodes = make([][]*nodeTree, len(spec.Forest))
	for ti, t := range spec.Forest {
		mt := spec.Split[ti]
		off := s.offsets[ti]
		s.nodes[ti] = make([]*nodeTree, n)
		for v := 0; v < n; v++ {
			nt := &nodeTree{
				parent: t.Parent[v],
				seg:    spec.Inputs[v][off : off+mt],
				out:    make([]int64, mt),
			}
			s.nodes[ti][v] = nt
		}
		withReduce := spec.Op == OpAllreduce || spec.Op == OpReduce
		withBcast := spec.Op == OpAllreduce || spec.Op == OpBroadcast
		if spec.Op < OpAllreduce || spec.Op > OpBroadcast {
			return nil, fmt.Errorf("netsim: unknown op %v", spec.Op)
		}
		for v := 0; v < n; v++ {
			nt := s.nodes[ti][v]
			p := t.Parent[v]
			if p >= 0 {
				if withReduce {
					nt.redOut = addFlow(&flow{tree: ti, phase: phaseReduce, from: v, to: p, m: mt})
					s.nodes[ti][p].redIn = append(s.nodes[ti][p].redIn, nt.redOut)
				}
				if withBcast {
					nt.bcastIn = addFlow(&flow{tree: ti, phase: phaseBcast, from: p, to: v, m: mt})
					s.nodes[ti][p].bcastOut = append(s.nodes[ti][p].bcastOut, nt.bcastIn)
				}
			} else {
				nt.rootResult = make([]int64, mt)
				if spec.Op == OpBroadcast {
					// The root sources its own input; it is trivially done.
					copy(nt.rootResult, nt.seg)
					copy(nt.out, nt.seg)
					nt.rootComputed = mt
					nt.delivered = mt
				}
			}
			// Completion targets per op: everyone for allreduce/broadcast,
			// only the root for reduce.
			switch spec.Op {
			case OpReduce:
				if p < 0 {
					nt.target = mt
				}
			default:
				nt.target = mt
			}
			s.pending += nt.target - nt.delivered
		}
	}
	s.result.TreeDone = make([]int, len(spec.Forest))
	s.result.TreeReduceDone = make([]int, len(spec.Forest))
	for i := range s.result.TreeDone {
		s.result.TreeDone[i] = -1
		if spec.Op == OpBroadcast {
			s.result.TreeReduceDone[i] = -1 // no reduce phase
		}
		s.checkTreeDone(i, 0) // zero-split or trivially-complete trees
	}

	// Freeze a deterministic link order for the cycle loop.
	keys := make([][2]int, 0, len(s.linkMap))
	for k := range s.linkMap {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, k := range keys {
		s.links = append(s.links, s.linkMap[k])
	}
	return s, nil
}

// reduceReady returns how many reduced flits node nt could emit so far:
// bounded by the slowest child stream (its own input is always available).
func (nt *nodeTree) reduceReady(m int) int {
	ready := m
	for _, cf := range nt.redIn {
		if cf.arrived < ready {
			ready = cf.arrived
		}
	}
	return ready
}

// senderReady returns how many flits the sender of f has available to
// inject.
func (s *sim) senderReady(f *flow) int {
	nt := s.nodes[f.tree][f.from]
	if f.phase == phaseReduce {
		return nt.reduceReady(f.m)
	}
	// Broadcast: the root sources from its reduction engine, everyone else
	// from the stream received from their parent.
	if nt.bcastIn == nil {
		return nt.rootComputed
	}
	return nt.bcastIn.arrived
}

// flitValue produces the value of flit k on flow f at injection time.
func (s *sim) flitValue(f *flow, k int) int64 {
	nt := s.nodes[f.tree][f.from]
	if f.phase == phaseReduce {
		v := nt.seg[k]
		for _, cf := range nt.redIn {
			v += cf.at(k)
		}
		return v
	}
	if nt.bcastIn == nil {
		return nt.rootResult[k]
	}
	return nt.bcastIn.at(k)
}

// updateConsumed advances every flow's consumed counter (credit release)
// from the receiver's progress, and trims buffers.
func (s *sim) updateConsumed() {
	for _, l := range s.links {
		for _, f := range l.flows {
			nt := s.nodes[f.tree][f.to]
			var c int
			if f.phase == phaseReduce {
				if nt.redOut != nil {
					// A reduced flit k is retired from each child buffer
					// when the combined flit k departs toward the parent.
					c = nt.redOut.sent
				} else {
					// Root: retired when the reduction engine computes it.
					c = nt.rootComputed
				}
			} else {
				// Broadcast buffer at v is retired when flit k has been
				// forwarded to all of v's children (leaves retire on
				// arrival; local delivery copies the value eagerly).
				c = f.arrived
				for _, of := range nt.bcastOut {
					if of.sent < c {
						c = of.sent
					}
				}
			}
			if c > f.consumed {
				f.consumed = c
				f.dropTo(c)
			}
		}
	}
}

// rootCompute advances every root reduction engine by at most one flit per
// tree per cycle (link rate), recording the final value and delivering it
// locally.
func (s *sim) rootCompute(now int) {
	if s.spec.Op == OpBroadcast {
		return // roots already hold their source data
	}
	// The reduction engine runs at link rate: up to LinkBandwidth flits
	// per tree per cycle (§5.1), unless EngineRate caps total output.
	perTree := s.cfg.LinkBandwidth
	if perTree == 0 {
		perTree = 1
	}
	for ti := range s.nodes {
		root := s.spec.Forest[ti].Root
		nt := s.nodes[ti][root]
		mt := s.spec.Split[ti]
		for slot := 0; slot < perTree; slot++ {
			if nt.rootComputed >= mt {
				break
			}
			if s.cfg.EngineRate > 0 && s.engineUsed[root] >= s.cfg.EngineRate {
				break
			}
			k := nt.rootComputed
			ready := true
			for _, cf := range nt.redIn {
				if cf.arrived <= k {
					ready = false
					break
				}
			}
			if !ready {
				break
			}
			v := nt.seg[k]
			for _, cf := range nt.redIn {
				v += cf.at(k)
			}
			nt.rootResult[k] = v
			nt.out[k] = v
			nt.rootComputed++
			if nt.rootComputed == mt {
				s.result.TreeReduceDone[ti] = now
			}
			nt.delivered++
			s.engineUsed[root]++
			s.pending--
			s.emit(TraceEvent{Cycle: now, Kind: TraceRootCompute, Tree: ti,
				From: root, To: root, Flit: k, Value: v})
			s.checkTreeDone(ti, now)
		}
	}
}

// noteStall records a credit stall: the stream has a flit ready but its
// VC window is full. Each stream and each link count at most one stall
// per cycle, because the arbitration scan may revisit a blocked flow.
func (s *sim) noteStall(l *link, f *flow, now int) {
	if f.stallCycle == now {
		return
	}
	f.stallCycle = now
	if l.stallMark != now {
		l.stallMark = now
		l.stallCycles++
	}
	s.emit(TraceEvent{Cycle: now, Kind: TraceStall, Tree: f.tree, Phase: f.phase,
		From: f.from, To: f.to, Flit: f.sent, Value: int64(f.sent - f.consumed)})
}

func (s *sim) checkTreeDone(ti, now int) {
	if s.result.TreeDone[ti] >= 0 {
		return
	}
	for _, nt := range s.nodes[ti] {
		if nt.delivered < nt.target {
			return
		}
	}
	s.result.TreeDone[ti] = now
}

func (s *sim) run() (*Result, error) {
	now := 0
	idle := 0
	for s.pending > 0 {
		now++
		progressed := false
		for i := range s.engineUsed {
			s.engineUsed[i] = 0
		}

		// 1. Deliver flits whose pipeline delay expires this cycle.
		for _, l := range s.links {
			for len(l.pipeline) > 0 && l.pipeline[0].arrive <= now {
				fl := l.pipeline[0]
				l.pipeline = l.pipeline[1:]
				f := fl.f
				f.push(fl.val)
				k := f.arrived
				f.arrived++
				s.emit(TraceEvent{Cycle: now, Kind: TraceArrive, Tree: f.tree, Phase: f.phase,
					From: f.from, To: f.to, Flit: k, Value: fl.val})
				if f.phase == phaseBcast {
					// Local delivery on arrival.
					nt := s.nodes[f.tree][f.to]
					nt.out[k] = fl.val
					nt.delivered++
					s.pending--
					s.checkTreeDone(f.tree, now)
				}
				progressed = true
			}
		}

		// 2. Root reduction engines run at link rate.
		before := s.pending
		s.rootCompute(now)
		if s.pending != before {
			progressed = true
		}

		// 3. Credit release from receiver progress.
		s.updateConsumed()

		// 4. Link arbitration: LinkBandwidth flits per directed link per
		//    cycle (default 1), round-robin over virtual channels with
		//    data and credit.
		linkBW := s.cfg.LinkBandwidth
		if linkBW == 0 {
			linkBW = 1
		}
		for _, l := range s.links {
			nf := len(l.flows)
			sentThisCycle := 0
			for i := 0; i < nf && sentThisCycle < linkBW; i++ {
				f := l.flows[(l.rr+i)%nf]
				if f.sent >= f.m {
					continue // stream finished
				}
				if s.senderReady(f) <= f.sent {
					continue // nothing to send yet
				}
				if f.sent-f.consumed >= s.cfg.VCDepth {
					s.noteStall(l, f, now)
					continue // no credit
				}
				if f.phase == phaseReduce && s.cfg.EngineRate > 0 {
					// A non-leaf sender combines child flits as it
					// transmits — that production consumes engine slots.
					if len(s.nodes[f.tree][f.from].redIn) > 0 {
						if s.engineUsed[f.from] >= s.cfg.EngineRate {
							continue
						}
						s.engineUsed[f.from]++
					}
				}
				val := s.flitValue(f, f.sent)
				f.sent++
				l.pipeline = append(l.pipeline, inflight{f: f, val: val, arrive: now + s.cfg.LinkLatency})
				s.result.FlitsSent++
				s.emit(TraceEvent{Cycle: now, Kind: TraceSend, Tree: f.tree, Phase: f.phase,
					From: f.from, To: f.to, Flit: f.sent - 1, Value: val})
				l.rr = (l.rr + i + 1) % nf
				sentThisCycle++
				progressed = true
				// Restart the round-robin scan so fairness is preserved
				// across the remaining budget.
				i = -1
				nf = len(l.flows)
			}
			l.flits += sentThisCycle
			if sentThisCycle > 0 {
				l.busyCycles++
			}
		}

		// Track peak buffering (globally and per link) for the
		// resource-requirement discussion, and publish occupancy changes
		// to the trace.
		buffered := 0
		for _, l := range s.links {
			lb := 0
			for _, f := range l.flows {
				lb += len(f.buf)
			}
			buffered += lb
			if lb > l.peakBuf {
				l.peakBuf = lb
			}
			if lb != l.lastBuf {
				l.lastBuf = lb
				s.emit(TraceEvent{Cycle: now, Kind: TraceBufferOccupancy,
					Tree: -1, Phase: -1, From: l.from, To: l.to, Flit: -1, Value: int64(lb)})
			}
		}
		if buffered > s.result.PeakBufferFlits {
			s.result.PeakBufferFlits = buffered
		}

		if progressed {
			idle = 0
		} else {
			idle++
			if idle > s.cfg.ProgressTimeout {
				return nil, fmt.Errorf("netsim: no progress for %d cycles at cycle %d (%d flits pending)",
					idle, now, s.pending)
			}
		}
	}
	s.result.Cycles = now

	// Post-run invariants: every stream fully drained, no flit stranded in
	// a pipeline or buffer, all credits returned. A violation indicates a
	// simulator bug, not a workload property, so it is an error.
	s.updateConsumed()
	for _, l := range s.links {
		if len(l.pipeline) != 0 {
			return nil, fmt.Errorf("netsim: internal: %d flits stranded in a link pipeline", len(l.pipeline))
		}
		for _, f := range l.flows {
			if f.sent != f.m || f.arrived != f.m {
				return nil, fmt.Errorf("netsim: internal: flow tree=%d phase=%d %d→%d ended at sent=%d arrived=%d of %d",
					f.tree, f.phase, f.from, f.to, f.sent, f.arrived, f.m)
			}
			if f.consumed != f.m || len(f.buf) != 0 {
				return nil, fmt.Errorf("netsim: internal: flow tree=%d %d→%d left %d flits buffered",
					f.tree, f.from, f.to, len(f.buf))
			}
		}
	}

	s.result.Outputs = make([][]int64, s.n)
	for v := 0; v < s.n; v++ {
		out := make([]int64, s.m)
		for ti := range s.nodes {
			copy(out[s.offsets[ti]:], s.nodes[ti][v].out)
		}
		s.result.Outputs[v] = out
	}

	// Per-link summary; s.links is already in (from, to) order.
	s.result.LinkStats = make([]LinkStat, 0, len(s.links))
	for _, l := range s.links {
		treeSet := make(map[int]bool)
		for _, f := range l.flows {
			treeSet[f.tree] = true
		}
		ls := LinkStat{
			From: l.from, To: l.to,
			Flits:           l.flits,
			BusyCycles:      l.busyCycles,
			StallCycles:     l.stallCycles,
			PeakBufferFlits: l.peakBuf,
			Trees:           len(treeSet),
		}
		if now > 0 {
			ls.Utilization = float64(l.busyCycles) / float64(now)
		}
		s.result.LinkStats = append(s.result.LinkStats, ls)
	}
	return &s.result, nil
}

// ExpectedOutput computes the reference element-wise sum of the inputs,
// for verification.
func ExpectedOutput(inputs [][]int64) []int64 {
	if len(inputs) == 0 {
		return nil
	}
	out := make([]int64, len(inputs[0]))
	for _, in := range inputs {
		for k, v := range in {
			out[k] += v
		}
	}
	return out
}

// UsedDirectedLinks returns the number of distinct directed links carrying
// at least one flow — a sanity statistic for embeddings.
func UsedDirectedLinks(spec Spec) int {
	seen := make(map[[2]int]bool)
	for _, t := range spec.Forest {
		for v, p := range t.Parent {
			if p >= 0 {
				seen[[2]int{v, p}] = true
				seen[[2]int{p, v}] = true
			}
		}
	}
	return len(seen)
}
