package netsim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"polarfly/internal/graph"
	"polarfly/internal/trees"
)

// randomConnectedGraph builds a connected random graph: a random spanning
// tree plus extra random edges.
func randomConnectedGraph(rng *rand.Rand, n int, extra float64) *graph.Graph {
	g := graph.New(n)
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		g.AddEdge(perm[i], perm[rng.Intn(i)])
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < extra {
				g.AddEdge(i, j)
			}
		}
	}
	return g
}

// TestRandomForestsProduceCorrectSumsQuick fuzzes the simulator: random
// connected topologies, random BFS forests, random splits and random fabric
// parameters must always yield the exact element-wise sum at every node.
func TestRandomForestsProduceCorrectSumsQuick(t *testing.T) {
	prop := func(seed int64, nRaw, kRaw, mRaw, latRaw, vcRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw)%10 + 2
		k := int(kRaw)%3 + 1
		m := int(mRaw)%40 + k // at least one flit per tree
		lat := int(latRaw)%5 + 1
		vc := int(vcRaw)%6 + 1
		g := randomConnectedGraph(rng, n, 0.3)
		forest, err := trees.RandomForest(g, k, seed)
		if err != nil {
			return false
		}
		split := make([]int, k)
		rem := m
		for i := 0; i < k-1; i++ {
			split[i] = rng.Intn(rem - (k - 1 - i))
			rem -= split[i]
		}
		split[k-1] = rem
		spec := Spec{Topology: g, Forest: forest, Split: split, Inputs: randInputs(n, m, seed)}
		res, err := Run(spec, Config{LinkLatency: lat, VCDepth: vc})
		if err != nil {
			t.Logf("seed=%d n=%d k=%d: %v", seed, n, k, err)
			return false
		}
		want := ExpectedOutput(spec.Inputs)
		for v := range res.Outputs {
			for idx := range want {
				if res.Outputs[v][idx] != want[idx] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestFlitConservationQuick: total flits sent must equal exactly
// Σ_trees (reduce flits + broadcast flits) = Σ_i 2·(N−1)·m_i.
func TestFlitConservationQuick(t *testing.T) {
	prop := func(seed int64, nRaw, mRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw)%8 + 2
		m := int(mRaw)%30 + 1
		g := randomConnectedGraph(rng, n, 0.4)
		forest, err := trees.RandomForest(g, 2, seed)
		if err != nil {
			return false
		}
		spec := Spec{Topology: g, Forest: forest, Split: []int{m, m}, Inputs: randInputs(n, 2*m, seed)}
		res, err := Run(spec, Config{LinkLatency: 2, VCDepth: 3})
		if err != nil {
			return false
		}
		want := 2 * 2 * (n - 1) * m // 2 trees × (reduce+broadcast) × (N−1) links × m flits
		return res.FlitsSent == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
