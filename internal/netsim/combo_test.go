package netsim

import (
	"math/rand"
	"testing"

	"polarfly/internal/trees"
)

// TestFeatureInteractionMatrix exercises combinations of the simulator's
// orthogonal features — collective op, engine rate cap, trunked links,
// tracing, tight credits — on a shared multi-tree spec, checking value
// correctness and basic sanity for every combination.
func TestFeatureInteractionMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	g := randomConnectedGraph(rng, 9, 0.35)
	forest, err := trees.RandomForest(g, 2, 77)
	if err != nil {
		t.Fatal(err)
	}
	m := 48
	spec := Spec{Topology: g, Forest: forest, Split: []int{m, m},
		Inputs: randInputs(9, 2*m, 77)}

	for _, op := range []Op{OpAllreduce, OpReduce, OpBroadcast} {
		for _, engine := range []int{0, 1} {
			for _, linkBW := range []int{0, 2} {
				for _, vc := range []int{1, 6} {
					s := spec
					s.Op = op
					events := 0
					cfg := Config{
						LinkLatency:   2,
						VCDepth:       vc,
						EngineRate:    engine,
						LinkBandwidth: linkBW,
						Trace:         func(TraceEvent) { events++ },
					}
					res, err := Run(s, cfg)
					if err != nil {
						t.Fatalf("op=%v engine=%d bw=%d vc=%d: %v", op, engine, linkBW, vc, err)
					}
					if events == 0 || res.Cycles <= 0 {
						t.Fatalf("op=%v: degenerate run", op)
					}
					// Value checks per op.
					want := ExpectedOutput(s.Inputs)
					switch op {
					case OpAllreduce:
						for v := range res.Outputs {
							for k := range want {
								if res.Outputs[v][k] != want[k] {
									t.Fatalf("op=%v engine=%d bw=%d vc=%d: node %d wrong", op, engine, linkBW, vc, v)
								}
							}
						}
					case OpReduce:
						for ti, tr := range forest {
							off := ti * m
							for k := 0; k < m; k++ {
								if res.Outputs[tr.Root][off+k] != want[off+k] {
									t.Fatalf("op=%v: root %d wrong", op, tr.Root)
								}
							}
						}
					case OpBroadcast:
						for ti, tr := range forest {
							off := ti * m
							src := s.Inputs[tr.Root][off : off+m]
							for v := range res.Outputs {
								for k := 0; k < m; k++ {
									if res.Outputs[v][off+k] != src[k] {
										t.Fatalf("op=%v: node %d wrong", op, v)
									}
								}
							}
						}
					}
				}
			}
		}
	}
}
