package netsim

// Streaming telemetry sampling: every Config.SampleEvery cycles the
// simulator hands a SampleFrame of cumulative counters to the
// Config.Sample hook. The frame is a snapshot of counters the cycle loop
// maintains anyway (or keeps only when sampling is on), so the fault-free
// fast path pays nothing when the hook is absent — the same contract the
// traced flag gives Config.Trace — and a sampling run allocates only the
// fixed scratch frame at construction, never per cycle.
//
// Consumers (internal/tsdb) difference successive frames into fixed-size
// windows, so everything here is cumulative and monotonic: window values
// are exact counter deltas and per-link window sums reconcile exactly
// against the end-of-run Result.LinkStats.

// LinkCounters is the cumulative per-directed-link telemetry at a sample
// boundary. All counters are since cycle 0.
type LinkCounters struct {
	// From and To identify the directed link (same order as
	// Result.LinkStats).
	From, To int
	// Flits is the number of flits injected into the link.
	Flits int
	// BusyCycles counts cycles with at least one injection.
	BusyCycles int
	// StallCycles counts cycles with at least one credit-stalled VC.
	StallCycles int
	// Dropped counts flits destroyed on this link by faults: purged from
	// the pipeline at activation, swallowed at injection, discarded on
	// broken-stream arrival, or purged when their tree was aborted.
	Dropped int
	// Buffered is the current total receive-buffer occupancy across the
	// link's virtual channels (a gauge, not a counter).
	Buffered int
	// PeakBuffered is the maximum Buffered observed so far.
	PeakBuffered int
}

// RunCounters is the cumulative run-level telemetry at a sample boundary.
type RunCounters struct {
	// FlitsSent mirrors Result.FlitsSent: total link injections.
	FlitsSent int
	// ReduceFlits and BcastFlits split FlitsSent by phase.
	ReduceFlits int
	BcastFlits  int
	// Delivered counts completed target deliveries: root-engine outputs
	// plus broadcast arrivals. A fault-free OpAllreduce run ends with
	// N·m delivered.
	Delivered int
	// Dropped mirrors Result.DroppedFlits.
	Dropped int
	// Reissued is the total number of vector elements re-issued over
	// surviving trees by recovery rounds so far.
	Reissued int
	// Recoveries is the number of recovery rounds completed so far.
	Recoveries int
	// LastFaultCycle is the activation cycle of the most recent fault
	// from the plan (-1 before any fault activates). LastRecoverCycle is
	// the cycle of the most recent recovery round (-1 before any). They
	// are last-event-timestamp gauges: a telemetry consumer detects fault
	// onset and measures recovery latency from their transitions alone,
	// without access to the trace stream.
	LastFaultCycle   int
	LastRecoverCycle int
	// BufferedFlits is the current total buffered flits across all
	// virtual channels; PeakBufferFlits the maximum so far.
	BufferedFlits   int
	PeakBufferFlits int
}

// SampleFrame is one telemetry sample, delivered to Config.Sample at
// every SampleEvery-cycle boundary and once more after the run completes.
// The frame and its Links slice are reused between calls — the hook must
// copy anything it retains.
type SampleFrame struct {
	// Cycle is the simulated cycle the frame describes.
	Cycle int
	// Final marks the post-run frame. Its Cycle is the run's last cycle,
	// which may coincide with the previous boundary frame; consumers
	// treat a zero-duration final frame as a flush marker.
	Final bool
	// Links holds the cumulative per-link counters, ordered by (From,
	// To) exactly like Result.LinkStats.
	Links []LinkCounters
	// Run holds the cumulative run-level counters.
	Run RunCounters
}

// initSampling allocates the reusable sample frame. Called at freeze
// time, after the deterministic link order exists; the per-link slice is
// the only allocation sampling ever makes.
func (s *sim) initSampling() {
	s.sampling = s.cfg.Sample != nil
	s.lastFaultCycle = -1
	s.lastRecoverCycle = -1
	if !s.sampling {
		return
	}
	s.sampleScratch = make([]LinkCounters, len(s.links))
	for i, l := range s.links {
		s.sampleScratch[i].From = l.from
		s.sampleScratch[i].To = l.to
	}
	s.sampleFrame.Links = s.sampleScratch
	s.nextSample = s.cfg.SampleEvery
}

// sampleNow fills the scratch frame from the live counters and hands it
// to the hook. O(links), runs only at sample boundaries.
func (s *sim) sampleNow(now int, final bool) {
	buffered := 0
	for i, l := range s.links {
		c := &s.sampleScratch[i]
		c.Flits = l.flits
		c.BusyCycles = l.busyCycles
		c.StallCycles = l.stallCycles
		c.Dropped = l.dropped
		c.Buffered = l.curBuf
		c.PeakBuffered = l.peakBuf
		buffered += l.curBuf
	}
	s.sampleFrame.Cycle = now
	s.sampleFrame.Final = final
	s.sampleFrame.Run = RunCounters{
		FlitsSent:        s.result.FlitsSent,
		ReduceFlits:      s.reduceFlits,
		BcastFlits:       s.result.FlitsSent - s.reduceFlits,
		Delivered:        s.delivered,
		Dropped:          s.result.DroppedFlits,
		Reissued:         s.reissuedTotal,
		Recoveries:       len(s.result.Recoveries),
		LastFaultCycle:   s.lastFaultCycle,
		LastRecoverCycle: s.lastRecoverCycle,
		BufferedFlits:    buffered,
		PeakBufferFlits:  s.result.PeakBufferFlits,
	}
	s.cfg.Sample(&s.sampleFrame)
}
