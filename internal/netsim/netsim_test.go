package netsim

import (
	"math/rand"
	"testing"

	"polarfly/internal/bandwidth"
	"polarfly/internal/er"
	"polarfly/internal/graph"
	"polarfly/internal/singer"
	"polarfly/internal/trees"
)

// randInputs builds deterministic pseudo-random input vectors.
func randInputs(n, m int, seed int64) [][]int64 {
	rng := rand.New(rand.NewSource(seed))
	in := make([][]int64, n)
	for v := range in {
		in[v] = make([]int64, m)
		for k := range in[v] {
			in[v][k] = int64(rng.Intn(2000) - 1000)
		}
	}
	return in
}

func checkOutputs(t *testing.T, spec Spec, res *Result) {
	t.Helper()
	want := ExpectedOutput(spec.Inputs)
	for v, out := range res.Outputs {
		if len(out) != len(want) {
			t.Fatalf("node %d: output length %d, want %d", v, len(out), len(want))
		}
		for k := range want {
			if out[k] != want[k] {
				t.Fatalf("node %d element %d: got %d, want %d", v, k, out[k], want[k])
			}
		}
	}
}

// lineTopology returns a path graph and its single path tree rooted at mid.
func lineSpec(t *testing.T, n, m int) Spec {
	t.Helper()
	g := graph.New(n)
	path := make([]int, n)
	for i := 0; i < n; i++ {
		path[i] = i
		if i+1 < n {
			g.AddEdge(i, i+1)
		}
	}
	tr, err := trees.FromPath(path, (n-1)/2)
	if err != nil {
		t.Fatal(err)
	}
	return Spec{
		Topology: g,
		Forest:   []*trees.Tree{tr},
		Split:    []int{m},
		Inputs:   randInputs(n, m, 1),
	}
}

func TestSingleTreeCorrectness(t *testing.T) {
	spec := lineSpec(t, 7, 64)
	res, err := Run(spec, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	checkOutputs(t, spec, res)
	if res.FlitsSent != 2*6*64 { // reduce + broadcast on 6 links × 64 flits
		t.Errorf("FlitsSent = %d, want %d", res.FlitsSent, 2*6*64)
	}
	if res.TreeDone[0] != res.Cycles {
		t.Errorf("TreeDone %v vs Cycles %d", res.TreeDone, res.Cycles)
	}
}

func TestTwoNodeMinimal(t *testing.T) {
	g := graph.New(2)
	g.AddEdge(0, 1)
	tr, err := trees.FromParent(0, []int{-1, 0})
	if err != nil {
		t.Fatal(err)
	}
	spec := Spec{Topology: g, Forest: []*trees.Tree{tr}, Split: []int{5},
		Inputs: [][]int64{{1, 2, 3, 4, 5}, {10, 20, 30, 40, 50}}}
	res, err := Run(spec, Config{LinkLatency: 1, VCDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	checkOutputs(t, spec, res)
}

func TestSingleElement(t *testing.T) {
	spec := lineSpec(t, 5, 1)
	res, err := Run(spec, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	checkOutputs(t, spec, res)
	// One flit each way through depth-2 trees: latency-dominated.
	// Reduce: 2 hops, broadcast: 2 hops → ≥ 4×LinkLatency cycles.
	if res.Cycles < 4*DefaultConfig().LinkLatency {
		t.Errorf("Cycles = %d, implausibly small", res.Cycles)
	}
}

func TestZeroSplitTree(t *testing.T) {
	// A tree with zero elements participates without traffic.
	g := graph.New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 2)
	t1, _ := trees.FromParent(0, []int{-1, 0, 1})
	t2, _ := trees.FromParent(2, []int{2, 0, -1})
	spec := Spec{Topology: g, Forest: []*trees.Tree{t1, t2}, Split: []int{8, 0},
		Inputs: randInputs(3, 8, 2)}
	res, err := Run(spec, Config{LinkLatency: 2, VCDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	checkOutputs(t, spec, res)
	if res.TreeDone[1] != 0 {
		t.Errorf("zero-split tree done at %d", res.TreeDone[1])
	}
}

func TestSpecValidation(t *testing.T) {
	g := graph.New(2)
	g.AddEdge(0, 1)
	tr, _ := trees.FromParent(0, []int{-1, 0})
	good := Spec{Topology: g, Forest: []*trees.Tree{tr}, Split: []int{1},
		Inputs: [][]int64{{1}, {2}}}

	cases := []struct {
		name   string
		mutate func(Spec) Spec
	}{
		{"nil topology", func(s Spec) Spec { s.Topology = nil; return s }},
		{"empty forest", func(s Spec) Spec { s.Forest = nil; return s }},
		{"split mismatch", func(s Spec) Spec { s.Split = []int{1, 2}; return s }},
		{"negative split", func(s Spec) Spec { s.Split = []int{-1}; return s }},
		{"input count", func(s Spec) Spec { s.Inputs = s.Inputs[:1]; return s }},
		{"input length", func(s Spec) Spec {
			s.Inputs = [][]int64{{1, 2}, {3}}
			return s
		}},
	}
	for _, c := range cases {
		if _, err := Run(c.mutate(good), DefaultConfig()); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	// Tree not spanning the topology.
	g3 := graph.New(3)
	g3.AddEdge(0, 1)
	g3.AddEdge(1, 2)
	badTree, _ := trees.FromParent(0, []int{-1, 0, 0}) // uses edge (0,2) ∉ g3
	bad := Spec{Topology: g3, Forest: []*trees.Tree{badTree}, Split: []int{1},
		Inputs: [][]int64{{1}, {2}, {3}}}
	if _, err := Run(bad, DefaultConfig()); err == nil {
		t.Error("non-spanning tree accepted")
	}
	// Config validation.
	if _, err := Run(good, Config{LinkLatency: 0, VCDepth: 1}); err == nil {
		t.Error("zero latency accepted")
	}
	if _, err := Run(good, Config{LinkLatency: 1, VCDepth: 0}); err == nil {
		t.Error("zero VC depth accepted")
	}
}

func TestPipelinedBandwidthSingleTree(t *testing.T) {
	// For a single tree with large m, throughput must approach one
	// element/cycle: cycles ≈ m + O(depth·latency).
	spec := lineSpec(t, 9, 2048)
	cfg := Config{LinkLatency: 4, VCDepth: 8}
	res, err := Run(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkOutputs(t, spec, res)
	m := 2048
	overhead := res.Cycles - m
	// Depth is 4 each way; generous bound on the pipeline fill time.
	if overhead < 0 || overhead > 40*cfg.LinkLatency {
		t.Errorf("cycles=%d for m=%d: overhead %d outside [0, %d]", res.Cycles, m, overhead, 40*cfg.LinkLatency)
	}
}

func TestVCDepthThrottlesThroughput(t *testing.T) {
	// With VCDepth < LinkLatency the credit loop caps per-link throughput
	// at VCDepth/LinkLatency flits/cycle (latency-bandwidth product).
	spec := lineSpec(t, 5, 512)
	fast, err := Run(spec, Config{LinkLatency: 8, VCDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	slow, err := Run(spec, Config{LinkLatency: 8, VCDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	checkOutputs(t, spec, slow)
	// Expect roughly 4× slowdown; accept anything ≥ 2.5×.
	if float64(slow.Cycles) < 2.5*float64(fast.Cycles) {
		t.Errorf("VCDepth=2 cycles %d vs VCDepth=8 cycles %d: credit loop not throttling",
			slow.Cycles, fast.Cycles)
	}
}

func TestCongestionHalvesThroughput(t *testing.T) {
	// Two trees sharing one link must each run at half rate: total time for
	// (m,m) split ≈ 2m, versus m for disjoint trees.
	g := graph.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 0)
	// Tree A: path 0-1-2 plus 3 hanging off 0... use parent arrays over the
	// 4-cycle: A roots at 2: 0→1→2, 3→0. B roots at 3: same middle link
	// (1,2) used in opposite... choose trees that BOTH use link (1,2):
	// A: 0→1→2←3 (root 2): parents: 0:1, 1:2, 3:2? (3,2) is an edge. Yes.
	// B: 1→2→3←0 root 3: parents: 1:2? that uses (1,2) again... but B must
	// be a spanning tree: 0→3, 2→3, 1→2.
	a, err := trees.FromParent(2, []int{1, 2, -1, 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := trees.FromParent(3, []int{3, 2, 3, -1})
	if err != nil {
		t.Fatal(err)
	}
	m := 256
	spec := Spec{Topology: g, Forest: []*trees.Tree{a, b}, Split: []int{m, m},
		Inputs: randInputs(4, 2*m, 3)}
	cfg := Config{LinkLatency: 2, VCDepth: 8}
	res, err := Run(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkOutputs(t, spec, res)

	// Link (1,2) carries reduce flits of both trees in the SAME direction
	// (1→2 for A, 1→2 for B)? A: parent[1]=2 → 1→2. B: parent[1]=2 → 1→2.
	// So the shared direction serialises 2m flits: cycles ≥ 2m.
	if res.Cycles < 2*m {
		t.Errorf("cycles=%d < 2m=%d despite shared link", res.Cycles, 2*m)
	}
	if res.Cycles > 2*m+60*cfg.LinkLatency {
		t.Errorf("cycles=%d way above serialisation bound %d", res.Cycles, 2*m)
	}

	// Against the analytic model: waterfill gives each tree B/2; with the
	// optimal split the predicted time is 2m/B... here both trees carry m
	// so t = m/(B/2) = 2m.
	wf := bandwidth.ForForest([]*trees.Tree{a, b}, 1.0)
	if wf.PerTree[0] != 0.5 || wf.PerTree[1] != 0.5 {
		t.Errorf("waterfill = %+v, want 0.5 each", wf)
	}
}

func TestOpposedDirectionsDoNotConflict(t *testing.T) {
	// Lemma 7.8's payoff: if two trees use a link in OPPOSITE reduction
	// directions, both proceed at full rate (separate directed links).
	g := graph.New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 2)
	// A roots at 2: 0→1→2. B roots at 0: 2→1→0. Link (0,1) and (1,2) are
	// shared but always in opposite directions.
	a, _ := trees.FromParent(2, []int{1, 2, -1})
	b, _ := trees.FromParent(0, []int{-1, 0, 1})
	m := 256
	spec := Spec{Topology: g, Forest: []*trees.Tree{a, b}, Split: []int{m, m},
		Inputs: randInputs(3, 2*m, 4)}
	res, err := Run(spec, Config{LinkLatency: 2, VCDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	checkOutputs(t, spec, res)
	// Reduction of A (0→1→2) and B (2→1→0) never share a directed link,
	// but A's broadcast (2→1→0) shares direction with B's reduction, so
	// each shared directed link carries 2m flits total → ~2m cycles. The
	// point of this test is correctness under full-duplex sharing.
	if res.Cycles > 2*m+120 {
		t.Errorf("cycles=%d too high for opposed embedding", res.Cycles)
	}
}

func runForestOnPolarFly(t *testing.T, q, m int, forestKind string) (Spec, *Result, float64) {
	t.Helper()
	pg, err := er.New(q)
	if err != nil {
		t.Fatal(err)
	}
	var forest []*trees.Tree
	var topo *graph.Graph
	switch forestKind {
	case "lowdepth":
		l, err := er.NewLayout(pg, -1)
		if err != nil {
			t.Fatal(err)
		}
		forest, err = trees.LowDepthForest(l)
		if err != nil {
			t.Fatal(err)
		}
		topo = pg.G
	case "hamiltonian":
		s, err := singer.New(q)
		if err != nil {
			t.Fatal(err)
		}
		forest, err = trees.HamiltonianForest(s, 30, 42)
		if err != nil {
			t.Fatal(err)
		}
		topo = s.Topology()
	case "single":
		tr, err := trees.SingleTreeBaseline(pg.G, 0)
		if err != nil {
			t.Fatal(err)
		}
		forest = []*trees.Tree{tr}
		topo = pg.G
	default:
		t.Fatalf("unknown forest kind %q", forestKind)
	}
	wf := bandwidth.ForForest(forest, 1.0)
	split, err := bandwidth.SubvectorSplit(m, wf.PerTree)
	if err != nil {
		t.Fatal(err)
	}
	spec := Spec{Topology: topo, Forest: forest, Split: split,
		Inputs: randInputs(topo.N(), m, int64(q))}
	res, err := Run(spec, Config{LinkLatency: 3, VCDepth: 6})
	if err != nil {
		t.Fatal(err)
	}
	checkOutputs(t, spec, res)
	return spec, res, wf.Aggregate
}

func TestPolarFlyLowDepthForestSimulation(t *testing.T) {
	// End-to-end on ER_5: the q=5 low-depth forest must beat the single
	// tree by roughly its aggregate bandwidth factor.
	m := 1500
	_, single, _ := runForestOnPolarFly(t, 5, m, "single")
	_, multi, agg := runForestOnPolarFly(t, 5, m, "lowdepth")
	if agg < 2.5 {
		t.Fatalf("waterfill aggregate %f < qB/2", agg)
	}
	speedup := float64(single.Cycles) / float64(multi.Cycles)
	// Predicted speedup ≈ agg (bandwidth-bound regime); allow slack for
	// pipeline fill.
	if speedup < 0.7*agg {
		t.Errorf("speedup %.2f below 70%% of predicted %.2f (single=%d multi=%d)",
			speedup, agg, single.Cycles, multi.Cycles)
	}
}

func TestPolarFlyHamiltonianForestSimulation(t *testing.T) {
	m := 1500
	_, single, _ := runForestOnPolarFly(t, 5, m, "single")
	_, multi, agg := runForestOnPolarFly(t, 5, m, "hamiltonian")
	if agg != 3.0 { // ⌊(5+1)/2⌋ = 3 disjoint trees at B=1
		t.Fatalf("aggregate %f, want 3", agg)
	}
	speedup := float64(single.Cycles) / float64(multi.Cycles)
	if speedup < 0.7*agg {
		t.Errorf("speedup %.2f below 70%% of predicted %.2f (single=%d multi=%d)",
			speedup, agg, single.Cycles, multi.Cycles)
	}
}

func TestMeasuredMatchesModelBandwidth(t *testing.T) {
	// For large m the measured rate m/cycles must approach the waterfill
	// aggregate within 20%, for both solutions on ER_7.
	for _, kind := range []string{"lowdepth", "hamiltonian"} {
		m := 4000
		_, res, agg := runForestOnPolarFly(t, 7, m, kind)
		measured := float64(m) / float64(res.Cycles)
		if measured < 0.8*agg {
			t.Errorf("%s: measured %.2f elem/cycle < 80%% of model %.2f", kind, measured, agg)
		}
		if measured > 1.05*agg {
			t.Errorf("%s: measured %.2f elem/cycle exceeds model %.2f", kind, measured, agg)
		}
	}
}

func TestLatencyAdvantageOfLowDepthTrees(t *testing.T) {
	// Small-m regime: the depth-3 forest must complete far sooner than the
	// depth-(N−1)/2 Hamiltonian forest (Figure 5b's latency story).
	m := 8
	_, low, _ := runForestOnPolarFly(t, 5, m, "lowdepth")
	_, ham, _ := runForestOnPolarFly(t, 5, m, "hamiltonian")
	if low.Cycles >= ham.Cycles {
		t.Errorf("low-depth (%d cycles) not faster than Hamiltonian (%d cycles) at m=%d",
			low.Cycles, ham.Cycles, m)
	}
}

func TestDeterminism(t *testing.T) {
	spec := lineSpec(t, 7, 128)
	a, err := Run(spec, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(spec, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.FlitsSent != b.FlitsSent || a.PeakBufferFlits != b.PeakBufferFlits {
		t.Errorf("non-deterministic: %+v vs %+v", a, b)
	}
}

func TestPeakBufferBoundedByVCDepth(t *testing.T) {
	spec := lineSpec(t, 9, 512)
	cfg := Config{LinkLatency: 4, VCDepth: 3}
	res, err := Run(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Total VCs = flows; each holds ≤ VCDepth.
	maxFlows := 2 * 2 * 8 // 8 links × 2 directions... bound loosely:
	if res.PeakBufferFlits > cfg.VCDepth*maxFlows {
		t.Errorf("peak buffer %d exceeds VC capacity bound %d", res.PeakBufferFlits, cfg.VCDepth*maxFlows)
	}
	if res.PeakBufferFlits == 0 {
		t.Error("peak buffer should be non-zero")
	}
}

func TestUsedDirectedLinks(t *testing.T) {
	spec := lineSpec(t, 5, 1)
	if got := UsedDirectedLinks(spec); got != 8 { // 4 undirected links × 2
		t.Errorf("UsedDirectedLinks = %d, want 8", got)
	}
}

func TestExpectedOutput(t *testing.T) {
	in := [][]int64{{1, 2}, {3, 4}, {5, 6}}
	out := ExpectedOutput(in)
	if out[0] != 9 || out[1] != 12 {
		t.Errorf("ExpectedOutput = %v", out)
	}
	if ExpectedOutput(nil) != nil {
		t.Error("ExpectedOutput(nil) should be nil")
	}
}

// TestTreeReduceDone pins the reduce/broadcast boundary in Result: the
// root computes its last flit strictly after the reduce streams start and
// strictly before the broadcast finishes, and the broadcast-only op
// reports no reduce phase.
func TestTreeReduceDone(t *testing.T) {
	spec := lineSpec(t, 5, 64)
	res, err := Run(spec, Config{LinkLatency: 2, VCDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TreeReduceDone) != 1 {
		t.Fatalf("TreeReduceDone has %d entries, want 1", len(res.TreeReduceDone))
	}
	rd := res.TreeReduceDone[0]
	if rd <= 0 || rd >= res.Cycles {
		t.Errorf("reduce phase ended at cycle %d, want inside (0, %d)", rd, res.Cycles)
	}
	if rd > res.TreeDone[0] {
		t.Errorf("reduce phase ended at %d, after the tree finished at %d", rd, res.TreeDone[0])
	}

	spec.Op = OpBroadcast
	bres, err := Run(spec, Config{LinkLatency: 2, VCDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	if bres.TreeReduceDone[0] != -1 {
		t.Errorf("broadcast-only run reports reduce end %d, want -1", bres.TreeReduceDone[0])
	}

	spec.Op = OpReduce
	rres, err := Run(spec, Config{LinkLatency: 2, VCDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rres.TreeReduceDone[0] != rres.Cycles {
		t.Errorf("reduce-only run: reduce ended at %d, run at %d; they must coincide",
			rres.TreeReduceDone[0], rres.Cycles)
	}
}
