package netsim

import (
	"errors"
	"reflect"
	"testing"

	"polarfly/internal/bandwidth"
	"polarfly/internal/er"
	"polarfly/internal/faults"
	"polarfly/internal/graph"
	"polarfly/internal/singer"
	"polarfly/internal/trees"
)

// buildPolarSpec assembles an ER_q Allreduce spec with the Equation 2
// split, without running it — fault tests pick their own configs.
func buildPolarSpec(t *testing.T, q, m int, forestKind string) (Spec, float64) {
	t.Helper()
	pg, err := er.New(q)
	if err != nil {
		t.Fatal(err)
	}
	var forest []*trees.Tree
	var topo *graph.Graph
	switch forestKind {
	case "lowdepth":
		l, err := er.NewLayout(pg, -1)
		if err != nil {
			t.Fatal(err)
		}
		forest, err = trees.LowDepthForest(l)
		if err != nil {
			t.Fatal(err)
		}
		topo = pg.G
	case "hamiltonian":
		s, err := singer.New(q)
		if err != nil {
			t.Fatal(err)
		}
		forest, err = trees.HamiltonianForest(s, 30, 42)
		if err != nil {
			t.Fatal(err)
		}
		topo = s.Topology()
	case "single":
		tr, err := trees.SingleTreeBaseline(pg.G, 0)
		if err != nil {
			t.Fatal(err)
		}
		forest = []*trees.Tree{tr}
		topo = pg.G
	default:
		t.Fatalf("unknown forest kind %q", forestKind)
	}
	wf := bandwidth.ForForest(forest, 1.0)
	split, err := bandwidth.SubvectorSplit(m, wf.PerTree)
	if err != nil {
		t.Fatal(err)
	}
	spec := Spec{Topology: topo, Forest: forest, Split: split,
		Inputs: randInputs(topo.N(), m, int64(q))}
	return spec, wf.Aggregate
}

// firstTreeLink returns the first parent edge of forest tree ti,
// canonicalised to u < v.
func firstTreeLink(spec Spec, ti int) [2]int {
	for v, p := range spec.Forest[ti].Parent {
		if p >= 0 {
			if v < p {
				return [2]int{v, p}
			}
			return [2]int{p, v}
		}
	}
	panic("tree has no edges")
}

// TestFaultRecoveryPerEmbedding is the tentpole acceptance scenario: a
// single link fails mid-reduction on ER_7 under each multi-tree
// embedding; the run must detect the loss, abort the crossing trees,
// re-issue their elements, and still deliver a numerically correct
// allreduce at every node, with post-recovery bandwidth matching the
// surviving forest's waterfill.
func TestFaultRecoveryPerEmbedding(t *testing.T) {
	for _, kind := range []string{"lowdepth", "hamiltonian"} {
		t.Run(kind, func(t *testing.T) {
			m := 3000
			spec, _ := buildPolarSpec(t, 7, m, kind)
			link := firstTreeLink(spec, 0)
			plan := &faults.Plan{Faults: []faults.Fault{
				{Kind: faults.LinkDown, U: link[0], V: link[1], At: 200},
			}}
			cfg := Config{LinkLatency: 3, VCDepth: 6, Faults: plan}
			res, err := Run(spec, cfg)
			if err != nil {
				t.Fatal(err)
			}
			checkOutputs(t, spec, res)

			if len(res.Recoveries) != 1 {
				t.Fatalf("recoveries = %d, want 1 (%+v)", len(res.Recoveries), res.Recoveries)
			}
			rec := res.Recoveries[0]
			if len(rec.FailedLinks) != 1 || rec.FailedLinks[0] != link {
				t.Errorf("recovery blamed links %v, want [%v]", rec.FailedLinks, link)
			}
			if rec.Cycle <= 200 {
				t.Errorf("recovery at cycle %d, before the fault at 200", rec.Cycle)
			}
			if res.DroppedFlits == 0 {
				t.Error("link failure mid-reduction dropped no flits")
			}
			maxDead := 2 // low-depth congestion bound (Theorem 7.6)
			if kind == "hamiltonian" {
				maxDead = 1 // edge-disjoint trees (Theorem 7.19)
			}
			if len(res.DeadTrees) < 1 || len(res.DeadTrees) > maxDead {
				t.Errorf("%d dead trees %v, want 1..%d", len(res.DeadTrees), res.DeadTrees, maxDead)
			}

			// Post-recovery bandwidth ≈ the surviving forest's waterfill.
			dead := make(map[int]bool)
			for _, ti := range res.DeadTrees {
				dead[ti] = true
			}
			var survivors []*trees.Tree
			for ti, tr := range spec.Forest {
				if !dead[ti] {
					survivors = append(survivors, tr)
				}
			}
			agg := bandwidth.ForForest(survivors, 1.0).Aggregate
			if res.PostRecoveryBW < 0.7*agg || res.PostRecoveryBW > 1.15*agg {
				t.Errorf("post-recovery bandwidth %.3f vs surviving waterfill %.3f (outside [0.7, 1.15]×)",
					res.PostRecoveryBW, agg)
			}
		})
	}
}

// TestSingleTreeLinkFailureLosesEverything: the single-tree baseline has
// no survivors to recover onto — any used-link failure is fatal.
func TestSingleTreeLinkFailureLosesEverything(t *testing.T) {
	spec, _ := buildPolarSpec(t, 7, 2000, "single")
	link := firstTreeLink(spec, 0)
	plan := &faults.Plan{Faults: []faults.Fault{
		{Kind: faults.LinkDown, U: link[0], V: link[1], At: 100},
	}}
	_, err := Run(spec, Config{LinkLatency: 3, VCDepth: 6, Faults: plan})
	if !errors.Is(err, ErrAllTreesLost) {
		t.Fatalf("err = %v, want ErrAllTreesLost", err)
	}
}

// TestTransientFaultStillKillsTree: a transient window that loses flits
// breaks the stream permanently — the link heals, but the trees crossing
// it are aborted and their work re-issued, and the result stays correct.
func TestTransientFaultStillKillsTree(t *testing.T) {
	m := 1200
	spec, _ := buildPolarSpec(t, 3, m, "lowdepth")
	link := firstTreeLink(spec, 0)
	plan := &faults.Plan{Faults: []faults.Fault{
		{Kind: faults.LinkTransient, U: link[0], V: link[1], At: 150, Until: 200},
	}}
	res, err := Run(spec, Config{LinkLatency: 3, VCDepth: 6, Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	checkOutputs(t, spec, res)
	if len(res.Recoveries) != 1 {
		t.Fatalf("recoveries = %d, want 1", len(res.Recoveries))
	}
	if len(res.DeadTrees) == 0 {
		t.Error("transient loss killed no trees")
	}
}

// TestDegradedLinkNoRecovery: a degraded link loses nothing, so no
// recovery fires — the run just slows to the token-bucket rate.
func TestDegradedLinkNoRecovery(t *testing.T) {
	m := 512
	spec := lineSpec(t, 5, m)
	base, err := Run(spec, Config{LinkLatency: 2, VCDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	plan := &faults.Plan{Faults: []faults.Fault{
		{Kind: faults.LinkDegraded, U: 1, V: 2, At: 1, Bandwidth: 0.25},
	}}
	res, err := Run(spec, Config{LinkLatency: 2, VCDepth: 8, Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	checkOutputs(t, spec, res)
	if len(res.Recoveries) != 0 || res.DroppedFlits != 0 || len(res.DeadTrees) != 0 {
		t.Errorf("degraded link triggered recovery: %+v", res)
	}
	// The reduce stream over 1→2 is metered at 0.25 flits/cycle, so the
	// run serialises to ≥ 4m cycles, versus ~m fault-free.
	if res.Cycles < 4*m {
		t.Errorf("cycles = %d with a 0.25× link, want ≥ %d (fault-free: %d)", res.Cycles, 4*m, base.Cycles)
	}
	if res.Cycles > 4*m+600 {
		t.Errorf("cycles = %d way above the metering bound %d", res.Cycles, 4*m)
	}
	if res.Cycles <= base.Cycles {
		t.Errorf("degraded run (%d cycles) not slower than fault-free (%d)", res.Cycles, base.Cycles)
	}
}

// TestEngineStallDelaysRun: a stalled reduction engine back-pressures
// without losing anything; the run finishes correctly, later.
func TestEngineStallDelaysRun(t *testing.T) {
	m := 256
	spec := lineSpec(t, 5, m) // root is node 2
	base, err := Run(spec, Config{LinkLatency: 2, VCDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	stallEnd := base.Cycles + 100
	plan := &faults.Plan{Faults: []faults.Fault{
		{Kind: faults.EngineStall, Node: 2, At: 1, Until: stallEnd},
	}}
	res, err := Run(spec, Config{LinkLatency: 2, VCDepth: 8, Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	checkOutputs(t, spec, res)
	if len(res.Recoveries) != 0 || res.DroppedFlits != 0 {
		t.Errorf("engine stall dropped flits or recovered: %+v", res)
	}
	// The root computes nothing before stallEnd, so the broadcast cannot
	// have finished earlier.
	if res.Cycles < stallEnd {
		t.Errorf("cycles = %d, want ≥ stall window end %d", res.Cycles, stallEnd)
	}
	if res.Cycles <= base.Cycles {
		t.Errorf("stalled run (%d cycles) not slower than fault-free (%d)", res.Cycles, base.Cycles)
	}
}

// TestDisableRecoveryReturnsProgressError pins the satellite-2 contract:
// with recovery off, a faulted link strands the run and the timeout
// error names the stalled tree and the failed link.
func TestDisableRecoveryReturnsProgressError(t *testing.T) {
	spec := lineSpec(t, 5, 256)
	plan := &faults.Plan{Faults: []faults.Fault{
		{Kind: faults.LinkDown, U: 1, V: 2, At: 50},
	}}
	cfg := Config{LinkLatency: 2, VCDepth: 4, ProgressTimeout: 200,
		Faults: plan, DisableRecovery: true}
	_, err := Run(spec, cfg)
	if err == nil {
		t.Fatal("faulted run with recovery disabled completed")
	}
	var pe *ProgressError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v (%T), want *ProgressError", err, err)
	}
	if pe.IdleCycles <= 200 {
		t.Errorf("IdleCycles = %d, want > ProgressTimeout 200", pe.IdleCycles)
	}
	if pe.PendingFlits <= 0 {
		t.Errorf("PendingFlits = %d, want > 0", pe.PendingFlits)
	}
	if pe.LastProgressCycle >= pe.Cycle {
		t.Errorf("LastProgressCycle %d not before Cycle %d", pe.LastProgressCycle, pe.Cycle)
	}
	if !reflect.DeepEqual(pe.StalledTrees, []int{0}) {
		t.Errorf("StalledTrees = %v, want [0]", pe.StalledTrees)
	}
	wl := pe.WorstLink
	if !(wl == [2]int{1, 2} || wl == [2]int{2, 1}) {
		t.Errorf("WorstLink = %v, want the faulted link 1-2", wl)
	}
	if pe.WorstLinkOutstanding <= 0 {
		t.Errorf("WorstLinkOutstanding = %d, want > 0", pe.WorstLinkOutstanding)
	}
}

// TestFaultOnUnusedLinkIsNoop: a fault on a topology link no tree uses
// must not perturb the run at all.
func TestFaultOnUnusedLinkIsNoop(t *testing.T) {
	g := graph.New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 2)
	tr, err := trees.FromParent(2, []int{1, 2, -1}) // uses (0,1) and (1,2) only
	if err != nil {
		t.Fatal(err)
	}
	spec := Spec{Topology: g, Forest: []*trees.Tree{tr}, Split: []int{64},
		Inputs: randInputs(3, 64, 9)}
	base, err := Run(spec, Config{LinkLatency: 2, VCDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	plan := &faults.Plan{Faults: []faults.Fault{
		{Kind: faults.LinkDown, U: 0, V: 2, At: 10},
	}}
	res, err := Run(spec, Config{LinkLatency: 2, VCDepth: 4, Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	checkOutputs(t, spec, res)
	if res.Cycles != base.Cycles || res.DroppedFlits != 0 || len(res.Recoveries) != 0 {
		t.Errorf("unused-link fault perturbed the run: %d vs %d cycles, %d drops",
			res.Cycles, base.Cycles, res.DroppedFlits)
	}
}

// TestFaultRunDeterminism: the same plan, spec, and config must replay
// bit-for-bit — identical traces, outputs, and recovery records.
func TestFaultRunDeterminism(t *testing.T) {
	m := 1200
	spec, _ := buildPolarSpec(t, 3, m, "lowdepth")
	link := firstTreeLink(spec, 0)
	plan := &faults.Plan{Faults: []faults.Fault{
		{Kind: faults.LinkDown, U: link[0], V: link[1], At: 150},
	}}
	run := func() ([]TraceEvent, *Result) {
		var evs []TraceEvent
		cfg := Config{LinkLatency: 3, VCDepth: 6, Faults: plan,
			Trace: func(ev TraceEvent) { evs = append(evs, ev) }}
		res, err := Run(spec, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return evs, res
	}
	evA, resA := run()
	evB, resB := run()
	if len(evA) != len(evB) {
		t.Fatalf("trace lengths differ: %d vs %d", len(evA), len(evB))
	}
	for i := range evA {
		if evA[i] != evB[i] {
			t.Fatalf("trace event %d differs: %+v vs %+v", i, evA[i], evB[i])
		}
	}
	if resA.Cycles != resB.Cycles || resA.DroppedFlits != resB.DroppedFlits ||
		!reflect.DeepEqual(resA.Recoveries, resB.Recoveries) ||
		!reflect.DeepEqual(resA.Outputs, resB.Outputs) {
		t.Error("fault-injected runs diverged")
	}
	checkOutputs(t, spec, resA)
}

// TestFaultSpecValidation: plan endpoints must fit the topology and the
// op must be Allreduce.
func TestFaultSpecValidation(t *testing.T) {
	spec := lineSpec(t, 5, 8)
	out := &faults.Plan{Faults: []faults.Fault{
		{Kind: faults.LinkDown, U: 1, V: 99, At: 10},
	}}
	if _, err := Run(spec, Config{LinkLatency: 2, VCDepth: 4, Faults: out}); err == nil {
		t.Error("out-of-range link endpoint accepted")
	}
	node := &faults.Plan{Faults: []faults.Fault{
		{Kind: faults.EngineStall, Node: 7, At: 10, Until: 20},
	}}
	if _, err := Run(spec, Config{LinkLatency: 2, VCDepth: 4, Faults: node}); err == nil {
		t.Error("out-of-range stall node accepted")
	}
	ok := &faults.Plan{Faults: []faults.Fault{
		{Kind: faults.LinkDown, U: 1, V: 2, At: 10},
	}}
	spec.Op = OpReduce
	if _, err := Run(spec, Config{LinkLatency: 2, VCDepth: 4, Faults: ok}); err == nil {
		t.Error("fault plan accepted for OpReduce")
	}
	if _, err := Run(spec, Config{LinkLatency: 2, VCDepth: 4, FaultDetectTimeout: -1}); err == nil {
		t.Error("negative FaultDetectTimeout accepted")
	}
}
