package singer

import (
	"testing"
	"testing/quick"

	"polarfly/internal/numtheory"
)

// Property tests over the difference-set algebra.

func TestEdgeDefinitionSymmetricQuick(t *testing.T) {
	s := buildS(t, 9)
	prop := func(i, j uint16) bool {
		u, v := int(i)%s.N, int(j)%s.N
		return s.HasEdge(u, v) == s.HasEdge(v, u)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestTranslatedDifferenceSetStillWorksQuick(t *testing.T) {
	// Difference sets are translation-invariant: D + c mod N is also a
	// difference set. The graphs differ but stay isomorphic; here we check
	// the set property itself.
	base, err := DifferenceSet(5)
	if err != nil {
		t.Fatal(err)
	}
	n := 31
	prop := func(c uint8) bool {
		shift := int(c) % n
		d := make([]int, len(base))
		for i, x := range base {
			d[i] = (x + shift) % n
		}
		return IsDifferenceSet(d, n)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestScaledDifferenceSetQuick(t *testing.T) {
	// Multiplying by a unit of Z_N also preserves the property.
	base, err := DifferenceSet(4)
	if err != nil {
		t.Fatal(err)
	}
	n := 21
	prop := func(c uint8) bool {
		k := int(c)%n + 1
		if numtheory.GCD(k, n) != 1 {
			return true // only units preserve the property
		}
		d := make([]int, len(base))
		for i, x := range base {
			d[i] = x * k % n
		}
		return IsDifferenceSet(d, n)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPathEndpointsAreReflectionsQuick(t *testing.T) {
	s := buildS(t, 8)
	pairs := s.AllPairs()
	prop := func(idx uint8, rev bool) bool {
		p := pairs[int(idx)%len(pairs)]
		if rev {
			p = Pair{p.D1, p.D0}
		}
		path := s.MaximalPath(p)
		return path[0] == s.ReflectionOf(p.D1) &&
			path[len(path)-1] == s.ReflectionOf(p.D0) &&
			len(path)%2 == 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestReversedPairReversesPathQuick(t *testing.T) {
	s := buildS(t, 7)
	pairs := s.AllPairs()
	prop := func(idx uint8) bool {
		p := pairs[int(idx)%len(pairs)]
		fwd := s.MaximalPath(p)
		rev := s.MaximalPath(Pair{p.D1, p.D0})
		if len(fwd) != len(rev) {
			return false
		}
		for i := range fwd {
			if fwd[i] != rev[len(rev)-1-i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
