package singer

import (
	"testing"

	"polarfly/internal/graph"
	"polarfly/internal/numtheory"
)

func TestMaximalPathKnownQ3(t *testing.T) {
	// Hand-derived for D={0,1,3,9}, N=13, pair (0,1): starts at 2⁻¹·1 = 7,
	// alternates sums 0 (even steps) and 1 (odd steps), ends at 2⁻¹·0 = 0.
	s := buildS(t, 3)
	p := Pair{0, 1}
	got := s.MaximalPath(p)
	want := []int{7, 6, 8, 5, 9, 4, 10, 3, 11, 2, 12, 1, 0}
	if len(got) != len(want) {
		t.Fatalf("path = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("path = %v, want %v", got, want)
		}
	}
}

// verifyMaximalPath checks all the structural claims of Lemma 7.12 and
// Corollary 7.15 for one pair.
func verifyMaximalPath(t *testing.T, s *Graph, p Pair) {
	t.Helper()
	path := s.MaximalPath(p)
	k := s.PathLen(p)
	if len(path) != k {
		t.Fatalf("q=%d %+v: len=%d, want %d", s.Q, p, len(path), k)
	}
	if k%2 != 1 {
		t.Errorf("q=%d %+v: k=%d is even (Lemma 7.12 says odd)", s.Q, p, k)
	}
	// Endpoints are the reflection points of d1 and d0.
	if path[0] != s.ReflectionOf(p.D1) {
		t.Errorf("q=%d %+v: start %d, want %d", s.Q, p, path[0], s.ReflectionOf(p.D1))
	}
	if path[k-1] != s.ReflectionOf(p.D0) {
		t.Errorf("q=%d %+v: end %d, want %d", s.Q, p, path[k-1], s.ReflectionOf(p.D0))
	}
	// Non-repeating.
	seen := make(map[int]bool, k)
	for _, v := range path {
		if seen[v] {
			t.Fatalf("q=%d %+v: vertex %d repeats", s.Q, p, v)
		}
		seen[v] = true
	}
	// Edges exist in S_q with alternating sums d0 (even i) / d1 (odd i),
	// 1-indexed per Definition 7.11.
	for i := 2; i <= k; i++ {
		u, v := path[i-2], path[i-1]
		if !s.Topology().HasEdge(u, v) {
			t.Fatalf("q=%d %+v: (%d,%d) not an edge", s.Q, p, u, v)
		}
		sum := s.EdgeSum(u, v)
		want := p.D0
		if i%2 == 1 {
			want = p.D1
		}
		if sum != want {
			t.Fatalf("q=%d %+v: edge %d has sum %d, want %d", s.Q, p, i, sum, want)
		}
	}
	// Maximality: the would-be extensions coincide with the endpoints.
	if numtheory.Mod(p.D1-path[0], s.N) != path[0] {
		t.Errorf("q=%d %+v: start extension exists", s.Q, p)
	}
	wantExt := p.D0
	if k%2 == 0 {
		wantExt = p.D1
	}
	if numtheory.Mod(wantExt-path[k-1], s.N) != path[k-1] {
		t.Errorf("q=%d %+v: end extension exists", s.Q, p)
	}
}

func TestAllMaximalPathsStructure(t *testing.T) {
	for _, q := range []int{2, 3, 4, 5, 7, 8, 9} {
		s := buildS(t, q)
		for _, p := range s.AllPairs() {
			verifyMaximalPath(t, s, p)
			// Reverse orientation too.
			verifyMaximalPath(t, s, Pair{p.D1, p.D0})
		}
	}
}

func TestTheorem713PathLength(t *testing.T) {
	for _, q := range []int{3, 4, 5, 7, 8, 9, 11} {
		s := buildS(t, q)
		for _, p := range s.AllPairs() {
			k := s.PathLen(p)
			if want := s.N / numtheory.GCD(p.D0-p.D1, s.N); k != want {
				t.Errorf("q=%d %+v: k=%d, want %d", q, p, k, want)
			}
			if s.IsHamiltonian(p) != (numtheory.GCD(p.D0-p.D1, s.N) == 1) {
				t.Errorf("q=%d %+v: Hamiltonian flag wrong", q, p)
			}
		}
	}
}

func TestClosedFormMatchesIteration(t *testing.T) {
	// Corollary 7.16 closed form must agree with the iterative
	// construction at every index.
	for _, q := range []int{3, 4, 5, 7} {
		s := buildS(t, q)
		for _, p := range s.AllPairs() {
			path := s.MaximalPath(p)
			for i := 1; i <= len(path); i++ {
				if got := s.ClosedFormVertex(p, i); got != path[i-1] {
					t.Fatalf("q=%d %+v: b_%d closed form %d, iterative %d", q, p, i, got, path[i-1])
				}
			}
		}
	}
}

func TestPathRootIsMidpoint(t *testing.T) {
	// Lemma 7.17: rooting at b_{(N+1)/2} gives depth (N−1)/2.
	for _, q := range []int{3, 4, 5} {
		s := buildS(t, q)
		for _, p := range s.HamiltonianPairs() {
			path := s.MaximalPath(p)
			root := s.PathRoot(p)
			if root != path[(s.N+1)/2-1] {
				t.Errorf("q=%d %+v: root %d, want midpoint %d", q, p, root, path[(s.N+1)/2-1])
			}
		}
	}
	s := buildS(t, 4)
	defer func() {
		if recover() == nil {
			t.Error("PathRoot on non-Hamiltonian pair should panic")
		}
	}()
	s.PathRoot(Pair{0, 14}) // gcd(0−14,21)=7
}

func TestCorollary720HamiltonianCount(t *testing.T) {
	// φ(N) Hamiltonian paths counting orientations = φ(N)/2 unordered pairs.
	hi := 32
	if testing.Short() {
		hi = 13
	}
	for _, q := range numtheory.PrimePowersUpTo(2, hi) {
		s := buildS(t, q)
		phi := numtheory.Totient(s.N)
		if got := len(s.HamiltonianPairs()); got != phi/2 {
			t.Errorf("q=%d: %d Hamiltonian pairs, want φ(%d)/2 = %d", q, got, s.N, phi/2)
		}
	}
}

func TestTable2NonHamiltonianPathsQ4(t *testing.T) {
	// Table 2 exactly, for D = {0,1,4,14,16} over Z_21.
	s := buildS(t, 4)
	rows := s.NonHamiltonianMaximalPaths()
	want := []MaximalPathInfo{
		{D0: 0, D1: 14, GCD: 7, K: 3, Start: 7, End: 0},
		{D0: 1, D1: 4, GCD: 3, K: 7, Start: 2, End: 11},
		{D0: 1, D1: 16, GCD: 3, K: 7, Start: 8, End: 11},
		{D0: 4, D1: 16, GCD: 3, K: 7, Start: 8, End: 2},
	}
	if len(rows) != len(want) {
		t.Fatalf("got %d rows, want %d: %+v", len(rows), len(want), rows)
	}
	for i := range want {
		if rows[i] != want[i] {
			t.Errorf("row %d = %+v, want %+v", i, rows[i], want[i])
		}
	}
}

func TestNonHamiltonianPathsEmptyForPrimeN(t *testing.T) {
	// q=3 → N=13 prime: every maximal alternating-sum path is Hamiltonian.
	s := buildS(t, 3)
	if rows := s.NonHamiltonianMaximalPaths(); len(rows) != 0 {
		t.Errorf("expected none, got %+v", rows)
	}
}

func TestEdgesOfColor(t *testing.T) {
	for _, q := range []int{3, 4, 5} {
		s := buildS(t, q)
		covered := make(map[graph.Edge]int)
		for _, d := range s.D {
			es := s.EdgesOfColor(d)
			if len(es) != (s.N-1)/2 {
				t.Errorf("q=%d colour %d: %d edges, want %d", q, d, len(es), (s.N-1)/2)
			}
			for _, e := range es {
				if !s.Topology().HasEdge(e.U, e.V) {
					t.Errorf("q=%d: colour-%d edge (%d,%d) not in graph", q, d, e.U, e.V)
				}
				if s.EdgeSum(e.U, e.V) != d {
					t.Errorf("q=%d: edge (%d,%d) sum %d, want %d", q, e.U, e.V, s.EdgeSum(e.U, e.V), d)
				}
				covered[e]++
			}
		}
		// Colour classes partition the edge set.
		if len(covered) != s.Topology().M() {
			t.Errorf("q=%d: colours cover %d edges of %d", q, len(covered), s.Topology().M())
		}
		for e, c := range covered {
			if c != 1 {
				t.Errorf("q=%d: edge %v covered %d times", q, e, c)
			}
		}
	}
}

func TestHamiltonianPathUsesAllEdgesOfItsColors(t *testing.T) {
	// The disjointness argument: a Hamiltonian path consumes every proper
	// edge of both its colours.
	s := buildS(t, 5)
	for _, p := range s.HamiltonianPairs() {
		path := s.MaximalPath(p)
		used := make(map[graph.Edge]bool)
		for i := 1; i < len(path); i++ {
			used[graph.NewEdge(path[i-1], path[i])] = true
		}
		for _, d := range []int{p.D0, p.D1} {
			for _, e := range s.EdgesOfColor(d) {
				if !used[e] {
					t.Fatalf("q=5 %+v: colour-%d edge %v unused", p, d, e)
				}
			}
		}
	}
}

func TestFig4DisjointHamiltoniansQ3Q4(t *testing.T) {
	// Figure 4: maximal sets of ⌊(q+1)/2⌋ = 2 edge-disjoint Hamiltonian
	// paths exist for q=3 and q=4. For q=3 the pairs (0,1) and (3,9) used
	// in the figure must themselves be a valid disjoint set.
	s3 := buildS(t, 3)
	if !s3.IsHamiltonian(Pair{0, 1}) || !s3.IsHamiltonian(Pair{3, 9}) {
		t.Error("q=3: figure pairs not Hamiltonian")
	}
	set, ok := s3.DisjointHamiltonianPairs(2, 30, 1)
	if !ok || len(set) != 2 {
		t.Errorf("q=3: disjoint search failed: %v ok=%v", set, ok)
	}
	// q=4: figure uses (0,1) and (4,14); element 16 unused.
	s4 := buildS(t, 4)
	if !s4.IsHamiltonian(Pair{0, 1}) || !s4.IsHamiltonian(Pair{4, 14}) {
		t.Error("q=4: figure pairs not Hamiltonian")
	}
	set, ok = s4.DisjointHamiltonianPairs(2, 30, 1)
	if !ok || len(set) != 2 {
		t.Errorf("q=4: disjoint search failed: %v ok=%v", set, ok)
	}
}

func verifyDisjointSet(t *testing.T, s *Graph, set []Pair) {
	t.Helper()
	usedElems := make(map[int]bool)
	for _, p := range set {
		if !s.IsHamiltonian(p) {
			t.Fatalf("q=%d: pair %+v not Hamiltonian", s.Q, p)
		}
		if usedElems[p.D0] || usedElems[p.D1] {
			t.Fatalf("q=%d: element reuse in %v", s.Q, set)
		}
		usedElems[p.D0] = true
		usedElems[p.D1] = true
	}
	// Paths must be pairwise edge-disjoint.
	seen := make(map[graph.Edge]bool)
	for _, p := range set {
		path := s.MaximalPath(p)
		for i := 1; i < len(path); i++ {
			e := graph.NewEdge(path[i-1], path[i])
			if seen[e] {
				t.Fatalf("q=%d: edge %v shared between paths", s.Q, e)
			}
			seen[e] = true
		}
	}
}

func TestSection73DisjointSweep(t *testing.T) {
	// §7.3: a set of ⌊(q+1)/2⌋ edge-disjoint Hamiltonian paths exists and
	// is found within 30 random instances, for all prime powers q < 128.
	// The full sweep runs in normal mode; short mode caps at q ≤ 16.
	hi := 127
	if testing.Short() {
		hi = 16
	}
	for _, q := range numtheory.PrimePowersUpTo(2, hi) {
		s := buildS(t, q)
		target := s.MaxDisjointUpperBound()
		set, ok := s.DisjointHamiltonianPairs(target, 30, 42)
		if !ok {
			t.Errorf("q=%d: only %d of %d disjoint Hamiltonians found in 30 tries", q, len(set), target)
			continue
		}
		verifyDisjointSet(t, s, set)
	}
}

func TestPairGraphMatchesDirectSearch(t *testing.T) {
	// Cross-validate the matching-based randomized search against the
	// exact maximum independent set of the materialised pair graph G_S.
	for _, q := range []int{3, 4, 5, 7} {
		s := buildS(t, q)
		gs, pairs := s.PairGraph()
		if len(pairs) != len(s.HamiltonianPairs()) {
			t.Fatalf("q=%d: pair count mismatch", q)
		}
		mis := gs.MaximumIndependentSet()
		target := s.MaxDisjointUpperBound()
		if len(mis) != target {
			t.Errorf("q=%d: exact MIS of G_S has size %d, want %d", q, len(mis), target)
		}
		var set []Pair
		for _, idx := range mis {
			set = append(set, pairs[idx])
		}
		verifyDisjointSet(t, s, set)
	}
}

func TestDisjointHamiltonianPairsExact(t *testing.T) {
	for _, q := range []int{3, 4, 5, 7, 8, 9} {
		s := buildS(t, q)
		set := s.DisjointHamiltonianPairsExact()
		if len(set) != s.MaxDisjointUpperBound() {
			t.Errorf("q=%d: exact MIS found %d of %d", q, len(set), s.MaxDisjointUpperBound())
		}
		verifyDisjointSet(t, s, set)
	}
}

func TestDisjointSearchDeterministic(t *testing.T) {
	s := buildS(t, 9)
	a, _ := s.DisjointHamiltonianPairs(5, 30, 7)
	b, _ := s.DisjointHamiltonianPairs(5, 30, 7)
	if len(a) != len(b) {
		t.Fatal("non-deterministic result size")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("non-deterministic result")
		}
	}
}

func TestCheckPairPanics(t *testing.T) {
	s := buildS(t, 3)
	for _, p := range []Pair{{0, 0}, {0, 2}, {5, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("MaximalPath(%+v) should panic", p)
				}
			}()
			s.MaximalPath(p)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("ClosedFormVertex out of range should panic")
			}
		}()
		s.ClosedFormVertex(Pair{0, 1}, 14)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("EdgesOfColor(2) should panic for q=3")
			}
		}()
		s.EdgesOfColor(2)
	}()
}
