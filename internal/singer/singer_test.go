package singer

import (
	"testing"

	"polarfly/internal/numtheory"
)

func buildS(t *testing.T, q int) *Graph {
	t.Helper()
	s, err := New(q)
	if err != nil {
		t.Fatalf("New(%d): %v", q, err)
	}
	return s
}

func TestFig2aDifferenceSetQ3(t *testing.T) {
	// Figure 2a: D = {0,1,3,9} over Z_13, reflection points {0,7,8,11}.
	d, err := DifferenceSet(3)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 3, 9}
	if len(d) != len(want) {
		t.Fatalf("D = %v, want %v", d, want)
	}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("D = %v, want %v", d, want)
		}
	}
	s := buildS(t, 3)
	refl := s.ReflectionPoints()
	wantRefl := []int{0, 7, 8, 11}
	for i := range wantRefl {
		if refl[i] != wantRefl[i] {
			t.Fatalf("reflections = %v, want %v", refl, wantRefl)
		}
	}
}

func TestFig2bDifferenceSetQ4(t *testing.T) {
	// Figure 2b: D = {0,1,4,14,16} over Z_21, reflection points {0,2,7,8,11}.
	d, err := DifferenceSet(4)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 4, 14, 16}
	if len(d) != len(want) {
		t.Fatalf("D = %v, want %v", d, want)
	}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("D = %v, want %v", d, want)
		}
	}
	s := buildS(t, 4)
	refl := s.ReflectionPoints()
	wantRefl := []int{0, 2, 7, 8, 11}
	if len(refl) != len(wantRefl) {
		t.Fatalf("reflections = %v, want %v", refl, wantRefl)
	}
	for i := range wantRefl {
		if refl[i] != wantRefl[i] {
			t.Fatalf("reflections = %v, want %v", refl, wantRefl)
		}
	}
}

func TestDifferenceSetProperty(t *testing.T) {
	// Definition 6.2 for every prime power q in a broad range.
	hi := 32
	if testing.Short() {
		hi = 13
	}
	for _, q := range numtheory.PrimePowersUpTo(2, hi) {
		d, err := DifferenceSet(q)
		if err != nil {
			t.Fatalf("q=%d: %v", q, err)
		}
		n := q*q + q + 1
		if len(d) != q+1 {
			t.Errorf("q=%d: |D|=%d, want %d", q, len(d), q+1)
		}
		if !IsDifferenceSet(d, n) {
			t.Errorf("q=%d: %v fails the difference-set property", q, d)
		}
	}
}

func TestIsDifferenceSetRejects(t *testing.T) {
	if IsDifferenceSet([]int{0, 1, 2, 9}, 13) {
		t.Error("{0,1,2,9} accepted over Z_13")
	}
	if IsDifferenceSet([]int{0, 1, 3}, 13) {
		t.Error("undersized set accepted")
	}
	if !IsDifferenceSet([]int{0, 1, 3, 9}, 13) {
		t.Error("valid set rejected")
	}
}

func TestFromDifferenceSetValidation(t *testing.T) {
	if _, err := FromDifferenceSet(3, []int{0, 1, 2, 9}); err == nil {
		t.Error("invalid set accepted")
	}
	if _, err := FromDifferenceSet(3, []int{0, 1, 3}); err == nil {
		t.Error("undersized set accepted")
	}
	if _, err := FromDifferenceSet(3, []int{0, 1, 3, 9}); err != nil {
		t.Errorf("valid set rejected: %v", err)
	}
}

func TestGraphStructure(t *testing.T) {
	for _, q := range []int{2, 3, 4, 5, 7, 8, 9} {
		s := buildS(t, q)
		if s.N != q*q+q+1 {
			t.Fatalf("q=%d: N=%d", q, s.N)
		}
		// Edge count: q(q+1)²/2 (same as ER_q, Cor. 7.1 proof).
		if want := q * (q + 1) * (q + 1) / 2; s.Topology().M() != want {
			t.Errorf("q=%d: M=%d, want %d", q, s.Topology().M(), want)
		}
		// Reflection points have degree q (self-loop dropped), others q+1.
		for v := 0; v < s.N; v++ {
			want := q + 1
			if s.Class(v) == Reflection {
				want = q
			}
			if d := s.Topology().Degree(v); d != want {
				t.Errorf("q=%d: deg(%d)=%d, want %d", q, v, d, want)
			}
		}
		if d := s.Topology().Diameter(); d != 2 {
			t.Errorf("q=%d: diameter %d", q, d)
		}
		if !s.Topology().HasUniqueTwoPaths() {
			t.Errorf("q=%d: duplicate 2-paths", q)
		}
	}
}

func TestEdgeSum(t *testing.T) {
	s := buildS(t, 3)
	for _, e := range s.Topology().Edges() {
		sum := s.EdgeSum(e.U, e.V)
		if !s.InD(sum) {
			t.Fatalf("edge (%d,%d) has sum %d ∉ D", e.U, e.V, sum)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("EdgeSum on non-edge should panic")
		}
	}()
	// 0 and 2: 0+2=2 ∉ {0,1,3,9}.
	s.EdgeSum(0, 2)
}

func TestCorollary68ReflectionPoints(t *testing.T) {
	// Quadrics/reflections are exactly 2⁻¹·d for d ∈ D, one per element.
	for _, q := range []int{3, 4, 5, 7, 8, 9, 11, 13} {
		s := buildS(t, q)
		refl := s.ReflectionPoints()
		if len(refl) != q+1 {
			t.Fatalf("q=%d: %d reflection points", q, len(refl))
		}
		seen := make(map[int]bool)
		for _, d := range s.D {
			w := s.ReflectionOf(d)
			if s.Class(w) != Reflection {
				t.Errorf("q=%d: 2⁻¹·%d = %d is not a reflection point", q, d, w)
			}
			if s.SelfLoopColor(w) != d {
				t.Errorf("q=%d: self-loop colour of %d = %d, want %d", q, w, s.SelfLoopColor(w), d)
			}
			seen[w] = true
		}
		if len(seen) != q+1 {
			t.Errorf("q=%d: map d→2⁻¹d not injective", q)
		}
	}
}

func TestCorollary69Classification(t *testing.T) {
	// V1 = {d_i − 2⁻¹·d_j : d_i ≠ d_j}; V2 = rest. Check the counts match
	// Table 1 and the explicit formula.
	for _, q := range []int{3, 5, 7, 9, 11} { // odd q per Table 1
		s := buildS(t, q)
		v1want := make(map[int]bool)
		for _, di := range s.D {
			for _, dj := range s.D {
				if di == dj {
					continue
				}
				v1want[numtheory.Mod(di-s.HalfInverse()*dj, s.N)] = true
			}
		}
		var w, v1, v2 int
		for v := 0; v < s.N; v++ {
			switch s.Class(v) {
			case Reflection:
				w++
			case Class1:
				v1++
				if !v1want[v] {
					t.Errorf("q=%d: vertex %d classified V1 but not of form d_i − 2⁻¹d_j", q, v)
				}
			case Class2:
				v2++
				if v1want[v] {
					t.Errorf("q=%d: vertex %d of V1 form classified V2", q, v)
				}
			}
		}
		if w != q+1 || v1 != q*(q+1)/2 || v2 != q*(q-1)/2 {
			t.Errorf("q=%d: counts (%d,%d,%d), want (%d,%d,%d)", q, w, v1, v2, q+1, q*(q+1)/2, q*(q-1)/2)
		}
	}
}

func TestHalfInverse(t *testing.T) {
	for _, q := range []int{2, 3, 4, 5, 7} {
		s := buildS(t, q)
		if got := 2 * s.HalfInverse() % s.N; got != 1 {
			t.Errorf("q=%d: 2·2⁻¹ = %d mod %d", q, got, s.N)
		}
	}
}

func TestVertexClassString(t *testing.T) {
	if Reflection.String() != "W" || Class1.String() != "V1" || Class2.String() != "V2" {
		t.Error("VertexClass.String broken")
	}
	if VertexClass(7).String() == "" {
		t.Error("unknown class should render")
	}
}
