// Package singer implements the Singer difference-set construction of the
// Erdős–Rényi polarity graph (§6.2 of the paper) and the edge-disjoint
// Hamiltonian-path Allreduce solution built on it (§7.2):
//
//   - Singer difference sets D ⊂ Z_N, N = q²+q+1, generated from the powers
//     of a root ζ of the lexicographically smallest degree-3 primitive
//     polynomial over F_q (the paper's reproducibility convention);
//   - the Singer graph S_q with edges (i,j) iff (i+j) mod N ∈ D, its
//     reflection points (= PolarFly quadrics, Corollary 6.8) and V1/V2
//     classification (Corollary 6.9);
//   - maximal alternating-sum non-repeating paths (Definition 7.11,
//     Theorem 7.13, Corollaries 7.15–7.16), Hamiltonian exactly when the
//     generating difference-element pair has gcd(d0−d1, N) = 1;
//   - selection of ⌊(q+1)/2⌋ pairwise edge-disjoint Hamiltonian paths by
//     randomized maximal independent sets over the pair graph G_S (§7.3).
package singer

import (
	"fmt"
	"sort"
	"sync"

	"polarfly/internal/ff"
	"polarfly/internal/graph"
	"polarfly/internal/numtheory"
)

// DifferenceSet computes the Singer difference set of order q+1 over Z_N
// for a prime power q, following the five steps of §6.2:
//
//  1. construct GF(q³) with the lexicographically smallest degree-3
//     primitive polynomial f over F_q, with root ζ;
//  2. list the powers of ζ;
//  3. reduce each power to i·ζ² + j·ζ + k form (implicit in the
//     representation);
//  4. keep the exponents ℓ whose power is monic linear, ζ^ℓ = ζ + k —
//     together with ℓ = 0 (ζ⁰ = 1, the monic constant) these are the q+1
//     projective classes of the plane ⟨1, ζ⟩;
//  5. reduce the exponents mod N.
//
// The result is sorted ascending and always contains 0 and 1.
func DifferenceSet(q int) ([]int, error) {
	base, err := ff.New(q)
	if err != nil {
		return nil, fmt.Errorf("singer: %w", err)
	}
	f, err := ff.FindPrimitivePoly(base, 3)
	if err != nil {
		return nil, fmt.Errorf("singer: %w", err)
	}
	n := q*q + q + 1
	groupOrder := q*q*q - 1

	// Walk the powers of ζ in coefficient space: cur = (c0, c1, c2)
	// represents c0 + c1ζ + c2ζ². Multiplication by ζ shifts coefficients
	// and reduces by f: ζ³ = −(f2ζ² + f1ζ + f0).
	f0, f1, f2 := f.Coeff(0), f.Coeff(1), f.Coeff(2)
	c0, c1, c2 := 1, 0, 0 // ζ⁰ = 1
	ds := map[int]bool{0: true}
	for ell := 1; ell < groupOrder; ell++ {
		// Multiply by ζ.
		t2 := c1
		t1 := c0
		t0 := 0
		if c2 != 0 {
			t0 = base.Neg(base.Mul(c2, f0))
			t1 = base.Add(t1, base.Neg(base.Mul(c2, f1)))
			t2 = base.Add(t2, base.Neg(base.Mul(c2, f2)))
		}
		c0, c1, c2 = t0, t1, t2
		if c2 == 0 && c1 == 1 { // ζ^ℓ = ζ + c0, monic linear
			ds[ell%n] = true
		}
	}
	if len(ds) != q+1 {
		return nil, fmt.Errorf("singer: q=%d produced %d difference elements, want %d", q, len(ds), q+1)
	}
	out := make([]int, 0, q+1)
	for d := range ds {
		out = append(out, d)
	}
	sort.Ints(out)
	return out, nil
}

// IsDifferenceSet verifies Definition 6.2: every non-zero residue of Z_N
// appears exactly once among the pairwise differences of D.
func IsDifferenceSet(d []int, n int) bool {
	seen := make([]int, n)
	for i := range d {
		for j := range d {
			if i == j {
				continue
			}
			seen[numtheory.Mod(d[i]-d[j], n)]++
		}
	}
	if seen[0] != 0 {
		return false
	}
	for r := 1; r < n; r++ {
		if seen[r] != 1 {
			return false
		}
	}
	return true
}

// Graph is the Singer graph S_q with its difference set and derived vertex
// classification.
type Graph struct {
	// Q is the prime power; N = q²+q+1 is the vertex count.
	Q, N int
	// D is the Singer difference set, sorted ascending.
	D []int

	topoOnce sync.Once
	topo     *graph.Graph

	inD       []bool
	halfInv   int // 2⁻¹ mod N (Lemma 6.7)
	types     []VertexClass
	reflector []int // reflector[v] = d with 2v ≡ d, or -1
}

// VertexClass mirrors er.VertexType for the Singer construction.
type VertexClass int

const (
	// Reflection vertices satisfy 2v mod N ∈ D; they are the PolarFly
	// quadrics (Corollary 6.8).
	Reflection VertexClass = iota
	// Class1 vertices are neighbors of reflection points (Corollary 6.9).
	Class1
	// Class2 vertices are the rest.
	Class2
)

func (c VertexClass) String() string {
	switch c {
	case Reflection:
		return "W"
	case Class1:
		return "V1"
	case Class2:
		return "V2"
	}
	return fmt.Sprintf("VertexClass(%d)", int(c))
}

// New constructs the Singer graph for prime power q, deriving the
// difference set via DifferenceSet.
func New(q int) (*Graph, error) {
	d, err := DifferenceSet(q)
	if err != nil {
		return nil, err
	}
	return FromDifferenceSet(q, d)
}

// FromDifferenceSet constructs S_q from an explicit difference set, which
// must be a valid Singer difference set of order q+1 over Z_{q²+q+1}.
func FromDifferenceSet(q int, d []int) (*Graph, error) {
	n := q*q + q + 1
	if len(d) != q+1 {
		return nil, fmt.Errorf("singer: difference set has %d elements, want %d", len(d), q+1)
	}
	if !IsDifferenceSet(d, n) {
		return nil, fmt.Errorf("singer: %v is not a difference set over Z_%d", d, n)
	}
	s := &Graph{
		Q:         q,
		N:         n,
		D:         append([]int(nil), d...),
		inD:       make([]bool, n),
		halfInv:   (n + 1) / 2,
		reflector: make([]int, n),
	}
	sort.Ints(s.D)
	for _, x := range s.D {
		if x < 0 || x >= n {
			return nil, fmt.Errorf("singer: element %d out of Z_%d", x, n)
		}
		s.inD[x] = true
	}
	for v := 0; v < n; v++ {
		s.reflector[v] = -1
		if s.inD[(2*v)%n] {
			s.reflector[v] = (2 * v) % n
		}
	}
	// Classification per Corollaries 6.8 and 6.9: reflection points are
	// 2⁻¹·d; a non-reflection vertex is V1 iff it is adjacent to some
	// reflection point w, i.e. (v + w) mod N ∈ D. This needs only D, not
	// the materialised topology (which Topology builds lazily).
	s.types = make([]VertexClass, n)
	var refl []int
	for v := 0; v < n; v++ {
		s.types[v] = Class2
		if s.reflector[v] >= 0 {
			s.types[v] = Reflection
			refl = append(refl, v)
		}
	}
	for v := 0; v < n; v++ {
		if s.types[v] == Reflection {
			continue
		}
		for _, w := range refl {
			if v != w && s.inD[(v+w)%n] {
				s.types[v] = Class1
				break
			}
		}
	}
	return s, nil
}

// Topology returns the simple graph of S_q: edges (i,j), i≠j, with
// (i+j) mod N ∈ D. Self-loops at reflection points are omitted (PolarFly
// drops them) but recorded via ReflectionPoints. The graph is built on
// first use and cached; it is safe for concurrent callers.
func (s *Graph) Topology() *graph.Graph {
	s.topoOnce.Do(func() {
		g := graph.New(s.N)
		// Enumerate edges by colour class: for each d ∈ D the proper edges
		// are the pairs {i, d−i}, i < d−i. O(N·|D|) instead of O(N²).
		for _, dElem := range s.D {
			for i := 0; i < s.N; i++ {
				j := numtheory.Mod(dElem-i, s.N)
				if i < j {
					g.AddEdge(i, j)
				}
			}
		}
		s.topo = g
	})
	return s.topo
}

// HasEdge reports whether (i, j) is an edge of S_q, i.e. i ≠ j and
// (i+j) mod N ∈ D, without materialising the topology.
func (s *Graph) HasEdge(i, j int) bool {
	if i == j || i < 0 || j < 0 || i >= s.N || j >= s.N {
		return false
	}
	return s.inD[(i+j)%s.N]
}

// HalfInverse returns 2⁻¹ mod N = (N+1)/2 (Lemma 6.7).
func (s *Graph) HalfInverse() int { return s.halfInv }

// InD reports whether x mod N is a difference-set element.
func (s *Graph) InD(x int) bool { return s.inD[numtheory.Mod(x, s.N)] }

// EdgeSum returns the edge sum (i+j) mod N of an edge (Definition 6.4). It
// panics if (i,j) is not an edge of S_q.
func (s *Graph) EdgeSum(i, j int) int {
	if !s.HasEdge(i, j) {
		panic(fmt.Sprintf("singer: (%d,%d) is not an edge", i, j))
	}
	return (i + j) % s.N
}

// Class returns the W/V1/V2 classification of vertex v.
func (s *Graph) Class(v int) VertexClass { return s.types[v] }

// ReflectionPoints returns the sorted reflection points (Definition 6.5);
// there are exactly q+1, one per difference-set element (Corollary 6.8).
func (s *Graph) ReflectionPoints() []int {
	var out []int
	for v := 0; v < s.N; v++ {
		if s.types[v] == Reflection {
			out = append(out, v)
		}
	}
	return out
}

// ReflectionOf returns the reflection point 2⁻¹·d for a difference-set
// element d (Corollary 6.8). It panics if d ∉ D.
func (s *Graph) ReflectionOf(d int) int {
	if !s.InD(d) {
		panic(fmt.Sprintf("singer: %d not in difference set", d))
	}
	return s.halfInv * d % s.N
}

// SelfLoopColor returns the difference-set element d whose self-loop sits
// at reflection point v (i.e. 2v mod N), or -1 if v is not a reflection
// point.
func (s *Graph) SelfLoopColor(v int) int { return s.reflector[v] }
