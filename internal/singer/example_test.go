package singer_test

import (
	"fmt"

	"polarfly/internal/singer"
)

// ExampleDifferenceSet reproduces Figure 2a of the paper.
func ExampleDifferenceSet() {
	d, err := singer.DifferenceSet(3)
	if err != nil {
		panic(err)
	}
	fmt.Println(d)
	// Output: [0 1 3 9]
}

// ExampleGraph_MaximalPath walks the alternating-sum Hamiltonian path of
// colours (0, 1) in S_3, from the reflection point of 1 to that of 0.
func ExampleGraph_MaximalPath() {
	s, err := singer.New(3)
	if err != nil {
		panic(err)
	}
	fmt.Println(s.MaximalPath(singer.Pair{D0: 0, D1: 1}))
	// Output: [7 6 8 5 9 4 10 3 11 2 12 1 0]
}

// ExampleGraph_DisjointHamiltonianPairs finds the ⌊(q+1)/2⌋ edge-disjoint
// Hamiltonian paths for q=4 (Figure 4b shows such a set).
func ExampleGraph_DisjointHamiltonianPairs() {
	s, err := singer.New(4)
	if err != nil {
		panic(err)
	}
	pairs, ok := s.DisjointHamiltonianPairs(2, 30, 42)
	fmt.Println(len(pairs), ok)
	// Output: 2 true
}
