package singer

import (
	"sort"
	"testing"

	"polarfly/internal/numtheory"
)

// TestMultiplierTheorem verifies the classical multiplier theorem for
// Singer difference sets: q is a (numerical) multiplier, i.e. q·D mod N is
// a translate D + c of D. This is a deep structural property of the
// construction (it reflects the Frobenius automorphism of GF(q³)) and a
// strong independent check that our sets really are Singer difference
// sets, not merely perfect difference sets.
func TestMultiplierTheorem(t *testing.T) {
	hi := 32
	if testing.Short() {
		hi = 13
	}
	for _, q := range numtheory.PrimePowersUpTo(2, hi) {
		d, err := DifferenceSet(q)
		if err != nil {
			t.Fatalf("q=%d: %v", q, err)
		}
		n := q*q + q + 1
		scaled := make([]int, len(d))
		for i, x := range d {
			scaled[i] = x * q % n
		}
		sort.Ints(scaled)
		// Find c with scaled = (d + c) mod N as sets.
		inD := make([]bool, n)
		for _, x := range d {
			inD[x] = true
		}
		foundShift := -1
		for c := 0; c < n; c++ {
			match := true
			for _, x := range scaled {
				if !inD[numtheory.Mod(x-c, n)] {
					match = false
					break
				}
			}
			if match {
				foundShift = c
				break
			}
		}
		if foundShift == -1 {
			t.Errorf("q=%d: q·D is not a translate of D (multiplier theorem violated)", q)
		}
	}
}

// TestPerfectDifferenceSetUniqueRepresentation spot-checks the defining
// property from the difference side: for every non-zero residue r there is
// exactly one ordered pair (d_i, d_j) with d_i − d_j ≡ r.
func TestPerfectDifferenceSetUniqueRepresentation(t *testing.T) {
	for _, q := range []int{3, 4, 5, 7, 8, 9} {
		s := buildS(t, q)
		for r := 1; r < s.N; r++ {
			count := 0
			for _, di := range s.D {
				for _, dj := range s.D {
					if di != dj && numtheory.Mod(di-dj, s.N) == r {
						count++
					}
				}
			}
			if count != 1 {
				t.Fatalf("q=%d: residue %d represented %d times", q, r, count)
			}
		}
	}
}
