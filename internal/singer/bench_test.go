package singer

import (
	"fmt"
	"testing"
)

func BenchmarkDifferenceSet(b *testing.B) {
	// Covers the primitive-polynomial search plus the ζ-power walk; q=127
	// walks the full 2M-element GF(127³) multiplicative group.
	for _, q := range []int{16, 64, 127} {
		b.Run(fmt.Sprintf("q=%d", q), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := DifferenceSet(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkMaximalPath(b *testing.B) {
	s, err := New(127)
	if err != nil {
		b.Fatal(err)
	}
	pairs := s.HamiltonianPairs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.MaximalPath(pairs[i%len(pairs)])
	}
}

func BenchmarkDisjointHamiltonianSearch(b *testing.B) {
	for _, q := range []int{31, 127} {
		s, err := New(q)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("q=%d", q), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, ok := s.DisjointHamiltonianPairs(s.MaxDisjointUpperBound(), 30, int64(i)); !ok {
					b.Fatal("search failed")
				}
			}
		})
	}
}

func BenchmarkTopologyMaterialisation(b *testing.B) {
	s, err := New(64)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Rebuild from the difference set to measure the full path.
		s2, err := FromDifferenceSet(64, s.D)
		if err != nil {
			b.Fatal(err)
		}
		_ = s2.Topology()
	}
}
