// Package critpath reconstructs the causal dependency chain of a netsim
// run from its trace stream and attributes every cycle of the completion
// time to a blame class. The headline invariant is exact conservation:
// walking backwards from the last delivery event to cycle 0 yields a
// telescoping sequence of path segments whose cycle counts sum to the
// run's Result.Cycles with zero tolerance.
//
// The causal model mirrors the simulator's per-cycle ordering. A flit's
// arrival depends on its send one link latency earlier; a send depends
// on the flit's payload becoming available at the sender (the slowest
// child arrival for a reduce stream, the parent arrival for a broadcast
// stream, the root engine's compute for the root's broadcast, or the
// job's birth for a leaf); a root compute depends on the slowest child
// arrival and on the engine's previous output; a re-issued job's birth
// depends on the recovery round that created it, the recovery on the
// fault that triggered it, and the fault bridges back into the doomed
// stream's pre-fault history. Cycles between a node and its predecessor
// are classified per cycle: a recorded credit stall blames the VC window,
// a link busy with the same stream blames serialization, a link busy
// with another stream blames congestion, and the (fault, recovery]
// interval splits into detection latency and re-split cost. Anything the
// model cannot explain is counted as unattributed residue — the perf
// gate fails when it is non-zero.
package critpath

import (
	"fmt"
	"sort"

	"polarfly/internal/faults"
	"polarfly/internal/netsim"
)

// Class is one blame category of the critical-path taxonomy.
type Class int

const (
	// ClassCompute blames the reduction engine: gaps between a root
	// flit's inputs being ready and the engine emitting it (the engine
	// runs at link rate, one flit per job per cycle).
	ClassCompute Class = iota
	// ClassSerialization blames the wire: a flit's link-latency flight
	// time, its own injection slot, and cycles the link spent injecting
	// earlier flits of the same stream.
	ClassSerialization
	// ClassCongestion blames VC contention: cycles the link's injection
	// slot went to a different stream (another tree, phase, or job).
	ClassCongestion
	// ClassCreditStall blames the credit window: cycles the sender had
	// data ready but VCDepth flits were already outstanding.
	ClassCreditStall
	// ClassFaultDetect blames detection latency: the slice of a
	// (fault, recovery] interval up to the timeout deadline
	// (LinkLatency + FaultDetectTimeout).
	ClassFaultDetect
	// ClassRecovery blames the re-split: the remainder of a
	// (fault, recovery] interval beyond the detection deadline.
	ClassRecovery
	// ClassUnattributed is the residue: cycles the causal model could
	// not explain (degraded-link metering, engine-stall freezes and
	// EngineRate caps leave no trace event). The gate fails on any.
	ClassUnattributed

	numClasses
)

func (c Class) String() string {
	switch c {
	case ClassCompute:
		return "compute"
	case ClassSerialization:
		return "serialization"
	case ClassCongestion:
		return "congestion"
	case ClassCreditStall:
		return "credit-stall"
	case ClassFaultDetect:
		return "fault-detect"
	case ClassRecovery:
		return "recovery"
	case ClassUnattributed:
		return "unattributed"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Classes lists every blame class in canonical order.
func Classes() []Class {
	out := make([]Class, numClasses)
	for i := range out {
		out[i] = Class(i)
	}
	return out
}

const (
	phaseReduce = 0
	phaseBcast  = 1
)

// streamKey identifies one virtual-channel stream. Job (the simulator's
// creation index) disambiguates recovery re-issues, which reuse a
// (tree, phase, from, to) identity with flit indices restarting at 0.
type streamKey struct{ job, from, to, phase int }

// stream accumulates one VC's event history: per-flit send and arrival
// cycles and the cycles it reported credit stalls.
type stream struct {
	id      int32
	key     streamKey
	tree    int
	sends   []int32 // flit → injection cycle, -1 unseen
	arrives []int32 // flit → delivery cycle, -1 unseen
	stalls  []int32 // ascending stall cycles, deduplicated
}

// linkLog is the per-directed-link injection history: one (cycle, stream)
// entry per send, in emission order (cycles non-decreasing).
type linkLog struct {
	cycles  []int32
	streams []int32 // stream ids, parallel to cycles
}

// sendAt reports the stream that injected on the link at cycle g (the
// first one, under trunked LinkBandwidth > 1), or -1.
func (ll *linkLog) sendAt(g int) int32 {
	if ll == nil {
		return -1
	}
	i := sort.Search(len(ll.cycles), func(i int) bool { return ll.cycles[i] >= int32(g) })
	if i < len(ll.cycles) && ll.cycles[i] == int32(g) {
		return ll.streams[i]
	}
	return -1
}

// jobInfo is the per-job view: its tree, root (learned from compute
// events) and per-flit root-compute cycles.
type jobInfo struct {
	tree     int
	root     int // -1 until a compute event names it
	computes []int32
}

// faultMark records one TraceFault event; kind carries the fault's
// faults.Kind (the simulator emits it in TraceEvent.Phase) so recovery
// pairing can skip marks that cannot have triggered a timeout.
type faultMark struct{ cycle, u, v, kind int }

// lossyFault reports whether a fault mark's kind drops flits and can
// therefore trigger a recovery round.
func lossyFault(kind int) bool { return faults.Kind(kind).Lossy() }

type recoverMark struct {
	cycle, u, v int
	firstJob    int // index of the first job the round re-issued
	reissued    int
}

// Builder consumes a netsim trace stream and indexes it for Analyze.
// Attach it with Attach (chaining any existing hook) or feed Observe
// directly; events must arrive in the simulator's deterministic order.
type Builder struct {
	linkLatency    int
	detectDeadline int // LinkLatency + FaultDetectTimeout, defaults applied

	streams  []*stream
	streamID map[streamKey]int32
	links    map[[2]int]*linkLog
	jobs     []*jobInfo
	faults   []faultMark
	recovers []recoverMark

	// Completion candidate: the earliest-observed delivery event
	// (broadcast arrival or root compute) at the highest cycle.
	haveDone   bool
	doneCycle  int
	doneArrive bool  // true: arrival on doneStream; false: compute on doneJob
	doneStream int32 //
	doneJob    int
	doneFlit   int
}

// NewBuilder returns an empty builder with LinkLatency 1 and the
// corresponding default detection deadline; Attach overrides both from
// the run's Config.
func NewBuilder() *Builder {
	return &Builder{
		linkLatency:    1,
		detectDeadline: 1 + 4*1,
		streamID:       make(map[streamKey]int32),
		links:          make(map[[2]int]*linkLog),
	}
}

// Attach hooks the builder into a simulation config, chaining any trace
// hook already installed, and adopts the config's link latency and fault
// detection deadline (replicating Config.validate's defaulting, which
// runs on a copy). Call before netsim.Run.
func (b *Builder) Attach(cfg *netsim.Config) {
	if cfg.LinkLatency >= 1 {
		b.linkLatency = cfg.LinkLatency
		fdt := cfg.FaultDetectTimeout
		if fdt == 0 {
			fdt = 4 * cfg.LinkLatency
		}
		b.detectDeadline = cfg.LinkLatency + fdt
	}
	prev := cfg.Trace
	cfg.Trace = func(ev netsim.TraceEvent) {
		b.Observe(ev)
		if prev != nil {
			prev(ev)
		}
	}
}

func (b *Builder) stream(ev netsim.TraceEvent) *stream {
	key := streamKey{job: ev.Job, from: ev.From, to: ev.To, phase: ev.Phase}
	if id, ok := b.streamID[key]; ok {
		return b.streams[id]
	}
	s := &stream{id: int32(len(b.streams)), key: key, tree: ev.Tree}
	b.streamID[key] = s.id
	b.streams = append(b.streams, s)
	return s
}

func (b *Builder) job(idx int) *jobInfo {
	for len(b.jobs) <= idx {
		b.jobs = append(b.jobs, &jobInfo{root: -1})
	}
	return b.jobs[idx]
}

// setAt grows sl so index idx holds cycle, filling skipped slots with -1.
func setAt(sl *[]int32, idx, cycle int) {
	for len(*sl) <= idx {
		*sl = append(*sl, -1)
	}
	(*sl)[idx] = int32(cycle)
}

// Observe consumes one trace event.
func (b *Builder) Observe(ev netsim.TraceEvent) {
	switch ev.Kind {
	case netsim.TraceSend:
		s := b.stream(ev)
		setAt(&s.sends, ev.Flit, ev.Cycle)
		key := [2]int{ev.From, ev.To}
		ll, ok := b.links[key]
		if !ok {
			ll = &linkLog{}
			b.links[key] = ll
		}
		ll.cycles = append(ll.cycles, int32(ev.Cycle))
		ll.streams = append(ll.streams, s.id)
	case netsim.TraceArrive:
		s := b.stream(ev)
		setAt(&s.arrives, ev.Flit, ev.Cycle)
		if ev.Phase == phaseBcast {
			b.noteDelivery(ev.Cycle, true, s.id, ev.Job, ev.Flit)
		}
	case netsim.TraceStall:
		s := b.stream(ev)
		if n := len(s.stalls); n == 0 || s.stalls[n-1] != int32(ev.Cycle) {
			s.stalls = append(s.stalls, int32(ev.Cycle))
		}
	case netsim.TraceRootCompute:
		j := b.job(ev.Job)
		j.tree = ev.Tree
		j.root = ev.From
		setAt(&j.computes, ev.Flit, ev.Cycle)
		b.noteDelivery(ev.Cycle, false, -1, ev.Job, ev.Flit)
	case netsim.TraceFault:
		b.faults = append(b.faults, faultMark{cycle: ev.Cycle, u: ev.From, v: ev.To, kind: ev.Phase})
	case netsim.TraceRecover:
		b.recovers = append(b.recovers, recoverMark{
			cycle: ev.Cycle, u: ev.From, v: ev.To,
			firstJob: ev.Job, reissued: ev.Flit,
		})
	case netsim.TraceDrop, netsim.TraceBufferOccupancy:
		// Drops are causally represented by the fault bridge; occupancy
		// is a per-link gauge with no dependency edge.
	}
}

// noteDelivery tracks the completion event: the first-observed delivery
// (broadcast arrival or root compute) at the highest cycle. The trace
// stream is deterministic, so the choice is too.
func (b *Builder) noteDelivery(cycle int, arrive bool, sid int32, job, flit int) {
	if b.haveDone && cycle <= b.doneCycle {
		return
	}
	b.haveDone = true
	b.doneCycle = cycle
	b.doneArrive = arrive
	b.doneStream = sid
	b.doneJob = job
	b.doneFlit = flit
}

// birth returns the cycle job idx came into existence: 0 for the initial
// per-tree jobs, the recovery round's cycle for re-issues. The second
// result is the index of the creating recovery round, -1 for initial
// jobs.
func (b *Builder) birth(idx int) (int, int) {
	for i := len(b.recovers) - 1; i >= 0; i-- {
		if b.recovers[i].firstJob <= idx {
			return b.recovers[i].cycle, i
		}
	}
	return 0, -1
}

// containsCycle reports whether the ascending slice holds cycle g.
func containsCycle(sl []int32, g int) bool {
	i := sort.Search(len(sl), func(i int) bool { return sl[i] >= int32(g) })
	return i < len(sl) && sl[i] == int32(g)
}
