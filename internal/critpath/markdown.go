package critpath

import (
	"fmt"
	"io"
	"sort"
)

// WriteMarkdown renders the per-class blame table and the topK longest
// path segments as a markdown report (the -critpath-out format).
func WriteMarkdown(w io.Writer, a *Analysis, topK int) error {
	if _, err := fmt.Fprintf(w, "# Critical path (%d cycles, %d causal events)\n\n", a.Cycles, a.PathNodes); err != nil {
		return err
	}
	fmt.Fprintln(w, "| blame class | cycles | share |")
	fmt.Fprintln(w, "|---|---:|---:|")
	for _, e := range a.Blame {
		if e.Cycles == 0 && e.Class != "serialization" {
			continue
		}
		share := 0.0
		if a.Cycles > 0 {
			share = 100 * float64(e.Cycles) / float64(a.Cycles)
		}
		fmt.Fprintf(w, "| %s | %d | %.1f%% |\n", e.Class, e.Cycles, share)
	}
	fmt.Fprintf(w, "| **total** | %d | 100.0%% |\n\n", a.Cycles)

	if len(a.TopSerialization) > 0 {
		n := len(a.TopSerialization)
		if n > 3 {
			n = 3
		}
		fmt.Fprint(w, "Serialization bottleneck links:")
		for i := 0; i < n; i++ {
			lb := a.TopSerialization[i]
			if i > 0 {
				fmt.Fprint(w, ",")
			}
			fmt.Fprintf(w, " %d→%d (%d cycles)", lb.From, lb.To, lb.Cycles)
		}
		fmt.Fprintln(w)
		fmt.Fprintln(w)
	}
	if a.RecoveriesOnPath > 0 {
		fmt.Fprintf(w, "Recovery rounds on the path: %d (%d cycles fault→recovery latency)\n\n",
			a.RecoveriesOnPath, a.RecoveryLatencyCycles)
	}

	if topK <= 0 {
		topK = 10
	}
	segs := make([]Segment, len(a.Segments))
	copy(segs, a.Segments)
	sort.SliceStable(segs, func(i, j int) bool {
		if segs[i].Cycles() != segs[j].Cycles() {
			return segs[i].Cycles() > segs[j].Cycles()
		}
		return segs[i].Start < segs[j].Start
	})
	if len(segs) > topK {
		segs = segs[:topK]
	}
	fmt.Fprintf(w, "## Top %d path segments (of %d)\n\n", len(segs), len(a.Segments))
	fmt.Fprintln(w, "| start | end | cycles | class | link | tree | phase | job |")
	fmt.Fprintln(w, "|---:|---:|---:|---|---|---:|---|---:|")
	for _, s := range segs {
		if _, err := fmt.Fprintf(w, "| %d | %d | %d | %s | %s | %s | %s | %s |\n",
			s.Start, s.End, s.Cycles(), s.Class,
			linkCell(s.From, s.To), intCell(s.Tree), phaseCell(s.Phase), intCell(s.Job)); err != nil {
			return err
		}
	}
	return nil
}

func linkCell(from, to int) string {
	if from < 0 {
		return "-"
	}
	if from == to {
		return fmt.Sprintf("router %d", from)
	}
	return fmt.Sprintf("%d→%d", from, to)
}

func intCell(v int) string {
	if v < 0 {
		return "-"
	}
	return fmt.Sprintf("%d", v)
}

func phaseCell(p int) string {
	switch p {
	case phaseReduce:
		return "reduce"
	case phaseBcast:
		return "bcast"
	}
	return "-"
}
