package critpath

import (
	"strings"
	"testing"

	"polarfly/internal/core"
	"polarfly/internal/faults"
	"polarfly/internal/netsim"
	"polarfly/internal/obsv"
	"polarfly/internal/workload"
)

func runWithBuilder(t *testing.T, q int, kind core.EmbeddingKind, m int, cfg netsim.Config) (*Builder, *core.AllreduceResult, *obsv.Report) {
	t.Helper()
	inst, err := core.NewInstance(q)
	if err != nil {
		t.Fatalf("NewInstance(%d): %v", q, err)
	}
	e, err := inst.Embed(kind)
	if err != nil {
		t.Fatalf("Embed(%v): %v", kind, err)
	}
	inputs := workload.Vectors(inst.N(), m, 1000, core.DefaultSeed)
	b := NewBuilder()
	col := obsv.NewCollector()
	col.Attach(&cfg)
	b.Attach(&cfg) // chained in front of the collector
	res, err := inst.Allreduce(e, inputs, cfg)
	if err != nil {
		t.Fatalf("Allreduce: %v", err)
	}
	col.SetCycles(res.Cycles)
	return b, res, col.Report()
}

func TestConservationFaultFree(t *testing.T) {
	for _, kind := range []core.EmbeddingKind{core.SingleTree, core.LowDepth, core.Hamiltonian} {
		for _, cfg := range []netsim.Config{
			{LinkLatency: 1, VCDepth: 4},
			{LinkLatency: 3, VCDepth: 2}, // VCDepth < latency: credit stalls guaranteed
			{LinkLatency: 2, VCDepth: 8, LinkBandwidth: 2},
		} {
			b, res, _ := runWithBuilder(t, 3, kind, 96, cfg)
			a, err := b.Analyze(res.Cycles)
			if err != nil {
				t.Fatalf("%v %+v: Analyze: %v", kind, cfg, err)
			}
			total := 0
			for _, e := range a.Blame {
				total += e.Cycles
			}
			if total != res.Cycles {
				t.Errorf("%v %+v: blame sums to %d, want %d", kind, cfg, total, res.Cycles)
			}
			if a.Unattributed != 0 {
				t.Errorf("%v %+v: unattributed residue %d, want 0", kind, cfg, a.Unattributed)
			}
			if a.RecoveriesOnPath != 0 {
				t.Errorf("%v %+v: fault-free run traversed %d recoveries", kind, cfg, a.RecoveriesOnPath)
			}
			if len(a.TopSerialization) == 0 {
				t.Errorf("%v %+v: no serialization blame recorded", kind, cfg)
			}
		}
	}
}

func TestCreditStallBlameAppears(t *testing.T) {
	// VCDepth 2 with latency 3 cannot cover the latency-bandwidth
	// product, so the pipeline throttles on credit and the path must
	// blame the credit window for part of the run.
	b, res, _ := runWithBuilder(t, 3, core.Hamiltonian, 128, netsim.Config{LinkLatency: 3, VCDepth: 2})
	a, err := b.Analyze(res.Cycles)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if got := a.BlameCycles("credit-stall"); got == 0 {
		t.Errorf("credit-starved run attributed no credit-stall cycles (blame %v)", a.Blame)
	}
}

func TestSerializationDominatesAtLargeM(t *testing.T) {
	b, res, _ := runWithBuilder(t, 3, core.Hamiltonian, 2048, netsim.Config{LinkLatency: 1, VCDepth: 4})
	a, err := b.Analyze(res.Cycles)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if got := a.DominantClass(); got != "serialization" {
		t.Errorf("dominant class %q, want serialization (blame %v)", got, a.Blame)
	}
	// The bottleneck link's serialization blame should account for most
	// of the run at large m (the waterfill argument).
	if top := a.TopSerialization[0]; top.Cycles < res.Cycles/2 {
		t.Errorf("top serialization link %d→%d explains only %d of %d cycles",
			top.From, top.To, top.Cycles, res.Cycles)
	}
}

func TestFaultedRecoveryBlameMatchesCollector(t *testing.T) {
	for _, kind := range []core.EmbeddingKind{core.LowDepth, core.Hamiltonian} {
		inst, err := core.NewInstance(3)
		if err != nil {
			t.Fatalf("NewInstance: %v", err)
		}
		e, err := inst.Embed(kind)
		if err != nil {
			t.Fatalf("Embed: %v", err)
		}
		link, _, err := core.WorstCaseLink(e)
		if err != nil {
			t.Fatalf("WorstCaseLink: %v", err)
		}
		cfg := netsim.Config{
			LinkLatency: 1, VCDepth: 4,
			Faults: &faults.Plan{Faults: []faults.Fault{{
				Kind: faults.LinkDown, U: link[0], V: link[1], At: 100,
			}}},
		}
		inputs := workload.Vectors(inst.N(), 512, 1000, core.DefaultSeed)
		b := NewBuilder()
		col := obsv.NewCollector()
		col.Attach(&cfg)
		b.Attach(&cfg)
		res, err := inst.Allreduce(e, inputs, cfg)
		if err != nil {
			t.Fatalf("%v: Allreduce: %v", kind, err)
		}
		col.SetCycles(res.Cycles)
		rep := col.Report()
		if len(rep.Recoveries) == 0 {
			t.Fatalf("%v: fault plan produced no recovery", kind)
		}
		a, err := b.Analyze(res.Cycles)
		if err != nil {
			t.Fatalf("%v: Analyze: %v", kind, err)
		}
		if a.Unattributed != 0 {
			t.Errorf("%v: unattributed residue %d, want 0", kind, a.Unattributed)
		}
		if a.RecoveriesOnPath != len(rep.Recoveries) {
			t.Errorf("%v: path traversed %d recoveries, collector measured %d",
				kind, a.RecoveriesOnPath, len(rep.Recoveries))
		}
		measured := 0
		for _, r := range rep.Recoveries {
			measured += r.LatencyCycles
		}
		blamed := a.BlameCycles("fault-detect") + a.BlameCycles("recovery")
		if blamed != measured {
			t.Errorf("%v: fault-detect+recovery blame %d != measured recovery latency %d",
				kind, blamed, measured)
		}
		if a.RecoveryLatencyCycles != measured {
			t.Errorf("%v: RecoveryLatencyCycles %d != measured %d", kind, a.RecoveryLatencyCycles, measured)
		}
	}
}

// treeLinkOther returns a canonical (u < v) tree link of forest tree ti
// different from avoid.
func treeLinkOther(t *testing.T, e *core.Embedding, ti int, avoid [2]int) [2]int {
	t.Helper()
	for v, p := range e.Forest[ti].Parent {
		if p < 0 {
			continue
		}
		l := [2]int{v, p}
		if l[0] > l[1] {
			l[0], l[1] = l[1], l[0]
		}
		if l != avoid {
			return l
		}
	}
	t.Fatalf("tree %d has no link other than %v", ti, avoid)
	return [2]int{}
}

// TestTwoRecoveryConservation is the nested-recovery contract: a second
// link failure landing while the first recovery's re-issues are still in
// flight forces a second round, and the blame split must still telescope
// to exactly Result.Cycles with zero residue, with the fault-detect +
// recovery blame equal to the collector's measured latency summed over
// exactly the traversed rounds.
func TestTwoRecoveryConservation(t *testing.T) {
	inst, err := core.NewInstance(5)
	if err != nil {
		t.Fatalf("NewInstance: %v", err)
	}
	e, err := inst.Embed(core.LowDepth)
	if err != nil {
		t.Fatalf("Embed: %v", err)
	}
	inputs := workload.Vectors(inst.N(), 3000, 1000, core.DefaultSeed)
	linkA := treeLinkOther(t, e, 0, [2]int{-1, -1})

	// Probe: learn when the first recovery lands and which trees it kills.
	probe, err := inst.Allreduce(e, inputs, netsim.Config{
		LinkLatency: 3, VCDepth: 6,
		Faults: &faults.Plan{Faults: []faults.Fault{
			{Kind: faults.LinkDown, U: linkA[0], V: linkA[1], At: 200},
		}},
	})
	if err != nil {
		t.Fatalf("probe Allreduce: %v", err)
	}
	if len(probe.Recoveries) == 0 {
		t.Fatal("probe fault produced no recovery")
	}
	rc := probe.Recoveries[0].Cycle
	dead := make(map[int]bool)
	for _, ti := range probe.DeadTrees {
		dead[ti] = true
	}
	survivor := -1
	for ti := range e.Forest {
		if !dead[ti] {
			survivor = ti
			break
		}
	}
	if survivor < 0 {
		t.Fatal("probe fault killed every tree")
	}
	linkB := treeLinkOther(t, e, survivor, linkA)

	// Real run: the second failure hits a survivor's link 50 cycles after
	// the first recovery, while its re-issued traffic is in flight.
	cfg := netsim.Config{
		LinkLatency: 3, VCDepth: 6,
		Faults: &faults.Plan{Faults: []faults.Fault{
			{Kind: faults.LinkDown, U: linkA[0], V: linkA[1], At: 200},
			{Kind: faults.LinkDown, U: linkB[0], V: linkB[1], At: rc + 50},
		}},
	}
	b := NewBuilder()
	col := obsv.NewCollector()
	col.Attach(&cfg)
	b.Attach(&cfg)
	res, err := inst.Allreduce(e, inputs, cfg)
	if err != nil {
		t.Fatalf("Allreduce: %v", err)
	}
	if len(res.Recoveries) < 2 {
		t.Fatalf("staggered plan produced %d recoveries, want ≥ 2", len(res.Recoveries))
	}
	col.SetCycles(res.Cycles)
	rep := col.Report()
	a, err := b.Analyze(res.Cycles)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	total := 0
	for _, be := range a.Blame {
		total += be.Cycles
	}
	if total != res.Cycles {
		t.Errorf("blame sums to %d, want exactly %d", total, res.Cycles)
	}
	if a.Unattributed != 0 {
		t.Errorf("unattributed residue %d, want 0", a.Unattributed)
	}
	segSum := 0
	for _, s := range a.Segments {
		segSum += s.Cycles()
	}
	if segSum != res.Cycles {
		t.Errorf("segments sum to %d, want %d", segSum, res.Cycles)
	}
	if len(a.RecoveryRounds) != a.RecoveriesOnPath {
		t.Errorf("RecoveryRounds %v but RecoveriesOnPath %d", a.RecoveryRounds, a.RecoveriesOnPath)
	}
	traversed := 0
	for _, ri := range a.RecoveryRounds {
		if ri < 0 || ri >= len(rep.Recoveries) {
			t.Fatalf("traversed round index %d out of range (%d measured)", ri, len(rep.Recoveries))
		}
		traversed += rep.Recoveries[ri].LatencyCycles
	}
	blamed := a.BlameCycles("fault-detect") + a.BlameCycles("recovery")
	if blamed != traversed {
		t.Errorf("fault-detect+recovery blame %d != measured latency %d of traversed rounds %v",
			blamed, traversed, a.RecoveryRounds)
	}
}

func TestAnalyzeZeroCycles(t *testing.T) {
	b := NewBuilder()
	a, err := b.Analyze(0)
	if err != nil {
		t.Fatalf("Analyze(0): %v", err)
	}
	if len(a.Segments) != 0 || a.Cycles != 0 {
		t.Errorf("empty analysis not empty: %+v", a)
	}
}

func TestAnalyzeErrorsWithoutEvents(t *testing.T) {
	b := NewBuilder()
	if _, err := b.Analyze(10); err == nil {
		t.Error("Analyze on an empty trace should error, got nil")
	}
}

func TestSegmentsTelescope(t *testing.T) {
	b, res, _ := runWithBuilder(t, 3, core.LowDepth, 256, netsim.Config{LinkLatency: 2, VCDepth: 4})
	a, err := b.Analyze(res.Cycles)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	at := 0
	for i, s := range a.Segments {
		if s.Start != at {
			t.Fatalf("segment %d starts at %d, want %d", i, s.Start, at)
		}
		if s.End <= s.Start {
			t.Fatalf("segment %d empty or reversed: %+v", i, s)
		}
		at = s.End
	}
	if at != res.Cycles {
		t.Fatalf("segments end at %d, want %d", at, res.Cycles)
	}
}

func TestWriteMarkdown(t *testing.T) {
	b, res, _ := runWithBuilder(t, 3, core.Hamiltonian, 64, netsim.Config{LinkLatency: 1, VCDepth: 4})
	a, err := b.Analyze(res.Cycles)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	var sb strings.Builder
	if err := WriteMarkdown(&sb, a, 5); err != nil {
		t.Fatalf("WriteMarkdown: %v", err)
	}
	out := sb.String()
	for _, want := range []string{"Critical path", "serialization", "**total**", "path segments"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
}
