package critpath

import (
	"fmt"
	"sort"
)

// Segment is one critical-path interval covering cycles (Start, End],
// attributed to a single blame class. Adjacent same-class segments on the
// same stream are merged, so the sequence telescopes: each segment starts
// where the previous one ends, the first starts at 0 and the last ends at
// the run's completion cycle.
type Segment struct {
	Start int    `json:"start"`
	End   int    `json:"end"`
	Class string `json:"class"`
	// From and To name the directed link the segment blames (the root
	// router twice for compute, the failed link for fault segments, -1
	// when no link applies).
	From int `json:"from"`
	To   int `json:"to"`
	// Tree, Phase and Job locate the stream (-1 when not applicable;
	// Phase is 0 for reduction, 1 for broadcast).
	Tree  int `json:"tree"`
	Phase int `json:"phase"`
	Job   int `json:"job"`
}

// Cycles is the segment's length.
func (s Segment) Cycles() int { return s.End - s.Start }

// BlameEntry is one row of the per-class blame table.
type BlameEntry struct {
	Class  string `json:"class"`
	Cycles int    `json:"cycles"`
}

// LinkBlame is the serialization blame charged to one directed link.
type LinkBlame struct {
	From   int `json:"from"`
	To     int `json:"to"`
	Cycles int `json:"cycles"`
}

// Analysis is the result of one backward critical-path walk.
type Analysis struct {
	// Cycles is the run length every segment and blame count must sum to.
	Cycles int `json:"cycles"`
	// Segments is the full critical path in ascending cycle order.
	Segments []Segment `json:"segments"`
	// Blame holds every class's total path cycles, in canonical class
	// order; the entries sum to Cycles exactly.
	Blame []BlameEntry `json:"blame"`
	// PathNodes counts the causal events the walk visited.
	PathNodes int `json:"path_nodes"`
	// Unattributed mirrors the unattributed Blame entry — the residue the
	// gate rejects.
	Unattributed int `json:"unattributed"`
	// RecoveriesOnPath counts the recovery rounds the path traversed, and
	// RecoveryLatencyCycles their summed fault→recovery intervals — the
	// quantity that must equal the obsv collector's measured recovery
	// latency (the fault-detect + recovery blame classes by construction).
	RecoveriesOnPath      int `json:"recoveries_on_path"`
	RecoveryLatencyCycles int `json:"recovery_latency_cycles"`
	// RecoveryRounds lists the indices (into Result.Recoveries order) of
	// the rounds the path traversed, ascending. Under nested recoveries
	// the path can skip rounds whose re-issues were themselves aborted, so
	// the exactness cross-check must sum the collector's measured latency
	// over exactly these rounds rather than the full set.
	RecoveryRounds []int `json:"recovery_rounds,omitempty"`
	// TopSerialization ranks directed links by serialization blame,
	// descending (ties by link id ascending). On a fault-free run the
	// first entry is the measured bottleneck — the link Algorithm 1's
	// waterfill saturates.
	TopSerialization []LinkBlame `json:"top_serialization"`
}

// DominantClass returns the class with the most blame (first in
// canonical order on ties) — "" for an empty analysis.
func (a *Analysis) DominantClass() string {
	best, cycles := "", -1
	for _, e := range a.Blame {
		if e.Cycles > cycles {
			best, cycles = e.Class, e.Cycles
		}
	}
	return best
}

// BlameCycles returns the blame total of one class by name.
func (a *Analysis) BlameCycles(class string) int {
	for _, e := range a.Blame {
		if e.Class == class {
			return e.Cycles
		}
	}
	return 0
}

// node kinds of the backward walk.
const (
	nArrive = iota
	nSend
	nCompute
	nBirth
	nRecover
	nFault
)

type node struct {
	kind  int
	sid   int32 // nArrive/nSend
	job   int   // nCompute/nBirth
	flit  int
	cycle int
	ri    int // recover index (nRecover) / fault index (nFault)
}

// walker holds the per-analysis derived indexes and accumulators.
type walker struct {
	b *Builder
	// redInto[job][node] lists the reduce streams delivering to node,
	// sorted by sender; bcastInto[job][node] is the broadcast stream
	// feeding node.
	redInto   map[int]map[int][]int32
	bcastInto map[int]map[int]int32

	segs      []Segment // in reverse (walk) order
	blame     [numClasses]int
	linkSer   map[[2]int]int
	nodes     int
	recOn     int
	recLat    int
	recRounds []int // traversed recovery-round indices, walk order
}

// Analyze walks backwards from the completion event and returns the
// blame attribution. cycles must be the run's Result.Cycles; Analyze
// errors on any internal inconsistency — a missing causal event, a
// completion event that does not match cycles, or a conservation
// violation — since each would mean the causal model diverged from the
// simulator.
func (b *Builder) Analyze(cycles int) (*Analysis, error) {
	a := &Analysis{Cycles: cycles}
	if cycles == 0 {
		a.Blame = blameTable(&[numClasses]int{})
		return a, nil
	}
	if !b.haveDone {
		return nil, fmt.Errorf("critpath: %d-cycle run produced no delivery event; was the builder attached?", cycles)
	}
	if b.doneCycle != cycles {
		return nil, fmt.Errorf("critpath: last delivery at cycle %d but run reports %d cycles", b.doneCycle, cycles)
	}

	w := &walker{
		b:         b,
		redInto:   make(map[int]map[int][]int32),
		bcastInto: make(map[int]map[int]int32),
		linkSer:   make(map[[2]int]int),
	}
	for _, s := range b.streams {
		switch s.key.phase {
		case phaseReduce:
			m := w.redInto[s.key.job]
			if m == nil {
				m = make(map[int][]int32)
				w.redInto[s.key.job] = m
			}
			m[s.key.to] = append(m[s.key.to], s.id)
		case phaseBcast:
			m := w.bcastInto[s.key.job]
			if m == nil {
				m = make(map[int]int32)
				w.bcastInto[s.key.job] = m
			}
			m[s.key.to] = s.id
		}
	}
	for _, m := range w.redInto {
		for _, ids := range m {
			sort.Slice(ids, func(i, j int) bool {
				return b.streams[ids[i]].key.from < b.streams[ids[j]].key.from
			})
		}
	}

	cur := node{kind: nCompute, job: b.doneJob, flit: b.doneFlit, cycle: b.doneCycle}
	if b.doneArrive {
		cur = node{kind: nArrive, sid: b.doneStream, flit: b.doneFlit, cycle: b.doneCycle}
	}
	if err := w.walk(cur); err != nil {
		return nil, err
	}

	// Reverse into ascending order and verify the telescoping invariant:
	// contiguous coverage of (0, cycles] and exact blame conservation.
	for i, j := 0, len(w.segs)-1; i < j; i, j = i+1, j-1 {
		w.segs[i], w.segs[j] = w.segs[j], w.segs[i]
	}
	at := 0
	for _, seg := range w.segs {
		if seg.Start != at {
			return nil, fmt.Errorf("critpath: path gap at cycle %d (next segment starts at %d)", at, seg.Start)
		}
		at = seg.End
	}
	if at != cycles {
		return nil, fmt.Errorf("critpath: path covers (0,%d], want (0,%d]", at, cycles)
	}
	total := 0
	for _, n := range w.blame {
		total += n
	}
	if total != cycles {
		return nil, fmt.Errorf("critpath: conservation violated: blame sums to %d, want %d", total, cycles)
	}

	a.Segments = w.segs
	a.Blame = blameTable(&w.blame)
	a.PathNodes = w.nodes
	a.Unattributed = w.blame[ClassUnattributed]
	a.RecoveriesOnPath = w.recOn
	a.RecoveryLatencyCycles = w.recLat
	if len(w.recRounds) > 0 {
		a.RecoveryRounds = append([]int(nil), w.recRounds...)
		sort.Ints(a.RecoveryRounds)
	}
	keys := make([][2]int, 0, len(w.linkSer))
	for k := range w.linkSer {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		ca, cb := w.linkSer[a], w.linkSer[b]
		if ca != cb {
			return ca > cb
		}
		if a[0] != b[0] {
			return a[0] < b[0]
		}
		return a[1] < b[1]
	})
	for _, k := range keys {
		a.TopSerialization = append(a.TopSerialization, LinkBlame{From: k[0], To: k[1], Cycles: w.linkSer[k]})
	}
	return a, nil
}

func blameTable(blame *[numClasses]int) []BlameEntry {
	out := make([]BlameEntry, numClasses)
	for c := Class(0); c < numClasses; c++ {
		out[c] = BlameEntry{Class: c.String(), Cycles: blame[c]}
	}
	return out
}

// walk runs the backward chain from the completion node to cycle 0.
func (w *walker) walk(cur node) error {
	b := w.b
	for {
		w.nodes++
		switch cur.kind {
		case nArrive:
			s := b.streams[cur.sid]
			sc, err := eventCycle(s.sends, cur.flit, s, "send")
			if err != nil {
				return err
			}
			w.addSeg(sc, cur.cycle, ClassSerialization, s.key.from, s.key.to, s.tree, s.key.phase, s.key.job)
			cur = node{kind: nSend, sid: cur.sid, flit: cur.flit, cycle: sc}

		case nSend:
			s := b.streams[cur.sid]
			pred, err := w.sendPred(cur, s)
			if err != nil {
				return err
			}
			w.classifyGap(s, pred.cycle, cur.cycle, true)
			cur = pred

		case nCompute:
			pred, err := w.computePred(cur)
			if err != nil {
				return err
			}
			j := b.jobs[cur.job]
			w.addSeg(pred.cycle, cur.cycle, ClassCompute, j.root, j.root, j.tree, -1, cur.job)
			cur = pred

		case nBirth:
			birth, ri := b.birth(cur.job)
			if ri < 0 {
				if birth != 0 {
					return fmt.Errorf("critpath: initial job %d born at cycle %d", cur.job, birth)
				}
				return nil // reached cycle 0
			}
			cur = node{kind: nRecover, ri: ri, cycle: birth}

		case nRecover:
			r := b.recovers[cur.ri]
			// Pair the round with the fault that triggered it: the latest
			// lossy mark at or before the recovery, preferring one on the
			// round's own suspect link. Under nested recoveries or mixed
			// plans the unfiltered latest mark can be a degraded/stall
			// window opening or another link's storm pulse, which would
			// mis-split the detect/recovery interval and bridge into the
			// wrong stream's history.
			fi := -1
			for i := len(b.faults) - 1; i >= 0; i-- {
				f := b.faults[i]
				if f.cycle > r.cycle || !lossyFault(f.kind) {
					continue
				}
				if fi < 0 {
					fi = i
				}
				if (f.u == r.u && f.v == r.v) || (f.u == r.v && f.v == r.u) {
					fi = i
					break
				}
			}
			if fi < 0 {
				// A recovery with no fault event would be a simulator bug;
				// surface it as residue rather than guessing.
				w.addSeg(0, r.cycle, ClassUnattributed, r.u, r.v, -1, -1, -1)
				return nil
			}
			f := b.faults[fi]
			detect := r.cycle - f.cycle
			if detect > b.detectDeadline {
				detect = b.detectDeadline
			}
			w.recOn++
			w.recLat += r.cycle - f.cycle
			w.recRounds = append(w.recRounds, cur.ri)
			w.addSeg(f.cycle+detect, r.cycle, ClassRecovery, r.u, r.v, -1, -1, -1)
			w.addSeg(f.cycle, f.cycle+detect, ClassFaultDetect, f.u, f.v, -1, -1, -1)
			cur = node{kind: nFault, ri: fi, cycle: f.cycle}

		case nFault:
			f := b.faults[cur.ri]
			sid, flit, sc := w.lastSendOnLink(f.u, f.v, f.cycle)
			if sid < 0 {
				// The fault hit a link with no recorded traffic; nothing to
				// bridge into, so the pre-fault span stays unexplained.
				w.addSeg(0, f.cycle, ClassUnattributed, f.u, f.v, -1, -1, -1)
				return nil
			}
			s := b.streams[sid]
			w.classifyGap(s, sc, f.cycle, false)
			cur = node{kind: nSend, sid: sid, flit: flit, cycle: sc}
		}
	}
}

// sendPred resolves the data dependency of a send: the event that made
// the flit's payload available at the sender.
func (w *walker) sendPred(cur node, s *stream) (node, error) {
	b := w.b
	if s.key.phase == phaseReduce {
		children := w.redInto[s.key.job][s.key.from]
		if len(children) == 0 {
			// Leaf: its input segment exists from the job's birth.
			return node{kind: nBirth, job: s.key.job, flit: cur.flit, cycle: w.birthCycle(s.key.job)}, nil
		}
		best, bestID := -1, int32(-1)
		for _, cid := range children {
			cs := b.streams[cid]
			ac, err := eventCycle(cs.arrives, cur.flit, cs, "arrival")
			if err != nil {
				return node{}, err
			}
			if ac > best {
				best, bestID = ac, cid
			}
		}
		return node{kind: nArrive, sid: bestID, flit: cur.flit, cycle: best}, nil
	}
	if in, ok := w.bcastInto[s.key.job][s.key.from]; ok {
		is := b.streams[in]
		ac, err := eventCycle(is.arrives, cur.flit, is, "arrival")
		if err != nil {
			return node{}, err
		}
		return node{kind: nArrive, sid: in, flit: cur.flit, cycle: ac}, nil
	}
	// Root broadcast: sourced from the reduction engine when the run had
	// a reduce phase, from the root's own input otherwise (OpBroadcast).
	if s.key.job < len(b.jobs) {
		if j := b.jobs[s.key.job]; j != nil && cur.flit < len(j.computes) && j.computes[cur.flit] >= 0 {
			return node{kind: nCompute, job: s.key.job, flit: cur.flit, cycle: int(j.computes[cur.flit])}, nil
		}
	}
	return node{kind: nBirth, job: s.key.job, flit: cur.flit, cycle: w.birthCycle(s.key.job)}, nil
}

// computePred resolves a root compute's binding dependency: the slowest
// child arrival of the flit, or the engine's previous output when that
// came later (the engine emits one flit per job per cycle).
func (w *walker) computePred(cur node) (node, error) {
	b := w.b
	j := b.jobs[cur.job]
	best := node{kind: nBirth, job: cur.job, flit: cur.flit, cycle: w.birthCycle(cur.job)}
	for _, cid := range w.redInto[cur.job][j.root] {
		cs := b.streams[cid]
		ac, err := eventCycle(cs.arrives, cur.flit, cs, "arrival")
		if err != nil {
			return node{}, err
		}
		if ac > best.cycle {
			best = node{kind: nArrive, sid: cid, flit: cur.flit, cycle: ac}
		}
	}
	if cur.flit > 0 {
		if pc := int(j.computes[cur.flit-1]); pc > best.cycle {
			best = node{kind: nCompute, job: cur.job, flit: cur.flit - 1, cycle: pc}
		}
	}
	return best, nil
}

func (w *walker) birthCycle(job int) int {
	c, _ := w.b.birth(job)
	return c
}

// classifyGap attributes the cycles (from, to] leading up to an injection
// on stream s: the injection's own slot (when isSend) is serialization,
// and each earlier cycle is classified by what actually occupied it — a
// recorded credit stall, the link injecting the same stream
// (serialization) or another stream (congestion), or nothing the model
// knows about (residue).
func (w *walker) classifyGap(s *stream, from, to int, isSend bool) {
	if to <= from {
		return // same-cycle forwarding: nothing to attribute
	}
	g := to
	if isSend {
		w.addSeg(g-1, g, ClassSerialization, s.key.from, s.key.to, s.tree, s.key.phase, s.key.job)
		g--
	}
	ll := w.b.links[[2]int{s.key.from, s.key.to}]
	for ; g > from; g-- {
		class := ClassUnattributed
		if containsCycle(s.stalls, g) {
			class = ClassCreditStall
		} else if id := ll.sendAt(g); id >= 0 {
			if id == s.id {
				class = ClassSerialization
			} else {
				class = ClassCongestion
			}
		}
		w.addSeg(g-1, g, class, s.key.from, s.key.to, s.tree, s.key.phase, s.key.job)
	}
}

// lastSendOnLink finds the latest injection at or before cycle c on
// either direction of the undirected link {u, v}, returning the stream,
// flit and cycle (-1 stream when the link never sent). Ties prefer the
// (u, v) direction, then the lower stream id.
func (w *walker) lastSendOnLink(u, v, c int) (int32, int, int) {
	bestSid, bestFlit, bestCycle := int32(-1), -1, -1
	for _, s := range w.b.streams {
		if !((s.key.from == u && s.key.to == v) || (s.key.from == v && s.key.to == u)) {
			continue
		}
		// Sends are recorded in flit order; scan back to the last one ≤ c.
		for k := len(s.sends) - 1; k >= 0; k-- {
			sc := int(s.sends[k])
			if sc < 0 || sc > c {
				continue
			}
			if sc > bestCycle {
				bestSid, bestFlit, bestCycle = s.id, k, sc
			}
			break
		}
	}
	return bestSid, bestFlit, bestCycle
}

// addSeg records one classified interval (start, end], merging into the
// previously recorded segment when contiguous with the same class and
// stream. The walk emits segments in descending cycle order, so the
// predecessor segment is the one that starts where this one ends.
func (w *walker) addSeg(start, end int, class Class, from, to, tree, phase, job int) {
	if end <= start {
		return
	}
	w.blame[class] += end - start
	if class == ClassSerialization && from >= 0 {
		w.linkSer[[2]int{from, to}] += end - start
	}
	if n := len(w.segs); n > 0 {
		p := &w.segs[n-1]
		if p.Start == end && p.Class == class.String() && p.From == from && p.To == to &&
			p.Tree == tree && p.Phase == phase && p.Job == job {
			p.Start = start
			return
		}
	}
	w.segs = append(w.segs, Segment{
		Start: start, End: end, Class: class.String(),
		From: from, To: to, Tree: tree, Phase: phase, Job: job,
	})
}

// eventCycle fetches a per-flit event cycle, erroring when the causal
// model references an event the trace never recorded.
func eventCycle(sl []int32, flit int, s *stream, what string) (int, error) {
	if flit < len(sl) && sl[flit] >= 0 {
		return int(sl[flit]), nil
	}
	return 0, fmt.Errorf("critpath: missing %s of flit %d on stream job=%d %d→%d phase=%d",
		what, flit, s.key.job, s.key.from, s.key.to, s.key.phase)
}
