package trees

import (
	"testing"

	"polarfly/internal/er"
	"polarfly/internal/graph"
	"polarfly/internal/singer"
)

var oddQs = []int{3, 5, 7, 9, 11, 13}

func layout(t *testing.T, q int) *er.Layout {
	t.Helper()
	pg, err := er.New(q)
	if err != nil {
		t.Fatal(err)
	}
	l, err := er.NewLayout(pg, -1)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func singerGraph(t *testing.T, q int) *singer.Graph {
	t.Helper()
	s, err := singer.New(q)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestFromParentValid(t *testing.T) {
	//     0
	//    / \
	//   1   2
	//   |
	//   3
	tr, err := FromParent(0, []int{-1, 0, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if tr.MaxDepth() != 2 {
		t.Errorf("depth = %d", tr.MaxDepth())
	}
	wantDepth := []int{0, 1, 1, 2}
	for v, d := range wantDepth {
		if tr.Depth[v] != d {
			t.Errorf("Depth[%d] = %d, want %d", v, tr.Depth[v], d)
		}
	}
	if len(tr.Children(0)) != 2 || len(tr.Children(1)) != 1 || len(tr.Children(3)) != 0 {
		t.Error("children wrong")
	}
	if len(tr.Edges()) != 3 {
		t.Error("edge count wrong")
	}
	if tr.N() != 4 {
		t.Error("N wrong")
	}
}

func TestFromParentRejects(t *testing.T) {
	if _, err := FromParent(5, []int{-1, 0}); err == nil {
		t.Error("out-of-range root accepted")
	}
	if _, err := FromParent(0, []int{0, 0}); err == nil {
		t.Error("root with parent accepted")
	}
	if _, err := FromParent(0, []int{-1, 2, 1}); err == nil {
		t.Error("cycle accepted")
	}
	if _, err := FromParent(0, []int{-1, 9}); err == nil {
		t.Error("invalid parent accepted")
	}
}

func TestFromPath(t *testing.T) {
	path := []int{3, 1, 4, 0, 2}
	tr, err := FromPath(path, 2) // root = 4
	if err != nil {
		t.Fatal(err)
	}
	if tr.Root != 4 {
		t.Errorf("root = %d", tr.Root)
	}
	if tr.MaxDepth() != 2 {
		t.Errorf("depth = %d, want 2", tr.MaxDepth())
	}
	// Rooting at an end gives depth 4.
	tr, err = FromPath(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tr.MaxDepth() != 4 {
		t.Errorf("end-rooted depth = %d, want 4", tr.MaxDepth())
	}
	if _, err := FromPath(path, 9); err == nil {
		t.Error("bad root index accepted")
	}
	if _, err := FromPath([]int{0, 1, 0}, 0); err == nil {
		t.Error("repeating path accepted")
	}
	if _, err := FromPath([]int{0, 7}, 0); err == nil {
		t.Error("out-of-range vertex accepted")
	}
}

func TestSingleTreeBaseline(t *testing.T) {
	l := layout(t, 5)
	g := l.PG.G
	tr, err := SingleTreeBaseline(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.ValidateSpanning(g); err != nil {
		t.Fatal(err)
	}
	// BFS tree of a diameter-2 graph has depth ≤ 2.
	if tr.MaxDepth() > 2 {
		t.Errorf("BFS depth %d > 2", tr.MaxDepth())
	}
	// Disconnected graph errors.
	dg := graph.New(3)
	dg.AddEdge(0, 1)
	if _, err := SingleTreeBaseline(dg, 0); err == nil {
		t.Error("disconnected graph accepted")
	}
}

func TestLowDepthForestStructure(t *testing.T) {
	// Theorems 7.4, 7.5, 7.6 and Lemma 7.8 for every odd q under test.
	for _, q := range oddQs {
		l := layout(t, q)
		forest, err := LowDepthForest(l)
		if err != nil {
			t.Fatalf("q=%d: %v", q, err)
		}
		if len(forest) != q {
			t.Fatalf("q=%d: %d trees, want %d", q, len(forest), q)
		}
		for i, tr := range forest {
			// Theorem 7.4: each T_i is a spanning tree.
			if err := tr.ValidateSpanning(l.PG.G); err != nil {
				t.Errorf("q=%d T_%d: %v", q, i, err)
			}
			// Roots are the cluster centers.
			if tr.Root != l.Centers[i] {
				t.Errorf("q=%d T_%d: root %d, want %d", q, i, tr.Root, l.Centers[i])
			}
			// Theorem 7.5: depth ≤ 3.
			if d := tr.MaxDepth(); d > 3 {
				t.Errorf("q=%d T_%d: depth %d > 3", q, i, d)
			}
		}
		// Theorem 7.6: congestion ≤ 2.
		if c := MaxCongestion(forest); c > 2 {
			t.Errorf("q=%d: max congestion %d > 2", q, c)
		}
		// Lemma 7.8: opposed reduction flows on shared links.
		if err := OpposedReductionFlows(forest); err != nil {
			t.Errorf("q=%d: %v", q, err)
		}
	}
}

func TestLowDepthForestLevel3OnlyCenters(t *testing.T) {
	// Per the construction, only cluster centers may sit at depth 3.
	for _, q := range []int{5, 7, 9} {
		l := layout(t, q)
		forest, err := LowDepthForest(l)
		if err != nil {
			t.Fatal(err)
		}
		centers := make(map[int]bool)
		for _, c := range l.Centers {
			centers[c] = true
		}
		for i, tr := range forest {
			for v, d := range tr.Depth {
				if d == 3 && !centers[v] {
					t.Errorf("q=%d T_%d: non-center %d at depth 3", q, i, v)
				}
			}
		}
	}
}

func TestHamiltonianForestStructure(t *testing.T) {
	for _, q := range []int{2, 3, 4, 5, 7, 8, 9, 11, 13} {
		s := singerGraph(t, q)
		forest, err := HamiltonianForest(s, 30, 42)
		if err != nil {
			t.Fatalf("q=%d: %v", q, err)
		}
		if want := (q + 1) / 2; len(forest) != want {
			t.Fatalf("q=%d: %d trees, want %d", q, len(forest), want)
		}
		for i, tr := range forest {
			if err := tr.ValidateSpanning(s.Topology()); err != nil {
				t.Errorf("q=%d T_%d: %v", q, i, err)
			}
			// Lemma 7.17: midpoint-rooted depth is (N−1)/2.
			if d := tr.MaxDepth(); d != (s.N-1)/2 {
				t.Errorf("q=%d T_%d: depth %d, want %d", q, i, d, (s.N-1)/2)
			}
		}
		// §7.2: no congestion at all.
		if !EdgeDisjoint(forest) {
			t.Errorf("q=%d: forest not edge-disjoint", q)
		}
	}
}

func TestHamiltonianForestExactFallback(t *testing.T) {
	// With zero randomized tries the search must fall back to the exact
	// maximum-independent-set path and still deliver the full forest.
	s := singerGraph(t, 7)
	forest, err := HamiltonianForest(s, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(forest) != 4 {
		t.Errorf("fallback produced %d trees, want 4", len(forest))
	}
	if !EdgeDisjoint(forest) {
		t.Error("fallback forest not edge-disjoint")
	}
}

func TestForestFromPairsRejectsNonHamiltonian(t *testing.T) {
	s := singerGraph(t, 4)
	if _, err := ForestFromPairs(s, []singer.Pair{{D0: 0, D1: 14}}); err == nil {
		t.Error("non-Hamiltonian pair accepted")
	}
}

func TestCongestionCensus(t *testing.T) {
	// Two hand-built trees sharing one edge.
	t1, _ := FromParent(0, []int{-1, 0, 1})
	t2, _ := FromParent(2, []int{1, 2, -1})
	c := Congestion([]*Tree{t1, t2})
	if c[graph.NewEdge(0, 1)] != 2 {
		t.Errorf("edge (0,1) congestion %d, want 2", c[graph.NewEdge(0, 1)])
	}
	if c[graph.NewEdge(1, 2)] != 2 {
		t.Errorf("edge (1,2) congestion %d, want 2", c[graph.NewEdge(1, 2)])
	}
	if MaxCongestion([]*Tree{t1, t2}) != 2 {
		t.Error("max congestion wrong")
	}
	if EdgeDisjoint([]*Tree{t1, t2}) {
		t.Error("overlapping trees reported disjoint")
	}
	if !EdgeDisjoint([]*Tree{t1}) {
		t.Error("single tree should be disjoint")
	}
}

func TestOpposedReductionFlows(t *testing.T) {
	// Path 0-1-2. Tree A rooted at 2 (reduction 0→1→2), tree B rooted at 0
	// (reduction 2→1→0): opposite directions on both links → OK.
	a, _ := FromParent(2, []int{1, 2, -1})
	b, _ := FromParent(0, []int{-1, 0, 1})
	if err := OpposedReductionFlows([]*Tree{a, b}); err != nil {
		t.Errorf("opposed flows rejected: %v", err)
	}
	// Two identical trees: same direction on every link → violation.
	if err := OpposedReductionFlows([]*Tree{a, a}); err == nil {
		t.Error("same-direction flows accepted")
	}
	// Congestion 3 → violation.
	if err := OpposedReductionFlows([]*Tree{a, b, a}); err == nil {
		t.Error("congestion-3 forest accepted")
	}
}

func TestValidateSpanningRejects(t *testing.T) {
	g := graph.New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 2)
	wrongSize, _ := FromParent(0, []int{-1, 0})
	if err := wrongSize.ValidateSpanning(g); err == nil {
		t.Error("wrong-size tree accepted")
	}
	h := graph.New(3)
	h.AddEdge(0, 1)
	h.AddEdge(1, 2)
	viaNonEdge, _ := FromParent(0, []int{-1, 0, 0}) // uses (0,2) ∉ h
	if err := viaNonEdge.ValidateSpanning(h); err == nil {
		t.Error("tree using non-graph edge accepted")
	}
}
