package trees

import (
	"testing"

	"polarfly/internal/graph"
)

func TestUniqueBFSTreeOnPolarFly(t *testing.T) {
	for _, q := range []int{3, 5, 7} {
		l := layout(t, q)
		g := l.PG.G
		for root := 0; root < g.N(); root += 7 {
			tr, err := UniqueBFSTree(g, root)
			if err != nil {
				t.Fatalf("q=%d root=%d: %v", q, root, err)
			}
			if err := tr.ValidateSpanning(g); err != nil {
				t.Fatalf("q=%d root=%d: %v", q, root, err)
			}
			if tr.MaxDepth() > 2 {
				t.Errorf("q=%d root=%d: depth %d", q, root, tr.MaxDepth())
			}
			// The tree is forced: it must equal the deterministic BFS tree.
			bfs, err := SingleTreeBaseline(g, root)
			if err != nil {
				t.Fatal(err)
			}
			for v := range tr.Parent {
				if tr.Parent[v] != bfs.Parent[v] {
					t.Fatalf("q=%d root=%d: depth-2 tree not unique at vertex %d", q, root, v)
				}
			}
		}
	}
}

func TestUniqueBFSTreeErrors(t *testing.T) {
	// Path graph: vertex 3 is 3 hops from vertex 0.
	p := graph.New(4)
	p.AddEdge(0, 1)
	p.AddEdge(1, 2)
	p.AddEdge(2, 3)
	if _, err := UniqueBFSTree(p, 0); err == nil {
		t.Error("deep graph accepted")
	}
	// C4 has two 2-paths between opposite vertices.
	c4 := graph.New(4)
	c4.AddEdge(0, 1)
	c4.AddEdge(1, 2)
	c4.AddEdge(2, 3)
	c4.AddEdge(3, 0)
	if _, err := UniqueBFSTree(c4, 0); err == nil {
		t.Error("ambiguous 2-paths accepted")
	}
}

func TestDepthTwoForestCongestionGrows(t *testing.T) {
	// The motivating measurement: forced depth-2 trees congest roughly
	// linearly in the tree count, unlike Algorithm 3's constant 2.
	for _, q := range []int{5, 7, 9, 11} {
		l := layout(t, q)
		roots := make([]int, q)
		for i := range roots {
			roots[i] = i
		}
		forest, err := DepthTwoForest(l.PG.G, roots)
		if err != nil {
			t.Fatal(err)
		}
		for _, tr := range forest {
			if err := tr.ValidateSpanning(l.PG.G); err != nil {
				t.Fatal(err)
			}
		}
		if c := MaxCongestion(forest); c <= 2 {
			t.Errorf("q=%d: depth-2 forest congestion %d unexpectedly low", q, c)
		}
		low, err := LowDepthForest(l)
		if err != nil {
			t.Fatal(err)
		}
		if MaxCongestion(forest) <= MaxCongestion(low) {
			t.Errorf("q=%d: depth-2 congestion %d not worse than Algorithm 3's %d",
				q, MaxCongestion(forest), MaxCongestion(low))
		}
	}
}

func TestDepthTwoForestRejectsDuplicateRoots(t *testing.T) {
	l := layout(t, 5)
	if _, err := DepthTwoForest(l.PG.G, []int{0, 0}); err == nil {
		t.Error("duplicate roots accepted")
	}
}
