package trees

import (
	"fmt"

	"polarfly/internal/graph"
)

// This file implements the "obvious" alternative the paper implicitly
// rejects: depth-2 spanning trees. On a diameter-2 graph with unique
// 2-paths (Theorem 6.1) the depth-2 spanning tree rooted at any vertex is
// *forced* — distance-1 vertices must hang off the root and each
// distance-2 vertex has exactly one possible parent — so there is no
// freedom left to steer congestion. Measuring these trees against
// Algorithm 3 shows why the paper spends one extra level of depth: the
// forced trees overlap heavily around high-traffic intermediates, while
// the depth-3 construction provably caps congestion at 2.
//
// The forest also serves as a best-effort multi-tree embedding for even q,
// where the paper's low-depth layout is not specified.

// UniqueBFSTree returns the unique depth-≤2 spanning tree of g rooted at
// root. It errors if some vertex is farther than 2 hops from the root, or
// if a distance-2 vertex has more than one candidate parent (i.e. g does
// not have unique 2-paths from this root).
func UniqueBFSTree(g *graph.Graph, root int) (*Tree, error) {
	n := g.N()
	parent := make([]int, n)
	for v := range parent {
		parent[v] = -2
	}
	parent[root] = -1
	for _, u := range g.Neighbors(root) {
		parent[u] = root
	}
	for z := 0; z < n; z++ {
		if parent[z] != -2 {
			continue
		}
		candidate := -1
		for _, u := range g.Neighbors(z) {
			if u != root && parent[u] == root {
				if candidate != -1 {
					return nil, fmt.Errorf("trees: vertex %d has two 2-paths from root %d (via %d and %d)",
						z, root, candidate, u)
				}
				candidate = u
			}
		}
		if candidate == -1 {
			return nil, fmt.Errorf("trees: vertex %d is more than 2 hops from root %d", z, root)
		}
		parent[z] = candidate
	}
	return FromParent(root, parent)
}

// DepthTwoForest builds the forced depth-2 trees for the given roots.
func DepthTwoForest(g *graph.Graph, roots []int) ([]*Tree, error) {
	forest := make([]*Tree, 0, len(roots))
	seen := make(map[int]bool)
	for _, r := range roots {
		if seen[r] {
			return nil, fmt.Errorf("trees: duplicate root %d", r)
		}
		seen[r] = true
		t, err := UniqueBFSTree(g, r)
		if err != nil {
			return nil, err
		}
		forest = append(forest, t)
	}
	return forest, nil
}
