package trees

import "testing"

func TestDirectedLoadAndPortAnalysis(t *testing.T) {
	// Path 0-1-2: tree A rooted at 2 (reduce 0→1→2), tree B rooted at 0.
	a, _ := FromParent(2, []int{1, 2, -1})
	b, _ := FromParent(0, []int{-1, 0, 1})
	load := DirectedLoad([]*Tree{a, b})
	if load[[2]int{0, 1}] != 1 || load[[2]int{1, 0}] != 1 {
		t.Errorf("load = %v", load)
	}
	if MaxReductionsPerInputPort([]*Tree{a, b}) != 1 {
		t.Error("opposed forest should have 1 reduction per port")
	}
	// Duplicate tree: same direction twice.
	if MaxReductionsPerInputPort([]*Tree{a, a}) != 2 {
		t.Error("duplicated tree should share a port")
	}
	// VC requirement counts reduce + broadcast per direction: for {a,b}
	// each direction carries one reduce and one broadcast stream.
	if VCRequirement([]*Tree{a, b}) != 2 {
		t.Errorf("VCRequirement = %d, want 2", VCRequirement([]*Tree{a, b}))
	}
	if VCRequirement([]*Tree{a}) != 1 {
		t.Errorf("single tree VCRequirement = %d, want 1", VCRequirement([]*Tree{a}))
	}
}

func TestReductionStatesPerRouter(t *testing.T) {
	a, _ := FromParent(2, []int{1, 2, -1})
	states := ReductionStatesPerRouter([]*Tree{a}, 3)
	// Vertex 1 receives from 0; vertex 2 receives from 1.
	if states[0] != 0 || states[1] != 1 || states[2] != 1 {
		t.Errorf("states = %v", states)
	}
}

func TestLemma78PortPropertyOnAlgorithm3(t *testing.T) {
	// The §7.1 payoff, measured: every Algorithm 3 forest keeps one
	// reduction stream per input port, despite congestion 2.
	for _, q := range oddQs {
		l := layout(t, q)
		forest, err := LowDepthForest(l)
		if err != nil {
			t.Fatal(err)
		}
		if got := MaxReductionsPerInputPort(forest); got != 1 {
			t.Errorf("q=%d: %d reductions share an input port", q, got)
		}
		// Reduce+broadcast per direction never exceeds 2 (the congestion
		// bound), so 2 VCs per link direction always suffice.
		if got := VCRequirement(forest); got > 2 {
			t.Errorf("q=%d: VC requirement %d > 2", q, got)
		}
	}
}

func TestRandomForestProperties(t *testing.T) {
	// k random spanning trees span correctly but violate the
	// one-reduction-per-port property; the bandwidth comparison against
	// the coordinated forest lives in internal/bandwidth (to avoid an
	// import cycle).
	for _, q := range []int{5, 7, 9, 11} {
		l := layout(t, q)
		random, err := RandomForest(l.PG.G, q, 7)
		if err != nil {
			t.Fatal(err)
		}
		for i, tr := range random {
			if err := tr.ValidateSpanning(l.PG.G); err != nil {
				t.Fatalf("q=%d random tree %d: %v", q, i, err)
			}
		}
		if MaxReductionsPerInputPort(random) <= 1 {
			t.Errorf("q=%d: random forest unexpectedly satisfies the port property", q)
		}
	}
}

func TestRandomForestDeterministicPerSeed(t *testing.T) {
	l := layout(t, 5)
	a, err := RandomForest(l.PG.G, 3, 11)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RandomForest(l.PG.G, 3, 11)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		for v := range a[i].Parent {
			if a[i].Parent[v] != b[i].Parent[v] {
				t.Fatal("same seed produced different forests")
			}
		}
	}
}
