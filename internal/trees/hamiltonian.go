package trees

import (
	"fmt"

	"polarfly/internal/singer"
)

// HamiltonianForest derives the edge-disjoint Allreduce forest of §7.2:
// up to ⌊(q+1)/2⌋ pairwise edge-disjoint Hamiltonian paths of the Singer
// graph S_q, each rooted at its midpoint so the tree depth is (N−1)/2
// (Lemma 7.17). The search reproduces the paper's procedure of up to
// `tries` random maximal independent sets over the Hamiltonian pair graph
// (the paper uses 30 and reports success for all q < 128); it returns an
// error if the target ⌊(q+1)/2⌋ is not reached.
func HamiltonianForest(s *singer.Graph, tries int, seed int64) ([]*Tree, error) {
	target := s.MaxDisjointUpperBound()
	pairs, ok := s.DisjointHamiltonianPairs(target, tries, seed)
	if !ok {
		// The randomized procedure missed (tries too small, or an
		// adversarial seed): fall back to the exact maximum independent
		// set over the pair graph. §7.3 reports 30 random instances always
		// suffice for q < 128, so the fallback exists for robustness, not
		// for the paper's design points. The exact solver is exponential,
		// so it is only attempted while the pair graph stays small.
		const exactLimit = 200
		if len(s.HamiltonianPairs()) > exactLimit {
			return nil, fmt.Errorf("trees: q=%d: found only %d of %d edge-disjoint Hamiltonian paths in %d tries (pair graph too large for the exact fallback)",
				s.Q, len(pairs), target, tries)
		}
		pairs = s.DisjointHamiltonianPairsExact()
		if len(pairs) < target {
			return nil, fmt.Errorf("trees: q=%d: only %d of %d edge-disjoint Hamiltonian paths exist",
				s.Q, len(pairs), target)
		}
	}
	return ForestFromPairs(s, pairs)
}

// ForestFromPairs converts an explicit set of Hamiltonian difference-
// element pairs into midpoint-rooted spanning trees.
func ForestFromPairs(s *singer.Graph, pairs []singer.Pair) ([]*Tree, error) {
	forest := make([]*Tree, 0, len(pairs))
	for _, p := range pairs {
		if !s.IsHamiltonian(p) {
			return nil, fmt.Errorf("trees: pair %+v is not Hamiltonian", p)
		}
		path := s.MaximalPath(p)
		t, err := FromPath(path, (len(path)-1)/2)
		if err != nil {
			return nil, fmt.Errorf("trees: pair %+v: %w", p, err)
		}
		forest = append(forest, t)
	}
	return forest, nil
}
