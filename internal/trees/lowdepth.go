package trees

import (
	"fmt"

	"polarfly/internal/er"
	"polarfly/internal/graph"
)

// LowDepthForest implements Algorithm 3: given a PolarFly layout for odd
// prime power q, it derives q spanning trees rooted at the cluster centers,
// each of depth at most 3 (Theorem 7.5), with worst-case link congestion 2
// (Theorem 7.6) and opposed reduction flows on every shared link
// (Lemma 7.8). The aggregate Allreduce bandwidth under Algorithm 1 is at
// least qB/2 (Corollary 7.7).
//
// The construction is deterministic: neighbors are scanned in ascending
// vertex order, and line 10's "select any edge of E_a incident with v_j"
// picks the smallest-numbered available neighbor.
func LowDepthForest(l *er.Layout) ([]*Tree, error) {
	pg := l.PG
	n := pg.N()
	q := pg.Q

	// E_a: the available-edge set of Algorithm 3 (line 1).
	available := make(map[graph.Edge]bool, pg.G.M())
	for _, e := range pg.G.Edges() {
		available[e] = true
	}

	forest := make([]*Tree, 0, q)
	for i := 0; i < q; i++ { // construct T_i (line 2)
		root := l.Centers[i]
		parent := make([]int, n)
		for v := range parent {
			parent[v] = -2 // not yet in T_i
		}
		parent[root] = -1

		// Lines 4-5: level 1 — all neighbors of the root (covers C_i, the
		// starter quadric w and the non-starter quadric w_i).
		level1 := pg.G.Neighbors(root)
		for _, u := range level1 {
			parent[u] = root
		}
		// Lines 6-8: level 2 — expand every level-1 vertex except the
		// starter quadric.
		for _, u := range level1 {
			if u == l.Starter {
				continue
			}
			for _, z := range pg.G.Neighbors(u) {
				if parent[z] == -2 {
					parent[z] = u
				}
			}
		}
		// Lines 9-12: level 3 — attach the other cluster centers via an
		// available edge.
		for j := 0; j < q; j++ {
			if j == i {
				continue
			}
			vj := l.Centers[j]
			attached := false
			for _, u := range pg.G.Neighbors(vj) {
				e := graph.NewEdge(u, vj)
				if !available[e] {
					continue
				}
				if parent[u] == -2 || u == vj {
					continue // u must already be in T_i
				}
				parent[vj] = u
				delete(available, e)
				attached = true
				break
			}
			if !attached {
				return nil, fmt.Errorf("trees: no available edge to attach center %d in T_%d", vj, i)
			}
		}

		for v := 0; v < n; v++ {
			if parent[v] == -2 {
				return nil, fmt.Errorf("trees: vertex %d not covered by T_%d", v, i)
			}
		}
		t, err := FromParent(root, parent)
		if err != nil {
			return nil, fmt.Errorf("trees: T_%d: %w", i, err)
		}
		forest = append(forest, t)
	}
	return forest, nil
}

// SingleTreeBaseline returns one BFS spanning tree of g rooted at root —
// the conventional single-tree in-network Allreduce embedding whose
// bandwidth is capped at one link bandwidth (§1.1), used as the baseline
// the multi-tree solutions are compared against.
func SingleTreeBaseline(g *graph.Graph, root int) (*Tree, error) {
	n := g.N()
	parent := make([]int, n)
	for v := range parent {
		parent[v] = -2
	}
	parent[root] = -1
	queue := []int{root}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range g.Neighbors(v) {
			if parent[u] == -2 {
				parent[u] = v
				queue = append(queue, u)
			}
		}
	}
	for v := 0; v < n; v++ {
		if parent[v] == -2 {
			return nil, fmt.Errorf("trees: graph disconnected, vertex %d unreachable from %d", v, root)
		}
	}
	return FromParent(root, parent)
}
