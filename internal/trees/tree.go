// Package trees provides rooted spanning trees over PolarFly and the two
// Allreduce forests of the paper: the depth-3 congestion-2 forest of
// Algorithm 3 (§7.1) and the edge-disjoint Hamiltonian forest derived from
// Singer difference sets (§7.2). It also provides the congestion census
// used by the bandwidth model (§5) and the traffic-direction analysis of
// Lemma 7.8.
package trees

import (
	"fmt"
	"sort"

	"polarfly/internal/graph"
)

// Tree is a rooted spanning tree over vertices 0..N-1, represented by a
// parent array. In an in-network Allreduce, reduction traffic flows from
// children toward the root along these edges, and broadcast traffic flows
// back down (§4.3).
type Tree struct {
	// Root is the reduction root.
	Root int
	// Parent[v] is v's parent, with Parent[Root] == -1.
	Parent []int
	// Depth[v] is the hop distance from v to the root.
	Depth []int

	children [][]int
}

// FromParent builds a Tree from a parent array, validating that every
// vertex reaches root without cycles.
func FromParent(root int, parent []int) (*Tree, error) {
	n := len(parent)
	if root < 0 || root >= n {
		return nil, fmt.Errorf("trees: root %d out of range", root)
	}
	if parent[root] != -1 {
		return nil, fmt.Errorf("trees: parent[root=%d] = %d, want -1", root, parent[root])
	}
	t := &Tree{Root: root, Parent: append([]int(nil), parent...), Depth: make([]int, n)}
	for v := range t.Depth {
		t.Depth[v] = -1
	}
	t.Depth[root] = 0
	for v := 0; v < n; v++ {
		if t.Depth[v] >= 0 {
			continue
		}
		// Walk up to a vertex of known depth, then unwind.
		var chain []int
		u := v
		for t.Depth[u] < 0 {
			chain = append(chain, u)
			p := parent[u]
			if p < 0 || p >= n {
				return nil, fmt.Errorf("trees: vertex %d has invalid parent %d", u, p)
			}
			u = p
			if len(chain) > n {
				return nil, fmt.Errorf("trees: cycle reachable from vertex %d", v)
			}
		}
		d := t.Depth[u]
		for i := len(chain) - 1; i >= 0; i-- {
			d++
			t.Depth[chain[i]] = d
		}
	}
	t.buildChildren()
	return t, nil
}

func (t *Tree) buildChildren() {
	n := len(t.Parent)
	t.children = make([][]int, n)
	for v := 0; v < n; v++ {
		if p := t.Parent[v]; p >= 0 {
			t.children[p] = append(t.children[p], v)
		}
	}
}

// FromPath builds a Tree from a simple path (a Hamiltonian path is a
// spanning tree), rooted at path[rootIdx]. Per Lemma 7.17, rooting at the
// midpoint index (len(path)−1)/2 minimises depth to (len(path)−1)/2.
func FromPath(path []int, rootIdx int) (*Tree, error) {
	n := len(path)
	if rootIdx < 0 || rootIdx >= n {
		return nil, fmt.Errorf("trees: root index %d out of range", rootIdx)
	}
	parent := make([]int, n)
	for i := range parent {
		parent[i] = -2
	}
	for i, v := range path {
		if v < 0 || v >= n {
			return nil, fmt.Errorf("trees: path vertex %d out of range [0,%d)", v, n)
		}
		if parent[v] != -2 {
			return nil, fmt.Errorf("trees: path repeats vertex %d", v)
		}
		parent[v] = -3 // mark visited; real parents set below
		_ = i
	}
	root := path[rootIdx]
	parent[root] = -1
	for i := rootIdx - 1; i >= 0; i-- {
		parent[path[i]] = path[i+1]
	}
	for i := rootIdx + 1; i < n; i++ {
		parent[path[i]] = path[i-1]
	}
	return FromParent(root, parent)
}

// N returns the number of vertices spanned.
func (t *Tree) N() int { return len(t.Parent) }

// Children returns the children of v (in insertion order).
func (t *Tree) Children(v int) []int { return t.children[v] }

// MaxDepth returns the tree depth: the maximum distance of any vertex from
// the root. Allreduce latency is proportional to this (§4.3).
func (t *Tree) MaxDepth() int {
	max := 0
	for _, d := range t.Depth {
		if d > max {
			max = d
		}
	}
	return max
}

// Edges returns the N−1 tree edges in canonical undirected form.
func (t *Tree) Edges() []graph.Edge {
	out := make([]graph.Edge, 0, t.N()-1)
	for v, p := range t.Parent {
		if p >= 0 {
			out = append(out, graph.NewEdge(v, p))
		}
	}
	return out
}

// ValidateSpanning checks that t is a spanning tree of g: every tree edge
// is a g edge and the edge set connects all vertices acyclically.
func (t *Tree) ValidateSpanning(g *graph.Graph) error {
	if t.N() != g.N() {
		return fmt.Errorf("trees: tree spans %d vertices, graph has %d", t.N(), g.N())
	}
	if !g.IsSpanningConnectedAcyclic(t.Edges()) {
		return fmt.Errorf("trees: edge set is not a spanning tree of the graph")
	}
	return nil
}

// Congestion returns, for every physical link used by any tree in the
// forest, the number of trees containing it (§5.1: congestion on a link
// equals the number of trees containing the link).
func Congestion(forest []*Tree) map[graph.Edge]int {
	c := make(map[graph.Edge]int)
	for _, t := range forest {
		for _, e := range t.Edges() {
			c[e]++
		}
	}
	return c
}

// MaxCongestion returns the worst-case link congestion of the forest.
func MaxCongestion(forest []*Tree) int {
	max := 0
	for _, c := range Congestion(forest) {
		if c > max {
			max = c
		}
	}
	return max
}

// EdgeDisjoint reports whether no physical link appears in two trees.
func EdgeDisjoint(forest []*Tree) bool { return MaxCongestion(forest) <= 1 }

// OpposedReductionFlows verifies the Lemma 7.8 property for a forest: for
// every link shared by exactly two trees, the reduction traffic (child →
// parent) flows in opposite directions in the two trees, so each router
// input port participates in at most one reduction. Returns an error
// naming the first violating link, or nil. Links with congestion > 2 are
// reported as violations too (the lemma presupposes congestion ≤ 2).
func OpposedReductionFlows(forest []*Tree) error {
	type dir struct {
		tree  int
		child int // reduction flows child → parent
	}
	flows := make(map[graph.Edge][]dir)
	for ti, t := range forest {
		for v, p := range t.Parent {
			if p < 0 {
				continue
			}
			flows[graph.NewEdge(v, p)] = append(flows[graph.NewEdge(v, p)], dir{ti, v})
		}
	}
	// Check links in a fixed order so the first reported violation does
	// not depend on map iteration order.
	edges := make([]graph.Edge, 0, len(flows))
	for e := range flows {
		edges = append(edges, e)
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].U != edges[j].U {
			return edges[i].U < edges[j].U
		}
		return edges[i].V < edges[j].V
	})
	for _, e := range edges {
		ds := flows[e]
		if len(ds) == 1 {
			continue
		}
		if len(ds) > 2 {
			return fmt.Errorf("trees: link %v carried by %d trees (congestion > 2)", e, len(ds))
		}
		if ds[0].child == ds[1].child {
			return fmt.Errorf("trees: link %v carries same-direction reduction traffic in trees %d and %d",
				e, ds[0].tree, ds[1].tree)
		}
	}
	return nil
}
