package trees

import (
	"strings"
	"testing"
)

func TestRender(t *testing.T) {
	tr, _ := FromParent(0, []int{-1, 0, 0, 1})
	out := tr.Render(-1)
	want := "0 (root)\n  1\n    3\n  2\n"
	if out != want {
		t.Errorf("Render = %q, want %q", out, want)
	}
	// Depth limit elides.
	limited := tr.Render(0)
	if !strings.Contains(limited, "elided") {
		t.Errorf("limited render missing elision: %q", limited)
	}
	if strings.Count(limited, "\n") != 2 {
		t.Errorf("limited render = %q", limited)
	}
}

func TestLevelSizes(t *testing.T) {
	tr, _ := FromParent(0, []int{-1, 0, 0, 1})
	got := tr.LevelSizes()
	want := []int{1, 2, 1}
	if len(got) != len(want) {
		t.Fatalf("LevelSizes = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("LevelSizes = %v, want %v", got, want)
		}
	}
}

func TestLevelSizesAlgorithm3Fingerprint(t *testing.T) {
	// Algorithm 3 trees: exactly the root at level 0, exactly its q+1
	// neighbors at level 1, all non-center vertices by level 2, and only
	// other cluster centers at level 3 (each center attaches at level 2 or
	// 3 depending on where line 10 finds an available edge).
	for _, q := range []int{5, 7, 9} {
		l := layout(t, q)
		forest, err := LowDepthForest(l)
		if err != nil {
			t.Fatal(err)
		}
		for ti, tr := range forest {
			got := tr.LevelSizes()
			if len(got) > 4 {
				t.Fatalf("q=%d T_%d: %d levels", q, ti, len(got))
			}
			if got[0] != 1 || got[1] != q+1 {
				t.Fatalf("q=%d T_%d: levels %v", q, ti, got)
			}
			sum := 0
			for _, s := range got {
				sum += s
			}
			if sum != q*q+q+1 {
				t.Fatalf("q=%d T_%d: levels %v sum %d", q, ti, got, sum)
			}
			// Level 2 holds at least all q²−1 non-root non-level-1
			// non-center vertices; the deficit vs q²−1+centers is exactly
			// the level-3 population.
			if len(got) == 4 && got[2]+got[3] != q*q+q+1-1-(q+1) {
				t.Fatalf("q=%d T_%d: levels %v inconsistent", q, ti, got)
			}
		}
	}
}
