package trees

import (
	"fmt"
	"sort"
	"strings"
)

// Render draws the tree as indented ASCII, children sorted ascending, for
// human inspection of embeddings (used by cmd/treegen). Deep trees are
// elided below maxDepth levels (pass a negative maxDepth for no limit).
func (t *Tree) Render(maxDepth int) string {
	var b strings.Builder
	var rec func(v, depth int)
	rec = func(v, depth int) {
		fmt.Fprintf(&b, "%s%d", strings.Repeat("  ", depth), v)
		if depth == 0 {
			b.WriteString(" (root)")
		}
		b.WriteByte('\n')
		if maxDepth >= 0 && depth >= maxDepth {
			if len(t.Children(v)) > 0 {
				fmt.Fprintf(&b, "%s… %d subtree(s) elided\n", strings.Repeat("  ", depth+1), len(t.Children(v)))
			}
			return
		}
		children := append([]int(nil), t.Children(v)...)
		sort.Ints(children)
		for _, c := range children {
			rec(c, depth+1)
		}
	}
	rec(t.Root, 0)
	return b.String()
}

// LevelSizes returns how many vertices sit at each depth, root first — a
// compact structural fingerprint (e.g. the Algorithm 3 trees on odd q show
// [1, q+1, q²−1, q−1]).
func (t *Tree) LevelSizes() []int {
	sizes := make([]int, t.MaxDepth()+1)
	for _, d := range t.Depth {
		sizes[d]++
	}
	return sizes
}
