package trees

import (
	"math/rand"

	"polarfly/internal/graph"
)

// This file provides the router-resource analyses of §5.1 and §7.1 and the
// uncoordinated-forest baseline of §3 ("one can always find large sets of
// spanning trees; a usable solution minimises edge overlap").

// DirectedLoad counts, for every directed link (child → parent direction),
// how many trees send reduction traffic across it. The §5.1 router needs
// one virtual channel (or tracked packet state) per overlapping stream on
// a port.
func DirectedLoad(forest []*Tree) map[[2]int]int {
	load := make(map[[2]int]int)
	for _, t := range forest {
		for v, p := range t.Parent {
			if p >= 0 {
				load[[2]int{v, p}]++
			}
		}
	}
	return load
}

// MaxReductionsPerInputPort returns the worst-case number of distinct
// reduction streams entering any single router input port. Lemma 7.8
// guarantees 1 for the Algorithm 3 forest (opposed flows), so a single
// wide-radix arithmetic engine per router suffices; uncoordinated forests
// typically need per-port stream multiplexing.
func MaxReductionsPerInputPort(forest []*Tree) int {
	max := 0
	for _, c := range DirectedLoad(forest) {
		if c > max {
			max = c
		}
	}
	return max
}

// VCRequirement returns the number of virtual channels per link direction
// needed to keep the embedding's logical streams separate: the worst-case
// directed congestion counting both reduction and broadcast traffic
// (broadcast traffic on a link (u→v) belongs to trees where u is the
// parent, i.e. the reduction load of (v→u)).
func VCRequirement(forest []*Tree) int {
	load := DirectedLoad(forest)
	max := 0
	for key, c := range load {
		total := c + load[[2]int{key[1], key[0]}]
		if total > max {
			max = total
		}
	}
	return max
}

// ReductionStatesPerRouter returns, for each router, the number of
// (tree, child-port) reduction states it must hold — the router SRAM/logic
// proxy discussed in §5.1.
func ReductionStatesPerRouter(forest []*Tree, n int) []int {
	states := make([]int, n)
	for _, t := range forest {
		for _, p := range t.Parent {
			if p >= 0 {
				states[p]++
			}
		}
	}
	return states
}

// RandomForest builds k spanning trees by independent randomized BFS from
// random roots (random neighbor visiting order). This is the uncoordinated
// multi-tree baseline: lots of trees, no congestion control — the §3
// motivation for why the paper's structured embeddings are necessary.
func RandomForest(g *graph.Graph, k int, seed int64) ([]*Tree, error) {
	rng := rand.New(rand.NewSource(seed))
	forest := make([]*Tree, 0, k)
	n := g.N()
	for i := 0; i < k; i++ {
		root := rng.Intn(n)
		parent := make([]int, n)
		for v := range parent {
			parent[v] = -2
		}
		parent[root] = -1
		queue := []int{root}
		for len(queue) > 0 {
			// Pop a random frontier vertex for tree-shape diversity.
			idx := rng.Intn(len(queue))
			v := queue[idx]
			queue[idx] = queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			nbrs := g.Neighbors(v)
			rng.Shuffle(len(nbrs), func(a, b int) { nbrs[a], nbrs[b] = nbrs[b], nbrs[a] })
			for _, u := range nbrs {
				if parent[u] == -2 {
					parent[u] = v
					queue = append(queue, u)
				}
			}
		}
		t, err := FromParent(root, parent)
		if err != nil {
			return nil, err
		}
		forest = append(forest, t)
	}
	return forest, nil
}
