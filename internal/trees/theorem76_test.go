package trees

import (
	"testing"

	"polarfly/internal/er"
	"polarfly/internal/graph"
)

// TestTheorem76CaseAnalysis replays the proof of Theorem 7.6 on concrete
// forests: every congested (shared) link must fall into one of the three
// cases of the proof, and each case's structural claim must hold.
func TestTheorem76CaseAnalysis(t *testing.T) {
	for _, q := range []int{5, 7, 9, 11} {
		l := layout(t, q)
		pg := l.PG
		forest, err := LowDepthForest(l)
		if err != nil {
			t.Fatal(err)
		}
		isCenter := make(map[int]bool)
		for _, c := range l.Centers {
			isCenter[c] = true
		}
		isQuadric := func(v int) bool { return pg.Type(v) == er.Quadric }

		for link, c := range Congestion(forest) {
			if c < 2 {
				continue
			}
			if c > 2 {
				t.Fatalf("q=%d: link %v congestion %d", q, link, c)
			}
			u, v := link.U, link.V
			switch {
			case isCenter[u] || isCenter[v]:
				// Case 1: a center endpoint. One of the two trees must be
				// the one rooted at that center.
				center := u
				if isCenter[v] {
					center = v
				}
				ci := l.ClusterOf[center]
				owners := treesContaining(forest, link)
				rootOwned := false
				for _, ti := range owners {
					if ti == ci {
						rootOwned = true
					}
				}
				if !rootOwned {
					t.Errorf("q=%d: center link %v not owned by the center's tree", q, link)
				}
			case isQuadric(u) || isQuadric(v):
				// Case 2: a non-starter quadric endpoint; the other
				// endpoint is a non-center non-quadric.
				w := u
				other := v
				if isQuadric(v) {
					w, other = v, u
				}
				if w == l.Starter {
					t.Errorf("q=%d: starter quadric on congested link %v", q, link)
				}
				if isQuadric(other) || isCenter[other] {
					t.Errorf("q=%d: case-2 link %v has wrong other endpoint", q, link)
				}
				// The two owning trees must be the quadric's cluster and
				// the other endpoint's cluster.
				owners := treesContaining(forest, link)
				wantA := l.CenterOfQuadric[w]
				wantB := l.ClusterOf[other]
				if !sameSet(owners, []int{wantA, wantB}) {
					t.Errorf("q=%d: case-2 link %v owned by %v, want {%d,%d}", q, link, owners, wantA, wantB)
				}
			default:
				// Case 3: both endpoints plain cluster vertices in distinct
				// clusters; owners are exactly those two clusters.
				ci, cj := l.ClusterOf[u], l.ClusterOf[v]
				if ci == cj {
					t.Errorf("q=%d: case-3 link %v inside one cluster", q, link)
				}
				owners := treesContaining(forest, link)
				if !sameSet(owners, []int{ci, cj}) {
					t.Errorf("q=%d: case-3 link %v owned by %v, want {%d,%d}", q, link, owners, ci, cj)
				}
			}
		}
	}
}

func treesContaining(forest []*Tree, e graph.Edge) []int {
	var out []int
	for i, t := range forest {
		for _, te := range t.Edges() {
			if te == e {
				out = append(out, i)
				break
			}
		}
	}
	return out
}

func sameSet(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	m := make(map[int]bool)
	for _, x := range a {
		m[x] = true
	}
	for _, x := range b {
		if !m[x] {
			return false
		}
	}
	return true
}
