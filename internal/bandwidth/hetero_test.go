package bandwidth

import (
	"testing"

	"polarfly/internal/graph"
)

func TestWaterfillHeterogeneousMatchesUniform(t *testing.T) {
	shared := graph.Edge{U: 0, V: 1}
	forest := [][]graph.Edge{
		{shared, {U: 1, V: 2}},
		{shared, {U: 1, V: 3}},
	}
	uni := Waterfill(forest, 2.0)
	het := WaterfillHeterogeneous(forest, nil, 2.0)
	for i := range uni.PerTree {
		if uni.PerTree[i] != het.PerTree[i] {
			t.Fatalf("uniform/heterogeneous mismatch: %v vs %v", uni.PerTree, het.PerTree)
		}
	}
}

func TestWaterfillHeterogeneousCapacities(t *testing.T) {
	shared := graph.Edge{U: 0, V: 1}
	a := graph.Edge{U: 1, V: 2}
	b := graph.Edge{U: 1, V: 3}
	forest := [][]graph.Edge{
		{shared, a},
		{shared, b},
	}
	// The shared link is a fat trunk (4.0); the private links default 1.0.
	r := WaterfillHeterogeneous(forest, map[graph.Edge]float64{shared: 4.0}, 1.0)
	// Bottlenecks move to the private links: each tree gets 1.0.
	if r.PerTree[0] != 1.0 || r.PerTree[1] != 1.0 {
		t.Errorf("trunked shared link: %v, want 1.0 each", r.PerTree)
	}
	// A degraded private link throttles only its tree.
	r = WaterfillHeterogeneous(forest, map[graph.Edge]float64{shared: 4.0, a: 0.25}, 1.0)
	if r.PerTree[0] != 0.25 || r.PerTree[1] != 1.0 {
		t.Errorf("degraded link: %v, want (0.25, 1.0)", r.PerTree)
	}
	if r.Aggregate != 1.25 {
		t.Errorf("aggregate %f", r.Aggregate)
	}
}

func TestWaterfillHeterogeneousPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { WaterfillHeterogeneous(nil, nil, 0) },
		func() {
			WaterfillHeterogeneous(nil, map[graph.Edge]float64{{U: 0, V: 1}: -1}, 1)
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}
