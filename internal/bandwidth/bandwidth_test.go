package bandwidth

import (
	"math"
	"math/rand"
	"testing"

	"polarfly/internal/er"
	"polarfly/internal/graph"
	"polarfly/internal/singer"
	"polarfly/internal/trees"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestWaterfillSingleTree(t *testing.T) {
	// One tree alone gets the full link bandwidth.
	es := [][]graph.Edge{{{U: 0, V: 1}, {U: 1, V: 2}}}
	r := Waterfill(es, 4.0)
	if !almostEq(r.PerTree[0], 4.0) || !almostEq(r.Aggregate, 4.0) {
		t.Errorf("single tree: %+v", r)
	}
	if r.MaxCongestion != 1 {
		t.Errorf("congestion = %d", r.MaxCongestion)
	}
}

func TestWaterfillDisjointTrees(t *testing.T) {
	es := [][]graph.Edge{
		{{U: 0, V: 1}, {U: 1, V: 2}},
		{{U: 0, V: 2}, {U: 2, V: 3}},
	}
	r := Waterfill(es, 1.0)
	if !almostEq(r.Aggregate, 2.0) {
		t.Errorf("disjoint trees should each get full B: %+v", r)
	}
}

func TestWaterfillSharedLink(t *testing.T) {
	// Two trees sharing one link split it evenly.
	shared := graph.Edge{U: 0, V: 1}
	es := [][]graph.Edge{
		{shared, {U: 1, V: 2}},
		{shared, {U: 1, V: 3}},
	}
	r := Waterfill(es, 1.0)
	if !almostEq(r.PerTree[0], 0.5) || !almostEq(r.PerTree[1], 0.5) {
		t.Errorf("shared link not split evenly: %+v", r)
	}
	if r.MaxCongestion != 2 {
		t.Errorf("congestion = %d", r.MaxCongestion)
	}
}

func TestWaterfillCascade(t *testing.T) {
	// Tree 0 and tree 1 share link a; tree 1 and tree 2 share link b.
	// First a (or b) bottlenecks at 1/2; after tree 0 and 1 retire at 1/2,
	// tree 2 has 1/2 left on b... order independence means B = (.5,.5,.5).
	a := graph.Edge{U: 0, V: 1}
	b := graph.Edge{U: 1, V: 2}
	es := [][]graph.Edge{
		{a, {U: 2, V: 3}},
		{a, b},
		{b, {U: 3, V: 4}},
	}
	r := Waterfill(es, 1.0)
	for i, want := range []float64{0.5, 0.5, 0.5} {
		if !almostEq(r.PerTree[i], want) {
			t.Errorf("tree %d: B=%f, want %f (%+v)", i, r.PerTree[i], want, r)
		}
	}
}

func TestWaterfillAsymmetricCascade(t *testing.T) {
	// Three trees share link a; one of them also shares link b with a
	// fourth. a bottlenecks at 1/3 (retiring trees 0,1,2); then b has
	// 2/3 left for tree 3 alone.
	a := graph.Edge{U: 0, V: 1}
	b := graph.Edge{U: 1, V: 2}
	es := [][]graph.Edge{
		{a},
		{a},
		{a, b},
		{b},
	}
	r := Waterfill(es, 1.0)
	want := []float64{1. / 3, 1. / 3, 1. / 3, 2. / 3}
	for i := range want {
		if !almostEq(r.PerTree[i], want[i]) {
			t.Errorf("tree %d: B=%f, want %f", i, r.PerTree[i], want[i])
		}
	}
}

func TestWaterfillOrderIndependence(t *testing.T) {
	// Shuffling tree order must permute, not change, the assignment.
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 30; trial++ {
		nTrees := rng.Intn(5) + 2
		nLinks := rng.Intn(6) + 2
		links := make([]graph.Edge, nLinks)
		for i := range links {
			links[i] = graph.Edge{U: i, V: i + 1}
		}
		es := make([][]graph.Edge, nTrees)
		for i := range es {
			for _, l := range links {
				if rng.Float64() < 0.5 {
					es[i] = append(es[i], l)
				}
			}
			if len(es[i]) == 0 {
				es[i] = append(es[i], links[0])
			}
		}
		base := Waterfill(es, 1.0)
		perm := rng.Perm(nTrees)
		shuffled := make([][]graph.Edge, nTrees)
		for i, p := range perm {
			shuffled[i] = es[p]
		}
		got := Waterfill(shuffled, 1.0)
		for i, p := range perm {
			if !almostEq(got.PerTree[i], base.PerTree[p]) {
				t.Fatalf("trial %d: tree %d got %f, want %f", trial, i, got.PerTree[i], base.PerTree[p])
			}
		}
		if !almostEq(got.Aggregate, base.Aggregate) {
			t.Fatalf("trial %d: aggregate changed", trial)
		}
	}
}

func TestWaterfillCapacityInvariants(t *testing.T) {
	// No link's total assigned bandwidth may exceed linkB, and every
	// tree's bandwidth is positive.
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 50; trial++ {
		nTrees := rng.Intn(6) + 1
		nLinks := rng.Intn(8) + 1
		links := make([]graph.Edge, nLinks)
		for i := range links {
			links[i] = graph.Edge{U: i, V: i + 1}
		}
		es := make([][]graph.Edge, nTrees)
		for i := range es {
			es[i] = append(es[i], links[rng.Intn(nLinks)])
			for _, l := range links {
				if rng.Float64() < 0.4 && !contains(es[i], l) {
					es[i] = append(es[i], l)
				}
			}
		}
		r := Waterfill(es, 1.0)
		load := make(map[graph.Edge]float64)
		for i, esi := range es {
			if r.PerTree[i] <= 0 {
				t.Fatalf("trial %d: tree %d got non-positive bandwidth %f", trial, i, r.PerTree[i])
			}
			for _, e := range esi {
				load[e] += r.PerTree[i]
			}
		}
		for e, l := range load {
			if l > 1.0+1e-9 {
				t.Fatalf("trial %d: link %v overloaded: %f", trial, e, l)
			}
		}
	}
}

func contains(es []graph.Edge, e graph.Edge) bool {
	for _, x := range es {
		if x == e {
			return true
		}
	}
	return false
}

func TestWaterfillPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-positive link bandwidth should panic")
		}
	}()
	Waterfill(nil, 0)
}

func TestCorollary77LowDepthForestBandwidth(t *testing.T) {
	// Algorithm 3 forest achieves at least qB/2 under Algorithm 1.
	for _, q := range []int{3, 5, 7, 9, 11} {
		pg, err := er.New(q)
		if err != nil {
			t.Fatal(err)
		}
		l, err := er.NewLayout(pg, -1)
		if err != nil {
			t.Fatal(err)
		}
		forest, err := trees.LowDepthForest(l)
		if err != nil {
			t.Fatal(err)
		}
		r := ForForest(forest, 1.0)
		if r.MaxCongestion > 2 {
			t.Errorf("q=%d: congestion %d", q, r.MaxCongestion)
		}
		if bound := LowDepthBound(q, 1.0); r.Aggregate < bound-1e-9 {
			t.Errorf("q=%d: aggregate %.4f < bound %.4f (Cor. 7.7)", q, r.Aggregate, bound)
		}
		if opt := Optimal(q, 1.0); r.Aggregate > opt+1e-9 {
			t.Errorf("q=%d: aggregate %.4f exceeds optimal %.4f", q, r.Aggregate, opt)
		}
	}
}

func TestTheorem719HamiltonianForestBandwidth(t *testing.T) {
	// Edge-disjoint forest: every tree gets the full link bandwidth; with
	// ⌊(q+1)/2⌋ trees the aggregate equals the optimal for odd q.
	for _, q := range []int{3, 4, 5, 7, 8, 9} {
		s, err := singer.New(q)
		if err != nil {
			t.Fatal(err)
		}
		forest, err := trees.HamiltonianForest(s, 30, 42)
		if err != nil {
			t.Fatal(err)
		}
		r := ForForest(forest, 1.0)
		if r.MaxCongestion != 1 {
			t.Errorf("q=%d: congestion %d, want 1", q, r.MaxCongestion)
		}
		want := HamiltonianBound(len(forest), 1.0)
		if !almostEq(r.Aggregate, want) {
			t.Errorf("q=%d: aggregate %.4f, want %.4f", q, r.Aggregate, want)
		}
		if q%2 == 1 && !almostEq(r.Aggregate, Optimal(q, 1.0)) {
			t.Errorf("q=%d odd: aggregate %.4f should equal optimal %.4f", q, r.Aggregate, Optimal(q, 1.0))
		}
	}
}

func TestSingleTreeGetsOneLinkBandwidth(t *testing.T) {
	// The baseline the paper improves on: one tree ⇒ aggregate = B.
	pg, err := er.New(7)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := trees.SingleTreeBaseline(pg.G, 0)
	if err != nil {
		t.Fatal(err)
	}
	r := ForForest([]*trees.Tree{tr}, 2.5)
	if !almostEq(r.Aggregate, 2.5) {
		t.Errorf("single tree aggregate %.4f, want 2.5", r.Aggregate)
	}
}

func TestOptimalFormula(t *testing.T) {
	if !almostEq(Optimal(11, 1.0), 6.0) {
		t.Error("Optimal(11, 1) should be 6")
	}
	if !almostEq(Optimal(4, 2.0), 5.0) {
		t.Error("Optimal(4, 2) should be 5")
	}
	if !almostEq(LowDepthBound(11, 1.0), 5.5) {
		t.Error("LowDepthBound(11,1) should be 5.5")
	}
	if !almostEq(LowDepthBound(4, 1.0), 2.5) {
		t.Error("LowDepthBound(4,1) should be 2.5 (even q per §7.3)")
	}
	if !almostEq(HamiltonianBound(6, 1.5), 9.0) {
		t.Error("HamiltonianBound(6,1.5) should be 9")
	}
}

func TestSubvectorSplit(t *testing.T) {
	// Equal bandwidths split evenly.
	got, err := SubvectorSplit(12, []float64{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range got {
		if m != 4 {
			t.Fatalf("even split = %v", got)
		}
	}
	// Proportional to bandwidth.
	got, err = SubvectorSplit(30, []float64{2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 20 || got[1] != 10 {
		t.Errorf("2:1 split of 30 = %v", got)
	}
	// Rounding preserves the total.
	got, err = SubvectorSplit(10, []float64{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	sum := 0
	for _, m := range got {
		sum += m
	}
	if sum != 10 {
		t.Errorf("split of 10 into 3 sums to %d: %v", sum, got)
	}
	// Zero-bandwidth trees get nothing.
	got, err = SubvectorSplit(7, []float64{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0 || got[1] != 7 {
		t.Errorf("zero-bandwidth split = %v", got)
	}
	// Zero-size vector.
	got, err = SubvectorSplit(0, []float64{1, 2})
	if err != nil || got[0] != 0 || got[1] != 0 {
		t.Errorf("zero vector split = %v err=%v", got, err)
	}
	// Errors.
	if _, err := SubvectorSplit(-1, []float64{1}); err == nil {
		t.Error("negative m accepted")
	}
	if _, err := SubvectorSplit(5, []float64{0, 0}); err == nil {
		t.Error("all-zero bandwidth accepted")
	}
	if _, err := SubvectorSplit(5, []float64{-1, 2}); err == nil {
		t.Error("negative bandwidth accepted")
	}
}

func TestSubvectorSplitPreservesTotalRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(8) + 1
		bw := make([]float64, n)
		nonzero := false
		for i := range bw {
			bw[i] = float64(rng.Intn(5))
			if bw[i] > 0 {
				nonzero = true
			}
		}
		if !nonzero {
			bw[0] = 1
		}
		m := rng.Intn(1000)
		got, err := SubvectorSplit(m, bw)
		if err != nil {
			t.Fatal(err)
		}
		sum := 0
		for i, x := range got {
			sum += x
			if bw[i] == 0 && x != 0 {
				t.Fatalf("zero-bandwidth tree got %d elements", x)
			}
			if x < 0 {
				t.Fatalf("negative share %d", x)
			}
		}
		if sum != m {
			t.Fatalf("split of %d sums to %d", m, sum)
		}
	}
}

func TestPredictTime(t *testing.T) {
	// Equation 3: t = L + m/ΣB.
	if !almostEq(PredictTime(100, 2.0, 4.0), 27.0) {
		t.Error("PredictTime(100,2,4) should be 27")
	}
	defer func() {
		if recover() == nil {
			t.Error("zero aggregate should panic")
		}
	}()
	PredictTime(1, 0, 0)
}
