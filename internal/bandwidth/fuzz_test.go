package bandwidth

import (
	"math/rand"
	"testing"

	"polarfly/internal/graph"
)

// FuzzSubvectorSplit: for any non-negative split request over any
// bandwidth vector, the result must be a non-negative partition of m that
// assigns zero to zero-bandwidth trees.
func FuzzSubvectorSplit(f *testing.F) {
	f.Add(10, int64(1))
	f.Add(0, int64(7))
	f.Add(9999, int64(123))
	f.Fuzz(func(t *testing.T, m int, seed int64) {
		if m < 0 || m > 1<<20 {
			return
		}
		rng := rand.New(rand.NewSource(seed))
		bw := make([]float64, rng.Intn(9)+1)
		nonzero := false
		for i := range bw {
			bw[i] = float64(rng.Intn(6))
			if bw[i] > 0 {
				nonzero = true
			}
		}
		got, err := SubvectorSplit(m, bw)
		if err != nil {
			if m > 0 && nonzero {
				t.Fatalf("unexpected error: %v", err)
			}
			return
		}
		sum := 0
		for i, x := range got {
			if x < 0 {
				t.Fatal("negative share")
			}
			if bw[i] == 0 && x != 0 {
				t.Fatal("share to zero-bandwidth tree")
			}
			sum += x
		}
		if sum != m {
			t.Fatalf("sum %d != m %d", sum, m)
		}
	})
}

// FuzzWaterfill: random forests over a small link universe must never
// overload a link nor starve a non-empty tree.
func FuzzWaterfill(f *testing.F) {
	f.Add(int64(1), uint8(3), uint8(4))
	f.Add(int64(99), uint8(6), uint8(2))
	f.Fuzz(func(t *testing.T, seed int64, nTreesRaw, nLinksRaw uint8) {
		rng := rand.New(rand.NewSource(seed))
		nTrees := int(nTreesRaw)%6 + 1
		nLinks := int(nLinksRaw)%8 + 1
		links := make([]graph.Edge, nLinks)
		for i := range links {
			links[i] = graph.Edge{U: i, V: i + 1}
		}
		forest := make([][]graph.Edge, nTrees)
		for i := range forest {
			forest[i] = append(forest[i], links[rng.Intn(nLinks)])
			for _, l := range links {
				if rng.Float64() < 0.4 && !containsEdge(forest[i], l) {
					forest[i] = append(forest[i], l)
				}
			}
		}
		r := Waterfill(forest, 1.0)
		load := make(map[graph.Edge]float64)
		for i, es := range forest {
			if r.PerTree[i] <= 0 {
				t.Fatalf("tree %d starved", i)
			}
			for _, e := range es {
				load[e] += r.PerTree[i]
			}
		}
		for e, l := range load {
			if l > 1.0+1e-9 {
				t.Fatalf("link %v overloaded: %f", e, l)
			}
		}
	})
}
