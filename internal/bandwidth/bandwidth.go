// Package bandwidth implements the congestion-aware performance model of
// §5 of the paper: Algorithm 1's waterfilling of link bandwidth across a
// set of embedded Allreduce trees, the aggregate-bandwidth result of
// Theorem 5.1, the optimal bound for PolarFly (Corollary 7.1), and the
// optimal sub-vector split across trees (Equation 2).
package bandwidth

import (
	"fmt"
	"math"
	"sort"

	"polarfly/internal/graph"
	"polarfly/internal/trees"
)

// Result reports the outcome of Algorithm 1 for a forest.
type Result struct {
	// PerTree[i] is B_i, the bandwidth assigned to tree i, in the same
	// units as the input link bandwidth.
	PerTree []float64
	// Aggregate is ΣB_i, the maximum achievable Allreduce bandwidth
	// (Theorem 5.1).
	Aggregate float64
	// MaxCongestion is the worst-case number of trees sharing one link.
	MaxCongestion int
}

// Waterfill runs Algorithm 1 ("Performance under Congestion") on a forest
// of trees embedded in a network with per-link bandwidth linkB. Each tree
// is given by its edge list; the network topology itself is implicit (only
// links used by at least one tree matter, since unused links never
// constrain anything).
//
// The bottleneck link — the one minimising remaining-bandwidth/congestion —
// fixes the bandwidth of every tree crossing it; those trees' bandwidth is
// then subtracted from all their links, and the process repeats. The
// result is independent of tie-breaking order (verified by property tests).
func Waterfill(forest [][]graph.Edge, linkB float64) Result {
	if linkB <= 0 {
		panic("bandwidth: link bandwidth must be positive")
	}
	r := Result{PerTree: make([]float64, len(forest))}

	// Initialisation (lines 1-3).
	avail := make(map[graph.Edge]float64)
	congestion := make(map[graph.Edge]int)
	for _, es := range forest {
		for _, e := range es {
			avail[e] = linkB
			congestion[e]++
		}
	}
	for _, c := range congestion {
		if c > r.MaxCongestion {
			r.MaxCongestion = c
		}
	}

	active := make([]bool, len(forest))
	remaining := 0
	for i, es := range forest {
		if len(es) > 0 {
			active[i] = true
			remaining++
		}
	}

	// Main loop (lines 4-12). Candidate links are scanned in sorted order
	// so the argmin breaks ties identically on every run; the final Result
	// is tie-independent (property-tested), but intermediate state must
	// not leak map iteration order.
	edges := sortedEdges(congestion)
	for remaining > 0 {
		// Line 5: bottleneck link e_min = argmin L(e)/C(e) over links still
		// carrying at least one active tree.
		var emin graph.Edge
		best := math.Inf(1)
		found := false
		for _, e := range edges {
			c := congestion[e]
			if c <= 0 {
				continue
			}
			if share := avail[e] / float64(c); share < best {
				best = share
				emin = e
				found = true
			}
		}
		if !found {
			panic("bandwidth: active trees remain but no congested link found")
		}
		share := avail[emin] / float64(congestion[emin])

		// Lines 6-11: every active tree crossing e_min is assigned the
		// share and retired.
		for i, es := range forest {
			if !active[i] || !containsEdge(es, emin) {
				continue
			}
			r.PerTree[i] = share
			for _, e := range es {
				avail[e] -= share
				congestion[e]--
			}
			active[i] = false
			remaining--
		}
		// Line 12: remove e_min from consideration.
		delete(avail, emin)
		delete(congestion, emin)
	}

	for _, b := range r.PerTree {
		r.Aggregate += b
	}
	return r
}

// sortedEdges returns the keys of congestion ordered by (U, V), the
// deterministic scan order for bottleneck selection.
func sortedEdges(congestion map[graph.Edge]int) []graph.Edge {
	out := make([]graph.Edge, 0, len(congestion))
	for e := range congestion {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].V < out[j].V
	})
	return out
}

func containsEdge(es []graph.Edge, e graph.Edge) bool {
	for _, x := range es {
		if x == e {
			return true
		}
	}
	return false
}

// WaterfillHeterogeneous runs Algorithm 1 with per-link capacities instead
// of a uniform bandwidth: caps maps each link to its capacity, and links
// absent from the map default to defaultB. This models mixed fabrics
// (trunked spines, degraded optics) that the uniform model cannot.
func WaterfillHeterogeneous(forest [][]graph.Edge, caps map[graph.Edge]float64, defaultB float64) Result {
	if defaultB <= 0 {
		panic("bandwidth: default link bandwidth must be positive")
	}
	for e, c := range caps {
		if c <= 0 {
			panic(fmt.Sprintf("bandwidth: non-positive capacity for link %v", e))
		}
	}
	r := Result{PerTree: make([]float64, len(forest))}
	avail := make(map[graph.Edge]float64)
	congestion := make(map[graph.Edge]int)
	for _, es := range forest {
		for _, e := range es {
			if c, ok := caps[e]; ok {
				avail[e] = c
			} else {
				avail[e] = defaultB
			}
			congestion[e]++
		}
	}
	for _, c := range congestion {
		if c > r.MaxCongestion {
			r.MaxCongestion = c
		}
	}
	active := make([]bool, len(forest))
	remaining := 0
	for i, es := range forest {
		if len(es) > 0 {
			active[i] = true
			remaining++
		}
	}
	edges := sortedEdges(congestion)
	for remaining > 0 {
		var emin graph.Edge
		best := math.Inf(1)
		found := false
		for _, e := range edges {
			c := congestion[e]
			if c <= 0 {
				continue
			}
			if share := avail[e] / float64(c); share < best {
				best = share
				emin = e
				found = true
			}
		}
		if !found {
			panic("bandwidth: active trees remain but no congested link found")
		}
		share := avail[emin] / float64(congestion[emin])
		for i, es := range forest {
			if !active[i] || !containsEdge(es, emin) {
				continue
			}
			r.PerTree[i] = share
			for _, e := range es {
				avail[e] -= share
				congestion[e]--
			}
			active[i] = false
			remaining--
		}
		delete(avail, emin)
		delete(congestion, emin)
	}
	for _, b := range r.PerTree {
		r.Aggregate += b
	}
	return r
}

// ForForest adapts Waterfill to a forest of rooted trees.
func ForForest(forest []*trees.Tree, linkB float64) Result {
	es := make([][]graph.Edge, len(forest))
	for i, t := range forest {
		es[i] = t.Edges()
	}
	return Waterfill(es, linkB)
}

// Optimal returns the optimal bidirectional in-network Allreduce bandwidth
// of PolarFly ER_q: (q+1)·B/2 (Corollary 7.1). The bound is the edge-count
// argument — ER_q has q(q+1)²/2 links and each spanning tree needs q²+q of
// them, so at most (q+1)/2 unit-bandwidth trees fit.
func Optimal(q int, linkB float64) float64 {
	return float64(q+1) * linkB / 2
}

// LowDepthBound returns the guaranteed aggregate bandwidth of the
// Algorithm 3 forest: q·B/2 for odd q (Corollary 7.7; q trees at
// congestion 2). For even q the paper states the conceptually similar
// layout attains the optimal (q+1)·B/2 (§7.3).
func LowDepthBound(q int, linkB float64) float64 {
	if q%2 == 1 {
		return float64(q) * linkB / 2
	}
	return float64(q+1) * linkB / 2
}

// HamiltonianBound returns the aggregate bandwidth of t edge-disjoint
// Hamiltonian trees: t·B (Theorem 7.19). With the optimal t = ⌊(q+1)/2⌋
// this equals ⌊(q+1)/2⌋·B.
func HamiltonianBound(numTrees int, linkB float64) float64 {
	return float64(numTrees) * linkB
}

// SubvectorSplit distributes an m-element Allreduce vector across trees in
// proportion to their bandwidth, m_i = m·B_i/ΣB_i (Equation 2 of
// Theorem 5.1), rounded to integers that sum exactly to m (largest-
// remainder method). Trees with zero bandwidth receive zero elements.
func SubvectorSplit(m int, perTree []float64) ([]int, error) {
	if m < 0 {
		return nil, fmt.Errorf("bandwidth: negative vector size %d", m)
	}
	total := 0.0
	for _, b := range perTree {
		if b < 0 {
			return nil, fmt.Errorf("bandwidth: negative tree bandwidth %f", b)
		}
		total += b
	}
	out := make([]int, len(perTree))
	if m == 0 {
		return out, nil
	}
	//lint:ignore floatcmp total is a sum of non-negative inputs, so exact zero means "no bandwidth anywhere"; a tolerance would misclassify tiny real allocations
	if total == 0 {
		return nil, fmt.Errorf("bandwidth: all trees have zero bandwidth")
	}
	type frac struct {
		idx int
		rem float64
	}
	assigned := 0
	fracs := make([]frac, len(perTree))
	for i, b := range perTree {
		exact := float64(m) * b / total
		out[i] = int(exact)
		assigned += out[i]
		fracs[i] = frac{i, exact - float64(out[i])}
	}
	// Distribute the leftover elements to the largest remainders
	// (deterministic: ties broken by index).
	for assigned < m {
		best := -1
		for i := range fracs {
			//lint:ignore floatcmp exact-zero sentinel: zero-bandwidth trees must receive zero elements (documented contract), not a rounding-leftover element
			if perTree[fracs[i].idx] == 0 {
				continue
			}
			if best == -1 || fracs[i].rem > fracs[best].rem {
				best = i
			}
		}
		out[fracs[best].idx]++
		fracs[best].rem = -1
		assigned++
	}
	return out, nil
}

// BacklogAwareSplit distributes r new elements across trees that already
// carry backlog[i] undelivered elements and run at bandwidth perTree[i],
// so that the projected finish times (backlog_i + r_i)/B_i are equalised —
// the waterfilling generalisation of Equation 2 used when a recovery
// re-issues a dead tree's remaining chunk over the survivors. With all
// backlogs zero it reduces to SubvectorSplit. Zero-bandwidth trees
// receive nothing.
func BacklogAwareSplit(r int, backlog []int, perTree []float64) ([]int, error) {
	if r < 0 {
		return nil, fmt.Errorf("bandwidth: negative re-issue size %d", r)
	}
	if len(backlog) != len(perTree) {
		return nil, fmt.Errorf("bandwidth: backlog/bandwidth length mismatch %d vs %d", len(backlog), len(perTree))
	}
	total := 0.0
	for i, b := range perTree {
		if b < 0 {
			return nil, fmt.Errorf("bandwidth: negative tree bandwidth %f", b)
		}
		if backlog[i] < 0 {
			return nil, fmt.Errorf("bandwidth: negative backlog %d", backlog[i])
		}
		total += b
	}
	out := make([]int, len(perTree))
	if r == 0 {
		return out, nil
	}
	//lint:ignore floatcmp total is a sum of non-negative inputs, so exact zero means "no bandwidth anywhere"; a tolerance would misclassify tiny real allocations
	if total == 0 {
		return nil, fmt.Errorf("bandwidth: all trees have zero bandwidth")
	}

	// A tree starts receiving work once the water level T (projected
	// finish time) rises past its current level backlog_i/B_i. Scan the
	// per-tree levels in ascending order; between consecutive levels the
	// total allocated, Σ_active (T·B_i − backlog_i), is linear in T, so
	// the segment containing r pins T exactly.
	type lvl struct {
		idx   int
		level float64
	}
	lvls := make([]lvl, 0, len(perTree))
	for i, b := range perTree {
		if b > 0 {
			lvls = append(lvls, lvl{i, float64(backlog[i]) / b})
		}
	}
	sort.Slice(lvls, func(i, j int) bool {
		if lvls[i].level < lvls[j].level {
			return true
		}
		if lvls[j].level < lvls[i].level {
			return false
		}
		return lvls[i].idx < lvls[j].idx
	})
	sumB, sumBacklog := 0.0, 0.0
	var T float64
	for k, l := range lvls {
		sumB += perTree[l.idx]
		sumBacklog += float64(backlog[l.idx])
		// Candidate level assuming exactly trees 0..k are active.
		T = (float64(r) + sumBacklog) / sumB
		if k == len(lvls)-1 || T <= lvls[k+1].level {
			break
		}
	}

	// Exact allocations at level T, then integer rounding by largest
	// remainder (deterministic: ties broken by index).
	type frac struct {
		idx int
		rem float64
	}
	assigned := 0
	fracs := make([]frac, 0, len(lvls))
	for _, l := range lvls {
		exact := T*perTree[l.idx] - float64(backlog[l.idx])
		if exact < 0 {
			exact = 0
		}
		out[l.idx] = int(exact)
		assigned += out[l.idx]
		fracs = append(fracs, frac{l.idx, exact - float64(out[l.idx])})
	}
	sort.Slice(fracs, func(i, j int) bool { return fracs[i].idx < fracs[j].idx })
	for assigned < r {
		best := -1
		for i := range fracs {
			if best == -1 || fracs[i].rem > fracs[best].rem {
				best = i
			}
		}
		out[fracs[best].idx]++
		fracs[best].rem = -1
		assigned++
	}
	// Float drift can overshoot by a unit or two; trim from the smallest
	// remainders so the split still sums exactly to r.
	for assigned > r {
		worst := -1
		for i := range fracs {
			if out[fracs[i].idx] == 0 {
				continue
			}
			if worst == -1 || fracs[i].rem < fracs[worst].rem {
				worst = i
			}
		}
		out[fracs[worst].idx]--
		fracs[worst].rem = 2 // already trimmed; deprioritise
		assigned--
	}
	return out, nil
}

// PredictTime returns the Allreduce completion time for an m-element
// vector split optimally across the forest: t = L + m/ΣB_i (Equation 3),
// with L the per-tree latency in time units.
func PredictTime(m int, latency float64, aggregate float64) float64 {
	if aggregate <= 0 {
		panic("bandwidth: non-positive aggregate bandwidth")
	}
	return latency + float64(m)/aggregate
}
