package bandwidth

import (
	"testing"

	"polarfly/internal/er"
	"polarfly/internal/trees"
)

func TestRandomForestLosesToCoordinated(t *testing.T) {
	// §3's argument quantified: k uncoordinated random spanning trees
	// congest links and lose aggregate bandwidth against Algorithm 3's k
	// coordinated trees under the Algorithm 1 model.
	for _, q := range []int{5, 7, 9, 11} {
		pg, err := er.New(q)
		if err != nil {
			t.Fatal(err)
		}
		l, err := er.NewLayout(pg, -1)
		if err != nil {
			t.Fatal(err)
		}
		coordinated, err := trees.LowDepthForest(l)
		if err != nil {
			t.Fatal(err)
		}
		random, err := trees.RandomForest(pg.G, q, 7)
		if err != nil {
			t.Fatal(err)
		}
		coordBW := ForForest(coordinated, 1.0)
		randBW := ForForest(random, 1.0)
		if randBW.Aggregate >= coordBW.Aggregate {
			t.Errorf("q=%d: random forest %.3f ≥ coordinated %.3f", q, randBW.Aggregate, coordBW.Aggregate)
		}
		if randBW.MaxCongestion <= coordBW.MaxCongestion {
			t.Errorf("q=%d: random congestion %d ≤ coordinated %d",
				q, randBW.MaxCongestion, coordBW.MaxCongestion)
		}
	}
}

func TestTreeCountAblation(t *testing.T) {
	// Using only k of the q low-depth trees scales bandwidth ≈ linearly
	// until congestion binds — the data-parallelism knob of §4.3.
	pg, err := er.New(11)
	if err != nil {
		t.Fatal(err)
	}
	l, err := er.NewLayout(pg, -1)
	if err != nil {
		t.Fatal(err)
	}
	forest, err := trees.LowDepthForest(l)
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for k := 1; k <= len(forest); k++ {
		r := ForForest(forest[:k], 1.0)
		if r.Aggregate < prev-1e-9 {
			t.Errorf("aggregate decreased at k=%d: %.3f < %.3f", k, r.Aggregate, prev)
		}
		if r.Aggregate > float64(k)+1e-9 {
			t.Errorf("aggregate %.3f exceeds k=%d link bandwidths", r.Aggregate, k)
		}
		prev = r.Aggregate
	}
	// All q trees must reach the Corollary 7.7 bound.
	if prev < 5.5-1e-9 {
		t.Errorf("full forest aggregate %.3f < 5.5", prev)
	}
}
