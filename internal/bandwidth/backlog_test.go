package bandwidth

import (
	"math/rand"
	"reflect"
	"testing"
)

func sum(xs []int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}

func TestBacklogAwareSplitZeroBacklogMatchesSubvectorSplit(t *testing.T) {
	perTree := []float64{1, 2, 0.5, 0}
	want, err := SubvectorSplit(1000, perTree)
	if err != nil {
		t.Fatal(err)
	}
	got, err := BacklogAwareSplit(1000, []int{0, 0, 0, 0}, perTree)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("zero-backlog split %v, want SubvectorSplit %v", got, want)
	}
}

func TestBacklogAwareSplitEqualisesFinishTimes(t *testing.T) {
	// Tree 0 has a large head start of outstanding work; the split should
	// favour tree 1 until their projected finish times meet.
	perTree := []float64{1, 1}
	got, err := BacklogAwareSplit(100, []int{200, 0}, perTree)
	if err != nil {
		t.Fatal(err)
	}
	if sum(got) != 100 {
		t.Fatalf("split %v does not sum to 100", got)
	}
	// Equal-bandwidth trees: level T = (100+200)/2 = 150, so tree 0 gets
	// nothing (already above the water line) and tree 1 gets everything.
	if got[0] != 0 || got[1] != 100 {
		t.Fatalf("split %v, want [0 100]", got)
	}
}

func TestBacklogAwareSplitPartialLevel(t *testing.T) {
	// T lands between levels: backlog 10 vs 0 at equal bandwidth with 30
	// to place → T = 20, allocations {10, 20}.
	got, err := BacklogAwareSplit(30, []int{10, 0}, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 10 || got[1] != 20 {
		t.Fatalf("split %v, want [10 20]", got)
	}
}

func TestBacklogAwareSplitZeroBandwidthTreeExcluded(t *testing.T) {
	got, err := BacklogAwareSplit(7, []int{0, 5, 0}, []float64{0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0 {
		t.Fatalf("zero-bandwidth tree received %d elements: %v", got[0], got)
	}
	if sum(got) != 7 {
		t.Fatalf("split %v does not sum to 7", got)
	}
}

func TestBacklogAwareSplitErrors(t *testing.T) {
	if _, err := BacklogAwareSplit(-1, []int{0}, []float64{1}); err == nil {
		t.Error("accepted negative size")
	}
	if _, err := BacklogAwareSplit(1, []int{0, 0}, []float64{1}); err == nil {
		t.Error("accepted length mismatch")
	}
	if _, err := BacklogAwareSplit(1, []int{-2}, []float64{1}); err == nil {
		t.Error("accepted negative backlog")
	}
	if _, err := BacklogAwareSplit(1, []int{0}, []float64{-1}); err == nil {
		t.Error("accepted negative bandwidth")
	}
	if _, err := BacklogAwareSplit(1, []int{0, 0}, []float64{0, 0}); err == nil {
		t.Error("accepted all-zero bandwidth")
	}
	got, err := BacklogAwareSplit(0, []int{5}, []float64{1})
	if err != nil || got[0] != 0 {
		t.Errorf("zero-size split: got %v, %v", got, err)
	}
}

func TestBacklogAwareSplitPreservesTotalRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 500; iter++ {
		n := 1 + rng.Intn(6)
		perTree := make([]float64, n)
		backlog := make([]int, n)
		positive := false
		for i := range perTree {
			if rng.Intn(4) > 0 {
				perTree[i] = rng.Float64()*3 + 0.01
				positive = true
			}
			backlog[i] = rng.Intn(300)
		}
		if !positive {
			perTree[0] = 1
		}
		r := rng.Intn(5000)
		got, err := BacklogAwareSplit(r, backlog, perTree)
		if err != nil {
			t.Fatalf("iter %d: %v (r=%d backlog=%v perTree=%v)", iter, err, r, backlog, perTree)
		}
		if sum(got) != r {
			t.Fatalf("iter %d: split %v sums to %d, want %d", iter, got, sum(got), r)
		}
		for i, x := range got {
			if x < 0 {
				t.Fatalf("iter %d: negative allocation %v", iter, got)
			}
			//lint:ignore floatcmp exact-zero sentinel mirrors the documented zero-bandwidth contract
			if perTree[i] == 0 && x != 0 {
				t.Fatalf("iter %d: zero-bandwidth tree got %d elements", iter, x)
			}
		}
	}
}

func TestBacklogAwareSplitMinimisesMakespan(t *testing.T) {
	// Brute-force check on small instances: no alternative split of r
	// across two trees finishes sooner than the waterfilled one.
	perTree := []float64{1.5, 0.7}
	backlog := []int{40, 10}
	const r = 60
	got, err := BacklogAwareSplit(r, backlog, perTree)
	if err != nil {
		t.Fatal(err)
	}
	makespan := func(a, b int) float64 {
		t0 := (float64(backlog[0]) + float64(a)) / perTree[0]
		t1 := (float64(backlog[1]) + float64(b)) / perTree[1]
		if t0 > t1 {
			return t0
		}
		return t1
	}
	best := makespan(got[0], got[1])
	for a := 0; a <= r; a++ {
		if m := makespan(a, r-a); m < best-1e-9 {
			t.Fatalf("split %v has makespan %.4f; [%d %d] achieves %.4f", got, best, a, r-a, m)
		}
	}
}
