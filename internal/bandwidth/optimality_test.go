package bandwidth

import (
	"math/rand"
	"testing"

	"polarfly/internal/er"
	"polarfly/internal/graph"
	"polarfly/internal/singer"
	"polarfly/internal/trees"
)

// maxRandomFeasibleAggregate searches random feasible rate allocations for
// the highest aggregate, scaling random positive vectors to the capacity
// boundary.
func maxRandomFeasibleAggregate(forest [][]graph.Edge, probes int, rng *rand.Rand) float64 {
	best := 0.0
	for probe := 0; probe < probes; probe++ {
		rates := make([]float64, len(forest))
		for i := range rates {
			rates[i] = rng.Float64() + 1e-3
		}
		load := make(map[graph.Edge]float64)
		for i, es := range forest {
			for _, e := range es {
				load[e] += rates[i]
			}
		}
		worst := 0.0
		for _, l := range load {
			if l > worst {
				worst = l
			}
		}
		sum := 0.0
		for _, r := range rates {
			sum += r / worst
		}
		if sum > best {
			best = sum
		}
	}
	return best
}

// TestWaterfillOptimalOnPaperForests probes Theorem 5.1 on the forests the
// paper actually constructs: randomized search over feasible allocations
// never beats the waterfill aggregate for the Algorithm 3 and Hamiltonian
// forests (whose symmetric structure makes max-min fairness coincide with
// aggregate optimality).
func TestWaterfillOptimalOnPaperForests(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for _, q := range []int{3, 5, 7} {
		pg, err := er.New(q)
		if err != nil {
			t.Fatal(err)
		}
		l, err := er.NewLayout(pg, -1)
		if err != nil {
			t.Fatal(err)
		}
		low, err := trees.LowDepthForest(l)
		if err != nil {
			t.Fatal(err)
		}
		s, err := singer.New(q)
		if err != nil {
			t.Fatal(err)
		}
		ham, err := trees.HamiltonianForest(s, 30, 42)
		if err != nil {
			t.Fatal(err)
		}
		for name, forest := range map[string][]*trees.Tree{"lowdepth": low, "hamiltonian": ham} {
			es := make([][]graph.Edge, len(forest))
			for i, tr := range forest {
				es[i] = tr.Edges()
			}
			wf := Waterfill(es, 1.0)
			best := maxRandomFeasibleAggregate(es, 300, rng)
			if best > wf.Aggregate+1e-9 {
				t.Errorf("q=%d %s: random allocation %.6f beats waterfill %.6f",
					q, name, best, wf.Aggregate)
			}
		}
	}
}

// TestWaterfillIsMaxMinNotMaxAggregate documents a scope limit of
// Algorithm 1 discovered by randomized falsification: the waterfill is
// max-min fair, and for ASYMMETRIC tree sets a different allocation can
// achieve a strictly higher aggregate. Concretely, with
//
//	T0 = {a, b, c},  T1 = {c, d},  T2 = {a, b}
//
// waterfill gives every tree 1/2 (aggregate 1.5), but starving T0 to 0.2
// lets T1 and T2 run at 0.8 (aggregate 1.8). The paper's forests are
// symmetric enough that this gap never appears (previous test); this test
// pins the counterexample so the distinction stays documented.
func TestWaterfillIsMaxMinNotMaxAggregate(t *testing.T) {
	a := graph.Edge{U: 0, V: 1}
	b := graph.Edge{U: 1, V: 2}
	c := graph.Edge{U: 2, V: 3}
	d := graph.Edge{U: 3, V: 4}
	forest := [][]graph.Edge{
		{a, b, c},
		{c, d},
		{a, b},
	}
	wf := Waterfill(forest, 1.0)
	for i, want := range []float64{0.5, 0.5, 0.5} {
		if diff := wf.PerTree[i] - want; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("waterfill = %+v, want 1/2 each", wf)
		}
	}
	// The asymmetric allocation (0.2, 0.8, 0.8) is feasible and beats it.
	alt := []float64{0.2, 0.8, 0.8}
	load := map[graph.Edge]float64{}
	for i, es := range forest {
		for _, e := range es {
			load[e] += alt[i]
		}
	}
	for e, l := range load {
		if l > 1.0+1e-9 {
			t.Fatalf("alternative allocation infeasible at %v: %f", e, l)
		}
	}
	altSum := alt[0] + alt[1] + alt[2]
	if altSum <= wf.Aggregate {
		t.Fatalf("counterexample broken: %f vs %f", altSum, wf.Aggregate)
	}
	// Max-min property: the waterfill's minimum share (1/2) is the best
	// possible minimum — any allocation with min > 1/2 violates a link.
	// (a carries T0+T2, so min > 1/2 ⇒ load(a) > 1.)
}
