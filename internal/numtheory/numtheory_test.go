package numtheory

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGCD(t *testing.T) {
	cases := []struct{ a, b, want int }{
		{0, 0, 0}, {0, 5, 5}, {5, 0, 5}, {12, 18, 6}, {18, 12, 6},
		{7, 13, 1}, {-12, 18, 6}, {12, -18, 6}, {-12, -18, 6},
		{1, 1, 1}, {100, 10, 10}, {21, 14, 7},
	}
	for _, c := range cases {
		if got := GCD(c.a, c.b); got != c.want {
			t.Errorf("GCD(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestExtGCDIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		a := rng.Intn(10000) - 5000
		b := rng.Intn(10000) - 5000
		g, x, y := ExtGCD(a, b)
		if g != GCD(a, b) {
			t.Fatalf("ExtGCD(%d,%d) gcd=%d, want %d", a, b, g, GCD(a, b))
		}
		if a*x+b*y != g {
			t.Fatalf("ExtGCD(%d,%d): %d*%d + %d*%d != %d", a, b, a, x, b, y, g)
		}
	}
}

func TestMod(t *testing.T) {
	if Mod(-1, 13) != 12 {
		t.Errorf("Mod(-1,13) = %d, want 12", Mod(-1, 13))
	}
	if Mod(13, 13) != 0 {
		t.Errorf("Mod(13,13) = %d, want 0", Mod(13, 13))
	}
	if Mod(27, 13) != 1 {
		t.Errorf("Mod(27,13) = %d, want 1", Mod(27, 13))
	}
}

func TestModPanicsOnBadModulus(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Mod(1,0) did not panic")
		}
	}()
	Mod(1, 0)
}

func TestModInverse(t *testing.T) {
	// Lemma 6.7: in Z_N with N = q²+q+1 (always odd), 2⁻¹ = (N+1)/2.
	for _, q := range []int{2, 3, 4, 5, 7, 8, 9, 11, 13} {
		n := q*q + q + 1
		inv, ok := ModInverse(2, n)
		if !ok {
			t.Fatalf("q=%d: 2 has no inverse mod %d", q, n)
		}
		if want := (n + 1) / 2; inv != want {
			t.Errorf("q=%d: 2⁻¹ mod %d = %d, want %d (Lemma 6.7)", q, n, inv, want)
		}
	}
	if _, ok := ModInverse(6, 21); ok {
		t.Error("ModInverse(6,21) should not exist (gcd=3)")
	}
}

func TestModInverseProperty(t *testing.T) {
	f := func(a uint16, m uint16) bool {
		mod := int(m)%1000 + 2
		av := int(a)
		inv, ok := ModInverse(av, mod)
		if !ok {
			return GCD(av, mod) != 1
		}
		return Mod(av*inv, mod) == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestModPow(t *testing.T) {
	if got := ModPow(2, 10, 1000); got != 24 {
		t.Errorf("ModPow(2,10,1000) = %d, want 24", got)
	}
	if got := ModPow(5, 0, 7); got != 1 {
		t.Errorf("ModPow(5,0,7) = %d, want 1", got)
	}
	if got := ModPow(0, 5, 7); got != 0 {
		t.Errorf("ModPow(0,5,7) = %d, want 0", got)
	}
	// Fermat's little theorem spot checks.
	for _, p := range []int{3, 5, 7, 11, 13, 101} {
		for a := 1; a < p; a++ {
			if ModPow(a, p-1, p) != 1 {
				t.Errorf("Fermat fails: %d^%d mod %d != 1", a, p-1, p)
			}
		}
	}
}

func TestIsPrime(t *testing.T) {
	primes := []int{2, 3, 5, 7, 11, 13, 127, 7919}
	nonPrimes := []int{-7, 0, 1, 4, 6, 9, 21, 91, 7917}
	for _, p := range primes {
		if !IsPrime(p) {
			t.Errorf("IsPrime(%d) = false, want true", p)
		}
	}
	for _, n := range nonPrimes {
		if IsPrime(n) {
			t.Errorf("IsPrime(%d) = true, want false", n)
		}
	}
}

func TestFactor(t *testing.T) {
	cases := []struct {
		n    int
		want []PrimePower
	}{
		{1, nil},
		{2, []PrimePower{{2, 1}}},
		{12, []PrimePower{{2, 2}, {3, 1}}},
		{21, []PrimePower{{3, 1}, {7, 1}}}, // N for q=4
		{343, []PrimePower{{7, 3}}},
		{9973, []PrimePower{{9973, 1}}},
	}
	for _, c := range cases {
		got := Factor(c.n)
		if len(got) != len(c.want) {
			t.Errorf("Factor(%d) = %v, want %v", c.n, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("Factor(%d)[%d] = %v, want %v", c.n, i, got[i], c.want[i])
			}
		}
	}
}

func TestFactorReassembles(t *testing.T) {
	for n := 1; n <= 5000; n++ {
		prod := 1
		for _, pp := range Factor(n) {
			if !IsPrime(pp.P) {
				t.Fatalf("Factor(%d) produced non-prime %d", n, pp.P)
			}
			prod *= pp.Value()
		}
		if prod != n {
			t.Fatalf("Factor(%d) product = %d", n, prod)
		}
	}
}

func TestIsPrimePower(t *testing.T) {
	cases := []struct {
		n, p, a int
		ok      bool
	}{
		{2, 2, 1, true}, {3, 3, 1, true}, {4, 2, 2, true}, {8, 2, 3, true},
		{9, 3, 2, true}, {27, 3, 3, true}, {121, 11, 2, true}, {128, 2, 7, true},
		{1, 0, 0, false}, {6, 0, 0, false}, {12, 0, 0, false}, {100, 0, 0, false},
	}
	for _, c := range cases {
		p, a, ok := IsPrimePower(c.n)
		if ok != c.ok || p != c.p || a != c.a {
			t.Errorf("IsPrimePower(%d) = (%d,%d,%v), want (%d,%d,%v)", c.n, p, a, ok, c.p, c.a, c.ok)
		}
	}
}

func TestTotient(t *testing.T) {
	cases := []struct{ n, want int }{
		{1, 1}, {2, 1}, {6, 2}, {9, 6}, {10, 4},
		{13, 12}, // q=3 → N=13, Cor. 7.20: 12 Hamiltonian paths
		{21, 12}, // q=4 → N=21
		{31, 30}, // q=5 → N=31
		{57, 36}, // q=7 → N=57
	}
	for _, c := range cases {
		if got := Totient(c.n); got != c.want {
			t.Errorf("Totient(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestTotientSumOverDivisors(t *testing.T) {
	// Gauss: Σ_{d|n} φ(d) = n.
	for n := 1; n <= 2000; n++ {
		sum := 0
		for _, d := range Divisors(n) {
			sum += Totient(d)
		}
		if sum != n {
			t.Fatalf("Σφ(d|%d) = %d", n, sum)
		}
	}
}

func TestTotientBoundsFromPaper(t *testing.T) {
	// §7.2: for composite n ≠ 6, √n ≤ φ(n) ≤ n − √n.
	for n := 4; n <= 3000; n++ {
		if IsPrime(n) || n == 6 {
			continue
		}
		phi := Totient(n)
		if phi*phi < n {
			t.Errorf("φ(%d) = %d < √%d", n, phi, n)
		}
		if d := n - phi; d*d < n {
			t.Errorf("φ(%d) = %d > %d − √%d", n, phi, n, n)
		}
	}
}

func TestDivisors(t *testing.T) {
	got := Divisors(21)
	want := []int{1, 3, 7, 21}
	if len(got) != len(want) {
		t.Fatalf("Divisors(21) = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Divisors(21) = %v, want %v", got, want)
		}
	}
}

func TestPrimePowersUpTo(t *testing.T) {
	got := PrimePowersUpTo(2, 32)
	want := []int{2, 3, 4, 5, 7, 8, 9, 11, 13, 16, 17, 19, 23, 25, 27, 29, 31, 32}
	if len(got) != len(want) {
		t.Fatalf("PrimePowersUpTo(2,32) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("PrimePowersUpTo(2,32)[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	// Paper sweep: radix in [3,129] → q in [2,128]; all must be prime powers.
	qs := PrimePowersUpTo(2, 128)
	if len(qs) != 44 {
		t.Errorf("expected 44 prime powers in [2,128], got %d: %v", len(qs), qs)
	}
}

func TestMultiplicativeOrder(t *testing.T) {
	ord, ok := MultiplicativeOrder(2, 13)
	if !ok || ord != 12 {
		t.Errorf("order of 2 mod 13 = (%d,%v), want (12,true)", ord, ok)
	}
	ord, ok = MultiplicativeOrder(3, 13)
	if !ok || ord != 3 {
		t.Errorf("order of 3 mod 13 = (%d,%v), want (3,true)", ord, ok)
	}
	if _, ok := MultiplicativeOrder(6, 21); ok {
		t.Error("order of 6 mod 21 should not exist")
	}
}

func TestMultiplicativeOrderProperty(t *testing.T) {
	f := func(a uint8, m uint8) bool {
		mod := int(m)%200 + 2
		av := int(a)%mod + 1
		ord, ok := MultiplicativeOrder(av, mod)
		if !ok {
			return GCD(av, mod) != 1
		}
		if ModPow(av, ord, mod) != 1 {
			return false
		}
		// Minimality: no smaller exponent works.
		for k := 1; k < ord; k++ {
			if ModPow(av, k, mod) == 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
