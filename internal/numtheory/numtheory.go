// Package numtheory provides the elementary number-theoretic routines that
// underpin the Singer difference-set construction and the Hamiltonian-path
// analysis of the paper: gcd and extended gcd, modular inverses (Lemma 6.7),
// primality and prime-power testing (PolarFly exists for every prime power
// radix), integer factorisation by trial division (N = q²+q+1 is at most a
// few tens of thousands for all radixes of interest), and Euler's totient
// (Corollary 7.20 counts the alternating-sum Hamiltonian paths as φ(N)).
//
// All routines operate on int64-range values held in int; PolarFly design
// points keep N below 2^15, so overflow is never a concern here, but the
// implementations are written to be correct for any non-negative int inputs
// that fit without intermediate overflow.
package numtheory

import "sort"

// GCD returns the greatest common divisor of a and b. GCD(0, 0) == 0.
// Negative inputs are folded to their absolute values.
func GCD(a, b int) int {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// ExtGCD returns (g, x, y) with a*x + b*y == g == gcd(a, b).
func ExtGCD(a, b int) (g, x, y int) {
	if b == 0 {
		if a < 0 {
			return -a, -1, 0
		}
		return a, 1, 0
	}
	g, x1, y1 := ExtGCD(b, a%b)
	return g, y1, x1 - (a/b)*y1
}

// Mod returns a mod m with a result in [0, m). m must be positive.
func Mod(a, m int) int {
	if m <= 0 {
		panic("numtheory: Mod with non-positive modulus")
	}
	r := a % m
	if r < 0 {
		r += m
	}
	return r
}

// ModInverse returns the multiplicative inverse of a modulo m, and whether it
// exists (it exists iff gcd(a, m) == 1). m must be positive.
func ModInverse(a, m int) (int, bool) {
	if m <= 0 {
		panic("numtheory: ModInverse with non-positive modulus")
	}
	g, x, _ := ExtGCD(Mod(a, m), m)
	if g != 1 {
		return 0, false
	}
	return Mod(x, m), true
}

// ModPow returns base^exp mod m for exp >= 0 and m > 0.
func ModPow(base, exp, m int) int {
	if m <= 0 {
		panic("numtheory: ModPow with non-positive modulus")
	}
	if exp < 0 {
		panic("numtheory: ModPow with negative exponent")
	}
	base = Mod(base, m)
	result := 1 % m
	for exp > 0 {
		if exp&1 == 1 {
			result = result * base % m
		}
		base = base * base % m
		exp >>= 1
	}
	return result
}

// IsPrime reports whether n is prime, by trial division. Intended for the
// small moduli that arise in PolarFly analysis (N ≤ ~2^20).
func IsPrime(n int) bool {
	if n < 2 {
		return false
	}
	if n%2 == 0 {
		return n == 2
	}
	if n%3 == 0 {
		return n == 3
	}
	for f := 5; f*f <= n; f += 6 {
		if n%f == 0 || n%(f+2) == 0 {
			return false
		}
	}
	return true
}

// Factor returns the prime factorisation of n > 1 as a sorted slice of
// (prime, exponent) pairs. Factor(1) returns an empty slice.
func Factor(n int) []PrimePower {
	if n < 1 {
		panic("numtheory: Factor of non-positive integer")
	}
	var out []PrimePower
	for _, p := range []int{2, 3} {
		if n%p == 0 {
			e := 0
			for n%p == 0 {
				n /= p
				e++
			}
			out = append(out, PrimePower{P: p, E: e})
		}
	}
	for f := 5; f*f <= n; f += 6 {
		for _, p := range []int{f, f + 2} {
			if n%p == 0 {
				e := 0
				for n%p == 0 {
					n /= p
					e++
				}
				out = append(out, PrimePower{P: p, E: e})
			}
		}
	}
	if n > 1 {
		out = append(out, PrimePower{P: n, E: 1})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].P < out[j].P })
	return out
}

// PrimePower is one term p^e of a factorisation.
type PrimePower struct {
	P, E int
}

// Value returns p^e.
func (pp PrimePower) Value() int {
	v := 1
	for i := 0; i < pp.E; i++ {
		v *= pp.P
	}
	return v
}

// IsPrimePower reports whether n = p^a for a prime p and a ≥ 1, returning
// (p, a, true) if so. PolarFly ER_q graphs exist exactly for prime-power q.
func IsPrimePower(n int) (p, a int, ok bool) {
	if n < 2 {
		return 0, 0, false
	}
	f := Factor(n)
	if len(f) != 1 {
		return 0, 0, false
	}
	return f[0].P, f[0].E, true
}

// Totient returns Euler's totient φ(n) for n ≥ 1.
func Totient(n int) int {
	if n < 1 {
		panic("numtheory: Totient of non-positive integer")
	}
	phi := n
	for _, pp := range Factor(n) {
		phi = phi / pp.P * (pp.P - 1)
	}
	return phi
}

// Divisors returns all positive divisors of n ≥ 1 in ascending order.
func Divisors(n int) []int {
	if n < 1 {
		panic("numtheory: Divisors of non-positive integer")
	}
	var ds []int
	for d := 1; d*d <= n; d++ {
		if n%d == 0 {
			ds = append(ds, d)
			if d != n/d {
				ds = append(ds, n/d)
			}
		}
	}
	sort.Ints(ds)
	return ds
}

// PrimePowersUpTo returns every prime power q with lo ≤ q ≤ hi in ascending
// order. This enumerates the feasible PolarFly radixes q+1 used in the
// Figure 5 sweeps of the paper (q ∈ [2, 128] → radix ∈ [3, 129]).
func PrimePowersUpTo(lo, hi int) []int {
	var qs []int
	for q := lo; q <= hi; q++ {
		if _, _, ok := IsPrimePower(q); ok {
			qs = append(qs, q)
		}
	}
	return qs
}

// MultiplicativeOrder returns the order of a modulo m (smallest k ≥ 1 with
// a^k ≡ 1 mod m). a must be coprime to m; otherwise ok is false.
func MultiplicativeOrder(a, m int) (int, bool) {
	if m <= 0 {
		panic("numtheory: MultiplicativeOrder with non-positive modulus")
	}
	a = Mod(a, m)
	if GCD(a, m) != 1 {
		return 0, false
	}
	// The order divides φ(m); test divisors in ascending order.
	phi := Totient(m)
	for _, d := range Divisors(phi) {
		if ModPow(a, d, m) == 1 {
			return d, true
		}
	}
	return 0, false // unreachable for valid inputs
}
