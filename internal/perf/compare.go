package perf

import (
	"fmt"
	"sort"
)

// DeltaKind classifies one benchmark metric's movement between two
// snapshots.
type DeltaKind int

const (
	// DeltaWithinNoise: the relative change is inside the threshold.
	DeltaWithinNoise DeltaKind = iota
	// DeltaImprovement: the metric moved in the good direction by more
	// than the threshold.
	DeltaImprovement
	// DeltaRegression: the metric moved in the bad direction by more than
	// the threshold.
	DeltaRegression
	// DeltaAdded: the benchmark exists only in the new snapshot.
	DeltaAdded
	// DeltaRemoved: the benchmark exists only in the old snapshot.
	DeltaRemoved
	// DeltaChanged: a unit with no known improvement direction (a custom
	// testing.B.ReportMetric unit) moved beyond the threshold.
	// Informational only — it never gates.
	DeltaChanged
)

func (k DeltaKind) String() string {
	switch k {
	case DeltaWithinNoise:
		return "within-noise"
	case DeltaImprovement:
		return "improvement"
	case DeltaRegression:
		return "regression"
	case DeltaAdded:
		return "added"
	case DeltaRemoved:
		return "removed"
	case DeltaChanged:
		return "changed"
	}
	return fmt.Sprintf("DeltaKind(%d)", int(k))
}

// gateUnits are the units whose regressions fail a comparison. They are
// the lower-is-better testing.B standards; custom units (elem/cycle,
// coord/rand, …) and MB/s are reported but never gate, because their
// direction cannot be inferred reliably and a missing custom metric must
// not break CI.
var gateUnits = map[string]bool{"ns/op": true, "B/op": true, "allocs/op": true}

// lowerIsBetter returns the improvement direction for a unit, and
// whether the direction is known.
func lowerIsBetter(unit string) (bool, bool) {
	switch unit {
	case "ns/op", "B/op", "allocs/op":
		return true, true
	case "MB/s":
		return false, true
	}
	return false, false
}

// Delta is one (benchmark, unit) comparison.
type Delta struct {
	Name  string    `json:"name"`
	Procs int       `json:"procs"`
	Unit  string    `json:"unit,omitempty"`
	Kind  DeltaKind `json:"kind"`
	// KindName mirrors Kind for human-readable JSON.
	KindName string  `json:"kind_name"`
	Old      float64 `json:"old,omitempty"`
	New      float64 `json:"new,omitempty"`
	// Rel is (New−Old)/Old; sign follows the raw values, not the
	// direction of goodness.
	Rel float64 `json:"rel,omitempty"`
	// Gating marks units whose regressions fail the comparison.
	Gating bool `json:"gating,omitempty"`
}

// Comparison is the full diff of two snapshots.
type Comparison struct {
	OldLabel  string  `json:"old_label"`
	NewLabel  string  `json:"new_label"`
	Threshold float64 `json:"threshold"`
	Deltas    []Delta `json:"deltas"`
	// Regressions counts gating-unit regressions; a CI gate fails when it
	// is non-zero.
	Regressions  int `json:"regressions"`
	Improvements int `json:"improvements"`
	Added        int `json:"added"`
	Removed      int `json:"removed"`
}

// OK reports whether the comparison found no gating regressions.
func (c *Comparison) OK() bool { return c.Regressions == 0 }

// Compare diffs two bench snapshots on their median statistics. A
// benchmark metric regresses when it moves in the bad direction by more
// than threshold (relative); only the standard lower-is-better units
// gate. Benchmarks present on one side only are reported as added or
// removed (never gating). Deltas are sorted by (name, procs, unit).
func Compare(old, new *Snapshot, threshold float64) *Comparison {
	c := &Comparison{OldLabel: old.Label, NewLabel: new.Label, Threshold: threshold}
	type key struct {
		name  string
		procs int
	}
	oldBy := make(map[key]BenchSummary, len(old.Benchmarks))
	for _, b := range old.Benchmarks {
		oldBy[key{b.Name, b.Procs}] = b
	}
	newBy := make(map[key]BenchSummary, len(new.Benchmarks))
	for _, b := range new.Benchmarks {
		newBy[key{b.Name, b.Procs}] = b
	}

	keys := make([]key, 0, len(oldBy)+len(newBy))
	for k := range oldBy {
		keys = append(keys, k)
	}
	for k := range newBy {
		if _, ok := oldBy[k]; !ok {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].name != keys[j].name {
			return keys[i].name < keys[j].name
		}
		return keys[i].procs < keys[j].procs
	})

	for _, k := range keys {
		ob, haveOld := oldBy[k]
		nb, haveNew := newBy[k]
		switch {
		case !haveNew:
			c.Deltas = append(c.Deltas, Delta{Name: k.name, Procs: k.procs,
				Kind: DeltaRemoved, KindName: DeltaRemoved.String()})
			c.Removed++
		case !haveOld:
			c.Deltas = append(c.Deltas, Delta{Name: k.name, Procs: k.procs,
				Kind: DeltaAdded, KindName: DeltaAdded.String()})
			c.Added++
		default:
			for _, om := range ob.Metrics {
				nm, ok := nb.Metric(om.Unit)
				if !ok {
					continue
				}
				d := classify(k.name, k.procs, om, nm, threshold)
				if d.Kind == DeltaRegression && d.Gating {
					c.Regressions++
				}
				if d.Kind == DeltaImprovement {
					c.Improvements++
				}
				c.Deltas = append(c.Deltas, d)
			}
		}
	}
	return c
}

func classify(name string, procs int, om, nm MetricSummary, threshold float64) Delta {
	d := Delta{
		Name: name, Procs: procs, Unit: om.Unit,
		Old: om.Median, New: nm.Median,
		Gating: gateUnits[om.Unit],
	}
	if d.Old > 0 {
		d.Rel = (d.New - d.Old) / d.Old
	}
	lower, known := lowerIsBetter(om.Unit)
	switch {
	case !known:
		// Custom unit: the good direction is unknowable, so report the
		// movement without judging it.
		if d.Rel > threshold || d.Rel < -threshold {
			d.Kind = DeltaChanged
		} else {
			d.Kind = DeltaWithinNoise
		}
	default:
		worse := d.Rel
		if !lower {
			worse = -d.Rel
		}
		switch {
		case worse > threshold:
			d.Kind = DeltaRegression
		case worse < -threshold:
			d.Kind = DeltaImprovement
		default:
			d.Kind = DeltaWithinNoise
		}
	}
	d.KindName = d.Kind.String()
	return d
}
