package perf

import (
	"fmt"
	"strings"
)

// DefaultHotAllocBudget is the measured allocs/op ceiling for benchmarks
// backing a static "allocation-free" claim. One — not zero — because a
// benchmark harness occasionally books a stray allocation (timer
// bookkeeping, a first-iteration warm-up) against the timed section.
const DefaultHotAllocBudget = 1

// HotCheckResult is the measured side of the static-vs-measured
// allocation cross-check for one benchmark.
type HotCheckResult struct {
	Name string
	// Allocs is the median measured allocs/op.
	Allocs float64
	// OK is Allocs ≤ the budget.
	OK bool
}

// HotAllocCrossCheck verifies the measured half of the hot-path claim:
// every benchmark in snap whose name starts with benchPrefix must report
// allocs/op at or below maxAllocs. It returns one result per matched
// benchmark and an error when the snapshot cannot support the check at
// all — no matching benchmark, or a match without allocation data —
// because a vacuously green gate is worse than a red one.
func HotAllocCrossCheck(snap *Snapshot, benchPrefix string, maxAllocs float64) ([]HotCheckResult, error) {
	var out []HotCheckResult
	for _, b := range snap.Benchmarks {
		if !strings.HasPrefix(b.Name, benchPrefix) {
			continue
		}
		m, ok := b.Metric("allocs/op")
		if !ok {
			return nil, fmt.Errorf("perf: benchmark %s has no allocs/op metric; run with -benchmem or b.ReportAllocs", b.Name)
		}
		out = append(out, HotCheckResult{Name: b.Name, Allocs: m.Median, OK: m.Median <= maxAllocs})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("perf: no benchmark named %s* in snapshot %q; the hot-path claim has no measured witness", benchPrefix, snap.Label)
	}
	return out, nil
}
