package perf

import (
	"fmt"
	"io"
	"strings"
)

// This file renders snapshots and comparisons as GitHub-flavoured
// markdown tables — the human-readable companion of the BENCH_*.json
// artifacts.

func writeRow(w io.Writer, cells ...string) error {
	_, err := fmt.Fprintf(w, "| %s |\n", strings.Join(cells, " | "))
	return err
}

func writeRule(w io.Writer, n int) error {
	cells := make([]string, n)
	for i := range cells {
		cells[i] = "---"
	}
	return writeRow(w, cells...)
}

// WriteBenchMarkdown renders a bench snapshot as one table row per
// benchmark, with the standard units as columns and the run-to-run
// spread of ns/op as the noise column.
func WriteBenchMarkdown(w io.Writer, s *Snapshot) error {
	if _, err := fmt.Fprintf(w, "### Benchmarks — %s\n\n", s.Label); err != nil {
		return err
	}
	if len(s.Failed) > 0 {
		if _, err := fmt.Fprintf(w, "**FAILED:** %s\n\n", strings.Join(s.Failed, ", ")); err != nil {
			return err
		}
	}
	if err := writeRow(w, "benchmark", "runs", "ns/op (median)", "B/op", "allocs/op", "spread"); err != nil {
		return err
	}
	if err := writeRule(w, 6); err != nil {
		return err
	}
	for _, b := range s.Benchmarks {
		ns, bop, allocs, spread := "-", "-", "-", "-"
		if m, ok := b.Metric("ns/op"); ok {
			ns = formatValue(m.Median)
			spread = fmt.Sprintf("%.1f%%", 100*m.Spread)
		}
		if m, ok := b.Metric("B/op"); ok {
			bop = formatValue(m.Median)
		}
		if m, ok := b.Metric("allocs/op"); ok {
			allocs = formatValue(m.Median)
		}
		if err := writeRow(w, b.Name, fmt.Sprintf("%d", b.Runs), ns, bop, allocs, spread); err != nil {
			return err
		}
	}
	return nil
}

// WriteCompareMarkdown renders a comparison, regressions first.
func WriteCompareMarkdown(w io.Writer, c *Comparison) error {
	if _, err := fmt.Fprintf(w, "### Benchmark comparison — %s → %s (threshold %.0f%%)\n\n",
		c.OldLabel, c.NewLabel, 100*c.Threshold); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%d regression(s), %d improvement(s), %d added, %d removed\n\n",
		c.Regressions, c.Improvements, c.Added, c.Removed); err != nil {
		return err
	}
	if err := writeRow(w, "benchmark", "unit", "old", "new", "delta", "verdict"); err != nil {
		return err
	}
	if err := writeRule(w, 6); err != nil {
		return err
	}
	// Two passes: gating regressions first so they are impossible to miss,
	// then everything else in snapshot order.
	for pass := 0; pass < 2; pass++ {
		for _, d := range c.Deltas {
			isReg := d.Kind == DeltaRegression && d.Gating
			if (pass == 0) != isReg {
				continue
			}
			verdict := d.KindName
			if isReg {
				verdict = "**" + verdict + "**"
			}
			oldS, newS, rel := "-", "-", "-"
			if d.Kind != DeltaAdded && d.Kind != DeltaRemoved {
				oldS, newS = formatValue(d.Old), formatValue(d.New)
				rel = fmt.Sprintf("%+.1f%%", 100*d.Rel)
			}
			if err := writeRow(w, d.Name, d.Unit, oldS, newS, rel, verdict); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteScorecardMarkdown renders the measured-vs-model scorecard.
func WriteScorecardMarkdown(w io.Writer, s *Snapshot) error {
	if _, err := fmt.Fprintf(w, "### Measured-vs-model scorecard — %s\n\n", s.Label); err != nil {
		return err
	}
	if cfg := s.ScorecardConfig; cfg != nil {
		if _, err := fmt.Fprintf(w, "m=%d, link latency=%d, VC depth=%d, tolerance=%.0f%%\n\n",
			cfg.M, cfg.LinkLatency, cfg.VCDepth, 100*cfg.Tolerance); err != nil {
			return err
		}
	}
	if err := writeRow(w, "q", "embedding", "trees", "model B", "measured B",
		"err", "bound", "meets", "util err", "red/bc cycles"); err != nil {
		return err
	}
	if err := writeRule(w, 10); err != nil {
		return err
	}
	for _, pt := range s.Scorecard {
		meets := "yes"
		if !pt.MeetsBound {
			meets = "**NO**"
		}
		if err := writeRow(w,
			fmt.Sprintf("%d", pt.Q), pt.Embedding, fmt.Sprintf("%d", pt.Trees),
			fmt.Sprintf("%.3f", pt.ModelBW), fmt.Sprintf("%.3f", pt.MeasuredBW),
			fmt.Sprintf("%+.2f%%", 100*pt.BWRelErr),
			fmt.Sprintf("%.2f (%s)", pt.Bound, pt.BoundName), meets,
			fmt.Sprintf("%+.2f%%", 100*pt.UtilRelErr),
			fmt.Sprintf("%d/%d", pt.ReducePhaseCycles, pt.BcastPhaseCycles),
		); err != nil {
			return err
		}
	}
	return nil
}

// formatValue renders a metric value compactly: integers without a
// decimal point, everything else with three significant decimals.
func formatValue(v float64) string {
	if v >= 1000 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.3g", v)
}
