package perf

import (
	"fmt"
	"math"

	"polarfly/internal/bandwidth"
	"polarfly/internal/core"
	"polarfly/internal/netsim"
	"polarfly/internal/obsv"
	"polarfly/internal/parrun"
	"polarfly/internal/workload"
)

// ScorecardConfig parameterises the measured-vs-model sweep.
type ScorecardConfig struct {
	// Qs are the PolarFly orders to sweep (odd prime powers exercise all
	// embeddings; for even q the low-depth point is skipped, matching
	// §6.1.1).
	Qs []int `json:"qs"`
	// M is the Allreduce vector length. The bandwidth regime requires
	// m ≫ pipeline fill, so the default is large; smoke tests shrink it.
	M int `json:"m"`
	// LinkLatency and VCDepth configure the simulated fabric.
	LinkLatency int `json:"link_latency"`
	VCDepth     int `json:"vc_depth"`
	// Seed drives the workload and the Hamiltonian search.
	Seed int64 `json:"seed"`
	// Tolerance is the acceptable relative gap between measurement and
	// model (and between measurement and the theorem floors): pipeline
	// fill/drain keeps measured bandwidth strictly below steady state, so
	// exact bound checks would always fail.
	Tolerance float64 `json:"tolerance"`
	// Parallel is the parrun worker-pool size for the sweep: 1 forces the
	// serial path, <1 means GOMAXPROCS. Results commit in input order
	// either way, so the value never changes the output — it is excluded
	// from snapshots so BENCH_*.json stays byte-identical across runners.
	Parallel int `json:"-"`
	// Engine selects the netsim advance strategy (cycle-accurate loop or
	// the event-driven cycle-skipping engine). The engines are
	// differentially tested byte-identical, so the choice never changes a
	// point and is excluded from snapshots.
	Engine netsim.Engine `json:"-"`
}

// DefaultScorecardConfig is calibrated so every point lands well inside
// the 10% tolerance on the seed hardware model: latency-1 links keep the
// fill transient small and m=16384 amortises it even for the deep
// Hamiltonian trees at q=11.
func DefaultScorecardConfig() ScorecardConfig {
	return ScorecardConfig{
		Qs:          []int{3, 5, 7, 11},
		M:           16384,
		LinkLatency: 1,
		VCDepth:     4,
		Seed:        core.DefaultSeed,
		Tolerance:   0.10,
	}
}

// Bound names used in ScorePoint.BoundName.
const (
	// BoundThm76 is the Theorem 7.6 floor q·B/2 for the depth-3 forest.
	BoundThm76 = "thm7.6 q·B/2"
	// BoundThm719 is the Theorem 7.19 / Corollary 7.1 optimum
	// ⌊(q+1)/2⌋·B for the edge-disjoint forest.
	BoundThm719 = "thm7.19 (q+1)·B/2"
	// BoundSingleLink is the one-tree baseline's trivial cap of one link
	// bandwidth.
	BoundSingleLink = "single link B"
)

// ScorePoint is one measured-vs-model record: a (q, embedding) design
// point with the Algorithm 1 prediction, the simulated measurement, the
// theorem floor, and the obsv telemetry that attributes the gap.
type ScorePoint struct {
	Q         int    `json:"q"`
	Embedding string `json:"embedding"`
	Trees     int    `json:"trees"`
	M         int    `json:"m"`
	Cycles    int    `json:"cycles"`
	// ModelBW is the Algorithm 1 aggregate (elements/cycle at unit link
	// bandwidth); MeasuredBW is m divided by simulated cycles; BWRelErr
	// is their relative error (measured − model)/model.
	ModelBW    float64 `json:"model_bw"`
	MeasuredBW float64 `json:"measured_bw"`
	BWRelErr   float64 `json:"bw_rel_err"`
	// Bound is the embedding's proven aggregate-bandwidth floor and
	// BoundName identifies the theorem. MeetsBound is true when
	// MeasuredBW ≥ Bound·(1−Tolerance).
	Bound      float64 `json:"bound"`
	BoundName  string  `json:"bound_name"`
	MeetsBound bool    `json:"meets_bound"`
	// OptimalBW is Corollary 7.1's (q+1)·B/2 ceiling, for normalising.
	OptimalBW float64 `json:"optimal_bw"`
	// Link telemetry from the obsv collector (not recomputed from the
	// simulator): hottest measured link vs the waterfill prediction, with
	// the explicit relative error.
	MaxLinkUtil      float64 `json:"max_link_util"`
	ModelMaxLinkUtil float64 `json:"model_max_link_util"`
	UtilRelErr       float64 `json:"util_rel_err"`
	// Congestion structure (Theorem 7.6 bounds MaxEdgeCongestion by 2 on
	// the low-depth forest; Theorem 7.19 pins it at 1).
	MaxEdgeCongestion   int `json:"max_edge_congestion"`
	SharedDirectedLinks int `json:"shared_directed_links"`
	// Phase attribution from the collector: cycles until the slowest
	// root finished reducing, and the broadcast tail after it.
	ReducePhaseCycles int `json:"reduce_phase_cycles"`
	BcastPhaseCycles  int `json:"bcast_phase_cycles"`
}

// scoreJob is one independent (q, embedding) design point of the sweep.
type scoreJob struct {
	q    int
	kind core.EmbeddingKind
}

// sweepKinds lists the embeddings simulated for one q (the low-depth
// forest needs odd q, matching §6.1.1).
func sweepKinds(q int) []core.EmbeddingKind {
	if q%2 == 0 {
		return []core.EmbeddingKind{core.SingleTree, core.Hamiltonian}
	}
	return []core.EmbeddingKind{core.SingleTree, core.LowDepth, core.Hamiltonian}
}

// Scorecard sweeps the configured design points, runs each embedding
// through the cycle simulator with an obsv collector attached, and
// returns one record per (q, embedding). The collector's registry-backed
// telemetry supplies the per-link utilization and phase split; only the
// headline bandwidth is derived from the cycle count.
//
// Design points are independent — each job builds its own instance,
// workload, and collector from the seeded config — so cfg.Parallel of
// them run concurrently on a parrun pool; the ordered commit keeps the
// returned slice (and everything rendered from it) byte-identical to a
// serial sweep.
func Scorecard(cfg ScorecardConfig) ([]ScorePoint, error) {
	if len(cfg.Qs) == 0 {
		return nil, fmt.Errorf("perf: scorecard needs at least one q")
	}
	if cfg.M <= 0 {
		return nil, fmt.Errorf("perf: scorecard vector length must be positive, got %d", cfg.M)
	}
	if cfg.Tolerance < 0 || cfg.Tolerance >= 1 {
		return nil, fmt.Errorf("perf: tolerance %g out of [0, 1)", cfg.Tolerance)
	}
	var jobs []scoreJob
	for _, q := range cfg.Qs {
		for _, kind := range sweepKinds(q) {
			jobs = append(jobs, scoreJob{q: q, kind: kind})
		}
	}
	return parrun.Map(cfg.Parallel, len(jobs), func(i int) (ScorePoint, error) {
		return scorePoint(cfg, jobs[i].q, jobs[i].kind)
	})
}

// scorePoint simulates one (q, embedding) design point. Everything it
// touches is built locally from the deterministic config, so concurrent
// calls never share state.
func scorePoint(cfg ScorecardConfig, q int, kind core.EmbeddingKind) (ScorePoint, error) {
	inst, err := core.NewInstance(q)
	if err != nil {
		return ScorePoint{}, err
	}
	inputs := workload.Vectors(inst.N(), cfg.M, 1000, cfg.Seed)
	e, err := inst.Embed(kind)
	if err != nil {
		return ScorePoint{}, err
	}
	runCfg := netsim.Config{LinkLatency: cfg.LinkLatency, VCDepth: cfg.VCDepth, Engine: cfg.Engine}
	col := obsv.NewCollector()
	col.DisableSpans = true // Metrics-only; Chrome spans are O(flits) at q=31 scale
	col.Attach(&runCfg)
	res, err := inst.Allreduce(e, inputs, runCfg)
	if err != nil {
		return ScorePoint{}, fmt.Errorf("perf: q=%d %v: %w", q, kind, err)
	}
	col.SetCycles(res.Cycles)
	reg := obsv.NewRegistry()
	rep := col.Metrics(reg)

	pt := ScorePoint{
		Q: q, Embedding: kind.String(), Trees: len(e.Forest),
		M: cfg.M, Cycles: res.Cycles,
		ModelBW:             e.Model.Aggregate,
		MeasuredBW:          float64(cfg.M) / float64(res.Cycles),
		OptimalBW:           bandwidth.Optimal(q, 1.0),
		MaxLinkUtil:         rep.MaxLinkUtilization,
		ModelMaxLinkUtil:    e.ModelMaxLinkLoad(),
		MaxEdgeCongestion:   rep.MaxEdgeCongestion,
		SharedDirectedLinks: rep.SharedDirectedLinks,
		ReducePhaseCycles:   rep.ReducePhaseCycles,
		BcastPhaseCycles:    rep.BcastPhaseCycles,
	}
	if pt.ModelBW > 0 {
		pt.BWRelErr = (pt.MeasuredBW - pt.ModelBW) / pt.ModelBW
	}
	if pt.ModelMaxLinkUtil > 0 {
		pt.UtilRelErr = (pt.MaxLinkUtil - pt.ModelMaxLinkUtil) / pt.ModelMaxLinkUtil
	}
	switch kind {
	case core.SingleTree:
		pt.Bound, pt.BoundName = 1.0, BoundSingleLink
	case core.LowDepth:
		pt.Bound, pt.BoundName = bandwidth.LowDepthBound(q, 1.0), BoundThm76
	case core.Hamiltonian:
		pt.Bound, pt.BoundName = bandwidth.HamiltonianBound(len(e.Forest), 1.0), BoundThm719
	case core.DepthTwo:
		// Not part of the sweep; no proven floor.
		pt.Bound, pt.BoundName = 0, "none"
	}
	pt.MeetsBound = pt.MeasuredBW >= pt.Bound*(1-cfg.Tolerance)
	return pt, nil
}

// ScorecardFailures lists every way the points violate the model-accuracy
// contract at the given tolerance: a measurement outside tolerance of the
// Algorithm 1 prediction, or below the theorem floor. Empty means the
// scorecard passes.
func ScorecardFailures(points []ScorePoint, tolerance float64) []string {
	var fails []string
	for _, pt := range points {
		if math.Abs(pt.BWRelErr) > tolerance {
			fails = append(fails, fmt.Sprintf(
				"q=%d %s: measured %.3f vs model %.3f elem/cycle (%.1f%% off, tolerance %.0f%%)",
				pt.Q, pt.Embedding, pt.MeasuredBW, pt.ModelBW, 100*pt.BWRelErr, 100*tolerance))
		}
		if !pt.MeetsBound {
			fails = append(fails, fmt.Sprintf(
				"q=%d %s: measured %.3f below the %s floor %.3f",
				pt.Q, pt.Embedding, pt.MeasuredBW, pt.BoundName, pt.Bound))
		}
	}
	return fails
}
