package perf

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Measurement is one (value, unit) pair from a benchmark result line —
// "ns/op", "B/op", "allocs/op", "MB/s", or a testing.B.ReportMetric
// custom unit such as "elem/cycle".
type Measurement struct {
	Value float64 `json:"value"`
	Unit  string  `json:"unit"`
}

// BenchResult is one parsed `go test -bench` result line.
type BenchResult struct {
	// Name is the benchmark path (including sub-benchmarks) with the
	// trailing GOMAXPROCS suffix stripped.
	Name string `json:"name"`
	// Procs is the GOMAXPROCS suffix (1 when the line carried none).
	Procs int `json:"procs"`
	// Iterations is b.N for the measured run.
	Iterations int `json:"iterations"`
	// Metrics preserves the line's (value, unit) pairs in order.
	Metrics []Measurement `json:"metrics"`
}

// Metric returns the measurement with the given unit and whether the
// result carried it.
func (r BenchResult) Metric(unit string) (float64, bool) {
	for _, m := range r.Metrics {
		if m.Unit == unit {
			return m.Value, true
		}
	}
	return 0, false
}

// RunOutput is everything ParseBench extracts from one `go test -bench`
// invocation: the result lines, plus the failure and package markers
// needed to tell a clean run from a broken one.
type RunOutput struct {
	// Results lists every benchmark result line, in input order;
	// -count=N produces N entries per benchmark.
	Results []BenchResult
	// Failed lists the names from "--- FAIL: Benchmark…" lines.
	Failed []string
	// Packages lists packages that printed an "ok" or "FAIL" summary.
	Packages []string
	// FailedPackages lists packages whose summary line was "FAIL".
	FailedPackages []string
}

// OK reports whether the run completed without benchmark or package
// failures.
func (o *RunOutput) OK() bool {
	return len(o.Failed) == 0 && len(o.FailedPackages) == 0
}

// ParseBench parses the plain-text output of
//
//	go test -run '^$' -bench <regex> -benchmem [-count N] ./...
//
// It tolerates the interleaved non-benchmark chatter (goos/goarch/pkg/cpu
// headers, test log lines) and records failed benchmarks and packages
// instead of erroring on them — a parse error means the input was not
// `go test` output at all, not that the benchmarks were unhealthy.
func ParseBench(r io.Reader) (*RunOutput, error) {
	out := &RunOutput{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		switch {
		case strings.HasPrefix(trimmed, "--- FAIL: Benchmark"):
			name := strings.TrimPrefix(trimmed, "--- FAIL: ")
			if i := strings.IndexAny(name, " \t"); i >= 0 {
				name = name[:i]
			}
			out.Failed = append(out.Failed, name)
		case strings.HasPrefix(line, "ok ") || strings.HasPrefix(line, "ok\t"):
			if pkg := packageOf(line); pkg != "" {
				out.Packages = append(out.Packages, pkg)
			}
		case strings.HasPrefix(line, "FAIL\t") || strings.HasPrefix(line, "FAIL "):
			if pkg := packageOf(line); pkg != "" {
				out.Packages = append(out.Packages, pkg)
				out.FailedPackages = append(out.FailedPackages, pkg)
			}
		case strings.HasPrefix(trimmed, "Benchmark"):
			res, ok, err := parseResultLine(trimmed)
			if err != nil {
				return nil, fmt.Errorf("perf: line %d: %w", lineNo, err)
			}
			if ok {
				out.Results = append(out.Results, res)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("perf: reading bench output: %w", err)
	}
	return out, nil
}

// packageOf extracts the package path from an "ok <pkg> <time>" or
// "FAIL <pkg> …" summary line.
func packageOf(line string) string {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return ""
	}
	return fields[1]
}

// parseResultLine parses one "BenchmarkName-8  N  v unit  v unit …"
// line. Lines that merely start with "Benchmark" but are not result
// lines (e.g. a benchmark's own log output) return ok=false; a line that
// is unmistakably a result but malformed returns an error.
func parseResultLine(line string) (BenchResult, bool, error) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return BenchResult{}, false, nil
	}
	iters, err := strconv.Atoi(fields[1])
	if err != nil {
		// "BenchmarkFoo something": a log line, not a result.
		return BenchResult{}, false, nil
	}
	name, procs := splitProcs(fields[0])
	res := BenchResult{Name: name, Procs: procs, Iterations: iters}
	rest := fields[2:]
	if len(rest)%2 != 0 {
		return BenchResult{}, false, fmt.Errorf("odd value/unit pairing in %q", line)
	}
	for i := 0; i < len(rest); i += 2 {
		v, err := strconv.ParseFloat(rest[i], 64)
		if err != nil {
			return BenchResult{}, false, fmt.Errorf("bad metric value %q in %q", rest[i], line)
		}
		res.Metrics = append(res.Metrics, Measurement{Value: v, Unit: rest[i+1]})
	}
	return res, true, nil
}

// splitProcs strips the trailing "-N" GOMAXPROCS suffix go test appends
// to benchmark names (absent when GOMAXPROCS=1).
func splitProcs(name string) (string, int) {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name, 1
	}
	n, err := strconv.Atoi(name[i+1:])
	if err != nil || n <= 0 {
		return name, 1
	}
	return name[:i], n
}
