package perf

import (
	"bytes"
	"strings"
	"testing"

	"polarfly/internal/core"
	"polarfly/internal/tsdb"
)

func timelineTestConfig() TimelineConfig {
	cfg := DefaultTimelineConfig()
	cfg.Q = 5
	cfg.M = 4096
	cfg.SampleEvery = 32
	cfg.Windows = 32
	cfg.Parallel = 2
	return cfg
}

func TestTimelineFaultFree(t *testing.T) {
	cfg := timelineTestConfig()
	runs, err := Timeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	kinds := sweepKinds(cfg.Q)
	if len(runs) != len(kinds) {
		t.Fatalf("got %d runs for %d kinds", len(runs), len(kinds))
	}
	for i, sn := range runs {
		if sn.Meta.Kind != kinds[i].String() {
			t.Errorf("run %d: kind %q, want %q (sweep order)", i, sn.Meta.Kind, kinds[i])
		}
		if sn.Schema != tsdb.SnapshotSchema {
			t.Errorf("%s: schema %q", sn.Meta.Kind, sn.Schema)
		}
		if len(sn.Points) == 0 {
			t.Fatalf("%s: no points", sn.Meta.Kind)
		}
		if first, last := sn.Points[0], sn.Points[len(sn.Points)-1]; first.Start != 0 || last.End != sn.Cycles {
			t.Errorf("%s: points span (%d,%d], want (0,%d]", sn.Meta.Kind, first.Start, last.End, sn.Cycles)
		}
		if sn.FootprintBytes <= 0 {
			t.Errorf("%s: footprint %d", sn.Meta.Kind, sn.FootprintBytes)
		}
		if sn.GroundTruth != nil {
			t.Errorf("%s: unexpected ground truth on a fault-free run", sn.Meta.Kind)
		}
	}
	if fails := TimelineFailures(runs, cfg); len(fails) != 0 {
		t.Fatalf("fault-free timeline failures: %v", fails)
	}
}

func TestTimelineDeterministic(t *testing.T) {
	cfg := timelineTestConfig()
	cfg.M = 1024
	first, err := Timeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Parallel = 4
	second, err := Timeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	for _, sn := range first {
		if err := sn.WriteMarkdown(&a); err != nil {
			t.Fatal(err)
		}
	}
	for _, sn := range second {
		if err := sn.WriteMarkdown(&b); err != nil {
			t.Fatal(err)
		}
	}
	if a.String() != b.String() {
		t.Fatal("timeline output depends on the pool size")
	}
}

func TestTimelineFaulted(t *testing.T) {
	cfg := timelineTestConfig()
	cfg.M = 2048
	cfg.FaultAt = 100
	runs, err := Timeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sawFault := false
	for _, sn := range runs {
		if sn.Meta.Kind == core.SingleTree.String() {
			// A single tree has no surviving trees to recover onto, so the
			// sweep leaves the baseline fault-free.
			if sn.GroundTruth != nil {
				t.Error("single-tree: unexpected fault injection")
			}
			continue
		}
		sawFault = true
		gt := sn.GroundTruth
		if gt == nil {
			t.Fatalf("%s: no ground truth on a faulted run", sn.Meta.Kind)
		}
		if !gt.Match {
			t.Errorf("%s: telemetry events diverge from trace: telemetry %v/%v, trace %v/%v",
				sn.Meta.Kind, sn.Faults, sn.Recoveries, gt.FaultCycles, gt.RecoverCycles)
		}
		if len(sn.Faults) == 0 || sn.Faults[0].Cycle != cfg.FaultAt {
			t.Errorf("%s: telemetry faults %v, want first at cycle %d", sn.Meta.Kind, sn.Faults, cfg.FaultAt)
		}
	}
	if !sawFault {
		t.Fatal("no multi-tree embedding got a fault")
	}
	if fails := TimelineFailures(runs, cfg); len(fails) != 0 {
		t.Fatalf("faulted timeline failures: %v", fails)
	}
}

func TestTimelineFailureGates(t *testing.T) {
	mk := func() *tsdb.Snapshot {
		return &tsdb.Snapshot{
			Meta:           tsdb.SnapshotMeta{Q: 5, Kind: "low-depth"},
			Cycles:         100,
			FootprintBytes: 1000,
			Points:         []tsdb.Point{{Start: 0, End: 100}},
		}
	}
	cfg := TimelineConfig{}

	if fails := TimelineFailures([]*tsdb.Snapshot{mk()}, cfg); len(fails) != 0 {
		t.Fatalf("clean snapshot flagged: %v", fails)
	}

	empty := mk()
	empty.Points = nil
	if fails := TimelineFailures([]*tsdb.Snapshot{empty}, cfg); len(fails) != 1 || !strings.Contains(fails[0], "no points") {
		t.Errorf("empty timeline: %v", fails)
	}

	short := mk()
	short.Points[0].End = 90
	if fails := TimelineFailures([]*tsdb.Snapshot{short}, cfg); len(fails) != 1 || !strings.Contains(fails[0], "ends at cycle 90") {
		t.Errorf("short timeline: %v", fails)
	}

	violated := mk()
	violated.ViolationCount = 2
	violated.Violations = []tsdb.Violation{{Start: 0, End: 100, Kind: "optimal-ceiling", Value: 4, Bound: 3}}
	if fails := TimelineFailures([]*tsdb.Snapshot{violated}, cfg); len(fails) != 1 || !strings.Contains(fails[0], "bound violation") {
		t.Errorf("violations: %v", fails)
	}

	fat := mk()
	bounded := cfg
	bounded.MaxBytes = 999
	if fails := TimelineFailures([]*tsdb.Snapshot{fat}, bounded); len(fails) != 1 || !strings.Contains(fails[0], "ceiling") {
		t.Errorf("footprint ceiling: %v", fails)
	}
	bounded.MaxBytes = 1000
	if fails := TimelineFailures([]*tsdb.Snapshot{fat}, bounded); len(fails) != 0 {
		t.Errorf("footprint at the ceiling flagged: %v", fails)
	}

	diverged := mk()
	diverged.GroundTruth = &tsdb.GroundTruth{FaultCycles: []int{40}, Match: false}
	if fails := TimelineFailures([]*tsdb.Snapshot{diverged}, cfg); len(fails) != 1 || !strings.Contains(fails[0], "ground truth") {
		t.Errorf("ground-truth mismatch: %v", fails)
	}
}

func TestTimelineValidation(t *testing.T) {
	cfg := DefaultTimelineConfig()
	cfg.M = 0
	if _, err := Timeline(cfg); err == nil {
		t.Error("M=0 accepted")
	}
	cfg = DefaultTimelineConfig()
	cfg.SampleEvery = 0
	if _, err := Timeline(cfg); err == nil {
		t.Error("SampleEvery=0 accepted")
	}
}

func TestWriteTimelineMarkdown(t *testing.T) {
	cfg := timelineTestConfig()
	cfg.M = 1024
	runs, err := Timeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := &Snapshot{Schema: SnapshotSchema, Label: "tl", Kind: KindTimeline,
		Timeline: runs, TimelineConfig: &cfg}
	var buf bytes.Buffer
	if err := WriteTimelineMarkdown(&buf, s); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"# Telemetry timelines — tl", "## Telemetry timeline — q=5", "| window | phase |"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q", want)
		}
	}

	// The timeline snapshot must survive the JSON round trip benchreport
	// performs.
	var enc bytes.Buffer
	if err := s.WriteJSON(&enc); err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeSnapshot(&enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Timeline) != len(runs) || dec.TimelineConfig == nil || dec.TimelineConfig.Q != cfg.Q {
		t.Fatal("timeline fields lost in the JSON round trip")
	}
}
